// Package repro is a from-scratch Go reproduction of "Localized Algorithm
// for Precise Boundary Detection in 3D Wireless Networks" (Zhou, Xia, Jin,
// Wu — ICDCS 2010): Unit Ball Fitting and Isolated Fragment Filtering for
// boundary-node identification, plus the landmark/CDG/CDM/edge-flip
// pipeline that reconstructs locally planarized triangular boundary
// surfaces, together with every substrate the paper's evaluation needs
// (deployment shapes, unit-ball connectivity, ranging error models,
// MDS-based local coordinates, a message-passing simulator, and the full
// experiment harness).
//
// The library lives under internal/; see README.md for the package map and
// cmd/ for the executables. The benchmarks in this directory regenerate the
// paper's tables and figures at reduced scale; use cmd/experiment for
// full-scale runs.
package repro
