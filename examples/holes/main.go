// Hole discovery (the paper's Figs. 7–8 scenario): a 3D sensor cloud for
// chemical dispersion sampling has internal voids left by uncontrolled node
// drift. The example detects both the outer boundary and the interior hole
// boundaries, shows that grouping separates them without any global
// knowledge, and demonstrates the r-knob of Sec. II-A3: enlarging the unit
// ball makes the algorithm report only holes above a chosen size.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/shapes"
)

func main() {
	// Two spherical voids of different sizes inside a box. Boundary
	// shells detected under noisy coordinates are up to ~1.25 radio
	// ranges thick, so every pair of surfaces needs roughly three radio
	// ranges of clearance to stay separated.
	shape, err := shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(18, 12, 12),
		[]geom.Sphere{
			{Center: geom.V(5, 6, 6), Radius: 2.4},
			{Center: geom.V(13, 6, 6), Radius: 1.8},
		})
	if err != nil {
		log.Fatal(err)
	}
	net, err := netgen.Generate(netgen.Config{
		Shape:           shape,
		SurfaceNodes:    1900,
		InteriorNodes:   3300,
		TargetAvgDegree: 18.5,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.Stats())
	meas := net.Measure(ranging.UniformAdditive{Fraction: 0.05}, 8)

	holes := []geom.Sphere{
		{Center: geom.V(5, 6, 6), Radius: 2.4},
		{Center: geom.V(13, 6, 6), Radius: 1.8},
	}
	describe := func(title string, res *core.Result) {
		fmt.Printf("%s: %d boundary group(s)\n", title, len(res.Groups))
		for gi, group := range res.Groups {
			// Locate each group by its centroid to tell outer wall
			// from holes.
			var centroid geom.Vec3
			for _, id := range group {
				centroid = centroid.Add(net.Nodes[id].Pos)
			}
			centroid = centroid.Scale(1 / float64(len(group)))
			fmt.Printf("  group %d: %4d nodes, centroid %v\n", gi, len(group), centroid)
		}
		// Count detected boundary nodes hugging each hole's surface —
		// the direct observable of Sec. II-A3's size selectivity.
		for hi, h := range holes {
			shell := 0
			for i, node := range net.Nodes {
				if res.Boundary[i] && geom.Sphere.SurfaceDistance(h, node.Pos) < net.Radius/2 {
					shell++
				}
			}
			fmt.Printf("  hole %d (radius %.1f): %d detected shell nodes\n", hi, h.Radius, shell)
		}
	}

	// Default unit ball (r = radio range): every hole larger than the
	// radio range is found — expect 3 groups (outer + 2 holes).
	res, err := core.Detect(net, meas, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	describe("default r", res)

	// Enlarged unit ball (Sec. II-A3): a node on the boundary of a hole
	// smaller than r cannot find an empty ball that fits, so the small
	// hole's shell disappears entirely while the large hole keeps one.
	// (Selectivity bites slightly below the nominal hole radius: a ball
	// through three nodes on a hole's surface always pokes a sliver
	// beyond the antipodal side, so holes need to exceed r with some
	// margin to keep a full shell.)
	resBig, err := core.Detect(net, meas, core.Config{BallRadiusFactor: 1.2})
	if err != nil {
		log.Fatal(err)
	}
	describe("r scaled 1.2x", resBig)
}
