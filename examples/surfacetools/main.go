// Surface tools: the full set of "graph theory tools on 3D surfaces" the
// paper motivates (Sec. I), exercised on a detected sphere boundary —
// connectivity-only embedding (virtual coordinates for the boundary),
// k-way surface partition, and greedy routing with guaranteed-delivery
// recovery over the reconstructed mesh.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/partition"
	"repro/internal/routing"
	"repro/internal/shapes"
)

func main() {
	// Detect the boundary of a sphere deployment and reconstruct its
	// triangular surface.
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 4),
		SurfaceNodes:    500,
		InteriorNodes:   1500,
		TargetAvgDegree: 18.5,
		Seed:            60,
	})
	if err != nil {
		log.Fatal(err)
	}
	det, err := core.Detect(net, nil, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	surface, err := mesh.Build(net.G, det.Groups[0], mesh.Config{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surface: %d boundary nodes, %v\n", len(surface.Group), surface.Quality)

	// Tool 1 — embedding: virtual coordinates for every boundary node
	// from hop counts alone, compared against ground truth.
	emb, err := embed.Surface(net.G, surface, embed.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rmsd, scale, err := emb.Distortion(func(n int) geom.Vec3 { return net.Nodes[n].Pos })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding: %d nodes localized from connectivity, RMSD %.2f radio ranges (hop scale %.2f)\n",
		len(emb.Nodes), rmsd/net.Radius, scale)

	// Tool 2 — partition: split the boundary into 6 connected, balanced
	// patches (aggregation/routing zones).
	patches, err := partition.KWay(net.G, surface, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition: %d patches, balance %.2f, edge cut %d, connected=%v\n",
		len(patches.Parts), patches.Balance(), patches.EdgeCut(net.G), patches.Connected(net.G))

	// Tool 3 — routing: plain greedy vs. recovery-backed greedy over the
	// landmark overlay.
	overlay := routing.NewOverlay(surface, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
	lms := overlay.Landmarks()
	var plainOK, recoverOK, attempts, escapes int
	for i := 0; i < len(lms); i++ {
		for j := i + 1; j < len(lms); j++ {
			attempts++
			plain, err := overlay.Greedy(lms[i], lms[j], 4*len(lms))
			if err != nil {
				log.Fatal(err)
			}
			if plain.Success {
				plainOK++
			}
			rec, err := overlay.GreedyWithRecovery(lms[i], lms[j], 10*len(lms))
			if err != nil {
				log.Fatal(err)
			}
			if rec.Success {
				recoverOK++
			}
			escapes += rec.Recoveries
		}
	}
	fmt.Printf("routing over %d landmark pairs: greedy %.1f%%, with recovery %.1f%% (%d escapes)\n",
		attempts, 100*float64(plainOK)/float64(attempts),
		100*float64(recoverOK)/float64(attempts), escapes)
}
