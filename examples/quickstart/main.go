// Quickstart: deploy a small 3D network on a sphere, detect its boundary
// nodes with Unit Ball Fitting + Isolated Fragment Filtering, and build the
// triangular boundary surface — the library's whole pipeline in one page.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/shapes"
)

func main() {
	// 1. Deploy: 200 nodes on the surface of a sphere (ground truth) and
	//    600 in its interior, radio range tuned so the average degree is
	//    the paper's 18.5.
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 4),
		SurfaceNodes:    200,
		InteriorNodes:   600,
		TargetAvgDegree: 18.5,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net.Stats())

	// 2. Range: every link measures its distance with 10 % error (of the
	//    radio range), the paper's noise model.
	meas := net.Measure(ranging.UniformAdditive{Fraction: 0.10}, 2)

	// 3. Detect: each node builds a local MDS coordinate frame from the
	//    measured distances and runs Unit Ball Fitting; Isolated Fragment
	//    Filtering removes stray detections; grouping separates
	//    boundaries.
	res, err := core.Detect(net, meas, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	correct, mistaken, missing := 0, 0, 0
	for i, node := range net.Nodes {
		switch {
		case res.Boundary[i] && node.OnSurface:
			correct++
		case res.Boundary[i]:
			mistaken++
		case node.OnSurface:
			missing++
		}
	}
	fmt.Printf("boundary nodes: %d correct, %d mistaken, %d missing, %d group(s)\n",
		correct, mistaken, missing, len(res.Groups))

	// 4. Reconstruct: a locally planarized triangular mesh per boundary.
	for gi, group := range res.Groups {
		s, err := mesh.Build(net.G, group, mesh.Config{K: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("surface %d: %v\n", gi, s.Quality)
	}
}
