// Surface tools on a bent pipe (the paper's Fig. 9 scenario): detect the
// pipe's boundary, reconstruct the triangular surface mesh, and run the
// application the paper motivates surface construction with — greedy
// geographic routing over the locally planarized 2-manifold — plus an OBJ
// export that can be opened in any 3D viewer.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/routing"
	"repro/internal/shapes"
)

func main() {
	pipe, err := shapes.NewBentPipe(6, 1.5, 3*math.Pi/4)
	if err != nil {
		log.Fatal(err)
	}
	net, err := netgen.Generate(netgen.Config{
		Shape:           pipe,
		SurfaceNodes:    900,
		InteriorNodes:   800,
		TargetAvgDegree: 18.5,
		Seed:            11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bent-pipe network:", net.Stats())

	// Detect with ground-truth coordinates (the paper's known-positions
	// mode) to showcase the mesh pipeline itself.
	res, err := core.Detect(net, nil, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boundary groups: %d\n", len(res.Groups))

	for gi, group := range res.Groups {
		s, err := mesh.Build(net.G, group, mesh.Config{K: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("surface %d: %v\n", gi, s.Quality)

		// Greedy routing over the reconstructed surface overlay.
		overlay := routing.NewOverlay(s, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
		stats, err := overlay.Experiment(500, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  greedy routing: %.1f%% delivered, stretch %.2f over %d trials\n",
			100*stats.SuccessRate, stats.AvgStretch, stats.Trials)

		// Export the mesh for a 3D viewer.
		path := fmt.Sprintf("pipe-surface%d.obj", gi)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		verts, edges, faces := export.SurfaceGeometry(net, s)
		if err := export.WriteOBJ(f, verts, edges, faces); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s (%d vertices, %d faces)\n", path, len(verts), len(faces))
	}
}
