// Underwater reconnaissance (the paper's Fig. 6 scenario): sensors drift
// through a water column with a smooth surface and a bumpy seabed. The
// example detects the column's boundary — distinguishing surface, seabed
// and walls is exactly the "terrain and underwater reconnaissance" use case
// the paper motivates — then reconstructs the boundary mesh and reports how
// well the detected nodes split into "near surface" vs. "near seabed".
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/shapes"
)

func main() {
	water := shapes.DefaultUnderwater()
	net, err := netgen.Generate(netgen.Config{
		Shape:           water,
		SurfaceNodes:    700,
		InteriorNodes:   800,
		TargetAvgDegree: 18.5,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("underwater network:", net.Stats())

	// Acoustic ranging is noisy: 20 % of the radio range.
	meas := net.Measure(ranging.UniformAdditive{Fraction: 0.20}, 43)
	res, err := core.Detect(net, meas, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Split the detected boundary by where it sits in the column: within
	// half a radio range of the sea surface, of the seabed, or on the
	// side walls.
	var nearSurface, nearBed, onWalls int
	for i, node := range net.Nodes {
		if !res.Boundary[i] {
			continue
		}
		p := node.Pos
		switch {
		case water.SurfaceZ-p.Z < net.Radius/2:
			nearSurface++
		case p.Z-water.Seabed(p.X, p.Y) < net.Radius/2:
			nearBed++
		default:
			onWalls++
		}
	}
	fmt.Printf("detected boundary: %d near water surface, %d on the seabed, %d on walls\n",
		nearSurface, nearBed, onWalls)

	for gi, group := range res.Groups {
		s, err := mesh.Build(net.G, group, mesh.Config{K: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reconstructed surface %d: %d landmarks, %d triangles (%v)\n",
			gi, s.Quality.V, s.Quality.F, s.Quality)
	}
}
