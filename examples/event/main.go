// Event boundary via network boundary (the paper's introductory fire
// scenario): "upon a fire, the sensors located in the fire are likely
// destroyed, resulting a void area of failed nodes". This example deploys
// a healthy network, destroys every node inside a fire ball, re-runs
// boundary detection on the survivors, and shows that the new hole —
// the event frontier — appears as a fresh boundary group whose nodes ring
// the fire.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

func main() {
	// Healthy deployment: a box of sensors, no interior holes.
	box := shapes.NewBox(geom.V(0, 0, 0), geom.V(16, 16, 16))
	net, err := netgen.Generate(netgen.Config{
		Shape:           box,
		SurfaceNodes:    1800,
		InteriorNodes:   6200,
		TargetAvgDegree: 18.5,
		Seed:            21,
	})
	if err != nil {
		log.Fatal(err)
	}
	before, err := core.Detect(net, nil, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before the event: %v\n", net.Stats())
	fmt.Printf("  boundary groups: %d (the outer hull)\n", len(before.Groups))

	// The fire: every sensor within the fire ball is destroyed.
	fire := geom.Sphere{Center: geom.V(8, 8, 8), Radius: 3.2}
	var survivors []netgen.Node
	killed := 0
	for _, node := range net.Nodes {
		if fire.Contains(node.Pos) {
			killed++
			continue
		}
		survivors = append(survivors, node)
	}
	after, err := netgen.Assemble(survivors, net.Radius)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fire at %v destroys %d sensors\n", fire.Center, killed)

	// Re-detect on the survivors: the void left by the fire is a new
	// interior hole, and its boundary nodes are the event frontier.
	// Volume-deployed nodes ring a void far more sparsely than the
	// paper's surface-sampled shells, so IFF's fragment threshold θ is
	// lowered per Sec. II-B ("appropriate θ and T are chosen according
	// to the minimum size of the holes to be detected").
	det, err := core.Detect(after, nil, core.Config{IFFThreshold: 8})
	if err != nil {
		log.Fatal(err)
	}
	frontier := 0
	for i := range after.Nodes {
		if det.Boundary[i] && fire.SurfaceDistance(after.Nodes[i].Pos) < after.Radius {
			frontier++
		}
	}
	fmt.Printf("after the event: %d boundary groups, %d frontier nodes ring the fire\n",
		len(det.Groups), frontier)
	for gi, group := range det.Groups {
		var centroid geom.Vec3
		ringing := 0
		for _, id := range group {
			p := after.Nodes[id].Pos
			centroid = centroid.Add(p)
			if fire.SurfaceDistance(p) < after.Radius {
				ringing++
			}
		}
		centroid = centroid.Scale(1 / float64(len(group)))
		kind := "outer hull"
		if float64(ringing) > 0.8*float64(len(group)) {
			kind = "EVENT FRONTIER (rings the fire)"
		}
		fmt.Printf("  group %d: %4d nodes, centroid %v — %s\n", gi, len(group), centroid, kind)
	}
}
