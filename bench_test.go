package repro_test

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). Benchmarks run the same code paths as
// cmd/experiment at reduced deployment scale so `go test -bench=.` finishes
// in minutes; absolute timings are reported per pipeline stage.
//
// When the BENCH_JSON environment variable names a file, TestMain writes the
// run's measurements there in the machine-readable baseline format of
// internal/bench (see EXPERIMENTS.md for the schema): per-case wall time and
// op counts, the UBF work counters where the case exposes them, and
// approximate per-op allocation figures. `make bench` uses this to produce
// BENCH_<date>.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mds"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/routing"
	"repro/internal/serve"
	"repro/internal/shapes"
	"repro/internal/sim"
)

// benchScale keeps bench deployments small enough for tight iteration.
const benchScale = 0.15

var benchRecorder bench.Recorder

// record registers the enclosing benchmark with the baseline recorder; the
// returned stage is live during the run so the benchmark body can accumulate
// work counters (balls tested, nodes checked) into it. Wall time and op
// counts fold across the harness's ramp-up invocations, so ns_per_op is the
// average over every timed iteration. Allocation figures come from
// MemStats deltas around the invocation — approximate, but they include the
// benchmark loop only when record is called right before ResetTimer.
func record(b *testing.B) *bench.Stage {
	s := &bench.Stage{Name: strings.TrimPrefix(b.Name(), "Benchmark")}
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.Cleanup(func() {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		s.WallNS = b.Elapsed().Nanoseconds()
		s.Ops = int64(b.N)
		if s.Ops > 0 {
			s.Allocs = int64(m1.Mallocs-m0.Mallocs) / s.Ops
			s.Bytes = int64(m1.TotalAlloc-m0.TotalAlloc) / s.Ops
		}
		benchRecorder.Record(*s)
	})
	return s
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && code == 0 {
		if err := writeBenchBaseline(path); err != nil {
			fmt.Fprintln(os.Stderr, "bench baseline:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// writeBenchBaseline dumps the recorder to the BENCH_JSON file. A run with
// no benchmarks (plain `go test`) records nothing and writes nothing, so
// test-only invocations never clobber an existing baseline.
func writeBenchBaseline(path string) error {
	stages := benchRecorder.Stages()
	if len(stages) == 0 {
		return nil
	}
	name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
	bl := bench.New(name, time.Now().UTC().Format(time.RFC3339), benchScale)
	bl.Stages = stages
	return bl.WriteFile(path)
}

func sumInts(xs []int) int64 {
	var t int64
	for _, x := range xs {
		t += int64(x)
	}
	return t
}

var (
	benchOnce    sync.Once
	benchNet     *netgen.Network     // fig1 network at bench scale
	benchMeas    *netgen.Measurement // 20 % ranging error
	benchDet     *core.Result
	benchSurface *mesh.Surface
	benchErr     error
)

func benchFixtures(b *testing.B) (*netgen.Network, *netgen.Measurement, *core.Result, *mesh.Surface) {
	b.Helper()
	benchOnce.Do(func() {
		sc := eval.Fig1().Scaled(benchScale)
		benchNet, benchErr = sc.Generate()
		if benchErr != nil {
			return
		}
		benchMeas = benchNet.Measure(ranging.UniformAdditive{Fraction: 0.2}, 1)
		benchDet, benchErr = core.Detect(benchNet, benchMeas, core.Config{})
		if benchErr != nil {
			return
		}
		largest := benchDet.Groups[0]
		for _, g := range benchDet.Groups {
			if len(g) > len(largest) {
				largest = g
			}
		}
		benchSurface, benchErr = mesh.Build(benchNet.G, largest, mesh.Config{K: 3})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchNet, benchMeas, benchDet, benchSurface
}

// BenchmarkPipelineFig1 runs the end-to-end Fig. 1 pipeline: detection on
// MDS coordinates plus surface construction (Figs. 1(b)–(f)).
func BenchmarkPipelineFig1(b *testing.B) {
	net, meas, _, _ := benchFixtures(b)
	st := record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := core.Detect(net, meas, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		st.BallsTested += sumInts(det.BallsTested)
		st.NodesChecked += sumInts(det.NodesChecked)
		if _, err := mesh.BuildAll(net.G, det.Groups, mesh.Config{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1gErrorPoint measures one point of the Fig. 1(g) error sweep:
// ranging, detection, classification.
func BenchmarkFig1gErrorPoint(b *testing.B) {
	net, _, _, _ := benchFixtures(b)
	truth := net.TrueBoundary()
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meas := net.Measure(ranging.UniformAdditive{Fraction: 0.3}, int64(i))
		det, err := core.Detect(net, meas, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := metrics.Classify(truth, det.Boundary); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1hMistakenDistribution measures the hop-distribution pass of
// Fig. 1(h) (and, with the missing set, Fig. 1(i)).
func BenchmarkFig1hMistakenDistribution(b *testing.B) {
	net, _, det, _ := benchFixtures(b)
	truth := net.TrueBoundary()
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Evaluate(net.G, truth, det.Boundary, eval.MaxHops); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1iMissingDistribution is the missing-node counterpart of the
// previous benchmark (Fig. 1(i)); the evaluation computes both
// distributions, so the cost is shared.
func BenchmarkFig1iMissingDistribution(b *testing.B) {
	BenchmarkFig1hMistakenDistribution(b)
}

// BenchmarkFig1jklMeshUnderError measures one point of the Fig. 1(j)–(l)
// study: surface reconstruction from a noisy detection.
func BenchmarkFig1jklMeshUnderError(b *testing.B) {
	net, _, det, _ := benchFixtures(b)
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.BuildAll(net.G, det.Groups, mesh.Config{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScenario runs one Figs. 6–10 scenario study at bench scale.
func benchScenario(b *testing.B, sc eval.Scenario) {
	b.Helper()
	sc = sc.Scaled(benchScale)
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunScenario(sc, 0, core.Config{}, mesh.Config{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Underwater regenerates the Fig. 6 scenario study.
func BenchmarkFig6Underwater(b *testing.B) { benchScenario(b, eval.Fig6()) }

// BenchmarkFig7OneHole regenerates the Fig. 7 scenario study.
func BenchmarkFig7OneHole(b *testing.B) { benchScenario(b, eval.Fig7()) }

// BenchmarkFig8TwoHoles regenerates the Fig. 8 scenario study.
func BenchmarkFig8TwoHoles(b *testing.B) { benchScenario(b, eval.Fig8()) }

// BenchmarkFig9BentPipe regenerates the Fig. 9 scenario study.
func BenchmarkFig9BentPipe(b *testing.B) { benchScenario(b, eval.Fig9()) }

// BenchmarkFig10Sphere regenerates the Fig. 10 scenario study.
func BenchmarkFig10Sphere(b *testing.B) { benchScenario(b, eval.Fig10()) }

// BenchmarkFig11Sweep measures a mini aggregate sweep (two scenarios ×
// three error levels), the Fig. 11(a)–(c) machinery.
func BenchmarkFig11Sweep(b *testing.B) {
	scenarios := []eval.Scenario{eval.Fig10().Scaled(benchScale), eval.Fig1().Scaled(benchScale)}
	levels := []float64{0, 0.3, 0.6}
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunAggregateSweep(scenarios, levels, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUBFPerDegree measures the Unit Ball Fitting kernel across nodal
// degrees — the Theorem 1 complexity table. Two call shapes per degree:
//
//   - kernel: the raw one-hop shape (degree+1 coords in a unit ball), the
//     literal Algorithm 1 step II input;
//   - twohop: the pipeline's actual stage-2 shape — the deciding node tests
//     its balls against its full two-hop knowledge, n ≈ 8× degree in a
//     radius-2 ball — where the grid/ordering/scan optimizations act.
//
// Both shapes average over 16 pre-generated instances so candidate-ordering
// heuristics are judged in aggregate rather than on one lucky draw.
func BenchmarkUBFPerDegree(b *testing.B) {
	for _, degree := range []int{10, 18, 30, 45} {
		degree := degree
		b.Run(byDegree(degree), func(b *testing.B) {
			for _, shape := range []struct {
				name   string
				n      int
				radius float64
			}{
				{"kernel", degree + 1, 1},
				{"twohop", 8*degree + 1, 2},
			} {
				shape := shape
				b.Run(shape.name, func(b *testing.B) {
					sets := make([][]geom.Vec3, 16)
					for s := range sets {
						rng := rand.New(rand.NewSource(int64(1000*degree + s)))
						coords := []geom.Vec3{geom.Zero}
						for len(coords) < shape.n {
							coords = append(coords, geom.RandomInBall(rng, geom.Sphere{Radius: shape.radius}))
						}
						sets[s] = coords
					}
					st := record(b)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						r := core.FitEmptyBall(sets[i%len(sets)], 0, 1.0, 1e-9)
						st.BallsTested += int64(r.BallsTested)
						st.NodesChecked += int64(r.NodesChecked)
					}
				})
			}
		})
	}
}

func byDegree(d int) string {
	switch {
	case d < 10:
		return "degree0" + string(rune('0'+d))
	default:
		return "degree" + string(rune('0'+d/10)) + string(rune('0'+d%10))
	}
}

// fig1TwoHop builds one two-hop knowledge set at the fig1 average degree
// (~18.8): 151 coords in a radius-2 ball around the deciding node. The
// boundary variant carves a half-space so the origin sits on the hole wall
// — the case where an empty ball exists and candidate ordering decides how
// fast it is found.
func fig1TwoHop(rng *rand.Rand, interior bool) []geom.Vec3 {
	coords := []geom.Vec3{geom.Zero}
	for len(coords) < 151 {
		p := geom.RandomInBall(rng, geom.Sphere{Radius: 2})
		if !interior && p.Z < -0.15 {
			continue // carve a half-space: origin sits on the boundary
		}
		coords = append(coords, p)
	}
	return coords
}

// BenchmarkUBFStageFig1 measures the UBF stage at the exact fig1 call shape
// for an interior node (no empty ball: the full candidate set is exhausted)
// and a boundary node (an empty ball exists: early exit), averaged over 16
// random instances.
func BenchmarkUBFStageFig1(b *testing.B) {
	for _, tc := range []struct {
		name     string
		interior bool
	}{{"interior", true}, {"boundary", false}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			sets := make([][]geom.Vec3, 16)
			for s := range sets {
				sets[s] = fig1TwoHop(rand.New(rand.NewSource(int64(100+s))), tc.interior)
			}
			st := record(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := core.FitEmptyBall(sets[i%len(sets)], 0, 1.0, 1e-9)
				st.BallsTested += int64(r.BallsTested)
				st.NodesChecked += int64(r.NodesChecked)
			}
		})
	}
}

// BenchmarkMDSLocalFrame measures one node's local-coordinate construction
// (Algorithm 1 step I substrate).
func BenchmarkMDSLocalFrame(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := []geom.Vec3{geom.Zero}
	for len(pts) < 19 {
		pts = append(pts, geom.RandomInBall(rng, geom.Sphere{Radius: 1}))
	}
	dist := func(x, y int) (float64, bool) {
		d := pts[x].Dist(pts[y])
		return d, d <= 1
	}
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mds.Localize(len(pts), dist, mds.Options{SmacofIterations: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIFFFlood measures the Isolated Fragment Filtering flood on the
// bench network.
func BenchmarkIFFFlood(b *testing.B) {
	net, _, det, _ := benchFixtures(b)
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.FloodCount(net.G, det.UBF, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrouping measures boundary grouping by label propagation.
func BenchmarkGrouping(b *testing.B) {
	net, _, det, _ := benchFixtures(b)
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.LabelComponents(net.G, det.Boundary); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurfaceConstruction measures steps I–V of Sec. III on the bench
// network's largest boundary.
func BenchmarkSurfaceConstruction(b *testing.B) {
	net, _, det, _ := benchFixtures(b)
	largest := det.Groups[0]
	for _, g := range det.Groups {
		if len(g) > len(largest) {
			largest = g
		}
	}
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.Build(net.G, largest, mesh.Config{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	sphereOnce    sync.Once
	sphereNet     *netgen.Network
	sphereGroup   []int
	sphereSurface *mesh.Surface
	sphereErr     error
)

// sphereFixtures builds the Fig. 10 sphere boundary at bench scale — the
// largest surface the benchmarks extract, and the deployment the tentpole
// perf targets are measured on.
func sphereFixtures(b *testing.B) (*netgen.Network, []int, *mesh.Surface) {
	b.Helper()
	sphereOnce.Do(func() {
		sc := eval.Fig10().Scaled(benchScale)
		sphereNet, sphereErr = sc.Generate()
		if sphereErr != nil {
			return
		}
		var det *core.Result
		det, sphereErr = core.Detect(sphereNet, nil, core.Config{})
		if sphereErr != nil {
			return
		}
		sphereGroup = det.Groups[0]
		for _, g := range det.Groups {
			if len(g) > len(sphereGroup) {
				sphereGroup = g
			}
		}
		sphereSurface, sphereErr = mesh.Build(sphereNet.G, sphereGroup, mesh.Config{K: 3})
	})
	if sphereErr != nil {
		b.Fatal(sphereErr)
	}
	return sphereNet, sphereGroup, sphereSurface
}

// BenchmarkMeshSurface measures full surface extraction (landmarks → CDG →
// CDM → triangulation → flips) on the Fig. 10 sphere boundary — the stage
// the CSR/SPT kernel accelerates.
func BenchmarkMeshSurface(b *testing.B) {
	net, group, _ := sphereFixtures(b)
	record(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.Build(net.G, group, mesh.Config{K: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCDMPaths measures landmark-pair path extraction from the cached
// shortest-path trees: every CDM edge of the sphere surface realized via
// SPT.PathTo — the O(path length) query that replaced a full BFS per edge.
func BenchmarkCDMPaths(b *testing.B) {
	net, group, surf := sphereFixtures(b)
	csr := graph.NewCSR(net.G)
	member := make([]bool, net.Len())
	for _, v := range group {
		member[v] = true
	}
	allowed := graph.NodeSetOf(member)
	lms := surf.Landmarks.IDs
	trees, _, err := graph.BuildSPTs(csr, lms, allowed, 0)
	if err != nil {
		b.Fatal(err)
	}
	treeOf := make(map[int]*graph.SPT, len(lms))
	for i, lm := range lms {
		treeOf[lm] = trees[i]
	}
	if len(surf.CDM) == 0 {
		b.Skip("no CDM edges on bench surface")
	}
	var buf []int
	record(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range surf.CDM {
			buf = treeOf[e[0]].PathTo(e[1], buf[:0])
			if len(buf) == 0 {
				b.Fatalf("no path for CDM edge %v", e)
			}
		}
	}
}

// BenchmarkGreedyRouting measures the motivated application: greedy
// forwarding over the reconstructed surface overlay.
func BenchmarkGreedyRouting(b *testing.B) {
	net, _, _, surface := benchFixtures(b)
	overlay := routing.NewOverlay(surface, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
	lms := overlay.Landmarks()
	if len(lms) < 2 {
		b.Skip("overlay too small")
	}
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := lms[i%len(lms)]
		to := lms[(i*7+1)%len(lms)]
		if from == to {
			continue
		}
		if _, err := overlay.Greedy(from, to, 4*len(lms)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkGeneration measures deployment + connectivity
// construction (the simulation substrate itself).
func BenchmarkNetworkGeneration(b *testing.B) {
	sc := eval.Fig10().Scaled(benchScale)
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectTrueCoords isolates the detection pipeline with the
// localization substrate removed (the oracle ablation).
func BenchmarkDetectTrueCoords(b *testing.B) {
	net, _, _, _ := benchFixtures(b)
	st := record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := core.Detect(net, nil, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		st.BallsTested += sumInts(det.BallsTested)
		st.NodesChecked += sumInts(det.NodesChecked)
	}
}

// BenchmarkDegreeBaseline measures the ablation baseline detector.
func BenchmarkDegreeBaseline(b *testing.B) {
	net, _, _, _ := benchFixtures(b)
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DegreeBaseline(net, core.DegreeBaselineConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Property check run alongside the benches: BFS Lipschitz on the bench
// network guards the graph substrate the benchmarks depend on.
func TestBenchFixtureSanity(t *testing.T) {
	sc := eval.Fig1().Scaled(benchScale)
	net, err := sc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dist := net.G.BFSHops([]int{0}, graph.All, -1)
	for u := range net.G.Adj {
		for _, v := range net.G.Adj[u] {
			du, dv := dist[u], dist[v]
			if du == graph.Unreachable || dv == graph.Unreachable {
				continue
			}
			if du-dv > 1 || dv-du > 1 {
				t.Fatalf("BFS Lipschitz violated on bench network at (%d,%d)", u, v)
			}
		}
	}
}

// Sharded-detection scaling fixture: a ball deployment at 100k nodes
// (override with BENCH_SHARD_NODES, e.g. 1000000 for the EXPERIMENTS.md
// scaling run). The radio range is set analytically to the target average
// degree — r = R·(d/n)^(1/3) gives expected interior degree d — so the
// fixture skips the 48-pass binary search of netgen's radius auto-tuning,
// which at this scale would dwarf the measurement.
var (
	shardBenchOnce sync.Once
	shardBenchNet  *netgen.Network
	shardBenchErr  error
)

func shardBenchFixture(b *testing.B) *netgen.Network {
	b.Helper()
	shardBenchOnce.Do(func() {
		n := 100_000
		if s := os.Getenv("BENCH_SHARD_NODES"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		const bigR = 20.0
		const degree = 14.0
		surface := n / 5
		shardBenchNet, shardBenchErr = netgen.Generate(netgen.Config{
			Shape:         shapes.NewBall(geom.Zero, bigR),
			SurfaceNodes:  surface,
			InteriorNodes: n - surface,
			Radius:        bigR * math.Cbrt(degree/float64(n)),
			Seed:          2026,
		})
	})
	if shardBenchErr != nil {
		b.Fatal(shardBenchErr)
	}
	return shardBenchNet
}

// BenchmarkServeDeltas is the boundaryd load smoke: a session held by the
// HTTP server absorbs a sustained stream of single-delta batches (moves
// over the fig1 bench network) through a real TCP listener. Beyond the
// folded mean, the run records the observed p50 and p99 request latencies
// as their own baseline stages (Ops=1, so ns_per_op IS the quantile),
// putting tail-latency regressions of the incremental engine under the
// bench-diff gate.
func BenchmarkServeDeltas(b *testing.B) {
	net, _, _, _ := benchFixtures(b)
	ts := httptest.NewServer(serve.New(serve.Options{}).Handler())
	defer ts.Close()
	var netBuf bytes.Buffer
	if err := export.WriteNetworkJSON(&netBuf, net); err != nil {
		b.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/v1/sessions", "application/json", &netBuf)
	if err != nil {
		b.Fatal(err)
	}
	var created struct {
		Session string `json:"session"`
	}
	err = json.NewDecoder(res.Body).Decode(&created)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusCreated {
		b.Fatalf("create session: status %d err %v", res.StatusCode, err)
	}
	deltasURL := ts.URL + "/v1/sessions/" + created.Session + "/deltas"

	rng := rand.New(rand.NewSource(17))
	pos := net.Positions()
	step := net.Radius * 0.3
	lat := make([]time.Duration, 0, b.N)
	record(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % len(pos)
		p := pos[id].Add(geom.V(
			(rng.Float64()-0.5)*step, (rng.Float64()-0.5)*step, (rng.Float64()-0.5)*step))
		pos[id] = p
		body := fmt.Sprintf(
			`{"deltas": [{"op": "move", "node": %d, "pos": {"x": %g, "y": %g, "z": %g}}]}`,
			id, p.X, p.Y, p.Z)
		t0 := time.Now()
		res, err := http.Post(deltasURL, "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			b.Fatalf("delta %d: status %s", i, res.Status)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	benchRecorder.Record(bench.Stage{Name: "ServeDeltaP50", WallNS: lat[len(lat)/2].Nanoseconds(), Ops: 1})
	benchRecorder.Record(bench.Stage{Name: "ServeDeltaP99", WallNS: lat[len(lat)*99/100].Nanoseconds(), Ops: 1})
}

// BenchmarkDetectSharded measures the sharded detection engine at scale:
// the unsharded pipeline against spatial sharding at one and four workers.
// On a multi-core host the worker sub-cases expose the thread scaling of
// the shard loop; on the single-core reference VM they bound its
// orchestration overhead instead (see EXPERIMENTS.md).
func BenchmarkDetectSharded(b *testing.B) {
	net := shardBenchFixture(b)
	cases := []struct {
		name    string
		shards  int
		workers int
	}{
		{"unsharded", 0, 1},
		{"shards=16/workers=1", 16, 1},
		{"shards=16/workers=4", 16, 4},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			st := record(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det, err := core.Detect(net, nil, core.Config{Shards: bc.shards, Workers: bc.workers})
				if err != nil {
					b.Fatal(err)
				}
				st.BallsTested += sumInts(det.BallsTested)
				st.NodesChecked += sumInts(det.NodesChecked)
			}
		})
	}
}

// ---- MeshIncremental: per-session cached mesh repair vs from-scratch ----

// meshIncStep is one frame of the prerecorded 50-delta mesh bench session:
// the topology and boundary groups after the delta, plus the (node, peers)
// dirty hint the incremental engine receives. Step 0 is the initial state
// (node < 0: nothing to invalidate). Adjacency is held twice — int rows for
// graph.Graph (the from-scratch arm) and int32 rows for mesh.Topology (the
// engine arm) — so neither arm pays a conversion inside the timed loop.
type meshIncStep struct {
	node   int
	peers  []int32
	groups [][]int
	adj    [][]int
	adj32  [][]int32
}

// meshBenchTopo adapts a frozen adjacency snapshot to mesh.Topology.
type meshBenchTopo struct{ adj [][]int32 }

func (t meshBenchTopo) Len() int                { return len(t.adj) }
func (t meshBenchTopo) Neighbors(u int) []int32 { return t.adj[u] }

var (
	meshIncOnce  sync.Once
	meshIncSteps []meshIncStep
	meshIncErr   error
)

// meshIncFixture records the canonical 50-delta session shape once: a ball
// deployment at the shard-bench density, then 50 random node moves applied
// through core.Incremental with a full state snapshot after each. Movers
// are drawn uniformly from the active set (interior-heavy, like a real
// session), so most deltas leave the boundary group's membership intact
// and the engine serves them from cache.
func meshIncFixture(b *testing.B) []meshIncStep {
	b.Helper()
	meshIncOnce.Do(func() {
		const n = 3600
		const bigR = 20.0
		const degree = 14.0
		surface := n / 8
		net, err := netgen.Generate(netgen.Config{
			Shape:         shapes.NewBall(geom.Zero, bigR),
			SurfaceNodes:  surface,
			InteriorNodes: n - surface,
			Radius:        bigR * math.Cbrt(degree/float64(n)),
			Seed:          2026,
		})
		if err != nil {
			meshIncErr = err
			return
		}
		inc, err := core.NewIncremental(net, core.Config{})
		if err != nil {
			meshIncErr = err
			return
		}
		snap := func(node int, peers []int32) meshIncStep {
			st := meshIncStep{
				node:   node,
				peers:  append([]int32(nil), peers...),
				groups: inc.Groups(),
				adj:    make([][]int, inc.Len()),
				adj32:  make([][]int32, inc.Len()),
			}
			for u := 0; u < inc.Len(); u++ {
				row := inc.Neighbors(u)
				st.adj32[u] = append([]int32(nil), row...)
				r := make([]int, len(row))
				for i, v := range row {
					r[i] = int(v)
				}
				st.adj[u] = r
			}
			return st
		}
		meshIncSteps = append(meshIncSteps, snap(-1, nil))
		rng := rand.New(rand.NewSource(7))
		ids := inc.ActiveIDs()
		for s := 0; s < 50; s++ {
			id := ids[rng.Intn(len(ids))]
			jit := func() float64 { return (rng.Float64() - 0.5) * net.Radius }
			pos := inc.PositionAt(id).Add(geom.V(jit(), jit(), jit()))
			if _, err := inc.Apply(core.Delta{Op: core.DeltaMove, Node: id, Pos: pos}); err != nil {
				meshIncErr = err
				return
			}
			node, peers := inc.LastTopology()
			meshIncSteps = append(meshIncSteps, snap(node, peers))
		}
	})
	if meshIncErr != nil {
		b.Fatal(meshIncErr)
	}
	return meshIncSteps
}

// BenchmarkMeshIncremental is the acceptance benchmark for the per-session
// surface engine: one op replays the prerecorded 50-delta session, either
// rebuilding every boundary surface from scratch after each delta (the
// pre-engine server behaviour) or serving it through one warm
// mesh.Incremental that repairs only invalidated groups. Both arms produce
// bit-identical surfaces (TestMeshIncrementalDifferential); the ratio of
// their ns_per_op is the per-delta speedup the engine buys and must stay
// at or above 5x.
func BenchmarkMeshIncremental(b *testing.B) {
	steps := meshIncFixture(b)
	b.Run("rebuild", func(b *testing.B) {
		record(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, st := range steps {
				g := &graph.Graph{Adj: st.adj}
				if _, err := mesh.BuildAll(g, st.groups, mesh.Config{K: 3}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		record(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := mesh.NewIncremental(mesh.Config{K: 3})
			var served []*mesh.Surface
			var err error
			for _, st := range steps {
				if st.node >= 0 {
					eng.Invalidate(nil, st.node, st.peers)
				}
				served, err = eng.Surfaces(context.Background(), nil, meshBenchTopo{st.adj32}, st.groups, served[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
