# Development targets. `make check` is the full local gate: static
# analysis, the complete test suite under the race detector (including the
# parallel sweep engine's scheduling-independence tests), a one-iteration
# benchmark smoke pass, and a short fuzz pass over every fuzz target.

GO      ?= go
FUZZTIME ?= 10s
# Per-benchmark time for `make bench`. Short enough for a laptop pass;
# raise it when recording a baseline worth keeping.
BENCHTIME ?= 0.3s

.PHONY: build test vet race race-shard fuzz bench benchsmoke trace-smoke trace-stat serve-smoke mesh-smoke ftdc-smoke detector-matrix bench-diff check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Focused race pass over the concurrent surfaces: the sharded detection
# engine's differential matrix and shard/halo suites (shard-parallel loops
# at several worker widths), the incremental engine's repair workers,
# boundaryd's concurrent session registry, the detector zoo's
# metamorphic/vocabulary suites (every registered detector's parallel
# candidate loops), the incremental surface engine's differential matrix
# (cached mesh repair at several worker widths), and the always-on
# metrics/FTDC capture path (atomic sinks racing a sampler goroutine).
# (The blanket `race` target covers these too; this target is the quick
# iteration loop.)
race-shard:
	$(GO) test -race -count=1 -run 'Shard|Incremental|Serve|Detector|Metrics|FTDC|Ring|Sampler|Mesh' ./internal/core ./internal/partition/shard ./internal/graph ./internal/serve ./internal/obs ./internal/obs/ftdc ./internal/mesh

# `go test -fuzz` accepts a single package per invocation, so each fuzz
# target gets its own run.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzCSRFromEdges -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run=^$$ -fuzz=FuzzFaultedDelivery -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=^$$ -fuzz=FuzzSpheresThrough3 -fuzztime=$(FUZZTIME) ./internal/geom
	$(GO) test -run=^$$ -fuzz=FuzzCircumcenter3 -fuzztime=$(FUZZTIME) ./internal/geom
	$(GO) test -run=^$$ -fuzz=FuzzLoadDiff -fuzztime=$(FUZZTIME) ./internal/obs/analyze
	$(GO) test -run=^$$ -fuzz=FuzzShardPartition -fuzztime=$(FUZZTIME) ./internal/partition/shard
	$(GO) test -run=^$$ -fuzz=FuzzFTDCReader -fuzztime=$(FUZZTIME) ./internal/obs/ftdc
	$(GO) test -run=^$$ -fuzz=FuzzMeshStitch -fuzztime=$(FUZZTIME) ./internal/mesh

# `make bench` records a machine-readable baseline (schema: internal/bench,
# documented in EXPERIMENTS.md) named for today's date.
bench:
	BENCH_JSON=BENCH_$$(date +%Y-%m-%d).json $(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) .

# One iteration of every benchmark, writing the baseline to a throwaway
# file — proves the suite and the BENCH_JSON writer stay runnable.
benchsmoke:
	BENCH_JSON=$$(mktemp -d)/BENCH_smoke.json $(GO) test -run '^$$' -bench . -benchtime 1x .

# End-to-end observability smoke: record a trace of a faulty asynchronous
# run at reduced scale, then let the run's own exit-time validation (and a
# non-empty-file check here) prove the JSONL matches the schema.
trace-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/experiment -run faults -async -scale 0.15 -trace $$dir/trace.jsonl && \
	test -s $$dir/trace.jsonl && echo "trace-smoke: OK ($$dir/trace.jsonl)"

# Flight-recorder analytics smoke: record a round-resolved trace, then run
# tracestat over it (curves + anomaly scan) and over the same trace twice
# as an identity diff, which must exit zero.
trace-stat:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/experiment -run faults -async -scale 0.15 -trace $$dir/trace.jsonl && \
	$(GO) run ./cmd/tracestat -trace $$dir/trace.jsonl -out $$dir/report.json && \
	$(GO) run ./cmd/tracestat -trace $$dir/trace.jsonl -against $$dir/trace.jsonl && \
	echo "trace-stat: OK"

# Boundary-server smoke: boundaryd's -smoke mode starts the server on an
# ephemeral port, POSTs a generated network over real HTTP, streams
# scripted delta batches, and diffs every served boundary-group result
# against a from-scratch detection of the same active node set — then
# re-exercises the deprecated unprefixed routes and a non-incremental
# detector session. Nonzero exit on any divergence, HTTP failure, or
# trace schema violation.
serve-smoke:
	$(GO) run ./cmd/boundaryd -smoke

# Incremental-mesh gate: the engine's differential matrix (cached repair
# vs from-scratch mesh.BuildAll, bit-identical after every scripted delta
# at several worker widths, with and without SPT reuse) plus the served
# mesh endpoint's own diffs, uncached. The boundaryd -smoke run above
# additionally probes GET /v1/sessions/{id}/mesh mid-delta-stream over
# real HTTP.
mesh-smoke:
	$(GO) test -count=1 -run 'TestMeshIncremental|TestServeMesh' ./internal/mesh ./internal/serve

# FTDC capture smoke: boundaryd's smoke harness under a fast-sampling
# binary metrics capture, then tracestat decoding the ring as a gate —
# at least two samples (start + exact final), a schema record, and a
# nonzero p99 for the serve and incremental stages.
ftdc-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/boundaryd -smoke -ftdc $$dir/cap -ftdc-interval 50ms && \
	$(GO) run ./cmd/tracestat -ftdc $$dir/cap -min-samples 2 -require-p99 serve,incremental && \
	echo "ftdc-smoke: OK"

# Cross-detector comparison smoke: every registered detector over the
# reduced standard fixtures, printing the precision/recall/cost table.
# Proves the -run detectors path and the whole registry stay runnable.
detector-matrix:
	$(GO) run ./cmd/experiment -run detectors -scale 0.15

# Tolerances for the bench regression gate. ns/op and allocs/op regress
# only when they *increase* beyond the fraction; the per-op work counters
# (balls tested, nodes checked) may drift either way by TOL_WORK — the
# instance-pool benchmarks average over i%16 pre-generated inputs, so the
# per-op mean shifts slightly whenever the harness picks an iteration
# count that is not a pool multiple. TOL_NS matches the measured noise
# ceiling of the reference VM (10–40%, see EXPERIMENTS.md): interleaved
# A/B of identical binaries shows the nanosecond-scale stages drifting
# ~30% between recording sessions, so a tighter wall-time gate fails on
# host state rather than code.
TOL_NS     ?= 0.40
TOL_ALLOCS ?= 0.10
TOL_WORK   ?= 0.02

# Regression gate: diff the two newest committed baselines (BENCH_*.json,
# named by date so lexical order is chronological). Fails when the newer
# baseline regressed beyond the tolerances above; a no-op until at least
# two baselines exist.
bench-diff:
	@set -- $$(ls BENCH_*.json 2>/dev/null | sort); \
	if [ $$# -lt 2 ]; then echo "bench-diff: need two BENCH_*.json baselines, have $$# — skipping"; exit 0; fi; \
	while [ $$# -gt 2 ]; do shift; done; \
	echo "bench-diff: $$1 -> $$2"; \
	$(GO) run ./cmd/tracestat -baseline $$2 -against $$1 \
		-tol-ns $(TOL_NS) -tol-allocs $(TOL_ALLOCS) -tol-work $(TOL_WORK)

check: vet race race-shard benchsmoke trace-smoke trace-stat serve-smoke mesh-smoke ftdc-smoke detector-matrix bench-diff fuzz

# The cache-defeating correctness gate for CI and pre-merge runs: static
# analysis plus the full test suite with result caching off, so every
# package really re-executes, then the end-to-end server and detector
# smokes.
ci:
	$(GO) vet ./...
	$(GO) test -count=1 ./...
	$(MAKE) serve-smoke
	$(MAKE) mesh-smoke
	$(MAKE) ftdc-smoke
	$(MAKE) detector-matrix
