# Development targets. `make check` is the full local gate: static
# analysis, the complete test suite under the race detector, and a short
# fuzz pass over every fuzz target.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: build test vet race fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# `go test -fuzz` accepts a single package per invocation, so each fuzz
# target gets its own run.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzFaultedDelivery -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=^$$ -fuzz=FuzzSpheresThrough3 -fuzztime=$(FUZZTIME) ./internal/geom
	$(GO) test -run=^$$ -fuzz=FuzzCircumcenter3 -fuzztime=$(FUZZTIME) ./internal/geom

check: vet race fuzz
