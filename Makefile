# Development targets. `make check` is the full local gate: static
# analysis, the complete test suite under the race detector (including the
# parallel sweep engine's scheduling-independence tests), a one-iteration
# benchmark smoke pass, and a short fuzz pass over every fuzz target.

GO      ?= go
FUZZTIME ?= 10s
# Per-benchmark time for `make bench`. Short enough for a laptop pass;
# raise it when recording a baseline worth keeping.
BENCHTIME ?= 0.3s

.PHONY: build test vet race fuzz bench benchsmoke trace-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# `go test -fuzz` accepts a single package per invocation, so each fuzz
# target gets its own run.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzFaultedDelivery -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run=^$$ -fuzz=FuzzSpheresThrough3 -fuzztime=$(FUZZTIME) ./internal/geom
	$(GO) test -run=^$$ -fuzz=FuzzCircumcenter3 -fuzztime=$(FUZZTIME) ./internal/geom

# `make bench` records a machine-readable baseline (schema: internal/bench,
# documented in EXPERIMENTS.md) named for today's date.
bench:
	BENCH_JSON=BENCH_$$(date +%Y-%m-%d).json $(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) .

# One iteration of every benchmark, writing the baseline to a throwaway
# file — proves the suite and the BENCH_JSON writer stay runnable.
benchsmoke:
	BENCH_JSON=$$(mktemp -d)/BENCH_smoke.json $(GO) test -run '^$$' -bench . -benchtime 1x .

# End-to-end observability smoke: record a trace of a faulty asynchronous
# run at reduced scale, then let the run's own exit-time validation (and a
# non-empty-file check here) prove the JSONL matches the schema.
trace-smoke:
	@dir=$$(mktemp -d); \
	$(GO) run ./cmd/experiment -run faults -async -scale 0.15 -trace $$dir/trace.jsonl && \
	test -s $$dir/trace.jsonl && echo "trace-smoke: OK ($$dir/trace.jsonl)"

check: vet race benchsmoke trace-smoke fuzz
