package par

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 1000
		var hits [n]int32
		err := For(n, workers, func(w, i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const workers = 4
	var seen sync.Map
	err := For(64, workers, func(w, i int) error {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		seen.Store(w, true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Regression: requesting more workers than runtime.GOMAXPROCS(0) used to
// spawn them all, and the oversubscribed pool was measurably slower than
// workers=1 on a 1-CPU host (DetectSharded/shards=16/workers=4 in
// BENCH_2026-08-07b). The dispatcher must cap the pool at the schedulable
// parallelism: worker IDs stay below GOMAXPROCS no matter how many
// workers the caller asks for.
func TestForCapsWorkersAtGOMAXPROCS(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, workers := range []int{gmp + 1, 4 * gmp, 100 * gmp} {
		var maxID int64 = -1
		err := For(10_000, workers, func(w, i int) error {
			for {
				cur := atomic.LoadInt64(&maxID)
				if int64(w) <= cur || atomic.CompareAndSwapInt64(&maxID, cur, int64(w)) {
					return nil
				}
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := atomic.LoadInt64(&maxID); got >= int64(gmp) {
			t.Errorf("workers=%d: saw worker id %d, want all ids < GOMAXPROCS=%d", workers, got, gmp)
		}
	}
}

func TestForZeroItems(t *testing.T) {
	if err := For(0, 4, func(w, i int) error { t.Error("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// Regression: the seed dispatcher kept sending every remaining index after
// the first error, so a failing 10^6-cell job ran all 10^6 cells anyway.
// After the fix, dispatch must stop almost immediately.
func TestForStopsDispatchAfterError(t *testing.T) {
	boom := errors.New("boom")
	const n = 1_000_000
	var calls int64
	err := For(n, 4, func(w, i int) error {
		atomic.AddInt64(&calls, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// In-flight work may finish, but the dispatcher must not have pushed
	// anywhere near the full index range.
	if c := atomic.LoadInt64(&calls); c > n/100 {
		t.Errorf("ran %d of %d indices after the first error", c, n)
	}
}

// Regression: a panicking worker died without draining the channel, which
// left the dispatcher blocked on an unbuffered send forever (deadlock).
// After the fix the panic must surface as an error and For must return.
func TestForRecoversWorkerPanic(t *testing.T) {
	err := For(10_000, 2, func(w, i int) error {
		if i == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic was swallowed")
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v, want the panic value preserved", err)
	}
}

// All workers panicking at once must still unblock the dispatcher.
func TestForRecoversAllWorkersPanicking(t *testing.T) {
	err := For(10_000, 4, func(w, i int) error {
		panic(i)
	})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want panic error", err)
	}
}

func TestForReturnsFirstRecordedError(t *testing.T) {
	sentinel := errors.New("cell failed")
	err := For(100, 3, func(w, i int) error {
		if i%10 == 9 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}
