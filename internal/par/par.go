// Package par provides the bounded worker pool shared by the detection
// pipeline (per-node stages in internal/core) and the evaluation sweep
// engine (per-cell studies in internal/eval).
//
// The pool is deliberately minimal: a fixed number of workers drains an
// index stream. Two failure modes of the naive channel loop are handled
// here so every caller inherits the fix:
//
//   - once any invocation fails, dispatch stops — the remaining indices
//     are never sent, so a long job aborts promptly instead of running
//     every cell to completion just to discard the results;
//   - a panicking invocation is recovered into an error instead of
//     killing its worker goroutine, which would otherwise leave the
//     dispatcher blocked on an unbuffered send forever.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// For runs fn(worker, i) for every i in [0, n) on the given number of
// workers and returns the first error (by completion order; ties broken
// arbitrarily). worker identifies the executing worker in [0, workers),
// letting callers thread per-worker scratch state through without locking.
//
// workers <= 0 means runtime.GOMAXPROCS(0); the pool never spawns more
// than n workers, and never more than runtime.GOMAXPROCS(0) — extra
// goroutines beyond the schedulable parallelism only add channel handoffs
// and scheduler churn (measurably slower on a 1-CPU host), so an
// oversubscribed request is capped, not honored. After the first error or
// panic no further indices are dispatched; invocations already in flight
// run to completion. A panic in fn is returned as an error carrying the
// panic value.
func For(n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if gmp := runtime.GOMAXPROCS(0); workers <= 0 || workers > gmp {
		workers = gmp
	}
	if workers > n {
		workers = n
	}

	var (
		mu       sync.Mutex
		firstErr error
		stop     = make(chan struct{})
		stopOnce sync.Once
	)
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					record(fmt.Errorf("par: worker %d panic: %v", w, r))
				}
			}()
			for i := range work {
				if err := fn(w, i); err != nil {
					record(err)
					return
				}
			}
		}(w)
	}

dispatch:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-stop:
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	return firstErr
}
