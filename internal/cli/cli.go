// Package cli unifies the flag surface and output conventions of the
// repository's commands (boundary3d, experiment, netgen): one Common
// options block registering the shared -seed, -workers, -shards,
// -detector, -out, -trace and -pprof flags; one Session wiring those
// options into the obs layer
// (JSONL trace writer, pprof capture); and one JSON output envelope so
// every command's -out file has the same machine-readable framing.
package cli

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/ftdc"
)

// Common is the flag block every command shares. Register it on the
// command's FlagSet, parse, then Start a Session to realize the
// observability options.
type Common struct {
	// Seed overrides the run's base RNG seed; 0 keeps each scenario's
	// default.
	Seed int64
	// Workers bounds worker-pool parallelism (sweep engine and pipeline).
	// 0 means one worker per CPU; results are identical at any width.
	Workers int
	// Shards selects the sharded detection engine: above 1 the node set
	// is cut into that many spatial shards detected in parallel, with
	// results bit-identical to the unsharded pipeline. 0 or 1 keeps the
	// ordinary single-shard path.
	Shards int
	// Detector names the boundary-detection algorithm from the core
	// registry ("" = the paper's UBF/IFF pipeline).
	Detector string
	// Out is the path of the command's JSON envelope output ("" = none).
	Out string
	// Trace is the path of the JSONL observability trace ("" = none).
	Trace string
	// Pprof is the path prefix for CPU/heap profile capture ("" = none);
	// the profiles land at <prefix>.cpu.pprof and <prefix>.heap.pprof.
	Pprof string
	// FTDC is the directory of the binary delta-encoded metrics capture
	// ring ("" = none). The session attaches an always-on obs.Metrics
	// sink and samples it into the ring every FTDCInterval.
	FTDC string
	// FTDCInterval is the capture sampling period (0 = 1s; floor 10ms).
	FTDCInterval time.Duration
}

// Register installs the shared flags on the flag set.
func (c *Common) Register(fs *flag.FlagSet) {
	fs.Int64Var(&c.Seed, "seed", 0, "base RNG seed override (0 = scenario defaults)")
	fs.IntVar(&c.Workers, "workers", 0, "worker-pool width (0 = one per CPU; any width gives identical results)")
	fs.IntVar(&c.Shards, "shards", 0, "spatial shard count for detection (<= 1 = unsharded; any count gives identical results)")
	fs.StringVar(&c.Detector, "detector", "", "boundary detector to run: "+strings.Join(core.DetectorNames(), ", ")+" (\"\" = paper)")
	fs.StringVar(&c.Out, "out", "", "write the run's results as a JSON envelope to this path")
	fs.StringVar(&c.Trace, "trace", "", "write an observability trace (JSONL stage events and counters) to this path")
	fs.StringVar(&c.Pprof, "pprof", "", "capture CPU and heap profiles under this path prefix")
	fs.StringVar(&c.FTDC, "ftdc", "", "capture delta-encoded binary metrics (FTDC ring) into this directory")
	fs.DurationVar(&c.FTDCInterval, "ftdc-interval", 0, "FTDC sampling period (0 = 1s, minimum 10ms)")
}

// Validate rejects option values no command can honor, by delegating to
// core.Config.Validate — the single validation choke point shared with
// the serving layer — and prefixing the offending flag's spelling, so a
// bad -workers, -shards or -detector fails fast at startup with the same
// diagnostic everywhere.
func (c Common) Validate() error {
	err := c.DetectConfig().Validate()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrNegativeWorkers):
		return fmt.Errorf("cli: -workers: %w", err)
	case errors.Is(err, core.ErrNegativeShards):
		return fmt.Errorf("cli: -shards: %w", err)
	case errors.Is(err, core.ErrUnknownDetector):
		return fmt.Errorf("cli: -detector: %w", err)
	}
	return fmt.Errorf("cli: %w", err)
}

// DetectConfig projects the shared options onto a detection config; the
// command layers its own scenario-specific fields on top.
func (c Common) DetectConfig() core.Config {
	return core.Config{Workers: c.Workers, Shards: c.Shards, Detector: c.Detector}
}

// Session realizes a Common's observability options for one run: the
// trace sink behind Obs and an optional profiler. Always Close it —
// Close stops the profiles, flushes the trace, and validates the written
// JSONL against the schema (the summary lands in Summary).
type Session struct {
	// Obs is the observer to thread through the run; nil when -trace and
	// -ftdc are both unset, so unobserved runs keep the zero-cost no-op
	// path.
	Obs obs.Observer
	// Summary aggregates the validated trace after Close; zero without
	// -trace.
	Summary obs.TraceSummary
	// Metrics is the always-on aggregation sink behind -ftdc; nil when
	// -ftdc is unset. Live reads (LatencySummaries, Totals) are safe
	// while the run is in flight.
	Metrics *obs.Metrics
	// FTDC holds the capture ring's activity stats after Close; zero
	// without -ftdc.
	FTDC ftdc.RingStats

	tracePath string
	traceFile *os.File
	trace     *obs.JSONL
	prof      *obs.Profiler
	sampler   *ftdc.Sampler
	vocab     []obs.Stage
}

// Start opens the session: creates the trace file and starts profiling,
// as requested by the options.
func (c Common) Start() (*Session, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := &Session{tracePath: c.Trace}
	if d, ok := core.LookupDetector(c.Detector); ok {
		s.vocab = d.Vocab().Stages
	}
	if c.Trace != "" {
		f, err := os.Create(c.Trace)
		if err != nil {
			return nil, fmt.Errorf("cli: trace: %w", err)
		}
		s.traceFile = f
		s.trace = obs.NewJSONL(f)
		s.Obs = s.trace
	}
	if c.FTDC != "" {
		ring, err := ftdc.OpenRing(c.FTDC, ftdc.RingOptions{})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("cli: ftdc: %w", err)
		}
		s.Metrics = &obs.Metrics{}
		s.sampler = ftdc.StartSampler(s.Metrics, ring, c.FTDCInterval)
		s.Obs = obs.Tee(s.Obs, s.Metrics)
	}
	if c.Pprof != "" {
		p, err := obs.StartProfilePrefix(c.Pprof)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.prof = p
	}
	return s, nil
}

// SetVocabStages overrides the stage vocabulary the session's trace is
// validated against at Close. The default is the configured detector's
// declared Vocab().Stages; runs that host several detectors under one
// trace (experiment -run detectors, boundaryd) must widen to the union —
// see AllDetectorVocabStages.
func (s *Session) SetVocabStages(stages []obs.Stage) {
	if s != nil {
		s.vocab = stages
	}
}

// AllDetectorVocabStages returns the union of every registered
// detector's declared stage vocabulary — the widest set a multi-detector
// run can legitimately emit under.
func AllDetectorVocabStages() []obs.Stage {
	seen := map[obs.Stage]bool{}
	var out []obs.Stage
	for _, name := range core.DetectorNames() {
		d, ok := core.LookupDetector(name)
		if !ok {
			continue
		}
		for _, st := range d.Vocab().Stages {
			if !seen[st] {
				seen[st] = true
				out = append(out, st)
			}
		}
	}
	return out
}

// Close stops profiling, flushes and closes the trace, then re-reads the
// written file and validates it against the trace schema, storing the
// aggregate in Summary. Safe on a zero-option session.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var firstErr error
	if err := s.prof.Stop(); err != nil {
		firstErr = err
	}
	s.prof = nil
	if s.sampler != nil {
		// Stop before reading anything: the final ring sample must be
		// exact, which requires the run's emitters to have quiesced.
		if err := s.sampler.Stop(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cli: ftdc capture: %w", err)
		}
		s.FTDC = s.sampler.Stats()
		s.sampler = nil
	}
	if s.trace != nil {
		// Flush surfaces the sticky encoding error if one occurred; check
		// Err separately anyway so a truncated trace can never close
		// cleanly. A command must turn this into a nonzero exit.
		if err := s.trace.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cli: trace flush: %w", err)
		}
		if err := s.trace.Err(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cli: trace write: %w", err)
		}
		s.trace = nil
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.traceFile = nil
		f, err := os.Open(s.tracePath)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			sum, verr := obs.ValidateTraceVocab(f, s.vocab)
			f.Close()
			if verr != nil && firstErr == nil {
				firstErr = fmt.Errorf("cli: trace failed schema validation: %w", verr)
			}
			s.Summary = sum
		}
	}
	return firstErr
}

// Envelope is the shared JSON framing of every command's -out file: the
// producing tool, the run's shared options, free-form parameters, and the
// tool-specific payload.
type Envelope struct {
	Tool     string         `json:"tool"`
	Seed     int64          `json:"seed,omitempty"`
	Workers  int            `json:"workers,omitempty"`
	Shards   int            `json:"shards,omitempty"`
	Detector string         `json:"detector,omitempty"`
	Params   map[string]any `json:"params,omitempty"`
	Data     any            `json:"data"`
}

// NewEnvelope frames a payload with the session's shared options.
func (c Common) NewEnvelope(tool string, params map[string]any, data any) Envelope {
	return Envelope{Tool: tool, Seed: c.Seed, Workers: c.Workers, Shards: c.Shards, Detector: c.Detector, Params: params, Data: data}
}

// WriteEnvelope writes the envelope as indented JSON to path.
func WriteEnvelope(path string, env Envelope) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ErrNotEnvelope marks input that parses as JSON but is not an output
// envelope (no "tool"/"data" framing). Callers with a legacy payload
// format should fall back exactly when errors.Is(err, ErrNotEnvelope);
// any other ReadEnvelope error means the input claims to be an envelope
// (or is not JSON at all) and must not be reinterpreted.
var ErrNotEnvelope = errors.New("cli: not an output envelope (missing tool/data)")

// ReadEnvelope parses an envelope, leaving Data raw for the caller to
// decode. It fails with ErrNotEnvelope on JSON that is not an envelope
// (no "tool" key), so callers can fall back to a legacy payload format,
// and rejects input with trailing data after the envelope document — a
// truncated-then-concatenated -out file used to parse "successfully" as
// its first document.
func ReadEnvelope(raw []byte) (Envelope, json.RawMessage, error) {
	var probe struct {
		Tool     string          `json:"tool"`
		Seed     int64           `json:"seed"`
		Workers  int             `json:"workers"`
		Shards   int             `json:"shards"`
		Detector string          `json:"detector"`
		Params   map[string]any  `json:"params"`
		Data     json.RawMessage `json:"data"`
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(&probe); err != nil {
		return Envelope{}, nil, err
	}
	if tok, err := dec.Token(); err != io.EOF {
		return Envelope{}, nil, fmt.Errorf("cli: trailing data after envelope at offset %d (token %v)", dec.InputOffset(), tok)
	}
	if probe.Tool == "" || probe.Data == nil {
		return Envelope{}, nil, ErrNotEnvelope
	}
	if probe.Detector != "" {
		if _, ok := core.LookupDetector(probe.Detector); !ok {
			return Envelope{}, nil, fmt.Errorf("cli: envelope names unknown detector %q (valid: %s)",
				probe.Detector, strings.Join(core.DetectorNames(), ", "))
		}
	}
	return Envelope{
		Tool: probe.Tool, Seed: probe.Seed, Workers: probe.Workers, Shards: probe.Shards,
		Detector: probe.Detector, Params: probe.Params,
	}, probe.Data, nil
}

// MarshalRaw renders any value to a raw JSON message — the helper for
// embedding writer-style exports (e.g. a network) into an envelope.
func MarshalRaw(write func(w *bytes.Buffer) error) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return nil, err
	}
	return json.RawMessage(buf.Bytes()), nil
}
