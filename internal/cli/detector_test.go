package cli_test

import (
	"encoding/json"
	"flag"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/core"
)

// TestDetectorEnvelopeRoundTrip pins the detector field's strict
// round-trip: a valid registry name written by NewEnvelope comes back
// verbatim from ReadEnvelope, and an envelope naming an unregistered
// detector is rejected with the registry's valid-name list in the error.
func TestDetectorEnvelopeRoundTrip(t *testing.T) {
	c := cli.Common{Seed: 7, Workers: 2, Detector: "sv-contour"}
	env := c.NewEnvelope("test", nil, map[string]int{"n": 1})
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := cli.ReadEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Detector != "sv-contour" {
		t.Fatalf("detector round-tripped as %q, want %q", back.Detector, "sv-contour")
	}

	// "" (paper default) is omitted from the JSON and reads back empty.
	c.Detector = ""
	raw, err = json.Marshal(c.NewEnvelope("test", nil, map[string]int{"n": 1}))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "detector") {
		t.Fatalf("empty detector must be omitted from the envelope: %s", raw)
	}
	if back, _, err = cli.ReadEnvelope(raw); err != nil || back.Detector != "" {
		t.Fatalf("default-detector envelope read back as %q, %v", back.Detector, err)
	}

	// Unknown names are rejected at read time with the valid spellings.
	bad := strings.Replace(string(raw), `"tool"`, `"detector":"nope","tool"`, 1)
	if _, _, err := cli.ReadEnvelope([]byte(bad)); err == nil ||
		!strings.Contains(err.Error(), `"nope"`) ||
		!strings.Contains(err.Error(), core.DefaultDetector) {
		t.Fatalf("unknown detector must fail with the valid-name list, got %v", err)
	}
}

// TestDetectorFlagValidation pins the shared -detector flag: it is
// registered by Common.Register, and Common.Validate routes bad names
// through core.Config.Validate's single choke point.
func TestDetectorFlagValidation(t *testing.T) {
	var c cli.Common
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-detector", "degree-stats"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid detector rejected: %v", err)
	}
	if c.DetectConfig().Detector != "degree-stats" {
		t.Fatalf("DetectConfig dropped the detector, got %q", c.DetectConfig().Detector)
	}

	if err := fs.Parse([]string{"-detector", "no-such"}); err != nil {
		t.Fatal(err)
	}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown detector") {
		t.Fatalf("unknown detector must fail Validate, got %v", err)
	}
}
