package cli_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

// TestShardedEnvelopeDeterministicAcrossGOMAXPROCS is the end-to-end
// determinism regression: the same sharded detection serialized into the
// shared CLI envelope must produce byte-identical JSON at GOMAXPROCS 1, 2
// and 4 (Workers=0 sizes the pool per CPU, so the parallel schedule truly
// differs between runs). It lives here rather than in internal/core
// because cli imports core for detector validation.
func TestShardedEnvelopeDeterministicAcrossGOMAXPROCS(t *testing.T) {
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:    200,
		InteriorNodes:   400,
		TargetAvgDegree: 14,
		Seed:            13,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := cli.Common{Shards: 4}
	var want []byte
	for _, procs := range []int{1, 2, 4} {
		prev := runtime.GOMAXPROCS(procs)
		res, err := core.Detect(net, nil, core.Config{Shards: opts.Shards, Workers: opts.Workers})
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		env := opts.NewEnvelope("shard-determinism-test", map[string]any{"nodes": net.G.Len()}, res)
		raw, err := json.MarshalIndent(env, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = raw
			continue
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("GOMAXPROCS=%d: envelope differs from GOMAXPROCS=1 baseline", procs)
		}
	}
}
