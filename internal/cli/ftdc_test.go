package cli_test

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/obs/ftdc"
)

// TestSessionFTDCExactCapture is the acceptance gate for the capture
// path: a -ftdc session's decoded ring must report the SAME counter
// totals as an in-memory obs sink fed the identical event stream —
// exact equality, not tolerance — and carry per-stage latency
// quantiles.
func TestSessionFTDCExactCapture(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ftdc")
	c := cli.Common{FTDC: dir}
	sess, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Metrics == nil {
		t.Fatal("-ftdc session has no Metrics sink")
	}

	sc := eval.StandardFixtures()[0].Scaled(0.1)
	net, err := sc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mem := &obs.Mem{}
	o := obs.Tee(sess.Obs, mem)
	if _, err := core.DetectContext(context.Background(), o, net, nil, core.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if sess.FTDC.Samples < 2 { // initial + final at minimum
		t.Fatalf("ring stats report %d samples, want >= 2", sess.FTDC.Samples)
	}

	samples, stats, err := ftdc.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != sess.FTDC.Samples {
		t.Fatalf("decoded %d samples, ring wrote %d", stats.Samples, sess.FTDC.Samples)
	}
	final := samples[len(samples)-1]
	got, want := ftdc.CounterTotals(final), mem.Totals()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded ring diverged from the in-memory sink:\n ring %v\n mem  %v", got, want)
	}
	// Per-stage latency quantiles are present for every spanned stage.
	for _, stage := range []obs.Stage{obs.StageDetect, obs.StageUBF, obs.StageIFF} {
		stat := ftdc.Latency(final, stage.String()).Stats()
		if stat.Count != int64(mem.Spans(stage)) {
			t.Fatalf("stage %s: ring has %d spans, mem %d", stage, stat.Count, mem.Spans(stage))
		}
		if stat.Count > 0 && (stat.P50NS <= 0 || stat.P99NS < stat.P50NS || stat.MaxNS < stat.P99NS) {
			t.Fatalf("stage %s: quantiles not sane: %+v", stage, stat)
		}
	}
}

// TestFTDCCaptureBitIdentity: telemetry never changes verdicts. Over the
// three standard fixtures, detection under a live FTDC capture session
// must produce bit-identical boundaries and groups to an unobserved run.
func TestFTDCCaptureBitIdentity(t *testing.T) {
	c := cli.Common{FTDC: filepath.Join(t.TempDir(), "ftdc")}
	sess, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	for _, sc := range eval.StandardFixtures() {
		sc = sc.Scaled(0.1)
		net, err := sc.Generate()
		if err != nil {
			t.Fatal(err)
		}
		off, err := core.DetectContext(context.Background(), nil, net, nil, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		on, err := core.DetectContext(context.Background(), sess.Obs, net, nil, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(off.Boundary, on.Boundary) {
			t.Fatalf("%s: capture changed the boundary verdicts", sc.Name)
		}
		if !reflect.DeepEqual(off.Groups, on.Groups) {
			t.Fatalf("%s: capture changed the boundary groups", sc.Name)
		}
	}
}

// TestSessionFTDCVocabUnion: AllDetectorVocabStages admits every
// registered detector's stages, and a session can widen to it.
func TestSessionFTDCVocabUnion(t *testing.T) {
	stages := cli.AllDetectorVocabStages()
	seen := map[obs.Stage]bool{}
	for _, s := range stages {
		if seen[s] {
			t.Fatalf("duplicate stage %s in union", s)
		}
		seen[s] = true
	}
	for _, name := range core.DetectorNames() {
		d, _ := core.LookupDetector(name)
		for _, s := range d.Vocab().Stages {
			if !seen[s] {
				t.Fatalf("union misses %s's stage %s", name, s)
			}
		}
	}
	// A nil session tolerates the setter (mirrors the nil-safe Close).
	var nilSess *cli.Session
	nilSess.SetVocabStages(stages)
}
