package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestCommonRegisterDefaults: the shared flag block parses with its
// documented defaults and accepts the conventional overrides.
func TestCommonRegisterDefaults(t *testing.T) {
	var c Common
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 0 || c.Workers != 0 || c.Out != "" || c.Trace != "" || c.Pprof != "" {
		t.Errorf("defaults wrong: %+v", c)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	c = Common{}
	c.Register(fs)
	if err := fs.Parse([]string{"-seed", "42", "-workers", "3", "-out", "o.json", "-trace", "t.jsonl", "-pprof", "p"}); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 42 || c.Workers != 3 || c.Out != "o.json" || c.Trace != "t.jsonl" || c.Pprof != "p" {
		t.Errorf("parsed values wrong: %+v", c)
	}
}

// TestSessionTraceLifecycle: Start wires a JSONL observer, Close validates
// the written trace and surfaces its summary.
func TestSessionTraceLifecycle(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	c := Common{Trace: trace}
	s, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs == nil {
		t.Fatal("no observer with -trace set")
	}
	span := obs.Start(s.Obs, obs.StageDetect)
	obs.Add(s.Obs, obs.StageUBF, obs.CtrBallsTested, 3)
	span.End()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Summary.Events != 3 {
		t.Errorf("summary events = %d, want 3", s.Summary.Events)
	}
	if s.Summary.Total(obs.StageUBF, obs.CtrBallsTested) != 3 {
		t.Errorf("summary counters wrong: %+v", s.Summary.Counters)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Errorf("trace file missing: %v", err)
	}
}

// TestSessionZeroOptions: no trace, no profile — the session is inert and
// its observer nil, preserving the no-op pipeline path.
func TestSessionZeroOptions(t *testing.T) {
	s, err := Common{}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs != nil {
		t.Error("zero-option session has an observer")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSession *Session
	if err := nilSession.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionPprof: the -pprof prefix produces both profile files.
func TestSessionPprof(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "prof")
	s, err := Common{Pprof: prefix}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Errorf("profile %s missing: %v", suffix, err)
		}
	}
}

// TestEnvelopeRoundTrip: WriteEnvelope output reads back with the framing
// fields intact and the payload raw.
func TestEnvelopeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	c := Common{Seed: 7, Workers: 2}
	env := c.NewEnvelope("testtool", map[string]any{"k": 3.0}, map[string]string{"hello": "world"})
	if err := WriteEnvelope(path, env); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, data, err := ReadEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "testtool" || got.Seed != 7 || got.Workers != 2 || got.Params["k"] != 3.0 {
		t.Errorf("envelope framing wrong: %+v", got)
	}
	var payload map[string]string
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload["hello"] != "world" {
		t.Errorf("payload wrong: %v", payload)
	}
}

// TestReadEnvelopeRejectsLegacy: non-envelope JSON fails, so callers can
// fall back to their legacy formats.
func TestReadEnvelopeRejectsLegacy(t *testing.T) {
	for name, raw := range map[string]string{
		"bare object": `{"nodes": [1, 2, 3]}`,
		"no data":     `{"tool": "x"}`,
		"not json":    `nope`,
	} {
		if _, _, err := ReadEnvelope([]byte(raw)); err == nil {
			t.Errorf("%s accepted as envelope", name)
		}
	}
}

// TestMarshalRaw embeds writer-style output as raw JSON.
func TestMarshalRaw(t *testing.T) {
	raw, err := MarshalRaw(func(w *bytes.Buffer) error {
		w.WriteString(`{"a": 1}`)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"a"`) {
		t.Errorf("raw payload wrong: %s", raw)
	}
	env := Envelope{Tool: "t", Data: raw}
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"data":{"a":1}`) {
		t.Errorf("raw message did not inline: %s", out)
	}
}
