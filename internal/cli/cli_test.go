package cli

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestCommonRegisterDefaults: the shared flag block parses with its
// documented defaults and accepts the conventional overrides.
func TestCommonRegisterDefaults(t *testing.T) {
	var c Common
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 0 || c.Workers != 0 || c.Out != "" || c.Trace != "" || c.Pprof != "" {
		t.Errorf("defaults wrong: %+v", c)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	c = Common{}
	c.Register(fs)
	if err := fs.Parse([]string{"-seed", "42", "-workers", "3", "-out", "o.json", "-trace", "t.jsonl", "-pprof", "p"}); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 42 || c.Workers != 3 || c.Out != "o.json" || c.Trace != "t.jsonl" || c.Pprof != "p" {
		t.Errorf("parsed values wrong: %+v", c)
	}
}

// TestCommonValidateRejectsNegative pins the config-seam fix: negative
// -workers and -shards used to sail through Start into the worker pool
// and partitioner, where they were silently clamped; now every command
// fails fast at the flag seam.
func TestCommonValidateRejectsNegative(t *testing.T) {
	for name, c := range map[string]Common{
		"workers": {Workers: -1},
		"shards":  {Shards: -2},
		"both":    {Workers: -4, Shards: -4},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, c)
		}
		if s, err := c.Start(); err == nil {
			s.Close()
			t.Errorf("%s: Start accepted %+v", name, c)
		}
	}
	if err := (Common{Workers: 0, Shards: 0}).Validate(); err != nil {
		t.Errorf("zero values rejected: %v", err)
	}
	if err := (Common{Workers: 8, Shards: 4}).Validate(); err != nil {
		t.Errorf("positive values rejected: %v", err)
	}
}

// TestSessionTraceLifecycle: Start wires a JSONL observer, Close validates
// the written trace and surfaces its summary.
func TestSessionTraceLifecycle(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	c := Common{Trace: trace}
	s, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs == nil {
		t.Fatal("no observer with -trace set")
	}
	span := obs.Start(s.Obs, obs.StageDetect)
	obs.Add(s.Obs, obs.StageUBF, obs.CtrBallsTested, 3)
	span.End()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Summary.Events != 3 {
		t.Errorf("summary events = %d, want 3", s.Summary.Events)
	}
	if s.Summary.Total(obs.StageUBF, obs.CtrBallsTested) != 3 {
		t.Errorf("summary counters wrong: %+v", s.Summary.Counters)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Errorf("trace file missing: %v", err)
	}
}

// TestSessionZeroOptions: no trace, no profile — the session is inert and
// its observer nil, preserving the no-op pipeline path.
func TestSessionZeroOptions(t *testing.T) {
	s, err := Common{}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs != nil {
		t.Error("zero-option session has an observer")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSession *Session
	if err := nilSession.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCloseInvalidTrace: Close re-validates the written trace and
// must fail when the file does not conform to the schema, so a command
// propagating Close's error exits nonzero on a corrupt trace. The session
// writes no events of its own (nothing buffered to flush over the
// injected garbage), and a second handle appends a non-JSONL line before
// Close runs validation.
func TestSessionCloseInvalidTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	c := Common{Trace: trace}
	s, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(trace, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("this is not a trace event\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	err = s.Close()
	if err == nil {
		t.Fatal("Close accepted a trace that fails schema validation")
	}
	if !strings.Contains(err.Error(), "schema") {
		t.Errorf("Close error does not name schema validation: %v", err)
	}
}

// TestSessionPprof: the -pprof prefix produces both profile files.
func TestSessionPprof(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "prof")
	s, err := Common{Pprof: prefix}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Errorf("profile %s missing: %v", suffix, err)
		}
	}
}

// TestEnvelopeRoundTrip: WriteEnvelope output reads back with the framing
// fields intact and the payload raw.
func TestEnvelopeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	c := Common{Seed: 7, Workers: 2, Shards: 4}
	env := c.NewEnvelope("testtool", map[string]any{"k": 3.0}, map[string]string{"hello": "world"})
	if err := WriteEnvelope(path, env); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, data, err := ReadEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "testtool" || got.Seed != 7 || got.Workers != 2 || got.Shards != 4 || got.Params["k"] != 3.0 {
		t.Errorf("envelope framing wrong: %+v", got)
	}
	var payload map[string]string
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload["hello"] != "world" {
		t.Errorf("payload wrong: %v", payload)
	}
}

// TestReadEnvelopeRejectsLegacy: non-envelope JSON fails with
// ErrNotEnvelope specifically, so callers can fall back to their legacy
// formats on exactly that error and no other.
func TestReadEnvelopeRejectsLegacy(t *testing.T) {
	for name, raw := range map[string]string{
		"bare object":          `{"nodes": [1, 2, 3]}`,
		"no data":              `{"tool": "x"}`,
		"no tool":              `{"data": {"nodes": []}}`,
		"trailing whitespace":  `{"nodes": [1]}` + "\n\t \n",
		"legacy network shape": `{"radius": 1.5, "nodes": [{"x": 0, "y": 0, "z": 0}]}`,
	} {
		if _, _, err := ReadEnvelope([]byte(raw)); !errors.Is(err, ErrNotEnvelope) {
			t.Errorf("%s: got %v, want ErrNotEnvelope", name, err)
		}
	}
}

// TestReadEnvelopeMalformed pins the trailing-data fix: a concatenated or
// garbage-suffixed file used to parse "successfully" as its first JSON
// document. These must all hard-fail, and never with ErrNotEnvelope — a
// caller must not reinterpret them as a legacy payload.
func TestReadEnvelopeMalformed(t *testing.T) {
	envelope := `{"tool": "netgen", "data": {"radius": 1}}`
	cases := map[string]struct {
		raw  string
		want string // substring the error must mention ("" = any)
	}{
		"two concatenated envelopes": {envelope + "\n" + envelope, "trailing data"},
		"envelope plus garbage":      {envelope + " trailing-garbage", "trailing data"},
		"legacy plus second doc":     {`{"radius": 1}{"radius": 2}`, "trailing data"},
		"truncated envelope":         {envelope[:len(envelope)-5], ""},
		"empty input":                {"", ""},
		"top-level array":            {`[1, 2, 3]`, ""},
		"not json":                   {`nope`, ""},
	}
	for name, tc := range cases {
		_, _, err := ReadEnvelope([]byte(tc.raw))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if errors.Is(err, ErrNotEnvelope) && tc.want != "" {
			t.Errorf("%s: classified as legacy fallback: %v", name, err)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", name, err, tc.want)
		}
	}

	// A well-formed envelope with the conventional trailing newline (as
	// WriteEnvelope emits) must still parse.
	if _, _, err := ReadEnvelope([]byte(envelope + "\n")); err != nil {
		t.Errorf("trailing newline rejected: %v", err)
	}
}

// TestMarshalRaw embeds writer-style output as raw JSON.
func TestMarshalRaw(t *testing.T) {
	raw, err := MarshalRaw(func(w *bytes.Buffer) error {
		w.WriteString(`{"a": 1}`)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"a"`) {
		t.Errorf("raw payload wrong: %s", raw)
	}
	env := Envelope{Tool: "t", Data: raw}
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"data":{"a":1}`) {
		t.Errorf("raw message did not inline: %s", out)
	}
}
