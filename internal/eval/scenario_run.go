package eval

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/ranging"
	"repro/internal/routing"
)

// ScenarioReport is the per-scenario summary behind Figs. 6–10: detection
// quality at a given error level, the discovered boundary count, and the
// quality of every reconstructed surface, plus greedy routing on the
// largest surface (the application the paper motivates).
type ScenarioReport struct {
	Name       string
	Figure     string
	Stats      netgen.Stats
	ErrorFrac  float64
	Detection  metrics.Report
	WantGroups int // boundary surfaces the deployment shape implies
	Groups     int // boundary groups the pipeline discovered
	Surfaces   []mesh.Quality
	Routing    routing.Stats
}

// RunScenario deploys one scenario, detects its boundaries at the given
// ranging error, reconstructs every boundary surface, and runs the greedy
// routing experiment on the largest one.
//
// Deprecated: kept as a thin wrapper; new code should call
// RunScenarioContext, which adds cancellation and observer injection.
func RunScenario(sc Scenario, errorFrac float64, detectCfg core.Config, meshCfg mesh.Config) (*ScenarioReport, error) {
	return RunScenarioContext(context.Background(), nil, sc, errorFrac, detectCfg, meshCfg)
}

// RunScenarioContext is RunScenario with cancellation and observation:
// the detection pipeline and every surface construction emit their stage
// events to o under a labeled StageCell span.
func RunScenarioContext(ctx context.Context, o obs.Observer, sc Scenario, errorFrac float64, detectCfg core.Config, meshCfg mesh.Config) (*ScenarioReport, error) {
	shape, err := sc.MakeShape()
	if err != nil {
		return nil, err
	}
	net, err := sc.Generate()
	if err != nil {
		return nil, err
	}
	rep := &ScenarioReport{
		Name:       sc.Name,
		Figure:     sc.Figure,
		Stats:      net.Stats(),
		ErrorFrac:  errorFrac,
		WantGroups: shape.SurfaceComponents(),
	}

	span := obs.StartLabeled(o, obs.StageCell, fmt.Sprintf("%s/err=%g", sc.Name, errorFrac))
	defer span.End()
	meas := net.Measure(ranging.ForFraction(errorFrac), sc.Seed*7)
	det, err := core.DetectContext(ctx, o, net, meas, detectCfg)
	if err != nil {
		return nil, fmt.Errorf("detect: %w", err)
	}
	rep.Detection, err = metrics.Evaluate(net.G, net.TrueBoundary(), det.Boundary, MaxHops)
	if err != nil {
		return nil, err
	}
	rep.Groups = len(det.Groups)

	surfaces, err := mesh.BuildAllContext(ctx, o, net.G, det.Groups, meshCfg)
	if err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	var largest *mesh.Surface
	for _, s := range surfaces {
		rep.Surfaces = append(rep.Surfaces, s.Quality)
		if largest == nil || len(s.Group) > len(largest.Group) {
			largest = s
		}
	}
	if largest != nil && len(largest.Landmarks.IDs) >= 2 {
		overlay := routing.NewOverlay(largest, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
		rep.Routing, err = overlay.Experiment(300, sc.Seed)
		if err != nil {
			return nil, fmt.Errorf("routing: %w", err)
		}
	}
	return rep, nil
}

// ScenarioRows renders scenario reports as one table row each.
func ScenarioRows(reports []*ScenarioReport) (header []string, rows [][]string) {
	header = []string{"scenario", "nodes", "degree", "recall%", "precision%",
		"groups", "wantGroups", "meshes(V/E/F)", "closed", "routing%"}
	for _, r := range reports {
		meshes := ""
		closed := 0
		for i, q := range r.Surfaces {
			if i > 0 {
				meshes += " "
			}
			meshes += fmt.Sprintf("%d/%d/%d", q.V, q.E, q.F)
			if q.Closed2Manifold {
				closed++
			}
		}
		rows = append(rows, []string{
			r.Name,
			fmt.Sprint(r.Stats.Nodes),
			fmt.Sprintf("%.1f", r.Stats.AvgDegree),
			fmt.Sprintf("%.1f", 100*r.Detection.Recall()),
			fmt.Sprintf("%.1f", 100*r.Detection.Precision()),
			fmt.Sprint(r.Groups),
			fmt.Sprint(r.WantGroups),
			meshes,
			fmt.Sprintf("%d/%d", closed, len(r.Surfaces)),
			fmt.Sprintf("%.1f", 100*r.Routing.SuccessRate),
		})
	}
	return header, rows
}
