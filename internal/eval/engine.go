package eval

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/ranging"
	"repro/internal/sim"
)

// Engine runs the evaluation studies on a bounded worker pool, one cell —
// a (scenario, level) pair or an ablation variant — per pool task. Every
// cell derives its seeds from the cell's own indices exactly as the serial
// loops did, and results land in index-addressed slots folded in a fixed
// order, so an Engine sweep is byte-identical to the serial one regardless
// of Workers or GOMAXPROCS (asserted by TestEngineSchedulingIndependence).
//
// The zero value uses GOMAXPROCS workers. The per-cell pipeline itself
// parallelizes with cfg.Workers; both knobs default to GOMAXPROCS, which
// oversubscribes mildly and keeps the machine busy through the serial
// tails of uneven cells.
type Engine struct {
	// Workers bounds the number of concurrently running cells.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Workers int
	// Obs, when non-nil, observes every cell: a labeled StageCell span
	// per cell (concurrent cells interleave their events), the full
	// pipeline instrumentation inside it, and a per-cell counter roll-up
	// attached to the cell's result row (SweepPoint.Observed and
	// friends). A nil Obs leaves results bit-identical to the seed
	// engine's.
	Obs obs.Observer
	// SustainedRuns makes DetectorMatrix run each cell's detection this
	// many times (0 or 1 = once), recording every run's wall time into a
	// latency histogram so the comparison table reports sustained-cost
	// quantiles (p50/p99) instead of a single cold measurement. Counter
	// roll-ups always come from the first run only — repeat runs are
	// bit-identical, so folding them in would just multiply the totals.
	SustainedRuns int
}

// cellStart opens one evaluation cell: a labeled span on the engine's
// observer plus a per-cell recorder teed into it, so the cell's counters
// can be rolled up onto its result row. Everything is nil/inert when the
// engine is unobserved.
func (e Engine) cellStart(label string) (obs.Observer, *obs.Mem, obs.Span) {
	if e.Obs == nil {
		return nil, nil, obs.Span{}
	}
	mem := &obs.Mem{}
	return obs.Tee(e.Obs, mem), mem, obs.StartLabeled(e.Obs, obs.StageCell, label)
}

// rollup flattens a cell recorder's totals; a nil recorder yields nil.
func rollup(m *obs.Mem) map[string]int64 {
	if m == nil {
		return nil
	}
	return m.Totals()
}

// ErrorSweep is the pooled RunErrorSweep: levels run concurrently, each
// with the measurement seed the serial loop would have used
// (seed + level index).
func (e Engine) ErrorSweep(net *netgen.Network, name string, levels []float64, cfg core.Config, seed int64) (SweepResult, error) {
	res := SweepResult{Scenario: name, Points: make([]SweepPoint, len(levels))}
	truth := net.TrueBoundary()
	err := par.For(len(levels), e.Workers, func(_, li int) error {
		level := levels[li]
		meas := net.Measure(ranging.ForFraction(level), seed+int64(li))
		cellObs, mem, span := e.cellStart(fmt.Sprintf("%s/err=%g", name, level))
		det, err := core.DetectContext(context.Background(), cellObs, net, meas, cfg)
		span.End()
		if err != nil {
			return fmt.Errorf("error level %.0f%%: %w", level*100, err)
		}
		report, err := metrics.Evaluate(net.G, truth, det.Boundary, MaxHops)
		if err != nil {
			return err
		}
		res.Points[li] = SweepPoint{ErrorFrac: level, Report: report, Observed: rollup(mem)}
		return nil
	})
	if err != nil {
		return SweepResult{}, err
	}
	return res, nil
}

// AggregateSweep is the pooled RunAggregateSweep: all (scenario, level)
// cells run concurrently — network generation is per scenario, guarded so
// it happens once — and the per-level reports are folded in scenario
// order, matching the serial accumulation exactly.
func (e Engine) AggregateSweep(scenarios []Scenario, levels []float64, cfg core.Config) (SweepResult, error) {
	agg := SweepResult{Scenario: "aggregate"}
	agg.Points = make([]SweepPoint, len(levels))
	for i, level := range levels {
		agg.Points[i].ErrorFrac = level
	}
	if len(scenarios) == 0 || len(levels) == 0 {
		return agg, nil
	}

	// Phase 1: generate scenario networks (each is expensive).
	nets := make([]*netgen.Network, len(scenarios))
	err := par.For(len(scenarios), e.Workers, func(_, si int) error {
		net, err := scenarios[si].Generate()
		if err != nil {
			return fmt.Errorf("scenario %s: %w", scenarios[si].Name, err)
		}
		nets[si] = net
		return nil
	})
	if err != nil {
		return SweepResult{}, err
	}

	// Phase 2: every (scenario, level) cell, seeded exactly as the
	// serial RunErrorSweep call inside RunAggregateSweep seeds it.
	cells := make([]metrics.Report, len(scenarios)*len(levels))
	truths := make([][]bool, len(scenarios))
	for si, net := range nets {
		truths[si] = net.TrueBoundary()
	}
	err = par.For(len(cells), e.Workers, func(_, ci int) error {
		si, li := ci/len(levels), ci%len(levels)
		sc, net, level := scenarios[si], nets[si], levels[li]
		meas := net.Measure(ranging.ForFraction(level), sc.Seed*1000+int64(li))
		cellObs, _, span := e.cellStart(fmt.Sprintf("%s/err=%g", sc.Name, level))
		det, err := core.DetectContext(context.Background(), cellObs, net, meas, cfg)
		span.End()
		if err != nil {
			return fmt.Errorf("scenario %s: error level %.0f%%: %w", sc.Name, level*100, err)
		}
		report, err := metrics.Evaluate(net.G, truths[si], det.Boundary, MaxHops)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		cells[ci] = report
		return nil
	})
	if err != nil {
		return SweepResult{}, err
	}

	// Fixed fold order: scenarios outer, levels inner — the serial order.
	for si := range scenarios {
		for li := range levels {
			if err := agg.Points[li].Report.Add(cells[si*len(levels)+li]); err != nil {
				return SweepResult{}, err
			}
		}
	}
	return agg, nil
}

// FaultSweep is the pooled RunFaultSweep: loss levels run concurrently,
// each with the serial loop's fault seed (seed + 101·level index) and
// measurement seed (seed + level index).
func (e Engine) FaultSweep(net *netgen.Network, name string, lossRates []float64, errorFrac float64, cfg core.Config, seed int64) (FaultSweepResult, error) {
	res := FaultSweepResult{Scenario: name, Points: make([]FaultPoint, len(lossRates))}
	truth := net.TrueBoundary()
	err := par.For(len(lossRates), e.Workers, func(_, li int) error {
		loss := lossRates[li]
		c := cfg
		if loss > 0 {
			c.Faults = sim.FaultConfig{
				Seed:     seed + int64(li)*101,
				DropRate: loss,
			}
		}
		var meas *netgen.Measurement
		if errorFrac > 0 {
			meas = net.Measure(ranging.ForFraction(errorFrac), seed+int64(li))
		}
		cellObs, mem, span := e.cellStart(fmt.Sprintf("%s/loss=%g", name, loss))
		det, err := core.DetectContext(context.Background(), cellObs, net, meas, c)
		span.End()
		if err != nil {
			return fmt.Errorf("loss level %.0f%%: %w", loss*100, err)
		}
		report, err := metrics.Evaluate(net.G, truth, det.Boundary, MaxHops)
		if err != nil {
			return err
		}
		pt := FaultPoint{LossRate: loss, Report: report, Observed: rollup(mem)}
		pt.Faults.Add(det.FaultStats)
		res.Points[li] = pt
		return nil
	})
	if err != nil {
		return FaultSweepResult{}, err
	}
	return res, nil
}

// Ablations is the pooled RunAblations: the pipeline variants run
// concurrently on the shared network and measurement; rows keep the fixed
// variant order.
func (e Engine) Ablations(net *netgen.Network, errorFrac float64, seed int64) ([]AblationRow, error) {
	return e.AblationsCfg(net, errorFrac, seed, core.Config{})
}

// AblationsCfg is Ablations with an explicit base config: cfg.Detector
// selects whose variant list runs (derived from the detector's
// capabilities, see ablationVariantsFor), and the remaining fields ride
// into every variant.
func (e Engine) AblationsCfg(net *netgen.Network, errorFrac float64, seed int64, cfg core.Config) ([]AblationRow, error) {
	truth := net.TrueBoundary()
	meas := net.Measure(ranging.ForFraction(errorFrac), seed)
	variants := ablationVariantsFor(net, meas, cfg)

	rows := make([]AblationRow, len(variants))
	err := par.For(len(variants), e.Workers, func(_, vi int) error {
		v := variants[vi]
		cellObs, mem, span := e.cellStart("ablation/" + v.name)
		found, err := v.run(context.Background(), cellObs)
		span.End()
		if err != nil {
			return fmt.Errorf("variant %s: %w", v.name, err)
		}
		report, err := metrics.Evaluate(net.G, truth, found, MaxHops)
		if err != nil {
			return err
		}
		rows[vi] = AblationRow{Variant: v.name, Report: report, Observed: rollup(mem)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
