package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netgen"
)

// MaxHops is the histogram range of the paper's mistaken/missing
// distributions (Figs. 1(h), 1(i), 11(b), 11(c)).
const MaxHops = 3

// SweepPoint is one error level of an error sweep.
type SweepPoint struct {
	ErrorFrac float64
	Report    metrics.Report
	// Observed is the cell's obs counter roll-up ("stage/counter" →
	// total), attached only when the sweep ran under an observed Engine;
	// nil otherwise.
	Observed map[string]int64
}

// SweepResult is a full error sweep over one network — the data behind
// Figs. 1(g)–(i).
type SweepResult struct {
	Scenario string
	Points   []SweepPoint
}

// RunErrorSweep measures one network across distance-measurement error
// levels: at each level the network is re-ranged with the paper's uniform
// model, the full detection pipeline runs on MDS coordinates, and the
// outcome is classified against ground truth. Level 0 uses exact ranging.
// Levels run on the default Engine pool; per-level seeding keeps the
// result identical to a serial run.
func RunErrorSweep(net *netgen.Network, name string, levels []float64, cfg core.Config, seed int64) (SweepResult, error) {
	return Engine{}.ErrorSweep(net, name, levels, cfg, seed)
}

// RunAggregateSweep runs the error sweep over several scenarios and sums
// the reports per error level — the >10 000-boundary-node aggregate of
// Fig. 11. Scenario networks are generated on demand; the (scenario,
// level) cells run on the default Engine pool with a fixed fold order.
func RunAggregateSweep(scenarios []Scenario, levels []float64, cfg core.Config) (SweepResult, error) {
	return Engine{}.AggregateSweep(scenarios, levels, cfg)
}

// EfficiencyRows renders a sweep as the Fig. 1(g) / 11(a) table: one row
// per error level with found/correct/mistaken/missing, both absolute and
// as percentages of the true boundary count.
func EfficiencyRows(s SweepResult) (header []string, rows [][]string) {
	header = []string{"error", "true", "found", "correct", "mistaken", "missing",
		"found%", "correct%", "mistaken%", "missing%"}
	for _, p := range s.Points {
		r := p.Report
		pct := func(v int) string {
			if r.TrueBoundary == 0 {
				return "0.0"
			}
			return fmt.Sprintf("%.1f", 100*float64(v)/float64(r.TrueBoundary))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p.ErrorFrac*100),
			fmt.Sprint(r.TrueBoundary), fmt.Sprint(r.Found), fmt.Sprint(r.Correct),
			fmt.Sprint(r.Mistaken), fmt.Sprint(r.Missing),
			pct(r.Found), pct(r.Correct), pct(r.Mistaken), pct(r.Missing),
		})
	}
	return header, rows
}

// DistributionRows renders a sweep's mistaken or missing hop distribution
// as the Fig. 1(h)/(i) / 11(b)/(c) table: one row per error level with the
// 1/2/3-hop fractions.
func DistributionRows(s SweepResult, missing bool) (header []string, rows [][]string) {
	header = []string{"error", "count", "1hop%", "2hop%", "3hop%", "beyond%"}
	for _, p := range s.Points {
		st := p.Report.MistakenHops
		if missing {
			st = p.Report.MissingHops
		}
		frac, beyond := st.Fractions()
		row := []string{fmt.Sprintf("%.0f%%", p.ErrorFrac*100), fmt.Sprint(st.Total())}
		for _, f := range frac {
			row = append(row, fmt.Sprintf("%.1f", 100*f))
		}
		row = append(row, fmt.Sprintf("%.1f", 100*beyond))
		rows = append(rows, row)
	}
	return header, rows
}
