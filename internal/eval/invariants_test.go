package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestDetectionInvariantsAcrossScenarios runs the detection pipeline over
// every paper scenario (at reduced scale) and checks the structural
// invariants any Detect result must satisfy:
//
//  1. the final boundary is a subset of the raw UBF set;
//  2. Groups exactly partition the boundary set;
//  3. each group's label is its minimum member ID;
//  4. every kept node's fragment count meets the IFF threshold.
func TestDetectionInvariantsAcrossScenarios(t *testing.T) {
	for _, sc := range AllScenarios() {
		sc := sc.Scaled(0.12)
		t.Run(sc.Name, func(t *testing.T) {
			net, err := sc.Generate()
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Detect(net, nil, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int]bool)
			for gi, group := range res.Groups {
				if len(group) == 0 {
					t.Fatalf("group %d empty", gi)
				}
				min := group[0]
				for _, v := range group {
					if seen[v] {
						t.Fatalf("node %d in two groups", v)
					}
					seen[v] = true
					if !res.Boundary[v] {
						t.Fatalf("group member %d not boundary", v)
					}
					if v < min {
						min = v
					}
				}
				for _, v := range group {
					if res.GroupLabel[v] != min {
						t.Fatalf("group %d label %d, want %d", gi, res.GroupLabel[v], min)
					}
				}
			}
			for i := range res.Boundary {
				if res.Boundary[i] && !res.UBF[i] {
					t.Fatalf("node %d kept without UBF detection", i)
				}
				if res.Boundary[i] && !seen[i] {
					t.Fatalf("boundary node %d in no group", i)
				}
				if !res.Boundary[i] && res.GroupLabel[i] != sim.NoGroup {
					t.Fatalf("non-boundary node %d labeled", i)
				}
				if res.Boundary[i] && res.FragmentSize[i] < 20 {
					t.Fatalf("node %d kept with fragment %d", i, res.FragmentSize[i])
				}
			}
		})
	}
}
