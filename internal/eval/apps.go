package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/routing"
)

// SurfaceToolsReport measures the "graph theory tools on 3D surfaces" the
// paper motivates in Sec. I — embedding/localization, partition, and
// greedy routing (with recovery) — on a scenario's largest reconstructed
// boundary surface.
type SurfaceToolsReport struct {
	Name string
	// EmbedRMSD is the connectivity-only embedding's residual against
	// true positions after scaled rigid alignment, in radio ranges.
	EmbedRMSD float64
	// PartitionK, Balance and EdgeCut describe the k-way surface
	// partition.
	PartitionK int
	Balance    float64
	EdgeCut    int
	// GreedyRate and RecoveryRate are delivery rates without and with
	// local-minimum recovery; Recoveries counts the escapes used.
	GreedyRate   float64
	RecoveryRate float64
	Recoveries   int
}

// RunSurfaceTools deploys the scenario at zero ranging error, reconstructs
// its largest boundary surface, and exercises the three applications.
func RunSurfaceTools(sc Scenario, meshCfg mesh.Config, k int) (*SurfaceToolsReport, error) {
	net, err := sc.Generate()
	if err != nil {
		return nil, err
	}
	det, err := core.Detect(net, nil, core.Config{})
	if err != nil {
		return nil, err
	}
	if len(det.Groups) == 0 {
		return nil, fmt.Errorf("scenario %s: no boundary found", sc.Name)
	}
	largest := det.Groups[0]
	for _, g := range det.Groups {
		if len(g) > len(largest) {
			largest = g
		}
	}
	surface, err := mesh.Build(net.G, largest, meshCfg)
	if err != nil {
		return nil, err
	}
	rep := &SurfaceToolsReport{Name: sc.Name, PartitionK: k}

	// Embedding.
	emb, err := embed.Surface(net.G, surface, embed.Options{})
	if err != nil {
		return nil, fmt.Errorf("embed: %w", err)
	}
	rmsd, _, err := emb.Distortion(func(n int) geom.Vec3 { return net.Nodes[n].Pos })
	if err != nil {
		return nil, err
	}
	rep.EmbedRMSD = rmsd / net.Radius

	// Partition.
	if k > len(surface.Landmarks.IDs) {
		k = len(surface.Landmarks.IDs)
		rep.PartitionK = k
	}
	patches, err := partition.KWay(net.G, surface, k)
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	rep.Balance = patches.Balance()
	rep.EdgeCut = patches.EdgeCut(net.G)

	// Routing: pairwise delivery with and without recovery.
	overlay := routing.NewOverlay(surface, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
	lms := overlay.Landmarks()
	var plainOK, recoverOK, attempts int
	for i := 0; i < len(lms); i++ {
		for j := i + 1; j < len(lms); j++ {
			attempts++
			plain, err := overlay.Greedy(lms[i], lms[j], 4*len(lms))
			if err != nil {
				return nil, err
			}
			if plain.Success {
				plainOK++
			}
			rec, err := overlay.GreedyWithRecovery(lms[i], lms[j], 10*len(lms))
			if err != nil {
				return nil, err
			}
			if rec.Success {
				recoverOK++
			}
			rep.Recoveries += rec.Recoveries
		}
	}
	if attempts > 0 {
		rep.GreedyRate = float64(plainOK) / float64(attempts)
		rep.RecoveryRate = float64(recoverOK) / float64(attempts)
	}
	return rep, nil
}

// SurfaceToolsRows renders the application study as a table.
func SurfaceToolsRows(reports []*SurfaceToolsReport) (header []string, rows [][]string) {
	header = []string{"scenario", "embedRMSD(R)", "k", "balance", "edgeCut",
		"greedy%", "recovery%", "recoveries"}
	for _, r := range reports {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.2f", r.EmbedRMSD),
			fmt.Sprint(r.PartitionK),
			fmt.Sprintf("%.2f", r.Balance),
			fmt.Sprint(r.EdgeCut),
			fmt.Sprintf("%.1f", 100*r.GreedyRate),
			fmt.Sprintf("%.1f", 100*r.RecoveryRate),
			fmt.Sprint(r.Recoveries),
		})
	}
	return header, rows
}
