package eval

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/obs"
)

// AblationRow is one pipeline variant's detection quality on a fixed
// network and error level.
type AblationRow struct {
	Variant string
	Report  metrics.Report
	// Observed is the variant's obs counter roll-up ("stage/counter" →
	// total); nil unless the study ran under an observed Engine.
	Observed map[string]int64
}

// RunAblations compares the paper's design choices on one network at one
// ranging-error level:
//
//   - the full pipeline (two-hop scope, MDS frames, IFF);
//   - UBF without IFF (Sec. II-B's motivation);
//   - the literal one-hop Algorithm 1 scope (with and without IFF);
//   - the true-coordinate oracle (localization removed);
//   - unit-ball radius factors (hole-size selectivity, Sec. II-A3);
//   - IFF threshold/TTL variants around the icosahedron defaults;
//   - the degree-threshold baseline.
//
// Variants run on the default Engine pool in a fixed row order.
func RunAblations(net *netgen.Network, errorFrac float64, seed int64) ([]AblationRow, error) {
	return Engine{}.Ablations(net, errorFrac, seed)
}

// ablationVariant is one pipeline configuration of the ablation study.
// run receives the study cell's context and observer.
type ablationVariant struct {
	name string
	run  func(ctx context.Context, o obs.Observer) ([]bool, error)
}

// ablationVariants enumerates the paper pipeline's study configurations
// over a fixed network and measurement. The order defines the row order.
func ablationVariants(net *netgen.Network, meas *netgen.Measurement) []ablationVariant {
	return ablationVariantsFor(net, meas, core.Config{})
}

// ablationVariantsFor derives the variant list from the configured
// detector's capability bitmask and obs vocabulary instead of assuming
// the paper pipeline: the paper detector keeps the historical 11-variant
// study, while other detectors get the subset that is meaningful for
// them — the shared refinement (IFF) knobs always, the coordinate-source
// variants only when the detector declares CapMeasurement (a detector
// that ignores ranging has no "true-coords" ablation to run), and the
// degree-threshold reference row always. base carries the shared knobs
// (Workers, Detector) into every variant.
func ablationVariantsFor(net *netgen.Network, meas *netgen.Measurement, base core.Config) []ablationVariant {
	det, ok := core.LookupDetector(base.Detector)
	if !ok {
		det, _ = core.LookupDetector("")
	}
	detect := func(mut func(c *core.Config), withMeas bool) func(context.Context, obs.Observer) ([]bool, error) {
		cfg := base
		if mut != nil {
			mut(&cfg)
		}
		return func(ctx context.Context, o obs.Observer) ([]bool, error) {
			m := meas
			if !withMeas {
				m = nil
			}
			res, err := core.DetectContext(ctx, o, net, m, cfg)
			if err != nil {
				return nil, err
			}
			return res.Boundary, nil
		}
	}
	degreeBaseline := ablationVariant{"degree-baseline", func(context.Context, obs.Observer) ([]bool, error) {
		return core.DegreeBaseline(net, core.DegreeBaselineConfig{})
	}}
	if det.Name() == core.DefaultDetector {
		return []ablationVariant{
			{"full-pipeline", detect(nil, true)},
			{"no-iff", detect(func(c *core.Config) { c.IFFThreshold = -1 }, true)},
			{"one-hop-scope", detect(func(c *core.Config) { c.Scope = core.ScopeOneHop }, true)},
			{"one-hop-no-iff", detect(func(c *core.Config) { c.Scope = core.ScopeOneHop; c.IFFThreshold = -1 }, true)},
			{"true-coords", detect(func(c *core.Config) { c.Coords = core.CoordsTrue }, false)},
			{"r=1.5", detect(func(c *core.Config) { c.BallRadiusFactor = 1.5 }, true)},
			{"r=2.0", detect(func(c *core.Config) { c.BallRadiusFactor = 2.0 }, true)},
			{"iff-theta=10", detect(func(c *core.Config) { c.IFFThreshold = 10 }, true)},
			{"iff-theta=40", detect(func(c *core.Config) { c.IFFThreshold = 40 }, true)},
			{"iff-ttl=2", detect(func(c *core.Config) { c.IFFTTL = 2 }, true)},
			degreeBaseline,
		}
	}
	hasMeas := det.Caps().Has(core.CapMeasurement)
	variants := []ablationVariant{
		{"full-pipeline", detect(nil, hasMeas)},
		{"no-refine", detect(func(c *core.Config) { c.IFFThreshold = -1 }, hasMeas)},
		{"refine-theta=10", detect(func(c *core.Config) { c.IFFThreshold = 10 }, hasMeas)},
		{"refine-ttl=2", detect(func(c *core.Config) { c.IFFTTL = 2 }, hasMeas)},
	}
	if hasMeas {
		variants = append(variants, ablationVariant{
			"true-coords", detect(func(c *core.Config) { c.Coords = core.CoordsTrue }, false),
		})
	}
	return append(variants, degreeBaseline)
}

// AblationRows renders the ablation study as a table.
func AblationRows(rows []AblationRow) (header []string, out [][]string) {
	header = []string{"variant", "found", "correct", "mistaken", "missing",
		"precision%", "recall%", "f1%"}
	for _, r := range rows {
		c := r.Report.Classification
		out = append(out, []string{
			r.Variant,
			fmt.Sprint(c.Found), fmt.Sprint(c.Correct),
			fmt.Sprint(c.Mistaken), fmt.Sprint(c.Missing),
			fmt.Sprintf("%.1f", 100*c.Precision()),
			fmt.Sprintf("%.1f", 100*c.Recall()),
			fmt.Sprintf("%.1f", 100*c.F1()),
		})
	}
	return header, out
}
