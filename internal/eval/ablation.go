package eval

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/obs"
)

// AblationRow is one pipeline variant's detection quality on a fixed
// network and error level.
type AblationRow struct {
	Variant string
	Report  metrics.Report
	// Observed is the variant's obs counter roll-up ("stage/counter" →
	// total); nil unless the study ran under an observed Engine.
	Observed map[string]int64
}

// RunAblations compares the paper's design choices on one network at one
// ranging-error level:
//
//   - the full pipeline (two-hop scope, MDS frames, IFF);
//   - UBF without IFF (Sec. II-B's motivation);
//   - the literal one-hop Algorithm 1 scope (with and without IFF);
//   - the true-coordinate oracle (localization removed);
//   - unit-ball radius factors (hole-size selectivity, Sec. II-A3);
//   - IFF threshold/TTL variants around the icosahedron defaults;
//   - the degree-threshold baseline.
//
// Variants run on the default Engine pool in a fixed row order.
func RunAblations(net *netgen.Network, errorFrac float64, seed int64) ([]AblationRow, error) {
	return Engine{}.Ablations(net, errorFrac, seed)
}

// ablationVariant is one pipeline configuration of the ablation study.
// run receives the study cell's context and observer.
type ablationVariant struct {
	name string
	run  func(ctx context.Context, o obs.Observer) ([]bool, error)
}

// ablationVariants enumerates the study's pipeline configurations over a
// fixed network and measurement. The order defines the row order.
func ablationVariants(net *netgen.Network, meas *netgen.Measurement) []ablationVariant {
	detect := func(cfg core.Config, withMeas bool) func(context.Context, obs.Observer) ([]bool, error) {
		return func(ctx context.Context, o obs.Observer) ([]bool, error) {
			m := meas
			if !withMeas {
				m = nil
			}
			res, err := core.DetectContext(ctx, o, net, m, cfg)
			if err != nil {
				return nil, err
			}
			return res.Boundary, nil
		}
	}
	return []ablationVariant{
		{"full-pipeline", detect(core.Config{}, true)},
		{"no-iff", detect(core.Config{IFFThreshold: -1}, true)},
		{"one-hop-scope", detect(core.Config{Scope: core.ScopeOneHop}, true)},
		{"one-hop-no-iff", detect(core.Config{Scope: core.ScopeOneHop, IFFThreshold: -1}, true)},
		{"true-coords", detect(core.Config{Coords: core.CoordsTrue}, false)},
		{"r=1.5", detect(core.Config{BallRadiusFactor: 1.5}, true)},
		{"r=2.0", detect(core.Config{BallRadiusFactor: 2.0}, true)},
		{"iff-theta=10", detect(core.Config{IFFThreshold: 10}, true)},
		{"iff-theta=40", detect(core.Config{IFFThreshold: 40}, true)},
		{"iff-ttl=2", detect(core.Config{IFFTTL: 2}, true)},
		{"degree-baseline", func(context.Context, obs.Observer) ([]bool, error) {
			return core.DegreeBaseline(net, core.DegreeBaselineConfig{})
		}},
	}
}

// AblationRows renders the ablation study as a table.
func AblationRows(rows []AblationRow) (header []string, out [][]string) {
	header = []string{"variant", "found", "correct", "mistaken", "missing",
		"precision%", "recall%", "f1%"}
	for _, r := range rows {
		c := r.Report.Classification
		out = append(out, []string{
			r.Variant,
			fmt.Sprint(c.Found), fmt.Sprint(c.Correct),
			fmt.Sprint(c.Mistaken), fmt.Sprint(c.Missing),
			fmt.Sprintf("%.1f", 100*c.Precision()),
			fmt.Sprintf("%.1f", 100*c.Recall()),
			fmt.Sprintf("%.1f", 100*c.F1()),
		})
	}
	return header, out
}
