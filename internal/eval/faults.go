package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netgen"
)

// FaultPoint is one loss level of a fault sweep.
type FaultPoint struct {
	// LossRate is the configured per-delivery drop probability.
	LossRate float64
	Report   metrics.Report
	Faults   metrics.FaultReport
	// Observed is the cell's obs counter roll-up ("stage/counter" →
	// total); nil unless the sweep ran under an observed Engine.
	Observed map[string]int64
}

// FaultSweepResult measures how detection quality degrades as the
// network loses messages — the robustness counterpart of the paper's
// measurement-error sweeps.
type FaultSweepResult struct {
	Scenario string
	Points   []FaultPoint
}

// RunFaultSweep measures one network across message-loss levels. At each
// level the full pipeline runs with the fault layer injecting unbounded
// random loss (no per-link cap, so delivery is NOT guaranteed) and the
// hardened retransmitting floods doing their best within cfg's
// RetransmitBudget; the outcome is classified against ground truth.
// Level 0 reproduces the fault-free run. Measurement error is fixed at
// errorFrac with exact ranging when zero.
// Loss levels run on the default Engine pool; per-level seeding keeps the
// result identical to a serial run.
func RunFaultSweep(net *netgen.Network, name string, lossRates []float64, errorFrac float64, cfg core.Config, seed int64) (FaultSweepResult, error) {
	return Engine{}.FaultSweep(net, name, lossRates, errorFrac, cfg, seed)
}

// FaultSweepRows renders a fault sweep as a table: detection quality
// (recall/precision and the found/mistaken/missing counts) next to the
// fault layer's own accounting (drops, retransmissions, abandonments).
func FaultSweepRows(s FaultSweepResult) (header []string, rows [][]string) {
	header = []string{"loss", "recall%", "precision%", "found", "mistaken", "missing",
		"dropped", "retransmits", "abandoned", "delivered%"}
	for _, p := range s.Points {
		r := p.Report
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p.LossRate*100),
			fmt.Sprintf("%.1f", 100*r.Recall()),
			fmt.Sprintf("%.1f", 100*r.Precision()),
			fmt.Sprint(r.Found), fmt.Sprint(r.Mistaken), fmt.Sprint(r.Missing),
			fmt.Sprint(p.Faults.TotalDropped()),
			fmt.Sprint(p.Faults.Retransmits),
			fmt.Sprint(p.Faults.Abandoned),
			fmt.Sprintf("%.1f", 100*p.Faults.DeliveryRate()),
		})
	}
	return header, rows
}
