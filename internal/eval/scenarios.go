// Package eval regenerates the paper's evaluation: one driver per table or
// figure (the per-experiment index lives in DESIGN.md), deterministic
// seeds, and plain-text tables whose rows match the paper's plotted series.
package eval

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

// Scenario describes one of the paper's simulated deployments.
type Scenario struct {
	Name string
	// Figure names the paper figure this deployment reproduces.
	Figure string
	// MakeShape builds the deployment solid; kept as a constructor so a
	// Scenario value stays copyable and scalable.
	MakeShape func() (shapes.Shape, error)
	// SurfaceNodes and InteriorNodes size the deployment.
	SurfaceNodes  int
	InteriorNodes int
	// TargetDegree tunes the radio range; the paper's average is 18.5
	// (18.8 on the Fig. 1 network).
	TargetDegree float64
	Seed         int64
}

// Generate deploys the scenario's network.
func (s Scenario) Generate() (*netgen.Network, error) {
	shape, err := s.MakeShape()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	net, err := netgen.Generate(netgen.Config{
		Shape:           shape,
		SurfaceNodes:    s.SurfaceNodes,
		InteriorNodes:   s.InteriorNodes,
		TargetAvgDegree: s.TargetDegree,
		Seed:            s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return net, nil
}

// Scaled returns a copy with node counts scaled by f (minimum 50 surface /
// 100 interior nodes), used to run the full experiment pipeline at reduced
// size in tests.
func (s Scenario) Scaled(f float64) Scenario {
	out := s
	out.SurfaceNodes = int(math.Max(50, f*float64(s.SurfaceNodes)))
	out.InteriorNodes = int(math.Max(100, f*float64(s.InteriorNodes)))
	return out
}

// Fig1 is the running-example network of Fig. 1: a cube with one internal
// spherical hole, 4210 nodes, average degree ≈ 18.8.
func Fig1() Scenario {
	return Scenario{
		Name:   "fig1-box-hole",
		Figure: "Fig. 1",
		MakeShape: func() (shapes.Shape, error) {
			// ~3 radio ranges of hole-to-wall clearance keep the two
			// boundary shells separated (see Fig7's note).
			return shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(13, 13, 13),
				[]geom.Sphere{{Center: geom.V(6.5, 6.5, 6.5), Radius: 2.3}})
		},
		SurfaceNodes:  1800,
		InteriorNodes: 2410,
		TargetDegree:  18.8,
		Seed:          101,
	}
}

// Fig6 is the underwater network: smooth surface, bumpy seabed.
func Fig6() Scenario {
	return Scenario{
		Name:          "fig6-underwater",
		Figure:        "Fig. 6",
		MakeShape:     func() (shapes.Shape, error) { return shapes.DefaultUnderwater(), nil },
		SurfaceNodes:  1500,
		InteriorNodes: 1700,
		TargetDegree:  18.5,
		Seed:          106,
	}
}

// Fig7 is the 3D space network with one internal hole.
func Fig7() Scenario {
	return Scenario{
		Name:   "fig7-one-hole",
		Figure: "Fig. 7",
		MakeShape: func() (shapes.Shape, error) {
			// The hole-to-wall clearance must stay near 3 radio
			// ranges: each boundary's detected shell is up to
			// ~1.25R thick, and thinner gaps let the shells touch
			// and merge into one group.
			return shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(12, 12, 12),
				[]geom.Sphere{{Center: geom.V(6, 6, 6), Radius: 2.4}})
		},
		SurfaceNodes:  1700,
		InteriorNodes: 2800,
		TargetDegree:  18.5,
		Seed:          107,
	}
}

// Fig8 is the 3D space network with two internal holes.
func Fig8() Scenario {
	return Scenario{
		Name:   "fig8-two-holes",
		Figure: "Fig. 8",
		MakeShape: func() (shapes.Shape, error) {
			// Clearances as in Fig7: ~3 radio ranges between every
			// pair of boundary surfaces.
			return shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(18, 12, 12),
				[]geom.Sphere{
					{Center: geom.V(5, 6, 6), Radius: 1.8},
					{Center: geom.V(13, 6, 6), Radius: 1.8},
				})
		},
		SurfaceNodes:  1900,
		InteriorNodes: 3300,
		TargetDegree:  18.5,
		Seed:          108,
	}
}

// Fig9 is the bent-pipe network.
func Fig9() Scenario {
	return Scenario{
		Name:   "fig9-bent-pipe",
		Figure: "Fig. 9",
		MakeShape: func() (shapes.Shape, error) {
			return shapes.NewBentPipe(6, 1.5, 3*math.Pi/4)
		},
		SurfaceNodes:  1300,
		InteriorNodes: 1200,
		TargetDegree:  18.5,
		Seed:          109,
	}
}

// Fig10 is the solid-sphere network.
func Fig10() Scenario {
	return Scenario{
		Name:          "fig10-sphere",
		Figure:        "Fig. 10",
		MakeShape:     func() (shapes.Shape, error) { return shapes.NewBall(geom.Zero, 4), nil },
		SurfaceNodes:  700,
		InteriorNodes: 1500,
		TargetDegree:  18.5,
		Seed:          110,
	}
}

// AllScenarios lists every deployment of the paper's evaluation; the
// Fig. 11 aggregates run over all of them (>10 000 sample boundary nodes
// in total at full scale).
func AllScenarios() []Scenario {
	return []Scenario{Fig1(), Fig6(), Fig7(), Fig8(), Fig9(), Fig10()}
}

// PaperErrorLevels is the sweep 0 %, 10 %, …, 100 % of the radio range
// used throughout the paper's figures.
func PaperErrorLevels() []float64 {
	levels := make([]float64, 11)
	for i := range levels {
		levels[i] = float64(i) / 10
	}
	return levels
}
