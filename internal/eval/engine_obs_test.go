package eval

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestEngineObservedStudies: an observed parallel Engine emits a labeled
// StageCell span per cell with the full pipeline instrumentation inside it
// (balanced even when cells interleave — run with -race), attaches a
// per-cell counter roll-up to every result row, and changes nothing else
// about the results.
func TestEngineObservedStudies(t *testing.T) {
	net, err := smallFig10().Generate()
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{0, 0.2, 0.5}
	losses := []float64{0, 0.3}
	cfg := core.Config{}

	plain := Engine{Workers: 8}
	mem := &obs.Mem{}
	observed := Engine{Workers: 8, Obs: mem}

	// ErrorSweep: one cell per level.
	sweep, err := observed.ErrorSweep(net, "test", levels, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	plainSweep, err := plain.ErrorSweep(net, "test", levels, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sweep.Points {
		if sweep.Points[i].Observed == nil {
			t.Errorf("level %g: no counter roll-up", sweep.Points[i].ErrorFrac)
			continue
		}
		if sweep.Points[i].Observed["ubf/balls_tested"] == 0 {
			t.Errorf("level %g: roll-up missing UBF work: %v",
				sweep.Points[i].ErrorFrac, sweep.Points[i].Observed)
		}
		// Everything but the roll-up matches the unobserved run.
		a, b := sweep.Points[i], plainSweep.Points[i]
		a.Observed, b.Observed = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("level %g: observed point differs from unobserved", levels[i])
		}
	}
	if got := mem.Spans(obs.StageCell); got != len(levels) {
		t.Errorf("cell spans = %d, want %d", got, len(levels))
	}
	if got := mem.Spans(obs.StageDetect); got != len(levels) {
		t.Errorf("detect spans = %d, want %d", got, len(levels))
	}
	// Under CoordsMDS every cell also runs the frames stage.
	if got := mem.Spans(obs.StageFrames); got != len(levels) {
		t.Errorf("frames spans = %d, want %d", got, len(levels))
	}
	if un := mem.Unbalanced(); len(un) != 0 {
		t.Errorf("unbalanced spans after error sweep: %v", un)
	}

	// FaultSweep: faulty cells must roll up message-fault counters.
	mem.Reset()
	faultSweep, err := observed.FaultSweep(net, "test", losses, 0, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range faultSweep.Points {
		if p.Observed == nil {
			t.Errorf("loss %g: no counter roll-up", p.LossRate)
			continue
		}
		dropped := p.Observed["iff/msgs_dropped"] + p.Observed["grouping/msgs_dropped"]
		if p.LossRate > 0 && dropped == 0 {
			t.Errorf("loss %g: no drops in roll-up %v", p.LossRate, p.Observed)
		}
		if p.LossRate == 0 && dropped != 0 {
			t.Errorf("loss 0 recorded %d drops", dropped)
		}
		if int64(p.Faults.TotalDropped()) != dropped {
			t.Errorf("loss %g: roll-up drops %d != fault report %d",
				p.LossRate, dropped, p.Faults.TotalDropped())
		}
	}
	if got := mem.Spans(obs.StageCell); got != len(losses) {
		t.Errorf("cell spans = %d, want %d", got, len(losses))
	}
	if un := mem.Unbalanced(); len(un) != 0 {
		t.Errorf("unbalanced spans after fault sweep: %v", un)
	}

	// Ablations: every variant gets a labeled cell; the degree baseline
	// is the one variant that never enters the detection pipeline.
	mem.Reset()
	rows, err := observed.Ablations(net, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Observed == nil && r.Variant != "degree-baseline" {
			t.Errorf("variant %s: no counter roll-up", r.Variant)
		}
	}
	if got := mem.Spans(obs.StageCell); got != len(rows) {
		t.Errorf("cell spans = %d, want %d", got, len(rows))
	}
	if got := mem.Spans(obs.StageDetect); got != len(rows)-1 {
		t.Errorf("detect spans = %d, want %d (all variants minus the degree baseline)",
			got, len(rows)-1)
	}
	if un := mem.Unbalanced(); len(un) != 0 {
		t.Errorf("unbalanced spans after ablations: %v", un)
	}

	// Labels identify the cells.
	labels := map[string]bool{}
	for _, ev := range mem.Events() {
		if ev.Kind == obs.KindBegin && ev.Stage == obs.StageCell {
			labels[ev.Label] = true
		}
	}
	if !labels["ablation/full-pipeline"] || !labels["ablation/degree-baseline"] {
		t.Errorf("cell labels missing: %v", labels)
	}
}

// TestEngineUnobservedLeavesRollupsNil: without an observer the new
// Observed fields stay nil, keeping results byte-identical to the seed
// engine's (the DeepEqual scheduling tests depend on this).
func TestEngineUnobservedLeavesRollupsNil(t *testing.T) {
	net, err := smallFig10().Generate()
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := Engine{Workers: 2}.ErrorSweep(net, "test", []float64{0}, core.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Points[0].Observed != nil {
		t.Errorf("unobserved sweep attached a roll-up: %v", sweep.Points[0].Observed)
	}
}
