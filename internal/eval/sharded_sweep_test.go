package eval

// Sweep-level differential for the sharded detection engine: an error
// sweep run with Config.Shards set must classify every cell exactly as
// the unsharded sweep does. metrics.Report carries only outcome counts
// (no message traffic), so the comparison is plain equality.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

func TestErrorSweepShardedMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep differential is long")
	}
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:    150,
		InteriorNodes:   350,
		TargetAvgDegree: 16,
		Seed:            77,
	})
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{0, 0.1, 0.3}
	base, err := RunErrorSweep(net, "sharded-diff", levels, core.Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunErrorSweep(net, "sharded-diff", levels, core.Config{Shards: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded.Points) != len(base.Points) {
		t.Fatalf("point count %d != %d", len(sharded.Points), len(base.Points))
	}
	for i, p := range base.Points {
		q := sharded.Points[i]
		if q.ErrorFrac != p.ErrorFrac {
			t.Fatalf("level %d: error frac %v != %v", i, q.ErrorFrac, p.ErrorFrac)
		}
		if !reflect.DeepEqual(q.Report, p.Report) {
			t.Errorf("level %.2f: sharded report %+v, want %+v", p.ErrorFrac, q.Report, p.Report)
		}
	}
}
