package eval

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/shapes"
)

// StandardFixtures are the three canonical comparison worlds — solid
// sphere (one boundary shell), cube with an internal hole (nested
// shells), torus (genus-1) — the same topology mix the sharded
// differential suite pins, sized for cross-detector studies.
func StandardFixtures() []Scenario {
	return []Scenario{
		{
			Name:          "sphere",
			MakeShape:     func() (shapes.Shape, error) { return shapes.NewBall(geom.Zero, 4), nil },
			SurfaceNodes:  400,
			InteriorNodes: 900,
			TargetDegree:  18,
			Seed:          60,
		},
		{
			Name: "cube-hole",
			MakeShape: func() (shapes.Shape, error) {
				return shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(10, 10, 10),
					[]geom.Sphere{{Center: geom.V(5, 5, 5), Radius: 1.8}})
			},
			SurfaceNodes:  450,
			InteriorNodes: 950,
			TargetDegree:  18,
			Seed:          61,
		},
		{
			Name:          "torus",
			MakeShape:     func() (shapes.Shape, error) { return shapes.NewTorus(5.5, 2.2) },
			SurfaceNodes:  700,
			InteriorNodes: 1100,
			TargetDegree:  18,
			Seed:          3,
		},
	}
}

// vocabTotals sums a cell's counter roll-up under the detector's declared
// obs vocabulary: msgs_sent and flood_rounds over its flood stages, plus
// its named per-node work keys. Deriving the keys from Vocab (instead of
// hard-coding the paper pipeline's "ubf/..." names) keeps the accounting
// correct for every registered detector.
func vocabTotals(det core.Detector, totals map[string]int64) (msgs, rounds, work int64) {
	v := det.Vocab()
	for _, s := range v.FloodStages {
		msgs += totals[s.String()+"/"+obs.CtrMsgsSent.String()]
		rounds += totals[s.String()+"/"+obs.CtrFloodRounds.String()]
	}
	for _, k := range v.WorkKeys {
		work += totals[k]
	}
	return msgs, rounds, work
}

// DetectorMatrix runs every named detector on every scenario under true
// coordinates and classifies each result against the scenario's
// ground-truth boundary, producing the cross-detector comparison cells
// fixture-major. cfg carries the shared knobs (Workers, Shards is forced
// to 0 — not every detector shards); cfg.Detector is ignored. Each cell
// records its own obs roll-up, so the message/round/work totals are
// filled whether or not the engine is observed.
func (e Engine) DetectorMatrix(scenarios []Scenario, detectors []string, cfg core.Config) ([]metrics.DetectorCell, error) {
	nets := make([]*netgen.Network, len(scenarios))
	err := par.For(len(scenarios), e.Workers, func(_, si int) error {
		net, err := scenarios[si].Generate()
		if err != nil {
			return err
		}
		nets[si] = net
		return nil
	})
	if err != nil {
		return nil, err
	}
	truths := make([][]bool, len(scenarios))
	for si, net := range nets {
		truths[si] = net.TrueBoundary()
	}

	cells := make([]metrics.DetectorCell, len(scenarios)*len(detectors))
	err = par.For(len(cells), e.Workers, func(_, ci int) error {
		si, di := ci/len(detectors), ci%len(detectors)
		sc, net := scenarios[si], nets[si]
		name := detectors[di]
		det, ok := core.LookupDetector(name)
		if !ok {
			return fmt.Errorf("%w %q", core.ErrUnknownDetector, name)
		}

		c := cfg
		c.Detector = name
		c.Shards = 0
		c.Coords = core.CoordsTrue
		runs := e.SustainedRuns
		if runs < 1 {
			runs = 1
		}
		// Counters come from the first run only (repeats are
		// bit-identical); every run's wall time lands in lat via a
		// StageDetect span, so the cell reports sustained-cost quantiles.
		mem := &obs.Mem{}
		lat := &obs.Metrics{}
		cellObs, _, span := e.cellStart(fmt.Sprintf("%s/%s", sc.Name, det.Name()))
		var res *core.Result
		for r := 0; r < runs; r++ {
			var runObs obs.Observer
			if r == 0 {
				runObs = obs.Tee(cellObs, mem)
			}
			sp := obs.Start(lat, obs.StageDetect)
			rres, err := core.DetectContext(context.Background(), runObs, net, nil, c)
			sp.End()
			if err != nil {
				span.End()
				return fmt.Errorf("detector %s on %s: %w", det.Name(), sc.Name, err)
			}
			if r == 0 {
				res = rres
			}
		}
		span.End()
		class, err := metrics.Classify(truths[si], res.Boundary)
		if err != nil {
			return err
		}
		cell := metrics.DetectorCell{Detector: det.Name(), Fixture: sc.Name, Classification: class}
		cell.Messages, cell.Rounds, cell.Work = vocabTotals(det, mem.Totals())
		cell.Runs = runs
		snap := lat.Latency(obs.StageDetect)
		cell.P50NS, cell.P99NS = snap.Quantile(0.50), snap.Quantile(0.99)
		cells[ci] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// DetectorStudy bundles one detector's full evaluation: the error sweep,
// the fault sweep, and the vocabulary-derived ablation rows, all on one
// network.
type DetectorStudy struct {
	Detector  string
	Sweep     SweepResult
	Faults    FaultSweepResult
	Ablations []AblationRow
}

// DetectorStudies runs the sweep × fault × ablation matrix once per named
// detector on a shared network. Detectors without measurement support
// still sweep ranging-error levels — their flat quality curve versus the
// paper pipeline's degradation is itself a study result.
func (e Engine) DetectorStudies(net *netgen.Network, name string, detectors []string, levels, lossRates []float64, cfg core.Config, seed int64) ([]DetectorStudy, error) {
	out := make([]DetectorStudy, len(detectors))
	for di, dname := range detectors {
		if _, ok := core.LookupDetector(dname); !ok {
			return nil, fmt.Errorf("%w %q", core.ErrUnknownDetector, dname)
		}
		c := cfg
		c.Detector = dname
		c.Shards = 0
		sweep, err := e.ErrorSweep(net, name+"/"+dname, levels, c, seed)
		if err != nil {
			return nil, fmt.Errorf("detector %s: %w", dname, err)
		}
		faults, err := e.FaultSweep(net, name+"/"+dname, lossRates, 0, c, seed)
		if err != nil {
			return nil, fmt.Errorf("detector %s: %w", dname, err)
		}
		abl, err := e.AblationsCfg(net, 0, seed, c)
		if err != nil {
			return nil, fmt.Errorf("detector %s: %w", dname, err)
		}
		out[di] = DetectorStudy{Detector: dname, Sweep: sweep, Faults: faults, Ablations: abl}
	}
	return out, nil
}

// detectorNames resolves the study's detector list: nil means every
// registered detector.
func detectorNames(names []string) []string {
	if len(names) == 0 {
		return core.DetectorNames()
	}
	return names
}

// RunDetectorMatrix is the pool-default entry point for the comparison
// table: every registered detector over the standard fixtures at the
// given scale.
func RunDetectorMatrix(scale float64, cfg core.Config) ([]metrics.DetectorCell, error) {
	scenarios := StandardFixtures()
	if scale > 0 && math.Abs(scale-1) > 1e-9 {
		for i := range scenarios {
			scenarios[i] = scenarios[i].Scaled(scale)
		}
	}
	return Engine{}.DetectorMatrix(scenarios, detectorNames(nil), cfg)
}
