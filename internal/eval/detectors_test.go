package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ranging"
)

// TestDetectorMatrixCells pins the cross-detector comparison shape: one
// cell per (fixture, detector) in fixture-major order, every cell
// classified and carrying vocabulary-derived cost totals.
func TestDetectorMatrixCells(t *testing.T) {
	scenarios := StandardFixtures()
	for i := range scenarios {
		scenarios[i] = scenarios[i].Scaled(0.1)
	}
	names := core.DetectorNames()
	cells, err := Engine{}.DetectorMatrix(scenarios, names, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(scenarios)*len(names) {
		t.Fatalf("got %d cells, want %d", len(cells), len(scenarios)*len(names))
	}
	for ci, cell := range cells {
		si, di := ci/len(names), ci%len(names)
		if cell.Fixture != scenarios[si].Name || cell.Detector != names[di] {
			t.Fatalf("cell %d is (%s, %s), want (%s, %s)",
				ci, cell.Fixture, cell.Detector, scenarios[si].Name, names[di])
		}
		if cell.Found != cell.Correct+cell.Mistaken {
			t.Fatalf("cell %d: Found %d != Correct+Mistaken %d",
				ci, cell.Found, cell.Correct+cell.Mistaken)
		}
		// Every registered detector declares work keys, and every fixture
		// is big enough that the work total must be positive.
		if cell.Work <= 0 {
			t.Fatalf("cell %d (%s/%s): vocabulary work total is %d",
				ci, cell.Fixture, cell.Detector, cell.Work)
		}
	}
	h, rows := metrics.DetectorComparisonRows(cells)
	if len(rows) != len(cells) || len(h) == 0 {
		t.Fatalf("comparison table: %d rows from %d cells", len(rows), len(cells))
	}
	if h[len(h)-3] != "runs" || h[len(h)-2] != "p50_ms" || h[len(h)-1] != "p99_ms" {
		t.Fatalf("sustained-cost columns missing from header: %v", h)
	}
}

// TestDetectorMatrixSustainedRuns: repeat runs fill the sustained-cost
// quantiles without multiplying the counter roll-ups — detection is
// deterministic, so a 3-run cell's message/work totals must equal a
// 1-run cell's exactly.
func TestDetectorMatrixSustainedRuns(t *testing.T) {
	scenarios := StandardFixtures()[:1]
	scenarios[0] = scenarios[0].Scaled(0.1)
	names := []string{core.DefaultDetector}

	once, err := Engine{}.DetectorMatrix(scenarios, names, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	thrice, err := Engine{SustainedRuns: 3}.DetectorMatrix(scenarios, names, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := once[0], thrice[0]
	if a.Runs != 1 || b.Runs != 3 {
		t.Fatalf("runs recorded as %d and %d, want 1 and 3", a.Runs, b.Runs)
	}
	if a.Messages != b.Messages || a.Rounds != b.Rounds || a.Work != b.Work {
		t.Fatalf("repeat runs changed counter totals: 1-run %+v vs 3-run %+v", a, b)
	}
	if a.Classification != b.Classification {
		t.Fatalf("repeat runs changed the classification: %+v vs %+v", a.Classification, b.Classification)
	}
	for _, c := range []metrics.DetectorCell{a, b} {
		if c.P50NS <= 0 || c.P99NS < c.P50NS {
			t.Fatalf("latency quantiles not sane: %+v", c)
		}
	}
}

// TestDetectorAblationVocabulary pins satellite behavior of the
// capability-derived ablation lists: the paper detector keeps its
// historical 11-row study, a coordinate-free detector gets no
// true-coords row, and a measurement-capable competitor does.
func TestDetectorAblationVocabulary(t *testing.T) {
	sc := StandardFixtures()[0].Scaled(0.1)
	net, err := sc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	meas := net.Measure(ranging.ForFraction(0.1), sc.Seed)

	rowNames := func(detector string) []string {
		variants := ablationVariantsFor(net, meas, core.Config{Detector: detector})
		names := make([]string, len(variants))
		for i, v := range variants {
			names[i] = v.name
		}
		return names
	}
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}

	paper := rowNames("")
	if len(paper) != 11 || paper[0] != "full-pipeline" || paper[len(paper)-1] != "degree-baseline" {
		t.Fatalf("paper ablation list changed: %v", paper)
	}

	contour := rowNames("sv-contour") // CapFaults only: no coordinates
	if has(contour, "true-coords") {
		t.Fatalf("coordinate-free detector must not get a true-coords row: %v", contour)
	}
	if !has(contour, "no-refine") || !has(contour, "degree-baseline") {
		t.Fatalf("competitor ablations missing shared rows: %v", contour)
	}

	enclosure := rowNames("sv-enclosure") // CapMeasurement: coords matter
	if !has(enclosure, "true-coords") {
		t.Fatalf("measurement-capable detector must get a true-coords row: %v", enclosure)
	}
}
