package eval

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
)

// TestEngineSchedulingIndependence: every Engine study must return
// byte-identical results regardless of the pool width or GOMAXPROCS —
// per-cell seeds are index-derived and the fold order is fixed, so
// scheduling must never show through. This is the acceptance gate for
// parallelizing the sweeps at all.
func TestEngineSchedulingIndependence(t *testing.T) {
	net, err := smallFig10().Generate()
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{0, 0.5}
	losses := []float64{0, 0.3}
	scenarios := []Scenario{smallFig10()}
	cfg := core.Config{}

	type outcome struct {
		sweep SweepResult
		agg   SweepResult
		fault FaultSweepResult
		abl   []AblationRow
	}
	runAll := func(e Engine) outcome {
		t.Helper()
		sweep, err := e.ErrorSweep(net, "test", levels, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := e.AggregateSweep(scenarios, levels, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fault, err := e.FaultSweep(net, "test", losses, 0.3, cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		abl, err := e.Ablations(net, 0.3, 9)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{sweep, agg, fault, abl}
	}

	serial := runAll(Engine{Workers: 1})
	pooled := runAll(Engine{Workers: 8})
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatal("Engine results differ between Workers=1 and Workers=8")
	}

	// And under a different GOMAXPROCS (the zero-value Engine derives its
	// width from it).
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	wide := runAll(Engine{})
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("Engine results depend on GOMAXPROCS")
	}
}

// TestEngineMatchesSerialWrappers: the Run* entry points delegate to the
// pool; their results must equal a Workers=1 Engine run exactly.
func TestEngineMatchesSerialWrappers(t *testing.T) {
	net, err := smallFig10().Generate()
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{0, 0.5}
	cfg := core.Config{}

	fromWrapper, err := RunErrorSweep(net, "test", levels, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	fromEngine, err := Engine{Workers: 1}.ErrorSweep(net, "test", levels, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromWrapper, fromEngine) {
		t.Fatal("RunErrorSweep diverges from the serial engine")
	}
}
