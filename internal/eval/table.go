package eval

import (
	"fmt"
	"strings"
)

// FormatTable renders an aligned plain-text table, the output format of
// cmd/experiment and the EXPERIMENTS.md records.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
