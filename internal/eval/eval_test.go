package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

// smallFig10 is the sphere scenario scaled down for test runtime.
func smallFig10() Scenario { return Fig10().Scaled(0.4) }

func TestScenarioDefinitions(t *testing.T) {
	for _, sc := range AllScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if sc.Name == "" || sc.Figure == "" {
				t.Error("unnamed scenario")
			}
			shape, err := sc.MakeShape()
			if err != nil {
				t.Fatal(err)
			}
			if shape.SurfaceComponents() < 1 {
				t.Error("no surface components")
			}
			// Generate at a tiny scale to validate parameters without
			// paying full deployment cost.
			small := sc.Scaled(0.1)
			net, err := small.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if net.Len() != small.SurfaceNodes+small.InteriorNodes {
				t.Errorf("node count %d", net.Len())
			}
		})
	}
}

func TestScaled(t *testing.T) {
	sc := Fig1()
	small := sc.Scaled(0.5)
	if small.SurfaceNodes != sc.SurfaceNodes/2 {
		t.Errorf("surface nodes = %d", small.SurfaceNodes)
	}
	tiny := sc.Scaled(0.0001)
	if tiny.SurfaceNodes < 50 || tiny.InteriorNodes < 100 {
		t.Errorf("scale floor violated: %d %d", tiny.SurfaceNodes, tiny.InteriorNodes)
	}
}

func TestPaperErrorLevels(t *testing.T) {
	levels := PaperErrorLevels()
	if len(levels) != 11 || levels[0] != 0 || levels[10] != 1 {
		t.Errorf("levels = %v", levels)
	}
}

func TestRunErrorSweepShape(t *testing.T) {
	net, err := smallFig10().Generate()
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{0, 0.5, 1.0}
	sweep, err := RunErrorSweep(net, "test", levels, core.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 3 {
		t.Fatalf("points = %d", len(sweep.Points))
	}
	// The paper's headline shape: near-perfect at 0 %, degraded at 100 %.
	r0 := sweep.Points[0].Report
	r100 := sweep.Points[2].Report
	if r0.Recall() < 0.9 {
		t.Errorf("recall at 0%% = %.3f", r0.Recall())
	}
	if r100.Missing <= r0.Missing {
		t.Errorf("missing did not grow with error: %d -> %d", r0.Missing, r100.Missing)
	}
	// Tables render without panicking and with matching widths.
	h, rows := EfficiencyRows(sweep)
	if len(rows) != 3 || len(rows[0]) != len(h) {
		t.Errorf("efficiency rows malformed")
	}
	out := FormatTable(h, rows)
	if !strings.Contains(out, "error") || !strings.Contains(out, "50%") {
		t.Errorf("table:\n%s", out)
	}
	for _, missing := range []bool{false, true} {
		h, rows := DistributionRows(sweep, missing)
		if len(rows) != 3 || len(rows[0]) != len(h) {
			t.Errorf("distribution rows malformed")
		}
	}
}

func TestRunAggregateSweep(t *testing.T) {
	scenarios := []Scenario{Fig10().Scaled(0.25), Fig1().Scaled(0.15)}
	levels := []float64{0, 0.6}
	agg, err := RunAggregateSweep(scenarios, levels, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Points) != 2 {
		t.Fatalf("points = %d", len(agg.Points))
	}
	// Aggregate true-boundary counts must equal the scenario sum.
	var wantTrue int
	for _, sc := range scenarios {
		net, err := sc.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range net.Nodes {
			if n.OnSurface {
				wantTrue++
			}
		}
	}
	if agg.Points[0].Report.TrueBoundary != wantTrue {
		t.Errorf("aggregate true = %d, want %d", agg.Points[0].Report.TrueBoundary, wantTrue)
	}
}

func TestRunScenario(t *testing.T) {
	rep, err := RunScenario(smallFig10(), 0, core.Config{}, mesh.Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups < 1 {
		t.Error("no boundary groups")
	}
	if rep.Detection.Recall() < 0.85 {
		t.Errorf("recall = %.3f", rep.Detection.Recall())
	}
	if len(rep.Surfaces) != rep.Groups {
		t.Errorf("surfaces %d != groups %d", len(rep.Surfaces), rep.Groups)
	}
	if rep.Routing.Trials == 0 {
		t.Error("routing experiment did not run")
	}
	h, rows := ScenarioRows([]*ScenarioReport{rep})
	if len(rows) != 1 || len(rows[0]) != len(h) {
		t.Error("scenario rows malformed")
	}
}

func TestRunMeshErrorStudy(t *testing.T) {
	net, err := smallFig10().Generate()
	if err != nil {
		t.Fatal(err)
	}
	shape, err := smallFig10().MakeShape()
	if err != nil {
		t.Fatal(err)
	}
	field, ok := shape.(shapes.DistanceField)
	if !ok {
		t.Fatal("fig10 shape lacks a distance field")
	}
	points, err := RunMeshErrorStudy(net, []float64{0, 0.3}, core.Config{}, mesh.Config{K: 4}, 5, field)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Landmarks == 0 || p.Faces == 0 {
			t.Errorf("empty mesh at error %.0f%%", p.ErrorFrac*100)
		}
		// Landmarks are detected boundary nodes: they must hug the true
		// surface within ~1.5 radio ranges even under noise.
		if p.MeanDeviation <= 0 || p.MeanDeviation > 1.5 {
			t.Errorf("mean deviation = %v R at error %.0f%%", p.MeanDeviation, p.ErrorFrac*100)
		}
		if p.MaxDeviation < p.MeanDeviation {
			t.Errorf("max %v < mean %v", p.MaxDeviation, p.MeanDeviation)
		}
	}
	h, rows := MeshErrorRows(points)
	if len(rows) != 2 || len(rows[0]) != len(h) {
		t.Error("mesh error rows malformed")
	}
}

func TestRunComplexityStudy(t *testing.T) {
	make := func(deg float64) (*netgen.Network, error) {
		sc := smallFig10()
		sc.TargetDegree = deg
		return sc.Generate()
	}
	points, err := RunComplexityStudy(make, []float64{10, 20}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Theorem 1: work grows superlinearly with degree.
	if points[1].AvgBalls <= points[0].AvgBalls {
		t.Errorf("balls did not grow: %v", points)
	}
	if points[1].AvgChecks <= 2*points[0].AvgChecks {
		t.Errorf("checks did not grow superlinearly: %v", points)
	}
	h, rows := ComplexityRows(points)
	if len(rows) != 2 || len(rows[0]) != len(h) {
		t.Error("complexity rows malformed")
	}
}

func TestRunAblations(t *testing.T) {
	net, err := smallFig10().Generate()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunAblations(net, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full, ok := byName["full-pipeline"]
	if !ok {
		t.Fatal("full-pipeline variant missing")
	}
	noIFF := byName["no-iff"]
	// IFF can only shrink the found set.
	if noIFF.Report.Found < full.Report.Found {
		t.Errorf("IFF increased found: %d vs %d", full.Report.Found, noIFF.Report.Found)
	}
	// Large unit balls suppress detections relative to r=1 (the outer
	// boundary survives but smaller features vanish).
	if byName["r=2.0"].Report.Found > full.Report.Found {
		t.Errorf("r=2.0 found more than r=1")
	}
	// The baseline should trail the full pipeline on F1.
	if byName["degree-baseline"].Report.F1() >= full.Report.F1() {
		t.Errorf("baseline F1 %.3f >= pipeline %.3f",
			byName["degree-baseline"].Report.F1(), full.Report.F1())
	}
	h, out := AblationRows(rows)
	if len(out) != len(rows) || len(out[0]) != len(h) {
		t.Error("ablation rows malformed")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "long"}, [][]string{{"xxxx", "1"}})
	want := "a     long\n----  ----\nxxxx  1   \n"
	if out != want {
		t.Errorf("table = %q, want %q", out, want)
	}
}

func TestRunSurfaceTools(t *testing.T) {
	rep, err := RunSurfaceTools(smallFig10(), mesh.Config{K: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EmbedRMSD <= 0 || rep.EmbedRMSD > 4 {
		t.Errorf("embed rmsd = %v radio ranges", rep.EmbedRMSD)
	}
	if rep.PartitionK < 1 || rep.Balance < 1 {
		t.Errorf("partition: k=%d balance=%v", rep.PartitionK, rep.Balance)
	}
	// Recovery can only help.
	if rep.RecoveryRate < rep.GreedyRate {
		t.Errorf("recovery %.3f < greedy %.3f", rep.RecoveryRate, rep.GreedyRate)
	}
	if rep.RecoveryRate < 0.99 {
		t.Errorf("recovery delivery = %.3f, want ~1 on a connected overlay", rep.RecoveryRate)
	}
	h, rows := SurfaceToolsRows([]*SurfaceToolsReport{rep})
	if len(rows) != 1 || len(rows[0]) != len(h) {
		t.Error("surface tools rows malformed")
	}
}

func TestRunLocalizationStudy(t *testing.T) {
	net, err := smallFig10().Generate()
	if err != nil {
		t.Fatal(err)
	}
	points, err := RunLocalizationStudy(net, []float64{0, 0.5}, core.Config{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Frame error grows with ranging error and p95 dominates the mean.
	if points[1].MeanFrameRMSD <= points[0].MeanFrameRMSD {
		t.Errorf("frame error did not grow: %+v", points)
	}
	for _, p := range points {
		if p.P95FrameRMSD < p.MeanFrameRMSD {
			t.Errorf("p95 < mean at %.0f%%: %+v", p.ErrorFrac*100, p)
		}
	}
	h, rows := LocalizationRows(points)
	if len(rows) != 2 || len(rows[0]) != len(h) {
		t.Error("localization rows malformed")
	}
}
