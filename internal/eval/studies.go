package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/shapes"
)

// MeshErrorPoint reports mesh quality at one error level — the Fig. 1(j–l)
// study ("the triangular mesh is not seriously deformed under distance
// measurement errors").
type MeshErrorPoint struct {
	ErrorFrac float64
	Groups    int
	Qualities []mesh.Quality
	// Landmarks and Faces total across surfaces, for the deformation
	// comparison across error levels.
	Landmarks int
	Faces     int
	// MeanDeviation and MaxDeviation measure how far the mesh vertices
	// (landmark positions) drift from the deployment shape's true
	// boundary, in radio ranges — the quantitative "mesh not seriously
	// deformed" metric. Zero when no distance field is supplied.
	MeanDeviation float64
	MaxDeviation  float64
}

// RunMeshErrorStudy rebuilds the boundary surfaces of one network at each
// error level. When field is non-nil, each point also reports the mesh
// vertices' deviation from the true boundary surface.
func RunMeshErrorStudy(net *netgen.Network, levels []float64, detectCfg core.Config, meshCfg mesh.Config, seed int64, field shapes.DistanceField) ([]MeshErrorPoint, error) {
	var out []MeshErrorPoint
	for li, level := range levels {
		meas := net.Measure(ranging.ForFraction(level), seed+int64(li))
		det, err := core.Detect(net, meas, detectCfg)
		if err != nil {
			return nil, fmt.Errorf("error level %.0f%%: %w", level*100, err)
		}
		surfaces, err := mesh.BuildAll(net.G, det.Groups, meshCfg)
		if err != nil {
			return nil, fmt.Errorf("error level %.0f%%: mesh: %w", level*100, err)
		}
		p := MeshErrorPoint{ErrorFrac: level, Groups: len(det.Groups)}
		var devSum float64
		devCount := 0
		for _, s := range surfaces {
			p.Qualities = append(p.Qualities, s.Quality)
			p.Landmarks += s.Quality.V
			p.Faces += s.Quality.F
			if field == nil {
				continue
			}
			for _, lm := range s.Landmarks.IDs {
				d := field.SurfaceDistance(net.Nodes[lm].Pos) / net.Radius
				devSum += d
				devCount++
				p.MaxDeviation = math.Max(p.MaxDeviation, d)
			}
		}
		if devCount > 0 {
			p.MeanDeviation = devSum / float64(devCount)
		}
		out = append(out, p)
	}
	return out, nil
}

// MeshErrorRows renders the mesh error study as a table.
func MeshErrorRows(points []MeshErrorPoint) (header []string, rows [][]string) {
	header = []string{"error", "groups", "landmarks", "faces", "nonManifold", "border", "closed",
		"meanDev(R)", "maxDev(R)"}
	for _, p := range points {
		nonManifold, border, closed := 0, 0, 0
		for _, q := range p.Qualities {
			nonManifold += q.NonManifoldEdges
			border += q.BorderEdges
			if q.Closed2Manifold {
				closed++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p.ErrorFrac*100),
			fmt.Sprint(p.Groups), fmt.Sprint(p.Landmarks), fmt.Sprint(p.Faces),
			fmt.Sprint(nonManifold), fmt.Sprint(border),
			fmt.Sprintf("%d/%d", closed, len(p.Qualities)),
			fmt.Sprintf("%.2f", p.MeanDeviation),
			fmt.Sprintf("%.2f", p.MaxDeviation),
		})
	}
	return header, rows
}

// ComplexityPoint is one degree level of the Theorem 1 study.
type ComplexityPoint struct {
	TargetDegree float64
	AvgDegree    float64
	// AvgBalls and AvgChecks are the mean per-node candidate-ball count
	// and point-in-ball test count; Theorem 1 predicts Θ(ρ²) balls and
	// Θ(ρ³) total work.
	AvgBalls  float64
	AvgChecks float64
	// TotalBalls and TotalChecks are the network-wide sums the averages
	// derive from — the work counters bench baselines record.
	TotalBalls  int64
	TotalChecks int64
}

// RunComplexityStudy measures UBF's per-node work across nodal densities on
// a fixed deployment shape, validating the Theorem 1 scaling.
func RunComplexityStudy(make func(targetDegree float64) (*netgen.Network, error), degrees []float64, cfg core.Config) ([]ComplexityPoint, error) {
	var out []ComplexityPoint
	for _, d := range degrees {
		net, err := make(d)
		if err != nil {
			return nil, err
		}
		det, err := core.Detect(net, nil, cfg)
		if err != nil {
			return nil, err
		}
		p := ComplexityPoint{TargetDegree: d, AvgDegree: net.G.AvgDegree()}
		for i := range det.BallsTested {
			p.TotalBalls += int64(det.BallsTested[i])
			p.TotalChecks += int64(det.NodesChecked[i])
		}
		n := float64(net.Len())
		p.AvgBalls = float64(p.TotalBalls) / n
		p.AvgChecks = float64(p.TotalChecks) / n
		out = append(out, p)
	}
	return out, nil
}

// ComplexityRows renders the Theorem 1 study, including the normalized
// ratios that should stay roughly flat if the Θ(ρ²)/Θ(ρ³) scaling holds.
func ComplexityRows(points []ComplexityPoint) (header []string, rows [][]string) {
	header = []string{"degree", "avgBalls", "avgChecks", "balls/ρ²", "checks/ρ³"}
	for _, p := range points {
		d := p.AvgDegree
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", d),
			fmt.Sprintf("%.0f", p.AvgBalls),
			fmt.Sprintf("%.0f", p.AvgChecks),
			fmt.Sprintf("%.3f", p.AvgBalls/(d*d)),
			fmt.Sprintf("%.4f", p.AvgChecks/(d*d*d)),
		})
	}
	return header, rows
}

// LocalizationPoint reports the local-coordinate quality at one ranging
// error level — the mechanism behind the detection degradation in
// Fig. 1(g): UBF is exact given exact frames (the true-coords ablation),
// so every detection error traces back to this curve.
type LocalizationPoint struct {
	ErrorFrac float64
	// MeanFrameRMSD and P95FrameRMSD summarize per-node one-hop frame
	// error against true positions (rigid-aligned), in radio ranges.
	MeanFrameRMSD float64
	P95FrameRMSD  float64
}

// RunLocalizationStudy measures MDS frame quality across error levels.
func RunLocalizationStudy(net *netgen.Network, levels []float64, cfg core.Config, seed int64) ([]LocalizationPoint, error) {
	var out []LocalizationPoint
	for li, level := range levels {
		meas := net.Measure(ranging.ForFraction(level), seed+int64(li))
		det, err := core.Detect(net, meas, cfg)
		if err != nil {
			return nil, fmt.Errorf("error level %.0f%%: %w", level*100, err)
		}
		errs := append([]float64(nil), det.CoordError...)
		sort.Float64s(errs)
		var sum float64
		for _, e := range errs {
			sum += e
		}
		p := LocalizationPoint{ErrorFrac: level}
		if len(errs) > 0 {
			p.MeanFrameRMSD = sum / float64(len(errs)) / net.Radius
			p.P95FrameRMSD = errs[len(errs)*95/100] / net.Radius
		}
		out = append(out, p)
	}
	return out, nil
}

// LocalizationRows renders the localization study as a table.
func LocalizationRows(points []LocalizationPoint) (header []string, rows [][]string) {
	header = []string{"error", "meanFrameRMSD(R)", "p95FrameRMSD(R)"}
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p.ErrorFrac*100),
			fmt.Sprintf("%.3f", p.MeanFrameRMSD),
			fmt.Sprintf("%.3f", p.P95FrameRMSD),
		})
	}
	return header, rows
}
