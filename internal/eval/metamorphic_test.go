package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestMetamorphicExecutionModels is the repo's central metamorphic
// suite: for every paper scenario, the detection outcome must be
// byte-identical across execution models that the theory says cannot
// matter —
//
//   - synchronized rounds (the reference),
//   - asynchronous per-message delays,
//   - synchronized rounds with faults below the retransmission budget,
//   - asynchronous delivery with the same recoverable faults.
//
// The flooding protocols are delay-independent, and with per-link loss
// capped at MaxDropsPerLink <= RetransmitBudget the acknowledged
// variants mask every loss, so all four runs must agree on the boundary
// set, the per-node fragment sizes, and the grouping.
func TestMetamorphicExecutionModels(t *testing.T) {
	recoverable := sim.FaultConfig{
		Seed:            11,
		DropRate:        0.25,
		MaxDropsPerLink: 2,
		DuplicateRate:   0.2,
		DelayRate:       0.3,
		MaxExtraDelay:   2,
	}
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"sync", core.Config{}},
		{"async", core.Config{Async: true, AsyncSeed: 5}},
		{"sync-faults", core.Config{Faults: recoverable, RetransmitBudget: 4}},
		{"async-faults", core.Config{Async: true, AsyncSeed: 5, Faults: recoverable, RetransmitBudget: 4}},
	}
	for _, sc := range AllScenarios() {
		sc := sc.Scaled(0.12)
		t.Run(sc.Name, func(t *testing.T) {
			net, err := sc.Generate()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.Detect(net, nil, variants[0].cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range variants[1:] {
				got, err := core.Detect(net, nil, v.cfg)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				for i := range ref.Boundary {
					if got.Boundary[i] != ref.Boundary[i] {
						t.Fatalf("%s: boundary differs at node %d", v.name, i)
					}
					if got.FragmentSize[i] != ref.FragmentSize[i] {
						t.Fatalf("%s: fragment size differs at node %d: %d vs %d",
							v.name, i, got.FragmentSize[i], ref.FragmentSize[i])
					}
					if got.GroupLabel[i] != ref.GroupLabel[i] {
						t.Fatalf("%s: group label differs at node %d: %d vs %d",
							v.name, i, got.GroupLabel[i], ref.GroupLabel[i])
					}
				}
				if len(got.Groups) != len(ref.Groups) {
					t.Fatalf("%s: %d groups, want %d", v.name, len(got.Groups), len(ref.Groups))
				}
				for gi := range ref.Groups {
					if len(got.Groups[gi]) != len(ref.Groups[gi]) {
						t.Fatalf("%s: group %d size %d, want %d",
							v.name, gi, len(got.Groups[gi]), len(ref.Groups[gi]))
					}
					for vi := range ref.Groups[gi] {
						if got.Groups[gi][vi] != ref.Groups[gi][vi] {
							t.Fatalf("%s: group %d member %d differs", v.name, gi, vi)
						}
					}
				}
			}
		})
	}
}
