package mesh

// The incremental surface engine: a per-session cache of constructed group
// surfaces that survives join/leave/move/crash deltas and rebuilds only
// the groups a delta actually dirtied.
//
// Soundness rests on one structural fact about the pipeline: a group's
// surface (steps I–V, Sec. III) is a pure function of the group's member
// list and the member-to-member edges E(S) — every election, association,
// path, and flip reads hop counts and node-ID comparisons over the induced
// member subgraph and nothing else. Positions enter only through the
// separate smoothing pass (RefinedPositions), which callers re-run per
// serve. A delta at node c changes only edges incident to c, so E(S) for a
// cached member set S changes exactly when c ∈ S and some peer of the
// changed edges is also in S. That is the invalidation rule Invalidate
// applies; because it runs on *every* delta, any entry still cached when
// its member set reappears has had no intra-set edge change since it was
// built, and is served verbatim. (Euclidean form of the same locality
// argument: a delta at position p only touches edges inside the ball of
// one radio range R around p — the dirty ball — so only groups
// intersecting that ball can be invalidated; DESIGN.md §15 derives this.)
//
// Cache-miss rebuilds run in a compacted ID space: the group's induced
// subgraph is re-indexed to [0, |S|) by the monotone (ascending) member
// renaming, built straight into a CSR, and the finished surface is renamed
// back. Every mesh operation is order- and comparison-based — ascending
// greedy election, min-ID tie-breaks, normalized edges, lexicographic
// sorts — and a monotone renaming preserves all comparisons, so the
// compact-space surface renames back to exactly the surface a from-scratch
// whole-network Build produces (the incremental differential matrix
// enforces this). The compaction is what makes repairs cheap: BFS arrays,
// SPTs, and scratch all scale with the group, not the network.

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Topology is the live adjacency view the incremental engine rebuilds
// dirty groups from: a stable-ID universe of Len() nodes with ascending
// neighbor rows. core.Incremental satisfies it directly.
type Topology interface {
	Len() int
	Neighbors(u int) []int32
}

// maxCachedSurfaces caps the per-engine cache; beyond it the
// least-recently-served entry is evicted. Sessions rarely hold more than a
// handful of live groups, so the cap only matters when churn keeps
// renaming groups — and then old member lists can never match again
// anyway.
const maxCachedSurfaces = 64

// meshEntry is one cached group surface, keyed by its exact member list.
type meshEntry struct {
	hash    uint64         // FNV-1a over the member list (fast filter)
	members []int          // ascending stable IDs
	set     *graph.NodeSet // the same members, as a bitset (invalidation)
	surf    *Surface       // stable-ID surface
	stamp   uint64         // last-served clock, for eviction
}

// IncrementalStats reports cache effectiveness counters.
type IncrementalStats struct {
	// Hits and Misses count group serves answered from the cache vs
	// rebuilt.
	Hits, Misses uint64
	// Entries is the current number of cached surfaces.
	Entries int
}

// Incremental is a per-session surface engine: Surfaces serves the current
// groups' meshes, reusing every cached surface whose member set and
// intra-group adjacency are unchanged, and Invalidate — called once per
// topology delta — evicts exactly the entries the delta dirtied. Not safe
// for concurrent use; a server serializes per session, like
// core.Incremental.
type Incremental struct {
	cfg    Config
	clock  uint64
	hits   uint64
	misses uint64

	entries []*meshEntry

	// Rebuild scratch, reused across misses. rowPtr/col are aliased by
	// the compact CSR only during a rebuild; the CSR is discarded before
	// the next rebuild starts, so reuse is safe.
	s2c    []int32 // stable → compact, valid only at member indices
	rowPtr []int32
	col    []int32
	seq    []int // the identity group [0, m) in compact space
}

// NewIncremental returns an empty engine building surfaces under cfg
// (defaults applied as in Build).
func NewIncremental(cfg Config) *Incremental {
	return &Incremental{cfg: cfg.withDefaults()}
}

// Stats reports the engine's cache counters.
func (e *Incremental) Stats() IncrementalStats {
	return IncrementalStats{Hits: e.hits, Misses: e.misses, Entries: len(e.entries)}
}

// Invalidate absorbs one topology delta: node is the changed stable ID and
// peers the nodes whose edge to it appeared or disappeared
// (core.Incremental.LastTopology provides exactly this). Every cached
// surface whose member set contains the node *and* at least one changed
// peer had an intra-group edge change and is evicted; all others remain
// valid — including groups the node belongs to when the change only
// touched edges leaving the group. Allocation-free; call it after every
// applied delta, cheap no-op when nothing matches.
func (e *Incremental) Invalidate(o obs.Observer, node int, peers []int32) {
	w := 0
	for _, ent := range e.entries {
		if ent.set.Has(node) && anyIn(ent.set, peers) {
			obs.Add(o, obs.StageMeshInc, obs.CtrSPTInvalidated, int64(len(ent.surf.Landmarks.IDs)))
			continue
		}
		e.entries[w] = ent
		w++
	}
	for i := w; i < len(e.entries); i++ {
		e.entries[i] = nil
	}
	e.entries = e.entries[:w]
}

// growUniverse pads a cached surface's universe-sized association tables
// up to the current stable-ID universe — joins grow it (never shrink), and
// a from-scratch build over the larger universe holds exactly the
// NoLandmark/Unreachable defaults at the new indices, so padding keeps
// cached serves bit-identical. No growth, no allocation.
func growUniverse(s *Surface, n int) {
	for len(s.Landmarks.Assoc) < n {
		s.Landmarks.Assoc = append(s.Landmarks.Assoc, NoLandmark)
		s.Landmarks.Hops = append(s.Landmarks.Hops, graph.Unreachable)
	}
}

func anyIn(set *graph.NodeSet, peers []int32) bool {
	for _, p := range peers {
		if set.Has(int(p)) {
			return true
		}
	}
	return false
}

// Surfaces serves one surface per boundary group, appending to dst (pass
// dst[:0] to reuse the backing array across serves). Member lists must be
// ascending stable IDs (core.Incremental.GroupsView provides this).
// Cached groups are returned as-is — a fully-hit serve allocates nothing
// beyond dst growth — and dirty groups are rebuilt in compact ID space and
// cached. Returned surfaces are shared with the cache: callers must not
// mutate them, and a surface stays valid after later deltas (eviction only
// drops the cache's reference).
//
// The serve runs under a StageMeshInc span carrying mesh_repairs (groups
// rebuilt), dirty_patch_nodes (their total size), and — via Invalidate —
// spt_invalidated.
func (e *Incremental) Surfaces(ctx context.Context, o obs.Observer, topo Topology, groups [][]int, dst []*Surface) ([]*Surface, error) {
	span := obs.Start(o, obs.StageMeshInc)
	defer span.End()
	for gi, group := range groups {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		if len(group) == 0 {
			return dst, fmt.Errorf("group %d: %w", gi, ErrEmptyGroup)
		}
		e.clock++
		if ent := e.lookup(group); ent != nil {
			ent.stamp = e.clock
			e.hits++
			growUniverse(ent.surf, topo.Len())
			dst = append(dst, ent.surf)
			continue
		}
		e.misses++
		surf, err := e.rebuild(ctx, o, topo, group)
		if err != nil {
			return dst, fmt.Errorf("group %d: %w", gi, err)
		}
		obs.Add(o, obs.StageMeshInc, obs.CtrMeshRepairs, 1)
		obs.Add(o, obs.StageMeshInc, obs.CtrDirtyPatch, int64(len(group)))
		e.insert(group, topo.Len(), surf)
		dst = append(dst, surf)
	}
	return dst, nil
}

// BuildTopology constructs one surface per group directly on a stable-ID
// topology, without caching: a throwaway engine serves every group as a
// miss, so each surface is a from-scratch compact-space build —
// bit-identical to BuildAll over the same adjacency (the differential
// matrix proves the equivalence). This is the full-recompute path servers
// use for detectors without incremental support.
func BuildTopology(ctx context.Context, o obs.Observer, topo Topology, groups [][]int, cfg Config) ([]*Surface, error) {
	return NewIncremental(cfg).Surfaces(ctx, o, topo, groups, nil)
}

// lookup finds the cached entry whose member list equals group exactly.
func (e *Incremental) lookup(group []int) *meshEntry {
	h := memberHash(group)
	for _, ent := range e.entries {
		if ent.hash != h || len(ent.members) != len(group) {
			continue
		}
		match := true
		for i, v := range ent.members {
			if v != group[i] {
				match = false
				break
			}
		}
		if match {
			return ent
		}
	}
	return nil
}

func memberHash(group []int) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range group {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// insert caches a rebuilt surface, evicting the least-recently-served
// entry past the cap.
func (e *Incremental) insert(group []int, universe int, surf *Surface) {
	set := graph.NewNodeSet(universe)
	for _, v := range group {
		set.Add(v)
	}
	ent := &meshEntry{
		hash:    memberHash(group),
		members: append([]int(nil), group...),
		set:     set,
		surf:    surf,
		stamp:   e.clock,
	}
	if len(e.entries) >= maxCachedSurfaces {
		oldest := 0
		for i, x := range e.entries {
			if x.stamp < e.entries[oldest].stamp {
				oldest = i
			}
		}
		e.entries[oldest] = e.entries[len(e.entries)-1]
		e.entries[len(e.entries)-1] = nil
		e.entries = e.entries[:len(e.entries)-1]
	}
	e.entries = append(e.entries, ent)
}

// rebuild constructs one group's surface from the live topology in
// compacted ID space, then renames the result back to stable IDs.
func (e *Incremental) rebuild(ctx context.Context, o obs.Observer, topo Topology, group []int) (*Surface, error) {
	m := len(group)
	n := topo.Len()

	// Membership bitset first, then the stable→compact map (read only at
	// member indices, so stale garbage elsewhere is harmless).
	member := graph.NewNodeSet(n)
	for _, v := range group {
		member.Add(v)
	}
	if cap(e.s2c) < n {
		e.s2c = make([]int32, n)
	}
	s2c := e.s2c[:n]
	for i, v := range group {
		s2c[v] = int32(i)
	}

	// Induced subgraph as a compact CSR. Stable rows are ascending and
	// the renaming is monotone, so compact rows stay ascending — the scan
	// order every whole-network traversal sees after membership
	// filtering.
	rowPtr := append(e.rowPtr[:0], 0)
	col := e.col[:0]
	for _, v := range group {
		for _, x := range topo.Neighbors(v) {
			if member.Has(int(x)) {
				col = append(col, s2c[x])
			}
		}
		rowPtr = append(rowPtr, int32(len(col)))
	}
	e.rowPtr, e.col = rowPtr, col
	csr, err := graph.NewCSRFromParts(rowPtr, col)
	if err != nil {
		return nil, err
	}

	seq := e.seq[:0]
	for i := 0; i < m; i++ {
		seq = append(seq, i)
	}
	e.seq = seq

	surf, err := buildOnKernel(ctx, o, newSurfKernelFromCSR(csr, e.cfg.noSPT), seq, e.cfg)
	if err != nil {
		return nil, err
	}
	renameSurface(surf, group, n)
	return surf, nil
}

// renameSurface maps a compact-space surface back to stable IDs in place.
// The member renaming is monotone, so normalized edge endpoints, ascending
// face triples, and every sorted order survive the renaming untouched.
func renameSurface(s *Surface, members []int, universe int) {
	s.Group = append(s.Group[:0:0], members...)
	for i, lm := range s.Landmarks.IDs {
		s.Landmarks.IDs[i] = members[lm]
	}
	assoc := make([]int, universe)
	hops := make([]int, universe)
	for i := range assoc {
		assoc[i] = NoLandmark
		hops[i] = graph.Unreachable
	}
	for i, a := range s.Landmarks.Assoc {
		if a != NoLandmark {
			assoc[members[i]] = members[a]
			hops[members[i]] = s.Landmarks.Hops[i]
		}
	}
	s.Landmarks.Assoc = assoc
	s.Landmarks.Hops = hops
	renameEdges(s.CDG, members)
	renameEdges(s.CDM, members)
	renameEdges(s.Edges, members)
	for i := range s.Faces {
		f := &s.Faces[i]
		f[0], f[1], f[2] = members[f[0]], members[f[1]], members[f[2]]
	}
	paths := make(map[Edge][]int, len(s.Paths))
	for e, p := range s.Paths {
		for i := range p {
			p[i] = members[p[i]]
		}
		paths[Edge{members[e[0]], members[e[1]]}] = p
	}
	s.Paths = paths
}

func renameEdges(edges []Edge, members []int) {
	for i := range edges {
		edges[i][0] = members[edges[i][0]]
		edges[i][1] = members[edges[i][1]]
	}
}
