package mesh

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/shapes"
	"repro/internal/sim"
)

// diffFixture yields the boundary groups of one detected deployment.
type diffFixture struct {
	name   string
	net    *netgen.Network
	groups [][]int
}

func detectGroups(t *testing.T, name string, shape shapes.Shape, surface, interior int, seed int64, faults sim.FaultConfig) diffFixture {
	t.Helper()
	net, err := netgen.Generate(netgen.Config{
		Shape:           shape,
		SurfaceNodes:    surface,
		InteriorNodes:   interior,
		TargetAvgDegree: 18,
		Seed:            seed,
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	res, err := core.Detect(net, nil, core.Config{Faults: faults})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(res.Groups) == 0 {
		t.Fatalf("%s: no boundary groups detected", name)
	}
	return diffFixture{name: name, net: net, groups: res.Groups}
}

// diffFixtures builds the seeded sphere/cube/torus deployments, the cube
// additionally under fault injection (message loss, duplication, and node
// crashes perturb the detected group the mesh is built from).
func diffFixtures(t *testing.T) []diffFixture {
	t.Helper()
	box, err := shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(7, 7, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := shapes.NewTorus(5.5, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	return []diffFixture{
		detectGroups(t, "sphere", shapes.NewBall(geom.Zero, 4), 400, 900, 60, sim.FaultConfig{}),
		detectGroups(t, "cube", box, 450, 950, 61, sim.FaultConfig{}),
		detectGroups(t, "torus", tor, 700, 1100, 3, sim.FaultConfig{}),
		detectGroups(t, "cube-faulty", box, 450, 950, 61, sim.FaultConfig{
			Seed:          7,
			DropRate:      0.05,
			DuplicateRate: 0.02,
			CrashRate:     0.005,
		}),
	}
}

func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func facesEqual(a, b []Face) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareSurfaces asserts two surfaces are bit-identical in every output
// the pipeline exposes: landmarks, association, CDG, CDM, final edge set,
// triangle set, flip count, and every realized virtual-edge path.
func compareSurfaces(t *testing.T, label string, want, got *Surface) {
	t.Helper()
	if !intsEqual(want.Landmarks.IDs, got.Landmarks.IDs) {
		t.Fatalf("%s: landmark IDs differ: %v vs %v", label, want.Landmarks.IDs, got.Landmarks.IDs)
	}
	if !intsEqual(want.Landmarks.Assoc, got.Landmarks.Assoc) {
		t.Fatalf("%s: associations differ", label)
	}
	if !intsEqual(want.Landmarks.Hops, got.Landmarks.Hops) {
		t.Fatalf("%s: association hop distances differ", label)
	}
	if !edgesEqual(want.CDG, got.CDG) {
		t.Fatalf("%s: CDG differs (%d vs %d edges)", label, len(want.CDG), len(got.CDG))
	}
	if !edgesEqual(want.CDM, got.CDM) {
		t.Fatalf("%s: CDM differs (%d vs %d edges)", label, len(want.CDM), len(got.CDM))
	}
	if !edgesEqual(want.Edges, got.Edges) {
		t.Fatalf("%s: final edge sets differ (%d vs %d)", label, len(want.Edges), len(got.Edges))
	}
	if !facesEqual(want.Faces, got.Faces) {
		t.Fatalf("%s: triangle sets differ (%d vs %d)", label, len(want.Faces), len(got.Faces))
	}
	if want.Flips != got.Flips {
		t.Fatalf("%s: flip counts differ: %d vs %d", label, want.Flips, got.Flips)
	}
	if len(want.Paths) != len(got.Paths) {
		t.Fatalf("%s: path maps differ in size: %d vs %d", label, len(want.Paths), len(got.Paths))
	}
	for e, p := range want.Paths {
		if !intsEqual(p, got.Paths[e]) {
			t.Fatalf("%s: path for edge %v differs: %v vs %v", label, e, p, got.Paths[e])
		}
	}
	if want.Quality != got.Quality {
		t.Fatalf("%s: quality differs: %v vs %v", label, want.Quality, got.Quality)
	}
}

// TestSurfaceMatchesReferenceImplementation is the rewrite's differential
// gate: the CSR+SPT pipeline must reproduce the pre-kernel implementation
// bit for bit on every detected group of every fixture — sphere, cube, and
// torus deployments, the cube also under fault-injected detection — with
// the SPT cache both on and off.
func TestSurfaceMatchesReferenceImplementation(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fixtures are expensive")
	}
	for _, fx := range diffFixtures(t) {
		for gi, group := range fx.groups {
			label := fmt.Sprintf("%s/group%d", fx.name, gi)
			want, err := refBuild(fx.net.G, group, Config{K: 3})
			if err != nil {
				t.Fatalf("%s: reference build: %v", label, err)
			}
			cached, err := Build(fx.net.G, group, Config{K: 3})
			if err != nil {
				t.Fatalf("%s: kernel build: %v", label, err)
			}
			compareSurfaces(t, label+"/spt-on", want, cached)
			uncached, err := Build(fx.net.G, group, Config{K: 3, noSPT: true})
			if err != nil {
				t.Fatalf("%s: uncached build: %v", label, err)
			}
			compareSurfaces(t, label+"/spt-off", want, uncached)
		}
	}
}

// TestSurfaceSPTPathsBitIdentical pins the narrower property the cache
// design rests on: for every landmark pair of a real detected group, the
// cached tree's extracted path equals graph.ShortestPath exactly.
func TestSurfaceSPTPathsBitIdentical(t *testing.T) {
	fx := detectGroups(t, "sphere", shapes.NewBall(geom.Zero, 4), 350, 800, 62, sim.FaultConfig{})
	group := fx.groups[0]
	g := fx.net.G
	inGroup := make([]bool, g.Len())
	for _, v := range group {
		inGroup[v] = true
	}
	kn := newSurfKernel(g, inGroup, false)
	lms, err := electLandmarks(kn, group, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := kn.cacheSPTs(lms.IDs, 2); err != nil {
		t.Fatal(err)
	}
	member := graph.InSet(inGroup)
	for i, a := range lms.IDs {
		for _, b := range lms.IDs[i+1:] {
			want := g.ShortestPath(a, b, member)
			got := kn.path(mkEdge(a, b))
			if !intsEqual(want, got) {
				t.Fatalf("path %d-%d: fresh %v, cached %v", a, b, want, got)
			}
			if want != nil {
				if d := kn.dist(a, b); d != len(want)-1 {
					t.Fatalf("dist %d-%d: %d, want %d", a, b, d, len(want)-1)
				}
			}
		}
	}
	if kn.hits == 0 {
		t.Fatal("SPT cache recorded no hits")
	}
}
