package mesh

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

// buildDetected generates a ball network, detects its boundary, and builds
// the surface — the full Sec. II + Sec. III pipeline.
func buildDetected(t *testing.T, k int) (*netgen.Network, *Surface) {
	t.Helper()
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 4),
		SurfaceNodes:    500,
		InteriorNodes:   1500,
		TargetAvgDegree: 18,
		Seed:            60,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(net, nil, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("expected one boundary group, got %d", len(res.Groups))
	}
	s, err := Build(net.G, res.Groups[0], Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return net, s
}

func TestBuildSphereSurface(t *testing.T) {
	net, s := buildDetected(t, 4)
	q := s.Quality
	if q.V < 10 {
		t.Fatalf("too few landmarks: %v", q)
	}
	// Every edge of the final mesh must border at most two faces — the
	// paper's locally-planarized 2-manifold claim after edge flipping.
	if q.NonManifoldEdges != 0 {
		t.Errorf("non-manifold edges remain: %v", q)
	}
	// A sphere boundary at k=4 closes up watertight with Euler
	// characteristic 2 on this fixture.
	if !q.Closed2Manifold {
		t.Errorf("sphere mesh not closed: %v", q)
	}
	if q.Euler != 2 {
		t.Errorf("euler = %d, want 2", q.Euler)
	}
	// Landmarks must be actual boundary nodes, k-hop separated.
	boundarySet := make(map[int]bool)
	for _, v := range s.Group {
		boundarySet[v] = true
	}
	for _, lm := range s.Landmarks.IDs {
		if !boundarySet[lm] {
			t.Errorf("landmark %d not a boundary node", lm)
		}
	}
	// Landmark positions should hug the true sphere surface.
	for _, lm := range s.Landmarks.IDs {
		d := net.Nodes[lm].Pos.Dist(geom.Zero)
		if d < 4-2*net.Radius {
			t.Errorf("landmark %d at radius %.2f, far from surface", lm, d)
		}
	}
}

func TestBuildSphereSurfaceK3(t *testing.T) {
	_, s := buildDetected(t, 3)
	q := s.Quality
	if q.NonManifoldEdges != 0 {
		t.Errorf("non-manifold edges remain at k=3: %v", q)
	}
	// k=3 yields a finer mesh that may keep a few border edges, but it
	// must stay close to closed: small hole count and near-2 Euler.
	if q.BorderEdges > q.E/5 {
		t.Errorf("too many border edges: %v", q)
	}
	if q.Euler < -4 || q.Euler > 4 {
		t.Errorf("euler = %d far from 2: %v", q.Euler, q)
	}
	// Finer spacing means more landmarks than k=4.
	_, s4 := buildDetected(t, 4)
	if len(s.Landmarks.IDs) <= len(s4.Landmarks.IDs) {
		t.Errorf("k=3 produced %d landmarks, k=4 produced %d",
			len(s.Landmarks.IDs), len(s4.Landmarks.IDs))
	}
}

func TestBuildSurfaceStructures(t *testing.T) {
	_, s := buildDetected(t, 3)
	// CDM ⊆ CDG.
	cdg := make(map[Edge]bool)
	for _, e := range s.CDG {
		cdg[e] = true
	}
	for _, e := range s.CDM {
		if !cdg[e] {
			t.Errorf("CDM edge %v not in CDG", e)
		}
	}
	if len(s.CDM) > len(s.CDG) {
		t.Error("CDM larger than CDG")
	}
	// Paths: every recorded path must realize its edge through group
	// nodes, endpoints first/last.
	member := make(map[int]bool)
	for _, v := range s.Group {
		member[v] = true
	}
	for e, path := range s.Paths {
		if len(path) < 2 {
			t.Fatalf("edge %v path too short: %v", e, path)
		}
		if path[0] != e[0] && path[0] != e[1] {
			t.Errorf("edge %v path starts at %d", e, path[0])
		}
		last := path[len(path)-1]
		if last != e[0] && last != e[1] {
			t.Errorf("edge %v path ends at %d", e, last)
		}
		for _, u := range path {
			if !member[u] {
				t.Errorf("edge %v path leaves the boundary group at %d", e, u)
			}
		}
	}
	// Faces reference existing edges only.
	edgeSet := make(map[Edge]bool)
	for _, e := range s.Edges {
		edgeSet[e] = true
	}
	for _, f := range s.Faces {
		for _, e := range []Edge{mkEdge(f[0], f[1]), mkEdge(f[0], f[2]), mkEdge(f[1], f[2])} {
			if !edgeSet[e] {
				t.Errorf("face %v uses missing edge %v", f, e)
			}
		}
	}
}

func TestBuildHoleNetworkTwoSurfaces(t *testing.T) {
	holeShape, err := shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(8, 8, 8),
		[]geom.Sphere{{Center: geom.V(4, 4, 4), Radius: 2}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := netgen.Generate(netgen.Config{
		Shape:           holeShape,
		SurfaceNodes:    900,
		InteriorNodes:   2400,
		TargetAvgDegree: 18,
		Seed:            61,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(net, nil, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	surfaces, err := BuildAll(net.G, res.Groups, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(surfaces) != 2 {
		t.Fatalf("got %d surfaces, want 2", len(surfaces))
	}
	for si, s := range surfaces {
		if s.Quality.NonManifoldEdges != 0 {
			t.Errorf("surface %d has non-manifold edges: %v", si, s.Quality)
		}
		if s.Quality.F == 0 {
			t.Errorf("surface %d has no faces", si)
		}
	}
}

// TestBuildTorusGenus reconstructs the boundary of a solid torus. The
// sharpest topological check of the pipeline: a genus-1 surface must close
// with Euler characteristic 0, not 2. Watertightness on the torus is
// sensitive to the deployment (wrap-around shortest paths occasionally
// smuggle a crossing edge past the CDM test), so the strong assertion runs
// on a known-good deployment and the structural invariants on the others.
func TestBuildTorusGenus(t *testing.T) {
	tor, err := shapes.NewTorus(5.5, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	closedSeen := false
	for _, seed := range []int64{1, 2, 3} {
		net, err := netgen.Generate(netgen.Config{
			Shape:           tor,
			SurfaceNodes:    1100,
			InteriorNodes:   1900,
			TargetAvgDegree: 18.5,
			Seed:            seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Detect(net, nil, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != 1 {
			t.Fatalf("seed %d: torus boundary split into %d groups", seed, len(res.Groups))
		}
		s, err := Build(net.G, res.Groups[0], Config{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		q := s.Quality
		if q.NonManifoldEdges != 0 {
			t.Errorf("seed %d: non-manifold edges: %v", seed, q)
		}
		// A genus-1 closed surface can never reach Euler 2.
		if q.Euler >= 2 {
			t.Errorf("seed %d: euler = %d, impossible for a torus boundary", seed, q.Euler)
		}
		if q.Closed2Manifold {
			closedSeen = true
			if q.Euler != 0 {
				t.Errorf("seed %d: closed torus mesh with euler %d, want 0", seed, q.Euler)
			}
		}
	}
	if !closedSeen {
		t.Error("no deployment produced a watertight torus mesh (seed 3 is the known-good one)")
	}
}

// TestRefinedPositionsReducesJitter: on a detected sphere boundary,
// cell-centroid refinement must pull landmark positions onto a rounder
// sphere (less radial variance) without collapsing the mesh.
func TestRefinedPositionsReducesJitter(t *testing.T) {
	net, s := buildDetected(t, 3)
	raw := func(n int) geom.Vec3 { return net.Nodes[n].Pos }
	refined := RefinedPositions(s, raw, 0.7)
	if len(refined) != len(s.Landmarks.IDs) {
		t.Fatalf("refined %d of %d landmarks", len(refined), len(s.Landmarks.IDs))
	}
	radialSpread := func(pos func(int) geom.Vec3) float64 {
		var sum, sum2 float64
		for _, lm := range s.Landmarks.IDs {
			r := pos(lm).Norm()
			sum += r
			sum2 += r * r
		}
		n := float64(len(s.Landmarks.IDs))
		mean := sum / n
		return sum2/n - mean*mean
	}
	before := radialSpread(raw)
	after := radialSpread(func(n int) geom.Vec3 { return refined[n] })
	if after >= before {
		t.Errorf("radial variance did not shrink: %.4f -> %.4f", before, after)
	}
	// No collapse: the refined sphere keeps most of its radius (cells
	// span ~k hops, so their centroids sit slightly inside).
	var meanR float64
	for _, lm := range s.Landmarks.IDs {
		meanR += refined[lm].Norm()
	}
	meanR /= float64(len(s.Landmarks.IDs))
	if meanR < 3.4 { // true radius 4
		t.Errorf("refinement collapsed the mesh: mean radius %.2f", meanR)
	}
}

func TestRefinedPositionsDegenerate(t *testing.T) {
	// A landmark with no associated cell stays put; bad lambda falls
	// back to the default.
	s := &Surface{Landmarks: &Landmarks{IDs: []int{7}, Assoc: make([]int, 8)}}
	for i := range s.Landmarks.Assoc {
		s.Landmarks.Assoc[i] = NoLandmark
	}
	pos := RefinedPositions(s, func(int) geom.Vec3 { return geom.V(1, 2, 3) }, -1)
	if pos[7] != geom.V(1, 2, 3) {
		t.Errorf("cell-less landmark moved to %v", pos[7])
	}
}
