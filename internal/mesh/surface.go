package mesh

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Config parameterizes surface construction. The zero value selects the
// paper's defaults.
type Config struct {
	// K is the landmark spacing in hops (mesh fineness). The paper uses
	// 3–5; zero means 3 (the Fig. 1(f) setting).
	K int
	// MaxFlipIterations bounds the step-V loop. Zero means 100.
	MaxFlipIterations int
	// MaxRepairRounds bounds the fill↔flip alternation: each flip can
	// open a polygon hole that another fill pass closes. Zero means 8.
	MaxRepairRounds int
	// Workers bounds the parallelism of the per-landmark shortest-path
	// tree builds, the landmark-association BFS sweep, the face
	// enumeration inside flip passes, and RefinedPositionsWorkers. Zero
	// or negative means GOMAXPROCS; the constructed mesh is bit-identical
	// at every width.
	Workers int

	// noSPT disables the shortest-path-tree cache so every path and
	// distance query runs a fresh BFS — the slow reference mode the
	// differential tests compare against. The constructed surface is
	// bit-identical either way.
	noSPT bool
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 3
	}
	if c.MaxFlipIterations == 0 {
		c.MaxFlipIterations = 100
	}
	if c.MaxRepairRounds == 0 {
		c.MaxRepairRounds = 8
	}
	return c
}

// ErrEmptyGroup is returned when a boundary group has no nodes.
var ErrEmptyGroup = errors.New("mesh: boundary group is empty")

// Quality summarizes how close a constructed mesh is to a closed
// 2-manifold, the property the paper's step V targets.
type Quality struct {
	V, E, F int
	// Euler is V − E + F; 2 for a sphere-like closed surface, 0 for a
	// torus-like one.
	Euler int
	// NonManifoldEdges counts edges bordering three or more faces
	// (zero after a successful edge-flip phase).
	NonManifoldEdges int
	// BorderEdges counts edges bordering fewer than two faces (holes in
	// the reconstructed surface).
	BorderEdges int
	// IsolatedVertices counts landmarks with no incident mesh edge.
	IsolatedVertices int
	// Closed2Manifold reports a watertight result: every edge borders
	// exactly two faces and every vertex's faces form a single fan.
	Closed2Manifold bool
}

// String implements fmt.Stringer.
func (q Quality) String() string {
	return fmt.Sprintf("V=%d E=%d F=%d euler=%d nonManifold=%d border=%d isolated=%d closed=%v",
		q.V, q.E, q.F, q.Euler, q.NonManifoldEdges, q.BorderEdges, q.IsolatedVertices, q.Closed2Manifold)
}

// Surface is the reconstructed triangular mesh of one boundary group, with
// the intermediate structures the paper illustrates (Figs. 1(c)–(f)).
type Surface struct {
	// Group lists the boundary nodes this surface was built from.
	Group []int
	// Landmarks is the step-I election.
	Landmarks *Landmarks
	// CDG is the step-II Combinatorial Delaunay Graph (non-planar).
	CDG []Edge
	// CDM is the step-III planar subgraph.
	CDM []Edge
	// Edges is the final virtual-edge set after triangulation (step IV)
	// and edge flipping (step V).
	Edges []Edge
	// Faces lists the triangles of the final mesh.
	Faces []Face
	// Flips is the number of step-V transformations applied.
	Flips int
	// Quality evaluates the final mesh.
	Quality Quality
	// Paths realizes each virtual edge as its boundary-node shortest
	// path (the multi-hop "wires" of the overlay mesh). Edges inserted
	// by a flip have no recorded path.
	Paths map[Edge][]int
}

// Build constructs the triangular boundary surface of one boundary group
// (Sec. III, steps I–V).
//
// Deprecated: Build is kept as a thin convenience wrapper for existing
// callers. New code should call BuildContext, which adds cancellation and
// observer injection; Build is exactly
// BuildContext(context.Background(), nil, g, group, cfg).
func Build(g *graph.Graph, group []int, cfg Config) (*Surface, error) {
	return BuildContext(context.Background(), nil, g, group, cfg)
}

// BuildContext is Build with cancellation and observation. ctx is checked
// between construction steps; o, when non-nil, receives a span per step
// (surface, landmarks, cdg, cdm, and per repair round triangulate/flip)
// plus the structural counters (landmarks elected, CDG/CDM edges, faces,
// flips applied). A nil o adds no cost, and observation never changes the
// constructed mesh.
func BuildContext(ctx context.Context, o obs.Observer, g *graph.Graph, group []int, cfg Config) (*Surface, error) {
	cfg = cfg.withDefaults()
	if len(group) == 0 {
		return nil, ErrEmptyGroup
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	inGroup := make([]bool, g.Len())
	for _, v := range group {
		inGroup[v] = true
	}
	kn := newSurfKernel(g, inGroup, cfg.noSPT)
	return buildOnKernel(ctx, o, kn, group, cfg)
}

// buildOnKernel runs surface steps I–V on an already-constructed traversal
// kernel. It is the shared tail of BuildContext and the incremental
// engine's cache-miss rebuild (which supplies a compacted per-group
// kernel instead of a whole-network one). cfg must already have its
// defaults applied. The returned Surface's Group is a copy of group.
func buildOnKernel(ctx context.Context, o obs.Observer, kn *surfKernel, group []int, cfg Config) (*Surface, error) {
	surfaceSpan := obs.Start(o, obs.StageSurface)
	defer surfaceSpan.End()

	lmSpan := obs.Start(o, obs.StageLandmarks)
	lms, err := electLandmarks(kn, group, cfg.K, cfg.Workers)
	lmSpan.End()
	if err != nil {
		return nil, err
	}
	obs.Add(o, obs.StageLandmarks, obs.CtrLandmarks, int64(len(lms.IDs)))
	if o != nil {
		// Flight recorder: each winner of the k-hop election, in
		// election order.
		for _, id := range lms.IDs {
			obs.NodeTransition(o, obs.StageLandmarks, obs.TransLandmarkElect, id, 0)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	cdgSpan := obs.Start(o, obs.StageCDG)
	cdg := buildCDG(kn, lms)
	cdgSpan.End()
	obs.Add(o, obs.StageCDG, obs.CtrEdgesCDG, int64(len(cdg)))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Cache one shortest-path tree per landmark (in parallel): steps
	// III–V only ever query landmark-pair paths and distances, which the
	// trees answer in O(path length) instead of O(V+E) per query.
	if err := kn.cacheSPTs(lms.IDs, cfg.Workers); err != nil {
		return nil, err
	}

	cdmSpan := obs.Start(o, obs.StageCDM)
	cdm := buildCDM(kn, lms, cdg)
	cdmSpan.End()
	obs.Add(o, obs.StageCDM, obs.CtrEdgesCDM, int64(len(cdm.edges)))

	// Steps IV and V alternate until stable: triangulation fills
	// polygons under the two-face budget, edge flips retire over-shared
	// edges (opening holes the next fill pass can close). The shared
	// forbidden set keeps the process monotone, so it terminates.
	edgeSet := make(map[Edge]bool, len(cdm.edges))
	for _, e := range cdm.edges {
		edgeSet[e] = true
	}
	forbidden := make(map[Edge]bool)
	flips := 0
	for round := 0; round < cfg.MaxRepairRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		triSpan := obs.Start(o, obs.StageTriangulate)
		added := triangulate(kn, cdg, &cdm, edgeSet, forbidden)
		triSpan.End()
		flipSpan := obs.Start(o, obs.StageFlip)
		f := flipPass(kn.dist, edgeSet, forbidden, cfg.MaxFlipIterations, cfg.Workers)
		flipSpan.End()
		obs.Add(o, obs.StageFlip, obs.CtrFlips, int64(f))
		flips += f
		if len(added) == 0 && f == 0 {
			break
		}
	}
	final := edgesFromSet(edgeSet)
	faces := enumerateFacesPar(final, cfg.Workers)
	obs.Add(o, obs.StageSurface, obs.CtrFaces, int64(len(faces)))
	obs.Add(o, obs.StageSurface, obs.CtrBFSRuns, kn.runs())
	obs.Add(o, obs.StageSurface, obs.CtrBFSNodesVisited, kn.visited())
	obs.Add(o, obs.StageSurface, obs.CtrSPTCacheHits, kn.hits)

	s := &Surface{
		Group:     append([]int(nil), group...),
		Landmarks: lms,
		CDG:       cdg,
		CDM:       cdm.edges,
		Edges:     final,
		Faces:     faces,
		Flips:     flips,
		Paths:     cdm.paths,
	}
	s.Quality = evaluateQuality(lms.IDs, final, faces)
	return s, nil
}

// BuildAll constructs one surface per boundary group.
//
// Deprecated: like Build, kept as a thin wrapper; new code should call
// BuildAllContext.
func BuildAll(g *graph.Graph, groups [][]int, cfg Config) ([]*Surface, error) {
	return BuildAllContext(context.Background(), nil, g, groups, cfg)
}

// BuildAllContext constructs one surface per boundary group with
// cancellation and observation (see BuildContext).
func BuildAllContext(ctx context.Context, o obs.Observer, g *graph.Graph, groups [][]int, cfg Config) ([]*Surface, error) {
	surfaces := make([]*Surface, 0, len(groups))
	for gi, group := range groups {
		s, err := BuildContext(ctx, o, g, group, cfg)
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", gi, err)
		}
		surfaces = append(surfaces, s)
	}
	return surfaces, nil
}

// evaluateQuality computes the manifold diagnostics for a mesh.
func evaluateQuality(vertices []int, edges []Edge, faces []Face) Quality {
	q := Quality{V: len(vertices), E: len(edges), F: len(faces)}
	q.Euler = q.V - q.E + q.F

	corners := faceCorners(faces)
	touched := make(map[int]bool)
	for _, e := range edges {
		touched[e[0]] = true
		touched[e[1]] = true
		switch n := len(corners[e]); {
		case n >= 3:
			q.NonManifoldEdges++
		case n < 2:
			q.BorderEdges++
		}
	}
	for _, v := range vertices {
		if !touched[v] {
			q.IsolatedVertices++
		}
	}
	q.Closed2Manifold = q.NonManifoldEdges == 0 && q.BorderEdges == 0 &&
		q.IsolatedVertices == 0 && allVertexFansClosed(vertices, faces)
	return q
}

// allVertexFansClosed verifies that each vertex's incident faces form a
// single closed fan: the "link" edges opposite the vertex make one cycle.
func allVertexFansClosed(vertices []int, faces []Face) bool {
	link := make(map[int][]Edge)
	for _, f := range faces {
		link[f[0]] = append(link[f[0]], mkEdge(f[1], f[2]))
		link[f[1]] = append(link[f[1]], mkEdge(f[0], f[2]))
		link[f[2]] = append(link[f[2]], mkEdge(f[0], f[1]))
	}
	for _, v := range vertices {
		if !isSingleCycle(link[v]) {
			return false
		}
	}
	return true
}

// isSingleCycle reports whether the edges form exactly one simple cycle.
func isSingleCycle(edges []Edge) bool {
	if len(edges) < 3 {
		return false
	}
	deg := make(map[int]int)
	adj := make(map[int][]int)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for _, d := range deg {
		if d != 2 {
			return false
		}
	}
	// Connected + all degree 2 + |E| == |V| ⇒ one cycle.
	if len(deg) != len(edges) {
		return false
	}
	var keys []int
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	visited := map[int]bool{keys[0]: true}
	stack := []int{keys[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[u] {
			if !visited[w] {
				visited[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(visited) == len(deg)
}
