package mesh

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// Face is a triangle of landmark IDs, stored ascending.
type Face [3]int

func mkFace(a, b, c int) Face {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Face{a, b, c}
}

// enumerateFaces lists the 3-cliques of the virtual-edge graph — the
// triangular faces of the mesh.
func enumerateFaces(edges []Edge) []Face {
	return enumerateFacesPar(edges, 1)
}

// enumerateFacesPar is enumerateFaces with the per-edge common-neighbor
// scan fanned out over contiguous edge chunks. Each chunk collects
// candidate faces privately (reading the shared adjacency map only); the
// merge dedupes and the final sort fixes the order, so the result is
// identical at every worker width — the sequential scan dedupes and sorts
// the same way.
func enumerateFacesPar(edges []Edge, workers int) []Face {
	adj := make(map[int]map[int]bool)
	addDir := func(a, b int) {
		if adj[a] == nil {
			adj[a] = make(map[int]bool)
		}
		adj[a][b] = true
	}
	for _, e := range edges {
		addDir(e[0], e[1])
		addDir(e[1], e[0])
	}
	scan := func(chunk []Edge, out []Face) []Face {
		for _, e := range chunk {
			for c := range adj[e[0]] {
				if c == e[1] || !adj[e[1]][c] {
					continue
				}
				out = append(out, mkFace(e[0], e[1], c))
			}
		}
		return out
	}
	var found []Face
	if workers > 1 && len(edges) >= 4*workers {
		chunks := workers
		parts := make([][]Face, chunks)
		// Scanning can only misbehave by panicking, which par.For turns
		// into an error; that cannot happen on an initialized adjacency
		// map, so the error is ignored like the sequential path's.
		_ = par.For(chunks, workers, func(_, c int) error {
			lo := c * len(edges) / chunks
			hi := (c + 1) * len(edges) / chunks
			parts[c] = scan(edges[lo:hi], nil)
			return nil
		})
		for _, p := range parts {
			found = append(found, p...)
		}
	} else {
		found = scan(edges, nil)
	}
	seen := make(map[Face]bool, len(found))
	faces := found[:0]
	for _, f := range found {
		if !seen[f] {
			seen[f] = true
			faces = append(faces, f)
		}
	}
	sort.Slice(faces, func(i, j int) bool {
		if faces[i][0] != faces[j][0] {
			return faces[i][0] < faces[j][0]
		}
		if faces[i][1] != faces[j][1] {
			return faces[i][1] < faces[j][1]
		}
		return faces[i][2] < faces[j][2]
	})
	return faces
}

// faceCorners maps each edge to the third vertices of its incident faces.
func faceCorners(faces []Face) map[Edge][]int {
	corners := make(map[Edge][]int)
	for _, f := range faces {
		corners[mkEdge(f[0], f[1])] = append(corners[mkEdge(f[0], f[1])], f[2])
		corners[mkEdge(f[0], f[2])] = append(corners[mkEdge(f[0], f[2])], f[1])
		corners[mkEdge(f[1], f[2])] = append(corners[mkEdge(f[1], f[2])], f[0])
	}
	return corners
}

// flipEdges performs step V: while some edge borders three or more
// triangles, remove it and reconnect the triangles' far corners with their
// shortest mutual edges (hop distance through the boundary subgraph). For
// the paper's three-face case this adds the two shortest of the three
// corner pairs — removing the over-shared edge AB and replacing it with,
// e.g., CD and DE (Fig. 5); the general rule is the corners' minimum
// spanning tree, which coincides with the paper's rule at three corners.
// maxIter bounds the loop.
//
// Returns the final edge set and the number of flips applied.
func flipEdges(g *graph.Graph, member func(int) bool, edges []Edge, maxIter int) ([]Edge, int) {
	edgeSet := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		edgeSet[e] = true
	}
	dist := func(a, b int) int { return g.HopDistance(a, b, member) }
	flips := flipPass(dist, edgeSet, make(map[Edge]bool), maxIter, 1)
	return edgesFromSet(edgeSet), flips
}

// flipPass mutates edgeSet in place, marking every retired edge in removed.
// Monotonicity — an edge in removed is never re-added, here or by later
// triangulation passes — guarantees termination and prevents the
// oscillation a naive flip loop exhibits. dist measures landmark hop
// distance through the boundary subgraph (the surface pipeline answers it
// from the SPT cache in O(1); the exported flipEdges wrapper falls back to
// a fresh BFS per pair). workers bounds the face-enumeration parallelism
// of each iteration; the flip sequence itself is a deterministic serial
// fixpoint either way.
func flipPass(dist func(a, b int) int, edgeSet, removed map[Edge]bool, maxIter, workers int) int {
	flips := 0
	for iter := 0; iter < maxIter; iter++ {
		cur := edgesFromSet(edgeSet)
		corners := faceCorners(enumerateFacesPar(cur, workers))
		// Deterministic pick: the smallest over-shared edge.
		var bad *Edge
		for _, e := range cur {
			if len(corners[e]) >= 3 {
				e := e
				bad = &e
				break
			}
		}
		if bad == nil {
			return flips
		}
		delete(edgeSet, *bad)
		removed[*bad] = true
		flips++
		// Connect the far corners by their hop-distance MST.
		cs := append([]int(nil), corners[*bad]...)
		sort.Ints(cs)
		for _, e := range cornerMST(dist, cs) {
			if !removed[e] {
				edgeSet[e] = true
			}
		}
	}
	return flips
}

func edgesFromSet(set map[Edge]bool) []Edge {
	out := make([]Edge, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

// cornerMST returns the minimum-spanning-tree edges over the given corner
// landmarks, weighted by hop distance through the boundary subgraph
// (unreachable pairs get a large finite weight so the tree still spans).
func cornerMST(dist func(a, b int) int, corners []int) []Edge {
	n := len(corners)
	if n < 2 {
		return nil
	}
	const unreachableWeight = 1 << 30
	weight := func(a, b int) int {
		d := dist(corners[a], corners[b])
		if d == graph.Unreachable {
			return unreachableWeight
		}
		return d
	}
	inTree := make([]bool, n)
	bestW := make([]int, n)
	bestTo := make([]int, n)
	for i := range bestW {
		bestW[i] = unreachableWeight + 1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestW[j] = weight(0, j)
		bestTo[j] = 0
	}
	var out []Edge
	for added := 1; added < n; added++ {
		pick := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (pick == -1 || bestW[j] < bestW[pick]) {
				pick = j
			}
		}
		inTree[pick] = true
		out = append(out, mkEdge(corners[bestTo[pick]], corners[pick]))
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if w := weight(pick, j); w < bestW[j] {
					bestW[j] = w
					bestTo[j] = pick
				}
			}
		}
	}
	sortEdges(out)
	return out
}
