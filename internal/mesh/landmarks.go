// Package mesh constructs locally planarized triangular boundary surfaces
// from identified boundary nodes — Sec. III of the paper. The five steps:
//
//  1. landmark election, k hops apart, with every boundary node associated
//     to its closest landmark (approximate Voronoi cells);
//  2. the Combinatorial Delaunay Graph (CDG): neighboring landmarks, the
//     dual of the Voronoi cells — generally non-planar;
//  3. the Combinatorial Delaunay Map (CDM): the CDG filtered by the
//     non-interleaving shortest-path test of Funke & Milosavljević, which
//     provably yields a planar subgraph;
//  4. triangulation: additional non-crossing virtual edges split remaining
//     polygons into triangles;
//  5. edge flip: edges bordering three triangles are replaced so every
//     edge borders at most two — a locally planarized 2-manifold.
//
// All steps operate on the boundary subgraph with hop counts only
// (connectivity-based, no coordinates), exactly as in the paper.
package mesh

import (
	"errors"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// ErrBadK is returned when the landmark spacing is not positive.
var ErrBadK = errors.New("mesh: landmark spacing k must be >= 1")

// NoLandmark marks boundary nodes with no reachable landmark and
// non-boundary nodes in association tables.
const NoLandmark = -1

// Landmarks holds the election outcome for one boundary group.
type Landmarks struct {
	// IDs lists the elected landmark node IDs, ascending.
	IDs []int
	// Assoc maps every node to its landmark's node ID (NoLandmark for
	// nodes outside the boundary group). Ties in hop distance break
	// toward the smaller landmark ID, as the paper prescribes.
	Assoc []int
	// Hops is each node's hop distance to its landmark (through
	// boundary nodes only); Unreachable outside the group.
	Hops []int
}

// ElectLandmarks picks a k-hop-separated landmark subset of one boundary
// group and associates every group member with its closest landmark.
//
// The election is the deterministic lowest-ID greedy rule on the k-hop
// power graph: a node becomes a landmark unless a smaller-ID landmark
// already exists within k hops. This is the outcome of the standard
// distributed lowest-ID maximal-independent-set election the paper cites
// (GLIDER's landmark selection), computed here directly.
func ElectLandmarks(g *graph.Graph, group []int, k int) (*Landmarks, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	inGroup := make([]bool, g.Len())
	for _, v := range group {
		inGroup[v] = true
	}
	return electLandmarks(newSurfKernel(g, inGroup, true), group, k, 1)
}

// electLandmarks is the CSR-backed election the surface pipeline uses; the
// kernel's scratch is reused across the per-candidate and per-landmark
// traversals, and only reached nodes are scanned (the allocating slice
// path scanned the full distance array after every BFS).
//
// The greedy election itself is inherently sequential (each winner's k-hop
// ball gates later candidates), but the association sweep — one unlimited
// BFS per landmark — is not: workers > 1 splits the ascending landmark
// list into contiguous chunks claimed independently and merges the chunk
// results in landmark order. The final owner of every node is the
// lexicographic (distance, landmark-ID) minimum either way, so the result
// is bit-identical at every width.
func electLandmarks(kn *surfKernel, group []int, k, workers int) (*Landmarks, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	n := kn.csr.Len()
	sorted := append([]int(nil), group...)
	sort.Ints(sorted)

	covered := make([]bool, n)
	var ids []int
	src := make([]int, 1)
	for _, v := range sorted {
		if covered[v] {
			continue
		}
		ids = append(ids, v)
		src[0] = v
		kn.csr.BFSHops(&kn.scratch, src, kn.member, k)
		for _, u := range kn.scratch.Reached() {
			covered[u] = true
		}
	}

	assoc := make([]int, n)
	hops := make([]int, n)
	for i := range assoc {
		assoc[i] = NoLandmark
		hops[i] = graph.Unreachable
	}
	if workers > 1 && len(ids) >= 2*workers {
		if err := associateChunked(kn, ids, assoc, hops, workers); err != nil {
			return nil, err
		}
		return &Landmarks{IDs: ids, Assoc: assoc, Hops: hops}, nil
	}
	// Closest-landmark association with smallest-ID tiebreak: BFS from
	// each landmark in ascending ID order, claiming strictly closer
	// nodes only.
	for _, lm := range ids {
		src[0] = lm
		kn.csr.BFSHops(&kn.scratch, src, kn.member, -1)
		for _, u := range kn.scratch.Reached() {
			d := kn.scratch.Dist(int(u))
			if hops[u] == graph.Unreachable || d < hops[u] {
				hops[u] = d
				assoc[u] = lm
			}
		}
	}
	return &Landmarks{IDs: ids, Assoc: assoc, Hops: hops}, nil
}

// associateChunked is the parallel association sweep: contiguous ascending
// chunks of the landmark list, each claiming into private (assoc, hops)
// arrays with the sequential rule, merged back in chunk order. Claiming
// strictly closer nodes within a chunk and preferring the earlier chunk on
// ties reproduces the global (distance, landmark-ID)-minimum owner exactly.
// Per-chunk scratches keep the traversals race-free; their work counters
// fold back into the kernel so the observable BFS totals match the
// sequential sweep.
func associateChunked(kn *surfKernel, ids []int, assoc, hops []int, workers int) error {
	n := kn.csr.Len()
	chunks := workers
	if chunks > len(ids) {
		chunks = len(ids)
	}
	type chunkState struct {
		scratch graph.Scratch
		assoc   []int
		hops    []int
	}
	states := make([]*chunkState, chunks)
	err := par.For(chunks, workers, func(_, c int) error {
		st := &chunkState{assoc: make([]int, n), hops: make([]int, n)}
		states[c] = st
		for i := range st.assoc {
			st.assoc[i] = NoLandmark
			st.hops[i] = graph.Unreachable
		}
		lo := c * len(ids) / chunks
		hi := (c + 1) * len(ids) / chunks
		src := make([]int, 1)
		for _, lm := range ids[lo:hi] {
			src[0] = lm
			kn.csr.BFSHops(&st.scratch, src, kn.member, -1)
			for _, u := range st.scratch.Reached() {
				d := st.scratch.Dist(int(u))
				if st.hops[u] == graph.Unreachable || d < st.hops[u] {
					st.hops[u] = d
					st.assoc[u] = lm
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, st := range states {
		for u, d := range st.hops {
			if d == graph.Unreachable {
				continue
			}
			if hops[u] == graph.Unreachable || d < hops[u] {
				hops[u] = d
				assoc[u] = st.assoc[u]
			}
		}
		kn.scratch.Runs += st.scratch.Runs
		kn.scratch.Visited += st.scratch.Visited
	}
	return nil
}
