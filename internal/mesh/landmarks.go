// Package mesh constructs locally planarized triangular boundary surfaces
// from identified boundary nodes — Sec. III of the paper. The five steps:
//
//  1. landmark election, k hops apart, with every boundary node associated
//     to its closest landmark (approximate Voronoi cells);
//  2. the Combinatorial Delaunay Graph (CDG): neighboring landmarks, the
//     dual of the Voronoi cells — generally non-planar;
//  3. the Combinatorial Delaunay Map (CDM): the CDG filtered by the
//     non-interleaving shortest-path test of Funke & Milosavljević, which
//     provably yields a planar subgraph;
//  4. triangulation: additional non-crossing virtual edges split remaining
//     polygons into triangles;
//  5. edge flip: edges bordering three triangles are replaced so every
//     edge borders at most two — a locally planarized 2-manifold.
//
// All steps operate on the boundary subgraph with hop counts only
// (connectivity-based, no coordinates), exactly as in the paper.
package mesh

import (
	"errors"
	"sort"

	"repro/internal/graph"
)

// ErrBadK is returned when the landmark spacing is not positive.
var ErrBadK = errors.New("mesh: landmark spacing k must be >= 1")

// NoLandmark marks boundary nodes with no reachable landmark and
// non-boundary nodes in association tables.
const NoLandmark = -1

// Landmarks holds the election outcome for one boundary group.
type Landmarks struct {
	// IDs lists the elected landmark node IDs, ascending.
	IDs []int
	// Assoc maps every node to its landmark's node ID (NoLandmark for
	// nodes outside the boundary group). Ties in hop distance break
	// toward the smaller landmark ID, as the paper prescribes.
	Assoc []int
	// Hops is each node's hop distance to its landmark (through
	// boundary nodes only); Unreachable outside the group.
	Hops []int
}

// ElectLandmarks picks a k-hop-separated landmark subset of one boundary
// group and associates every group member with its closest landmark.
//
// The election is the deterministic lowest-ID greedy rule on the k-hop
// power graph: a node becomes a landmark unless a smaller-ID landmark
// already exists within k hops. This is the outcome of the standard
// distributed lowest-ID maximal-independent-set election the paper cites
// (GLIDER's landmark selection), computed here directly.
func ElectLandmarks(g *graph.Graph, group []int, k int) (*Landmarks, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	inGroup := make([]bool, g.Len())
	for _, v := range group {
		inGroup[v] = true
	}
	return electLandmarks(newSurfKernel(g, inGroup, true), group, k)
}

// electLandmarks is the CSR-backed election the surface pipeline uses; the
// kernel's scratch is reused across the per-candidate and per-landmark
// traversals, and only reached nodes are scanned (the allocating slice
// path scanned the full distance array after every BFS).
func electLandmarks(kn *surfKernel, group []int, k int) (*Landmarks, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	n := kn.csr.Len()
	sorted := append([]int(nil), group...)
	sort.Ints(sorted)

	covered := make([]bool, n)
	var ids []int
	src := make([]int, 1)
	for _, v := range sorted {
		if covered[v] {
			continue
		}
		ids = append(ids, v)
		src[0] = v
		kn.csr.BFSHops(&kn.scratch, src, kn.member, k)
		for _, u := range kn.scratch.Reached() {
			covered[u] = true
		}
	}

	assoc := make([]int, n)
	hops := make([]int, n)
	for i := range assoc {
		assoc[i] = NoLandmark
		hops[i] = graph.Unreachable
	}
	// Closest-landmark association with smallest-ID tiebreak: BFS from
	// each landmark in ascending ID order, claiming strictly closer
	// nodes only.
	for _, lm := range ids {
		src[0] = lm
		kn.csr.BFSHops(&kn.scratch, src, kn.member, -1)
		for _, u := range kn.scratch.Reached() {
			d := kn.scratch.Dist(int(u))
			if hops[u] == graph.Unreachable || d < hops[u] {
				hops[u] = d
				assoc[u] = lm
			}
		}
	}
	return &Landmarks{IDs: ids, Assoc: assoc, Hops: hops}, nil
}
