package mesh

import (
	"sort"

	"repro/internal/graph"
)

// Edge is an undirected landmark pair, stored with Edge[0] < Edge[1].
type Edge [2]int

// mkEdge normalizes an edge.
func mkEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// buildCDG computes the Combinatorial Delaunay Graph: landmarks are
// adjacent when some boundary node of one Voronoi cell has a one-hop
// neighbor in the other's cell (step II). Edges are returned sorted.
func buildCDG(g *graph.Graph, lms *Landmarks, member func(int) bool) []Edge {
	seen := make(map[Edge]bool)
	var edges []Edge
	for u := range g.Adj {
		if !member(u) || lms.Assoc[u] == NoLandmark {
			continue
		}
		for _, v := range g.Adj[u] {
			if !member(v) || lms.Assoc[v] == NoLandmark {
				continue
			}
			if lms.Assoc[u] == lms.Assoc[v] {
				continue
			}
			e := mkEdge(lms.Assoc[u], lms.Assoc[v])
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	}
	sortEdges(edges)
	return edges
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
}

// cdmResult carries the planarized subgraph and its path bookkeeping.
type cdmResult struct {
	edges []Edge
	// pathEdges records, per boundary node, the virtual edges whose
	// accepted shortest path runs through it; step IV's connection
	// packets are dropped at nodes carrying a virtual edge disjoint from
	// the packet's own landmark pair (two edges sharing an endpoint
	// cannot cross, so those do not block).
	pathEdges map[int][]Edge
	// paths records the accepted realization of each virtual edge.
	paths map[Edge][]int
}

// claim records that edge e's path runs through every node of path.
func (r *cdmResult) claim(e Edge, path []int) {
	r.paths[e] = path
	for _, u := range path {
		r.pathEdges[u] = append(r.pathEdges[u], e)
	}
}

// blocks reports whether node u carries a virtual edge disjoint from the
// landmark pair (i, j) — the crossing-avoidance drop condition.
func (r *cdmResult) blocks(u, i, j int) bool {
	for _, e := range r.pathEdges[u] {
		if e[0] != i && e[0] != j && e[1] != i && e[1] != j {
			return true
		}
	}
	return false
}

// buildCDM filters CDG edges with the Funke–Milosavljević test (step III):
// the landmark pair keeps its edge iff the shortest boundary path between
// them visits only nodes associated with the two landmarks, first all of
// one's, then all of the other's, with no interleaving. The resulting
// Combinatorial Delaunay Map is planar on the boundary surface.
func buildCDM(g *graph.Graph, lms *Landmarks, member func(int) bool, cdg []Edge) cdmResult {
	res := cdmResult{
		pathEdges: make(map[int][]Edge),
		paths:     make(map[Edge][]int),
	}
	for _, e := range cdg {
		path := g.ShortestPath(e[0], e[1], member)
		if path == nil || !pathNonInterleaved(path, lms.Assoc, e[0], e[1]) {
			continue
		}
		res.edges = append(res.edges, e)
		res.claim(e, path)
	}
	return res
}

// pathNonInterleaved checks the CDM acceptance condition: every node on the
// path belongs to landmark i or j, as a run of i-associated nodes followed
// by a run of j-associated nodes.
func pathNonInterleaved(path []int, assoc []int, i, j int) bool {
	// The path starts at landmark i, so the first run must be i's.
	first, second := i, j
	if len(path) > 0 && assoc[path[0]] == j {
		first, second = j, i
	}
	switched := false
	for _, u := range path {
		a := assoc[u]
		switch {
		case a == first && !switched:
			// still in the first run
		case a == second:
			switched = true
		case a == first && switched:
			return false // interleaving: back to the first landmark's run
		default:
			return false // foreign cell on the path
		}
	}
	return true
}

// triangulate performs step IV: route a connection packet along the
// shortest boundary path for every not-yet-connected nearby landmark pair;
// the packet is dropped at any intermediate node already carrying a virtual
// edge disjoint from the pair (crossing avoidance); otherwise the edge is
// added and its path nodes claimed.
//
// Candidates are the unconnected CDG pairs plus the pairs at distance two
// in the CDG (landmarks sharing a CDG neighbor): when four or more Voronoi
// cells meet around a corner, the CDM leaves a polygon whose diagonals
// connect cells that are not edge-adjacent, so restricting to CDG pairs
// could never split those polygons into triangles. Candidates are processed
// shortest-realization first, ties broken lexicographically, making the
// greedy fill deterministic.
func triangulate(g *graph.Graph, member func(int) bool, cdg []Edge, cdm *cdmResult, edgeSet, forbidden map[Edge]bool) []Edge {
	adj := make(map[int]map[int]bool)
	link := func(e Edge) {
		edgeSet[e] = true
		if adj[e[0]] == nil {
			adj[e[0]] = make(map[int]bool)
		}
		if adj[e[1]] == nil {
			adj[e[1]] = make(map[int]bool)
		}
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	for e := range edgeSet {
		link(e)
	}
	// faceCount tracks how many triangles each connected edge borders;
	// the fill below never pushes any edge past two.
	faceCount := make(map[Edge]int)
	for _, f := range enumerateFaces(edgesFromSet(edgeSet)) {
		faceCount[mkEdge(f[0], f[1])]++
		faceCount[mkEdge(f[0], f[2])]++
		faceCount[mkEdge(f[1], f[2])]++
	}

	commonNbrs := func(a, b int) []int {
		var out []int
		for c := range adj[a] {
			if adj[b][c] {
				out = append(out, c)
			}
		}
		sort.Ints(out)
		return out
	}

	// tryAdd accepts a candidate edge when it was never retired by a
	// flip, its realization is not blocked by a crossing path, and every
	// triangle it completes keeps all involved edges within the two-face
	// budget.
	tryAdd := func(e Edge) bool {
		if edgeSet[e] || forbidden[e] {
			return false
		}
		corners := commonNbrs(e[0], e[1])
		if len(corners) == 0 || len(corners) > 2 {
			return false
		}
		for _, c := range corners {
			if faceCount[mkEdge(e[0], c)]+1 > 2 || faceCount[mkEdge(e[1], c)]+1 > 2 {
				return false
			}
		}
		path := g.ShortestPath(e[0], e[1], member)
		if path == nil {
			return false
		}
		for _, u := range path[1 : len(path)-1] {
			if cdm.blocks(u, e[0], e[1]) {
				return false
			}
		}
		link(e)
		for _, c := range corners {
			faceCount[e]++
			faceCount[mkEdge(e[0], c)]++
			faceCount[mkEdge(e[1], c)]++
		}
		cdm.claim(e, path)
		return true
	}

	var added []Edge
	// Pass 1: unconnected CDG pairs (cell-adjacent landmarks), the
	// paper's candidates, in sorted order.
	for _, e := range cdg {
		if tryAdd(e) {
			added = append(added, e)
		}
	}
	// Pass 2 (iterated to a fixpoint): pairs at distance two in the
	// current overlay — the polygon diagonals. When four or more Voronoi
	// cells meet around a corner the CDM leaves a polygon whose
	// diagonals connect cells that are not edge-adjacent, so CDG pairs
	// alone can never finish the triangulation.
	for {
		progress := false
		var verts []int
		for v := range adj {
			verts = append(verts, v)
		}
		sort.Ints(verts)
		for _, mid := range verts {
			var nbrs []int
			for u := range adj[mid] {
				nbrs = append(nbrs, u)
			}
			sort.Ints(nbrs)
			for x := 0; x < len(nbrs); x++ {
				for y := x + 1; y < len(nbrs); y++ {
					e := mkEdge(nbrs[x], nbrs[y])
					if tryAdd(e) {
						added = append(added, e)
						progress = true
					}
				}
			}
		}
		if !progress {
			break
		}
	}
	sortEdges(added)
	return added
}
