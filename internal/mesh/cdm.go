package mesh

import (
	"sort"
)

// Edge is an undirected landmark pair, stored with Edge[0] < Edge[1].
type Edge [2]int

// mkEdge normalizes an edge.
func mkEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// buildCDG computes the Combinatorial Delaunay Graph: landmarks are
// adjacent when some boundary node of one Voronoi cell has a one-hop
// neighbor in the other's cell (step II). Edges are returned sorted.
func buildCDG(kn *surfKernel, lms *Landmarks) []Edge {
	seen := make(map[Edge]bool)
	var edges []Edge
	for u := 0; u < kn.csr.Len(); u++ {
		if !kn.member.Has(u) || lms.Assoc[u] == NoLandmark {
			continue
		}
		for _, v32 := range kn.csr.Neighbors(u) {
			v := int(v32)
			if !kn.member.Has(v) || lms.Assoc[v] == NoLandmark {
				continue
			}
			if lms.Assoc[u] == lms.Assoc[v] {
				continue
			}
			e := mkEdge(lms.Assoc[u], lms.Assoc[v])
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	}
	sortEdges(edges)
	return edges
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
}

// cdmResult carries the planarized subgraph and its path bookkeeping.
type cdmResult struct {
	edges []Edge
	// pathEdges records, per boundary node, the virtual edges whose
	// accepted shortest path runs through it; step IV's connection
	// packets are dropped at nodes carrying a virtual edge disjoint from
	// the packet's own landmark pair (two edges sharing an endpoint
	// cannot cross, so those do not block).
	pathEdges map[int][]Edge
	// paths records the accepted realization of each virtual edge.
	paths map[Edge][]int
}

// claim records that edge e's path runs through every node of path. The
// path is copied: accepted realizations outlive the kernel's reusable
// extraction buffer.
func (r *cdmResult) claim(e Edge, path []int) {
	owned := append([]int(nil), path...)
	r.paths[e] = owned
	for _, u := range owned {
		r.pathEdges[u] = append(r.pathEdges[u], e)
	}
}

// blocks reports whether node u carries a virtual edge disjoint from the
// landmark pair (i, j) — the crossing-avoidance drop condition.
func (r *cdmResult) blocks(u, i, j int) bool {
	for _, e := range r.pathEdges[u] {
		if e[0] != i && e[0] != j && e[1] != i && e[1] != j {
			return true
		}
	}
	return false
}

// buildCDM filters CDG edges with the Funke–Milosavljević test (step III):
// the landmark pair keeps its edge iff the shortest boundary path between
// them visits only nodes associated with the two landmarks, first all of
// one's, then all of the other's, with no interleaving. The resulting
// Combinatorial Delaunay Map is planar on the boundary surface.
func buildCDM(kn *surfKernel, lms *Landmarks, cdg []Edge) cdmResult {
	res := cdmResult{
		pathEdges: make(map[int][]Edge),
		paths:     make(map[Edge][]int),
	}
	for _, e := range cdg {
		path := kn.path(e)
		if path == nil || !pathNonInterleaved(path, lms.Assoc, e[0], e[1]) {
			continue
		}
		res.edges = append(res.edges, e)
		res.claim(e, path)
	}
	return res
}

// pathNonInterleaved checks the CDM acceptance condition: every node on the
// path belongs to landmark i or j, as a run of i-associated nodes followed
// by a run of j-associated nodes.
func pathNonInterleaved(path []int, assoc []int, i, j int) bool {
	// The path starts at landmark i, so the first run must be i's.
	first, second := i, j
	if len(path) > 0 && assoc[path[0]] == j {
		first, second = j, i
	}
	switched := false
	for _, u := range path {
		a := assoc[u]
		switch {
		case a == first && !switched:
			// still in the first run
		case a == second:
			switched = true
		case a == first && switched:
			return false // interleaving: back to the first landmark's run
		default:
			return false // foreign cell on the path
		}
	}
	return true
}

// overlay is the growing virtual-edge graph of the triangulation pass,
// kept as sorted adjacency slices maintained incrementally — the fixpoint
// loop below used to rebuild and re-sort the full vertex and neighbor
// lists every round, which dominated the pass on dense meshes.
type overlay struct {
	verts []int         // sorted vertex list
	nbrs  map[int][]int // sorted neighbor lists
}

// insertSorted inserts v into sorted slice s if absent.
func insertSorted(s []int, v int) []int {
	at := sort.SearchInts(s, v)
	if at < len(s) && s[at] == v {
		return s
	}
	s = append(s, 0)
	copy(s[at+1:], s[at:])
	s[at] = v
	return s
}

func (o *overlay) link(e Edge) {
	if _, ok := o.nbrs[e[0]]; !ok {
		o.verts = insertSorted(o.verts, e[0])
	}
	if _, ok := o.nbrs[e[1]]; !ok {
		o.verts = insertSorted(o.verts, e[1])
	}
	o.nbrs[e[0]] = insertSorted(o.nbrs[e[0]], e[1])
	o.nbrs[e[1]] = insertSorted(o.nbrs[e[1]], e[0])
}

// common intersects two sorted neighbor lists, appending into out
// (ascending — the deterministic corner order the fill relies on).
func (o *overlay) common(a, b int, out []int) []int {
	na, nb := o.nbrs[a], o.nbrs[b]
	i, j := 0, 0
	for i < len(na) && j < len(nb) {
		switch {
		case na[i] < nb[j]:
			i++
		case na[i] > nb[j]:
			j++
		default:
			out = append(out, na[i])
			i++
			j++
		}
	}
	return out
}

// triangulate performs step IV: route a connection packet along the
// shortest boundary path for every not-yet-connected nearby landmark pair;
// the packet is dropped at any intermediate node already carrying a virtual
// edge disjoint from the pair (crossing avoidance); otherwise the edge is
// added and its path nodes claimed.
//
// Candidates are the unconnected CDG pairs plus the pairs at distance two
// in the CDG (landmarks sharing a CDG neighbor): when four or more Voronoi
// cells meet around a corner, the CDM leaves a polygon whose diagonals
// connect cells that are not edge-adjacent, so restricting to CDG pairs
// could never split those polygons into triangles. Candidates are processed
// shortest-realization first, ties broken lexicographically, making the
// greedy fill deterministic.
func triangulate(kn *surfKernel, cdg []Edge, cdm *cdmResult, edgeSet, forbidden map[Edge]bool) []Edge {
	ov := overlay{nbrs: make(map[int][]int)}
	seed := make([]Edge, 0, len(edgeSet))
	for e := range edgeSet {
		seed = append(seed, e)
	}
	sortEdges(seed)
	for _, e := range seed {
		ov.link(e)
	}
	// faceCount tracks how many triangles each connected edge borders;
	// the fill below never pushes any edge past two.
	faceCount := make(map[Edge]int)
	for _, f := range enumerateFaces(seed) {
		faceCount[mkEdge(f[0], f[1])]++
		faceCount[mkEdge(f[0], f[2])]++
		faceCount[mkEdge(f[1], f[2])]++
	}

	var cornerBuf []int

	// tryAdd accepts a candidate edge when it was never retired by a
	// flip, its realization is not blocked by a crossing path, and every
	// triangle it completes keeps all involved edges within the two-face
	// budget.
	tryAdd := func(e Edge) bool {
		if edgeSet[e] || forbidden[e] {
			return false
		}
		corners := ov.common(e[0], e[1], cornerBuf[:0])
		cornerBuf = corners
		if len(corners) == 0 || len(corners) > 2 {
			return false
		}
		for _, c := range corners {
			if faceCount[mkEdge(e[0], c)]+1 > 2 || faceCount[mkEdge(e[1], c)]+1 > 2 {
				return false
			}
		}
		path := kn.path(e)
		if path == nil {
			return false
		}
		for _, u := range path[1 : len(path)-1] {
			if cdm.blocks(u, e[0], e[1]) {
				return false
			}
		}
		edgeSet[e] = true
		ov.link(e)
		for _, c := range corners {
			faceCount[e]++
			faceCount[mkEdge(e[0], c)]++
			faceCount[mkEdge(e[1], c)]++
		}
		cdm.claim(e, path)
		return true
	}

	var added []Edge
	// Pass 1: unconnected CDG pairs (cell-adjacent landmarks), the
	// paper's candidates, in sorted order.
	for _, e := range cdg {
		if tryAdd(e) {
			added = append(added, e)
		}
	}
	// Pass 2 (iterated to a fixpoint): pairs at distance two in the
	// current overlay — the polygon diagonals. When four or more Voronoi
	// cells meet around a corner the CDM leaves a polygon whose
	// diagonals connect cells that are not edge-adjacent, so CDG pairs
	// alone can never finish the triangulation. Each round snapshots the
	// vertex list once and each visited vertex's neighbor list at visit
	// time (edges added mid-round join the scan next round, exactly as
	// the rebuild-from-scratch version behaved).
	var verts, nbrsSnap []int
	for {
		progress := false
		verts = append(verts[:0], ov.verts...)
		for _, mid := range verts {
			nbrsSnap = append(nbrsSnap[:0], ov.nbrs[mid]...)
			for x := 0; x < len(nbrsSnap); x++ {
				for y := x + 1; y < len(nbrsSnap); y++ {
					e := mkEdge(nbrsSnap[x], nbrsSnap[y])
					if tryAdd(e) {
						added = append(added, e)
						progress = true
					}
				}
			}
		}
		if !progress {
			break
		}
	}
	sortEdges(added)
	return added
}
