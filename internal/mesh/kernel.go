package mesh

import (
	"repro/internal/graph"
)

// surfKernel is the traversal substrate one surface construction runs on: a
// CSR snapshot of the network graph, the boundary-group membership bitset,
// one reusable BFS scratch, and — once the landmarks are known — a cache of
// per-landmark shortest-path trees. Every hop-distance and shortest-path
// query of steps I–V goes through it.
//
// All mesh path queries are landmark-pair queries with the lower landmark
// ID as the source (mkEdge normalizes every candidate edge, and face
// corners are landmarks), so one deterministic BFS tree per landmark covers
// buildCDM, triangulate, and the flip pass's corner MST. Paths extracted
// from the trees are bit-identical to graph.ShortestPath: the trees
// replicate its FIFO, adjacency-order expansion, and BFS parents are fixed
// at discovery time, so a full tree and a truncated search agree along
// every root-to-node path. The noSPT knob disables the cache (every query
// falls back to a fresh scratch BFS) so tests can prove that equivalence on
// whole surfaces.
type surfKernel struct {
	csr     *graph.CSR
	member  *graph.NodeSet
	scratch graph.Scratch

	trees      []*graph.SPT // indexed by landmark node ID; nil = not cached
	sptRuns    int64        // traversal work done by BuildSPTs
	sptVisited int64
	hits       int64 // queries answered from a cached tree

	pathBuf []int // reusable extraction buffer; accepted paths are copied out
	noSPT   bool
}

func newSurfKernel(g *graph.Graph, inGroup []bool, noSPT bool) *surfKernel {
	return &surfKernel{
		csr:    graph.NewCSR(g),
		member: graph.NodeSetOf(inGroup),
		noSPT:  noSPT,
	}
}

// newSurfKernelFromCSR wraps an already-compacted member subgraph — every
// node of csr is a group member, so the membership set is full. This is
// the kernel the incremental engine rebuilds dirty groups on: the CSR
// holds only the group's induced subgraph in compact IDs, shrinking every
// BFS array and SPT from network size to group size.
func newSurfKernelFromCSR(csr *graph.CSR, noSPT bool) *surfKernel {
	member := graph.NewNodeSet(csr.Len())
	for u := 0; u < csr.Len(); u++ {
		member.Add(u)
	}
	return &surfKernel{csr: csr, member: member, noSPT: noSPT}
}

// cacheSPTs builds one shortest-path tree per landmark, in parallel.
func (k *surfKernel) cacheSPTs(landmarks []int, workers int) error {
	if k.noSPT {
		return nil
	}
	trees, st, err := graph.BuildSPTs(k.csr, landmarks, k.member, workers)
	if err != nil {
		return err
	}
	k.trees = make([]*graph.SPT, k.csr.Len())
	for i, lm := range landmarks {
		k.trees[lm] = trees[i]
	}
	k.sptRuns += st.Runs
	k.sptVisited += st.Visited
	return nil
}

// tree returns the cached SPT rooted at landmark lm, nil when uncached.
func (k *surfKernel) tree(lm int) *graph.SPT {
	if k.trees == nil || lm < 0 || lm >= len(k.trees) {
		return nil
	}
	return k.trees[lm]
}

// path returns the deterministic shortest boundary path realizing edge e,
// nil when the landmarks are disconnected. The returned slice aliases the
// kernel's reusable buffer — valid only until the next path call; callers
// keep an accepted path with claimPath, which copies.
func (k *surfKernel) path(e Edge) []int {
	if t := k.tree(e[0]); t != nil {
		k.hits++
		k.pathBuf = t.PathTo(e[1], k.pathBuf[:0])
		if len(k.pathBuf) == 0 {
			return nil
		}
		return k.pathBuf
	}
	k.pathBuf = k.csr.ShortestPath(&k.scratch, e[0], e[1], k.member, k.pathBuf[:0])
	if len(k.pathBuf) == 0 {
		return nil
	}
	return k.pathBuf
}

// dist returns the hop distance between landmarks a and b through the
// boundary subgraph, graph.Unreachable when disconnected.
func (k *surfKernel) dist(a, b int) int {
	if a > b {
		a, b = b, a
	}
	if t := k.tree(a); t != nil {
		k.hits++
		return t.DistTo(b)
	}
	return k.csr.HopDistance(&k.scratch, a, b, k.member)
}

// runs and visited total the traversal work the kernel performed, cached
// tree builds included.
func (k *surfKernel) runs() int64    { return k.scratch.Runs + k.sptRuns }
func (k *surfKernel) visited() int64 { return k.scratch.Visited + k.sptVisited }
