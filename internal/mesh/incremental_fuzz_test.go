package mesh

// FuzzMeshStitch hammers the incremental engine with byte-driven edge
// toggles over a small synthetic universe, serving the connected
// components as groups after every toggle and diffing each served surface
// against a from-scratch BuildAll on the same adjacency. It hunts for
// stitching bugs the seeded differential matrix cannot reach: adversarial
// toggle orders, components that split and re-merge with identical member
// lists, repeated invalidation of the same entry, and cache churn past the
// eviction cap.

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/graph"
)

// fuzzTopo is a mutable stable-ID adjacency implementing Topology.
type fuzzTopo struct {
	adj [][]int32
}

func (ft *fuzzTopo) Len() int                { return len(ft.adj) }
func (ft *fuzzTopo) Neighbors(u int) []int32 { return ft.adj[u] }

// toggle flips edge (u, v), keeping both rows ascending, and reports
// whether the edge now exists.
func (ft *fuzzTopo) toggle(u, v int) bool {
	added := ft.flipRow(u, v)
	ft.flipRow(v, u)
	return added
}

func (ft *fuzzTopo) flipRow(u, v int) bool {
	row := ft.adj[u]
	for i, x := range row {
		if int(x) == v {
			ft.adj[u] = append(row[:i], row[i+1:]...)
			return false
		}
		if int(x) > v {
			row = append(row, 0)
			copy(row[i+1:], row[i:])
			row[i] = int32(v)
			ft.adj[u] = row
			return true
		}
	}
	ft.adj[u] = append(row, int32(v))
	return true
}

// components returns the connected components with >= minSize nodes, each
// ascending, in ascending order of their minimum member — the group shape
// core.Incremental serves.
func (ft *fuzzTopo) components(minSize int) [][]int {
	n := len(ft.adj)
	seen := make([]bool, n)
	var groups [][]int
	var stack []int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], s)
		var comp []int
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range ft.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, int(v))
				}
			}
		}
		if len(comp) >= minSize {
			sort.Ints(comp)
			groups = append(groups, comp)
		}
	}
	return groups
}

func FuzzMeshStitch(f *testing.F) {
	f.Add([]byte{12, 0, 1, 1, 2, 2, 3, 3, 0, 4, 5, 5, 6, 6, 4})
	f.Add([]byte{30, 1, 2, 2, 3, 3, 4, 1, 2, 2, 3, 3, 4, 1, 2, 9, 10, 10, 11, 11, 9})
	f.Add([]byte{8, 0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3, 0, 1, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		n := 6 + int(data[0])%26
		topo := &fuzzTopo{adj: make([][]int32, n)}
		eng := NewIncremental(Config{})
		cfg := Config{}.withDefaults()
		var served []*Surface
		steps := 0
		for i := 1; i+1 < len(data) && steps < 40; i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			steps++
			topo.toggle(u, v)
			eng.Invalidate(nil, u, []int32{int32(v)})
			groups := topo.components(2)
			var err error
			served, err = eng.Surfaces(context.Background(), nil, topo, groups, served[:0])
			if err != nil {
				t.Fatalf("step %d: serve: %v", steps, err)
			}
			g := &graph.Graph{Adj: make([][]int, n)}
			for x, row := range topo.adj {
				r := make([]int, len(row))
				for k, y := range row {
					r[k] = int(y)
				}
				g.Adj[x] = r
			}
			want, err := BuildAll(g, groups, cfg)
			if err != nil {
				t.Fatalf("step %d: reference: %v", steps, err)
			}
			for gi := range want {
				diffSurfacePair(t, fmt.Sprintf("step %d group %d", steps, gi), served[gi], want[gi])
			}
		}
	})
}
