package mesh

// Differential battery for the incremental surface engine: across a
// seeded join/move/leave/crash delta stream, every surface the engine
// serves — cached or rebuilt — must be bit-identical to a from-scratch
// BuildAll over the assembled active network, under the stable-ID
// renaming: same landmarks, association tables, CDG/CDM/edge sets, faces,
// flip counts, realized paths, quality diagnostics, and smoothing output.
// This is the suite the package comment of incremental.go points at; it
// is what licenses serving cached surfaces across deltas. The matrix
// mirrors core's incremental_differential_test.go: three worlds x 50
// seeded deltas x worker widths x SPT cache on/off.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

var (
	meshWorldsOnce sync.Once
	meshWorldsVal  []struct {
		name string
		net  *netgen.Network
	}
	meshWorldsErr error
)

// meshWorlds is the same sphere/cube/torus trio as the core incremental
// suite, rebuilt here because the two packages cannot share test fixtures.
func meshWorlds(t *testing.T) []struct {
	name string
	net  *netgen.Network
} {
	t.Helper()
	meshWorldsOnce.Do(func() {
		box, err := shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(6, 6, 6), nil)
		if err != nil {
			meshWorldsErr = err
			return
		}
		tor, err := shapes.NewTorus(5, 2)
		if err != nil {
			meshWorldsErr = err
			return
		}
		specs := []struct {
			name     string
			shape    shapes.Shape
			surf, in int
			seed     int64
		}{
			{"sphere", shapes.NewBall(geom.Zero, 4), 140, 260, 62},
			{"cube", box, 150, 280, 63},
			{"torus", tor, 220, 260, 5},
		}
		for _, sp := range specs {
			net, err := netgen.Generate(netgen.Config{
				Shape:           sp.shape,
				SurfaceNodes:    sp.surf,
				InteriorNodes:   sp.in,
				TargetAvgDegree: 16,
				Seed:            sp.seed,
			})
			if err != nil {
				meshWorldsErr = fmt.Errorf("%s: %w", sp.name, err)
				return
			}
			meshWorldsVal = append(meshWorldsVal, struct {
				name string
				net  *netgen.Network
			}{sp.name, net})
		}
	})
	if meshWorldsErr != nil {
		t.Fatal(meshWorldsErr)
	}
	return meshWorldsVal
}

// meshDeltaScript replays a seeded delta stream against a core engine,
// feeding each delta's topology change into the mesh engine and diffing
// the served surfaces against a from-scratch rebuild after every step.
func meshDeltaScript(t *testing.T, inc *core.Incremental, eng *Incremental, cfg Config, seed int64, steps, minActive int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := inc.ActiveIDs()
	lo, hi := inc.PositionAt(ids[0]), inc.PositionAt(ids[0])
	for _, s := range ids {
		p := inc.PositionAt(s)
		lo = geom.V(min(lo.X, p.X), min(lo.Y, p.Y), min(lo.Z, p.Z))
		hi = geom.V(max(hi.X, p.X), max(hi.Y, p.Y), max(hi.Z, p.Z))
	}
	pad := inc.Radius() / 2
	lo = lo.Add(geom.V(-pad, -pad, -pad))
	hi = hi.Add(geom.V(pad, pad, pad))
	randIn := func() geom.Vec3 {
		return geom.V(
			lo.X+rng.Float64()*(hi.X-lo.X),
			lo.Y+rng.Float64()*(hi.Y-lo.Y),
			lo.Z+rng.Float64()*(hi.Z-lo.Z),
		)
	}
	pickActive := func() int {
		ids := inc.ActiveIDs()
		return ids[rng.Intn(len(ids))]
	}
	var served []*Surface
	for step := 0; step < steps; step++ {
		var d core.Delta
		switch p := rng.Float64(); {
		case p < 0.30:
			d = core.Delta{Op: core.DeltaJoin, Pos: randIn()}
		case p < 0.70:
			id := pickActive()
			pos := inc.PositionAt(id)
			if rng.Float64() < 0.1 {
				pos = randIn()
			} else {
				r := inc.Radius()
				pos = pos.Add(geom.V(
					(rng.Float64()-0.5)*1.2*r,
					(rng.Float64()-0.5)*1.2*r,
					(rng.Float64()-0.5)*1.2*r,
				))
			}
			d = core.Delta{Op: core.DeltaMove, Node: id, Pos: pos}
		case p < 0.85 && inc.ActiveCount() > minActive:
			d = core.Delta{Op: core.DeltaLeave, Node: pickActive()}
		case inc.ActiveCount() > minActive:
			d = core.Delta{Op: core.DeltaCrash, Node: pickActive()}
		default:
			d = core.Delta{Op: core.DeltaJoin, Pos: randIn()}
		}
		id, err := inc.Apply(d)
		if err != nil {
			t.Fatalf("step %d (%v): %v", step, d.Op, err)
		}
		node, peers := inc.LastTopology()
		if node != id {
			t.Fatalf("step %d: LastTopology node %d, applied %d", step, node, id)
		}
		eng.Invalidate(nil, node, peers)
		served, err = eng.Surfaces(context.Background(), nil, inc, inc.GroupsView(), served[:0])
		if err != nil {
			t.Fatalf("step %d (%v): serve: %v", step, d.Op, err)
		}
		diffMeshIncremental(t, fmt.Sprintf("step %d (%v node %d)", step, d.Op, id), inc, cfg, served)
	}
	st := eng.Stats()
	t.Logf("cache: %d hits, %d misses, %d entries", st.Hits, st.Misses, st.Entries)
	if st.Hits == 0 && steps >= 25 {
		t.Errorf("no cache hits over %d deltas — the engine is rebuilding everything", steps)
	}
}

// diffMeshIncremental rebuilds every group surface from scratch on the
// assembled active network and fails unless the served surfaces match bit
// for bit under the stable-ID renaming, smoothing output included.
func diffMeshIncremental(t *testing.T, label string, inc *core.Incremental, cfg Config, served []*Surface) {
	t.Helper()
	net, err := netgen.Assemble(inc.ActiveNodes(), inc.Radius())
	if err != nil {
		t.Fatalf("%s: assemble: %v", label, err)
	}
	ids := inc.ActiveIDs()
	dense := make([]int, inc.Len())
	for i := range dense {
		dense[i] = -1
	}
	for k, s := range ids {
		dense[s] = k
	}
	groups := inc.Groups()
	if len(served) != len(groups) {
		t.Fatalf("%s: served %d surfaces for %d groups", label, len(served), len(groups))
	}
	denseGroups := make([][]int, len(groups))
	for i, g := range groups {
		dg := make([]int, len(g))
		for k, s := range g {
			if dense[s] < 0 {
				t.Fatalf("%s: group %d holds departed node %d", label, i, s)
			}
			dg[k] = dense[s]
		}
		denseGroups[i] = dg
	}
	want, err := BuildAll(net.G, denseGroups, cfg)
	if err != nil {
		t.Fatalf("%s: reference build: %v", label, err)
	}
	for i, w := range want {
		// renameSurface maps every field dense→stable via ids, but it is
		// built for compact rebuilds where the renaming list IS the group —
		// here it is the whole active set, so restore the true group list.
		renameSurface(w, ids, inc.Len())
		w.Group = append([]int(nil), groups[i]...)
		diffSurfacePair(t, fmt.Sprintf("%s group %d", label, i), served[i], w)
		// Smoothing output: position-dependent, recomputed per serve —
		// must agree exactly, at both smoothing widths.
		pos := func(u int) geom.Vec3 { return inc.PositionAt(u) }
		gotPos := RefinedPositions(served[i], pos, 0.7)
		wantPos := RefinedPositions(w, pos, 0.7)
		gotPosW := RefinedPositionsWorkers(served[i], pos, 0.7, 4)
		if len(gotPos) != len(wantPos) || len(gotPosW) != len(wantPos) {
			t.Fatalf("%s group %d: refined position count %d/%d, want %d", label, i, len(gotPos), len(gotPosW), len(wantPos))
		}
		for lm, p := range wantPos {
			if gotPos[lm] != p {
				t.Fatalf("%s group %d: refined position of %d = %v, want %v", label, i, lm, gotPos[lm], p)
			}
			if gotPosW[lm] != p {
				t.Fatalf("%s group %d: parallel refined position of %d = %v, want %v", label, i, lm, gotPosW[lm], p)
			}
		}
	}
}

// diffSurfacePair compares two stable-ID surfaces field by field.
func diffSurfacePair(t *testing.T, label string, got, want *Surface) {
	t.Helper()
	if len(got.Group) != len(want.Group) {
		t.Fatalf("%s: group size %d, want %d", label, len(got.Group), len(want.Group))
	}
	for i := range want.Group {
		if got.Group[i] != want.Group[i] {
			t.Fatalf("%s: group member %d = %d, want %d", label, i, got.Group[i], want.Group[i])
		}
	}
	if len(got.Landmarks.IDs) != len(want.Landmarks.IDs) {
		t.Fatalf("%s: %d landmarks, want %d", label, len(got.Landmarks.IDs), len(want.Landmarks.IDs))
	}
	for i := range want.Landmarks.IDs {
		if got.Landmarks.IDs[i] != want.Landmarks.IDs[i] {
			t.Fatalf("%s: landmark %d = %d, want %d", label, i, got.Landmarks.IDs[i], want.Landmarks.IDs[i])
		}
	}
	if len(got.Landmarks.Assoc) != len(want.Landmarks.Assoc) {
		t.Fatalf("%s: assoc table len %d, want %d", label, len(got.Landmarks.Assoc), len(want.Landmarks.Assoc))
	}
	for u := range want.Landmarks.Assoc {
		if got.Landmarks.Assoc[u] != want.Landmarks.Assoc[u] {
			t.Fatalf("%s: assoc[%d] = %d, want %d", label, u, got.Landmarks.Assoc[u], want.Landmarks.Assoc[u])
		}
		if got.Landmarks.Hops[u] != want.Landmarks.Hops[u] {
			t.Fatalf("%s: hops[%d] = %d, want %d", label, u, got.Landmarks.Hops[u], want.Landmarks.Hops[u])
		}
	}
	diffEdgeList(t, label+": cdg", got.CDG, want.CDG)
	diffEdgeList(t, label+": cdm", got.CDM, want.CDM)
	diffEdgeList(t, label+": edges", got.Edges, want.Edges)
	if len(got.Faces) != len(want.Faces) {
		t.Fatalf("%s: %d faces, want %d", label, len(got.Faces), len(want.Faces))
	}
	for i := range want.Faces {
		if got.Faces[i] != want.Faces[i] {
			t.Fatalf("%s: face %d = %v, want %v", label, i, got.Faces[i], want.Faces[i])
		}
	}
	if got.Flips != want.Flips {
		t.Fatalf("%s: %d flips, want %d", label, got.Flips, want.Flips)
	}
	if got.Quality != want.Quality {
		t.Fatalf("%s: quality %v, want %v", label, got.Quality, want.Quality)
	}
	if len(got.Paths) != len(want.Paths) {
		t.Fatalf("%s: %d paths, want %d", label, len(got.Paths), len(want.Paths))
	}
	for e, wp := range want.Paths {
		gp, ok := got.Paths[e]
		if !ok {
			t.Fatalf("%s: path for %v missing", label, e)
		}
		if len(gp) != len(wp) {
			t.Fatalf("%s: path %v len %d, want %d", label, e, len(gp), len(wp))
		}
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("%s: path %v node %d = %d, want %d", label, e, i, gp[i], wp[i])
			}
		}
	}
}

func diffEdgeList(t *testing.T, label string, got, want []Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: edge %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestMeshIncrementalDifferential is the acceptance battery: sphere, cube
// and torus worlds, 50 seeded deltas each, engine configurations at every
// (workers, SPT cache) in {1,4} x {on,off}, from-scratch surface diff
// after every single delta.
func TestMeshIncrementalDifferential(t *testing.T) {
	worlds := meshWorlds(t)
	matrix := []struct {
		workers int
		noSPT   bool
	}{{1, false}, {4, false}, {1, true}, {4, true}}
	steps := 50
	if testing.Short() {
		matrix = matrix[:2]
		steps = 15
	}
	for _, world := range worlds {
		for _, m := range matrix {
			t.Run(fmt.Sprintf("%s/w%d_spt%v", world.name, m.workers, !m.noSPT), func(t *testing.T) {
				cfg := Config{Workers: m.workers, noSPT: m.noSPT}
				inc, err := core.NewIncremental(world.net, core.Config{})
				if err != nil {
					t.Fatal(err)
				}
				eng := NewIncremental(cfg)
				served, err := eng.Surfaces(context.Background(), nil, inc, inc.GroupsView(), nil)
				if err != nil {
					t.Fatal(err)
				}
				diffMeshIncremental(t, "seed", inc, cfg, served)
				meshDeltaScript(t, inc, eng, cfg, 1000+int64(m.workers*10)+b2i(m.noSPT), steps, 50)
			})
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
