package mesh

// This file carries a verbatim copy of the pre-CSR surface pipeline — the
// allocating, closure-filtered, fresh-BFS-per-query implementation the
// kernel in kernel.go replaced — kept as the oracle for the differential
// tests in differential_test.go. The CDM construction's correctness rests
// on every node agreeing on "the" shortest path, so the rewrite must be
// bit-identical, not merely equivalent.

import (
	"sort"

	"repro/internal/graph"
)

func refElectLandmarks(g *graph.Graph, group []int, k int) (*Landmarks, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	inGroup := make([]bool, g.Len())
	for _, v := range group {
		inGroup[v] = true
	}
	member := graph.InSet(inGroup)

	sorted := append([]int(nil), group...)
	sort.Ints(sorted)

	covered := make([]bool, g.Len())
	var ids []int
	for _, v := range sorted {
		if covered[v] {
			continue
		}
		ids = append(ids, v)
		dist := g.BFSHops([]int{v}, member, k)
		for u, d := range dist {
			if d != graph.Unreachable {
				covered[u] = true
			}
		}
	}

	assoc := make([]int, g.Len())
	hops := make([]int, g.Len())
	for i := range assoc {
		assoc[i] = NoLandmark
		hops[i] = graph.Unreachable
	}
	for _, lm := range ids {
		dist := g.BFSHops([]int{lm}, member, -1)
		for u, d := range dist {
			if d == graph.Unreachable {
				continue
			}
			if hops[u] == graph.Unreachable || d < hops[u] {
				hops[u] = d
				assoc[u] = lm
			}
		}
	}
	return &Landmarks{IDs: ids, Assoc: assoc, Hops: hops}, nil
}

func refBuildCDG(g *graph.Graph, lms *Landmarks, member func(int) bool) []Edge {
	seen := make(map[Edge]bool)
	var edges []Edge
	for u := range g.Adj {
		if !member(u) || lms.Assoc[u] == NoLandmark {
			continue
		}
		for _, v := range g.Adj[u] {
			if !member(v) || lms.Assoc[v] == NoLandmark {
				continue
			}
			if lms.Assoc[u] == lms.Assoc[v] {
				continue
			}
			e := mkEdge(lms.Assoc[u], lms.Assoc[v])
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	}
	sortEdges(edges)
	return edges
}

func refBuildCDM(g *graph.Graph, lms *Landmarks, member func(int) bool, cdg []Edge) cdmResult {
	res := cdmResult{
		pathEdges: make(map[int][]Edge),
		paths:     make(map[Edge][]int),
	}
	for _, e := range cdg {
		path := g.ShortestPath(e[0], e[1], member)
		if path == nil || !pathNonInterleaved(path, lms.Assoc, e[0], e[1]) {
			continue
		}
		res.edges = append(res.edges, e)
		res.claim(e, path)
	}
	return res
}

func refTriangulate(g *graph.Graph, member func(int) bool, cdg []Edge, cdm *cdmResult, edgeSet, forbidden map[Edge]bool) []Edge {
	adj := make(map[int]map[int]bool)
	link := func(e Edge) {
		edgeSet[e] = true
		if adj[e[0]] == nil {
			adj[e[0]] = make(map[int]bool)
		}
		if adj[e[1]] == nil {
			adj[e[1]] = make(map[int]bool)
		}
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	for e := range edgeSet {
		link(e)
	}
	faceCount := make(map[Edge]int)
	for _, f := range enumerateFaces(edgesFromSet(edgeSet)) {
		faceCount[mkEdge(f[0], f[1])]++
		faceCount[mkEdge(f[0], f[2])]++
		faceCount[mkEdge(f[1], f[2])]++
	}

	commonNbrs := func(a, b int) []int {
		var out []int
		for c := range adj[a] {
			if adj[b][c] {
				out = append(out, c)
			}
		}
		sort.Ints(out)
		return out
	}

	tryAdd := func(e Edge) bool {
		if edgeSet[e] || forbidden[e] {
			return false
		}
		corners := commonNbrs(e[0], e[1])
		if len(corners) == 0 || len(corners) > 2 {
			return false
		}
		for _, c := range corners {
			if faceCount[mkEdge(e[0], c)]+1 > 2 || faceCount[mkEdge(e[1], c)]+1 > 2 {
				return false
			}
		}
		path := g.ShortestPath(e[0], e[1], member)
		if path == nil {
			return false
		}
		for _, u := range path[1 : len(path)-1] {
			if cdm.blocks(u, e[0], e[1]) {
				return false
			}
		}
		link(e)
		for _, c := range corners {
			faceCount[e]++
			faceCount[mkEdge(e[0], c)]++
			faceCount[mkEdge(e[1], c)]++
		}
		cdm.claim(e, path)
		return true
	}

	var added []Edge
	for _, e := range cdg {
		if tryAdd(e) {
			added = append(added, e)
		}
	}
	for {
		progress := false
		var verts []int
		for v := range adj {
			verts = append(verts, v)
		}
		sort.Ints(verts)
		for _, mid := range verts {
			var nbrs []int
			for u := range adj[mid] {
				nbrs = append(nbrs, u)
			}
			sort.Ints(nbrs)
			for x := 0; x < len(nbrs); x++ {
				for y := x + 1; y < len(nbrs); y++ {
					e := mkEdge(nbrs[x], nbrs[y])
					if tryAdd(e) {
						added = append(added, e)
						progress = true
					}
				}
			}
		}
		if !progress {
			break
		}
	}
	sortEdges(added)
	return added
}

func refFlipPass(g *graph.Graph, member func(int) bool, edgeSet, removed map[Edge]bool, maxIter int) int {
	flips := 0
	for iter := 0; iter < maxIter; iter++ {
		cur := edgesFromSet(edgeSet)
		corners := faceCorners(enumerateFaces(cur))
		var bad *Edge
		for _, e := range cur {
			if len(corners[e]) >= 3 {
				e := e
				bad = &e
				break
			}
		}
		if bad == nil {
			return flips
		}
		delete(edgeSet, *bad)
		removed[*bad] = true
		flips++
		cs := append([]int(nil), corners[*bad]...)
		sort.Ints(cs)
		dist := func(a, b int) int { return g.HopDistance(a, b, member) }
		for _, e := range cornerMST(dist, cs) {
			if !removed[e] {
				edgeSet[e] = true
			}
		}
	}
	return flips
}

// refBuild replicates the pre-kernel BuildContext control flow on the
// reference primitives above.
func refBuild(g *graph.Graph, group []int, cfg Config) (*Surface, error) {
	cfg = cfg.withDefaults()
	if len(group) == 0 {
		return nil, ErrEmptyGroup
	}
	inGroup := make([]bool, g.Len())
	for _, v := range group {
		inGroup[v] = true
	}
	member := graph.InSet(inGroup)

	lms, err := refElectLandmarks(g, group, cfg.K)
	if err != nil {
		return nil, err
	}
	cdg := refBuildCDG(g, lms, member)
	cdm := refBuildCDM(g, lms, member, cdg)

	edgeSet := make(map[Edge]bool, len(cdm.edges))
	for _, e := range cdm.edges {
		edgeSet[e] = true
	}
	forbidden := make(map[Edge]bool)
	flips := 0
	for round := 0; round < cfg.MaxRepairRounds; round++ {
		added := refTriangulate(g, member, cdg, &cdm, edgeSet, forbidden)
		f := refFlipPass(g, member, edgeSet, forbidden, cfg.MaxFlipIterations)
		flips += f
		if len(added) == 0 && f == 0 {
			break
		}
	}
	final := edgesFromSet(edgeSet)
	faces := enumerateFaces(final)

	s := &Surface{
		Group:     append([]int(nil), group...),
		Landmarks: lms,
		CDG:       cdg,
		CDM:       cdm.edges,
		Edges:     final,
		Faces:     faces,
		Flips:     flips,
		Paths:     cdm.paths,
	}
	s.Quality = evaluateQuality(lms.IDs, final, faces)
	return s, nil
}
