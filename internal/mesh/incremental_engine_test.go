package mesh

// Engine-level unit tests: the steady-state zero-allocation guarantee on
// the serve hot path, the join/new-node invalidation no-op, and the
// eviction cap.

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// allocTopo returns two components: a 12-node double ring (enough for a
// real surface) and a detached 3-cycle.
func allocTopo() *fuzzTopo {
	ft := &fuzzTopo{adj: make([][]int32, 15)}
	for i := 0; i < 12; i++ {
		ft.toggle(i, (i+1)%12)
		ft.toggle(i, (i+2)%12)
	}
	ft.toggle(12, 13)
	ft.toggle(13, 14)
	ft.toggle(12, 14)
	return ft
}

// TestMeshIncrementalSteadyStateZeroAlloc pins the repair hot path's
// steady state: once the session's groups are cached and deltas stop
// dirtying them, a full Invalidate+Surfaces round allocates nothing — the
// serve loop is lookup, stamp, append into the caller-retained slice.
func TestMeshIncrementalSteadyStateZeroAlloc(t *testing.T) {
	topo := allocTopo()
	groups := topo.components(2)
	if len(groups) != 2 {
		t.Fatalf("want 2 components, got %d", len(groups))
	}
	eng := NewIncremental(Config{})
	ctx := context.Background()
	served, err := eng.Surfaces(ctx, nil, topo, groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != 2 {
		t.Fatalf("served %d surfaces", len(served))
	}
	// A delta whose changed edges cross the component boundary dirties
	// neither cached set (each holds the node or the peer, never both).
	peers := []int32{12}
	var serveErr error
	allocs := testing.AllocsPerRun(200, func() {
		eng.Invalidate(nil, 0, peers)
		served, serveErr = eng.Surfaces(ctx, nil, topo, groups, served[:0])
	})
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	if allocs != 0 {
		t.Errorf("steady-state serve allocates %.1f objects/op, want 0", allocs)
	}
	st := eng.Stats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (warm-up only)", st.Misses)
	}
}

// TestMeshIncrementalJoinNeverInvalidates pins the append-only stable-ID
// argument: a joining node's ID is beyond every cached member set's
// universe, so Invalidate must evict nothing.
func TestMeshIncrementalJoinNeverInvalidates(t *testing.T) {
	topo := allocTopo()
	groups := topo.components(2)
	eng := NewIncremental(Config{})
	if _, err := eng.Surfaces(context.Background(), nil, topo, groups, nil); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats().Entries
	eng.Invalidate(nil, topo.Len(), []int32{0, 5, 13})
	if got := eng.Stats().Entries; got != before {
		t.Errorf("join evicted %d entries", before-got)
	}
	// The join then grows the universe; cached serves must resize their
	// association tables to match a from-scratch build over it.
	topo.adj = append(topo.adj, nil)
	topo.toggle(15, 0)
	topo.toggle(15, 1)
	eng.Invalidate(nil, 15, []int32{0, 1})
	served, err := eng.Surfaces(context.Background(), nil, topo, topo.components(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range served {
		if len(s.Landmarks.Assoc) != topo.Len() {
			t.Errorf("surface %d assoc table len %d, want %d", i, len(s.Landmarks.Assoc), topo.Len())
		}
	}
}

// TestMeshIncrementalEvictionCap drives more distinct groups than the
// cache holds and checks the entry count stays capped while serves remain
// correct.
func TestMeshIncrementalEvictionCap(t *testing.T) {
	n := 3 * (maxCachedSurfaces + 8)
	ft := &fuzzTopo{adj: make([][]int32, n)}
	for g := 0; g+2 < n; g += 3 {
		ft.toggle(g, g+1)
		ft.toggle(g+1, g+2)
		ft.toggle(g, g+2)
	}
	eng := NewIncremental(Config{})
	groups := ft.components(2)
	if len(groups) <= maxCachedSurfaces {
		t.Fatalf("want > %d groups, got %d", maxCachedSurfaces, len(groups))
	}
	served, err := eng.Surfaces(context.Background(), nil, ft, groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(groups) {
		t.Fatalf("served %d surfaces for %d groups", len(served), len(groups))
	}
	if got := eng.Stats().Entries; got > maxCachedSurfaces {
		t.Errorf("cache holds %d entries, cap %d", got, maxCachedSurfaces)
	}
	cfg := Config{}.withDefaults()
	g := &graph.Graph{Adj: make([][]int, n)}
	for x, row := range ft.adj {
		r := make([]int, len(row))
		for k, y := range row {
			r[k] = int(y)
		}
		g.Adj[x] = r
	}
	want, err := BuildAll(g, groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		diffSurfacePair(t, "capped", served[i], want[i])
	}
}
