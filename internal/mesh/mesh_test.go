package mesh

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

func ringGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	for i := range g.Adj {
		sortInts(g.Adj[i])
	}
	return g
}

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestElectLandmarksRing(t *testing.T) {
	g := ringGraph(12)
	lms, err := ElectLandmarks(g, seq(12), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 4, 8}
	if len(lms.IDs) != len(want) {
		t.Fatalf("landmarks = %v, want %v", lms.IDs, want)
	}
	for i := range want {
		if lms.IDs[i] != want[i] {
			t.Fatalf("landmarks = %v, want %v", lms.IDs, want)
		}
	}
	// Tie at node 2 (2 hops to both 0 and 4) breaks to the smaller ID.
	if lms.Assoc[2] != 0 {
		t.Errorf("assoc[2] = %d, want 0", lms.Assoc[2])
	}
	if lms.Assoc[6] != 4 {
		t.Errorf("assoc[6] = %d, want 4", lms.Assoc[6])
	}
	if lms.Hops[5] != 1 {
		t.Errorf("hops[5] = %d, want 1", lms.Hops[5])
	}
	// Landmarks associate with themselves at distance zero.
	for _, lm := range lms.IDs {
		if lms.Assoc[lm] != lm || lms.Hops[lm] != 0 {
			t.Errorf("landmark %d self-association broken", lm)
		}
	}
}

func TestElectLandmarksSeparation(t *testing.T) {
	// Property: no two landmarks within k hops of each other, and every
	// group node within k hops of some landmark.
	g := ringGraph(30)
	for _, k := range []int{1, 2, 3, 5} {
		lms, err := ElectLandmarks(g, seq(30), k)
		if err != nil {
			t.Fatal(err)
		}
		member := graph.All
		for a := 0; a < len(lms.IDs); a++ {
			for b := a + 1; b < len(lms.IDs); b++ {
				if d := g.HopDistance(lms.IDs[a], lms.IDs[b], member); d <= k {
					t.Errorf("k=%d: landmarks %d,%d only %d hops apart", k, lms.IDs[a], lms.IDs[b], d)
				}
			}
		}
		for v := 0; v < 30; v++ {
			if lms.Assoc[v] == NoLandmark {
				t.Errorf("k=%d: node %d unassociated", k, v)
			}
			if lms.Hops[v] > k {
				t.Errorf("k=%d: node %d is %d hops from its landmark", k, v, lms.Hops[v])
			}
		}
	}
}

func TestElectLandmarksValidation(t *testing.T) {
	g := ringGraph(5)
	if _, err := ElectLandmarks(g, seq(5), 0); err != ErrBadK {
		t.Errorf("err = %v, want ErrBadK", err)
	}
}

func TestElectLandmarksRestrictedGroup(t *testing.T) {
	g := pathGraph(10)
	group := []int{0, 1, 2, 3} // only a prefix participates
	lms, err := ElectLandmarks(g, group, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 4; v < 10; v++ {
		if lms.Assoc[v] != NoLandmark {
			t.Errorf("non-member %d associated to %d", v, lms.Assoc[v])
		}
	}
	if lms.Assoc[0] == NoLandmark || lms.Assoc[3] == NoLandmark {
		t.Error("members unassociated")
	}
}

func TestPathNonInterleaved(t *testing.T) {
	//            0  1  2  3  4
	assoc := []int{7, 7, 7, 9, 9}
	if !pathNonInterleaved([]int{0, 1, 2, 3, 4}, assoc, 7, 9) {
		t.Error("clean two-run path rejected")
	}
	assocInterleaved := []int{7, 9, 7, 9, 9}
	if pathNonInterleaved([]int{0, 1, 2, 3, 4}, assocInterleaved, 7, 9) {
		t.Error("interleaved path accepted")
	}
	assocForeign := []int{7, 7, 5, 9, 9}
	if pathNonInterleaved([]int{0, 1, 2, 3, 4}, assocForeign, 7, 9) {
		t.Error("path through a foreign cell accepted")
	}
}

func TestEnumerateFacesTetrahedron(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	faces := enumerateFaces(edges)
	if len(faces) != 4 {
		t.Fatalf("tetrahedron has %d faces, want 4", len(faces))
	}
	q := evaluateQuality([]int{0, 1, 2, 3}, edges, faces)
	if q.Euler != 2 {
		t.Errorf("tetrahedron euler = %d, want 2", q.Euler)
	}
	if !q.Closed2Manifold {
		t.Errorf("tetrahedron not closed: %v", q)
	}
}

// octahedron returns the edge list of the octahedron with poles 0, 5 and
// equator 1-2-3-4.
func octahedron() []Edge {
	return []Edge{
		{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 5}, {2, 5}, {3, 5}, {4, 5},
		{1, 2}, {2, 3}, {3, 4}, {1, 4},
	}
}

func TestEnumerateFacesOctahedron(t *testing.T) {
	faces := enumerateFaces(octahedron())
	if len(faces) != 8 {
		t.Fatalf("octahedron has %d faces, want 8", len(faces))
	}
	q := evaluateQuality([]int{0, 1, 2, 3, 4, 5}, octahedron(), faces)
	if q.Euler != 2 || !q.Closed2Manifold {
		t.Errorf("octahedron quality: %v", q)
	}
}

func TestQualityDetectsDefects(t *testing.T) {
	// A single triangle: three border edges, not closed.
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}}
	faces := enumerateFaces(edges)
	q := evaluateQuality([]int{0, 1, 2}, edges, faces)
	if q.BorderEdges != 3 || q.Closed2Manifold {
		t.Errorf("triangle quality: %v", q)
	}
	// An isolated vertex.
	q = evaluateQuality([]int{0, 1, 2, 9}, edges, faces)
	if q.IsolatedVertices != 1 || q.Closed2Manifold {
		t.Errorf("isolated-vertex quality: %v", q)
	}
}

func TestFlipEdgesFig5(t *testing.T) {
	// Fig. 5: edge AB borders three triangles ABC, ABD, ABE. The
	// underlying boundary graph places C-D-E on a path, so CD and DE are
	// the two shortest corner pairs: the flip must remove AB and add
	// exactly those.
	const (
		A, B, C, D, E = 0, 1, 2, 3, 4
	)
	g := graph.New(5)
	g.AddEdge(C, D)
	g.AddEdge(D, E)
	// A and B adjacent to everything so overlay hop distances exist.
	for _, v := range []int{C, D, E} {
		g.AddEdge(A, v)
		g.AddEdge(B, v)
	}
	g.AddEdge(A, B)
	for i := range g.Adj {
		sortInts(g.Adj[i])
	}
	overlay := []Edge{
		{A, B},
		{A, C}, {B, C},
		{A, D}, {B, D},
		{A, E}, {B, E},
	}
	final, flips := flipEdges(g, graph.All, overlay, 10)
	if flips == 0 {
		t.Fatal("no flip applied")
	}
	set := make(map[Edge]bool)
	for _, e := range final {
		set[e] = true
	}
	if set[mkEdge(A, B)] {
		t.Error("over-shared edge AB not removed")
	}
	if !set[mkEdge(C, D)] || !set[mkEdge(D, E)] {
		t.Errorf("expected CD and DE added, got %v", final)
	}
	if set[mkEdge(C, E)] {
		t.Error("long corner pair CE added")
	}
	// After the flip no edge may border three or more faces.
	corners := faceCorners(enumerateFaces(final))
	for e, cs := range corners {
		if len(cs) >= 3 {
			t.Errorf("edge %v still borders %d faces", e, len(cs))
		}
	}
}

func TestCornerMST(t *testing.T) {
	g := pathGraph(6) // hop distance = index distance
	dist := func(a, b int) int { return g.HopDistance(a, b, graph.All) }
	mst := cornerMST(dist, []int{0, 2, 5})
	// Pairwise hops: (0,2)=2, (2,5)=3, (0,5)=5 → MST = {0-2, 2-5}.
	if len(mst) != 2 {
		t.Fatalf("mst = %v", mst)
	}
	want := map[Edge]bool{mkEdge(0, 2): true, mkEdge(2, 5): true}
	for _, e := range mst {
		if !want[e] {
			t.Errorf("unexpected MST edge %v", e)
		}
	}
	if got := cornerMST(dist, []int{3}); got != nil {
		t.Errorf("single corner MST = %v", got)
	}
}

func TestIsSingleCycle(t *testing.T) {
	cycle := []Edge{{0, 1}, {1, 2}, {2, 0}}
	if !isSingleCycle(cycle) {
		t.Error("triangle cycle rejected")
	}
	path := []Edge{{0, 1}, {1, 2}}
	if isSingleCycle(path) {
		t.Error("open path accepted")
	}
	twoCycles := []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}
	if isSingleCycle(twoCycles) {
		t.Error("two disjoint cycles accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	g := ringGraph(6)
	if _, err := Build(g, nil, Config{}); err != ErrEmptyGroup {
		t.Errorf("err = %v, want ErrEmptyGroup", err)
	}
	if _, err := Build(g, seq(6), Config{K: -1}); err == nil {
		t.Error("negative k should fail")
	}
}

func TestBuildOnRing(t *testing.T) {
	// A plain ring is a degenerate 1D "surface": Build must not fail,
	// and the CDM keeps it planar.
	g := ringGraph(20)
	s, err := Build(g, seq(20), Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Landmarks.IDs) < 2 {
		t.Fatalf("too few landmarks: %v", s.Landmarks.IDs)
	}
	if len(s.CDG) == 0 {
		t.Error("empty CDG")
	}
	// On a cycle the overlay is a cycle: every landmark has exactly two
	// CDG neighbors.
	degree := map[int]int{}
	for _, e := range s.CDG {
		degree[e[0]]++
		degree[e[1]]++
	}
	for lm, d := range degree {
		if d != 2 {
			t.Errorf("landmark %d has CDG degree %d, want 2", lm, d)
		}
	}
}

// TestBuildContextLandmarkTransitions: the flight recorder sees one
// landmark_elect transition per elected landmark, naming the elected
// node, and observation does not change the build.
func TestBuildContextLandmarkTransitions(t *testing.T) {
	g := ringGraph(20)
	plain, err := Build(g, seq(20), Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := &obs.Mem{}
	s, err := BuildContext(context.Background(), m, g, seq(20), Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, s) {
		t.Fatal("observed build differs from unobserved build")
	}
	if got := m.Transitions(obs.TransLandmarkElect); got != len(s.Landmarks.IDs) {
		t.Errorf("landmark_elect transitions = %d, want %d", got, len(s.Landmarks.IDs))
	}
	elected := map[int]bool{}
	for _, id := range s.Landmarks.IDs {
		elected[id] = true
	}
	for _, ev := range m.Events() {
		if ev.Kind == obs.KindTransition && ev.Trans == obs.TransLandmarkElect && !elected[ev.Node] {
			t.Errorf("transition names non-landmark node %d", ev.Node)
		}
	}
}
