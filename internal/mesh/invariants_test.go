package mesh

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

// TestBuildInvariantsAcrossSeeds sweeps deployments and mesh granularities
// and checks the structural invariants every Build result must satisfy,
// regardless of how well the mesh closes:
//
//  1. landmarks are pairwise more than k hops apart (through the group);
//  2. every group node is within k hops of its landmark;
//  3. CDM ⊆ CDG;
//  4. no edge borders three or more faces (the step-V postcondition);
//  5. every virtual-edge path stays inside the group;
//  6. quality counters are mutually consistent.
func TestBuildInvariantsAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		net, err := netgen.Generate(netgen.Config{
			Shape:           shapes.NewBall(geom.Zero, 3.2),
			SurfaceNodes:    300,
			InteriorNodes:   800,
			TargetAvgDegree: 18,
			Seed:            seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		det, err := core.Detect(net, nil, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 3, 4} {
			for _, group := range det.Groups {
				s, err := Build(net.G, group, Config{K: k})
				if err != nil {
					t.Fatal(err)
				}
				checkInvariants(t, net.G, s, k, seed)
			}
		}
	}
}

func checkInvariants(t *testing.T, g *graph.Graph, s *Surface, k int, seed int64) {
	t.Helper()
	inGroup := make([]bool, g.Len())
	for _, v := range s.Group {
		inGroup[v] = true
	}
	member := graph.InSet(inGroup)

	// 1. landmark separation.
	for a := 0; a < len(s.Landmarks.IDs); a++ {
		for b := a + 1; b < len(s.Landmarks.IDs); b++ {
			if d := g.HopDistance(s.Landmarks.IDs[a], s.Landmarks.IDs[b], member); d != graph.Unreachable && d <= k {
				t.Fatalf("seed %d k %d: landmarks %d hops apart", seed, k, d)
			}
		}
	}
	// 2. association radius.
	for _, v := range s.Group {
		if s.Landmarks.Hops[v] == graph.Unreachable || s.Landmarks.Hops[v] > k {
			t.Fatalf("seed %d k %d: node %d is %d hops from its landmark", seed, k, v, s.Landmarks.Hops[v])
		}
	}
	// 3. CDM subset of CDG.
	cdg := make(map[Edge]bool, len(s.CDG))
	for _, e := range s.CDG {
		cdg[e] = true
	}
	for _, e := range s.CDM {
		if !cdg[e] {
			t.Fatalf("seed %d k %d: CDM edge %v outside CDG", seed, k, e)
		}
	}
	// 4. two-face budget.
	for e, corners := range faceCorners(s.Faces) {
		if len(corners) > 2 {
			t.Fatalf("seed %d k %d: edge %v borders %d faces", seed, k, e, len(corners))
		}
	}
	// 5. paths stay in the group.
	for e, path := range s.Paths {
		for _, u := range path {
			if !inGroup[u] {
				t.Fatalf("seed %d k %d: path of %v leaves the group at %d", seed, k, e, u)
			}
		}
	}
	// 6. quality consistency.
	q := s.Quality
	if q.V != len(s.Landmarks.IDs) || q.E != len(s.Edges) || q.F != len(s.Faces) {
		t.Fatalf("seed %d k %d: quality counts inconsistent: %v", seed, k, q)
	}
	if q.Euler != q.V-q.E+q.F {
		t.Fatalf("seed %d k %d: euler inconsistent: %v", seed, k, q)
	}
	if q.NonManifoldEdges != 0 {
		t.Fatalf("seed %d k %d: non-manifold edges survived flips: %v", seed, k, q)
	}
}
