package mesh

import (
	"repro/internal/geom"
)

// RefinedPositions returns robustified positions for the surface's
// landmarks: each landmark moves a fraction λ toward the centroid of its
// Voronoi cell (the boundary nodes associated with it in step I). A cell
// holds many independent samples of the local boundary patch, so its
// centroid suppresses the placement jitter of any single node — including
// the landmark itself when it is a mistakenly-identified near-boundary
// node. The mesh combinatorics are untouched; this only produces nicer
// geometry for export and visualization, a refinement beyond the paper
// (which renders raw node positions).
//
// λ in (0, 1]; out-of-range values fall back to 0.7. Landmarks with no
// associated cell members keep their position.
func RefinedPositions(s *Surface, position func(node int) geom.Vec3, lambda float64) map[int]geom.Vec3 {
	if lambda <= 0 || lambda > 1 {
		lambda = 0.7
	}
	cells := make(map[int][]geom.Vec3, len(s.Landmarks.IDs))
	for _, v := range s.Group {
		if lm := s.Landmarks.Assoc[v]; lm != NoLandmark {
			cells[lm] = append(cells[lm], position(v))
		}
	}
	pos := make(map[int]geom.Vec3, len(s.Landmarks.IDs))
	for _, lm := range s.Landmarks.IDs {
		p := position(lm)
		if members := cells[lm]; len(members) > 0 {
			p = p.Lerp(geom.Centroid(members), lambda)
		}
		pos[lm] = p
	}
	return pos
}
