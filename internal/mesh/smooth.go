package mesh

import (
	"repro/internal/geom"
	"repro/internal/par"
)

// RefinedPositions returns robustified positions for the surface's
// landmarks: each landmark moves a fraction λ toward the centroid of its
// Voronoi cell (the boundary nodes associated with it in step I). A cell
// holds many independent samples of the local boundary patch, so its
// centroid suppresses the placement jitter of any single node — including
// the landmark itself when it is a mistakenly-identified near-boundary
// node. The mesh combinatorics are untouched; this only produces nicer
// geometry for export and visualization, a refinement beyond the paper
// (which renders raw node positions).
//
// λ in (0, 1]; out-of-range values fall back to 0.7. Landmarks with no
// associated cell members keep their position.
func RefinedPositions(s *Surface, position func(node int) geom.Vec3, lambda float64) map[int]geom.Vec3 {
	if lambda <= 0 || lambda > 1 {
		lambda = 0.7
	}
	cells := make(map[int][]geom.Vec3, len(s.Landmarks.IDs))
	for _, v := range s.Group {
		if lm := s.Landmarks.Assoc[v]; lm != NoLandmark {
			cells[lm] = append(cells[lm], position(v))
		}
	}
	pos := make(map[int]geom.Vec3, len(s.Landmarks.IDs))
	for _, lm := range s.Landmarks.IDs {
		p := position(lm)
		if members := cells[lm]; len(members) > 0 {
			p = p.Lerp(geom.Centroid(members), lambda)
		}
		pos[lm] = p
	}
	return pos
}

// RefinedPositionsWorkers is RefinedPositions with the per-landmark
// centroid computation fanned out over the worker pool. Cell gathering
// stays sequential (it fixes the floating-point summation order), each
// landmark's refinement is an independent computation over its own cell,
// and results land in a per-landmark slot before the map is assembled —
// so the output is bit-identical to the sequential path at every width.
// position must be safe for concurrent calls (a position-array lookup is).
func RefinedPositionsWorkers(s *Surface, position func(node int) geom.Vec3, lambda float64, workers int) map[int]geom.Vec3 {
	if workers <= 1 || len(s.Landmarks.IDs) < 2 {
		return RefinedPositions(s, position, lambda)
	}
	if lambda <= 0 || lambda > 1 {
		lambda = 0.7
	}
	cells := make(map[int][]geom.Vec3, len(s.Landmarks.IDs))
	for _, v := range s.Group {
		if lm := s.Landmarks.Assoc[v]; lm != NoLandmark {
			cells[lm] = append(cells[lm], position(v))
		}
	}
	refined := make([]geom.Vec3, len(s.Landmarks.IDs))
	// Pure per-landmark arithmetic: no error path exists, matching the
	// sequential loop.
	_ = par.For(len(s.Landmarks.IDs), workers, func(_, i int) error {
		lm := s.Landmarks.IDs[i]
		p := position(lm)
		if members := cells[lm]; len(members) > 0 {
			p = p.Lerp(geom.Centroid(members), lambda)
		}
		refined[i] = p
		return nil
	})
	pos := make(map[int]geom.Vec3, len(s.Landmarks.IDs))
	for i, lm := range s.Landmarks.IDs {
		pos[lm] = refined[i]
	}
	return pos
}
