package shapes

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// ErrHoleOutsideBox is returned when a cavity is not strictly inside the
// enclosing box (a hole touching the outer boundary would merge the two
// surfaces, which the grouping experiments rely on being distinct).
var ErrHoleOutsideBox = errors.New("shapes: cavity must lie strictly inside the box")

// BoxWithHoles is a solid box with spherical internal cavities — the
// "3D space network with internal holes" of Figs. 7 and 8, and the Fig. 1
// network. Each cavity contributes an inner boundary surface.
type BoxWithHoles struct {
	Outer geom.AABB
	Holes []geom.Sphere

	faceArea float64 // cached outer surface area
	holeArea []float64
	total    float64
}

// NewBoxWithHoles builds the shape, validating that every cavity lies
// strictly inside the box and that cavities do not intersect each other.
func NewBoxWithHoles(min, max geom.Vec3, holes []geom.Sphere) (*BoxWithHoles, error) {
	box := geom.NewAABB(min, max)
	for i, h := range holes {
		inner := box.Expand(-h.Radius)
		if inner.IsEmpty() || !inner.Contains(h.Center) {
			return nil, fmt.Errorf("hole %d at %v (r=%g): %w", i, h.Center, h.Radius, ErrHoleOutsideBox)
		}
		for j := i + 1; j < len(holes); j++ {
			if h.Center.Dist(holes[j].Center) <= h.Radius+holes[j].Radius {
				return nil, fmt.Errorf("holes %d and %d intersect", i, j)
			}
		}
	}
	s := &BoxWithHoles{Outer: box, Holes: append([]geom.Sphere(nil), holes...)}
	size := box.Size()
	s.faceArea = 2 * (size.X*size.Y + size.Y*size.Z + size.X*size.Z)
	s.total = s.faceArea
	for _, h := range holes {
		a := 4 * math.Pi * h.Radius * h.Radius
		s.holeArea = append(s.holeArea, a)
		s.total += a
	}
	return s, nil
}

// Name implements Shape.
func (s *BoxWithHoles) Name() string {
	return fmt.Sprintf("box-with-%d-holes", len(s.Holes))
}

// Bounds implements Shape.
func (s *BoxWithHoles) Bounds() geom.AABB { return s.Outer }

// Contains implements Shape: inside the box and not strictly inside any
// cavity. Points exactly on a cavity surface belong to the solid, so
// surface-sampled ground-truth nodes satisfy Contains.
func (s *BoxWithHoles) Contains(p geom.Vec3) bool {
	if !s.Outer.Contains(p) {
		return false
	}
	for _, h := range s.Holes {
		if h.Center.Dist2(p) < h.Radius*h.Radius {
			return false
		}
	}
	return true
}

// SampleSurface implements Shape, weighting the outer box faces and each
// cavity sphere by area.
func (s *BoxWithHoles) SampleSurface(rng *rand.Rand) geom.Vec3 {
	u := rng.Float64() * s.total
	if u < s.faceArea {
		return (&Box{B: s.Outer}).SampleSurface(rng)
	}
	u -= s.faceArea
	for i, a := range s.holeArea {
		if u < a {
			return s.holeSurfacePoint(rng, s.Holes[i])
		}
		u -= a
	}
	// Floating-point slack: fall back to the last cavity.
	return s.holeSurfacePoint(rng, s.Holes[len(s.Holes)-1])
}

// holeSurfacePoint samples the cavity sphere nudged outward by a negligible
// epsilon so the point is not strictly inside the cavity (Contains holds
// exactly despite floating-point rounding).
func (s *BoxWithHoles) holeSurfacePoint(rng *rand.Rand, h geom.Sphere) geom.Vec3 {
	return geom.RandomOnSphere(rng, geom.Sphere{Center: h.Center, Radius: h.Radius * (1 + 1e-12)})
}

// SurfaceComponents implements Shape.
func (s *BoxWithHoles) SurfaceComponents() int { return 1 + len(s.Holes) }

var _ Shape = (*BoxWithHoles)(nil)
