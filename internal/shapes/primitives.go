package shapes

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// Ball is a solid sphere (the Fig. 10 scenario).
type Ball struct {
	Center geom.Vec3
	Radius float64
}

// NewBall returns a solid sphere with the given center and radius.
func NewBall(center geom.Vec3, radius float64) *Ball {
	return &Ball{Center: center, Radius: radius}
}

// Name implements Shape.
func (b *Ball) Name() string { return fmt.Sprintf("ball(r=%.3g)", b.Radius) }

// Bounds implements Shape.
func (b *Ball) Bounds() geom.AABB {
	r := geom.V(b.Radius, b.Radius, b.Radius)
	return geom.AABB{Min: b.Center.Sub(r), Max: b.Center.Add(r)}
}

// Contains implements Shape.
func (b *Ball) Contains(p geom.Vec3) bool {
	return b.Center.Dist2(p) <= b.Radius*b.Radius
}

// SampleSurface implements Shape. The sample is nudged inward by a
// negligible relative epsilon so that Contains holds exactly despite
// floating-point rounding.
func (b *Ball) SampleSurface(rng *rand.Rand) geom.Vec3 {
	return geom.RandomOnSphere(rng, geom.Sphere{Center: b.Center, Radius: b.Radius * (1 - 1e-12)})
}

// SurfaceComponents implements Shape.
func (b *Ball) SurfaceComponents() int { return 1 }

// Box is a solid axis-aligned box.
type Box struct {
	B geom.AABB
}

// NewBox returns a solid box spanning the given corners.
func NewBox(min, max geom.Vec3) *Box {
	return &Box{B: geom.NewAABB(min, max)}
}

// Name implements Shape.
func (b *Box) Name() string { return "box" }

// Bounds implements Shape.
func (b *Box) Bounds() geom.AABB { return b.B }

// Contains implements Shape.
func (b *Box) Contains(p geom.Vec3) bool { return b.B.Contains(p) }

// SampleSurface implements Shape. Faces are chosen with probability
// proportional to their area, so sampling is exactly uniform over the
// surface.
func (b *Box) SampleSurface(rng *rand.Rand) geom.Vec3 {
	s := b.B.Size()
	axy := s.X * s.Y
	ayz := s.Y * s.Z
	axz := s.X * s.Z
	total := 2 * (axy + ayz + axz)
	u := rng.Float64() * total
	p := geom.RandomInBox(rng, b.B)
	switch {
	case u < axy:
		p.Z = b.B.Min.Z
	case u < 2*axy:
		p.Z = b.B.Max.Z
	case u < 2*axy+ayz:
		p.X = b.B.Min.X
	case u < 2*axy+2*ayz:
		p.X = b.B.Max.X
	case u < 2*axy+2*ayz+axz:
		p.Y = b.B.Min.Y
	default:
		p.Y = b.B.Max.Y
	}
	return p
}

// SurfaceComponents implements Shape.
func (b *Box) SurfaceComponents() int { return 1 }

// compile-time interface checks
var (
	_ Shape = (*Ball)(nil)
	_ Shape = (*Box)(nil)
)
