package shapes

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// ErrBadPipe is returned for geometrically invalid pipe parameters.
var ErrBadPipe = errors.New("shapes: pipe requires 0 < TubeRadius < BendRadius and 0 < Span < 2π")

// BentPipe is a solid elbow — the Fig. 9 scenario. Its centerline is the
// circular arc of radius BendRadius in the z=0 plane around the origin,
// sweeping angles [0, Span]. The solid is every point within TubeRadius of
// the arc, which gives a torus segment with hemispherical end caps.
type BentPipe struct {
	BendRadius float64
	TubeRadius float64
	Span       float64 // radians, in (0, 2π)

	tubeArea float64 // lateral torus-segment area
	capArea  float64 // one hemispherical cap
}

// NewBentPipe validates the parameters and returns the pipe.
func NewBentPipe(bendRadius, tubeRadius, span float64) (*BentPipe, error) {
	if !(tubeRadius > 0 && tubeRadius < bendRadius && span > 0 && span < 2*math.Pi) {
		return nil, ErrBadPipe
	}
	return &BentPipe{
		BendRadius: bendRadius,
		TubeRadius: tubeRadius,
		Span:       span,
		tubeArea:   span * 2 * math.Pi * tubeRadius * bendRadius,
		capArea:    2 * math.Pi * tubeRadius * tubeRadius,
	}, nil
}

// Name implements Shape.
func (p *BentPipe) Name() string {
	return fmt.Sprintf("bent-pipe(R=%.3g,r=%.3g,span=%.3g)", p.BendRadius, p.TubeRadius, p.Span)
}

// Bounds implements Shape. A loose but correct box: the full torus bound.
func (p *BentPipe) Bounds() geom.AABB {
	r := p.BendRadius + p.TubeRadius
	return geom.NewAABB(geom.V(-r, -r, -p.TubeRadius), geom.V(r, r, p.TubeRadius))
}

// centerline returns the arc point at angle phi.
func (p *BentPipe) centerline(phi float64) geom.Vec3 {
	return geom.V(p.BendRadius*math.Cos(phi), p.BendRadius*math.Sin(phi), 0)
}

// Contains implements Shape: within TubeRadius of the closest centerline
// point (the angular clamp yields the rounded end caps).
func (p *BentPipe) Contains(q geom.Vec3) bool {
	phi := math.Atan2(q.Y, q.X)
	if phi < 0 {
		phi += 2 * math.Pi
	}
	rt2 := p.TubeRadius * p.TubeRadius
	if phi <= p.Span {
		return q.Dist2(p.centerline(phi)) <= rt2
	}
	return q.Dist2(p.centerline(0)) <= rt2 || q.Dist2(p.centerline(p.Span)) <= rt2
}

// SampleSurface implements Shape. The torus segment and the two caps are
// chosen by area; the tube angle θ uses rejection to account for the
// (R + r·cosθ) area element, making the sampler uniform over the surface.
func (p *BentPipe) SampleSurface(rng *rand.Rand) geom.Vec3 {
	total := p.tubeArea + 2*p.capArea
	u := rng.Float64() * total
	switch {
	case u < p.tubeArea:
		phi := rng.Float64() * p.Span
		theta := p.sampleTubeAngle(rng)
		radial := geom.V(math.Cos(phi), math.Sin(phi), 0)
		// Nudge the tube radius inward by a negligible epsilon so that
		// Contains holds exactly despite floating-point rounding.
		rt := p.TubeRadius * (1 - 1e-12)
		ring := p.BendRadius + rt*math.Cos(theta)
		return radial.Scale(ring).Add(geom.V(0, 0, rt*math.Sin(theta)))
	case u < p.tubeArea+p.capArea:
		// Start cap: hemisphere facing the outward tangent at φ=0.
		return p.capPoint(rng, p.centerline(0), geom.V(0, -1, 0))
	default:
		// End cap at φ=Span; outward tangent is the arc tangent there.
		out := geom.V(-math.Sin(p.Span), math.Cos(p.Span), 0)
		return p.capPoint(rng, p.centerline(p.Span), out)
	}
}

// sampleTubeAngle draws θ with density ∝ (R + r·cosθ) on [0, 2π).
func (p *BentPipe) sampleTubeAngle(rng *rand.Rand) float64 {
	max := p.BendRadius + p.TubeRadius
	for {
		theta := rng.Float64() * 2 * math.Pi
		if rng.Float64()*max <= p.BendRadius+p.TubeRadius*math.Cos(theta) {
			return theta
		}
	}
}

// capPoint draws a uniform point on the hemisphere of radius TubeRadius
// around center facing the outward direction.
func (p *BentPipe) capPoint(rng *rand.Rand, center, outward geom.Vec3) geom.Vec3 {
	d := geom.RandomUnitVector(rng)
	if d.Dot(outward) < 0 {
		d = d.Neg()
	}
	return center.Add(d.Scale(p.TubeRadius * (1 - 1e-12)))
}

// SurfaceComponents implements Shape.
func (p *BentPipe) SurfaceComponents() int { return 1 }

var _ Shape = (*BentPipe)(nil)
