package shapes

import (
	"math"

	"repro/internal/geom"
)

// DistanceField is implemented by shapes that can report the distance from
// a point to their nearest boundary surface. The evaluation uses it to
// measure how far a reconstructed mesh drifts from the true boundary
// (the quantitative form of the paper's "mesh not seriously deformed"
// claim in Figs. 1(j)–(l)).
type DistanceField interface {
	// SurfaceDistance returns the unsigned distance from p to the
	// shape's nearest boundary surface (outer or cavity).
	SurfaceDistance(p geom.Vec3) float64
}

// SurfaceDistance implements DistanceField.
func (b *Ball) SurfaceDistance(p geom.Vec3) float64 {
	return math.Abs(p.Dist(b.Center) - b.Radius)
}

// boxSurfaceDistance returns the unsigned distance from p to the boundary
// of an axis-aligned box.
func boxSurfaceDistance(box geom.AABB, p geom.Vec3) float64 {
	if box.Contains(p) {
		// Inside: nearest face.
		return min6(
			p.X-box.Min.X, box.Max.X-p.X,
			p.Y-box.Min.Y, box.Max.Y-p.Y,
			p.Z-box.Min.Z, box.Max.Z-p.Z,
		)
	}
	// Outside: distance to the box (clamp).
	dx := math.Max(math.Max(box.Min.X-p.X, 0), p.X-box.Max.X)
	dy := math.Max(math.Max(box.Min.Y-p.Y, 0), p.Y-box.Max.Y)
	dz := math.Max(math.Max(box.Min.Z-p.Z, 0), p.Z-box.Max.Z)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

func min6(a, b, c, d, e, f float64) float64 {
	m := a
	for _, v := range [...]float64{b, c, d, e, f} {
		if v < m {
			m = v
		}
	}
	return m
}

// SurfaceDistance implements DistanceField.
func (b *Box) SurfaceDistance(p geom.Vec3) float64 {
	return boxSurfaceDistance(b.B, p)
}

// SurfaceDistance implements DistanceField: the nearest of the outer box
// faces and every cavity sphere.
func (s *BoxWithHoles) SurfaceDistance(p geom.Vec3) float64 {
	d := boxSurfaceDistance(s.Outer, p)
	for _, h := range s.Holes {
		if hd := math.Abs(p.Dist(h.Center) - h.Radius); hd < d {
			d = hd
		}
	}
	return d
}

// SurfaceDistance implements DistanceField.
func (t *Torus) SurfaceDistance(p geom.Vec3) float64 {
	ringDist := math.Hypot(p.X, p.Y) - t.RingRadius
	return math.Abs(math.Hypot(ringDist, p.Z) - t.TubeRadius)
}

// SurfaceDistance implements DistanceField: distance to the capsule
// surface around the clamped centerline arc.
func (p *BentPipe) SurfaceDistance(q geom.Vec3) float64 {
	phi := math.Atan2(q.Y, q.X)
	if phi < 0 {
		phi += 2 * math.Pi
	}
	var axisDist float64
	if phi <= p.Span {
		axisDist = q.Dist(p.centerline(phi))
	} else {
		axisDist = math.Min(q.Dist(p.centerline(0)), q.Dist(p.centerline(p.Span)))
	}
	return math.Abs(axisDist - p.TubeRadius)
}

// SurfaceDistance implements DistanceField. The seabed term uses the
// vertical offset divided by the local slope factor — a first-order
// approximation of true distance that is exact on flat bed regions and
// slightly conservative on slopes.
func (u *Underwater) SurfaceDistance(p geom.Vec3) float64 {
	d := math.Abs(u.SurfaceZ - p.Z)
	for _, wall := range [...]float64{
		math.Abs(p.X), math.Abs(u.Width - p.X),
		math.Abs(p.Y), math.Abs(u.Length - p.Y),
	} {
		if wall < d {
			d = wall
		}
	}
	gx, gy := u.seabedGradient(p.X, p.Y)
	bed := math.Abs(p.Z-u.Seabed(p.X, p.Y)) / math.Sqrt(1+gx*gx+gy*gy)
	if bed < d {
		d = bed
	}
	return d
}

// Compile-time checks: every deployment shape provides a distance field.
var (
	_ DistanceField = (*Ball)(nil)
	_ DistanceField = (*Box)(nil)
	_ DistanceField = (*BoxWithHoles)(nil)
	_ DistanceField = (*Torus)(nil)
	_ DistanceField = (*BentPipe)(nil)
	_ DistanceField = (*Underwater)(nil)
)
