// Package shapes provides the analytic 3D solid models used to deploy
// simulated wireless networks. The paper builds its networks from
// triangulated 3D models processed with TetGen; this package substitutes
// analytic solids with exact inside/outside tests and closed-form (or
// rejection-based, provably uniform) surface samplers. Each shape reproduces
// one of the paper's evaluation scenarios (Figs. 6–10) or the Fig. 1
// network.
package shapes

import (
	"errors"
	"math/rand"

	"repro/internal/geom"
)

// Shape is a closed 3D solid, possibly with internal cavities ("holes" in
// the paper's terminology). The space outside the solid and each cavity
// contribute one boundary surface each.
type Shape interface {
	// Name identifies the shape in logs and experiment tables.
	Name() string
	// Bounds returns a box enclosing the solid.
	Bounds() geom.AABB
	// Contains reports whether p belongs to the solid (boundary points
	// included, cavity interiors excluded).
	Contains(p geom.Vec3) bool
	// SampleSurface draws one point approximately uniformly from the
	// union of all boundary surfaces (outer boundary plus cavities).
	SampleSurface(rng *rand.Rand) geom.Vec3
	// SurfaceComponents returns the number of disjoint boundary
	// surfaces: 1 for a solid without cavities, 1+k with k cavities.
	SurfaceComponents() int
}

// ErrRejectionBudget is returned when interior rejection sampling cannot
// place a point, which indicates a degenerate shape (near-zero volume
// relative to its bounding box).
var ErrRejectionBudget = errors.New("shapes: interior rejection sampling exhausted its budget")

// SampleInterior draws one point uniformly from the solid's interior by
// rejection sampling inside its bounding box.
func SampleInterior(rng *rand.Rand, s Shape) (geom.Vec3, error) {
	box := s.Bounds()
	const maxAttempts = 100000
	for i := 0; i < maxAttempts; i++ {
		p := geom.RandomInBox(rng, box)
		if s.Contains(p) {
			return p, nil
		}
	}
	return geom.Zero, ErrRejectionBudget
}

// SampleInteriorN draws n interior points.
func SampleInteriorN(rng *rand.Rand, s Shape, n int) ([]geom.Vec3, error) {
	pts := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		p, err := SampleInterior(rng, s)
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// SampleSurfaceN draws n surface points.
func SampleSurfaceN(rng *rand.Rand, s Shape, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, s.SampleSurface(rng))
	}
	return pts
}

// VolumeMC estimates the solid's volume by Monte Carlo over its bounding
// box with the given sample count. Used to pick deployment densities and in
// tests; not on any hot path.
func VolumeMC(rng *rand.Rand, s Shape, samples int) float64 {
	if samples <= 0 {
		return 0
	}
	box := s.Bounds()
	hits := 0
	for i := 0; i < samples; i++ {
		if s.Contains(geom.RandomInBox(rng, box)) {
			hits++
		}
	}
	return box.Volume() * float64(hits) / float64(samples)
}
