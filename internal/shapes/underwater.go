package shapes

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// ErrBadUnderwater is returned when the seabed can touch or exceed the
// water surface, which would pinch the solid.
var ErrBadUnderwater = errors.New("shapes: seabed must stay strictly below the surface")

// SeabedWave is one sinusoidal component of the seabed heightfield.
type SeabedWave struct {
	Amplitude float64
	FreqX     float64 // radians per unit length along x
	FreqY     float64
	PhaseX    float64
	PhaseY    float64
}

// Underwater is a column of water — the Fig. 6 scenario: a smooth top
// surface at SurfaceZ and a bumpy seabed given by a sum of sinusoids over
// the rectangle [0,Width]×[0,Length].
type Underwater struct {
	Width    float64
	Length   float64
	SurfaceZ float64
	SeabedZ  float64 // mean seabed depth
	Waves    []SeabedWave

	bedMin, bedMax float64 // seabed height range (numeric bound)
	gradMax        float64 // bound on √(1+|∇bed|²) for rejection sampling
	areaTop        float64
	areaBed        float64 // numeric estimate
	areaWalls      [4]float64
	areaTotal      float64
}

// DefaultUnderwater returns the parameters used by the Fig. 6 experiment:
// a 10×10×4 column with a two-component sinusoidal seabed.
func DefaultUnderwater() *Underwater {
	u, err := NewUnderwater(10, 10, 4, 0.8, []SeabedWave{
		{Amplitude: 0.45, FreqX: 1.3, FreqY: 0.9, PhaseX: 0.4, PhaseY: 1.1},
		{Amplitude: 0.3, FreqX: 2.4, FreqY: 2.9, PhaseX: 2.0, PhaseY: 0.3},
	})
	if err != nil {
		// Fixed literal parameters are always valid; reaching this is a
		// programming error.
		panic(err)
	}
	return u
}

// NewUnderwater validates the parameters, pre-computes the surface-area
// weights numerically, and returns the shape.
func NewUnderwater(width, length, surfaceZ, seabedZ float64, waves []SeabedWave) (*Underwater, error) {
	if width <= 0 || length <= 0 {
		return nil, errors.New("shapes: underwater requires positive width and length")
	}
	u := &Underwater{
		Width:    width,
		Length:   length,
		SurfaceZ: surfaceZ,
		SeabedZ:  seabedZ,
		Waves:    append([]SeabedWave(nil), waves...),
	}
	const grid = 160
	u.bedMin, u.bedMax = math.Inf(1), math.Inf(-1)
	u.gradMax = 1
	var bedArea float64
	cellW, cellL := width/grid, length/grid
	for i := 0; i <= grid; i++ {
		for j := 0; j <= grid; j++ {
			x, y := float64(i)*cellW, float64(j)*cellL
			z := u.Seabed(x, y)
			u.bedMin = math.Min(u.bedMin, z)
			u.bedMax = math.Max(u.bedMax, z)
			gx, gy := u.seabedGradient(x, y)
			factor := math.Sqrt(1 + gx*gx + gy*gy)
			u.gradMax = math.Max(u.gradMax, factor)
			if i < grid && j < grid {
				bedArea += factor * cellW * cellL
			}
		}
	}
	// Margin for grid under-sampling of the gradient bound.
	u.gradMax *= 1.05
	if u.bedMax >= surfaceZ {
		return nil, ErrBadUnderwater
	}

	u.areaTop = width * length
	u.areaBed = bedArea
	// Wall areas by 1D numeric integration of (surface - seabed) along
	// each edge: 0 = x-min, 1 = x-max, 2 = y-min, 3 = y-max.
	const steps = 400
	integrate := func(along float64, edge int) float64 {
		step := along / steps
		var sum float64
		for k := 0; k < steps; k++ {
			t := (float64(k) + 0.5) * step
			var z float64
			switch edge {
			case 0:
				z = u.Seabed(0, t)
			case 1:
				z = u.Seabed(width, t)
			case 2:
				z = u.Seabed(t, 0)
			default:
				z = u.Seabed(t, length)
			}
			sum += (surfaceZ - z) * step
		}
		return sum
	}
	u.areaWalls[0] = integrate(length, 0)
	u.areaWalls[1] = integrate(length, 1)
	u.areaWalls[2] = integrate(width, 2)
	u.areaWalls[3] = integrate(width, 3)
	u.areaTotal = u.areaTop + u.areaBed
	for _, a := range u.areaWalls {
		u.areaTotal += a
	}
	return u, nil
}

// Seabed returns the seabed height at (x, y).
func (u *Underwater) Seabed(x, y float64) float64 {
	z := u.SeabedZ
	for _, w := range u.Waves {
		z += w.Amplitude * math.Sin(w.FreqX*x+w.PhaseX) * math.Sin(w.FreqY*y+w.PhaseY)
	}
	return z
}

// seabedGradient returns (∂z/∂x, ∂z/∂y) analytically.
func (u *Underwater) seabedGradient(x, y float64) (gx, gy float64) {
	for _, w := range u.Waves {
		sx, cx := math.Sincos(w.FreqX*x + w.PhaseX)
		sy, cy := math.Sincos(w.FreqY*y + w.PhaseY)
		gx += w.Amplitude * w.FreqX * cx * sy
		gy += w.Amplitude * w.FreqY * sx * cy
	}
	return gx, gy
}

// Name implements Shape.
func (u *Underwater) Name() string { return "underwater" }

// Bounds implements Shape.
func (u *Underwater) Bounds() geom.AABB {
	return geom.NewAABB(geom.V(0, 0, u.bedMin), geom.V(u.Width, u.Length, u.SurfaceZ))
}

// Contains implements Shape.
func (u *Underwater) Contains(p geom.Vec3) bool {
	if p.X < 0 || p.X > u.Width || p.Y < 0 || p.Y > u.Length || p.Z > u.SurfaceZ {
		return false
	}
	return p.Z >= u.Seabed(p.X, p.Y)
}

// SampleSurface implements Shape. Components (top, seabed, four walls) are
// chosen by area; the seabed uses gradient-weighted rejection so sampling
// is uniform over the true (sloped) bed surface, and walls use rejection
// against the local seabed height.
func (u *Underwater) SampleSurface(rng *rand.Rand) geom.Vec3 {
	sel := rng.Float64() * u.areaTotal
	switch {
	case sel < u.areaTop:
		return geom.V(rng.Float64()*u.Width, rng.Float64()*u.Length, u.SurfaceZ)
	case sel < u.areaTop+u.areaBed:
		for {
			x, y := rng.Float64()*u.Width, rng.Float64()*u.Length
			gx, gy := u.seabedGradient(x, y)
			if rng.Float64()*u.gradMax <= math.Sqrt(1+gx*gx+gy*gy) {
				// Nudge above the bed by a negligible epsilon so
				// Contains holds despite floating-point rounding.
				return geom.V(x, y, u.Seabed(x, y)+1e-12)
			}
		}
	default:
		sel -= u.areaTop + u.areaBed
		edge := 3
		for e, a := range u.areaWalls {
			if sel < a {
				edge = e
				break
			}
			sel -= a
		}
		for {
			t := rng.Float64()
			z := u.bedMin + rng.Float64()*(u.SurfaceZ-u.bedMin)
			var p geom.Vec3
			switch edge {
			case 0:
				p = geom.V(0, t*u.Length, z)
			case 1:
				p = geom.V(u.Width, t*u.Length, z)
			case 2:
				p = geom.V(t*u.Width, 0, z)
			default:
				p = geom.V(t*u.Width, u.Length, z)
			}
			if z >= u.Seabed(p.X, p.Y) {
				return p
			}
		}
	}
}

// SurfaceComponents implements Shape.
func (u *Underwater) SurfaceComponents() int { return 1 }

var _ Shape = (*Underwater)(nil)
