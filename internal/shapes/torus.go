package shapes

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// ErrBadTorus is returned for geometrically invalid torus parameters.
var ErrBadTorus = errors.New("shapes: torus requires 0 < TubeRadius < RingRadius")

// Torus is a solid torus around the z axis: the set of points within
// TubeRadius of the circle of radius RingRadius in the z = 0 plane. It is
// not one of the paper's scenarios; it exists because its boundary is a
// genus-1 surface, whose reconstructed mesh must have Euler characteristic
// 0 instead of 2 — the sharpest topological test of the Sec. III pipeline.
type Torus struct {
	RingRadius float64
	TubeRadius float64
}

// NewTorus validates the parameters and returns the torus.
func NewTorus(ringRadius, tubeRadius float64) (*Torus, error) {
	if !(tubeRadius > 0 && tubeRadius < ringRadius) {
		return nil, ErrBadTorus
	}
	return &Torus{RingRadius: ringRadius, TubeRadius: tubeRadius}, nil
}

// Name implements Shape.
func (t *Torus) Name() string {
	return fmt.Sprintf("torus(R=%.3g,r=%.3g)", t.RingRadius, t.TubeRadius)
}

// Bounds implements Shape.
func (t *Torus) Bounds() geom.AABB {
	r := t.RingRadius + t.TubeRadius
	return geom.NewAABB(geom.V(-r, -r, -t.TubeRadius), geom.V(r, r, t.TubeRadius))
}

// Contains implements Shape: distance from the ring circle ≤ TubeRadius.
func (t *Torus) Contains(p geom.Vec3) bool {
	ringDist := math.Hypot(p.X, p.Y) - t.RingRadius
	return ringDist*ringDist+p.Z*p.Z <= t.TubeRadius*t.TubeRadius
}

// SampleSurface implements Shape, sampling the torus surface uniformly:
// the ring angle φ is uniform; the tube angle θ carries the (R + r·cosθ)
// area element and is drawn by rejection.
func (t *Torus) SampleSurface(rng *rand.Rand) geom.Vec3 {
	phi := rng.Float64() * 2 * math.Pi
	var theta float64
	max := t.RingRadius + t.TubeRadius
	for {
		theta = rng.Float64() * 2 * math.Pi
		if rng.Float64()*max <= t.RingRadius+t.TubeRadius*math.Cos(theta) {
			break
		}
	}
	// Nudge inward so Contains holds despite floating-point rounding.
	rt := t.TubeRadius * (1 - 1e-12)
	ring := t.RingRadius + rt*math.Cos(theta)
	return geom.V(ring*math.Cos(phi), ring*math.Sin(phi), rt*math.Sin(theta))
}

// SurfaceComponents implements Shape.
func (t *Torus) SurfaceComponents() int { return 1 }

var _ Shape = (*Torus)(nil)
