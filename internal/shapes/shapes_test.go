package shapes

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// allShapes returns one instance of every shape for generic conformance
// tests.
func allShapes(t *testing.T) []Shape {
	t.Helper()
	holes1, err := NewBoxWithHoles(geom.V(0, 0, 0), geom.V(10, 10, 10),
		[]geom.Sphere{{Center: geom.V(5, 5, 5), Radius: 2}})
	if err != nil {
		t.Fatal(err)
	}
	holes2, err := NewBoxWithHoles(geom.V(0, 0, 0), geom.V(12, 8, 8),
		[]geom.Sphere{
			{Center: geom.V(3.5, 4, 4), Radius: 1.5},
			{Center: geom.V(8.5, 4, 4), Radius: 1.5},
		})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewBentPipe(6, 1.5, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := NewTorus(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return []Shape{
		torus,
		NewBall(geom.V(1, 2, 3), 4),
		NewBox(geom.V(-1, -2, -3), geom.V(4, 5, 6)),
		holes1,
		holes2,
		pipe,
		DefaultUnderwater(),
	}
}

// Generic conformance: surface samples belong to the solid, lie in bounds,
// and sit on the boundary (small random offsets escape the solid); interior
// samples are contained.
func TestShapeConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, s := range allShapes(t) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			box := s.Bounds()
			if box.IsEmpty() {
				t.Fatal("empty bounds")
			}
			if s.SurfaceComponents() < 1 {
				t.Fatalf("SurfaceComponents = %d", s.SurfaceComponents())
			}
			for i := 0; i < 300; i++ {
				p := s.SampleSurface(rng)
				if !box.Expand(1e-9).Contains(p) {
					t.Fatalf("surface sample %v outside bounds %v", p, box)
				}
				if !s.Contains(p) {
					t.Fatalf("surface sample %v not contained", p)
				}
				// Boundary check: some tiny offset must escape.
				escaped := false
				for k := 0; k < 40; k++ {
					q := p.Add(geom.RandomUnitVector(rng).Scale(1e-6))
					if !s.Contains(q) {
						escaped = true
						break
					}
				}
				if !escaped {
					t.Fatalf("surface sample %v appears interior", p)
				}
			}
			for i := 0; i < 300; i++ {
				p, err := SampleInterior(rng, s)
				if err != nil {
					t.Fatal(err)
				}
				if !s.Contains(p) {
					t.Fatalf("interior sample %v not contained", p)
				}
			}
		})
	}
}

func TestBallGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	b := NewBall(geom.V(1, 1, 1), 2)
	for i := 0; i < 500; i++ {
		p := b.SampleSurface(rng)
		if d := p.Dist(b.Center); math.Abs(d-2) > 1e-9 {
			t.Fatalf("surface sample at distance %v", d)
		}
	}
	if !b.Contains(geom.V(1, 1, 1)) || b.Contains(geom.V(4, 1, 1)) {
		t.Error("Contains wrong")
	}
}

func TestBoxSurfaceOnFaces(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	b := NewBox(geom.V(0, 0, 0), geom.V(2, 3, 4))
	faceHits := map[string]int{}
	for i := 0; i < 4000; i++ {
		p := b.SampleSurface(rng)
		onFace := false
		for _, f := range []struct {
			name  string
			value float64
			coord float64
		}{
			{"x0", 0, p.X}, {"x1", 2, p.X},
			{"y0", 0, p.Y}, {"y1", 3, p.Y},
			{"z0", 0, p.Z}, {"z1", 4, p.Z},
		} {
			if f.coord == f.value {
				faceHits[f.name]++
				onFace = true
				break
			}
		}
		if !onFace {
			t.Fatalf("sample %v not on any face", p)
		}
	}
	// Every face must receive samples; larger faces more often.
	for _, face := range []string{"x0", "x1", "y0", "y1", "z0", "z1"} {
		if faceHits[face] == 0 {
			t.Errorf("face %s never sampled", face)
		}
	}
	if faceHits["x0"] < faceHits["z0"] {
		t.Errorf("area weighting suspect: yz face (area 12) hit %d, xy face (area 6) hit %d",
			faceHits["x0"], faceHits["z0"])
	}
}

func TestBoxWithHolesValidation(t *testing.T) {
	// Hole poking through the outer boundary.
	_, err := NewBoxWithHoles(geom.V(0, 0, 0), geom.V(4, 4, 4),
		[]geom.Sphere{{Center: geom.V(0.5, 2, 2), Radius: 1}})
	if err == nil {
		t.Error("expected error for hole touching boundary")
	}
	// Intersecting holes.
	_, err = NewBoxWithHoles(geom.V(0, 0, 0), geom.V(10, 10, 10),
		[]geom.Sphere{
			{Center: geom.V(4, 5, 5), Radius: 1.5},
			{Center: geom.V(6, 5, 5), Radius: 1.5},
		})
	if err == nil {
		t.Error("expected error for intersecting holes")
	}
	// Hole larger than the box.
	_, err = NewBoxWithHoles(geom.V(0, 0, 0), geom.V(2, 2, 2),
		[]geom.Sphere{{Center: geom.V(1, 1, 1), Radius: 5}})
	if err == nil {
		t.Error("expected error for oversized hole")
	}
}

func TestBoxWithHolesExcludesCavity(t *testing.T) {
	s, err := NewBoxWithHoles(geom.V(0, 0, 0), geom.V(10, 10, 10),
		[]geom.Sphere{{Center: geom.V(5, 5, 5), Radius: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(geom.V(5, 5, 5)) {
		t.Error("cavity center contained")
	}
	if !s.Contains(geom.V(5, 5, 7)) { // exactly on the cavity surface
		t.Error("cavity surface point not contained")
	}
	if !s.Contains(geom.V(1, 1, 1)) {
		t.Error("solid point not contained")
	}
	if s.SurfaceComponents() != 2 {
		t.Errorf("SurfaceComponents = %d, want 2", s.SurfaceComponents())
	}
	// A meaningful share of surface samples must land on the cavity:
	// cavity area fraction = 4π·4 / (600 + 4π·4) ≈ 7.7 %.
	rng := rand.New(rand.NewSource(25))
	onHole := 0
	const n = 5000
	for i := 0; i < n; i++ {
		p := s.SampleSurface(rng)
		if math.Abs(p.Dist(geom.V(5, 5, 5))-2) < 1e-9 {
			onHole++
		}
	}
	frac := float64(onHole) / n
	want := 4 * math.Pi * 4 / (600 + 4*math.Pi*4)
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("cavity sampling fraction = %v, want ≈ %v", frac, want)
	}
}

func TestBentPipeValidation(t *testing.T) {
	cases := []struct{ bend, tube, span float64 }{
		{1, 2, 1},           // tube >= bend
		{5, 0, 1},           // zero tube
		{5, 1, 0},           // zero span
		{5, 1, 2 * math.Pi}, // full circle not supported
		{5, 1, -1},          // negative span
		{-5, 1, 1},          // negative bend
	}
	for _, c := range cases {
		if _, err := NewBentPipe(c.bend, c.tube, c.span); err == nil {
			t.Errorf("NewBentPipe(%v, %v, %v) should fail", c.bend, c.tube, c.span)
		}
	}
}

func TestBentPipeContains(t *testing.T) {
	p, err := NewBentPipe(6, 1.5, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	// On the centerline at mid-span.
	mid := geom.V(6*math.Cos(math.Pi/4), 6*math.Sin(math.Pi/4), 0)
	if !p.Contains(mid) {
		t.Error("centerline point not contained")
	}
	// Origin is far from the arc.
	if p.Contains(geom.Zero) {
		t.Error("origin contained")
	}
	// Beyond the end cap.
	if p.Contains(geom.V(6, -3, 0)) {
		t.Error("point beyond start cap contained")
	}
	// Inside the start cap's rounded end.
	if !p.Contains(geom.V(6, -1, 0)) {
		t.Error("start-cap point not contained")
	}
	// Opposite side of the torus (φ ≈ π, outside span).
	if p.Contains(geom.V(-6, 0, 0)) {
		t.Error("opposite-arc point contained")
	}
}

func TestUnderwaterGeometry(t *testing.T) {
	u := DefaultUnderwater()
	if u.Contains(geom.V(5, 5, 10)) {
		t.Error("point above surface contained")
	}
	if u.Contains(geom.V(5, 5, u.Seabed(5, 5)-0.01)) {
		t.Error("point below seabed contained")
	}
	if !u.Contains(geom.V(5, 5, u.Seabed(5, 5)+0.5)) {
		t.Error("water point not contained")
	}
	if u.Contains(geom.V(-1, 5, 2)) {
		t.Error("point outside x-range contained")
	}
	// Seabed must undulate: range should reflect wave amplitudes.
	if u.bedMax-u.bedMin < 0.5 {
		t.Errorf("seabed too flat: [%v, %v]", u.bedMin, u.bedMax)
	}
	if u.bedMax >= u.SurfaceZ {
		t.Error("seabed reaches surface")
	}
}

func TestUnderwaterValidation(t *testing.T) {
	_, err := NewUnderwater(10, 10, 1, 2, nil) // seabed above surface
	if err == nil {
		t.Error("expected error for seabed above surface")
	}
	_, err = NewUnderwater(0, 10, 4, 1, nil)
	if err == nil {
		t.Error("expected error for zero width")
	}
}

func TestVolumeMC(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	b := NewBall(geom.Zero, 2)
	got := VolumeMC(rng, b, 200000)
	want := 4.0 / 3.0 * math.Pi * 8
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("ball volume = %v, want ≈ %v", got, want)
	}
	if VolumeMC(rng, b, 0) != 0 {
		t.Error("zero samples should give zero volume")
	}
}

// emptyShape is a degenerate shape used to exercise the rejection budget.
type emptyShape struct{}

func (emptyShape) Name() string                       { return "empty" }
func (emptyShape) Bounds() geom.AABB                  { return geom.NewAABB(geom.Zero, geom.V(1, 1, 1)) }
func (emptyShape) Contains(geom.Vec3) bool            { return false }
func (emptyShape) SampleSurface(*rand.Rand) geom.Vec3 { return geom.Zero }
func (emptyShape) SurfaceComponents() int             { return 1 }

func TestSampleInteriorBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	if _, err := SampleInterior(rng, emptyShape{}); err != ErrRejectionBudget {
		t.Errorf("err = %v, want ErrRejectionBudget", err)
	}
	if _, err := SampleInteriorN(rng, emptyShape{}, 3); err == nil {
		t.Error("SampleInteriorN should propagate the budget error")
	}
}

func TestSampleHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	b := NewBall(geom.Zero, 1)
	surf := SampleSurfaceN(rng, b, 10)
	if len(surf) != 10 {
		t.Fatalf("SampleSurfaceN returned %d points", len(surf))
	}
	interior, err := SampleInteriorN(rng, b, 10)
	if err != nil || len(interior) != 10 {
		t.Fatalf("SampleInteriorN: %v, %d points", err, len(interior))
	}
}

func TestTorusValidation(t *testing.T) {
	if _, err := NewTorus(1, 2); err != ErrBadTorus {
		t.Errorf("tube > ring: err = %v", err)
	}
	if _, err := NewTorus(2, 0); err != ErrBadTorus {
		t.Errorf("zero tube: err = %v", err)
	}
}

func TestTorusGeometry(t *testing.T) {
	tor, err := NewTorus(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Ring circle is inside; axis and far field are not.
	if !tor.Contains(geom.V(5, 0, 0)) {
		t.Error("ring point not contained")
	}
	if tor.Contains(geom.Zero) {
		t.Error("axis point contained")
	}
	if tor.Contains(geom.V(5, 0, 2)) {
		t.Error("point above tube contained")
	}
	// The central hole is genuine: the z axis neighborhood is empty.
	if tor.Contains(geom.V(0, 0, 0.5)) || tor.Contains(geom.V(1, 1, 0)) {
		t.Error("hole region contained")
	}
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < 2000; i++ {
		p := tor.SampleSurface(rng)
		ringDist := math.Hypot(p.X, p.Y) - 5
		d := math.Sqrt(ringDist*ringDist + p.Z*p.Z)
		if math.Abs(d-1.5) > 1e-6 {
			t.Fatalf("surface sample at tube distance %v", d)
		}
	}
}
