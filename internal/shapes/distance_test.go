package shapes

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestSurfaceDistanceConformance: surface samples must report ~0 distance;
// the distance must never exceed the true distance to any sampled surface
// point (it is a distance to the *nearest* surface).
func TestSurfaceDistanceConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, s := range allShapes(t) {
		df, ok := s.(DistanceField)
		if !ok {
			t.Errorf("%s does not implement DistanceField", s.Name())
			continue
		}
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			surface := SampleSurfaceN(rng, s, 200)
			for _, p := range surface {
				if d := df.SurfaceDistance(p); d > 1e-6 {
					t.Fatalf("surface sample %v at distance %v", p, d)
				}
			}
			// Upper-bound property: for random interior points, the
			// reported distance is at most the distance to any
			// surface sample.
			for i := 0; i < 50; i++ {
				p, err := SampleInterior(rng, s)
				if err != nil {
					t.Fatal(err)
				}
				d := df.SurfaceDistance(p)
				if d < 0 {
					t.Fatalf("negative distance %v", d)
				}
				for _, q := range surface[:40] {
					if d > p.Dist(q)+1e-6 {
						t.Fatalf("distance %v exceeds sample distance %v at %v",
							d, p.Dist(q), p)
					}
				}
			}
		})
	}
}

func TestSurfaceDistanceKnownValues(t *testing.T) {
	b := NewBall(geom.Zero, 2)
	if d := b.SurfaceDistance(geom.Zero); math.Abs(d-2) > 1e-12 {
		t.Errorf("ball center distance = %v", d)
	}
	if d := b.SurfaceDistance(geom.V(3, 0, 0)); math.Abs(d-1) > 1e-12 {
		t.Errorf("ball outside distance = %v", d)
	}

	box := NewBox(geom.V(0, 0, 0), geom.V(4, 4, 4))
	if d := box.SurfaceDistance(geom.V(2, 2, 1)); math.Abs(d-1) > 1e-12 {
		t.Errorf("box inside distance = %v", d)
	}
	if d := box.SurfaceDistance(geom.V(5, 2, 2)); math.Abs(d-1) > 1e-12 {
		t.Errorf("box outside distance = %v", d)
	}
	if d := box.SurfaceDistance(geom.V(5, 5, 4)); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("box corner distance = %v", d)
	}

	holes, err := NewBoxWithHoles(geom.V(0, 0, 0), geom.V(10, 10, 10),
		[]geom.Sphere{{Center: geom.V(5, 5, 5), Radius: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Next to the cavity, the cavity surface is nearest.
	if d := holes.SurfaceDistance(geom.V(5, 5, 7.5)); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("cavity proximity distance = %v", d)
	}

	tor, err := NewTorus(5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := tor.SurfaceDistance(geom.V(5, 0, 0)); math.Abs(d-1.5) > 1e-12 {
		t.Errorf("torus centerline distance = %v", d)
	}

	pipe, err := NewBentPipe(6, 1.5, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if d := pipe.SurfaceDistance(geom.V(6, 0, 0)); math.Abs(d-1.5) > 1e-12 {
		t.Errorf("pipe centerline distance = %v", d)
	}
	// Beyond the start cap: distance measured from the end sphere.
	if d := pipe.SurfaceDistance(geom.V(6, -3, 0)); math.Abs(d-1.5) > 1e-12 {
		t.Errorf("pipe beyond-cap distance = %v", d)
	}

	u := DefaultUnderwater()
	if d := u.SurfaceDistance(geom.V(5, 5, u.SurfaceZ-0.25)); math.Abs(d-0.25) > 1e-9 {
		t.Errorf("underwater top distance = %v", d)
	}
}
