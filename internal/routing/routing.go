// Package routing demonstrates the application the paper motivates its
// surface construction with: greedy geographic routing over the
// reconstructed boundary mesh. Because the mesh is a locally planarized
// 2-manifold, greedy forwarding over its landmark overlay succeeds at high
// rates — the property that makes "available graph theory tools" (Sec. I)
// applicable to 3D boundaries.
package routing

import (
	"errors"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mesh"
)

// ErrNotOnMesh is returned when a routing endpoint is not a mesh vertex.
var ErrNotOnMesh = errors.New("routing: endpoint is not a landmark of the mesh")

// Result is the outcome of one greedy route.
type Result struct {
	// Path lists the traversed landmark IDs, source first. On failure it
	// ends at the stuck node.
	Path []int
	// Success is true when the target was reached.
	Success bool
	// Hops is len(Path)-1 on success.
	Hops int
	// Recoveries counts the local-minimum escapes GreedyWithRecovery
	// performed; always zero for plain Greedy.
	Recoveries int
}

// Overlay is a routable view of a boundary mesh: the landmark graph plus
// landmark positions.
type Overlay struct {
	adj map[int][]int
	pos map[int]geom.Vec3
	ids []int
}

// NewOverlay indexes a surface for routing. Positions come from the
// caller (typically true node positions; local virtual coordinates work
// equally — greedy routing only compares distances).
func NewOverlay(s *mesh.Surface, position func(node int) geom.Vec3) *Overlay {
	o := &Overlay{
		adj: make(map[int][]int, len(s.Landmarks.IDs)),
		pos: make(map[int]geom.Vec3, len(s.Landmarks.IDs)),
		ids: append([]int(nil), s.Landmarks.IDs...),
	}
	for _, lm := range s.Landmarks.IDs {
		o.pos[lm] = position(lm)
	}
	for _, e := range s.Edges {
		o.adj[e[0]] = append(o.adj[e[0]], e[1])
		o.adj[e[1]] = append(o.adj[e[1]], e[0])
	}
	for _, lm := range o.ids {
		sort.Ints(o.adj[lm])
	}
	return o
}

// Landmarks returns the routable vertex IDs.
func (o *Overlay) Landmarks() []int { return o.ids }

// Greedy routes from one landmark to another by always forwarding to the
// neighbor strictly closest to the target; it fails at a local minimum (no
// neighbor improves) or when maxSteps is exhausted.
func (o *Overlay) Greedy(from, to, maxSteps int) (Result, error) {
	if _, ok := o.pos[from]; !ok {
		return Result{}, ErrNotOnMesh
	}
	if _, ok := o.pos[to]; !ok {
		return Result{}, ErrNotOnMesh
	}
	res := Result{Path: []int{from}}
	cur := from
	target := o.pos[to]
	for step := 0; step < maxSteps; step++ {
		if cur == to {
			res.Success = true
			res.Hops = len(res.Path) - 1
			return res, nil
		}
		best := -1
		bestDist := o.pos[cur].Dist(target)
		for _, nb := range o.adj[cur] {
			if d := o.pos[nb].Dist(target); d < bestDist {
				best, bestDist = nb, d
			}
		}
		if best == -1 {
			return res, nil // stuck in a local minimum
		}
		cur = best
		res.Path = append(res.Path, cur)
	}
	if cur == to {
		res.Success = true
		res.Hops = len(res.Path) - 1
	}
	return res, nil
}

// Stats aggregates a routing experiment.
type Stats struct {
	Trials    int
	Delivered int
	// SuccessRate is Delivered/Trials.
	SuccessRate float64
	// AvgStretch is the mean ratio of greedy hops to overlay shortest-path
	// hops over delivered routes (1.0 = always optimal).
	AvgStretch float64
}

// Experiment routes between random landmark pairs and reports delivery
// rate and stretch against the overlay's true shortest paths.
func (o *Overlay) Experiment(trials int, seed int64) (Stats, error) {
	if len(o.ids) < 2 {
		return Stats{}, errors.New("routing: overlay needs at least two landmarks")
	}
	// Build a dense-index graph for shortest-path ground truth.
	index := make(map[int]int, len(o.ids))
	for i, lm := range o.ids {
		index[lm] = i
	}
	g := graph.New(len(o.ids))
	for lm, nbrs := range o.adj {
		for _, nb := range nbrs {
			if lm < nb {
				g.AddEdge(index[lm], index[nb])
			}
		}
	}

	rng := rand.New(rand.NewSource(seed))
	st := Stats{Trials: trials}
	var stretchSum float64
	maxSteps := 4 * len(o.ids)
	for t := 0; t < trials; t++ {
		a := o.ids[rng.Intn(len(o.ids))]
		b := o.ids[rng.Intn(len(o.ids))]
		for b == a {
			b = o.ids[rng.Intn(len(o.ids))]
		}
		res, err := o.Greedy(a, b, maxSteps)
		if err != nil {
			return Stats{}, err
		}
		if !res.Success {
			continue
		}
		opt := g.HopDistance(index[a], index[b], graph.All)
		if opt <= 0 {
			continue // disconnected overlay pair; greedy cannot have succeeded
		}
		st.Delivered++
		stretchSum += float64(res.Hops) / float64(opt)
	}
	if st.Trials > 0 {
		st.SuccessRate = float64(st.Delivered) / float64(st.Trials)
	}
	if st.Delivered > 0 {
		st.AvgStretch = stretchSum / float64(st.Delivered)
	}
	return st, nil
}

// GreedyWithRecovery routes like Greedy but escapes local minima with the
// standard restricted-flooding recovery: a stuck node searches outward
// (breadth-first over the overlay) for the nearest landmark strictly
// closer to the target than itself, splices the discovered path in, and
// resumes greedy forwarding. On a connected overlay delivery is
// guaranteed; Result.Recoveries counts the escapes, the overhead price of
// the guarantee.
func (o *Overlay) GreedyWithRecovery(from, to, maxSteps int) (Result, error) {
	if _, ok := o.pos[from]; !ok {
		return Result{}, ErrNotOnMesh
	}
	if _, ok := o.pos[to]; !ok {
		return Result{}, ErrNotOnMesh
	}
	res := Result{Path: []int{from}}
	cur := from
	target := o.pos[to]
	for len(res.Path) <= maxSteps {
		if cur == to {
			res.Success = true
			res.Hops = len(res.Path) - 1
			return res, nil
		}
		best := -1
		bestDist := o.pos[cur].Dist(target)
		for _, nb := range o.adj[cur] {
			if d := o.pos[nb].Dist(target); d < bestDist {
				best, bestDist = nb, d
			}
		}
		if best != -1 {
			cur = best
			res.Path = append(res.Path, cur)
			continue
		}
		// Local minimum: breadth-first escape to the nearest strictly
		// closer landmark.
		escape := o.escapePath(cur, target)
		if escape == nil {
			return res, nil // overlay component exhausted: undeliverable
		}
		res.Recoveries++
		res.Path = append(res.Path, escape...)
		cur = res.Path[len(res.Path)-1]
	}
	if cur == to {
		res.Success = true
		res.Hops = len(res.Path) - 1
	}
	return res, nil
}

// escapePath finds the shortest overlay path from a stuck landmark to any
// landmark strictly closer to the target position, returning the path
// without its first element (the stuck landmark itself); nil when no such
// landmark is reachable.
func (o *Overlay) escapePath(stuck int, target geom.Vec3) []int {
	stuckDist := o.pos[stuck].Dist(target)
	parent := map[int]int{stuck: stuck}
	queue := []int{stuck}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range o.adj[u] {
			if _, seen := parent[v]; seen {
				continue
			}
			parent[v] = u
			if o.pos[v].Dist(target) < stuckDist {
				// Reconstruct stuck→v, drop the stuck node itself.
				var rev []int
				for cur := v; cur != stuck; cur = parent[cur] {
					rev = append(rev, cur)
				}
				path := make([]int, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return path
			}
			queue = append(queue, v)
		}
	}
	return nil
}
