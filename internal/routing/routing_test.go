package routing

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

// octahedronSurface builds a hand-made mesh surface shaped like an
// octahedron, with positions on the unit sphere.
func octahedronSurface() (*mesh.Surface, func(int) geom.Vec3) {
	s := &mesh.Surface{
		Landmarks: &mesh.Landmarks{IDs: []int{0, 1, 2, 3, 4, 5}},
		Edges: []mesh.Edge{
			{0, 1}, {0, 2}, {0, 3}, {0, 4},
			{1, 5}, {2, 5}, {3, 5}, {4, 5},
			{1, 2}, {2, 3}, {3, 4}, {1, 4},
		},
	}
	pos := map[int]geom.Vec3{
		0: geom.V(0, 0, 1),
		5: geom.V(0, 0, -1),
		1: geom.V(1, 0, 0),
		2: geom.V(0, 1, 0),
		3: geom.V(-1, 0, 0),
		4: geom.V(0, -1, 0),
	}
	return s, func(n int) geom.Vec3 { return pos[n] }
}

func TestGreedyOnOctahedron(t *testing.T) {
	s, pos := octahedronSurface()
	o := NewOverlay(s, pos)
	// Pole to pole: two hops via any equator vertex.
	res, err := o.Greedy(0, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Hops != 2 {
		t.Errorf("pole-to-pole: %+v", res)
	}
	// Self route.
	res, err = o.Greedy(3, 3, 10)
	if err != nil || !res.Success || res.Hops != 0 {
		t.Errorf("self route: %+v, %v", res, err)
	}
	// Every pair on a convex closed mesh delivers.
	for _, a := range o.Landmarks() {
		for _, b := range o.Landmarks() {
			res, err := o.Greedy(a, b, 20)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Success {
				t.Errorf("route %d->%d failed at %v", a, b, res.Path)
			}
		}
	}
}

func TestGreedyValidation(t *testing.T) {
	s, pos := octahedronSurface()
	o := NewOverlay(s, pos)
	if _, err := o.Greedy(99, 0, 10); err != ErrNotOnMesh {
		t.Errorf("bad source: err = %v", err)
	}
	if _, err := o.Greedy(0, 99, 10); err != ErrNotOnMesh {
		t.Errorf("bad target: err = %v", err)
	}
}

func TestGreedyStuck(t *testing.T) {
	// A path overlay bent back on itself: 0 at x=0, 1 at x=2, 2 at x=1.
	// Routing 0 -> 2 must move to 1 first... but 1 is farther from 2
	// than 0? dist(0,2)=1, dist(1,2)=1. No strict improvement: stuck.
	s := &mesh.Surface{
		Landmarks: &mesh.Landmarks{IDs: []int{0, 1, 2}},
		Edges:     []mesh.Edge{{0, 1}, {1, 2}},
	}
	pos := map[int]geom.Vec3{0: geom.V(0, 0, 0), 1: geom.V(2, 0, 0), 2: geom.V(1, 0, 0)}
	o := NewOverlay(s, func(n int) geom.Vec3 { return pos[n] })
	res, err := o.Greedy(0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Errorf("expected local-minimum failure, got %+v", res)
	}
	if len(res.Path) != 1 || res.Path[0] != 0 {
		t.Errorf("stuck path = %v", res.Path)
	}
}

func TestExperimentOnOctahedron(t *testing.T) {
	s, pos := octahedronSurface()
	o := NewOverlay(s, pos)
	st, err := o.Experiment(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.SuccessRate != 1 {
		t.Errorf("success rate = %v, want 1 on a convex mesh", st.SuccessRate)
	}
	if st.AvgStretch < 1 || st.AvgStretch > 1.2 {
		t.Errorf("stretch = %v", st.AvgStretch)
	}
}

func TestExperimentValidation(t *testing.T) {
	s := &mesh.Surface{Landmarks: &mesh.Landmarks{IDs: []int{0}}}
	o := NewOverlay(s, func(int) geom.Vec3 { return geom.Zero })
	if _, err := o.Experiment(5, 1); err == nil {
		t.Error("single-landmark overlay accepted")
	}
}

// End to end: detect a sphere boundary, build its mesh, and verify greedy
// routing delivers at a high rate — the paper's motivating application.
func TestGreedyOnDetectedSphere(t *testing.T) {
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 4),
		SurfaceNodes:    500,
		InteriorNodes:   1500,
		TargetAvgDegree: 18,
		Seed:            60,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(net, nil, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := mesh.Build(net.G, res.Groups[0], mesh.Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(s, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
	st, err := o.Experiment(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.SuccessRate < 0.9 {
		t.Errorf("success rate on detected sphere mesh = %v, want >= 0.9", st.SuccessRate)
	}
	if st.Delivered > 0 && (math.IsNaN(st.AvgStretch) || st.AvgStretch < 1) {
		t.Errorf("stretch = %v", st.AvgStretch)
	}
}

func TestGreedyWithRecoveryEscapesMinimum(t *testing.T) {
	// The bent-back path from TestGreedyStuck: plain greedy fails,
	// recovery delivers.
	s := &mesh.Surface{
		Landmarks: &mesh.Landmarks{IDs: []int{0, 1, 2}},
		Edges:     []mesh.Edge{{0, 1}, {1, 2}},
	}
	pos := map[int]geom.Vec3{0: geom.V(0, 0, 0), 1: geom.V(2, 0, 0), 2: geom.V(1, 0, 0)}
	o := NewOverlay(s, func(n int) geom.Vec3 { return pos[n] })
	res, err := o.GreedyWithRecovery(0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("recovery failed: %+v", res)
	}
	if res.Recoveries == 0 {
		t.Error("no recovery counted despite the local minimum")
	}
	if res.Path[len(res.Path)-1] != 2 {
		t.Errorf("path = %v", res.Path)
	}
}

func TestGreedyWithRecoveryValidation(t *testing.T) {
	s, pos := octahedronSurface()
	o := NewOverlay(s, pos)
	if _, err := o.GreedyWithRecovery(99, 0, 10); err != ErrNotOnMesh {
		t.Errorf("bad source: err = %v", err)
	}
	if _, err := o.GreedyWithRecovery(0, 99, 10); err != ErrNotOnMesh {
		t.Errorf("bad target: err = %v", err)
	}
	// On a convex mesh recovery is never needed and results match greedy.
	for _, a := range o.Landmarks() {
		for _, b := range o.Landmarks() {
			res, err := o.GreedyWithRecovery(a, b, 20)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Success || res.Recoveries != 0 {
				t.Errorf("route %d->%d: %+v", a, b, res)
			}
		}
	}
}

func TestGreedyWithRecoveryUndeliverable(t *testing.T) {
	// Disconnected overlay: target unreachable, recovery must give up.
	s := &mesh.Surface{
		Landmarks: &mesh.Landmarks{IDs: []int{0, 1, 2, 3}},
		Edges:     []mesh.Edge{{0, 1}, {2, 3}},
	}
	pos := map[int]geom.Vec3{
		0: geom.V(0, 0, 0), 1: geom.V(1, 0, 0),
		2: geom.V(5, 0, 0), 3: geom.V(6, 0, 0),
	}
	o := NewOverlay(s, func(n int) geom.Vec3 { return pos[n] })
	res, err := o.GreedyWithRecovery(0, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Errorf("delivered across a disconnected overlay: %+v", res)
	}
}

// On the detected underwater-style mesh (sharp corners defeat plain
// greedy), recovery should push delivery to 100 % within each connected
// overlay component.
func TestGreedyWithRecoveryOnDetectedSphere(t *testing.T) {
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 4),
		SurfaceNodes:    500,
		InteriorNodes:   1500,
		TargetAvgDegree: 18,
		Seed:            60,
	})
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.Detect(net, nil, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := mesh.Build(net.G, det.Groups[0], mesh.Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(s, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
	lms := o.Landmarks()
	delivered, attempts := 0, 0
	for i := 0; i < len(lms); i++ {
		for j := i + 1; j < len(lms); j++ {
			res, err := o.GreedyWithRecovery(lms[i], lms[j], 10*len(lms))
			if err != nil {
				t.Fatal(err)
			}
			attempts++
			if res.Success {
				delivered++
			}
		}
	}
	// The largest overlay component dominates; allow a sliver of
	// cross-component pairs.
	if rate := float64(delivered) / float64(attempts); rate < 0.98 {
		t.Errorf("recovery delivery rate = %.3f, want >= 0.98", rate)
	}
}
