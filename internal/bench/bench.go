// Package bench defines the machine-readable benchmark baseline format
// (BENCH_<name>.json) shared by `go test -bench` (via the BENCH_JSON
// environment variable) and cmd/experiment's -bench flag. A baseline is a
// named set of stages, each carrying wall time, iteration count, and the
// pipeline's own work counters (balls tested, nodes checked) plus
// allocation figures — enough to compare two commits stage by stage
// without re-parsing human-oriented benchmark output.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Host describes the machine a baseline was measured on. Wall-time and
// allocation numbers are only comparable between runs on the same
// hardware, so diff tooling (cmd/tracestat) refuses to compare baselines
// whose hosts differ unless explicitly overridden. The zero value means
// "unrecorded" (baselines written before this field existed) and is
// never treated as a mismatch.
type Host struct {
	// CPUModel is the CPU's self-reported model name ("" when the
	// platform doesn't expose one).
	CPUModel string `json:"cpu_model,omitempty"`
	// NumCPU is runtime.NumCPU at measurement time.
	NumCPU int `json:"num_cpu,omitempty"`
	// OS and Arch are runtime.GOOS / runtime.GOARCH.
	OS   string `json:"os,omitempty"`
	Arch string `json:"arch,omitempty"`
}

// IsZero reports whether no host information was recorded.
func (h Host) IsZero() bool { return h == Host{} }

// Equal reports whether two recorded hosts describe the same machine.
func (h Host) Equal(o Host) bool { return h == o }

// String renders the host for diff-refusal messages.
func (h Host) String() string {
	if h.IsZero() {
		return "unrecorded"
	}
	cpu := h.CPUModel
	if cpu == "" {
		cpu = "unknown cpu"
	}
	return fmt.Sprintf("%s × %d (%s/%s)", cpu, h.NumCPU, h.OS, h.Arch)
}

// CurrentHost describes the machine this process runs on. The CPU model
// is read best-effort from /proc/cpuinfo (Linux); elsewhere it stays
// empty and the remaining fields still pin the host down.
func CurrentHost() Host {
	return Host{
		CPUModel: cpuModel(),
		NumCPU:   runtime.NumCPU(),
		OS:       runtime.GOOS,
		Arch:     runtime.GOARCH,
	}
}

// cpuModel extracts the first "model name" entry from /proc/cpuinfo.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "model name") {
			continue
		}
		if _, val, ok := strings.Cut(line, ":"); ok {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// Stage is one timed pipeline stage or benchmark case.
type Stage struct {
	// Name identifies the stage ("ubf", "mds", "iff", ...) or the
	// benchmark case ("UBFPerDegree/degree18").
	Name string `json:"name"`
	// WallNS is the total wall-clock time in nanoseconds over Ops runs.
	WallNS int64 `json:"wall_ns"`
	// Ops is how many times the stage ran; NSPerOp = WallNS/Ops.
	Ops int64 `json:"ops"`
	// NSPerOp is the per-run wall time, precomputed for readers.
	NSPerOp float64 `json:"ns_per_op"`
	// BallsTested and NodesChecked carry the UBF work counters summed
	// over the stage's runs; zero for stages without them.
	BallsTested  int64 `json:"balls_tested,omitempty"`
	NodesChecked int64 `json:"nodes_checked,omitempty"`
	// Allocs and Bytes are per-op heap figures when measured (from
	// testing.B); zero when not collected.
	Allocs int64 `json:"allocs_per_op,omitempty"`
	Bytes  int64 `json:"bytes_per_op,omitempty"`
}

// Baseline is one benchmark run's machine-readable record.
type Baseline struct {
	// Name labels the run (the date for `make bench`, a free-form tag
	// otherwise).
	Name string `json:"name"`
	// CreatedAt is an RFC 3339 timestamp supplied by the caller.
	CreatedAt string `json:"created_at"`
	// GoVersion and GOMAXPROCS describe the environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Host pins the measuring machine; the zero value means a baseline
	// written before host stamping existed.
	Host Host `json:"host,omitempty"`
	// Scale records the deployment scale factor the stages ran at.
	Scale float64 `json:"scale,omitempty"`
	// Stages is sorted by name on write for stable diffs.
	Stages []Stage `json:"stages"`
}

// New returns a Baseline stamped with the current environment.
func New(name, createdAt string, scale float64) *Baseline {
	return &Baseline{
		Name:       name,
		CreatedAt:  createdAt,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       CurrentHost(),
		Scale:      scale,
	}
}

// Validate checks structural invariants: a name, no duplicate or unnamed
// stages, and consistent per-op figures.
func (b *Baseline) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("bench: baseline has no name")
	}
	seen := make(map[string]bool, len(b.Stages))
	for _, s := range b.Stages {
		if s.Name == "" {
			return fmt.Errorf("bench: unnamed stage")
		}
		if seen[s.Name] {
			return fmt.Errorf("bench: duplicate stage %q", s.Name)
		}
		seen[s.Name] = true
		if s.Ops < 0 || s.WallNS < 0 {
			return fmt.Errorf("bench: stage %q has negative counters", s.Name)
		}
		if s.Ops > 0 {
			want := float64(s.WallNS) / float64(s.Ops)
			if diff := s.NSPerOp - want; diff > 1 || diff < -1 {
				return fmt.Errorf("bench: stage %q ns_per_op %.1f inconsistent with wall_ns/ops %.1f",
					s.Name, s.NSPerOp, want)
			}
		}
	}
	return nil
}

// WriteFile validates and writes the baseline as indented JSON, stages
// sorted by name.
func (b *Baseline) WriteFile(path string) error {
	sort.Slice(b.Stages, func(i, j int) bool { return b.Stages[i].Name < b.Stages[j].Name })
	if err := b.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &b, nil
}

// Recorder accumulates stages concurrently. Stages recorded under the same
// name are summed (wall time, ops, counters), so per-shard measurements
// fold into one line.
type Recorder struct {
	mu     sync.Mutex
	stages map[string]*Stage
}

// Record folds one measurement into the named stage.
func (r *Recorder) Record(s Stage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stages == nil {
		r.stages = make(map[string]*Stage)
	}
	acc, ok := r.stages[s.Name]
	if !ok {
		acc = &Stage{Name: s.Name}
		r.stages[s.Name] = acc
	}
	acc.WallNS += s.WallNS
	acc.Ops += s.Ops
	acc.BallsTested += s.BallsTested
	acc.NodesChecked += s.NodesChecked
	// Per-op alloc figures don't sum across shards; keep the latest
	// non-zero observation.
	if s.Allocs != 0 {
		acc.Allocs = s.Allocs
	}
	if s.Bytes != 0 {
		acc.Bytes = s.Bytes
	}
	if acc.Ops > 0 {
		acc.NSPerOp = float64(acc.WallNS) / float64(acc.Ops)
	}
}

// Stages returns the accumulated stages sorted by name.
func (r *Recorder) Stages() []Stage {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Stage, 0, len(r.stages))
	for _, s := range r.stages {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
