package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	b := New("2026-08-05", "2026-08-05T12:00:00Z", 0.15)
	b.Stages = []Stage{
		{Name: "ubf", WallNS: 3_000_000, Ops: 3, NSPerOp: 1_000_000,
			BallsTested: 1234, NodesChecked: 56789, Allocs: 0, Bytes: 0},
		{Name: "mds", WallNS: 500_000, Ops: 1, NSPerOp: 500_000},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// WriteFile sorts stages by name; compare against the sorted original.
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, b)
	}
	if b.Stages[0].Name != "mds" {
		t.Fatalf("WriteFile did not sort stages: %+v", b.Stages)
	}
}

func TestValidateRejectsBadBaselines(t *testing.T) {
	cases := []struct {
		name string
		b    Baseline
	}{
		{"no name", Baseline{}},
		{"unnamed stage", Baseline{Name: "x", Stages: []Stage{{}}}},
		{"duplicate stage", Baseline{Name: "x", Stages: []Stage{
			{Name: "a", Ops: 1, WallNS: 10, NSPerOp: 10},
			{Name: "a", Ops: 1, WallNS: 10, NSPerOp: 10}}}},
		{"negative ops", Baseline{Name: "x", Stages: []Stage{{Name: "a", Ops: -1}}}},
		{"inconsistent ns/op", Baseline{Name: "x", Stages: []Stage{
			{Name: "a", Ops: 2, WallNS: 100, NSPerOp: 99}}}},
	}
	for _, tc := range cases {
		if err := tc.b.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid baseline", tc.name)
		}
	}
}

func TestRecorderFoldsShards(t *testing.T) {
	var r Recorder
	r.Record(Stage{Name: "ubf", WallNS: 100, Ops: 1, BallsTested: 10, NodesChecked: 40})
	r.Record(Stage{Name: "ubf", WallNS: 300, Ops: 1, BallsTested: 30, NodesChecked: 80})
	r.Record(Stage{Name: "mds", WallNS: 50, Ops: 1})
	got := r.Stages()
	want := []Stage{
		{Name: "mds", WallNS: 50, Ops: 1, NSPerOp: 50},
		{Name: "ubf", WallNS: 400, Ops: 2, NSPerOp: 200, BallsTested: 40, NodesChecked: 120},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fold mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCurrentHost(t *testing.T) {
	h := CurrentHost()
	if h.IsZero() {
		t.Fatal("CurrentHost returned the zero (unrecorded) host")
	}
	if h.NumCPU < 1 || h.OS == "" || h.Arch == "" {
		t.Errorf("incomplete host: %+v", h)
	}
	if !h.Equal(CurrentHost()) {
		t.Error("CurrentHost is not stable within a process")
	}
	if h.String() == "unrecorded" {
		t.Error("recorded host rendered as unrecorded")
	}
	if (Host{}).String() != "unrecorded" {
		t.Errorf("zero host String = %q", Host{}.String())
	}
}

func TestNewStampsHost(t *testing.T) {
	b := New("x", "2026-08-05T12:00:00Z", 1)
	if b.Host.IsZero() {
		t.Fatal("New did not stamp the host")
	}
	if !b.Host.Equal(CurrentHost()) {
		t.Errorf("stamped host %+v differs from CurrentHost %+v", b.Host, CurrentHost())
	}
}

func TestLoadAcceptsHostlessBaseline(t *testing.T) {
	// Baselines written before host stamping have no "host" key; they must
	// load with the zero (unrecorded) host.
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	raw := `{"name":"old","created_at":"2026-01-01T00:00:00Z","go_version":"go1.22",` +
		`"gomaxprocs":1,"stages":[{"name":"ubf","wall_ns":100,"ops":1,"ns_per_op":100}]}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Host.IsZero() {
		t.Errorf("hostless baseline loaded host %+v", b.Host)
	}
}
