package bench

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	b := New("2026-08-05", "2026-08-05T12:00:00Z", 0.15)
	b.Stages = []Stage{
		{Name: "ubf", WallNS: 3_000_000, Ops: 3, NSPerOp: 1_000_000,
			BallsTested: 1234, NodesChecked: 56789, Allocs: 0, Bytes: 0},
		{Name: "mds", WallNS: 500_000, Ops: 1, NSPerOp: 500_000},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// WriteFile sorts stages by name; compare against the sorted original.
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, b)
	}
	if b.Stages[0].Name != "mds" {
		t.Fatalf("WriteFile did not sort stages: %+v", b.Stages)
	}
}

func TestValidateRejectsBadBaselines(t *testing.T) {
	cases := []struct {
		name string
		b    Baseline
	}{
		{"no name", Baseline{}},
		{"unnamed stage", Baseline{Name: "x", Stages: []Stage{{}}}},
		{"duplicate stage", Baseline{Name: "x", Stages: []Stage{
			{Name: "a", Ops: 1, WallNS: 10, NSPerOp: 10},
			{Name: "a", Ops: 1, WallNS: 10, NSPerOp: 10}}}},
		{"negative ops", Baseline{Name: "x", Stages: []Stage{{Name: "a", Ops: -1}}}},
		{"inconsistent ns/op", Baseline{Name: "x", Stages: []Stage{
			{Name: "a", Ops: 2, WallNS: 100, NSPerOp: 99}}}},
	}
	for _, tc := range cases {
		if err := tc.b.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid baseline", tc.name)
		}
	}
}

func TestRecorderFoldsShards(t *testing.T) {
	var r Recorder
	r.Record(Stage{Name: "ubf", WallNS: 100, Ops: 1, BallsTested: 10, NodesChecked: 40})
	r.Record(Stage{Name: "ubf", WallNS: 300, Ops: 1, BallsTested: 30, NodesChecked: 80})
	r.Record(Stage{Name: "mds", WallNS: 50, Ops: 1})
	got := r.Stages()
	want := []Stage{
		{Name: "mds", WallNS: 50, Ops: 1, NSPerOp: 50},
		{Name: "ubf", WallNS: 400, Ops: 2, NSPerOp: 200, BallsTested: 40, NodesChecked: 120},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fold mismatch:\n got %+v\nwant %+v", got, want)
	}
}
