package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/ranging"
	"repro/internal/sim"
)

// TestDetectContextObservedBitIdentical: observation must never change
// what the pipeline computes. For every kernel/fault configuration the
// observed run's Result is reflect.DeepEqual to the unobserved one, the
// trace's spans are balanced, and the counters match the Result's own
// accounting.
func TestDetectContextObservedBitIdentical(t *testing.T) {
	net, _ := fixtures(t)
	faults := sim.FaultConfig{
		Seed:            7,
		DropRate:        0.2,
		MaxDropsPerLink: 2,
		DuplicateRate:   0.1,
		DelayRate:       0.2,
		MaxExtraDelay:   2,
	}
	cases := map[string]Config{
		"sync":         {},
		"async":        {Async: true, AsyncSeed: 3},
		"faulty-sync":  {Faults: faults, RetransmitBudget: 3},
		"faulty-async": {Async: true, AsyncSeed: 3, Faults: faults, RetransmitBudget: 3},
		"no-iff":       {IFFThreshold: -1},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			plain, err := Detect(net, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m := &obs.Mem{}
			observed, err := DetectContext(context.Background(), m, net, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, observed) {
				t.Fatal("observed Detect result differs from unobserved run")
			}

			if un := m.Unbalanced(); len(un) != 0 {
				t.Errorf("unbalanced spans: %v", un)
			}
			// CoordsTrue runs skip the frames stage; TestDetectContextObservedMDS
			// covers it.
			wantSpans := []obs.Stage{obs.StageDetect, obs.StageUBF, obs.StageIFF, obs.StageGrouping}
			for _, s := range wantSpans {
				if m.Spans(s) != 1 {
					t.Errorf("stage %s: %d spans, want 1", s, m.Spans(s))
				}
			}

			if got := m.Total(obs.StageDetect, obs.CtrNodes); got != int64(len(net.Nodes)) {
				t.Errorf("nodes counter %d, want %d", got, len(net.Nodes))
			}
			if m.Total(obs.StageUBF, obs.CtrBallsTested) == 0 {
				t.Error("no balls tested recorded")
			}
			if m.Total(obs.StageUBF, obs.CtrNodesChecked) == 0 {
				t.Error("no membership checks recorded")
			}
			boundary := int64(0)
			for _, b := range observed.Boundary {
				if b {
					boundary++
				}
			}
			if got := m.Total(obs.StageIFF, obs.CtrBoundary); got != boundary {
				t.Errorf("boundary counter %d, want %d", got, boundary)
			}
			if got := m.Total(obs.StageGrouping, obs.CtrGroups); got != int64(len(observed.Groups)) {
				t.Errorf("groups counter %d, want %d", got, len(observed.Groups))
			}

			// Message accounting: the trace must agree with the Result's
			// own counters, per phase and per fault discipline.
			if !cfg.Faults.Enabled() {
				if got := m.Total(obs.StageIFF, obs.CtrMsgsSent); got != int64(observed.IFFMessages) {
					t.Errorf("IFF msgs_sent %d, want %d", got, observed.IFFMessages)
				}
				if got := m.Total(obs.StageGrouping, obs.CtrMsgsSent); got != int64(observed.GroupingMessages) {
					t.Errorf("grouping msgs_sent %d, want %d", got, observed.GroupingMessages)
				}
				if m.CounterTotal(obs.CtrMsgsDropped) != 0 {
					t.Error("fault-free run recorded drops")
				}
			} else {
				fs := observed.FaultStats
				if got := m.CounterTotal(obs.CtrMsgsSent); got != int64(fs.Attempts) {
					t.Errorf("msgs_sent %d, want fault-layer attempts %d", got, fs.Attempts)
				}
				if got := m.CounterTotal(obs.CtrMsgsDropped); got != int64(fs.TotalDropped()) {
					t.Errorf("msgs_dropped %d, want %d", got, fs.TotalDropped())
				}
				if got := m.CounterTotal(obs.CtrMsgsRetransmitted); got != int64(fs.Retransmits) {
					t.Errorf("msgs_retransmitted %d, want %d", got, fs.Retransmits)
				}
				if m.CounterTotal(obs.CtrMsgsDropped) == 0 {
					t.Error("faulty run recorded no drops — test is vacuous")
				}
			}
			if !cfg.Async {
				if m.CounterTotal(obs.CtrFloodRounds) == 0 {
					t.Error("sync run recorded no flood rounds")
				}
			}
		})
	}
}

// TestDetectContextRoundEvents: the flight recorder's round and
// transition stream must agree with the pipeline's own outputs — one
// boundary claim per UBF-positive node, one rescind per claim IFF
// withdrew, and per-stage round accounting that conserves messages at
// quiescence on both kernels.
func TestDetectContextRoundEvents(t *testing.T) {
	net, _ := fixtures(t)
	cases := map[string]Config{
		"sync":  {},
		"async": {Async: true, AsyncSeed: 3},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			m := &obs.Mem{}
			res, err := DetectContext(context.Background(), m, net, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}

			claims, rescinds := 0, 0
			for i, u := range res.UBF {
				if u {
					claims++
					if !res.Boundary[i] {
						rescinds++
					}
				}
			}
			if got := m.Transitions(obs.TransBoundaryClaim); got != claims {
				t.Errorf("boundary_claim transitions = %d, want %d", got, claims)
			}
			if got := m.Transitions(obs.TransIFFRescind); got != rescinds {
				t.Errorf("iff_rescind transitions = %d, want %d", got, rescinds)
			}
			if m.Transitions(obs.TransLabelAdopt) == 0 {
				t.Error("grouping recorded no label adoptions")
			}

			for _, s := range []obs.Stage{obs.StageIFF, obs.StageGrouping} {
				if m.Rounds(s) == 0 {
					t.Errorf("stage %s recorded no rounds", s)
					continue
				}
				var total obs.RoundStats
				for _, ev := range m.Events() {
					if ev.Kind == obs.KindRoundEnd && ev.Stage == s {
						total.Add(ev.Stats)
					}
				}
				if left := total.Sent + total.Duplicated - total.Delivered - total.Dropped; left != 0 {
					t.Errorf("stage %s: %d message(s) unaccounted at quiescence", s, left)
				}
				if total.Sent == 0 || total.Active == 0 {
					t.Errorf("stage %s: vacuous round accounting %+v", s, total)
				}
			}
		})
	}
}

// TestDetectContextObservedMDS: under CoordsMDS the frames stage gets its
// own balanced span, and the result still matches the unobserved run.
func TestDetectContextObservedMDS(t *testing.T) {
	net, _ := fixtures(t)
	meas := net.Measure(ranging.Exact{}, 0)
	plain, err := Detect(net, meas, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := &obs.Mem{}
	observed, err := DetectContext(context.Background(), m, net, meas, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("observed MDS Detect result differs from unobserved run")
	}
	if m.Spans(obs.StageFrames) != 1 {
		t.Errorf("frames spans = %d, want 1", m.Spans(obs.StageFrames))
	}
	if un := m.Unbalanced(); len(un) != 0 {
		t.Errorf("unbalanced spans: %v", un)
	}
}

// TestDetectContextCancelled: a pre-cancelled context aborts the pipeline
// with the context's error.
func TestDetectContextCancelled(t *testing.T) {
	net, _ := fixtures(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DetectContext(ctx, nil, net, nil, Config{}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// TestDetectNoOpObserverHotPathAllocFree: the UBF hot path — a warmed
// scratch Fit plus the nil-observer accounting exactly as the detection
// loop performs it — must stay allocation-free, so tracing support cannot
// tax unobserved runs.
func TestDetectNoOpObserverHotPathAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	interior := denseNeighborhood(rng, 150)
	boundary := halfSpaceNeighborhood(rng, 150)
	var s UBFScratch
	s.Fit(interior, 0, nil, 1.0, uniformTol(1e-9), -1) // warm the buffers
	s.Fit(boundary, 0, nil, 1.0, uniformTol(1e-9), -1)
	allocs := testing.AllocsPerRun(50, func() {
		span := obs.Start(nil, obs.StageUBF)
		r1 := s.Fit(interior, 0, nil, 1.0, uniformTol(1e-9), -1)
		r2 := s.Fit(boundary, 0, nil, 1.0, uniformTol(1e-9), -1)
		obs.Add(nil, obs.StageUBF, obs.CtrBallsTested, int64(r1.BallsTested+r2.BallsTested))
		obs.Add(nil, obs.StageUBF, obs.CtrNodesChecked, int64(r1.NodesChecked+r2.NodesChecked))
		obs.Add(nil, obs.StageUBF, obs.CtrGridCells, int64(r1.CellsProbed+r2.CellsProbed))
		span.End()
	})
	if allocs != 0 {
		t.Errorf("no-op observed UBF hot path allocates %.1f times per run", allocs)
	}
}
