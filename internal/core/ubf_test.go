package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// halfSpaceNeighborhood builds a frame with the center at the origin and
// neighbors only in the lower half space — the canonical boundary-node
// situation (free space above).
func halfSpaceNeighborhood(rng *rand.Rand, n int) []geom.Vec3 {
	coords := []geom.Vec3{geom.Zero}
	for len(coords) < n+1 {
		p := geom.RandomInBall(rng, geom.Sphere{Radius: 1})
		if p.Z < -0.05 {
			coords = append(coords, p)
		}
	}
	return coords
}

// denseNeighborhood surrounds the center uniformly — the canonical interior
// situation.
func denseNeighborhood(rng *rand.Rand, n int) []geom.Vec3 {
	coords := []geom.Vec3{geom.Zero}
	for len(coords) < n+1 {
		coords = append(coords, geom.RandomInBall(rng, geom.Sphere{Radius: 1}))
	}
	return coords
}

func TestFitEmptyBallBoundaryNode(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 25; trial++ {
		coords := halfSpaceNeighborhood(rng, 10+rng.Intn(15))
		res := FitEmptyBall(coords, 0, 1.0, 1e-9)
		if !res.Boundary {
			t.Fatalf("trial %d: half-space node not detected as boundary", trial)
		}
		if res.BallsTested == 0 || res.NodesChecked == 0 {
			t.Fatalf("trial %d: no work recorded: %+v", trial, res)
		}
	}
}

func TestFitEmptyBallInteriorNode(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		coords := denseNeighborhood(rng, 120)
		res := FitEmptyBall(coords, 0, 1.0, 1e-9)
		if res.Boundary {
			t.Fatalf("trial %d: densely surrounded node detected as boundary", trial)
		}
		// An interior verdict requires exhausting all candidate balls.
		if res.BallsTested == 0 {
			t.Fatalf("trial %d: no balls tested", trial)
		}
	}
}

func TestFitEmptyBallWorkBound(t *testing.T) {
	// Theorem 1: at most 2·C(d,2) balls for degree d.
	rng := rand.New(rand.NewSource(52))
	for _, degree := range []int{5, 10, 20, 40} {
		coords := denseNeighborhood(rng, degree)
		res := FitEmptyBall(coords, 0, 1.0, 1e-9)
		bound := degree * (degree - 1) // 2·C(d,2)
		if res.BallsTested > bound {
			t.Errorf("degree %d: %d balls tested, bound %d", degree, res.BallsTested, bound)
		}
	}
}

func TestFitEmptyBallTooFewNeighbors(t *testing.T) {
	// Fewer than two neighbors: no candidate balls, not boundary by this
	// test (the well-connectedness assumption excludes such nodes).
	res := FitEmptyBall([]geom.Vec3{geom.Zero}, 0, 1, 1e-9)
	if res.Boundary || res.BallsTested != 0 {
		t.Errorf("isolated node: %+v", res)
	}
	res = FitEmptyBall([]geom.Vec3{geom.Zero, geom.V(0.5, 0, 0)}, 0, 1, 1e-9)
	if res.Boundary || res.BallsTested != 0 {
		t.Errorf("single neighbor: %+v", res)
	}
}

func TestFitEmptyBallCenterIndexArbitrary(t *testing.T) {
	// The deciding node need not be at index 0.
	rng := rand.New(rand.NewSource(53))
	coords := halfSpaceNeighborhood(rng, 12)
	// Move the center to the end.
	rotated := append(append([]geom.Vec3(nil), coords[1:]...), coords[0])
	a := FitEmptyBall(coords, 0, 1, 1e-9)
	b := FitEmptyBall(rotated, len(rotated)-1, 1, 1e-9)
	if a.Boundary != b.Boundary {
		t.Errorf("verdict depends on center index: %v vs %v", a.Boundary, b.Boundary)
	}
}

func TestFitEmptyBallRadiusSelectsHoleSize(t *testing.T) {
	// Sec. II-A3: growing r makes small voids undetectable. Build a node
	// on the boundary of a small spherical void of radius 0.6 carved
	// from a dense neighborhood.
	rng := rand.New(rand.NewSource(54))
	const voidR = 0.6
	voidCenter := geom.V(0, 0, voidR) // void touches the origin
	coords := []geom.Vec3{geom.Zero}
	for len(coords) < 400 {
		p := geom.RandomInBall(rng, geom.Sphere{Radius: 1.6})
		if p.Dist(voidCenter) > voidR {
			coords = append(coords, p)
		}
	}
	small := FitEmptyBall(coords, 0, voidR*0.95, 1e-9)
	if !small.Boundary {
		t.Error("r below void radius should detect the void")
	}
	large := FitEmptyBall(coords, 0, voidR*2.5, 1e-9)
	if large.Boundary {
		t.Error("r far above void radius should not detect the void")
	}
}

func TestFitEmptyBallToleranceExcludesDefiningNodes(t *testing.T) {
	// A regular tetrahedron-ish configuration where the only nodes are
	// the three defining a ball: the ball must count as empty (the
	// defining nodes touch, not occupy).
	coords := []geom.Vec3{
		geom.V(0.3, 0, 0),
		geom.V(-0.15, 0.26, 0),
		geom.V(-0.15, -0.26, 0),
	}
	res := FitEmptyBall(coords, 0, 1, 1e-9)
	if !res.Boundary {
		t.Error("three-point frame should always find an empty ball")
	}
}

func TestFitEmptyBallRotationInvariant(t *testing.T) {
	// UBF consumes local frames, so verdicts must be invariant under
	// rigid motion — the property that makes MDS frames (arbitrary
	// orientation) interchangeable with true coordinates.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		var coords []geom.Vec3
		if trial%2 == 0 {
			coords = halfSpaceNeighborhood(rng, 14)
		} else {
			coords = denseNeighborhood(rng, 80)
		}
		angle := rng.Float64() * 2 * math.Pi
		shift := geom.V(rng.Float64()*5, rng.Float64()*5, rng.Float64()*5)
		moved := make([]geom.Vec3, len(coords))
		c, s := math.Cos(angle), math.Sin(angle)
		for i, p := range coords {
			moved[i] = geom.V(c*p.X-s*p.Y, s*p.X+c*p.Y, p.Z).Add(shift)
		}
		a := FitEmptyBall(coords, 0, 1, 1e-9)
		b := FitEmptyBall(moved, 0, 1, 1e-9)
		if a.Boundary != b.Boundary {
			t.Fatalf("trial %d: verdict changed under rigid motion", trial)
		}
	}
}
