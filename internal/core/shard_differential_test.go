package core

// Differential battery for the sharded detection engine: sharded runs must
// be bit-identical to the unsharded pipeline — same verdict bits, same
// work counters, same float values — on every world, shard count, worker
// count, and fault plan. The suite mirrors internal/mesh's refimpl
// differential style: one trusted baseline per world, a matrix of
// configurations diffed against it.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/shapes"
	"repro/internal/sim"
)

// shardWorld is one deployment plus its unsharded baseline result.
type shardWorld struct {
	name string
	net  *netgen.Network
	base *Result
}

var (
	shardWorldsOnce sync.Once
	shardWorldsVal  []shardWorld
	shardWorldsErr  error
)

// shardWorlds builds the seeded sphere/cube/torus deployments (the worlds
// of internal/mesh's differential suite) with their unsharded CoordsTrue
// baselines, once per test binary.
func shardWorlds(t *testing.T) []shardWorld {
	t.Helper()
	shardWorldsOnce.Do(func() {
		box, err := shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(7, 7, 7), nil)
		if err != nil {
			shardWorldsErr = err
			return
		}
		tor, err := shapes.NewTorus(5.5, 2.2)
		if err != nil {
			shardWorldsErr = err
			return
		}
		specs := []struct {
			name     string
			shape    shapes.Shape
			surf, in int
			seed     int64
		}{
			{"sphere", shapes.NewBall(geom.Zero, 4), 400, 900, 60},
			{"cube", box, 450, 950, 61},
			{"torus", tor, 700, 1100, 3},
		}
		for _, sp := range specs {
			net, err := netgen.Generate(netgen.Config{
				Shape:           sp.shape,
				SurfaceNodes:    sp.surf,
				InteriorNodes:   sp.in,
				TargetAvgDegree: 18,
				Seed:            sp.seed,
			})
			if err != nil {
				shardWorldsErr = fmt.Errorf("%s: %w", sp.name, err)
				return
			}
			base, err := Detect(net, nil, Config{})
			if err != nil {
				shardWorldsErr = fmt.Errorf("%s baseline: %w", sp.name, err)
				return
			}
			shardWorldsVal = append(shardWorldsVal, shardWorld{name: sp.name, net: net, base: base})
		}
	})
	if shardWorldsErr != nil {
		t.Fatal(shardWorldsErr)
	}
	return shardWorldsVal
}

// msgMode selects how diffResults treats the message counters.
type msgMode int

const (
	// msgEqual requires identical traffic (unsharded clean runs).
	msgEqual msgMode = iota
	// msgSkip ignores traffic (unsharded faulty runs: retransmissions
	// change costs, never verdicts).
	msgSkip
	// msgZero requires zero traffic and zero fault stats (sharded runs
	// perform no message passing).
	msgZero
)

// diffResults fails the test unless got matches want bit for bit on every
// outcome field; message counters are handled per mode.
func diffResults(t *testing.T, label string, want, got *Result, mode msgMode) {
	t.Helper()
	if len(got.UBF) != len(want.UBF) {
		t.Fatalf("%s: node count %d != %d", label, len(got.UBF), len(want.UBF))
	}
	for i := range want.UBF {
		if got.UBF[i] != want.UBF[i] {
			t.Fatalf("%s: UBF[%d] = %v, want %v", label, i, got.UBF[i], want.UBF[i])
		}
		if got.Boundary[i] != want.Boundary[i] {
			t.Fatalf("%s: Boundary[%d] = %v, want %v", label, i, got.Boundary[i], want.Boundary[i])
		}
		if got.FragmentSize[i] != want.FragmentSize[i] {
			t.Fatalf("%s: FragmentSize[%d] = %d, want %d", label, i, got.FragmentSize[i], want.FragmentSize[i])
		}
		if got.GroupLabel[i] != want.GroupLabel[i] {
			t.Fatalf("%s: GroupLabel[%d] = %d, want %d", label, i, got.GroupLabel[i], want.GroupLabel[i])
		}
		if got.BallsTested[i] != want.BallsTested[i] {
			t.Fatalf("%s: BallsTested[%d] = %d, want %d", label, i, got.BallsTested[i], want.BallsTested[i])
		}
		if got.NodesChecked[i] != want.NodesChecked[i] {
			t.Fatalf("%s: NodesChecked[%d] = %d, want %d", label, i, got.NodesChecked[i], want.NodesChecked[i])
		}
	}
	if (got.CoordError == nil) != (want.CoordError == nil) {
		t.Fatalf("%s: CoordError presence %v != %v", label, got.CoordError != nil, want.CoordError != nil)
	}
	for i := range want.CoordError {
		// Bit-identity, not approximation: the sharded frames see the same
		// inputs in the same order, so the floats must match exactly.
		if math.Float64bits(got.CoordError[i]) != math.Float64bits(want.CoordError[i]) {
			t.Fatalf("%s: CoordError[%d] = %v, want %v", label, i, got.CoordError[i], want.CoordError[i])
		}
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups, want %d", label, len(got.Groups), len(want.Groups))
	}
	for gi := range want.Groups {
		if len(got.Groups[gi]) != len(want.Groups[gi]) {
			t.Fatalf("%s: group %d size %d, want %d", label, gi, len(got.Groups[gi]), len(want.Groups[gi]))
		}
		for k := range want.Groups[gi] {
			if got.Groups[gi][k] != want.Groups[gi][k] {
				t.Fatalf("%s: group %d member %d = %d, want %d", label, gi, k, got.Groups[gi][k], want.Groups[gi][k])
			}
		}
	}
	switch mode {
	case msgEqual:
		if got.IFFMessages != want.IFFMessages || got.GroupingMessages != want.GroupingMessages {
			t.Fatalf("%s: messages (%d,%d), want (%d,%d)", label,
				got.IFFMessages, got.GroupingMessages, want.IFFMessages, want.GroupingMessages)
		}
	case msgZero:
		if got.IFFMessages != 0 || got.GroupingMessages != 0 || got.FaultStats != (sim.FaultStats{}) {
			t.Fatalf("%s: sharded run reports message traffic (%d,%d) or fault stats %+v",
				label, got.IFFMessages, got.GroupingMessages, got.FaultStats)
		}
	}
}

// TestShardedDifferentialMatrix diffs the sharded engine against the
// unsharded baseline over worlds × shard counts × worker counts × fault
// plans. Fault injection perturbs only the unsharded engine's message
// schedule — provably not its outcome — so every cell must produce the
// baseline bits.
func TestShardedDifferentialMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is long")
	}
	// The faulty plan stays in the outcome-preserving regime: bounded
	// per-link loss within the retransmit budget, plus duplicates and
	// delays (harmless by idempotence). Crash faults are excluded — a
	// crashed node genuinely changes the flood counts, and the sharded
	// engine, which does no message passing, models the crash-free
	// protocol.
	faultPlans := []struct {
		name   string
		faults sim.FaultConfig
	}{
		{"clean", sim.FaultConfig{}},
		{"faulty", sim.FaultConfig{Seed: 7, DropRate: 0.05, MaxDropsPerLink: 2, DuplicateRate: 0.02, DelayRate: 0.05}},
	}
	for _, w := range shardWorlds(t) {
		for _, shards := range []int{1, 2, 4, 7} {
			for _, workers := range []int{1, 4} {
				for _, fp := range faultPlans {
					label := fmt.Sprintf("%s/shards=%d/workers=%d/%s", w.name, shards, workers, fp.name)
					got, err := Detect(w.net, nil, Config{
						Shards:  shards,
						Workers: workers,
						Faults:  fp.faults,
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					// Unsharded cells (shards=1) run the message-passing
					// protocols and must reproduce the baseline's costs
					// too, except under injected faults (retransmissions
					// change traffic, not verdicts).
					mode := msgZero
					if shards <= 1 {
						mode = msgEqual
						if fp.faults.Enabled() {
							mode = msgSkip
						}
					}
					diffResults(t, label, w.base, got, mode)
				}
			}
		}
	}
}

// TestShardedDifferentialMDS runs the stitched-coordinates path (CoordsMDS
// + ScopeTwoHop) sharded and unsharded on a smaller sphere: frames, fused
// two-hop estimates and adaptive tolerances must all reproduce exactly,
// including the per-node CoordError floats.
func TestShardedDifferentialMDS(t *testing.T) {
	if testing.Short() {
		t.Skip("MDS differential is long")
	}
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:    150,
		InteriorNodes:   350,
		TargetAvgDegree: 16,
		Seed:            29,
	})
	if err != nil {
		t.Fatal(err)
	}
	meas := net.Measure(ranging.ForFraction(0.2), 41)
	base, err := Detect(net, meas, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 5} {
		got, err := Detect(net, meas, Config{Shards: shards, Workers: 3})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		diffResults(t, fmt.Sprintf("mds/shards=%d", shards), base, got, msgZero)
	}
}

// TestShardedScopeAndIFFVariants covers the remaining configuration axes
// on one world: one-hop scope (halo depth driven by the IFF TTL), IFF
// disabled (halo depth driven by the scope), and a nondefault TTL.
func TestShardedScopeAndIFFVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("variant differential is long")
	}
	w := shardWorlds(t)[0]
	variants := []struct {
		name string
		cfg  Config
	}{
		{"one-hop", Config{Scope: ScopeOneHop}},
		{"iff-off", Config{IFFThreshold: -1}},
		{"ttl-1", Config{IFFTTL: 1}},
		{"theta-8-ttl-5", Config{IFFThreshold: 8, IFFTTL: 5}},
	}
	for _, v := range variants {
		base, err := Detect(w.net, nil, v.cfg)
		if err != nil {
			t.Fatalf("%s baseline: %v", v.name, err)
		}
		cfg := v.cfg
		cfg.Shards = 3
		cfg.Workers = 2
		got, err := Detect(w.net, nil, cfg)
		if err != nil {
			t.Fatalf("%s sharded: %v", v.name, err)
		}
		diffResults(t, v.name, base, got, msgZero)
	}
}
