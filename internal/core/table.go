package core

import (
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/netgen"
)

// NodeTable is the detection pipeline's struct-of-arrays view of a network:
// adjacency as a CSR, positions in one flat slice, and measured link
// distances in one flat slice parallel to the CSR's arc array. Every
// pipeline stage streams these tables instead of chasing the per-node
// slices of netgen.Network, which keeps a spatial shard's working set
// contiguous in memory. A NodeTable is immutable once built and safe for
// concurrent readers.
//
// The adjacency rows keep netgen's ascending neighbor order, so every
// iteration the pipeline performs over a NodeTable visits nodes in exactly
// the order the slice-of-structs code did — the bit-identity of results
// across the two layouts (and across sharded views, which are themselves
// NodeTables) depends on it.
type NodeTable struct {
	// CSR is the adjacency structure; rows are ascending.
	CSR *graph.CSR
	// Pos holds each node's position (true coordinates).
	Pos []geom.Vec3
	// Meas holds the measured distance of every directed arc, parallel to
	// the CSR arc array; nil when no measurement was supplied (CoordsTrue).
	Meas []float64
	// Radius is the radio range the table was built under.
	Radius float64
}

// NewNodeTable flattens a network (and optionally a measurement) into the
// struct-of-arrays layout. meas may be nil.
func NewNodeTable(net *netgen.Network, meas *netgen.Measurement) *NodeTable {
	t := &NodeTable{
		CSR:    graph.NewCSR(net.G),
		Pos:    net.Positions(),
		Radius: net.Radius,
	}
	if meas != nil {
		flat := make([]float64, 0, 2*net.G.NumEdges())
		for i := range meas.Dist {
			flat = append(flat, meas.Dist[i]...)
		}
		t.Meas = flat
	}
	return t
}

// Len returns the number of nodes.
func (t *NodeTable) Len() int { return t.CSR.Len() }

// Neighbors returns node i's adjacency row, ascending. Callers must not
// mutate it.
func (t *NodeTable) Neighbors(i int) []int32 { return t.CSR.Neighbors(i) }

// MeasRow returns the measured distances of node i's arcs, parallel to
// Neighbors(i); nil when the table carries no measurement.
func (t *NodeTable) MeasRow(i int) []float64 {
	if t.Meas == nil {
		return nil
	}
	off := t.CSR.RowOffset(i)
	return t.Meas[off : off+t.CSR.Degree(i)]
}

// MeasLookup returns the measured distance between nodes i and j, which
// must be radio neighbors (or equal — a node is at distance zero from
// itself); ok is false otherwise or when the table carries no measurement.
// Exactly the semantics of netgen.Measurement.Lookup on the flat layout.
func (t *NodeTable) MeasLookup(i, j int) (float64, bool) {
	if i == j {
		return 0, true
	}
	if t.Meas == nil {
		return 0, false
	}
	if k, ok := t.CSR.ArcIndex(i, j); ok {
		return t.Meas[k], true
	}
	return 0, false
}
