package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// FitEmptyBall is the Unit Ball Fitting kernel: a node with free space on
// one side finds an empty ball touching it and declares itself a boundary
// node.
func ExampleFitEmptyBall() {
	// The deciding node at the origin with all neighbors below z=0:
	// the upper half space is empty.
	coords := []geom.Vec3{
		geom.V(0, 0, 0), // the deciding node
		geom.V(0.4, 0, -0.3), geom.V(-0.4, 0.1, -0.4),
		geom.V(0, -0.5, -0.2), geom.V(0.2, 0.4, -0.5),
	}
	res := core.FitEmptyBall(coords, 0, 1.0, 1e-9)
	fmt.Printf("boundary=%v testedSomeBalls=%v\n", res.Boundary, res.BallsTested > 0)
	// Output:
	// boundary=true testedSomeBalls=true
}
