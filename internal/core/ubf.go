// Package core implements the paper's primary contribution: localized
// boundary-node identification for 3D wireless networks via Unit Ball
// Fitting (UBF, Sec. II-A) refined by Isolated Fragment Filtering (IFF,
// Sec. II-B), plus boundary grouping and a degree-threshold baseline.
//
// Everything here is localized in the paper's sense: each node decides from
// one-hop neighborhood information only (neighbor coordinates in a local
// frame, built either from true positions or from noisy measured distances
// via MDS), and the refinement phases use TTL-bounded local flooding.
package core

import (
	"math"
	"slices"
	"sync"

	"repro/internal/geom"
)

// sortByScoreDesc orders ord by descending score with ascending-index
// tie-break. Neighborhood-sized inputs use insertion sort directly — the
// generic sort's indirect comparator calls cost as much as the comparisons
// at these sizes — falling back to the stdlib sort for large slices.
func sortByScoreDesc(ord []int, score []float64) {
	if len(ord) > 64 {
		slices.SortFunc(ord, func(a, b int) int {
			switch {
			case score[a] > score[b]:
				return -1
			case score[a] < score[b]:
				return 1
			default:
				return a - b
			}
		})
		return
	}
	for i := 1; i < len(ord); i++ {
		x := ord[i]
		sx := score[x]
		j := i - 1
		for j >= 0 {
			y := ord[j]
			sy := score[y]
			if sy > sx || (sy == sx && y < x) {
				break
			}
			ord[j+1] = y
			j--
		}
		ord[j+1] = x
	}
}

// UBFNodeResult reports one node's Unit Ball Fitting outcome.
type UBFNodeResult struct {
	// Boundary is true when the node found an empty unit ball touching
	// itself (Algorithm 1 output).
	Boundary bool
	// BallsTested counts candidate balls examined before deciding; the
	// Theorem 1 complexity study aggregates this.
	BallsTested int
	// NodesChecked counts point-in-ball tests performed.
	NodesChecked int
	// CellsProbed counts spatial-grid cells visited by the pruned
	// emptiness test; zero on the brute path (below the grid gate).
	CellsProbed int
}

// FitEmptyBall runs the Unit Ball Fitting test (Algorithm 1 steps II–III)
// for one node in its local coordinate frame. coords holds the
// neighborhood's positions with the deciding node at index center; radius
// is the unit-ball radius r = 1+ε (in the same units as coords); tol is the
// strict-interior tolerance: a neighbor only invalidates a ball when it
// lies deeper than tol inside (per Definition 6, touching the surface does
// not count). Every coordinate doubles as a ball-defining candidate; use
// FitEmptyBallCandidates to restrict the contact pairs.
//
// It returns as soon as one empty ball is found (the node is a boundary
// node); otherwise it exhausts all Θ(ρ²) candidate balls.
func FitEmptyBall(coords []geom.Vec3, center int, radius, tol float64) UBFNodeResult {
	return FitEmptyBallCandidates(coords, center, nil, radius, tol)
}

// FitEmptyBallCandidates is FitEmptyBall with the ball-defining contact
// pairs restricted to the given indices into coords (the deciding node's
// one-hop neighbors in the pipeline: Algorithm 1 forms balls through the
// node and two one-hop neighbors, while emptiness is judged against every
// known coordinate — the full Θ(ρ) ball content of Theorem 1). candidates
// must not include center; nil means every index except center.
func FitEmptyBallCandidates(coords []geom.Vec3, center int, candidates []int, radius, tol float64) UBFNodeResult {
	return FitEmptyBallTolerances(coords, center, candidates, radius, uniformTol(tol))
}

// TolFunc returns the strict-interior tolerance for the coordinate at the
// given index. Per-point tolerances let the pipeline discount each known
// position by its own uncertainty: a node's one-hop frame members carry
// the frame's embedding residual, while stitched two-hop positions carry
// the (larger) patch-registration error.
type TolFunc func(index int) float64

func uniformTol(tol float64) TolFunc { return func(int) float64 { return tol } }

// FitEmptyBallTolerances is FitEmptyBallCandidates with a per-point
// tolerance and no borderline cap.
func FitEmptyBallTolerances(coords []geom.Vec3, center int, candidates []int, radius float64, tol TolFunc) UBFNodeResult {
	return FitEmptyBallUncertain(coords, center, candidates, radius, tol, -1)
}

// FitEmptyBallUncertain is the pipeline's full uncertainty-aware test. A
// candidate ball counts as empty when (a) no point lies deeper inside than
// its own tolerance — a certain occupant — and (b) at most maxBorderline
// points lie inside the nominal surface but within their tolerance band —
// possible occupants. The cap separates the two regimes the plain
// tolerance test confuses: a genuine boundary ball carries at most a
// couple of uncertain phantoms, while a deep interior ball under inflated
// tolerances carries many borderline points at once. Negative
// maxBorderline disables the cap.
//
// This convenience wrapper borrows a pooled UBFScratch; hot loops should
// hold a scratch per worker and call its Fit method instead.
func FitEmptyBallUncertain(coords []geom.Vec3, center int, candidates []int, radius float64, tol TolFunc, maxBorderline int) UBFNodeResult {
	s := scratchPool.Get().(*UBFScratch)
	res := s.Fit(coords, center, candidates, radius, tol, maxBorderline)
	scratchPool.Put(s)
	return res
}

var scratchPool = sync.Pool{New: func() any { return new(UBFScratch) }}

// UBFScratch holds the reusable state of the Unit Ball Fitting hot path:
// the spatial index over the neighborhood, precomputed per-point
// tolerances, the candidate ordering, and the node-relative frame. A zero
// value is ready to use; after the first few Fit calls warm its buffers,
// the steady state performs no allocations. A scratch is not safe for
// concurrent use — the pipeline keeps one per worker.
type UBFScratch struct {
	grid  geom.PointGrid
	rel   []geom.Vec3 // coords translated so the deciding node is the origin
	nn    []float64   // |rel[i]|², hoisted out of the pair loop
	tols  []float64   // tol(i), cached once per Fit
	occ2  []float64   // (max(radius-tols[i], 0))²: certain-occupant threshold
	cands []int       // candidate buffer for the nil-candidates case
	order []int       // candidates sorted by the try-empty-first heuristic
	score []float64   // ordering key, indexed by coordinate index
	scan  []int32     // membership-scan order: likeliest blockers first
	cells int         // grid cells probed this Fit (grid path only)
}

// gridMinPoints gates the spatial index. The witness cache plus early exit
// make a blocked ball's brute scan ~3 distance checks, so the per-ball cell
// walk only pays off once the occasional full confirmation scan (O(n))
// outweighs the walk overhead on every ball — measured on two-hop
// neighborhoods, that crossover sits in the hundreds of points, well above
// the fig. 1 operating shape (n ≈ 150 at average degree 18.8). Below the
// gate Fit stays on the brute path. A variable so tests can force the grid
// path on small neighborhoods.
var gridMinPoints = 256

// disableGridPruning forces every emptiness test onto the brute-force scan.
// Tests flip it to check that the pruned fast path is an invisible
// optimization at pipeline scope. disableOrdering likewise pins the
// candidate-pair order to the caller's, for the same invisibility check.
var (
	disableGridPruning = false
	disableOrdering    = false
)

// Fit runs the uncertainty-aware Unit Ball Fitting test using the scratch's
// buffers. Semantics are exactly FitEmptyBallUncertain's; only the work
// counters depend on the scratch-enabled pruning and ordering, never the
// Boundary verdict (Definition 6 asks whether *some* empty ball exists, so
// the outcome is independent of the order in which balls and points are
// examined).
func (s *UBFScratch) Fit(coords []geom.Vec3, center int, candidates []int, radius float64, tol TolFunc, maxBorderline int) UBFNodeResult {
	n := len(coords)
	s.cells = 0

	// Everything below works in the frame translated so the deciding node
	// is the origin: ball centers come out of the pair solver relative to
	// the node, and membership tests never translate back. The squared
	// norms double as the pair loop's hoisted |b-a|² values. Cache
	// tolerances and squared occupancy thresholds once per node too: the
	// inner loop runs membership tests per ball and must not pay a closure
	// call plus a subtraction each time. minTol widens the grid query when
	// negative tolerances push a point's occupancy shell *outside* the
	// nominal ball surface.
	s.rel = s.rel[:0]
	s.nn = s.nn[:0]
	s.tols = s.tols[:0]
	s.occ2 = s.occ2[:0]
	a := coords[center]
	minTol := 0.0
	for i := 0; i < n; i++ {
		r := coords[i].Sub(a)
		s.rel = append(s.rel, r)
		s.nn = append(s.nn, r.Norm2())
		t := tol(i)
		if t < minTol {
			minTol = t
		}
		rr := radius - t
		if rr < 0 {
			rr = 0
		}
		s.tols = append(s.tols, t)
		s.occ2 = append(s.occ2, rr*rr)
	}

	if candidates == nil {
		s.cands = s.cands[:0]
		for j := 0; j < n; j++ {
			if j != center {
				s.cands = append(s.cands, j)
			}
		}
		candidates = s.cands
	}

	// Try likely-empty balls first: the neighbor centroid points toward the
	// local mass, so any empty region sits on the opposite side. Candidates
	// with the smallest projection onto the centroid direction span planes
	// tilted toward that sparse side, and the balls mirrored through them
	// bulge into it — boundary nodes (the early-exit case at the fig. 1
	// operating point) then find their empty ball within the first few
	// pairs. Ties break on index so the order — and with it the work
	// counters — is deterministic.
	s.order = append(s.order[:0], candidates...)
	if !disableOrdering {
		var centroid geom.Vec3
		for _, p := range s.rel {
			centroid = centroid.Add(p)
		}
		if cap(s.score) < n {
			s.score = make([]float64, n)
		}
		s.score = s.score[:n]
		for _, j := range candidates {
			s.score[j] = -s.rel[j].Dot(centroid)
		}
		sortByScoreDesc(s.order, s.score)
	}

	useGrid := n >= gridMinPoints && !disableGridPruning
	if useGrid {
		s.grid.Build(s.rel, radius)
	}
	extra := -minTol // ≥ 0 by construction (minTol starts at 0)
	r2 := radius * radius

	// The default scan visits points nearest the node first: a point at
	// distance d from the node occupies every candidate ball whose center
	// direction is within arccos(d/2r) of it, so the nearest points block
	// the widest swath of balls and settle an occupied ball in the fewest
	// membership tests. A full sort costs more than it saves; three stable
	// distance tiers capture the effect. The three ball-defining surface
	// points are not re-tested: the node is left out of the order, and the
	// current pair's occupancy thresholds are parked at zero (d² < 0 never
	// holds) for the duration of the pair, which also keeps the witness
	// cache honest without per-point index compares.
	inlineScan := maxBorderline < 0 && !useGrid
	if inlineScan {
		s.scan = s.scan[:0]
		t1 := 0.25 * r2
		for i, d := range s.nn {
			if i != center && d < t1 {
				s.scan = append(s.scan, int32(i))
			}
		}
		for i, d := range s.nn {
			if i != center && d >= t1 && d < r2 {
				s.scan = append(s.scan, int32(i))
			}
		}
		for i, d := range s.nn {
			if i != center && d >= r2 {
				s.scan = append(s.scan, int32(i))
			}
		}
	}

	// witness caches the index of the last certain occupant found: interior
	// nodes reject long runs of overlapping candidate balls on the same
	// deep neighbor, so re-testing it first usually settles a ball in one
	// membership test.
	witness := -1
	var res UBFNodeResult
	rel := s.rel
	nn := s.nn
	occ2 := s.occ2
	ord := s.order
	rr14 := 1e-14 * r2
	scan := s.scan
	for cj := 0; cj < len(ord); cj++ {
		j := ord[cj]
		u, uu := rel[j], nn[j]
		var oj float64
		if inlineScan {
			oj, occ2[j] = occ2[j], 0 // j sits on every ball of this row
		}
		for ck := cj + 1; ck < len(ord); ck++ {
			k := ord[ck]
			// Candidate unit balls through the node and a neighbor pair:
			// the solutions of Eq. (1), centers node-relative. This is
			// geom.SpheresThrough3Centers spelled out — the call sits in
			// the innermost Θ(ρ²) loop, where its frame setup costs as
			// much as the math; TestFitSolverMatchesGeom pins the copy
			// against the geom original.
			v, vv := rel[k], nn[k]
			n := u.Cross(v)
			n2 := n.Norm2()
			scale := uu * vv
			if n2 <= 1e-20*scale || scale == 0 {
				continue
			}
			inv := 1 / n2
			d := v.Sub(u)
			alpha := -vv * u.Dot(d) * 0.5 * inv
			beta := uu * v.Dot(d) * 0.5 * inv
			off := u.Scale(alpha).Add(v.Scale(beta))
			h2 := r2 - off.Norm2()
			if h2 < 0 {
				continue
			}
			var c1, c2 geom.Vec3
			count := 1
			if h2 <= rr14 {
				c1, c2 = off, off
			} else {
				lift := n.Scale(math.Sqrt(h2 * inv))
				c1, c2 = off.Add(lift), off.Sub(lift)
				count = 2
			}
			var ok2 float64
			if inlineScan {
				ok2, occ2[k] = occ2[k], 0 // k sits on both balls of this pair
			}
			for b := 0; b < count; b++ {
				ctr := c1
				if b == 1 {
					ctr = c2
				}
				res.BallsTested++
				// Witness fast path, inline to spare the call.
				if w := witness; w >= 0 && w != center && w != j && w != k {
					res.NodesChecked++
					if rel[w].Dist2(ctr) < occ2[w] {
						continue
					}
				}
				var empty bool
				var checked int
				switch {
				case useGrid:
					empty, checked, witness = s.ballEmptyGrid(ctr, radius, r2, center, j, k, maxBorderline, extra, witness)
				case maxBorderline < 0:
					// The pipeline-default scan, in place: the call frame
					// for the general test costs as much as the few probes
					// an occupied ball needs. The order is the near-first
					// tiering built above; the pair's surface points fail
					// the parked occupancy test instead of paying index
					// compares on every probe.
					empty = true
					for _, ni := range scan {
						m := int(ni)
						checked++
						if rel[m].Dist2(ctr) < occ2[m] {
							empty = false
							witness = m
							break
						}
					}
				default:
					empty, checked, witness = ballEmptyBrute(ctr, r2, rel, occ2, center, j, k, maxBorderline, witness)
				}
				res.NodesChecked += checked
				if empty {
					res.Boundary = true
					res.CellsProbed = s.cells
					return res // no sentinel restore: occ2 is rebuilt per Fit
				}
			}
			if inlineScan {
				occ2[k] = ok2
			}
		}
		if inlineScan {
			occ2[j] = oj
		}
	}
	res.CellsProbed = s.cells
	return res
}

// ballEmptyBrute is the linear-scan uncertainty-aware emptiness test in the
// node-relative frame: no point may lie deeper inside the ball at ctr than
// its own tolerance (rel[i].Dist2(ctr) < occ2[i]), and (when maxBorderline
// ≥ 0) at most maxBorderline points may sit inside the nominal surface
// (dist² < r2) within their tolerance band. The three ball-defining points
// (center, j, k) lie on the surface by construction and are skipped rather
// than re-tested. Returns the verdict, the number of membership tests
// performed, and the updated occupant witness (unchanged unless a certain
// occupant was found).
func ballEmptyBrute(ctr geom.Vec3, r2 float64, rel []geom.Vec3, occ2 []float64, center, j, k, maxBorderline, witness int) (bool, int, int) {
	checked := 0
	if maxBorderline < 0 {
		// No borderline cap (the pipeline default): a tighter scan without
		// the borderline branch.
		for n, p := range rel {
			if n == center || n == j || n == k {
				continue
			}
			checked++
			if p.Dist2(ctr) < occ2[n] {
				return false, checked, n
			}
		}
		return true, checked, witness
	}
	borderline := 0
	for n, p := range rel {
		if n == center || n == j || n == k {
			continue
		}
		checked++
		d2 := p.Dist2(ctr)
		if d2 < occ2[n] {
			return false, checked, n
		}
		if maxBorderline >= 0 && d2 < r2 {
			// Inside the nominal surface but within its tolerance
			// band: a possible occupant.
			borderline++
			if borderline > maxBorderline {
				return false, checked, witness
			}
		}
	}
	return true, checked, witness
}

// ballEmptyGrid is ballEmptyBrute restricted to the grid cells intersecting
// the query ball (the grid is built over the same node-relative frame). The
// query radius is the ball radius widened by extra = max(0, -min tolerance):
// a certain occupant satisfies dist < radius-tol ≤ radius+extra and a
// borderline point satisfies dist < radius, so every point that could
// affect the verdict lies inside the widened ball and the two paths always
// agree on the verdict. Only the visit order (cell blocks instead of
// ascending index) and hence the checked count differ.
func (s *UBFScratch) ballEmptyGrid(ctr geom.Vec3, radius, r2 float64, center, j, k, maxBorderline int, extra float64, witness int) (bool, int, int) {
	checked := 0
	R := radius + extra
	e := geom.V(R, R, R)
	lo, hi, ok := s.grid.CellRange(geom.AABB{Min: ctr.Sub(e), Max: ctr.Add(e)})
	if !ok {
		return true, checked, witness
	}
	R2 := R * R
	borderline := 0
	// Probe the cell holding the ball center first: occupants cluster
	// around the center, so non-empty balls — the overwhelming majority at
	// interior nodes — are rejected after one cell instead of paying the
	// full lexicographic walk. The walk below skips the probed cell, so
	// each point is still visited exactly once (the verdict is
	// order-independent; only the checked counter reflects the probe).
	px, py, pz := -1, -1, -1
	if plo, phi, pok := s.grid.CellRange(geom.AABB{Min: ctr, Max: ctr}); pok && plo == phi {
		px, py, pz = plo[0], plo[1], plo[2]
		s.cells++
		for _, ni := range s.grid.Cell(px, py, pz) {
			n := int(ni)
			if n == center || n == j || n == k {
				continue
			}
			checked++
			d2 := s.rel[n].Dist2(ctr)
			if d2 < s.occ2[n] {
				return false, checked, n
			}
			if maxBorderline >= 0 && d2 < r2 {
				borderline++
				if borderline > maxBorderline {
					return false, checked, witness
				}
			}
		}
	}
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for z := lo[2]; z <= hi[2]; z++ {
				if x == px && y == py && z == pz {
					continue
				}
				if s.grid.CellMinDist2(x, y, z, ctr) > R2 {
					continue
				}
				s.cells++
				for _, ni := range s.grid.Cell(x, y, z) {
					n := int(ni)
					if n == center || n == j || n == k {
						continue
					}
					checked++
					d2 := s.rel[n].Dist2(ctr)
					if d2 < s.occ2[n] {
						return false, checked, n
					}
					if maxBorderline >= 0 && d2 < r2 {
						borderline++
						if borderline > maxBorderline {
							return false, checked, witness
						}
					}
				}
			}
		}
	}
	return true, checked, witness
}
