// Package core implements the paper's primary contribution: localized
// boundary-node identification for 3D wireless networks via Unit Ball
// Fitting (UBF, Sec. II-A) refined by Isolated Fragment Filtering (IFF,
// Sec. II-B), plus boundary grouping and a degree-threshold baseline.
//
// Everything here is localized in the paper's sense: each node decides from
// one-hop neighborhood information only (neighbor coordinates in a local
// frame, built either from true positions or from noisy measured distances
// via MDS), and the refinement phases use TTL-bounded local flooding.
package core

import (
	"repro/internal/geom"
)

// UBFNodeResult reports one node's Unit Ball Fitting outcome.
type UBFNodeResult struct {
	// Boundary is true when the node found an empty unit ball touching
	// itself (Algorithm 1 output).
	Boundary bool
	// BallsTested counts candidate balls examined before deciding; the
	// Theorem 1 complexity study aggregates this.
	BallsTested int
	// NodesChecked counts point-in-ball tests performed.
	NodesChecked int
}

// FitEmptyBall runs the Unit Ball Fitting test (Algorithm 1 steps II–III)
// for one node in its local coordinate frame. coords holds the
// neighborhood's positions with the deciding node at index center; radius
// is the unit-ball radius r = 1+ε (in the same units as coords); tol is the
// strict-interior tolerance: a neighbor only invalidates a ball when it
// lies deeper than tol inside (per Definition 6, touching the surface does
// not count). Every coordinate doubles as a ball-defining candidate; use
// FitEmptyBallCandidates to restrict the contact pairs.
//
// It returns as soon as one empty ball is found (the node is a boundary
// node); otherwise it exhausts all Θ(ρ²) candidate balls.
func FitEmptyBall(coords []geom.Vec3, center int, radius, tol float64) UBFNodeResult {
	return FitEmptyBallCandidates(coords, center, nil, radius, tol)
}

// FitEmptyBallCandidates is FitEmptyBall with the ball-defining contact
// pairs restricted to the given indices into coords (the deciding node's
// one-hop neighbors in the pipeline: Algorithm 1 forms balls through the
// node and two one-hop neighbors, while emptiness is judged against every
// known coordinate — the full Θ(ρ) ball content of Theorem 1). candidates
// must not include center; nil means every index except center.
func FitEmptyBallCandidates(coords []geom.Vec3, center int, candidates []int, radius, tol float64) UBFNodeResult {
	return FitEmptyBallTolerances(coords, center, candidates, radius, uniformTol(tol))
}

// TolFunc returns the strict-interior tolerance for the coordinate at the
// given index. Per-point tolerances let the pipeline discount each known
// position by its own uncertainty: a node's one-hop frame members carry
// the frame's embedding residual, while stitched two-hop positions carry
// the (larger) patch-registration error.
type TolFunc func(index int) float64

func uniformTol(tol float64) TolFunc { return func(int) float64 { return tol } }

// FitEmptyBallTolerances is FitEmptyBallCandidates with a per-point
// tolerance and no borderline cap.
func FitEmptyBallTolerances(coords []geom.Vec3, center int, candidates []int, radius float64, tol TolFunc) UBFNodeResult {
	return FitEmptyBallUncertain(coords, center, candidates, radius, tol, -1)
}

// FitEmptyBallUncertain is the pipeline's full uncertainty-aware test. A
// candidate ball counts as empty when (a) no point lies deeper inside than
// its own tolerance — a certain occupant — and (b) at most maxBorderline
// points lie inside the nominal surface but within their tolerance band —
// possible occupants. The cap separates the two regimes the plain
// tolerance test confuses: a genuine boundary ball carries at most a
// couple of uncertain phantoms, while a deep interior ball under inflated
// tolerances carries many borderline points at once. Negative
// maxBorderline disables the cap.
func FitEmptyBallUncertain(coords []geom.Vec3, center int, candidates []int, radius float64, tol TolFunc, maxBorderline int) UBFNodeResult {
	if candidates == nil {
		candidates = make([]int, 0, len(coords)-1)
		for j := range coords {
			if j != center {
				candidates = append(candidates, j)
			}
		}
	}
	var res UBFNodeResult
	a := coords[center]
	var balls []geom.Sphere
	for cj := 0; cj < len(candidates); cj++ {
		j := candidates[cj]
		for ck := cj + 1; ck < len(candidates); ck++ {
			k := candidates[ck]
			// Candidate unit balls through the node and a neighbor
			// pair: the solutions of Eq. (1).
			balls = geom.SpheresThrough3Into(balls[:0], a, coords[j], coords[k], radius)
			for _, ball := range balls {
				res.BallsTested++
				empty, checked := ballEmpty(ball, coords, tol, maxBorderline)
				res.NodesChecked += checked
				if empty {
					res.Boundary = true
					return res
				}
			}
		}
	}
	return res
}

// ballEmpty reports whether the ball passes the uncertainty-aware
// emptiness test, and how many membership tests were performed. The three
// defining points sit on the surface, so tolerances naturally exclude them
// without special-casing indices.
func ballEmpty(ball geom.Sphere, coords []geom.Vec3, tol TolFunc, maxBorderline int) (bool, int) {
	borderline := 0
	for n, p := range coords {
		t := tol(n)
		if ball.ContainsStrict(p, t) {
			return false, n + 1
		}
		if maxBorderline >= 0 && ball.ContainsStrict(p, 0) {
			// Inside the nominal surface but within its tolerance
			// band: a possible occupant.
			borderline++
			if borderline > maxBorderline {
				return false, n + 1
			}
		}
	}
	return true, len(coords)
}
