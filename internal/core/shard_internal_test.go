package core

// White-box tests of the sharded engine's internals: steady-state
// allocation behavior of the per-shard IFF traversal loop, halo-depth
// selection, and the deep-TTL fallback. (The byte-identical envelope
// determinism test lives in internal/cli — cli imports core for detector
// validation, so core's tests cannot import cli back.)

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/partition/shard"
	"repro/internal/shapes"
)

func shardTestNet(t testing.TB) *netgen.Network {
	t.Helper()
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:    200,
		InteriorNodes:   400,
		TargetAvgDegree: 14,
		Seed:            13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestShardHaloDepth(t *testing.T) {
	base := Config{}.withDefaults(false)
	cases := []struct {
		name string
		mut  func(*Config)
		want int
	}{
		{"defaults (two-hop, ttl 3)", func(c *Config) {}, 3},
		{"one-hop scope still needs ttl", func(c *Config) { c.Scope = ScopeOneHop }, 3},
		{"iff off, two-hop", func(c *Config) { c.IFFThreshold = -1 }, 2},
		{"iff off, one-hop", func(c *Config) { c.IFFThreshold = -1; c.Scope = ScopeOneHop }, 1},
		{"short ttl bounded by scope", func(c *Config) { c.IFFTTL = 1 }, 2},
		{"deep ttl wins", func(c *Config) { c.IFFTTL = 9 }, 9},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if got := shardHaloDepth(cfg); got != tc.want {
			t.Errorf("%s: depth %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestShardedDeepTTLFallback drives the halo depth past maxShardHalo; the
// engine must fall back to the unsharded pipeline and still return the
// unsharded bits (message counters included — the fallback really runs the
// protocol).
func TestShardedDeepTTLFallback(t *testing.T) {
	net := shardTestNet(t)
	cfg := Config{IFFThreshold: 5, IFFTTL: maxShardHalo + 1}
	base, err := Detect(net, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	got, err := Detect(net, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "deep-ttl-fallback", base, got, msgEqual)
	if got.IFFMessages == 0 {
		t.Error("fallback run reports zero IFF messages; expected the message-passing path")
	}
}

// TestShardedIFFSteadyStateAllocs pins the steady-state allocation count of
// the sharded IFF inner loop — one bounded BFS per owned member over a
// warm Scratch and member set — at zero. The loop reuses one worker's
// scratch across shards whose views differ in size, so this also guards
// the epoch-stamp reset path of graph.Scratch under the engine's real
// access pattern.
func TestShardedIFFSteadyStateAllocs(t *testing.T) {
	net := shardTestNet(t)
	cfg := Config{}.withDefaults(false)
	tab := NewNodeTable(net, nil)
	shd, err := shard.Spatial(tab.Pos, 3)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	depth := shardHaloDepth(cfg)
	var sc graph.Scratch
	views := make([]*shardView, shd.K)
	for s := range views {
		if shd.OwnedCount(s) == 0 {
			continue
		}
		v, err := buildShardView(tab, shd, s, depth, &sc)
		if err != nil {
			t.Fatal(err)
		}
		views[s] = v
	}
	var mset graph.NodeSet
	var src [1]int
	iffPass := func() {
		for _, v := range views {
			if v == nil {
				continue
			}
			mset.Reset(len(v.glob))
			for l, g := range v.glob {
				if base.UBF[g] {
					mset.Add(l)
				}
			}
			for _, l32 := range v.owned {
				if !base.UBF[v.glob[l32]] {
					continue
				}
				src[0] = int(l32)
				v.tab.CSR.BFSHops(&sc, src[:], &mset, cfg.IFFTTL)
				_ = len(sc.Reached())
			}
		}
	}
	iffPass() // warm every buffer to the largest view
	if allocs := testing.AllocsPerRun(20, iffPass); allocs != 0 {
		t.Errorf("steady-state sharded IFF pass allocates %.1f per run, want 0", allocs)
	}
}
