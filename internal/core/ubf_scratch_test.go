package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// TestFitSolverMatchesGeom pins Fit's manually inlined pair solver against
// geom.SpheresThrough3Centers: the inline copy exists purely to spare the
// call frame in the Θ(ρ²) loop, so any drift between the two is a bug. The
// comparison is bit-for-bit — both spell out the same operations in the
// same order.
func TestFitSolverMatchesGeom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const r2 = 1.0
	rr14 := 1e-14 * r2
	for trial := 0; trial < 2000; trial++ {
		u := geom.RandomInBall(rng, geom.Sphere{Radius: 1})
		v := geom.RandomInBall(rng, geom.Sphere{Radius: 1})
		if trial%5 == 0 {
			// Exercise the near-collinear guard too.
			v = u.Scale(1 + 1e-9*rng.Float64())
		}
		uu, vv := u.Norm2(), v.Norm2()

		// The inline solver from Fit, verbatim.
		var ic1, ic2 geom.Vec3
		icount := 0
		n := u.Cross(v)
		n2 := n.Norm2()
		scale := uu * vv
		if n2 > 1e-20*scale && scale != 0 {
			inv := 1 / n2
			d := v.Sub(u)
			alpha := -vv * u.Dot(d) * 0.5 * inv
			beta := uu * v.Dot(d) * 0.5 * inv
			off := u.Scale(alpha).Add(v.Scale(beta))
			h2 := r2 - off.Norm2()
			if h2 >= 0 {
				if h2 <= rr14 {
					ic1, ic2, icount = off, off, 1
				} else {
					lift := n.Scale(math.Sqrt(h2 * inv))
					ic1, ic2, icount = off.Add(lift), off.Sub(lift), 2
				}
			}
		}

		gc1, gc2, gcount := geom.SpheresThrough3Centers(u, v, uu, vv, 1.0)
		if icount != gcount || ic1 != gc1 || ic2 != gc2 {
			t.Fatalf("trial %d: inline (%v, %v, %d) != geom (%v, %v, %d) for u=%v v=%v",
				trial, ic1, ic2, icount, gc1, gc2, gcount, u, v)
		}
	}
}

// randomTols draws per-point tolerances including negative ones (which
// widen a point's occupancy shell beyond the nominal surface — the case
// that forces the grid query AABB wider than the ball).
func randomTols(rng *rand.Rand, n int) []float64 {
	tols := make([]float64, n)
	for i := range tols {
		tols[i] = (rng.Float64() - 0.5) * 0.2 // [-0.1, 0.1)
	}
	return tols
}

// TestFitGridPrunedMatchesBrute is the metamorphic identity behind the
// spatial pruning: for any neighborhood, tolerance assignment, and
// borderline cap, the grid-pruned emptiness test and the brute-force scan
// must return the same Boundary verdict (Definition 6 asks whether *some*
// empty ball exists, so the verdict cannot depend on scan order or
// pruning). Only the work counters may differ.
func TestFitGridPrunedMatchesBrute(t *testing.T) {
	defer func(g, o bool, m int) { disableGridPruning, disableOrdering, gridMinPoints = g, o, m }(
		disableGridPruning, disableOrdering, gridMinPoints)
	gridMinPoints = 1 // force the grid path regardless of neighborhood size

	rng := rand.New(rand.NewSource(23))
	var forced, brute UBFScratch
	for trial := 0; trial < 120; trial++ {
		n := 20 + rng.Intn(200)
		var coords []geom.Vec3
		if trial%2 == 0 {
			coords = denseNeighborhood(rng, n-1)
		} else {
			coords = halfSpaceNeighborhood(rng, n-1)
		}
		tols := randomTols(rng, len(coords))
		tolAt := func(i int) float64 { return tols[i] }
		maxBorderline := []int{-1, 0, 2}[trial%3]
		radius := 0.6 + rng.Float64()

		disableGridPruning = false
		disableOrdering = trial%4 < 2
		got := forced.Fit(coords, 0, nil, radius, tolAt, maxBorderline)

		disableGridPruning = true
		want := brute.Fit(coords, 0, nil, radius, tolAt, maxBorderline)

		if got.Boundary != want.Boundary {
			t.Fatalf("trial %d (n=%d cap=%d r=%.3f): pruned verdict %v, brute verdict %v",
				trial, n, maxBorderline, radius, got.Boundary, want.Boundary)
		}
	}
}

// TestBallEmptyGridMatchesBruteDirect compares the two emptiness kernels
// ball by ball, not just end to end: every candidate ball of a neighborhood
// must get the same verdict from ballEmptyGrid and ballEmptyBrute,
// including under negative tolerances that widen the query AABB.
func TestBallEmptyGridMatchesBruteDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		nPts := 30 + rng.Intn(120)
		coords := denseNeighborhood(rng, nPts-1)
		radius := 0.8 + rng.Float64()*0.4
		tols := randomTols(rng, len(coords))
		maxBorderline := []int{-1, 0, 3}[trial%3]

		var s UBFScratch
		s.rel = s.rel[:0]
		s.occ2 = s.occ2[:0]
		minTol := 0.0
		for i, c := range coords {
			s.rel = append(s.rel, c) // center 0 is at the origin already
			if tols[i] < minTol {
				minTol = tols[i]
			}
			rr := radius - tols[i]
			if rr < 0 {
				rr = 0
			}
			s.occ2 = append(s.occ2, rr*rr)
		}
		s.grid.Build(s.rel, radius)
		extra := -minTol
		r2 := radius * radius

		for q := 0; q < 40; q++ {
			j := 1 + rng.Intn(nPts-1)
			k := 1 + rng.Intn(nPts-1)
			if j == k {
				continue
			}
			for _, sph := range geom.SpheresThrough3(geom.Zero, s.rel[j], s.rel[k], radius) {
				gotEmpty, _, _ := s.ballEmptyGrid(sph.Center, radius, r2, 0, j, k, maxBorderline, extra, -1)
				wantEmpty, _, _ := ballEmptyBrute(sph.Center, r2, s.rel, s.occ2, 0, j, k, maxBorderline, -1)
				if gotEmpty != wantEmpty {
					t.Fatalf("trial %d ball through (0,%d,%d) at %v: grid=%v brute=%v (cap=%d)",
						trial, j, k, sph.Center, gotEmpty, wantEmpty, maxBorderline)
				}
			}
		}
	}
}

// TestFitOrderingInvariance: the candidate ordering heuristic must never
// change the verdict, only the work counters.
func TestFitOrderingInvariance(t *testing.T) {
	defer func(o bool) { disableOrdering = o }(disableOrdering)

	rng := rand.New(rand.NewSource(31))
	var a, b UBFScratch
	for trial := 0; trial < 80; trial++ {
		var coords []geom.Vec3
		if trial%2 == 0 {
			coords = denseNeighborhood(rng, 10+rng.Intn(60))
		} else {
			coords = halfSpaceNeighborhood(rng, 10+rng.Intn(60))
		}
		tol := rng.Float64() * 1e-3
		disableOrdering = false
		got := a.Fit(coords, 0, nil, 1.0, uniformTol(tol), -1)
		disableOrdering = true
		want := b.Fit(coords, 0, nil, 1.0, uniformTol(tol), -1)
		if got.Boundary != want.Boundary {
			t.Fatalf("trial %d: ordered verdict %v, natural-order verdict %v", trial, got.Boundary, want.Boundary)
		}
	}
}

// TestFitScratchSteadyStateAllocFree: after warmup, the scratch-based Fit
// must not allocate — the satellite fix for the per-call candidate slice
// and sphere slices the seed implementation built each time.
func TestFitScratchSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	interior := denseNeighborhood(rng, 150) // large enough for the grid path
	boundary := halfSpaceNeighborhood(rng, 150)
	var s UBFScratch
	s.Fit(interior, 0, nil, 1.0, uniformTol(1e-9), -1) // warm the buffers
	s.Fit(boundary, 0, nil, 1.0, uniformTol(1e-9), -1)
	allocs := testing.AllocsPerRun(50, func() {
		s.Fit(interior, 0, nil, 1.0, uniformTol(1e-9), -1)
		s.Fit(boundary, 0, nil, 1.0, uniformTol(1e-9), -1)
	})
	if allocs != 0 {
		t.Errorf("steady-state Fit allocates %.1f times per run", allocs)
	}
}

// TestFitEmptyBallUncertainNilCandidatesAllocFree: the pooled wrapper must
// stay allocation-free even when it derives the candidate set itself (the
// seed built a fresh []int per call).
func TestFitEmptyBallUncertainNilCandidatesAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	coords := denseNeighborhood(rng, 40)
	FitEmptyBallUncertain(coords, 0, nil, 1.0, uniformTol(1e-9), -1) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		FitEmptyBallUncertain(coords, 0, nil, 1.0, uniformTol(1e-9), -1)
	})
	if allocs != 0 {
		t.Errorf("pooled FitEmptyBallUncertain allocates %.1f times per run", allocs)
	}
}

// TestFitScratchMatchesPooledWrapper: the scratch path and the one-shot
// wrappers must agree exactly (verdict and counters) — they are the same
// algorithm with different buffer ownership.
func TestFitScratchMatchesPooledWrapper(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var s UBFScratch
	for trial := 0; trial < 40; trial++ {
		coords := halfSpaceNeighborhood(rng, 8+rng.Intn(40))
		tol := rng.Float64() * 1e-6
		got := s.Fit(coords, 0, nil, 1.0, uniformTol(tol), -1)
		want := FitEmptyBall(coords, 0, 1.0, tol)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: scratch %+v != wrapper %+v", trial, got, want)
		}
	}
}
