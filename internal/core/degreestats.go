// degreeStatsDetector is the Fekete-style degree-statistics competitor
// (after "Neighborhood-based topology recognition in sensor networks",
// cs/0405058): boundary nodes see systematically fewer neighbors than
// interior nodes, so thresholding each node's degree against a local
// degree statistic recovers the boundary. Unlike the global-average
// DegreeBaseline ablation, the reference statistic here is the mean
// degree over the node's closed two-hop neighborhood — computable with
// two local exchanges, keeping the algorithm as localized as the paper
// pipeline it competes with.
package core

import (
	"context"

	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/par"
)

type degreeStatsDetector struct{}

func (degreeStatsDetector) Name() string       { return "degree-stats" }
func (degreeStatsDetector) Caps() DetectorCaps { return CapFaults }

func (degreeStatsDetector) Vocab() DetectorVocab {
	return DetectorVocab{
		Stages: []obs.Stage{
			obs.StageDetect, obs.StageCandidates,
			obs.StageIFF, obs.StageGrouping,
		},
		WorkKeys:    []string{"candidates/local_tests"},
		FloodStages: []obs.Stage{obs.StageIFF, obs.StageGrouping},
	}
}

func (degreeStatsDetector) DetectContext(ctx context.Context, o obs.Observer, net *netgen.Network, meas *netgen.Measurement, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(meas != nil)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	detectSpan := obs.Start(o, obs.StageDetect)
	defer detectSpan.End()

	n := net.Len()
	obs.Add(o, obs.StageDetect, obs.CtrNodes, int64(n))
	res := newCandidateResult(n)

	// Candidate phase: node i is boundary when deg(i) falls below
	// DegreeFraction of the mean degree over its closed two-hop
	// neighborhood, gathered with a stamp-based scan so each worker
	// reuses one O(n) scratch. Work is counted as neighborhood members
	// visited.
	candSpan := obs.Start(o, obs.StageCandidates)
	type scratch struct {
		stamp []int32
		cur   int32
	}
	sc := make([]scratch, cfg.Workers)
	tests := make([]int64, cfg.Workers)
	err := par.For(n, cfg.Workers, func(w, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		s := &sc[w]
		if s.stamp == nil {
			s.stamp = make([]int32, n)
		}
		s.cur++
		s.stamp[i] = s.cur
		degSum, members := net.G.Degree(i), 1
		for _, j := range net.G.Adj[i] {
			if s.stamp[j] != s.cur {
				s.stamp[j] = s.cur
				degSum += net.G.Degree(j)
				members++
			}
			for _, k := range net.G.Adj[j] {
				if s.stamp[k] != s.cur {
					s.stamp[k] = s.cur
					degSum += net.G.Degree(k)
					members++
				}
			}
		}
		mean := float64(degSum) / float64(members)
		res.UBF[i] = float64(net.G.Degree(i)) < cfg.DegreeFraction*mean
		res.NodesChecked[i] = members
		tests[w] += int64(members)
		return nil
	})
	if o != nil {
		var total int64
		for _, t := range tests {
			total += t
		}
		emitCandidates(o, res, total)
	}
	candSpan.End()
	if err != nil {
		return nil, err
	}

	if err := filterAndGroup(ctx, o, net, cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}
