package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/geom"
	"repro/internal/mds"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
)

// CoordSource selects how each node obtains the local coordinates UBF
// consumes.
type CoordSource int

const (
	// CoordsMDS builds a local frame per node from measured one-hop
	// distances via MDS — Algorithm 1 step (I), the paper's default.
	CoordsMDS CoordSource = iota + 1
	// CoordsTrue uses ground-truth positions, the "all nodes have known
	// their coordinates" shortcut the paper allows; equivalent to
	// error-free ranging and used as the oracle ablation.
	CoordsTrue
)

// Scope selects how far a node's knowledge of other nodes reaches when it
// judges candidate balls empty.
type Scope int

const (
	// ScopeTwoHop judges emptiness against the two-hop neighborhood.
	// A candidate unit ball touching a node reaches out to 2r from it,
	// so this is the knowledge the paper's Lemma 1 / Theorem 1 analysis
	// assumes ("neighbors within 2r", Θ(ρ) nodes per ball). Under
	// CoordsMDS the two-hop positions are obtained by stitching each
	// neighbor's one-hop MDS frame onto the node's own frame via rigid
	// registration over their shared members (the MDS-MAP(P) patch
	// technique). One extra beacon exchange keeps this localized. This
	// is the pipeline default.
	ScopeTwoHop Scope = iota + 1
	// ScopeOneHop is Algorithm 1 verbatim: only the one-hop neighborhood
	// is known, so the outer half of every candidate ball is invisible.
	// This over-detects interior nodes in sparse pockets (the paper
	// leans on IFF to remove them); it is kept as an ablation.
	ScopeOneHop
)

// Config parameterizes the detection pipeline. The zero value selects the
// paper's defaults.
type Config struct {
	// BallRadiusFactor scales the unit-ball radius relative to the radio
	// range: r = BallRadiusFactor·(1+Epsilon)·R. The zero value means 1
	// (Definition 4's unit ball). Larger values detect only larger holes
	// (Sec. II-A3).
	BallRadiusFactor float64
	// Epsilon is Definition 4's arbitrarily small ε. Zero means 1e-9.
	Epsilon float64
	// InteriorTolerance is the strict-interior slack, relative to the
	// ball radius, below which a node counts as touching rather than
	// inside. Zero means 1e-9.
	InteriorTolerance float64

	// Coords selects the coordinate source. Zero means CoordsMDS when a
	// measurement is supplied to Detect and CoordsTrue otherwise.
	Coords CoordSource
	// Scope selects the emptiness-knowledge scope. Zero means
	// ScopeTwoHop.
	Scope Scope
	// MDS configures local-frame construction under CoordsMDS. A zero
	// SmacofIterations is upgraded to 40 refinement sweeps.
	MDS mds.Options
	// MinSharedForStitch is the minimum number of shared members needed
	// to register a neighbor's frame during two-hop stitching. Zero
	// means 4 (three points fix a rigid motion; one more adds
	// redundancy against noise).
	MinSharedForStitch int
	// MaxBorderline caps, under adaptive tolerances, how many
	// "possible occupants" (points inside a candidate ball's nominal
	// surface but within their own uncertainty band) an empty ball may
	// carry. The zero value disables the cap — experiments showed it
	// trades away far too much recall under heavy ranging noise — but
	// it remains available for precision-critical deployments. Negative
	// also disables; ignored under CoordsTrue.
	MaxBorderline int
	// AdaptiveTolFactor scales the node's locally observable coordinate
	// uncertainty into an additional strict-interior tolerance: under
	// noisy coordinates a node only counts as inside a candidate ball
	// when it is deeper than the local uncertainty. The uncertainty
	// estimate is the mean rigid-registration RMSD against the
	// neighbors' frames under ScopeTwoHop (inter-frame inconsistency),
	// falling back to the frame's own measured-distance residual
	// (mds.ResidualRMS) under ScopeOneHop. Zero means 1; negative
	// disables adaptation. Irrelevant under CoordsTrue, where the
	// uncertainty is zero. The default 0.5 balances missed boundary
	// nodes (tolerance too small: phantom stitched positions block
	// genuinely empty balls) against mistaken interior nodes (tolerance
	// too large:true occupants get discounted).
	AdaptiveTolFactor float64

	// IFFThreshold is θ: fragments with fewer boundary nodes within
	// IFFTTL hops are filtered. Zero means 20 (the icosahedron bound of
	// Sec. II-B). Negative disables IFF.
	IFFThreshold int
	// IFFTTL is T, the filtering flood's hop budget. Zero means 3.
	IFFTTL int
	// Async executes the flooding phases (IFF and grouping) on the
	// asynchronous kernel — per-message random delays seeded by
	// AsyncSeed — instead of synchronized rounds. Both protocols are
	// delay-independent, so the detection outcome is identical; the
	// option exists to demonstrate and test exactly that.
	Async     bool
	AsyncSeed int64

	// Faults, when enabled, injects message loss, duplication, delay,
	// crashes and partitions into the flooding phases. The phases then
	// run the acknowledged, retransmitting protocol variants; with
	// per-link loss capped at Faults.MaxDropsPerLink and a
	// RetransmitBudget at least that cap, the detection outcome is
	// provably identical to the fault-free run. Each phase derives its
	// own plan: IFF from Faults.Seed, grouping from Faults.Seed+1.
	Faults sim.FaultConfig
	// RetransmitBudget is the maximum number of retransmissions per
	// unacknowledged packet under faults. Zero means 3; ignored without
	// an enabled fault plan.
	RetransmitBudget int

	// Workers bounds pipeline parallelism. Zero means GOMAXPROCS. The
	// result is independent of the worker count.
	Workers int

	// Shards, when above 1, runs the sharded detection engine: the node
	// set is cut into that many spatial shards, each shard detects over
	// its owned nodes plus a bounded ghost halo, and the per-shard results
	// are stitched back together. The outcome is bit-identical to the
	// unsharded pipeline for every shard and worker count. The sharded
	// engine evaluates the flooding phases by direct bounded traversal
	// rather than message passing, so Async and Faults are ignored and the
	// message/fault counters of the Result stay zero. Zero or 1 selects
	// the ordinary single-shard pipeline. Requires a CapSharded detector.
	Shards int

	// Detector selects the registered detection algorithm by name; ""
	// selects DefaultDetector (the paper's UBF/IFF pipeline). See
	// RegisterDetector and DetectorNames for the registry.
	Detector string

	// EnclosureMargin parameterizes the sv-enclosure competitor: a node
	// is a boundary candidate when some direction's half-space, pushed
	// EnclosureMargin·R inward, contains none of its known neighbors.
	// Zero means 0.2; other detectors ignore it.
	EnclosureMargin float64
	// DegreeFraction parameterizes the degree-stats competitor: node i
	// is a candidate when deg(i) < DegreeFraction · (mean degree over
	// its two-hop neighborhood). Zero means 0.75; other detectors
	// ignore it.
	DegreeFraction float64
}

func (c Config) withDefaults(haveMeasurement bool) Config {
	if c.BallRadiusFactor == 0 {
		c.BallRadiusFactor = 1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-9
	}
	if c.InteriorTolerance == 0 {
		c.InteriorTolerance = 1e-9
	}
	if c.Coords == 0 {
		if haveMeasurement {
			c.Coords = CoordsMDS
		} else {
			c.Coords = CoordsTrue
		}
	}
	if c.Scope == 0 {
		c.Scope = ScopeTwoHop
	}
	if c.MDS.SmacofIterations == 0 {
		c.MDS.SmacofIterations = 40
	}
	if c.MinSharedForStitch == 0 {
		c.MinSharedForStitch = 4
	}
	if c.AdaptiveTolFactor == 0 {
		c.AdaptiveTolFactor = 1
	}
	if c.MaxBorderline == 0 {
		c.MaxBorderline = -1
	}
	if c.IFFThreshold == 0 {
		c.IFFThreshold = 20
	}
	if c.IFFTTL == 0 {
		c.IFFTTL = 3
	}
	if c.RetransmitBudget == 0 {
		c.RetransmitBudget = 3
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EnclosureMargin == 0 {
		c.EnclosureMargin = 0.2
	}
	if c.DegreeFraction == 0 {
		c.DegreeFraction = 0.75
	}
	return c
}

// Validate is the single validation choke point for detection configs:
// every CLI (via cli.Common), the boundaryd session API, and
// DetectContext itself call it, so a bad width or detector name fails
// identically at every seam. It checks only the fields whose invalid
// values used to be clamped or rejected far from their source; the
// remaining fields are defaulted and checked by the selected detector.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("%w, got %d", ErrNegativeWorkers, c.Workers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("%w, got %d", ErrNegativeShards, c.Shards)
	}
	if _, ok := LookupDetector(c.Detector); !ok {
		return fmt.Errorf("%w %q (valid: %s)", ErrUnknownDetector, c.Detector, detectorNameList())
	}
	return nil
}

// Result is the full outcome of boundary detection on a network.
type Result struct {
	// UBF marks nodes identified by Phase 1 (Unit Ball Fitting).
	UBF []bool
	// Boundary marks nodes surviving Phase 2 (IFF) — the final answer.
	Boundary []bool
	// FragmentSize holds each boundary candidate's IFF flood count (the
	// number of fellow candidates heard within IFFTTL hops, self
	// included).
	FragmentSize []int
	// GroupLabel assigns each final boundary node its boundary's label
	// (the smallest node ID on that boundary); sim.NoGroup elsewhere.
	GroupLabel []int
	// Groups lists the distinct boundaries, each as ascending node IDs.
	Groups [][]int
	// BallsTested and NodesChecked aggregate per-node UBF work for the
	// Theorem 1 complexity study.
	BallsTested  []int
	NodesChecked []int
	// CoordError records, under CoordsMDS, each node's one-hop frame
	// RMSD against true positions after rigid alignment (a localization
	// quality diagnostic); nil under CoordsTrue.
	CoordError []float64
	// IFFMessages and GroupingMessages count the packets exchanged by
	// the two flooding phases — the protocol's communication cost
	// (UBF itself sends nothing beyond the initial beacon exchanges).
	IFFMessages      int
	GroupingMessages int
	// CandidateMessages counts packets exchanged by a competitor
	// detector's candidate-selection phase (e.g. the sv-contour floods);
	// always zero for the paper pipeline, whose UBF phase sends nothing
	// beyond the beacon exchange.
	CandidateMessages int
	// FaultStats aggregates the fault layer's counters across both
	// flooding phases; zero when Config.Faults is disabled.
	FaultStats sim.FaultStats
}

// ErrNoNetwork is returned when Detect is called without a network.
var ErrNoNetwork = errors.New("core: network is required")

// ErrNeedMeasurement is returned when CoordsMDS is selected without a
// measurement.
var ErrNeedMeasurement = errors.New("core: CoordsMDS requires a measurement")

// ErrNegativeWorkers and ErrNegativeShards reject configurations that
// used to be clamped silently (negative Workers became GOMAXPROCS deep in
// the worker pool; negative Shards fell through to the unsharded path).
// A caller asking for a negative width is a caller with a bug — fail
// loudly at the config seam instead.
var (
	ErrNegativeWorkers = errors.New("core: Config.Workers must be >= 0 (0 = one per CPU)")
	ErrNegativeShards  = errors.New("core: Config.Shards must be >= 0 (<= 1 = unsharded)")
)

// frame is one node's local coordinate chart: its closed one-hop
// neighborhood (node first) embedded by MDS.
type frame struct {
	members  []int
	coords   []geom.Vec3
	index    map[int]int // node ID -> position in members/coords
	residual float64     // RMS measured-vs-embedded distance residual
}

// Detect runs the full localized boundary-detection pipeline: local frames,
// Unit Ball Fitting, Isolated Fragment Filtering, and boundary grouping.
// meas may be nil when cfg.Coords is CoordsTrue.
//
// Deprecated: Detect is kept as a thin convenience wrapper for existing
// callers. New code should call DetectContext, which adds cancellation and
// observer injection; Detect is exactly
// DetectContext(context.Background(), nil, net, meas, cfg).
func Detect(net *netgen.Network, meas *netgen.Measurement, cfg Config) (*Result, error) {
	return DetectContext(context.Background(), nil, net, meas, cfg)
}

// DetectContext is Detect with cancellation and observation. ctx is
// checked between stages and inside the parallel per-node loops, so a
// cancelled run returns ctx.Err() promptly without partial results. o, when
// non-nil, receives span events for every stage (detect, frames, ubf, iff,
// grouping) plus typed counters (balls tested, grid cells probed, messages
// delivered/dropped/retransmitted, ...); a nil o adds no allocations and no
// measurable cost. Observation never changes the result: verdicts are
// bit-identical with tracing on or off.
//
// DetectContext is the detector dispatcher: cfg.Detector selects the
// registered algorithm ("" = the paper pipeline), and the call is a thin
// compatibility wrapper around Detector.DetectContext — for the paper
// detector its output is bit-identical to the pre-registry pipeline.
func DetectContext(ctx context.Context, o obs.Observer, net *netgen.Network, meas *netgen.Measurement, cfg Config) (*Result, error) {
	if net == nil {
		return nil, ErrNoNetwork
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	det, _ := LookupDetector(cfg.Detector) // Validate vouched for the name
	if cfg.Shards > 1 && !det.Caps().Has(CapSharded) {
		return nil, fmt.Errorf("core: detector %q does not support sharding (Config.Shards = %d)", det.Name(), cfg.Shards)
	}
	return det.DetectContext(ctx, o, net, meas, cfg)
}

// paperDetect is the paper's UBF/IFF pipeline — the pre-registry
// DetectContext body, unchanged. PaperDetector delegates here.
func paperDetect(ctx context.Context, o obs.Observer, net *netgen.Network, meas *netgen.Measurement, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(meas != nil)
	if cfg.Coords == CoordsMDS && meas == nil {
		return nil, ErrNeedMeasurement
	}
	if cfg.Coords != CoordsMDS && cfg.Coords != CoordsTrue {
		return nil, fmt.Errorf("core: unknown coordinate source %d", cfg.Coords)
	}
	if cfg.Scope != ScopeOneHop && cfg.Scope != ScopeTwoHop {
		return nil, fmt.Errorf("core: unknown scope %d", cfg.Scope)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return detectSharded(ctx, o, net, meas, cfg)
	}

	detectSpan := obs.Start(o, obs.StageDetect)
	defer detectSpan.End()

	tab := NewNodeTable(net, meas)
	n := tab.Len()
	obs.Add(o, obs.StageDetect, obs.CtrNodes, int64(n))
	res := &Result{
		UBF:          make([]bool, n),
		BallsTested:  make([]int, n),
		NodesChecked: make([]int, n),
	}
	radius := cfg.BallRadiusFactor * (1 + cfg.Epsilon) * tab.Radius
	tol := cfg.InteriorTolerance * radius

	// Stage 1 (CoordsMDS only): every node builds its one-hop MDS frame.
	var frames []frame
	if cfg.Coords == CoordsMDS {
		var err error
		if frames, err = buildAllFrames(ctx, o, tab, cfg, res); err != nil {
			return nil, err
		}
	}

	// Stage 2: Unit Ball Fitting per node. Each worker owns a UBFScratch
	// (grid, tolerance and ordering buffers) and an assembleScratch, so the
	// steady-state per-node cost allocates nothing on the CoordsTrue path.
	ubfSpan := obs.Start(o, obs.StageUBF)
	scratch := make([]UBFScratch, cfg.Workers)
	asm := make([]assembleScratch, cfg.Workers)
	cellsProbed := make([]int64, cfg.Workers)
	err := par.For(n, cfg.Workers, func(w, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		coords, candidates, spreads := assembleKnowledge(tab, cfg, frames, i, &asm[w])
		// Per-point tolerance: every known position is discounted by its
		// own locally observable uncertainty — the spread of the
		// independent estimates the consensus stitching collected for
		// it (zero under CoordsTrue).
		tolAt := uniformTol(tol)
		maxBorderline := -1
		if cfg.AdaptiveTolFactor > 0 && spreads != nil {
			factor := cfg.AdaptiveTolFactor
			tolAt = func(idx int) float64 {
				if a := factor * spreads[idx]; a > tol {
					return a
				}
				return tol
			}
			maxBorderline = cfg.MaxBorderline
		}
		r := scratch[w].Fit(coords, 0, candidates, radius, tolAt, maxBorderline)
		res.UBF[i] = r.Boundary
		res.BallsTested[i] = r.BallsTested
		res.NodesChecked[i] = r.NodesChecked
		cellsProbed[w] += int64(r.CellsProbed)
		return nil
	})
	if o != nil {
		var balls, checked, cells, marked int64
		for i := range res.BallsTested {
			balls += int64(res.BallsTested[i])
			checked += int64(res.NodesChecked[i])
			if res.UBF[i] {
				marked++
			}
		}
		for _, c := range cellsProbed {
			cells += c
		}
		obs.Add(o, obs.StageUBF, obs.CtrBallsTested, balls)
		obs.Add(o, obs.StageUBF, obs.CtrNodesChecked, checked)
		obs.Add(o, obs.StageUBF, obs.CtrGridCells, cells)
		obs.Add(o, obs.StageUBF, obs.CtrUBFBoundary, marked)
		// Flight recorder: each marked node claims boundary status
		// (Sec. II-A), in ascending ID for a deterministic trace.
		for i, b := range res.UBF {
			if b {
				obs.NodeTransition(o, obs.StageUBF, obs.TransBoundaryClaim, i, 0)
			}
		}
	}
	ubfSpan.End()
	if err != nil {
		return nil, err
	}

	if err := filterAndGroup(ctx, o, net, cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// filterAndGroup runs detection stages 3 and 4 — Isolated Fragment
// Filtering and boundary grouping — on the candidate set in res.UBF,
// filling Boundary, FragmentSize, GroupLabel, Groups and the message and
// fault counters. It is shared verbatim between the paper pipeline and
// the competitor detectors (their candidate phases replace UBF, the
// refinement tail is common), which is what keeps the paper path
// bit-identical and gives every detector the hardened fault/async
// protocol variants for free. cfg must already carry defaults.
func filterAndGroup(ctx context.Context, o obs.Observer, net *netgen.Network, cfg Config, res *Result) error {
	n := len(res.UBF)
	var err error

	// Stage 3: Isolated Fragment Filtering by TTL-bounded flooding.
	res.Boundary = make([]bool, n)
	iffSpan := obs.Start(o, obs.StageIFF)
	if cfg.IFFThreshold < 0 {
		copy(res.Boundary, res.UBF)
		res.FragmentSize = make([]int, n)
	} else {
		var counts []int
		var messages int
		// The probe routes the kernels' flight-recorder events and
		// aggregate counters (rounds, sent/delivered, fault totals)
		// straight to the observer; nothing is re-emitted here.
		pr := sim.Probe{Obs: o, Stage: obs.StageIFF}
		switch {
		case cfg.Faults.Enabled():
			iffFaults := cfg.Faults
			// Each phase gets an independent plan; keep the configured
			// seed for IFF and derive the grouping one below.
			plan := sim.NewFaultPlan(iffFaults, n)
			opt := sim.ReliableOptions{Budget: cfg.RetransmitBudget}
			if cfg.Async {
				var stats sim.AsyncResult
				counts, stats, err = sim.AsyncReliableFloodCount(net.G, res.UBF, cfg.IFFTTL, cfg.AsyncSeed, plan, opt, pr)
				messages = stats.Messages
			} else {
				var stats sim.Result
				counts, stats, err = sim.ReliableFloodCount(net.G, res.UBF, cfg.IFFTTL, plan, opt, pr)
				messages = stats.Messages
			}
			res.FaultStats.Add(plan.Stats())
		case cfg.Async:
			var stats sim.AsyncResult
			counts, stats, err = sim.AsyncFloodCount(net.G, res.UBF, cfg.IFFTTL, cfg.AsyncSeed, pr)
			messages = stats.Messages
		default:
			var stats sim.Result
			counts, stats, err = sim.FloodCountStats(net.G, res.UBF, cfg.IFFTTL, pr)
			messages = stats.Messages
		}
		if err != nil {
			iffSpan.End()
			return fmt.Errorf("IFF flooding: %w", err)
		}
		res.IFFMessages = messages
		res.FragmentSize = counts
		for i := range res.Boundary {
			res.Boundary[i] = res.UBF[i] && counts[i] >= cfg.IFFThreshold
			if res.UBF[i] && !res.Boundary[i] {
				// Flight recorder: IFF withdraws the claim; the value is
				// the fragment size that fell short of the threshold.
				obs.NodeTransition(o, obs.StageIFF, obs.TransIFFRescind, i, int64(counts[i]))
			}
		}
	}
	if o != nil {
		var final int64
		for _, b := range res.Boundary {
			if b {
				final++
			}
		}
		obs.Add(o, obs.StageIFF, obs.CtrBoundary, final)
	}
	iffSpan.End()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Stage 4: grouping — boundary nodes of the same surface connect
	// through boundary nodes only (Sec. II-B).
	groupSpan := obs.Start(o, obs.StageGrouping)
	var label []int
	var groupMessages int
	groupPr := sim.Probe{Obs: o, Stage: obs.StageGrouping}
	switch {
	case cfg.Faults.Enabled():
		groupFaults := cfg.Faults
		groupFaults.Seed++
		plan := sim.NewFaultPlan(groupFaults, n)
		opt := sim.ReliableOptions{Budget: cfg.RetransmitBudget}
		if cfg.Async {
			var stats sim.AsyncResult
			label, stats, err = sim.AsyncReliableLabelComponents(net.G, res.Boundary, cfg.AsyncSeed+1, plan, opt, groupPr)
			groupMessages = stats.Messages
		} else {
			var stats sim.Result
			label, stats, err = sim.ReliableLabelComponents(net.G, res.Boundary, plan, opt, groupPr)
			groupMessages = stats.Messages
		}
		res.FaultStats.Add(plan.Stats())
	case cfg.Async:
		var stats sim.AsyncResult
		label, stats, err = sim.AsyncLabelComponents(net.G, res.Boundary, cfg.AsyncSeed+1, groupPr)
		groupMessages = stats.Messages
	default:
		var stats sim.Result
		label, stats, err = sim.LabelComponentsStats(net.G, res.Boundary, groupPr)
		groupMessages = stats.Messages
	}
	if err != nil {
		groupSpan.End()
		return fmt.Errorf("grouping: %w", err)
	}
	res.GroupingMessages = groupMessages
	res.GroupLabel = label
	res.Groups = sim.Groups(label)
	obs.Add(o, obs.StageGrouping, obs.CtrGroups, int64(len(res.Groups)))
	groupSpan.End()
	return nil
}

// buildAllFrames is detection stage 1, shared by the paper pipeline and
// the enclosure competitor: every node builds its one-hop MDS frame in
// parallel, and res.CoordError records each frame's RMSD against true
// positions. cfg must carry defaults.
func buildAllFrames(ctx context.Context, o obs.Observer, tab *NodeTable, cfg Config, res *Result) ([]frame, error) {
	n := tab.Len()
	framesSpan := obs.Start(o, obs.StageFrames)
	res.CoordError = make([]float64, n)
	frames := make([]frame, n)
	err := par.For(n, cfg.Workers, func(_, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		f, err := buildFrame(tab, cfg, i)
		if err != nil {
			return fmt.Errorf("node %d frame: %w", i, err)
		}
		frames[i] = f
		truth := make([]geom.Vec3, len(f.members))
		for k, m := range f.members {
			truth[k] = tab.Pos[m]
		}
		if _, rmsd, aerr := geom.AlignRigid(f.coords, truth); aerr == nil {
			res.CoordError[i] = rmsd
		}
		return nil
	})
	framesSpan.End()
	if err != nil {
		return nil, err
	}
	return frames, nil
}

// buildFrame embeds node i's closed one-hop neighborhood from measured
// distances.
func buildFrame(tab *NodeTable, cfg Config, i int) (frame, error) {
	members := closedNeighborhood(tab, i)
	dist := func(a, b int) (float64, bool) {
		return tab.MeasLookup(members[a], members[b])
	}
	coords, err := mds.Localize(len(members), dist, cfg.MDS)
	if err != nil {
		return frame{}, err
	}
	index := make(map[int]int, len(members))
	for k, m := range members {
		index[m] = k
	}
	return frame{
		members:  members,
		coords:   coords,
		index:    index,
		residual: mds.ResidualRMS(coords, dist),
	}, nil
}

// assembleScratch holds one worker's reusable buffers for per-node
// knowledge assembly. Stage 2 assembles a fresh view for every node; with
// the buffers (and the stamp array replacing the two-hop dedup map) reused
// across nodes, the steady-state assembly allocates nothing.
type assembleScratch struct {
	members    []int
	candidates []int
	coords     []geom.Vec3
	spreads    []float64
	stamp      []int32 // stamp[u] == epoch ⟺ u already collected
	epoch      int32

	// Two-hop stitching state (CoordsMDS + ScopeTwoHop only): the collected
	// node order, a node-ID→slot map valid under the current epoch, the flat
	// estimate list with its per-slot bucket bounds, and the registration
	// point-pair buffers. Replaces the per-node map[int][]geom.Vec3 the
	// stitcher used to allocate, which dominated the UBF stage's allocation
	// profile.
	order  []int
	slotOf []int32
	ests   []stitchEst
	bucket []int32
	estBuf []geom.Vec3
	d2     []float64
	src    []geom.Vec3
	dst    []geom.Vec3
}

// stitchEst is one position estimate for the node occupying a stitch slot.
type stitchEst struct {
	slot int32
	pos  geom.Vec3
}

// visited returns the stamp array sized for n nodes under a fresh epoch, so
// membership resets in O(1) instead of clearing (or reallocating a map).
func (as *assembleScratch) visited(n int) []int32 {
	if len(as.stamp) < n {
		as.stamp = make([]int32, n)
		as.epoch = 0
	}
	as.epoch++
	if as.epoch == 0 { // epoch wrapped: clear once and restart
		for i := range as.stamp {
			as.stamp[i] = 0
		}
		as.epoch = 1
	}
	return as.stamp
}

// assembleKnowledge produces node i's view for the UBF test: coordinates
// with i first, the candidate indices (its one-hop neighbors), and each
// coordinate's uncertainty estimate (nil under CoordsTrue, meaning exact).
// Returned slices may alias as and are only valid until the next call with
// the same scratch.
func assembleKnowledge(tab *NodeTable, cfg Config, frames []frame, i int, as *assembleScratch) (coords []geom.Vec3, candidates []int, spreads []float64) {
	oneHop := tab.Neighbors(i)
	candidates = as.candidates[:0]
	for k := range oneHop {
		candidates = append(candidates, k+1) // coords layout: i, then its one-hop neighbors
	}
	as.candidates = candidates

	if cfg.Coords == CoordsTrue {
		members := append(as.members[:0], i)
		for _, v := range oneHop {
			members = append(members, int(v))
		}
		if cfg.Scope == ScopeTwoHop {
			members = extendTwoHop(tab, i, members, as)
		}
		as.members = members
		coords = as.coords[:0]
		for _, m := range members {
			coords = append(coords, tab.Pos[m])
		}
		as.coords = coords
		return coords, candidates, nil
	}

	own := frames[i]
	if cfg.Scope == ScopeOneHop {
		spreads = as.spreads[:0]
		for range own.coords {
			spreads = append(spreads, own.residual)
		}
		as.spreads = spreads
		return own.coords, candidates, spreads
	}
	coords, spreads = stitchTwoHop(tab, cfg, frames, i, as)
	return coords, candidates, spreads
}

// extendTwoHop appends the two-hop neighbors of i to members (which already
// holds i and its one-hop neighbors), preserving order and uniqueness.
func extendTwoHop(tab *NodeTable, i int, members []int, as *assembleScratch) []int {
	stamp := as.visited(tab.Len())
	e := as.epoch
	for _, m := range members {
		stamp[m] = e
	}
	for _, j := range tab.Neighbors(i) {
		for _, u := range tab.Neighbors(int(j)) {
			if stamp[u] != e {
				stamp[u] = e
				members = append(members, int(u))
			}
		}
	}
	return members
}

// stitchTwoHop extends node i's one-hop MDS frame with two-hop positions by
// rigidly registering each neighbor's frame onto i's own frame over their
// shared one-hop members, then fusing all available estimates per node:
//
//   - a one-hop member's position is its own-frame coordinate, but every
//     registered neighbor frame that also contains it contributes a
//     cross-check estimate;
//   - a two-hop node's position is the centroid of the estimates from the
//     neighbor frames that contain it.
//
// The per-point estimate spread (RMS deviation from the fused position) is
// returned alongside: it is the locally observable uncertainty of that
// coordinate. This catches the failure mode pure stress minimization
// cannot — a loosely-anchored member sitting in a zero-stress reflection —
// because independently-built frames disagree exactly there.
//
// Neighbors whose overlap is too small to register are skipped, as in a
// real deployment where a patch fails to align.
func stitchTwoHop(tab *NodeTable, cfg Config, frames []frame, i int, as *assembleScratch) ([]geom.Vec3, []float64) {
	own := frames[i]

	// Collect every estimate as a (slot, position) pair into one flat list;
	// slots are assigned in first-appearance order (own members first, then
	// two-hop nodes as registered frames surface them), so the slot order is
	// exactly the node order the map-based stitcher produced. The epoch
	// stamp marks which nodes hold a valid slot.
	stamp := as.visited(tab.Len())
	e := as.epoch
	if len(as.slotOf) < tab.Len() {
		as.slotOf = make([]int32, tab.Len())
	}
	slotOf := as.slotOf
	order := as.order[:0]
	ests := as.ests[:0]
	for k, m := range own.members {
		stamp[m] = e
		slotOf[m] = int32(len(order))
		order = append(order, m)
		ests = append(ests, stitchEst{slot: slotOf[m], pos: own.coords[k]})
	}
	nOwn := int32(len(own.members))
	for _, j := range tab.Neighbors(i) {
		fj := frames[j]
		src, dst := as.src[:0], as.dst[:0]
		for k, m := range fj.members {
			// m is one of i's own members iff it is stamped with a slot in
			// the own-member range: two-hop nodes added by earlier
			// neighbors sit at slots >= nOwn.
			if stamp[m] == e && slotOf[m] < nOwn {
				src = append(src, fj.coords[k])
				dst = append(dst, own.coords[slotOf[m]])
			}
		}
		as.src, as.dst = src, dst
		if len(src) < cfg.MinSharedForStitch {
			continue
		}
		tr, _, err := geom.AlignRigid(src, dst)
		if err != nil {
			continue
		}
		for k, m := range fj.members {
			if stamp[m] != e {
				stamp[m] = e
				slotOf[m] = int32(len(order))
				order = append(order, m)
			}
			ests = append(ests, stitchEst{slot: slotOf[m], pos: tr.Apply(fj.coords[k])})
		}
	}
	as.order, as.ests = order, ests

	// Stable counting sort of the estimates by slot: per-slot buckets in
	// arrival order, identical to the per-node append lists they replace.
	nSlots := len(order)
	if cap(as.bucket) < nSlots+1 {
		as.bucket = make([]int32, nSlots+1)
	}
	cnt := as.bucket[:nSlots+1]
	for k := range cnt {
		cnt[k] = 0
	}
	for _, es := range ests {
		cnt[es.slot+1]++
	}
	for s := 1; s <= nSlots; s++ {
		cnt[s] += cnt[s-1]
	}
	if cap(as.estBuf) < len(ests) {
		as.estBuf = make([]geom.Vec3, len(ests))
	}
	estBuf := as.estBuf[:len(ests)]
	for _, es := range ests {
		estBuf[cnt[es.slot]] = es.pos
		cnt[es.slot]++
	}
	// After the scatter cnt[s] is the end of bucket s.

	if cap(as.coords) < nSlots {
		as.coords = make([]geom.Vec3, nSlots)
	}
	if cap(as.spreads) < nSlots {
		as.spreads = make([]float64, nSlots)
	}
	coords := as.coords[:nSlots]
	spreads := as.spreads[:nSlots]
	lo := int32(0)
	for s := 0; s < nSlots; s++ {
		hi := cnt[s]
		bucket := estBuf[lo:hi]
		lo = hi
		// Fuse by medoid, not centroid: when a member sits in a
		// zero-stress reflection in one frame, its estimates form a
		// correct-majority cluster plus flipped outliers; the medoid
		// snaps to the majority (repairing the position), whereas a
		// centroid would land uselessly in between.
		center := medoid(bucket)
		coords[s] = center
		spreads[s] = clusterSpread(bucket, center, own.residual, &as.d2)
	}
	as.coords, as.spreads = coords, spreads
	return coords, spreads
}

// medoid returns the estimate minimizing the total distance to the others.
// Ties break toward the earliest estimate (the own-frame one for one-hop
// members), keeping fusion deterministic.
func medoid(ests []geom.Vec3) geom.Vec3 {
	if len(ests) == 1 {
		return ests[0]
	}
	best, bestSum := 0, math.Inf(1)
	for i := range ests {
		var sum float64
		for j := range ests {
			sum += ests[i].Dist(ests[j])
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return ests[best]
}

// clusterSpread estimates a fused position's uncertainty as the RMS
// deviation of the nearer half of the estimates (the majority cluster),
// so that a single flipped outlier does not drown the signal; with no
// cross-check available it falls back to the frame residual.
func clusterSpread(ests []geom.Vec3, center geom.Vec3, fallback float64, buf *[]float64) float64 {
	if len(ests) <= 1 {
		return fallback
	}
	d2 := (*buf)[:0]
	for _, e := range ests {
		d2 = append(d2, e.Dist2(center))
	}
	*buf = d2
	// Insertion sort: the estimate count is bounded by the node degree, and
	// sorting in place on the reused buffer keeps the call allocation-free.
	for i := 1; i < len(d2); i++ {
		for j := i; j > 0 && d2[j] < d2[j-1]; j-- {
			d2[j], d2[j-1] = d2[j-1], d2[j]
		}
	}
	// Majority cluster: the nearest ceil(m/2) co-estimates (excluding
	// the zero self-distance at d2[0]).
	keep := (len(d2) + 1) / 2
	if keep < 2 {
		keep = 2
	}
	if keep > len(d2) {
		keep = len(d2)
	}
	var sum float64
	for _, v := range d2[1:keep] {
		sum += v
	}
	if keep <= 1 {
		return fallback
	}
	return math.Sqrt(sum / float64(keep-1))
}

// closedNeighborhood returns node i followed by its one-hop neighbors —
// the set Γ_i of Algorithm 1.
func closedNeighborhood(tab *NodeTable, i int) []int {
	nbrs := tab.Neighbors(i)
	members := make([]int, 0, len(nbrs)+1)
	members = append(members, i)
	for _, v := range nbrs {
		members = append(members, int(v))
	}
	return members
}
