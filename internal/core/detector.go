package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/netgen"
	"repro/internal/obs"
)

// DetectorCaps is a detector's capability bitmask: which optional engine
// features a Detector implementation supports. The dispatcher in
// DetectContext and the serving layer consult it before routing work, so
// asking an incapable detector for a feature fails at the config seam
// instead of deep inside a pipeline.
type DetectorCaps uint32

const (
	// CapSharded: the detector honors Config.Shards > 1 (spatial shards
	// with bit-identical stitch-back).
	CapSharded DetectorCaps = 1 << iota
	// CapIncremental: the detector backs core.Incremental's dirty-region
	// repair, so a boundaryd session can apply deltas without full
	// recomputation.
	CapIncremental
	// CapFaults: the detector's flooding phases honor Config.Faults and
	// Config.Async (the hardened sim kernels).
	CapFaults
	// CapMeasurement: the detector consumes a ranging measurement
	// (CoordsMDS frames); detectors without it ignore meas entirely, so
	// their verdicts do not vary with ranging error.
	CapMeasurement
)

// Has reports whether every capability in want is present.
func (c DetectorCaps) Has(want DetectorCaps) bool { return c&want == want }

// DetectorVocab declares the obs vocabulary a detector emits — the
// contract consumers (eval ablation derivation, tracestat gates,
// cross-detector tables) use instead of hard-coding the paper pipeline's
// stage names. A detector must emit spans only under its declared Stages
// (plus StageDetect) and must account its primary per-node work under
// WorkKeys.
type DetectorVocab struct {
	// Stages lists the stages the detector spans, in pipeline order,
	// starting with StageDetect.
	Stages []obs.Stage
	// WorkKeys names the "stage/counter" roll-up keys (the
	// obs.Mem.Totals key format) measuring the detector's primary
	// per-node work, e.g. "ubf/balls_tested" for the paper pipeline.
	WorkKeys []string
	// FloodStages lists the stages that run message-passing floods and
	// therefore emit the msgs_* counter family.
	FloodStages []obs.Stage
}

// Detector is one boundary-detection algorithm behind the shared
// dispatcher. Implementations must be stateless values: DetectContext may
// be called concurrently, results must be deterministic for a fixed
// (net, meas, cfg) at any worker count, and observation must never change
// the verdict. Every implementation fills the shared Result group
// structure (UBF = candidate set, Boundary = final set, Groups) so
// downstream consumers — metrics, mesh, serve — stay detector-agnostic.
type Detector interface {
	// Name is the registry key, as spelled by -detector and the JSON
	// envelope's "detector" field.
	Name() string
	// Caps declares the optional engine features the detector supports.
	Caps() DetectorCaps
	// Vocab declares the obs stages and counters the detector emits.
	Vocab() DetectorVocab
	// DetectContext runs the detection pipeline. cfg arrives validated
	// (Config.Validate passed) but not defaulted; meas may be nil.
	DetectContext(ctx context.Context, o obs.Observer, net *netgen.Network, meas *netgen.Measurement, cfg Config) (*Result, error)
}

// DefaultDetector is the registry key Config.Detector == "" resolves to:
// the paper's UBF/IFF reference pipeline.
const DefaultDetector = "paper"

// ErrUnknownDetector rejects Config.Detector values absent from the
// registry; Config.Validate wraps it with the valid-name list.
var ErrUnknownDetector = errors.New("core: unknown detector")

var (
	detectorMu  sync.RWMutex
	detectorReg = map[string]Detector{}
)

// RegisterDetector adds a detector to the registry. It panics on an empty
// name or a duplicate registration — both are programmer errors at init
// time, not runtime conditions.
func RegisterDetector(d Detector) {
	name := d.Name()
	if name == "" {
		panic("core: RegisterDetector: empty detector name")
	}
	detectorMu.Lock()
	defer detectorMu.Unlock()
	if _, dup := detectorReg[name]; dup {
		panic(fmt.Sprintf("core: RegisterDetector: duplicate detector %q", name))
	}
	detectorReg[name] = d
}

// LookupDetector resolves a registry name; "" resolves to
// DefaultDetector. ok is false for names never registered.
func LookupDetector(name string) (Detector, bool) {
	if name == "" {
		name = DefaultDetector
	}
	detectorMu.RLock()
	defer detectorMu.RUnlock()
	d, ok := detectorReg[name]
	return d, ok
}

// DetectorNames lists the registered detector names, sorted.
func DetectorNames() []string {
	detectorMu.RLock()
	names := make([]string, 0, len(detectorReg))
	for name := range detectorReg {
		names = append(names, name)
	}
	detectorMu.RUnlock()
	sort.Strings(names)
	return names
}

// detectorNameList renders the registry for error messages.
func detectorNameList() string {
	return strings.Join(DetectorNames(), ", ")
}

func init() {
	RegisterDetector(PaperDetector{})
	RegisterDetector(svEnclosureDetector{})
	RegisterDetector(svContourDetector{})
	RegisterDetector(degreeStatsDetector{})
}

// PaperDetector is the reference implementation: the source paper's
// localized UBF/IFF pipeline (frames → Unit Ball Fitting → Isolated
// Fragment Filtering → grouping). DetectContext dispatches to it when
// Config.Detector is "" or "paper"; its output is pinned bit-identical to
// the pre-interface pipeline by the shard/incremental differential
// suites.
type PaperDetector struct{}

// Name implements Detector.
func (PaperDetector) Name() string { return DefaultDetector }

// Caps implements Detector: the paper pipeline supports every optional
// engine feature.
func (PaperDetector) Caps() DetectorCaps {
	return CapSharded | CapIncremental | CapFaults | CapMeasurement
}

// Vocab implements Detector.
func (PaperDetector) Vocab() DetectorVocab {
	return DetectorVocab{
		Stages: []obs.Stage{
			obs.StageDetect, obs.StageFrames, obs.StageUBF,
			obs.StageIFF, obs.StageGrouping,
		},
		WorkKeys:    []string{"ubf/balls_tested", "ubf/nodes_checked"},
		FloodStages: []obs.Stage{obs.StageIFF, obs.StageGrouping},
	}
}

// DetectContext implements Detector; the body is the pre-interface
// pipeline, moved verbatim from the old DetectContext.
func (PaperDetector) DetectContext(ctx context.Context, o obs.Observer, net *netgen.Network, meas *netgen.Measurement, cfg Config) (*Result, error) {
	return paperDetect(ctx, o, net, meas, cfg)
}
