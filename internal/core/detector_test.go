// Registry and contract tests for the detector zoo: name resolution,
// Config.Validate as the single choke point for unknown names, capability
// gating at the dispatch seams, and the obs-vocabulary contract (a
// detector emits counters only under its declared stages, and its declared
// work keys actually appear).
package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestDetectorRegistryNames(t *testing.T) {
	names := DetectorNames()
	for _, want := range []string{"paper", "sv-enclosure", "sv-contour", "degree-stats"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("DetectorNames not sorted: %v", names)
		}
	}

	def, ok := LookupDetector("")
	if !ok || def.Name() != DefaultDetector {
		t.Fatalf(`LookupDetector("") = %v, %v; want the %q detector`, def, ok, DefaultDetector)
	}
	if _, ok := LookupDetector("no-such-detector"); ok {
		t.Fatal("LookupDetector resolved an unregistered name")
	}
}

func TestDetectorValidateUnknownName(t *testing.T) {
	err := Config{Detector: "no-such-detector"}.Validate()
	if !errors.Is(err, ErrUnknownDetector) {
		t.Fatalf("Validate = %v, want ErrUnknownDetector", err)
	}
	// The message must teach the valid spellings.
	if !strings.Contains(err.Error(), DefaultDetector) {
		t.Fatalf("error %q does not list the valid detector names", err)
	}

	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("empty config must validate (default detector): %v", err)
	}
	if err := (Config{Detector: DefaultDetector}).Validate(); err != nil {
		t.Fatalf("explicit %q must validate: %v", DefaultDetector, err)
	}
}

// TestDetectorCapGates verifies the two dispatch seams that consult the
// capability bitmask: sharding and incremental repair are refused up
// front for detectors that do not declare them.
func TestDetectorCapGates(t *testing.T) {
	net := metamorphicWorlds(t)[0].net

	for _, name := range DetectorNames() {
		det, _ := LookupDetector(name)
		if det.Caps().Has(CapSharded) {
			continue
		}
		cfg := metaCfg(name, 1)
		cfg.Shards = 2
		if _, err := DetectContext(context.Background(), nil, net, nil, cfg); err == nil ||
			!strings.Contains(err.Error(), "sharding") {
			t.Fatalf("%s: Shards=2 must fail with a sharding error, got %v", name, err)
		}
	}

	for _, name := range DetectorNames() {
		det, _ := LookupDetector(name)
		if det.Caps().Has(CapIncremental) {
			continue
		}
		if _, err := NewIncremental(net, metaCfg(name, 1)); err == nil ||
			!strings.Contains(err.Error(), "incremental") {
			t.Fatalf("%s: NewIncremental must fail for a non-incremental detector, got %v", name, err)
		}
	}
}

// TestDetectorVocabContract runs every registered detector under a
// recording observer and checks the declared vocabulary against what was
// actually emitted: every counter falls under a declared stage, every
// declared work key shows up with a positive total, and FloodStages is a
// subset of Stages.
func TestDetectorVocabContract(t *testing.T) {
	net := metamorphicWorlds(t)[0].net

	for _, name := range DetectorNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			det, _ := LookupDetector(name)
			vocab := det.Vocab()
			if len(vocab.Stages) == 0 || vocab.Stages[0] != obs.StageDetect {
				t.Fatalf("Vocab().Stages must start with StageDetect, got %v", vocab.Stages)
			}
			declared := map[string]bool{}
			for _, s := range vocab.Stages {
				declared[s.String()] = true
			}
			for _, s := range vocab.FloodStages {
				if !declared[s.String()] {
					t.Fatalf("flood stage %s not in declared Stages", s)
				}
			}

			mem := &obs.Mem{}
			if _, err := DetectContext(context.Background(), mem, net, nil, metaCfg(name, 1)); err != nil {
				t.Fatal(err)
			}
			totals := mem.Totals()
			for key := range totals {
				stage := key[:strings.IndexByte(key, '/')]
				if !declared[stage] {
					t.Errorf("counter %s emitted under undeclared stage %s", key, stage)
				}
			}
			for _, key := range vocab.WorkKeys {
				if totals[key] <= 0 {
					t.Errorf("declared work key %s absent or zero (totals %v)", key, totals)
				}
			}
		})
	}
}
