package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/shapes"
	"repro/internal/sim"
)

// Networks are expensive to generate and detection-test fixtures are pure,
// so fixtures are built once and shared.
var (
	fixtureOnce sync.Once
	ballNet     *netgen.Network
	holeNet     *netgen.Network
	fixtureErr  error
)

func fixtures(t *testing.T) (*netgen.Network, *netgen.Network) {
	t.Helper()
	fixtureOnce.Do(func() {
		ballNet, fixtureErr = netgen.Generate(netgen.Config{
			Shape:           shapes.NewBall(geom.Zero, 4),
			SurfaceNodes:    500,
			InteriorNodes:   1500,
			TargetAvgDegree: 17,
			Seed:            60,
		})
		if fixtureErr != nil {
			return
		}
		holeShape, err := shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(8, 8, 8),
			[]geom.Sphere{{Center: geom.V(4, 4, 4), Radius: 2}})
		if err != nil {
			fixtureErr = err
			return
		}
		holeNet, fixtureErr = netgen.Generate(netgen.Config{
			Shape:           holeShape,
			SurfaceNodes:    900,
			InteriorNodes:   2400,
			TargetAvgDegree: 17,
			Seed:            61,
		})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return ballNet, holeNet
}

// classify splits a detection mask against ground truth.
func classify(net *netgen.Network, found []bool) (correct, mistaken, missing int) {
	for i, n := range net.Nodes {
		switch {
		case found[i] && n.OnSurface:
			correct++
		case found[i] && !n.OnSurface:
			mistaken++
		case !found[i] && n.OnSurface:
			missing++
		}
	}
	return correct, mistaken, missing
}

func TestDetectValidation(t *testing.T) {
	if _, err := Detect(nil, nil, Config{}); err != ErrNoNetwork {
		t.Errorf("nil network: err = %v", err)
	}
	net, _ := fixtures(t)
	if _, err := Detect(net, nil, Config{Coords: CoordsMDS}); err != ErrNeedMeasurement {
		t.Errorf("MDS without measurement: err = %v", err)
	}
	if _, err := Detect(net, nil, Config{Coords: CoordSource(99)}); err == nil {
		t.Error("unknown coord source should fail")
	}
}

func TestDetectTrueCoordsOnSphere(t *testing.T) {
	net, _ := fixtures(t)
	res, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	correct, mistaken, missing := classify(net, res.Boundary)
	surface := 0
	for _, n := range net.Nodes {
		if n.OnSurface {
			surface++
		}
	}
	// At zero error the paper reports near-perfect detection: almost all
	// true boundary nodes found, mistaken nodes confined to the
	// immediate vicinity of the surface.
	if recall := float64(correct) / float64(surface); recall < 0.95 {
		t.Errorf("recall = %.3f (correct=%d missing=%d), want >= 0.95", recall, correct, missing)
	}
	if float64(mistaken) > 0.6*float64(surface) {
		t.Errorf("mistaken = %d out of %d true, too many", mistaken, surface)
	}
	// Every mistaken node must hug the true boundary (the paper: within
	// ~3 hops; geometrically within ~1.5 radio ranges here).
	for i, n := range net.Nodes {
		if res.Boundary[i] && !n.OnSurface {
			depth := 4 - n.Pos.Dist(geom.Zero)
			if depth > 1.6*net.Radius {
				t.Errorf("mistaken node %d at depth %.2f radii", i, depth/net.Radius)
			}
		}
	}
}

func TestDetectGroupsSeparateBoundaries(t *testing.T) {
	_, net := fixtures(t)
	res, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("got %d boundary groups, want 2 (outer box + hole)", len(res.Groups))
	}
	// The hole group must consist of nodes near the cavity sphere; the
	// outer group of nodes near the box surface.
	center := geom.V(4, 4, 4)
	var outer, hole []int
	if len(res.Groups[0]) > len(res.Groups[1]) {
		outer, hole = res.Groups[0], res.Groups[1]
	} else {
		outer, hole = res.Groups[1], res.Groups[0]
	}
	for _, i := range hole {
		if d := net.Nodes[i].Pos.Dist(center); d > 2+1.6*net.Radius {
			t.Errorf("hole-group node %d at distance %.2f from cavity", i, d)
		}
	}
	for _, i := range outer {
		if d := net.Nodes[i].Pos.Dist(center); d < 2 {
			t.Errorf("outer-group node %d inside cavity radius", i)
		}
	}
	// Labels must agree with groups.
	for gi, group := range res.Groups {
		for _, i := range group {
			if res.GroupLabel[i] != group[0] {
				t.Errorf("group %d node %d has label %d", gi, i, res.GroupLabel[i])
			}
		}
	}
	for i, l := range res.GroupLabel {
		if res.Boundary[i] != (l != sim.NoGroup) {
			t.Errorf("label/boundary mismatch at %d", i)
		}
	}
}

func TestDetectIFFDisabled(t *testing.T) {
	net, _ := fixtures(t)
	withIFF, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Detect(net, nil, Config{IFFThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Without IFF the final mask equals raw UBF; with IFF it is a subset.
	for i := range without.Boundary {
		if without.Boundary[i] != without.UBF[i] {
			t.Fatal("IFF-disabled result differs from UBF")
		}
		if withIFF.Boundary[i] && !withIFF.UBF[i] {
			t.Fatal("IFF added a node")
		}
	}
	// UBF phase must be identical across the two runs.
	for i := range withIFF.UBF {
		if withIFF.UBF[i] != without.UBF[i] {
			t.Fatal("UBF phase differs between runs")
		}
	}
}

func TestDetectIFFFiltersSmallFragments(t *testing.T) {
	net, _ := fixtures(t)
	res, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Boundary {
		if res.UBF[i] && !res.Boundary[i] && res.FragmentSize[i] >= 20 {
			t.Errorf("node %d filtered despite fragment size %d", i, res.FragmentSize[i])
		}
		if res.Boundary[i] && res.FragmentSize[i] < 20 {
			t.Errorf("node %d kept with fragment size %d", i, res.FragmentSize[i])
		}
	}
}

func TestDetectDeterministicAcrossWorkerCounts(t *testing.T) {
	net, _ := fixtures(t)
	// Three pipeline flavors: the plain synchronous run (grid-pruned UBF
	// hot path included), the asynchronous kernel, and an async run under
	// a recoverable fault plan (per-link loss within the retransmit
	// budget, so the hardened protocols still deliver exact results).
	// Each must produce a byte-identical Result regardless of worker
	// count — scheduling must never leak into verdicts, counters, or
	// fragment/group structure.
	configs := map[string]Config{
		"sync":  {},
		"async": {Async: true, AsyncSeed: 7},
		"faulty-async": {
			Async:            true,
			AsyncSeed:        7,
			RetransmitBudget: 3,
			Faults: sim.FaultConfig{
				Seed:            11,
				DropRate:        0.2,
				MaxDropsPerLink: 2, // ≤ RetransmitBudget: recoverable
				DuplicateRate:   0.1,
			},
		},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			cfg1 := cfg
			cfg1.Workers = 1
			a, err := Detect(net, nil, cfg1)
			if err != nil {
				t.Fatal(err)
			}
			cfg8 := cfg
			cfg8.Workers = 8
			b, err := Detect(net, nil, cfg8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				for i := range a.Boundary {
					if a.Boundary[i] != b.Boundary[i] || a.UBF[i] != b.UBF[i] {
						t.Fatalf("worker count changed verdict at node %d", i)
					}
					if a.BallsTested[i] != b.BallsTested[i] || a.NodesChecked[i] != b.NodesChecked[i] {
						t.Fatalf("worker count changed work accounting at node %d", i)
					}
				}
				t.Fatal("worker count changed the Result outside the per-node fields")
			}
		})
	}
}

func TestDetectMDSZeroErrorMatchesTrueCoords(t *testing.T) {
	net, _ := fixtures(t)
	oracle, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	meas := net.Measure(ranging.Exact{}, 0)
	viaMDS, err := Detect(net, meas, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if viaMDS.CoordError == nil {
		t.Fatal("MDS run did not record coordinate errors")
	}
	agree := 0
	for i := range oracle.Boundary {
		if oracle.Boundary[i] == viaMDS.Boundary[i] {
			agree++
		}
	}
	// Exact distances should reproduce the oracle almost everywhere
	// (MDS embedding residue can flip borderline nodes near the surface).
	if frac := float64(agree) / float64(net.Len()); frac < 0.92 {
		t.Errorf("MDS/oracle agreement = %.3f, want >= 0.92", frac)
	}
	// And detection quality through MDS must stay near-perfect, the
	// paper's Fig. 11(a) claim at 0 % error.
	correct, _, missing := classify(net, viaMDS.Boundary)
	if recall := float64(correct) / float64(correct+missing); recall < 0.94 {
		t.Errorf("MDS recall at 0%% error = %.3f, want >= 0.94", recall)
	}
}

func TestDetectMDSDegradesGracefully(t *testing.T) {
	net, _ := fixtures(t)
	exact := net.Measure(ranging.Exact{}, 0)
	noisy := net.Measure(ranging.UniformAdditive{Fraction: 0.8}, 1)
	resExact, err := Detect(net, exact, Config{})
	if err != nil {
		t.Fatal(err)
	}
	resNoisy, err := Detect(net, noisy, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, missExact := classify(net, resExact.Boundary)
	_, mistNoisy, missNoisy := classify(net, resNoisy.Boundary)
	// Heavy noise must hurt: more missing than the near-perfect exact run.
	if missNoisy <= missExact {
		t.Errorf("missing: noisy %d <= exact %d", missNoisy, missExact)
	}
	if mistNoisy == 0 && missNoisy == 0 {
		t.Error("80%% error produced a perfect result, which is implausible")
	}
	// Mean local coordinate error must grow with noise.
	meanErr := func(r *Result) float64 {
		var s float64
		for _, e := range r.CoordError {
			s += e
		}
		return s / float64(len(r.CoordError))
	}
	if meanErr(resNoisy) <= meanErr(resExact) {
		t.Errorf("coord error: noisy %v <= exact %v", meanErr(resNoisy), meanErr(resExact))
	}
}

func TestDetectBallRadiusFactorHoleSelectivity(t *testing.T) {
	// Sec. II-A3: with r much larger than the cavity, the cavity's
	// boundary nodes disappear while the outer boundary (unbounded free
	// space) survives.
	_, net := fixtures(t)
	small, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Detect(net, nil, Config{BallRadiusFactor: 2.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Groups) != 2 {
		t.Fatalf("default radius found %d groups, want 2", len(small.Groups))
	}
	if len(big.Groups) != 1 {
		t.Fatalf("enlarged radius found %d groups, want 1 (outer only)", len(big.Groups))
	}
}

func TestDegreeBaseline(t *testing.T) {
	net, _ := fixtures(t)
	if _, err := DegreeBaseline(nil, DegreeBaselineConfig{}); err != ErrNoNetwork {
		t.Errorf("nil network: err = %v", err)
	}
	if _, err := DegreeBaseline(net, DegreeBaselineConfig{Fraction: -1}); err == nil {
		t.Error("negative fraction should fail")
	}
	mask, err := DegreeBaseline(net, DegreeBaselineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The baseline is genuinely weak here: dense surface sampling gives
	// boundary nodes many same-surface neighbors, masking the degree
	// deficit. It only needs to be plausible, not good.
	correct, _, missing := classify(net, mask)
	recall := float64(correct) / float64(correct+missing)
	if recall < 0.1 {
		t.Errorf("baseline recall = %.3f, implausibly low", recall)
	}
	// UBF must beat the baseline on F1 at zero error — the reason the
	// paper's approach exists.
	ubf, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f1 := func(found []bool) float64 {
		c, m, miss := classify(net, found)
		if c == 0 {
			return 0
		}
		p := float64(c) / float64(c+m)
		r := float64(c) / float64(c+miss)
		return 2 * p * r / (p + r)
	}
	if f1(ubf.Boundary) <= f1(mask) {
		t.Errorf("UBF F1 %.3f not better than baseline F1 %.3f", f1(ubf.Boundary), f1(mask))
	}
}
