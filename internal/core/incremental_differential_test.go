package core

// Differential battery for the incremental engine: after EVERY delta, the
// engine's cached detection state must be bit-identical to a from-scratch
// DetectContext run over the current active node set — same verdict bits,
// same fragment sizes, same work counters, same group labels — across the
// worker and shard matrix. This is the suite the package comment of
// incremental.go points at; it is what licenses the dirty-region repair.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/shapes"
	"repro/internal/sim"
)

// incWorld is one deployment for the incremental differential battery —
// the same sphere/cube/torus trio as the sharded suite, sized down so a
// per-delta full recompute stays affordable.
type incWorld struct {
	name string
	net  *netgen.Network
}

var (
	incWorldsOnce sync.Once
	incWorldsVal  []incWorld
	incWorldsErr  error
)

func incWorlds(t *testing.T) []incWorld {
	t.Helper()
	incWorldsOnce.Do(func() {
		box, err := shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(6, 6, 6), nil)
		if err != nil {
			incWorldsErr = err
			return
		}
		tor, err := shapes.NewTorus(5, 2)
		if err != nil {
			incWorldsErr = err
			return
		}
		specs := []struct {
			name     string
			shape    shapes.Shape
			surf, in int
			seed     int64
		}{
			{"sphere", shapes.NewBall(geom.Zero, 4), 140, 260, 62},
			{"cube", box, 150, 280, 63},
			{"torus", tor, 220, 260, 5},
		}
		for _, sp := range specs {
			net, err := netgen.Generate(netgen.Config{
				Shape:           sp.shape,
				SurfaceNodes:    sp.surf,
				InteriorNodes:   sp.in,
				TargetAvgDegree: 16,
				Seed:            sp.seed,
			})
			if err != nil {
				incWorldsErr = fmt.Errorf("%s: %w", sp.name, err)
				return
			}
			incWorldsVal = append(incWorldsVal, incWorld{name: sp.name, net: net})
		}
	})
	if incWorldsErr != nil {
		t.Fatal(incWorldsErr)
	}
	return incWorldsVal
}

// deltaScript replays a seeded stream of join/move/leave/crash deltas
// against the engine, diffing against a full recompute after every step.
// minActive floors the departures so the network never thins out into
// triviality.
func deltaScript(t *testing.T, inc *Incremental, cfg Config, seed int64, steps, minActive int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	lo, hi := bboxOf(inc)
	pad := inc.Radius() / 2
	lo = lo.Add(geom.V(-pad, -pad, -pad))
	hi = hi.Add(geom.V(pad, pad, pad))
	randIn := func() geom.Vec3 {
		return geom.V(
			lo.X+rng.Float64()*(hi.X-lo.X),
			lo.Y+rng.Float64()*(hi.Y-lo.Y),
			lo.Z+rng.Float64()*(hi.Z-lo.Z),
		)
	}
	pickActive := func() int {
		ids := inc.ActiveIDs()
		return ids[rng.Intn(len(ids))]
	}
	for step := 0; step < steps; step++ {
		var d Delta
		switch p := rng.Float64(); {
		case p < 0.30:
			d = Delta{Op: DeltaJoin, Pos: randIn()}
		case p < 0.70:
			id := pickActive()
			pos := inc.pos[id]
			if rng.Float64() < 0.1 {
				pos = randIn() // occasional teleport across the world
			} else {
				r := inc.Radius()
				pos = pos.Add(geom.V(
					(rng.Float64()-0.5)*1.2*r,
					(rng.Float64()-0.5)*1.2*r,
					(rng.Float64()-0.5)*1.2*r,
				))
			}
			d = Delta{Op: DeltaMove, Node: id, Pos: pos}
		case p < 0.85 && inc.ActiveCount() > minActive:
			d = Delta{Op: DeltaLeave, Node: pickActive()}
		case inc.ActiveCount() > minActive:
			d = Delta{Op: DeltaCrash, Node: pickActive()}
		default:
			d = Delta{Op: DeltaJoin, Pos: randIn()}
		}
		wantID := -1
		if d.Op == DeltaJoin {
			wantID = inc.Len()
		}
		id, err := inc.Apply(d)
		if err != nil {
			t.Fatalf("step %d (%v): %v", step, d.Op, err)
		}
		if wantID >= 0 && id != wantID {
			t.Fatalf("step %d: join assigned ID %d, want next stable ID %d", step, id, wantID)
		}
		diffIncremental(t, fmt.Sprintf("step %d (%v node %d)", step, d.Op, id), inc, cfg)
	}
}

// diffIncremental recomputes the active network from scratch and fails
// unless the engine's snapshot matches bit for bit under the stable-ID
// renaming.
func diffIncremental(t *testing.T, label string, inc *Incremental, cfg Config) {
	t.Helper()
	net, err := netgen.Assemble(inc.ActiveNodes(), inc.Radius())
	if err != nil {
		t.Fatalf("%s: assemble: %v", label, err)
	}
	full, err := Detect(net, nil, cfg)
	if err != nil {
		t.Fatalf("%s: full recompute: %v", label, err)
	}
	snap := inc.Snapshot()
	ids := inc.ActiveIDs()
	if len(ids) != len(full.UBF) {
		t.Fatalf("%s: active count %d != recompute %d", label, len(ids), len(full.UBF))
	}
	activeSet := make([]bool, inc.Len())
	for k, s := range ids {
		activeSet[s] = true
		if snap.UBF[s] != full.UBF[k] {
			t.Fatalf("%s: UBF[%d] = %v, full %v", label, s, snap.UBF[s], full.UBF[k])
		}
		if snap.Boundary[s] != full.Boundary[k] {
			t.Fatalf("%s: Boundary[%d] = %v, full %v", label, s, snap.Boundary[s], full.Boundary[k])
		}
		if snap.FragmentSize[s] != full.FragmentSize[k] {
			t.Fatalf("%s: FragmentSize[%d] = %d, full %d", label, s, snap.FragmentSize[s], full.FragmentSize[k])
		}
		if snap.BallsTested[s] != full.BallsTested[k] {
			t.Fatalf("%s: BallsTested[%d] = %d, full %d", label, s, snap.BallsTested[s], full.BallsTested[k])
		}
		if snap.NodesChecked[s] != full.NodesChecked[k] {
			t.Fatalf("%s: NodesChecked[%d] = %d, full %d", label, s, snap.NodesChecked[s], full.NodesChecked[k])
		}
		wantLabel := full.GroupLabel[k]
		if wantLabel != sim.NoGroup {
			wantLabel = ids[wantLabel] // min-ID label under the monotone renaming
		}
		if snap.GroupLabel[s] != wantLabel {
			t.Fatalf("%s: GroupLabel[%d] = %d, full %d", label, s, snap.GroupLabel[s], wantLabel)
		}
	}
	for s, a := range activeSet {
		if a {
			continue
		}
		if snap.UBF[s] || snap.Boundary[s] || snap.FragmentSize[s] != 0 ||
			snap.BallsTested[s] != 0 || snap.NodesChecked[s] != 0 || snap.GroupLabel[s] != sim.NoGroup {
			t.Fatalf("%s: departed node %d holds detection state", label, s)
		}
	}
	if len(snap.Groups) != len(full.Groups) {
		t.Fatalf("%s: %d groups, full %d", label, len(snap.Groups), len(full.Groups))
	}
	for g := range full.Groups {
		if len(snap.Groups[g]) != len(full.Groups[g]) {
			t.Fatalf("%s: group %d size %d, full %d", label, g, len(snap.Groups[g]), len(full.Groups[g]))
		}
		for k, m := range full.Groups[g] {
			if snap.Groups[g][k] != ids[m] {
				t.Fatalf("%s: group %d member %d = %d, full %d", label, g, k, snap.Groups[g][k], ids[m])
			}
		}
	}
}

func bboxOf(inc *Incremental) (geom.Vec3, geom.Vec3) {
	ids := inc.ActiveIDs()
	lo, hi := inc.pos[ids[0]], inc.pos[ids[0]]
	for _, s := range ids {
		p := inc.pos[s]
		lo = geom.V(min(lo.X, p.X), min(lo.Y, p.Y), min(lo.Z, p.Z))
		hi = geom.V(max(hi.X, p.X), max(hi.Y, p.Y), max(hi.Z, p.Z))
	}
	return lo, hi
}

// TestIncrementalDifferential is the acceptance battery: sphere, cube and
// torus worlds, >= 50 seeded deltas each, engines seeded at every
// (workers, shards) in {1,4} x {1,4}, full-recompute diff after every
// single delta.
func TestIncrementalDifferential(t *testing.T) {
	worlds := incWorlds(t)
	matrix := []struct{ workers, shards int }{{1, 1}, {4, 4}, {1, 4}, {4, 1}}
	if testing.Short() {
		matrix = matrix[:2]
	}
	steps := 50
	for _, world := range worlds {
		for _, m := range matrix {
			t.Run(fmt.Sprintf("%s/w%d_s%d", world.name, m.workers, m.shards), func(t *testing.T) {
				cfg := Config{Workers: m.workers, Shards: m.shards}
				inc, err := NewIncremental(world.net, cfg)
				if err != nil {
					t.Fatal(err)
				}
				diffIncremental(t, "seed", inc, cfg)
				deltaScript(t, inc, cfg, 1000+int64(m.workers*10+m.shards), steps, 50)
			})
		}
	}
}

// TestIncrementalDifferentialIFFDisabled covers the IFFThreshold<0 repair
// path, where the boundary is the raw UBF verdict and fragment sizes stay
// zero.
func TestIncrementalDifferentialIFFDisabled(t *testing.T) {
	world := incWorlds(t)[0]
	cfg := Config{IFFThreshold: -1}
	inc, err := NewIncremental(world.net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diffIncremental(t, "seed", inc, cfg)
	deltaScript(t, inc, cfg, 77, 25, 50)
}

// TestIncrementalDifferentialOneHop covers ScopeOneHop, which shrinks the
// UBF dirty ball to a single hop.
func TestIncrementalDifferentialOneHop(t *testing.T) {
	world := incWorlds(t)[1]
	cfg := Config{Scope: ScopeOneHop}
	inc, err := NewIncremental(world.net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diffIncremental(t, "seed", inc, cfg)
	deltaScript(t, inc, cfg, 78, 25, 50)
}
