package core

// The sharded detection engine: the node set is cut into spatial shards
// (internal/partition over geom.PointGrid), each shard materializes a
// compacted struct-of-arrays view of its owned nodes plus a bounded ghost
// halo, the per-node phases run shard-parallel over those views, and the
// boundary groups are stitched back together with a deterministic
// union-find merge.
//
// Bit-identity with the unsharded pipeline rests on three facts, spelled
// out here because every test in shard_differential_test.go enforces them:
//
//  1. Locality (the paper's Sec. II): a node's UBF verdict reads its
//     two-hop neighborhood at most (coordinates of the frames it stitches),
//     and its IFF count reads the members within IFFTTL hops. A view at
//     halo depth D = max(scope hops, IFFTTL) therefore contains every node
//     any owned-node computation dereferences.
//  2. Edge completeness: a view keeps exactly the global adjacency
//     restricted to its node set, so any edge whose endpoints are both in
//     the view survives compaction — and every node at view depth d < D has
//     its *entire* global row present (its neighbors sit at depth ≤ d+1).
//     Traversals that only expand nodes below the halo boundary behave
//     exactly as on the full graph.
//  3. Monotone renaming: view nodes are sorted by global ID, so local IDs
//     are an order-preserving relabeling. Every order the pipeline's
//     kernels depend on — adjacency scan order, two-hop first-appearance
//     order, MDS member order, grid insertion order — is preserved, and
//     with it every tie-break, work counter, and floating-point operation
//     sequence.
//
// The flooding phases are evaluated by direct bounded traversal (IFF) and
// union-find (grouping) instead of message passing: the protocols compute
// graph quantities — |members within TTL hops through members| and
// per-component minimum IDs — that the traversals reproduce exactly.
// Consequently Async and Faults have nothing to perturb and are ignored,
// and Result.IFFMessages/GroupingMessages/FaultStats stay zero.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition/shard"
	"repro/internal/sim"
)

// shardView is one shard's compacted working set: struct-of-arrays tables
// over the view nodes (owned ∪ halo) with local contiguous IDs.
type shardView struct {
	// tab holds the view-local adjacency, positions and measured
	// distances; node l of tab is global node glob[l].
	tab NodeTable
	// glob maps local to global IDs, ascending — the renaming is monotone.
	glob []int32
	// depth is each view node's hop distance from the owned set: 0 for
	// owned nodes, 1..D for ghosts.
	depth []int8
	// owned lists the local IDs the shard owns, ascending.
	owned []int32
	// frames are the per-local-node MDS charts (CoordsMDS only), built for
	// every node whose frame an owned node's stitch can read.
	frames []frame
}

// maxShardHalo bounds the halo depth the sharded engine accepts; beyond it
// (an absurd IFFTTL) the halo would swallow the whole graph anyway, so the
// run falls back to the unsharded pipeline.
const maxShardHalo = 120

// shardHaloDepth returns the ghost-halo depth a configuration needs: the
// emptiness-knowledge scope in hops, or the IFF flood's TTL, whichever
// reaches farther.
func shardHaloDepth(cfg Config) int {
	d := 1
	if cfg.Scope == ScopeTwoHop {
		d = 2
	}
	if cfg.IFFThreshold >= 0 && cfg.IFFTTL > d {
		d = cfg.IFFTTL
	}
	return d
}

// buildShardView compacts shard s of the partition into local tables:
// view nodes ascending by global ID, adjacency filtered to the view,
// measured distances carried arc-parallel.
func buildShardView(tab *NodeTable, shd *shard.Sharding, s, depthHops int, sc *graph.Scratch) (*shardView, error) {
	glob, depth := shd.ViewNodes(tab.CSR, s, depthHops, nil, sc)
	nv := len(glob)
	v := &shardView{glob: glob, depth: depth}

	arcs := 0
	for _, g := range glob {
		arcs += tab.CSR.Degree(int(g))
	}
	rowPtr := make([]int32, nv+1)
	col := make([]int32, 0, arcs)
	var measFlat []float64
	if tab.Meas != nil {
		measFlat = make([]float64, 0, arcs)
	}
	pos := make([]geom.Vec3, nv)
	for l := 0; l < nv; l++ {
		g := int(glob[l])
		pos[l] = tab.Pos[g]
		rowPtr[l] = int32(len(col))
		row := tab.CSR.Neighbors(g)
		mrow := tab.MeasRow(g)
		for k, nb := range row {
			// Keep the arc when the neighbor is in the view; the local ID
			// is its position in the ascending glob array.
			at := sort.Search(nv, func(i int) bool { return glob[i] >= nb })
			if at == nv || glob[at] != nb {
				continue
			}
			col = append(col, int32(at))
			if measFlat != nil {
				measFlat = append(measFlat, mrow[k])
			}
		}
	}
	rowPtr[nv] = int32(len(col))
	csr, err := graph.NewCSRFromParts(rowPtr, col)
	if err != nil {
		return nil, err
	}
	v.tab = NodeTable{CSR: csr, Pos: pos, Meas: measFlat, Radius: tab.Radius}
	for l, d := range depth {
		if d == 0 {
			v.owned = append(v.owned, int32(l))
		}
	}
	return v, nil
}

// detectSharded is the Config.Shards > 1 execution path of DetectContext:
// same contract, same result bits, spatially sharded execution. cfg arrives
// validated and with defaults applied.
func detectSharded(ctx context.Context, o obs.Observer, net *netgen.Network, meas *netgen.Measurement, cfg Config) (*Result, error) {
	depthHops := shardHaloDepth(cfg)
	if depthHops > maxShardHalo {
		cfg.Shards = 1
		return DetectContext(ctx, o, net, meas, cfg)
	}

	detectSpan := obs.Start(o, obs.StageDetect)
	defer detectSpan.End()

	tab := NewNodeTable(net, meas)
	n := tab.Len()
	obs.Add(o, obs.StageDetect, obs.CtrNodes, int64(n))
	res := &Result{
		UBF:          make([]bool, n),
		BallsTested:  make([]int, n),
		NodesChecked: make([]int, n),
	}
	radius := cfg.BallRadiusFactor * (1 + cfg.Epsilon) * tab.Radius
	tol := cfg.InteriorTolerance * radius

	// Partition the volume and materialize every shard's view. Empty
	// shards (more shards than populated grid regions) stay nil.
	partSpan := obs.Start(o, obs.StagePartition)
	shd, err := shard.Spatial(tab.Pos, cfg.Shards)
	if err != nil {
		partSpan.End()
		return nil, err
	}
	views := make([]*shardView, cfg.Shards)
	scratch := make([]graph.Scratch, cfg.Workers)
	err = par.For(cfg.Shards, cfg.Workers, func(w, s int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if shd.OwnedCount(s) == 0 {
			return nil
		}
		v, verr := buildShardView(tab, shd, s, depthHops, &scratch[w])
		if verr != nil {
			return fmt.Errorf("shard %d view: %w", s, verr)
		}
		views[s] = v
		return nil
	})
	var halo int64
	for _, v := range views {
		if v != nil {
			halo += int64(len(v.glob) - len(v.owned))
		}
	}
	obs.Add(o, obs.StagePartition, obs.CtrShards, int64(cfg.Shards))
	obs.Add(o, obs.StagePartition, obs.CtrHaloNodes, halo)
	partSpan.End()
	if err != nil {
		return nil, err
	}

	// Stage 1 (CoordsMDS only): frames, per shard. A shard builds frames
	// for its owned nodes and for every ghost whose frame an owned node's
	// two-hop stitch reads (depth ≤ 1); ghost frames are recomputed
	// identically by every shard that needs them — MDS is deterministic in
	// its inputs, and fact 3 above keeps the inputs identical.
	if cfg.Coords == CoordsMDS {
		framesSpan := obs.Start(o, obs.StageFrames)
		res.CoordError = make([]float64, n)
		frameDepth := int8(0)
		if cfg.Scope == ScopeTwoHop {
			frameDepth = 1
		}
		err := par.For(cfg.Shards, cfg.Workers, func(_, s int) error {
			v := views[s]
			if v == nil {
				return nil
			}
			v.frames = make([]frame, len(v.glob))
			for l := range v.glob {
				if err := ctx.Err(); err != nil {
					return err
				}
				if v.depth[l] > frameDepth {
					continue
				}
				f, ferr := buildFrame(&v.tab, cfg, l)
				if ferr != nil {
					return fmt.Errorf("node %d frame: %w", v.glob[l], ferr)
				}
				v.frames[l] = f
				if v.depth[l] != 0 {
					continue
				}
				truth := make([]geom.Vec3, len(f.members))
				for k, m := range f.members {
					truth[k] = v.tab.Pos[m]
				}
				if _, rmsd, aerr := geom.AlignRigid(f.coords, truth); aerr == nil {
					res.CoordError[v.glob[l]] = rmsd
				}
			}
			return nil
		})
		framesSpan.End()
		if err != nil {
			return nil, err
		}
	}

	// Stage 2: Unit Ball Fitting, per shard over owned nodes. Worker
	// scratch is shared across shards; the epoch-stamped buffers re-arm
	// per node regardless of the view size changing underneath them.
	ubfSpan := obs.Start(o, obs.StageUBF)
	ubfScratch := make([]UBFScratch, cfg.Workers)
	asm := make([]assembleScratch, cfg.Workers)
	cellsProbed := make([]int64, cfg.Workers)
	err = par.For(cfg.Shards, cfg.Workers, func(w, s int) error {
		v := views[s]
		if v == nil {
			return nil
		}
		for _, l32 := range v.owned {
			if err := ctx.Err(); err != nil {
				return err
			}
			l := int(l32)
			coords, candidates, spreads := assembleKnowledge(&v.tab, cfg, v.frames, l, &asm[w])
			tolAt := uniformTol(tol)
			maxBorderline := -1
			if cfg.AdaptiveTolFactor > 0 && spreads != nil {
				factor := cfg.AdaptiveTolFactor
				tolAt = func(idx int) float64 {
					if a := factor * spreads[idx]; a > tol {
						return a
					}
					return tol
				}
				maxBorderline = cfg.MaxBorderline
			}
			r := ubfScratch[w].Fit(coords, 0, candidates, radius, tolAt, maxBorderline)
			g := v.glob[l]
			res.UBF[g] = r.Boundary
			res.BallsTested[g] = r.BallsTested
			res.NodesChecked[g] = r.NodesChecked
			cellsProbed[w] += int64(r.CellsProbed)
		}
		return nil
	})
	if o != nil {
		var balls, checked, cells, marked int64
		for i := range res.BallsTested {
			balls += int64(res.BallsTested[i])
			checked += int64(res.NodesChecked[i])
			if res.UBF[i] {
				marked++
			}
		}
		for _, c := range cellsProbed {
			cells += c
		}
		obs.Add(o, obs.StageUBF, obs.CtrBallsTested, balls)
		obs.Add(o, obs.StageUBF, obs.CtrNodesChecked, checked)
		obs.Add(o, obs.StageUBF, obs.CtrGridCells, cells)
		obs.Add(o, obs.StageUBF, obs.CtrUBFBoundary, marked)
		for i, b := range res.UBF {
			if b {
				obs.NodeTransition(o, obs.StageUBF, obs.TransBoundaryClaim, i, 0)
			}
		}
	}
	ubfSpan.End()
	if err != nil {
		return nil, err
	}

	// Stage 3: Isolated Fragment Filtering. The UBF barrier above is the
	// halo exchange: every shard now reads the global verdicts for its
	// ghosts. Each owned member's fragment size is the node count of a
	// depth-TTL BFS restricted to members — exactly the set of origins the
	// flooding protocol delivers to it (distance through member nodes,
	// self included at distance zero).
	res.Boundary = make([]bool, n)
	iffSpan := obs.Start(o, obs.StageIFF)
	if cfg.IFFThreshold < 0 {
		copy(res.Boundary, res.UBF)
		res.FragmentSize = make([]int, n)
	} else {
		counts := make([]int, n)
		members := make([]graph.NodeSet, cfg.Workers)
		err = par.For(cfg.Shards, cfg.Workers, func(w, s int) error {
			v := views[s]
			if v == nil {
				return nil
			}
			mset := &members[w]
			mset.Reset(len(v.glob))
			for l, g := range v.glob {
				if res.UBF[g] {
					mset.Add(l)
				}
			}
			sc := &scratch[w]
			var src [1]int
			for _, l32 := range v.owned {
				if err := ctx.Err(); err != nil {
					return err
				}
				g := v.glob[l32]
				if !res.UBF[g] {
					continue
				}
				src[0] = int(l32)
				v.tab.CSR.BFSHops(sc, src[:], mset, cfg.IFFTTL)
				counts[g] = len(sc.Reached())
			}
			return nil
		})
		if err != nil {
			iffSpan.End()
			return nil, err
		}
		res.FragmentSize = counts
		for i := range res.Boundary {
			res.Boundary[i] = res.UBF[i] && counts[i] >= cfg.IFFThreshold
			if res.UBF[i] && !res.Boundary[i] {
				obs.NodeTransition(o, obs.StageIFF, obs.TransIFFRescind, i, int64(counts[i]))
			}
		}
	}
	if o != nil {
		var final int64
		for _, b := range res.Boundary {
			if b {
				final++
			}
		}
		obs.Add(o, obs.StageIFF, obs.CtrBoundary, final)
	}
	iffSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 4: grouping. Each shard emits the boundary edges incident to
	// its owned nodes (owned rows are complete, so every boundary edge is
	// emitted by at least one endpoint's owner); the stitch is a
	// union-find merge keeping the smallest ID as each component's root,
	// which reproduces the min-ID labels of the propagation protocol in
	// any merge order.
	groupSpan := obs.Start(o, obs.StageGrouping)
	shardEdges := make([][][2]int32, cfg.Shards)
	err = par.For(cfg.Shards, cfg.Workers, func(_, s int) error {
		v := views[s]
		if v == nil {
			return nil
		}
		var edges [][2]int32
		for _, l32 := range v.owned {
			g := v.glob[l32]
			if !res.Boundary[g] {
				continue
			}
			for _, nb := range v.tab.CSR.Neighbors(int(l32)) {
				gb := v.glob[nb]
				if res.Boundary[gb] {
					edges = append(edges, [2]int32{g, gb})
				}
			}
		}
		shardEdges[s] = edges
		return nil
	})
	if err != nil {
		groupSpan.End()
		return nil, err
	}
	res.GroupLabel = stitchGroups(n, res.Boundary, shardEdges)
	res.Groups = sim.Groups(res.GroupLabel)
	obs.Add(o, obs.StageGrouping, obs.CtrGroups, int64(len(res.Groups)))
	groupSpan.End()
	return res, nil
}

// stitchGroups merges the shards' boundary-edge lists with union-find,
// attaching the larger root under the smaller so each component's root is
// its minimum ID — the label LabelComponents converges to. The outcome is
// independent of edge order, hence of shard count and scheduling.
func stitchGroups(n int, boundary []bool, shardEdges [][][2]int32) []int {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, edges := range shardEdges {
		for _, e := range edges {
			ra, rb := find(e[0]), find(e[1])
			switch {
			case ra == rb:
			case ra < rb:
				parent[rb] = ra
			default:
				parent[ra] = rb
			}
		}
	}
	label := make([]int, n)
	for i := range label {
		if boundary[i] {
			label[i] = int(find(int32(i)))
		} else {
			label[i] = sim.NoGroup
		}
	}
	return label
}
