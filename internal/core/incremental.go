package core

// The incremental detection engine: a long-lived network state that absorbs
// join/leave/move/crash deltas (the paper's own motivating dynamic events,
// Sec. I) and repairs the detection result by recomputing only the dirty
// region around each change, instead of re-running the pipeline from
// scratch.
//
// Bit-identity with a full recompute over the active nodes rests on the
// same locality facts the sharded engine documents in shard.go, applied in
// Euclidean rather than hop terms (a hop spans at most the radio range R):
//
//  1. UBF locality: node u's verdict is a function of the positions of its
//     scope-hop neighborhood (members within scopeHops hops, so within
//     scopeHops·R of u). Only edges incident to the changed node c change,
//     so u's member set or member positions can change only when c is (or
//     was) within scopeHops·R of u. Dirtying every active node within that
//     Euclidean ball of the change's old and new positions therefore
//     covers every node whose verdict inputs changed; extra dirty nodes
//     recompute to the value they already had.
//  2. IFF locality: a member's fragment size counts members within IFFTTL
//     hops through members. It can change only through a membership flip
//     (a node within scopeHops·R of c, by fact 1) reachable within IFFTTL
//     member-hops (≤ IFFTTL·R), or through c's own edges. Both are within
//     (scopeHops+IFFTTL)·R of the change.
//  3. Stable IDs are a monotone renaming of the compacted active network:
//     node IDs are never reused or renumbered, and adjacency rows are kept
//     sorted ascending with exactly netgen's connectivity predicate
//     (Dist2 <= R², self excluded), so every scan order, tie-break and
//     floating-point operation sequence matches a from-scratch
//     DetectContext run over the active nodes. The differential suite in
//     incremental_differential_test.go enforces this after every delta.
//
// The dirty-ball radii carry a 1e-9 relative slack: hop counts bound the
// Euclidean distance exactly in real arithmetic, and the slack absorbs the
// rounding of the distance comparison for configurations sitting exactly
// on the bound. Enlarging the dirty set is always safe (fact 1).
//
// Like the sharded engine, the incremental engine evaluates the flooding
// phases by direct bounded traversal (IFF) and union-find (grouping), so
// Async and Faults have nothing to perturb and are ignored, and the
// message/fault counters of snapshots stay zero.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
)

// DeltaOp enumerates the dynamic network events the engine absorbs.
type DeltaOp uint8

const (
	// DeltaJoin deploys a new node at Delta.Pos; the engine assigns it
	// the next stable ID.
	DeltaJoin DeltaOp = iota + 1
	// DeltaLeave removes node Delta.Node (an announced departure).
	DeltaLeave
	// DeltaMove relocates node Delta.Node to Delta.Pos.
	DeltaMove
	// DeltaCrash removes node Delta.Node without announcement. The
	// direct-evaluation engine sees the same topology change as a leave;
	// the distinct op exists so callers and traces can tell the paper's
	// two departure events apart.
	DeltaCrash
)

// String implements fmt.Stringer; unknown ops print as "delta?".
func (op DeltaOp) String() string {
	switch op {
	case DeltaJoin:
		return "join"
	case DeltaLeave:
		return "leave"
	case DeltaMove:
		return "move"
	case DeltaCrash:
		return "crash"
	}
	return "delta?"
}

// DeltaOpFromString inverts DeltaOp.String; false when unknown.
func DeltaOpFromString(name string) (DeltaOp, bool) {
	switch name {
	case "join":
		return DeltaJoin, true
	case "leave":
		return DeltaLeave, true
	case "move":
		return DeltaMove, true
	case "crash":
		return DeltaCrash, true
	}
	return 0, false
}

// Delta is one dynamic event. Node is the stable ID of the affected node
// (ignored for joins); Pos is the new position (joins and moves only).
type Delta struct {
	Op   DeltaOp
	Node int
	Pos  geom.Vec3
}

// Errors of the incremental engine. Delta validation happens before any
// mutation, so a failed Apply with one of these leaves the state exactly
// as it was.
var (
	// ErrIncrementalCoords rejects configurations the incremental engine
	// cannot serve: it holds positions only (no measurement state), so the
	// coordinate source must resolve to CoordsTrue.
	ErrIncrementalCoords = errors.New("core: incremental engine requires CoordsTrue")
	// ErrUnknownDeltaOp rejects a Delta whose Op is not one of the four
	// events.
	ErrUnknownDeltaOp = errors.New("core: unknown delta op")
	// ErrNoSuchNode rejects a Delta targeting an ID that was never
	// assigned or is no longer active.
	ErrNoSuchNode = errors.New("core: delta targets no active node")
	// ErrBadPosition rejects joins and moves to non-finite coordinates.
	ErrBadPosition = errors.New("core: delta position must be finite")
)

// dirtySlack inflates the Euclidean dirty-ball radii so nodes sitting
// exactly on a hop-count bound are dirtied despite comparison rounding.
const dirtySlack = 1 + 1e-9

// Incremental holds one network's detection state across deltas. It is not
// safe for concurrent use; a server serializes Apply/Snapshot per session.
// After a mid-recompute error (context cancellation), the cached verdicts
// are stale and the engine must be discarded; per-delta validation errors
// (ErrNoSuchNode, ErrBadPosition, ErrUnknownDeltaOp) happen before any
// mutation and leave it fully usable.
type Incremental struct {
	cfg       Config  // validated, defaults applied
	radius    float64 // radio range R
	ballR     float64 // UBF candidate-ball radius
	tol       float64 // strict-interior tolerance (absolute)
	scopeHops int     // emptiness-knowledge reach in hops (1 or 2)

	pos    []geom.Vec3 // by stable ID, append-only
	active []bool
	adj    [][]int32 // active↔active edges, rows sorted ascending
	grid   incGrid   // active nodes, cell size R

	// Cached per-node detection state, by stable ID. Inactive nodes hold
	// false/zero everywhere.
	ubf      []bool
	boundary []bool
	frag     []int
	balls    []int
	checked  []int

	groupLabel []int
	groups     [][]int

	workers int
	scratch []incScratch
	dirtyA  []int32 // reusable UBF dirty list
	dirtyB  []int32 // reusable IFF dirty list
	stamp   []int32 // dirty-collection dedup stamps
	epoch   int32

	// Last delta's topology change, for downstream incremental consumers
	// (the mesh engine's cache invalidation): the affected node and every
	// peer whose edge to it appeared or disappeared. lastPeers is a
	// reusable buffer.
	lastNode  int
	lastPeers []int32
}

// incScratch is one worker's reusable recomputation state.
type incScratch struct {
	asm   assembleScratch
	ubf   UBFScratch
	queue []int32
	bfs   []int32 // BFS visited stamps
	bfsE  int32
}

// NewIncremental seeds an engine from a network: one full DetectContext
// run (honoring cfg.Shards) provides the initial caches.
func NewIncremental(net *netgen.Network, cfg Config) (*Incremental, error) {
	return NewIncrementalContext(context.Background(), nil, net, cfg)
}

// NewIncrementalContext is NewIncremental with cancellation and
// observation of the seeding run.
func NewIncrementalContext(ctx context.Context, o obs.Observer, net *netgen.Network, cfg Config) (*Incremental, error) {
	if net == nil {
		return nil, ErrNoNetwork
	}
	full := cfg.withDefaults(false)
	if full.Coords != CoordsTrue {
		return nil, ErrIncrementalCoords
	}
	if det, ok := LookupDetector(cfg.Detector); ok && !det.Caps().Has(CapIncremental) {
		return nil, fmt.Errorf("core: detector %q does not support incremental repair", det.Name())
	}
	res, err := DetectContext(ctx, o, net, nil, cfg)
	if err != nil {
		return nil, err
	}
	n := net.Len()
	inc := &Incremental{
		cfg:       full,
		radius:    net.Radius,
		ballR:     full.BallRadiusFactor * (1 + full.Epsilon) * net.Radius,
		scopeHops: 1,
		workers:   full.Workers,
	}
	inc.tol = full.InteriorTolerance * inc.ballR
	if full.Scope == ScopeTwoHop {
		inc.scopeHops = 2
	}
	inc.pos = net.Positions()
	inc.active = make([]bool, n)
	inc.adj = make([][]int32, n)
	for i := range inc.active {
		inc.active[i] = true
		row := net.G.Adj[i]
		r32 := make([]int32, len(row))
		for k, v := range row {
			r32[k] = int32(v)
		}
		inc.adj[i] = r32
	}
	inc.grid.init(net.Radius)
	for i, p := range inc.pos {
		inc.grid.insert(int32(i), p)
	}
	inc.ubf = append([]bool(nil), res.UBF...)
	inc.boundary = append([]bool(nil), res.Boundary...)
	inc.frag = append([]int(nil), res.FragmentSize...)
	inc.balls = append([]int(nil), res.BallsTested...)
	inc.checked = append([]int(nil), res.NodesChecked...)
	inc.groupLabel = append([]int(nil), res.GroupLabel...)
	inc.groups = res.Groups
	inc.scratch = make([]incScratch, inc.workers)
	inc.lastNode = -1
	return inc, nil
}

// Apply absorbs one delta and repairs the detection state. It returns the
// stable ID of the affected node — for joins, the freshly assigned one.
func (inc *Incremental) Apply(d Delta) (int, error) {
	return inc.ApplyContext(context.Background(), nil, d)
}

// ApplyContext is Apply with cancellation and observation: the repair runs
// under a StageIncremental span carrying the dirty-region counters.
func (inc *Incremental) ApplyContext(ctx context.Context, o obs.Observer, d Delta) (int, error) {
	span := obs.Start(o, obs.StageIncremental)
	defer span.End()

	var changed [2]geom.Vec3
	nch := 0
	id := d.Node
	switch d.Op {
	case DeltaJoin:
		if !finitePos(d.Pos) {
			return -1, fmt.Errorf("%w: join at %v", ErrBadPosition, d.Pos)
		}
		id = len(inc.pos)
		inc.pos = append(inc.pos, d.Pos)
		inc.active = append(inc.active, true)
		inc.adj = append(inc.adj, nil)
		inc.ubf = append(inc.ubf, false)
		inc.boundary = append(inc.boundary, false)
		inc.frag = append(inc.frag, 0)
		inc.balls = append(inc.balls, 0)
		inc.checked = append(inc.checked, 0)
		inc.grid.insert(int32(id), d.Pos)
		nbrs := inc.neighborsOf(d.Pos, int32(id))
		inc.adj[id] = nbrs
		for _, nb := range nbrs {
			inc.adj[nb] = insertSorted(inc.adj[nb], int32(id))
		}
		inc.lastNode = id
		inc.lastPeers = append(inc.lastPeers[:0], nbrs...)
		changed[0] = d.Pos
		nch = 1
	case DeltaLeave, DeltaCrash:
		if err := inc.checkTarget(id); err != nil {
			return -1, err
		}
		old := inc.pos[id]
		inc.lastNode = id
		inc.lastPeers = append(inc.lastPeers[:0], inc.adj[id]...)
		for _, nb := range inc.adj[id] {
			inc.adj[nb] = removeSorted(inc.adj[nb], int32(id))
		}
		inc.adj[id] = nil
		inc.active[id] = false
		inc.grid.remove(int32(id), old)
		inc.ubf[id] = false
		inc.boundary[id] = false
		inc.frag[id] = 0
		inc.balls[id] = 0
		inc.checked[id] = 0
		changed[0] = old
		nch = 1
	case DeltaMove:
		if err := inc.checkTarget(id); err != nil {
			return -1, err
		}
		if !finitePos(d.Pos) {
			return -1, fmt.Errorf("%w: move to %v", ErrBadPosition, d.Pos)
		}
		old := inc.pos[id]
		inc.grid.remove(int32(id), old)
		inc.grid.insert(int32(id), d.Pos)
		inc.pos[id] = d.Pos
		oldRow := inc.adj[id]
		newRow := inc.neighborsOf(d.Pos, int32(id))
		// Both rows are sorted; walk the symmetric difference to patch the
		// neighbors' rows, recording the peers whose edge actually changed.
		inc.lastNode = id
		inc.lastPeers = inc.lastPeers[:0]
		i, j := 0, 0
		for i < len(oldRow) || j < len(newRow) {
			switch {
			case j == len(newRow) || (i < len(oldRow) && oldRow[i] < newRow[j]):
				inc.adj[oldRow[i]] = removeSorted(inc.adj[oldRow[i]], int32(id))
				inc.lastPeers = append(inc.lastPeers, oldRow[i])
				i++
			case i == len(oldRow) || newRow[j] < oldRow[i]:
				inc.adj[newRow[j]] = insertSorted(inc.adj[newRow[j]], int32(id))
				inc.lastPeers = append(inc.lastPeers, newRow[j])
				j++
			default: // unchanged edge
				i++
				j++
			}
		}
		inc.adj[id] = newRow
		changed[0], changed[1] = old, d.Pos
		nch = 2
	default:
		return -1, fmt.Errorf("%w: %d", ErrUnknownDeltaOp, d.Op)
	}

	if err := inc.repair(ctx, o, changed[:nch]); err != nil {
		return -1, err
	}
	return id, nil
}

// repair recomputes the cached detection state around the changed
// positions: UBF over the scope-hop dirty ball, IFF over the
// (scope+TTL)-hop dirty ball, grouping globally.
func (inc *Incremental) repair(ctx context.Context, o obs.Observer, changed []geom.Vec3) error {
	ubfBound := float64(inc.scopeHops) * inc.radius * dirtySlack
	inc.dirtyA = inc.collectDirty(inc.dirtyA[:0], changed, ubfBound, false)
	ubfDirty := inc.dirtyA
	obs.Add(o, obs.StageIncremental, obs.CtrDirtyUBF, int64(len(ubfDirty)))

	err := par.For(len(ubfDirty), inc.workers, func(w, k int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		u := int(ubfDirty[k])
		r := inc.fitUBF(&inc.scratch[w], u)
		inc.ubf[u] = r.Boundary
		inc.balls[u] = r.BallsTested
		inc.checked[u] = r.NodesChecked
		return nil
	})
	if err != nil {
		return err
	}

	if inc.cfg.IFFThreshold < 0 {
		// IFF disabled: the boundary is the UBF verdict and fragment
		// sizes stay zero, as in the full pipeline.
		for _, u := range ubfDirty {
			inc.boundary[u] = inc.ubf[u]
		}
	} else {
		iffBound := float64(inc.scopeHops+inc.cfg.IFFTTL) * inc.radius * dirtySlack
		inc.dirtyB = inc.collectDirty(inc.dirtyB[:0], changed, iffBound, true)
		iffDirty := inc.dirtyB
		obs.Add(o, obs.StageIncremental, obs.CtrDirtyIFF, int64(len(iffDirty)))
		err := par.For(len(iffDirty), inc.workers, func(w, k int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			u := iffDirty[k]
			inc.frag[u] = inc.memberCount(&inc.scratch[w], u)
			return nil
		})
		if err != nil {
			return err
		}
		for _, u := range ubfDirty {
			if !inc.ubf[u] {
				inc.frag[u] = 0
				inc.boundary[u] = false
			}
		}
		// Every dirty member is in iffDirty (the UBF ball is inside the
		// IFF ball), so this settles the boundary for the whole dirty
		// region.
		for _, u := range iffDirty {
			inc.boundary[u] = inc.frag[u] >= inc.cfg.IFFThreshold
		}
	}

	inc.regroup()
	return nil
}

// fitUBF re-runs node u's Unit Ball Fitting against the current adjacency.
// The knowledge assembly mirrors assembleKnowledge's CoordsTrue branch in
// detect.go line for line (members = u, one-hop ascending, two-hop in
// first-appearance order; uniform tolerance; no borderline cap) — the
// differential suite enforces that the two stay in lockstep.
func (inc *Incremental) fitUBF(sc *incScratch, u int) UBFNodeResult {
	as := &sc.asm
	oneHop := inc.adj[u]
	candidates := as.candidates[:0]
	for k := range oneHop {
		candidates = append(candidates, k+1)
	}
	as.candidates = candidates
	members := append(as.members[:0], u)
	for _, v := range oneHop {
		members = append(members, int(v))
	}
	if inc.cfg.Scope == ScopeTwoHop {
		stamp := as.visited(len(inc.pos))
		e := as.epoch
		for _, m := range members {
			stamp[m] = e
		}
		for _, j := range oneHop {
			for _, w := range inc.adj[j] {
				if stamp[w] != e {
					stamp[w] = e
					members = append(members, int(w))
				}
			}
		}
	}
	as.members = members
	coords := as.coords[:0]
	for _, m := range members {
		coords = append(coords, inc.pos[m])
	}
	as.coords = coords
	return sc.ubf.Fit(coords, 0, candidates, inc.ballR, uniformTol(inc.tol), -1)
}

// memberCount is node u's IFF fragment size: the number of members (u
// included) within IFFTTL hops of u through member nodes only — the set of
// origins the flooding protocol delivers to u.
func (inc *Incremental) memberCount(sc *incScratch, src int32) int {
	n := len(inc.pos)
	if len(sc.bfs) < n {
		sc.bfs = make([]int32, n)
		sc.bfsE = 0
	}
	sc.bfsE++
	if sc.bfsE == 0 {
		for i := range sc.bfs {
			sc.bfs[i] = 0
		}
		sc.bfsE = 1
	}
	stamp, e := sc.bfs, sc.bfsE
	queue := append(sc.queue[:0], src)
	stamp[src] = e
	count := 1
	head := 0
	for depth := 0; depth < inc.cfg.IFFTTL; depth++ {
		tail := len(queue)
		if head == tail {
			break
		}
		for ; head < tail; head++ {
			for _, v := range inc.adj[queue[head]] {
				if inc.ubf[v] && stamp[v] != e {
					stamp[v] = e
					queue = append(queue, v)
					count++
				}
			}
		}
	}
	sc.queue = queue
	return count
}

// regroup rebuilds the boundary grouping from the current boundary mask,
// reusing the sharded engine's union-find stitch (min-ID roots, so the
// labels match the propagation protocol bit for bit).
func (inc *Incremental) regroup() {
	var edges [][2]int32
	for u := range inc.pos {
		if !inc.boundary[u] {
			continue
		}
		for _, v := range inc.adj[u] {
			if inc.boundary[v] {
				edges = append(edges, [2]int32{int32(u), v})
			}
		}
	}
	inc.groupLabel = stitchGroups(len(inc.pos), inc.boundary, [][][2]int32{edges})
	inc.groups = sim.Groups(inc.groupLabel)
}

// collectDirty gathers the active nodes within bound of any changed
// position, deduplicated, ascending. membersOnly restricts the result to
// current UBF members (for the IFF pass).
func (inc *Incremental) collectDirty(dst []int32, changed []geom.Vec3, bound float64, membersOnly bool) []int32 {
	n := len(inc.pos)
	if len(inc.stamp) < n {
		inc.stamp = make([]int32, n)
		inc.epoch = 0
	}
	inc.epoch++
	if inc.epoch == 0 {
		for i := range inc.stamp {
			inc.stamp[i] = 0
		}
		inc.epoch = 1
	}
	stamp, e := inc.stamp, inc.epoch
	for _, p := range changed {
		inc.grid.forNear(inc.pos, p, bound, func(id int32) {
			if stamp[id] == e {
				return
			}
			stamp[id] = e
			if membersOnly && !inc.ubf[id] {
				return
			}
			dst = append(dst, id)
		})
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

// neighborsOf returns the active nodes within the radio range of p,
// excluding self, sorted ascending — exactly netgen's connectivity
// predicate (Dist2 <= R²) over the active set.
func (inc *Incremental) neighborsOf(p geom.Vec3, self int32) []int32 {
	var nbrs []int32
	inc.grid.forNear(inc.pos, p, inc.radius, func(id int32) {
		if id != self {
			nbrs = append(nbrs, id)
		}
	})
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	return nbrs
}

func (inc *Incremental) checkTarget(id int) error {
	if id < 0 || id >= len(inc.pos) || !inc.active[id] {
		return fmt.Errorf("%w: %d", ErrNoSuchNode, id)
	}
	return nil
}

func finitePos(p geom.Vec3) bool {
	ok := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	return ok(p.X) && ok(p.Y) && ok(p.Z)
}

// Len returns the size of the stable ID space (departed nodes included).
func (inc *Incremental) Len() int { return len(inc.pos) }

// ActiveCount returns the number of currently deployed nodes.
func (inc *Incremental) ActiveCount() int {
	n := 0
	for _, a := range inc.active {
		if a {
			n++
		}
	}
	return n
}

// Radius returns the radio range.
func (inc *Incremental) Radius() float64 { return inc.radius }

// ActiveIDs returns the stable IDs of the deployed nodes, ascending.
func (inc *Incremental) ActiveIDs() []int {
	ids := make([]int, 0, len(inc.pos))
	for i, a := range inc.active {
		if a {
			ids = append(ids, i)
		}
	}
	return ids
}

// ActiveNodes returns the deployed nodes in stable-ID order, ready for
// netgen.Assemble — the compaction a full-recompute reference runs on.
func (inc *Incremental) ActiveNodes() []netgen.Node {
	nodes := make([]netgen.Node, 0, len(inc.pos))
	for i, a := range inc.active {
		if a {
			nodes = append(nodes, netgen.Node{ID: i, Pos: inc.pos[i]})
		}
	}
	return nodes
}

// BoundaryCount returns the number of final boundary nodes.
func (inc *Incremental) BoundaryCount() int {
	n := 0
	for _, b := range inc.boundary {
		if b {
			n++
		}
	}
	return n
}

// LastTopology reports the most recent successful delta's topology
// change: the affected stable ID and every peer whose edge to it appeared
// or disappeared (joins: the new node's neighbor row; departures: the old
// row; moves: the symmetric difference of the old and new rows, merged
// ascending). The peer slice is a reusable buffer — read-only and valid
// only until the next Apply. Before any delta it reports (-1, nil).
func (inc *Incremental) LastTopology() (node int, peers []int32) {
	return inc.lastNode, inc.lastPeers
}

// Neighbors returns node u's current adjacency row (stable IDs,
// ascending; nil for inactive nodes). The row aliases engine state —
// read-only and valid only until the next Apply. Together with Len it
// satisfies mesh.Topology, so the mesh engine can rebuild dirty surfaces
// straight off the live adjacency without a network assembly round-trip.
func (inc *Incremental) Neighbors(u int) []int32 { return inc.adj[u] }

// PositionAt returns the position of stable ID u (departed nodes keep
// their last position).
func (inc *Incremental) PositionAt(u int) geom.Vec3 { return inc.pos[u] }

// GroupsView returns the boundary groups without copying (stable IDs,
// ascending within each group). The slices alias engine state — read-only
// and valid only until the next Apply; use Groups for a durable copy.
func (inc *Incremental) GroupsView() [][]int { return inc.groups }

// Groups returns a deep copy of the boundary groups (stable IDs,
// ascending within each group).
func (inc *Incremental) Groups() [][]int {
	out := make([][]int, len(inc.groups))
	for i, g := range inc.groups {
		out[i] = append([]int(nil), g...)
	}
	return out
}

// Snapshot deep-copies the detection state over the stable ID space as a
// Result. Inactive IDs read as non-boundary with zero work counters; the
// message and fault counters are zero by construction (see the package
// comment on direct evaluation).
func (inc *Incremental) Snapshot() *Result {
	return &Result{
		UBF:          append([]bool(nil), inc.ubf...),
		Boundary:     append([]bool(nil), inc.boundary...),
		FragmentSize: append([]int(nil), inc.frag...),
		GroupLabel:   append([]int(nil), inc.groupLabel...),
		Groups:       inc.Groups(),
		BallsTested:  append([]int(nil), inc.balls...),
		NodesChecked: append([]int(nil), inc.checked...),
	}
}

// insertSorted adds v to an ascending row, keeping it sorted; no-op if
// already present.
func insertSorted(row []int32, v int32) []int32 {
	at := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if at < len(row) && row[at] == v {
		return row
	}
	row = append(row, 0)
	copy(row[at+1:], row[at:])
	row[at] = v
	return row
}

// removeSorted deletes v from an ascending row; no-op if absent.
func removeSorted(row []int32, v int32) []int32 {
	at := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if at == len(row) || row[at] != v {
		return row
	}
	return append(row[:at], row[at+1:]...)
}

// incGrid is a dynamic uniform hash grid over the active nodes, cell size
// equal to the radio range — the mutable counterpart of netgen's
// spatialGrid, answering range queries for connectivity updates and
// dirty-region collection.
type incGrid struct {
	cell  float64
	cells map[incCell][]int32
}

type incCell struct{ x, y, z int32 }

func (g *incGrid) init(cell float64) {
	g.cell = cell
	g.cells = make(map[incCell][]int32, 64)
}

func (g *incGrid) keyOf(p geom.Vec3) incCell {
	return incCell{
		x: int32(math.Floor(p.X / g.cell)),
		y: int32(math.Floor(p.Y / g.cell)),
		z: int32(math.Floor(p.Z / g.cell)),
	}
}

func (g *incGrid) insert(id int32, p geom.Vec3) {
	k := g.keyOf(p)
	g.cells[k] = append(g.cells[k], id)
}

func (g *incGrid) remove(id int32, p geom.Vec3) {
	k := g.keyOf(p)
	cell := g.cells[k]
	for i, v := range cell {
		if v == id {
			cell[i] = cell[len(cell)-1]
			cell = cell[:len(cell)-1]
			break
		}
	}
	if len(cell) == 0 {
		delete(g.cells, k)
	} else {
		g.cells[k] = cell
	}
}

// forNear calls fn for every indexed node within r of p (cell visitation
// order is map order — callers sort or deduplicate as needed).
func (g *incGrid) forNear(pos []geom.Vec3, p geom.Vec3, r float64, fn func(id int32)) {
	lo := g.keyOf(geom.Vec3{X: p.X - r, Y: p.Y - r, Z: p.Z - r})
	hi := g.keyOf(geom.Vec3{X: p.X + r, Y: p.Y + r, Z: p.Z + r})
	r2 := r * r
	for x := lo.x; x <= hi.x; x++ {
		for y := lo.y; y <= hi.y; y++ {
			for z := lo.z; z <= hi.z; z++ {
				for _, id := range g.cells[incCell{x, y, z}] {
					if pos[id].Dist2(p) <= r2 {
						fn(id)
					}
				}
			}
		}
	}
}
