// Cross-detector metamorphic suite: properties every registered detector
// must satisfy, run over the three standard world shapes (sphere, cube
// with a hole, torus) under true coordinates. The properties are the
// Detector contract's testable half:
//
//   - determinism: identical *Result at any worker count;
//   - wrapper equivalence: Detect and DetectContext agree bit for bit;
//   - relabeling invariance: permuting node IDs permutes the verdict —
//     the boundary set maps through the permutation and the group
//     structure matches after canonicalization (labels are ID-derived,
//     so only the partition is comparable).
//
// A detector added to the registry is picked up automatically; there is
// no per-detector test list to keep in sync.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

// metamorphicWorld is one deployment shared by the whole suite.
type metamorphicWorld struct {
	name string
	net  *netgen.Network
}

var (
	metaWorldsOnce sync.Once
	metaWorldsVal  []metamorphicWorld
	metaWorldsErr  error
)

// metamorphicWorlds builds scaled-down versions of the standard
// sphere/cube-with-hole/torus fixtures, once per test binary (the suite
// runs every registered detector several times per world, and under
// -race).
func metamorphicWorlds(t *testing.T) []metamorphicWorld {
	t.Helper()
	metaWorldsOnce.Do(func() {
		box, err := shapes.NewBoxWithHoles(geom.V(0, 0, 0), geom.V(8, 8, 8),
			[]geom.Sphere{{Center: geom.V(4, 4, 4), Radius: 1.4}})
		if err != nil {
			metaWorldsErr = err
			return
		}
		tor, err := shapes.NewTorus(4.5, 1.8)
		if err != nil {
			metaWorldsErr = err
			return
		}
		specs := []struct {
			name     string
			shape    shapes.Shape
			surf, in int
			seed     int64
		}{
			{"sphere", shapes.NewBall(geom.Zero, 3), 150, 300, 60},
			{"cube-hole", box, 200, 380, 61},
			{"torus", tor, 220, 400, 3},
		}
		for _, sp := range specs {
			net, err := netgen.Generate(netgen.Config{
				Shape:           sp.shape,
				SurfaceNodes:    sp.surf,
				InteriorNodes:   sp.in,
				TargetAvgDegree: 16,
				Seed:            sp.seed,
			})
			if err != nil {
				metaWorldsErr = fmt.Errorf("%s: %w", sp.name, err)
				return
			}
			metaWorldsVal = append(metaWorldsVal, metamorphicWorld{name: sp.name, net: net})
		}
	})
	if metaWorldsErr != nil {
		t.Fatal(metaWorldsErr)
	}
	return metaWorldsVal
}

// metaCfg is the suite's shared configuration: true coordinates (MDS
// frames are numerically order-sensitive, so relabeling invariance only
// holds for the geometric verdict), detector and workers per call.
func metaCfg(detector string, workers int) Config {
	return Config{Detector: detector, Workers: workers, Coords: CoordsTrue}
}

// canonicalGroups maps every group member through toOld and returns the
// partition in canonical form: members ascending within a group, groups
// ordered by smallest member. A nil toOld is the identity.
func canonicalGroups(groups [][]int, toOld []int) [][]int {
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		cg := make([]int, len(g))
		for i, m := range g {
			if toOld != nil {
				cg[i] = toOld[m]
			} else {
				cg[i] = m
			}
		}
		sort.Ints(cg)
		out = append(out, cg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// TestDetectorMetamorphicSuite drives every registered detector through
// the three properties on all three worlds.
func TestDetectorMetamorphicSuite(t *testing.T) {
	worlds := metamorphicWorlds(t)
	for _, name := range DetectorNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, w := range worlds {
				w := w
				t.Run(w.name, func(t *testing.T) {
					base, err := DetectContext(context.Background(), nil, w.net, nil, metaCfg(name, 1))
					if err != nil {
						t.Fatal(err)
					}

					// Determinism across worker counts: the whole Result,
					// work counters included, must be bit-identical.
					par, err := DetectContext(context.Background(), nil, w.net, nil, metaCfg(name, 4))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(base, par) {
						t.Fatal("workers=4 result differs from workers=1")
					}

					// Wrapper equivalence: the convenience Detect wrapper
					// dispatches identically.
					viaDetect, err := Detect(w.net, nil, metaCfg(name, 1))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(base, viaDetect) {
						t.Fatal("Detect result differs from DetectContext")
					}

					// Relabeling invariance on the verdict: candidate set,
					// boundary set, and group partition all map through the
					// permutation. Work counters may differ (neighbor
					// enumeration order changes early exits), so only the
					// verdict fields are compared.
					n := w.net.Len()
					perm := rand.New(rand.NewSource(42)).Perm(n) // perm[new] = old
					nodes := make([]netgen.Node, n)
					for newID, oldID := range perm {
						nodes[newID] = w.net.Nodes[oldID]
					}
					pnet, err := netgen.Assemble(nodes, w.net.Radius)
					if err != nil {
						t.Fatal(err)
					}
					pres, err := DetectContext(context.Background(), nil, pnet, nil, metaCfg(name, 1))
					if err != nil {
						t.Fatal(err)
					}
					for newID, oldID := range perm {
						if pres.UBF[newID] != base.UBF[oldID] {
							t.Fatalf("node %d (relabeled %d): UBF %v != %v under permutation",
								oldID, newID, pres.UBF[newID], base.UBF[oldID])
						}
						if pres.Boundary[newID] != base.Boundary[oldID] {
							t.Fatalf("node %d (relabeled %d): Boundary %v != %v under permutation",
								oldID, newID, pres.Boundary[newID], base.Boundary[oldID])
						}
					}
					want := canonicalGroups(base.Groups, nil)
					got := canonicalGroups(pres.Groups, perm)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("group partition changed under permutation: %d groups -> %d", len(want), len(got))
					}
				})
			}
		})
	}
}
