// The two Schieferdecker–Völker-style hole-detection competitors (after
// "Distributed algorithms for hole detection", arXiv 1103.1771),
// transplanted from 2D sensor fields to the repo's 3D substrate:
//
//   - sv-enclosure: the enclosing-circle test becomes an enclosing-cap
//     test. A node whose known neighbors fail to surround it — some
//     direction's half-space, pushed a margin inward, is empty — sits on
//     a boundary. Localized: the decision uses only the node's own
//     (one- or two-hop) coordinate knowledge, under true coordinates or
//     stitched MDS frames alike.
//   - sv-contour: the flooding/contour variant. A handful of spread-out
//     sources flood the network; the hop-distance level sets (contours)
//     expand until they jam against a boundary, so a node none of whose
//     neighbors is farther from some source — a local contour maximum —
//     is a boundary candidate. Pure topology: no coordinates at all.
//
// Both emit candidates under StageCandidates and then run the shared
// fragment-filter + grouping tail, so their Result carries the same
// group structure (and fault/async hardening) as the paper pipeline.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/par"
)

// enclosureDirs is the fixed icosahedral direction set of the enclosing
// test: the 12 icosahedron vertices plus its 30 normalized edge
// midpoints, 42 deterministic unit vectors with ≈20° angular spacing.
var enclosureDirs = buildEnclosureDirs()

func buildEnclosureDirs() []geom.Vec3 {
	const phi = 1.6180339887498948
	raw := []geom.Vec3{
		{X: 0, Y: 1, Z: phi}, {X: 0, Y: 1, Z: -phi}, {X: 0, Y: -1, Z: phi}, {X: 0, Y: -1, Z: -phi},
		{X: 1, Y: phi, Z: 0}, {X: 1, Y: -phi, Z: 0}, {X: -1, Y: phi, Z: 0}, {X: -1, Y: -phi, Z: 0},
		{X: phi, Y: 0, Z: 1}, {X: -phi, Y: 0, Z: 1}, {X: phi, Y: 0, Z: -1}, {X: -phi, Y: 0, Z: -1},
	}
	dirs := make([]geom.Vec3, 0, 42)
	for _, v := range raw {
		dirs = append(dirs, v.Unit())
	}
	verts := dirs[:12:12]
	minD := math.Inf(1)
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if d := verts[i].Dist(verts[j]); d < minD {
				minD = d
			}
		}
	}
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if verts[i].Dist(verts[j]) < minD*1.001 {
				dirs = append(dirs, verts[i].Add(verts[j]).Unit())
			}
		}
	}
	return dirs
}

// newCandidateResult allocates the Result skeleton a competitor's
// candidate phase fills; the work arrays exist (zeroed) so downstream
// consumers never branch on the detector.
func newCandidateResult(n int) *Result {
	return &Result{
		UBF:          make([]bool, n),
		BallsTested:  make([]int, n),
		NodesChecked: make([]int, n),
	}
}

// emitCandidates reports a candidate phase's outcome: the marked count,
// the work counter, and one boundary-claim transition per candidate in
// ascending ID (the flight-recorder convention StageUBF established).
func emitCandidates(o obs.Observer, res *Result, localTests int64) {
	if o == nil {
		return
	}
	var marked int64
	for i, b := range res.UBF {
		if b {
			marked++
			obs.NodeTransition(o, obs.StageCandidates, obs.TransBoundaryClaim, i, 0)
		}
	}
	obs.Add(o, obs.StageCandidates, obs.CtrCandidates, marked)
	obs.Add(o, obs.StageCandidates, obs.CtrLocalTests, localTests)
}

// svEnclosureDetector is the enclosing-cap competitor.
type svEnclosureDetector struct{}

func (svEnclosureDetector) Name() string       { return "sv-enclosure" }
func (svEnclosureDetector) Caps() DetectorCaps { return CapFaults | CapMeasurement }

func (svEnclosureDetector) Vocab() DetectorVocab {
	return DetectorVocab{
		Stages: []obs.Stage{
			obs.StageDetect, obs.StageFrames, obs.StageCandidates,
			obs.StageIFF, obs.StageGrouping,
		},
		WorkKeys:    []string{"candidates/local_tests"},
		FloodStages: []obs.Stage{obs.StageIFF, obs.StageGrouping},
	}
}

func (svEnclosureDetector) DetectContext(ctx context.Context, o obs.Observer, net *netgen.Network, meas *netgen.Measurement, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(meas != nil)
	if cfg.Coords == CoordsMDS && meas == nil {
		return nil, ErrNeedMeasurement
	}
	if cfg.Coords != CoordsMDS && cfg.Coords != CoordsTrue {
		return nil, fmt.Errorf("core: unknown coordinate source %d", cfg.Coords)
	}
	if cfg.Scope != ScopeOneHop && cfg.Scope != ScopeTwoHop {
		return nil, fmt.Errorf("core: unknown scope %d", cfg.Scope)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	detectSpan := obs.Start(o, obs.StageDetect)
	defer detectSpan.End()

	tab := NewNodeTable(net, meas)
	n := tab.Len()
	obs.Add(o, obs.StageDetect, obs.CtrNodes, int64(n))
	res := newCandidateResult(n)
	margin := cfg.EnclosureMargin * tab.Radius

	var frames []frame
	if cfg.Coords == CoordsMDS {
		var err error
		if frames, err = buildAllFrames(ctx, o, tab, cfg, res); err != nil {
			return nil, err
		}
	}

	// Candidate phase: node i is boundary when some direction's
	// half-space {x : d·(x−pᵢ) > margin·R... pushed inward by the
	// margin} holds none of its known neighbors — the neighborhood does
	// not enclose the node. Work is counted as dot products performed.
	candSpan := obs.Start(o, obs.StageCandidates)
	asm := make([]assembleScratch, cfg.Workers)
	tests := make([]int64, cfg.Workers)
	err := par.For(n, cfg.Workers, func(w, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		coords, _, _ := assembleKnowledge(tab, cfg, frames, i, &asm[w])
		origin := coords[0]
		dirsTried, dots := 0, 0
		open := false
		for _, d := range enclosureDirs {
			dirsTried++
			empty := true
			for _, p := range coords[1:] {
				dots++
				if d.Dot(p.Sub(origin)) >= margin {
					empty = false
					break
				}
			}
			if empty {
				open = true
				break
			}
		}
		res.UBF[i] = open
		res.BallsTested[i] = dirsTried
		res.NodesChecked[i] = dots
		tests[w] += int64(dots)
		return nil
	})
	if o != nil {
		var total int64
		for _, t := range tests {
			total += t
		}
		emitCandidates(o, res, total)
	}
	candSpan.End()
	if err != nil {
		return nil, err
	}

	if err := filterAndGroup(ctx, o, net, cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// contourSources is the number of flood sources the sv-contour variant
// spreads by farthest-point sampling.
const contourSources = 4

// svContourDetector is the flooding/contour competitor.
type svContourDetector struct{}

func (svContourDetector) Name() string       { return "sv-contour" }
func (svContourDetector) Caps() DetectorCaps { return CapFaults }

func (svContourDetector) Vocab() DetectorVocab {
	return DetectorVocab{
		Stages: []obs.Stage{
			obs.StageDetect, obs.StageCandidates,
			obs.StageIFF, obs.StageGrouping,
		},
		WorkKeys:    []string{"candidates/local_tests"},
		FloodStages: []obs.Stage{obs.StageCandidates, obs.StageIFF, obs.StageGrouping},
	}
}

func (svContourDetector) DetectContext(ctx context.Context, o obs.Observer, net *netgen.Network, meas *netgen.Measurement, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(meas != nil)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	detectSpan := obs.Start(o, obs.StageDetect)
	defer detectSpan.End()

	n := net.Len()
	obs.Add(o, obs.StageDetect, obs.CtrNodes, int64(n))
	res := newCandidateResult(n)

	// Candidate phase: flood hop-distance fields from a few spread-out
	// sources (farthest-point sampling) and mark the local maxima of any
	// field — the nodes whose expanding contour jammed against a
	// boundary. Each flood costs one broadcast per reached node, the
	// distributed protocol's message bill. Source ties break by
	// lexicographic position, not node ID, so the verdict is invariant
	// under node relabeling (the metamorphic suite's contract).
	candSpan := obs.Start(o, obs.StageCandidates)
	fields := make([][]int, 0, contourSources)
	var messages int
	var maxRounds int64
	if n > 0 {
		posLess := func(a, b int) bool {
			pa, pb := net.Nodes[a].Pos, net.Nodes[b].Pos
			switch {
			case pa.X != pb.X:
				return pa.X < pb.X
			case pa.Y != pb.Y:
				return pa.Y < pb.Y
			default:
				return pa.Z < pb.Z
			}
		}
		// minDist[i] tracks the hop distance to the nearest chosen
		// source; unreached nodes count as "infinitely far", so
		// farthest-point sampling hops across disconnected components.
		const far = math.MaxInt32
		minDist := make([]int, n)
		for i := range minDist {
			minDist[i] = far
		}
		src := 0
		for i := 1; i < n; i++ {
			if posLess(i, src) {
				src = i
			}
		}
		for len(fields) < contourSources {
			hops := net.G.BFSHops([]int{src}, graph.All, -1)
			fields = append(fields, hops)
			rounds := 0
			for i, h := range hops {
				if h == graph.Unreachable {
					continue
				}
				messages += net.G.Degree(i)
				if h < minDist[i] {
					minDist[i] = h
				}
				if h > rounds {
					rounds = h
				}
			}
			if int64(rounds) > maxRounds {
				maxRounds = int64(rounds)
			}
			next, best := -1, 0
			for i, d := range minDist {
				if d > best || (d == best && next >= 0 && d > 0 && posLess(i, next)) {
					next, best = i, d
				}
			}
			if next < 0 || best == 0 {
				break // every node is a source already
			}
			src = next
		}
	}
	var tests int64
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			candSpan.End()
			return nil, err
		}
		open := false
		checked := 0
		for _, hops := range fields {
			h := hops[i]
			if h <= 0 {
				continue
			}
			localMax := true
			for _, j := range net.G.Adj[i] {
				checked++
				if hops[j] > h {
					localMax = false
					break
				}
			}
			if localMax {
				open = true
				break
			}
		}
		res.UBF[i] = open
		res.NodesChecked[i] = checked
		tests += int64(checked)
	}
	res.CandidateMessages = messages
	obs.Add(o, obs.StageCandidates, obs.CtrMsgsSent, int64(messages))
	obs.Add(o, obs.StageCandidates, obs.CtrFloodRounds, maxRounds)
	emitCandidates(o, res, tests)
	candSpan.End()

	if err := filterAndGroup(ctx, o, net, cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}
