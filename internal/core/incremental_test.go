package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netgen"
)

// tinyNet assembles a small hand-placed network for validation tests.
func tinyNet(t *testing.T) *netgen.Network {
	t.Helper()
	nodes := []netgen.Node{
		{Pos: geom.V(0, 0, 0)}, {Pos: geom.V(1, 0, 0)}, {Pos: geom.V(0, 1, 0)},
		{Pos: geom.V(1, 1, 0)}, {Pos: geom.V(0.5, 0.5, 1)}, {Pos: geom.V(0.5, 0.5, -1)},
		{Pos: geom.V(2, 0, 0)}, {Pos: geom.V(2, 1, 0)}, {Pos: geom.V(3, 0.5, 0.5)},
		{Pos: geom.V(1.5, 0.5, 1.2)},
	}
	net, err := netgen.Assemble(nodes, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestDetectRejectsNegativeConfig pins the config-seam fix: negative
// Workers and Shards used to be silently clamped deep inside the worker
// pool and the partitioner; DetectContext now rejects them up front with
// typed errors.
func TestDetectRejectsNegativeConfig(t *testing.T) {
	net := tinyNet(t)
	if _, err := Detect(net, nil, Config{Workers: -1}); !errors.Is(err, ErrNegativeWorkers) {
		t.Fatalf("Workers=-1: got %v, want ErrNegativeWorkers", err)
	}
	if _, err := Detect(net, nil, Config{Shards: -3}); !errors.Is(err, ErrNegativeShards) {
		t.Fatalf("Shards=-3: got %v, want ErrNegativeShards", err)
	}
	if _, err := NewIncremental(net, Config{Workers: -2}); !errors.Is(err, ErrNegativeWorkers) {
		t.Fatalf("incremental Workers=-2: got %v, want ErrNegativeWorkers", err)
	}
}

// TestDetectShardsExceedNodeCount adds the degenerate end of the shard
// matrix: more shards than nodes (some shards empty, most holding a
// single node) must still be bit-identical to the unsharded pipeline.
func TestDetectShardsExceedNodeCount(t *testing.T) {
	for _, net := range []*netgen.Network{tinyNet(t), incWorlds(t)[0].net} {
		base, err := Detect(net, nil, Config{})
		if err != nil {
			t.Fatal(err)
		}
		over, err := Detect(net, nil, Config{Shards: net.Len() + 7})
		if err != nil {
			t.Fatalf("shards=%d over %d nodes: %v", net.Len()+7, net.Len(), err)
		}
		diffResults(t, "shards>nodes", base, over, msgZero)
	}
}

func TestIncrementalRejectsNonTrueCoords(t *testing.T) {
	net := tinyNet(t)
	if _, err := NewIncremental(net, Config{Coords: CoordsMDS}); !errors.Is(err, ErrIncrementalCoords) {
		t.Fatalf("CoordsMDS: got %v, want ErrIncrementalCoords", err)
	}
	if _, err := NewIncremental(nil, Config{}); !errors.Is(err, ErrNoNetwork) {
		t.Fatalf("nil network: got %v, want ErrNoNetwork", err)
	}
}

// TestIncrementalValidationErrors exercises every per-delta validation
// error and proves each one left the engine untouched: after the failed
// Apply, the state still diffs clean against a full recompute, and a
// subsequent valid delta behaves normally.
func TestIncrementalValidationErrors(t *testing.T) {
	cfg := Config{}
	inc, err := NewIncremental(tinyNet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Apply(Delta{Op: DeltaLeave, Node: 3}); err != nil {
		t.Fatal(err)
	}

	bad := []struct {
		name string
		d    Delta
		want error
	}{
		{"unknown op", Delta{Op: 0, Node: 1}, ErrUnknownDeltaOp},
		{"op out of range", Delta{Op: 99, Node: 1}, ErrUnknownDeltaOp},
		{"move negative id", Delta{Op: DeltaMove, Node: -1, Pos: geom.V(0, 0, 0)}, ErrNoSuchNode},
		{"leave beyond id space", Delta{Op: DeltaLeave, Node: inc.Len()}, ErrNoSuchNode},
		{"crash departed node", Delta{Op: DeltaCrash, Node: 3}, ErrNoSuchNode},
		{"join NaN", Delta{Op: DeltaJoin, Pos: geom.V(math.NaN(), 0, 0)}, ErrBadPosition},
		{"move Inf", Delta{Op: DeltaMove, Node: 1, Pos: geom.V(0, math.Inf(1), 0)}, ErrBadPosition},
	}
	for _, tc := range bad {
		if _, err := inc.Apply(tc.d); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		diffIncremental(t, tc.name+" (post-error)", inc, cfg)
	}

	id, err := inc.Apply(Delta{Op: DeltaJoin, Pos: geom.V(0.5, 1.5, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if id != inc.Len()-1 {
		t.Fatalf("join after errors assigned %d, want %d", id, inc.Len()-1)
	}
	diffIncremental(t, "join after errors", inc, cfg)
}

// TestIncrementalStableIDsNeverReused pins the ID discipline the
// bit-identity argument leans on: departures never free IDs, joins always
// extend the ID space.
func TestIncrementalStableIDsNeverReused(t *testing.T) {
	inc, err := NewIncremental(tinyNet(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	n0 := inc.Len()
	if _, err := inc.Apply(Delta{Op: DeltaLeave, Node: n0 - 1}); err != nil {
		t.Fatal(err)
	}
	id, err := inc.Apply(Delta{Op: DeltaJoin, Pos: geom.V(1, 0.5, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if id != n0 {
		t.Fatalf("join reused ID %d, want fresh ID %d", id, n0)
	}
	if inc.Len() != n0+1 || inc.ActiveCount() != n0 {
		t.Fatalf("Len=%d ActiveCount=%d, want %d and %d", inc.Len(), inc.ActiveCount(), n0+1, n0)
	}
}

// TestIncrementalCrashEqualsLeave pins the documented equivalence: the
// direct-evaluation engine sees a crash as the same topology change as an
// announced departure.
func TestIncrementalCrashEqualsLeave(t *testing.T) {
	net := tinyNet(t)
	a, err := NewIncremental(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIncremental(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Apply(Delta{Op: DeltaLeave, Node: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Apply(Delta{Op: DeltaCrash, Node: 4}); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	for i := range sa.Boundary {
		if sa.Boundary[i] != sb.Boundary[i] || sa.GroupLabel[i] != sb.GroupLabel[i] {
			t.Fatalf("node %d: leave and crash diverged", i)
		}
	}
}

func TestDeltaOpStrings(t *testing.T) {
	for _, op := range []DeltaOp{DeltaJoin, DeltaLeave, DeltaMove, DeltaCrash} {
		back, ok := DeltaOpFromString(op.String())
		if !ok || back != op {
			t.Fatalf("round trip of %v failed: %v %v", op, back, ok)
		}
	}
	if _, ok := DeltaOpFromString("explode"); ok {
		t.Fatal("unknown op name accepted")
	}
	if s := DeltaOp(42).String(); s != "delta?" {
		t.Fatalf("unknown op prints %q", s)
	}
}
