package core

import (
	"errors"

	"repro/internal/netgen"
)

// DegreeBaselineConfig parameterizes the degree-threshold heuristic.
type DegreeBaselineConfig struct {
	// Fraction flags node i as boundary when deg(i) < Fraction·avgDeg.
	// The zero value means 0.75, which roughly matches the expectation
	// that a node on a flat boundary sees about half the ball volume an
	// interior node sees.
	Fraction float64
}

// DegreeBaseline is the natural localized heuristic the paper's UBF is
// implicitly compared against: a node with markedly fewer neighbors than
// average suspects it sits on a boundary, because roughly half of its radio
// ball hangs outside the network. The paper has no prior 3D competitor (it
// is the first 3D boundary-detection work), so this serves as the ablation
// baseline. Like UBF it is fully localized — a node needs only its own
// degree plus the (flooded or configured) network average.
func DegreeBaseline(net *netgen.Network, cfg DegreeBaselineConfig) ([]bool, error) {
	if net == nil {
		return nil, ErrNoNetwork
	}
	if cfg.Fraction == 0 {
		cfg.Fraction = 0.75
	}
	if cfg.Fraction < 0 {
		return nil, errors.New("core: baseline fraction must be positive")
	}
	avg := net.G.AvgDegree()
	out := make([]bool, net.Len())
	for i := range out {
		out[i] = float64(net.G.Degree(i)) < cfg.Fraction*avg
	}
	return out, nil
}
