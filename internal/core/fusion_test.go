package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/ranging"
	"repro/internal/sim"
)

func TestMedoid(t *testing.T) {
	// Majority cluster at the origin, one flipped outlier: the medoid
	// must come from the cluster.
	ests := []geom.Vec3{
		geom.V(0.01, 0, 0),
		geom.V(0, 0.01, 0),
		geom.V(0, 0, 0.02),
		geom.V(5, 5, 5), // flipped outlier
	}
	m := medoid(ests)
	if m.Norm() > 0.1 {
		t.Errorf("medoid picked the outlier: %v", m)
	}
	// Single estimate: returned verbatim.
	if got := medoid([]geom.Vec3{geom.V(1, 2, 3)}); got != geom.V(1, 2, 3) {
		t.Errorf("single-estimate medoid = %v", got)
	}
	// Ties break toward the earliest estimate.
	tie := []geom.Vec3{geom.V(1, 0, 0), geom.V(1, 0, 0)}
	if got := medoid(tie); got != tie[0] {
		t.Errorf("tie medoid = %v", got)
	}
}

func TestClusterSpread(t *testing.T) {
	center := geom.Zero
	// Tight majority, one outlier: spread reflects the majority only.
	ests := []geom.Vec3{
		center,
		geom.V(0.01, 0, 0),
		geom.V(0, 0.01, 0),
		geom.V(9, 9, 9),
	}
	var buf []float64
	s := clusterSpread(ests, center, 0.5, &buf)
	if s > 0.02 {
		t.Errorf("spread %v dominated by outlier", s)
	}
	// No cross-check: fall back.
	if got := clusterSpread([]geom.Vec3{center}, center, 0.42, &buf); got != 0.42 {
		t.Errorf("fallback spread = %v", got)
	}
	// Two estimates: spread equals their distance.
	two := []geom.Vec3{center, geom.V(0.3, 0, 0)}
	if got := clusterSpread(two, center, 1, &buf); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("two-estimate spread = %v", got)
	}
}

func TestFitEmptyBallPerPointTolerance(t *testing.T) {
	// Minimal frame: the center and two candidate neighbors define
	// exactly two mirrored unit balls; occupants sit at both ball
	// centers. With strict tolerances both balls are blocked; marking
	// the occupants as completely uncertain unblocks them.
	j := geom.V(0.3, 0, 0)
	k := geom.V(0, 0.3, 0)
	balls := geom.SpheresThrough3(geom.Zero, j, k, 1.0)
	if len(balls) != 2 {
		t.Fatalf("expected 2 candidate balls, got %d", len(balls))
	}
	coords := []geom.Vec3{geom.Zero, j, k, balls[0].Center, balls[1].Center}
	candidates := []int{1, 2}

	strict := FitEmptyBallCandidates(coords, 0, candidates, 1.0, 1e-9)
	if strict.Boundary {
		t.Fatal("occupants at the ball centers failed to block")
	}
	tol := func(idx int) float64 {
		if idx >= 3 {
			return 2.0 // completely uncertain positions
		}
		return 1e-9
	}
	loose := FitEmptyBallTolerances(coords, 0, candidates, 1.0, tol)
	if !loose.Boundary {
		t.Fatal("uncertain occupants still blocked the ball")
	}
}

func TestFitEmptyBallBorderlineCap(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	coords := halfSpaceNeighborhood(rng, 12)
	// Several occupants in the free half-space, all within their
	// (large) tolerance bands.
	for _, p := range []geom.Vec3{
		geom.V(0, 0, 0.8), geom.V(0.2, 0, 0.9), geom.V(-0.2, 0.1, 0.85), geom.V(0.1, -0.2, 0.7),
	} {
		coords = append(coords, p)
	}
	bigTol := func(int) float64 { return 2.0 }
	// Without a cap the tolerances hide all occupants: boundary.
	if !FitEmptyBallUncertain(coords, 0, nil, 1.0, bigTol, -1).Boundary {
		t.Fatal("uncapped test should find an empty ball")
	}
	// With a tight cap, four borderline occupants exceed the budget for
	// the balls aimed at the occupied region, but balls through other
	// contact pairs may still dodge them; what must hold is monotonicity:
	// capped detections imply uncapped detections.
	capped := FitEmptyBallUncertain(coords, 0, nil, 1.0, bigTol, 0)
	uncapped := FitEmptyBallUncertain(coords, 0, nil, 1.0, bigTol, -1)
	if capped.Boundary && !uncapped.Boundary {
		t.Fatal("cap widened detection")
	}
	// Cap 0 with huge tolerances must behave like the plain strict test
	// with tiny tolerance on these coordinates.
	plain := FitEmptyBallCandidates(coords, 0, nil, 1.0, 1e-9)
	if capped.Boundary != plain.Boundary {
		t.Errorf("cap-0 = %v, strict = %v", capped.Boundary, plain.Boundary)
	}
}

func TestDetectScopeOneHop(t *testing.T) {
	net, _ := fixtures(t)
	meas := net.Measure(ranging.Exact{}, 0)
	oneHop, err := Detect(net, meas, Config{Scope: ScopeOneHop})
	if err != nil {
		t.Fatal(err)
	}
	twoHop, err := Detect(net, meas, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The one-hop scope sees strictly less blocking evidence, so its raw
	// UBF set should be at least as large in aggregate.
	count := func(mask []bool) int {
		c := 0
		for _, b := range mask {
			if b {
				c++
			}
		}
		return c
	}
	if count(oneHop.UBF) < count(twoHop.UBF) {
		t.Errorf("one-hop UBF %d < two-hop %d; expected over-detection",
			count(oneHop.UBF), count(twoHop.UBF))
	}
}

func TestDetectMessageAccounting(t *testing.T) {
	net, _ := fixtures(t)
	res, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IFFMessages == 0 {
		t.Error("IFF exchanged no messages")
	}
	if res.GroupingMessages == 0 {
		t.Error("grouping exchanged no messages")
	}
	// With IFF disabled no filtering flood runs.
	noIFF, err := Detect(net, nil, Config{IFFThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if noIFF.IFFMessages != 0 {
		t.Errorf("disabled IFF still counted %d messages", noIFF.IFFMessages)
	}
}

func TestDetectAdaptiveToleranceDisabled(t *testing.T) {
	net, _ := fixtures(t)
	meas := net.Measure(ranging.UniformAdditive{Fraction: 0.3}, 5)
	adaptive, err := Detect(net, meas, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Detect(net, meas, Config{AdaptiveTolFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	count := func(mask []bool) int {
		c := 0
		for _, b := range mask {
			if b {
				c++
			}
		}
		return c
	}
	// Under noise, disabling adaptation loses detections: phantom
	// positions block genuinely empty balls.
	if count(fixed.Boundary) >= count(adaptive.Boundary) {
		t.Errorf("fixed tolerance found %d >= adaptive %d",
			count(fixed.Boundary), count(adaptive.Boundary))
	}
}

// Detection must be identical whether the flooding phases run on the
// synchronous round kernel or the asynchronous event kernel: both IFF's
// TTL flood and grouping's min-label propagation are delay-independent.
func TestDetectAsyncEqualsSync(t *testing.T) {
	net, _ := fixtures(t)
	sync, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 99} {
		async, err := Detect(net, nil, Config{Async: true, AsyncSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := range sync.Boundary {
			if sync.Boundary[i] != async.Boundary[i] {
				t.Fatalf("seed %d: boundary differs at node %d", seed, i)
			}
			if sync.FragmentSize[i] != async.FragmentSize[i] {
				t.Fatalf("seed %d: fragment size differs at node %d: %d vs %d",
					seed, i, sync.FragmentSize[i], async.FragmentSize[i])
			}
			if sync.GroupLabel[i] != async.GroupLabel[i] {
				t.Fatalf("seed %d: group label differs at node %d", seed, i)
			}
		}
	}
}

// TestDetectFaultsBelowBudgetEqualsFaultFree: with per-link loss capped
// below the retransmission budget, the hardened flooding phases mask the
// faults completely — detection output is identical to the fault-free
// run, and the fault counters prove losses actually happened.
func TestDetectFaultsBelowBudgetEqualsFaultFree(t *testing.T) {
	net, _ := fixtures(t)
	clean, err := Detect(net, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	faults := sim.FaultConfig{
		Seed:            7,
		DropRate:        0.2,
		MaxDropsPerLink: 2,
		DuplicateRate:   0.1,
		DelayRate:       0.2,
		MaxExtraDelay:   2,
	}
	for _, async := range []bool{false, true} {
		faulty, err := Detect(net, nil, Config{
			Async: async, AsyncSeed: 3,
			Faults: faults, RetransmitBudget: 3,
		})
		if err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
		for i := range clean.Boundary {
			if clean.Boundary[i] != faulty.Boundary[i] {
				t.Fatalf("async=%v: boundary differs at node %d", async, i)
			}
			if clean.FragmentSize[i] != faulty.FragmentSize[i] {
				t.Fatalf("async=%v: fragment size differs at node %d", async, i)
			}
			if clean.GroupLabel[i] != faulty.GroupLabel[i] {
				t.Fatalf("async=%v: group label differs at node %d", async, i)
			}
		}
		if faulty.FaultStats.Dropped == 0 {
			t.Errorf("async=%v: fault plan dropped nothing — test is vacuous", async)
		}
		if faulty.FaultStats.Retransmits == 0 {
			t.Errorf("async=%v: no retransmissions despite losses", async)
		}
	}
	if clean.FaultStats != (sim.FaultStats{}) {
		t.Errorf("fault-free run reports fault activity: %+v", clean.FaultStats)
	}
}
