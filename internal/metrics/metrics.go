// Package metrics evaluates boundary-detection output against ground
// truth, producing the quantities the paper's evaluation reports: the
// found/correct/mistaken/missing counts of Figs. 1(g) and 11(a) and the
// hop-distance distributions of mistaken and missing nodes of Figs. 1(h),
// 1(i), 11(b) and 11(c).
package metrics

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// evalScratch pools the BFS state and source buffer of the hop-histogram
// measurements: evaluation sweeps (Fig. 11) call them once per scenario per
// error level, and the fresh distance-slice-per-call version made the
// metrics pass show up in sweep profiles.
type evalScratch struct {
	bfs  graph.Scratch
	srcs []int
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// ErrLengthMismatch is returned when masks have different lengths.
var ErrLengthMismatch = errors.New("metrics: masks must have equal length")

// Classification counts detection outcomes against ground truth.
type Classification struct {
	Nodes        int
	TrueBoundary int
	Found        int // nodes the algorithm reported
	Correct      int // reported ∩ true
	Mistaken     int // reported \ true
	Missing      int // true \ reported
}

// Classify compares a detection mask against ground truth.
func Classify(truth, found []bool) (Classification, error) {
	if len(truth) != len(found) {
		return Classification{}, ErrLengthMismatch
	}
	c := Classification{Nodes: len(truth)}
	for i := range truth {
		if truth[i] {
			c.TrueBoundary++
		}
		switch {
		case found[i] && truth[i]:
			c.Found++
			c.Correct++
		case found[i]:
			c.Found++
			c.Mistaken++
		case truth[i]:
			c.Missing++
		}
	}
	return c, nil
}

// Precision is Correct / Found, or 1 when nothing was reported.
func (c Classification) Precision() float64 {
	if c.Found == 0 {
		return 1
	}
	return float64(c.Correct) / float64(c.Found)
}

// Recall is Correct / TrueBoundary, or 1 when there is nothing to find.
func (c Classification) Recall() float64 {
	if c.TrueBoundary == 0 {
		return 1
	}
	return float64(c.Correct) / float64(c.TrueBoundary)
}

// F1 is the harmonic mean of precision and recall.
func (c Classification) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String implements fmt.Stringer.
func (c Classification) String() string {
	return fmt.Sprintf("true=%d found=%d correct=%d mistaken=%d missing=%d (P=%.3f R=%.3f)",
		c.TrueBoundary, c.Found, c.Correct, c.Mistaken, c.Missing, c.Precision(), c.Recall())
}

// HopHistogram measures, for every query node, the hop distance (through
// the full network graph) to the nearest anchor node, and returns the
// counts at 1..maxHops hops plus the number of query nodes farther away or
// unreachable. hist[0] counts distance-1 nodes. Query nodes that are
// themselves anchors count at distance 0 and are reported separately.
func HopHistogram(g *graph.Graph, query []int, anchors []bool, maxHops int) (hist []int, atZero, beyond int) {
	es := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(es)
	es.srcs = es.srcs[:0]
	for i, a := range anchors {
		if a {
			es.srcs = append(es.srcs, i)
		}
	}
	g.BFSHopsScratch(&es.bfs, es.srcs, graph.All, -1)
	hist = make([]int, maxHops)
	for _, q := range query {
		d := es.bfs.Dist(q)
		switch {
		case d == 0:
			atZero++
		case d == graph.Unreachable || d > maxHops:
			beyond++
		default:
			hist[d-1]++
		}
	}
	return hist, atZero, beyond
}

// HopStats is a hop-distance histogram: Hist[k] counts query nodes whose
// nearest anchor is k+1 hops away, AtZero counts query nodes that are
// anchors themselves, Beyond counts nodes farther than len(Hist) hops or
// unreachable. Raw counts are kept so multi-scenario aggregates (Fig. 11)
// can be summed before normalizing.
type HopStats struct {
	Hist   []int
	AtZero int
	Beyond int
}

// Total returns the query-set size the stats describe.
func (h HopStats) Total() int {
	t := h.AtZero + h.Beyond
	for _, c := range h.Hist {
		t += c
	}
	return t
}

// Fractions normalizes the histogram to fractions of the query set (the
// quantities plotted in Figs. 1(h), 1(i), 11(b), 11(c)). An empty query
// set yields all zeros.
func (h HopStats) Fractions() (frac []float64, beyondFrac float64) {
	frac = make([]float64, len(h.Hist))
	total := h.Total()
	if total == 0 {
		return frac, 0
	}
	for i, c := range h.Hist {
		frac[i] = float64(c) / float64(total)
	}
	return frac, float64(h.Beyond) / float64(total)
}

// Add accumulates another histogram with the same range into h.
func (h *HopStats) Add(o HopStats) error {
	if len(h.Hist) == 0 {
		h.Hist = make([]int, len(o.Hist))
	}
	if len(h.Hist) != len(o.Hist) {
		return errors.New("metrics: hop histogram ranges differ")
	}
	for i, c := range o.Hist {
		h.Hist[i] += c
	}
	h.AtZero += o.AtZero
	h.Beyond += o.Beyond
	return nil
}

// HopStatsFor measures the hop distance from each query node to the
// nearest anchor and bins the outcome.
func HopStatsFor(g *graph.Graph, query []int, anchors []bool, maxHops int) HopStats {
	hist, atZero, beyond := HopHistogram(g, query, anchors, maxHops)
	return HopStats{Hist: hist, AtZero: atZero, Beyond: beyond}
}

// Report bundles a classification with the mistaken/missing hop
// histograms — one figure-row of the paper's evaluation.
type Report struct {
	Classification
	// MistakenHops bins each mistaken node by the hop distance to its
	// nearest correctly identified boundary node.
	MistakenHops HopStats
	// MissingHops bins each missing boundary node the same way.
	MissingHops HopStats
}

// Add accumulates another report (e.g. a different scenario at the same
// error level) into r — how the Fig. 11 aggregates are produced.
func (r *Report) Add(o Report) error {
	r.Nodes += o.Nodes
	r.TrueBoundary += o.TrueBoundary
	r.Found += o.Found
	r.Correct += o.Correct
	r.Mistaken += o.Mistaken
	r.Missing += o.Missing
	if err := r.MistakenHops.Add(o.MistakenHops); err != nil {
		return err
	}
	return r.MissingHops.Add(o.MissingHops)
}

// Evaluate produces a full report for one detection run. maxHops sets the
// histogram range (the paper uses 3).
func Evaluate(g *graph.Graph, truth, found []bool, maxHops int) (Report, error) {
	c, err := Classify(truth, found)
	if err != nil {
		return Report{}, err
	}
	correct := make([]bool, len(truth))
	var mistaken, missing []int
	for i := range truth {
		switch {
		case found[i] && truth[i]:
			correct[i] = true
		case found[i]:
			mistaken = append(mistaken, i)
		case truth[i]:
			missing = append(missing, i)
		}
	}
	r := Report{Classification: c}
	r.MistakenHops = HopStatsFor(g, mistaken, correct, maxHops)
	r.MissingHops = HopStatsFor(g, missing, correct, maxHops)
	return r, nil
}
