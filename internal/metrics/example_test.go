package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// Classify compares a detector's output against ground truth.
func ExampleClassify() {
	truth := []bool{true, true, false, false}
	found := []bool{true, false, true, false}
	c, _ := metrics.Classify(truth, found)
	fmt.Printf("correct=%d mistaken=%d missing=%d P=%.2f R=%.2f\n",
		c.Correct, c.Mistaken, c.Missing, c.Precision(), c.Recall())
	// Output:
	// correct=1 mistaken=1 missing=1 P=0.50 R=0.50
}
