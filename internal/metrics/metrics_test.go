package metrics

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestClassify(t *testing.T) {
	truth := []bool{true, true, false, false, true}
	found := []bool{true, false, true, false, true}
	c, err := Classify(truth, found)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes != 5 || c.TrueBoundary != 3 || c.Found != 3 ||
		c.Correct != 2 || c.Mistaken != 1 || c.Missing != 1 {
		t.Errorf("classification: %+v", c)
	}
	if p := c.Precision(); math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if r := c.Recall(); math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	if f := c.F1(); math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", f)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestClassifyMismatch(t *testing.T) {
	if _, err := Classify([]bool{true}, []bool{true, false}); err != ErrLengthMismatch {
		t.Errorf("err = %v", err)
	}
}

func TestClassifyDegenerate(t *testing.T) {
	c, err := Classify([]bool{false, false}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Errorf("empty-case precision/recall: %v %v", c.Precision(), c.Recall())
	}
	all, _ := Classify([]bool{true}, []bool{false})
	if all.F1() != 0 {
		t.Errorf("all-missed F1 = %v", all.F1())
	}
}

func TestHopHistogram(t *testing.T) {
	g := pathGraph(7)
	anchors := []bool{true, false, false, false, false, false, false}
	query := []int{0, 1, 2, 3, 6}
	hist, atZero, beyond := HopHistogram(g, query, anchors, 3)
	if atZero != 1 { // node 0 is an anchor itself
		t.Errorf("atZero = %d", atZero)
	}
	want := []int{1, 1, 1} // nodes 1, 2, 3
	for i := range want {
		if hist[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, hist[i], want[i])
		}
	}
	if beyond != 1 { // node 6 at distance 6
		t.Errorf("beyond = %d", beyond)
	}
}

func TestHopHistogramUnreachable(t *testing.T) {
	g := graph.New(4) // no edges
	anchors := []bool{true, false, false, false}
	hist, atZero, beyond := HopHistogram(g, []int{1, 2, 3}, anchors, 3)
	if atZero != 0 || beyond != 3 {
		t.Errorf("unreachable: atZero=%d beyond=%d hist=%v", atZero, beyond, hist)
	}
}

func TestHopStatsFractions(t *testing.T) {
	g := pathGraph(5)
	anchors := []bool{true, false, false, false, false}
	st := HopStatsFor(g, []int{1, 2, 4}, anchors, 3)
	frac, beyond := st.Fractions()
	if math.Abs(frac[0]-1.0/3) > 1e-12 || math.Abs(frac[1]-1.0/3) > 1e-12 || frac[2] != 0 {
		t.Errorf("frac = %v", frac)
	}
	if math.Abs(beyond-1.0/3) > 1e-12 {
		t.Errorf("beyond = %v", beyond)
	}
	if st.Total() != 3 {
		t.Errorf("total = %d", st.Total())
	}
	// Empty query: all zeros, no NaN.
	empty := HopStatsFor(g, nil, anchors, 3)
	frac, beyond = empty.Fractions()
	for _, f := range frac {
		if f != 0 {
			t.Errorf("empty query frac = %v", frac)
		}
	}
	if beyond != 0 {
		t.Errorf("empty query beyond = %v", beyond)
	}
}

func TestHopStatsAdd(t *testing.T) {
	a := HopStats{Hist: []int{1, 2, 3}, AtZero: 1, Beyond: 2}
	b := HopStats{Hist: []int{4, 5, 6}, AtZero: 0, Beyond: 1}
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.Hist[0] != 5 || a.Hist[2] != 9 || a.Beyond != 3 || a.AtZero != 1 {
		t.Errorf("sum = %+v", a)
	}
	var zero HopStats
	if err := zero.Add(b); err != nil {
		t.Fatal(err)
	}
	if zero.Hist[1] != 5 {
		t.Errorf("zero-init add: %+v", zero)
	}
	bad := HopStats{Hist: []int{1}}
	if err := bad.Add(b); err == nil {
		t.Error("range mismatch accepted")
	}
}

func TestReportAdd(t *testing.T) {
	g := pathGraph(6)
	truth := []bool{true, true, true, false, false, false}
	found := []bool{true, true, false, true, false, false}
	r1, err := Evaluate(g, truth, found, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2 := r1
	if err := r2.Add(r1); err != nil {
		t.Fatal(err)
	}
	if r2.Correct != 2*r1.Correct || r2.Mistaken != 2*r1.Mistaken {
		t.Errorf("counts not doubled: %+v", r2.Classification)
	}
	// Doubling does not change the fractions.
	f1, _ := r1.MistakenHops.Fractions()
	f2, _ := r2.MistakenHops.Fractions()
	for i := range f1 {
		if math.Abs(f1[i]-f2[i]) > 1e-12 {
			t.Errorf("fractions changed: %v vs %v", f1, f2)
		}
	}
}

func TestEvaluate(t *testing.T) {
	// Path: 0 1 2 3 4 5. Truth: {0,1,2}. Found: {0,1,3}.
	g := pathGraph(6)
	truth := []bool{true, true, true, false, false, false}
	found := []bool{true, true, false, true, false, false}
	r, err := Evaluate(g, truth, found, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Correct != 2 || r.Mistaken != 1 || r.Missing != 1 {
		t.Fatalf("classification: %+v", r.Classification)
	}
	// Mistaken node 3 is 2 hops from the nearest correct node (1).
	mf, _ := r.MistakenHops.Fractions()
	if mf[1] != 1 {
		t.Errorf("mistaken hops = %v", mf)
	}
	// Missing node 2 is 1 hop from correct node 1.
	gf, _ := r.MissingHops.Fractions()
	if gf[0] != 1 {
		t.Errorf("missing hops = %v", gf)
	}
	if _, err := Evaluate(g, truth[:3], found, 3); err == nil {
		t.Error("length mismatch should fail")
	}
}
