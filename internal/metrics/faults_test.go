package metrics

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestFaultReportZeroValue(t *testing.T) {
	var r FaultReport
	if r.DeliveryRate() != 1 {
		t.Errorf("DeliveryRate = %v, want 1 for an empty report", r.DeliveryRate())
	}
	if r.LossRate() != 0 || r.RetransmitOverhead() != 0 {
		t.Errorf("zero report has nonzero rates: %v", r)
	}
}

func TestFaultReportRates(t *testing.T) {
	var r FaultReport
	r.Add(sim.FaultStats{
		Attempts:       100,
		Delivered:      80,
		Dropped:        12,
		CrashDrops:     5,
		PartitionDrops: 3,
		Retransmits:    25,
		Abandoned:      2,
	})
	if got := r.DeliveryRate(); got != 0.8 {
		t.Errorf("DeliveryRate = %v, want 0.8", got)
	}
	if got := r.LossRate(); got != 0.2 {
		t.Errorf("LossRate = %v, want 0.2", got)
	}
	if got := r.RetransmitOverhead(); got != 0.25 {
		t.Errorf("RetransmitOverhead = %v, want 0.25", got)
	}
}

func TestFaultReportAccumulates(t *testing.T) {
	var r FaultReport
	r.Add(sim.FaultStats{Attempts: 10, Delivered: 9, Dropped: 1})
	r.Add(sim.FaultStats{Attempts: 10, Delivered: 7, Dropped: 3, Retransmits: 4})
	if r.Attempts != 20 || r.Delivered != 16 || r.Dropped != 4 || r.Retransmits != 4 {
		t.Errorf("accumulated report: %+v", r.FaultStats)
	}
	if got := r.LossRate(); got != 0.2 {
		t.Errorf("LossRate = %v, want 0.2", got)
	}
}

func TestFaultReportString(t *testing.T) {
	var r FaultReport
	r.Add(sim.FaultStats{Attempts: 4, Delivered: 3, Dropped: 1})
	s := r.String()
	for _, want := range []string{"attempts=4", "delivered=3", "dropped=1", "loss=0.250"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
