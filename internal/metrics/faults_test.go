package metrics

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestFaultReportZeroValue(t *testing.T) {
	var r FaultReport
	if r.DeliveryRate() != 1 {
		t.Errorf("DeliveryRate = %v, want 1 for an empty report", r.DeliveryRate())
	}
	if r.LossRate() != 0 || r.RetransmitOverhead() != 0 {
		t.Errorf("zero report has nonzero rates: %v", r)
	}
}

func TestFaultReportRates(t *testing.T) {
	var r FaultReport
	r.Add(sim.FaultStats{
		Attempts:       100,
		Delivered:      80,
		Dropped:        12,
		CrashDrops:     5,
		PartitionDrops: 3,
		Retransmits:    25,
		Abandoned:      2,
	})
	if got := r.DeliveryRate(); got != 0.8 {
		t.Errorf("DeliveryRate = %v, want 0.8", got)
	}
	if got := r.LossRate(); got != 0.2 {
		t.Errorf("LossRate = %v, want 0.2", got)
	}
	if got := r.RetransmitOverhead(); got != 0.25 {
		t.Errorf("RetransmitOverhead = %v, want 0.25", got)
	}
}

func TestFaultReportAccumulates(t *testing.T) {
	var r FaultReport
	r.Add(sim.FaultStats{Attempts: 10, Delivered: 9, Dropped: 1})
	r.Add(sim.FaultStats{Attempts: 10, Delivered: 7, Dropped: 3, Retransmits: 4})
	if r.Attempts != 20 || r.Delivered != 16 || r.Dropped != 4 || r.Retransmits != 4 {
		t.Errorf("accumulated report: %+v", r.FaultStats)
	}
	if got := r.LossRate(); got != 0.2 {
		t.Errorf("LossRate = %v, want 0.2", got)
	}
}

func TestFaultReportString(t *testing.T) {
	var r FaultReport
	r.Add(sim.FaultStats{Attempts: 4, Delivered: 3, Dropped: 1})
	s := r.String()
	for _, want := range []string{"attempts=4", "delivered=3", "dropped=1", "loss=0.250"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// TestFaultReportZeroValueStringNA: a report from a run where the fault
// layer never sent anything must not fabricate rates.
func TestFaultReportZeroValueStringNA(t *testing.T) {
	var r FaultReport
	s := r.String()
	for _, want := range []string{"attempts=0", "loss=n/a", "overhead=n/a"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// TestFaultReportFromObsRoundTrip: sim.FaultStats.EmitObs into a recording
// observer and FaultReportFromObs back must reproduce the totals (with the
// drop causes folded into Dropped, per the obs schema), and the derived
// rates must agree with the directly-accumulated report.
func TestFaultReportFromObsRoundTrip(t *testing.T) {
	stats := sim.FaultStats{
		Attempts:       100,
		Delivered:      80,
		Dropped:        12,
		CrashDrops:     5,
		PartitionDrops: 3,
		Duplicated:     6,
		Retransmits:    25,
		Acks:           70,
		Abandoned:      2,
	}
	m := &obs.Mem{}
	stats.EmitObs(m, obs.StageIFF)
	// Split emission across stages: FromObs sums everything the run saw.
	sim.FaultStats{Attempts: 10, Delivered: 10, Acks: 9}.EmitObs(m, obs.StageGrouping)

	got := FaultReportFromObs(m)
	var want FaultReport
	want.Add(stats)
	want.Add(sim.FaultStats{Attempts: 10, Delivered: 10, Acks: 9})

	if got.Attempts != want.Attempts || got.Delivered != want.Delivered ||
		got.Duplicated != want.Duplicated || got.Retransmits != want.Retransmits ||
		got.Acks != want.Acks || got.Abandoned != want.Abandoned {
		t.Errorf("FromObs %+v, want %+v", got.FaultStats, want.FaultStats)
	}
	if got.TotalDropped() != want.TotalDropped() {
		t.Errorf("TotalDropped %d, want %d", got.TotalDropped(), want.TotalDropped())
	}
	if got.LossRate() != want.LossRate() || got.DeliveryRate() != want.DeliveryRate() ||
		got.RetransmitOverhead() != want.RetransmitOverhead() {
		t.Errorf("rates diverge: FromObs %v, direct %v", got, want)
	}

	// A nil or empty observer yields the zero report.
	if r := FaultReportFromObs(nil); r.Attempts != 0 {
		t.Errorf("nil observer produced %+v", r)
	}
	if r := FaultReportFromObs(&obs.Mem{}); r.Attempts != 0 {
		t.Errorf("empty observer produced %+v", r)
	}
}
