package metrics

import "fmt"

// DetectorCell is one (detector, fixture) cell of the cross-detector
// comparison study: detection quality against the ground-truth boundary
// plus the protocol cost totals, with the cost counters summed under the
// detector's own declared obs vocabulary rather than the paper
// pipeline's stage names.
type DetectorCell struct {
	Detector string
	Fixture  string
	Classification
	// Messages totals msgs_sent over the detector's declared flood
	// stages (candidate floods included for flooding detectors).
	Messages int64
	// Work totals the detector's declared per-node work counters
	// (ball tests for the paper pipeline, local tests for competitors).
	Work int64
	// Rounds totals flood_rounds over the declared flood stages.
	Rounds int64
	// Runs is how many times the detection ran for the sustained-cost
	// columns; P50NS/P99NS are the wall-time quantiles over those runs
	// (log-bucket lower bounds, so quantized to within 12.5%).
	Runs  int
	P50NS int64
	P99NS int64
}

// DetectorComparisonRows renders the cross-detector study as a table,
// in the given cell order (fixture-major from eval.Engine.DetectorMatrix).
func DetectorComparisonRows(cells []DetectorCell) (header []string, rows [][]string) {
	header = []string{"fixture", "detector", "true", "found", "correct", "mistaken", "missing",
		"precision%", "recall%", "f1%", "messages", "rounds", "work", "runs", "p50_ms", "p99_ms"}
	for _, c := range cells {
		rows = append(rows, []string{
			c.Fixture, c.Detector,
			fmt.Sprint(c.TrueBoundary), fmt.Sprint(c.Found), fmt.Sprint(c.Correct),
			fmt.Sprint(c.Mistaken), fmt.Sprint(c.Missing),
			fmt.Sprintf("%.1f", 100*c.Precision()),
			fmt.Sprintf("%.1f", 100*c.Recall()),
			fmt.Sprintf("%.1f", 100*c.F1()),
			fmt.Sprint(c.Messages), fmt.Sprint(c.Rounds), fmt.Sprint(c.Work),
			fmt.Sprint(c.Runs),
			fmt.Sprintf("%.2f", float64(c.P50NS)/1e6),
			fmt.Sprintf("%.2f", float64(c.P99NS)/1e6),
		})
	}
	return header, rows
}
