// Fault-side observability: aggregates the simulator's per-run fault
// counters into the rates the loss-sweep experiment reports alongside
// recall/precision.
package metrics

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// FaultReport summarizes message-level fault activity for one detection
// run (or an accumulation over several). It embeds the simulator's raw
// counters and derives the rates worth printing. Since the obs layer
// became the pipeline's one source of truth for message accounting, a
// report is just a view over those counters — build one from a recording
// observer with FaultReportFromObs, or keep accumulating raw
// sim.FaultStats via Add; the two agree by construction
// (sim.FaultStats.EmitObs is the only emitter).
type FaultReport struct {
	sim.FaultStats
}

// Add accumulates another run's counters.
func (r *FaultReport) Add(s sim.FaultStats) { r.FaultStats.Add(s) }

// FaultReportFromObs folds a recording observer's message counters —
// summed across every stage — back into a report. Counters the observer
// never saw stay zero; note the obs layer does not distinguish the drop
// causes, so TotalDropped is preserved but attributed entirely to random
// loss (Dropped).
func FaultReportFromObs(m *obs.Mem) FaultReport {
	var r FaultReport
	if m == nil {
		return r
	}
	r.Attempts = int(m.CounterTotal(obs.CtrMsgsSent))
	r.Delivered = int(m.CounterTotal(obs.CtrMsgsDelivered))
	r.Dropped = int(m.CounterTotal(obs.CtrMsgsDropped))
	r.Duplicated = int(m.CounterTotal(obs.CtrMsgsDuplicated))
	r.Retransmits = int(m.CounterTotal(obs.CtrMsgsRetransmitted))
	r.Acks = int(m.CounterTotal(obs.CtrMsgsAcked))
	r.Abandoned = int(m.CounterTotal(obs.CtrMsgsAbandoned))
	return r
}

// DeliveryRate is the fraction of send attempts that reached a handler.
// Injected duplicates count as extra deliveries, so the rate can exceed
// 1 under heavy duplication; with none it is at most 1.
func (r FaultReport) DeliveryRate() float64 {
	if r.Attempts == 0 {
		return 1
	}
	return float64(r.Delivered) / float64(r.Attempts)
}

// LossRate is the fraction of send attempts killed by the fault layer,
// from any cause: random loss, crashed receivers, or partitions.
func (r FaultReport) LossRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.TotalDropped()) / float64(r.Attempts)
}

// RetransmitOverhead is the number of retransmissions per original send
// attempt — the price the reliable protocols paid to mask the loss.
func (r FaultReport) RetransmitOverhead() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Retransmits) / float64(r.Attempts)
}

// String implements fmt.Stringer. A zero-attempt report (the fault layer
// never ran) prints its rates as "n/a" rather than a made-up number.
func (r FaultReport) String() string {
	if r.Attempts == 0 {
		return fmt.Sprintf("attempts=0 delivered=%d dropped=%d retransmits=%d abandoned=%d (loss=n/a overhead=n/a)",
			r.Delivered, r.TotalDropped(), r.Retransmits, r.Abandoned)
	}
	return fmt.Sprintf("attempts=%d delivered=%d dropped=%d retransmits=%d abandoned=%d (loss=%.3f overhead=%.3f)",
		r.Attempts, r.Delivered, r.TotalDropped(), r.Retransmits, r.Abandoned,
		r.LossRate(), r.RetransmitOverhead())
}
