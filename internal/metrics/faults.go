// Fault-side observability: aggregates the simulator's per-run fault
// counters into the rates the loss-sweep experiment reports alongside
// recall/precision.
package metrics

import (
	"fmt"

	"repro/internal/sim"
)

// FaultReport summarizes message-level fault activity for one detection
// run (or an accumulation over several). It embeds the simulator's raw
// counters and derives the rates worth printing.
type FaultReport struct {
	sim.FaultStats
}

// Add accumulates another run's counters.
func (r *FaultReport) Add(s sim.FaultStats) { r.FaultStats.Add(s) }

// DeliveryRate is the fraction of send attempts that reached a handler.
// Injected duplicates count as extra deliveries, so the rate can exceed
// 1 under heavy duplication; with none it is at most 1.
func (r FaultReport) DeliveryRate() float64 {
	if r.Attempts == 0 {
		return 1
	}
	return float64(r.Delivered) / float64(r.Attempts)
}

// LossRate is the fraction of send attempts killed by the fault layer,
// from any cause: random loss, crashed receivers, or partitions.
func (r FaultReport) LossRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.TotalDropped()) / float64(r.Attempts)
}

// RetransmitOverhead is the number of retransmissions per original send
// attempt — the price the reliable protocols paid to mask the loss.
func (r FaultReport) RetransmitOverhead() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Retransmits) / float64(r.Attempts)
}

// String implements fmt.Stringer.
func (r FaultReport) String() string {
	return fmt.Sprintf("attempts=%d delivered=%d dropped=%d retransmits=%d abandoned=%d (loss=%.3f overhead=%.3f)",
		r.Attempts, r.Delivered, r.TotalDropped(), r.Retransmits, r.Abandoned,
		r.LossRate(), r.RetransmitOverhead())
}
