package netgen

import (
	"math"

	"repro/internal/geom"
)

// cellKey addresses one cell of the spatial hash grid.
type cellKey struct{ x, y, z int32 }

// spatialGrid is a uniform hash grid over 3D points with cell size equal to
// the query radius, so every radius query inspects at most 27 cells.
type spatialGrid struct {
	cell   float64
	points []geom.Vec3
	cells  map[cellKey][]int
}

// newSpatialGrid indexes the given points with the given cell size (> 0).
func newSpatialGrid(points []geom.Vec3, cell float64) *spatialGrid {
	g := &spatialGrid{
		cell:   cell,
		points: points,
		cells:  make(map[cellKey][]int, len(points)),
	}
	for i, p := range points {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

func (g *spatialGrid) key(p geom.Vec3) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / g.cell)),
		y: int32(math.Floor(p.Y / g.cell)),
		z: int32(math.Floor(p.Z / g.cell)),
	}
}

// neighborsWithin appends to dst the indices of all points within radius of
// points[i] (excluding i itself) and returns the extended slice. radius must
// not exceed the grid cell size.
func (g *spatialGrid) neighborsWithin(dst []int, i int, radius float64) []int {
	p := g.points[i]
	k := g.key(p)
	r2 := radius * radius
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for dz := int32(-1); dz <= 1; dz++ {
				for _, j := range g.cells[cellKey{k.x + dx, k.y + dy, k.z + dz}] {
					if j != i && g.points[j].Dist2(p) <= r2 {
						dst = append(dst, j)
					}
				}
			}
		}
	}
	return dst
}

// countEdges returns the number of unordered pairs within radius. Used by
// the radius auto-tuner, which needs degree estimates without materializing
// adjacency lists.
func (g *spatialGrid) countEdges(radius float64) int {
	r2 := radius * radius
	total := 0
	for i, p := range g.points {
		k := g.key(p)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for dz := int32(-1); dz <= 1; dz++ {
					for _, j := range g.cells[cellKey{k.x + dx, k.y + dy, k.z + dz}] {
						if j > i && g.points[j].Dist2(p) <= r2 {
							total++
						}
					}
				}
			}
		}
	}
	return total
}
