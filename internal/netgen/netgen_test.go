package netgen

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/ranging"
	"repro/internal/shapes"
)

func testNetwork(t *testing.T, seed int64) *Network {
	t.Helper()
	net, err := Generate(Config{
		Shape:           shapes.NewBall(geom.Zero, 5),
		SurfaceNodes:    300,
		InteriorNodes:   700,
		TargetAvgDegree: 16,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGenerateValidation(t *testing.T) {
	ball := shapes.NewBall(geom.Zero, 1)
	cases := []Config{
		{},                              // no shape
		{Shape: ball},                   // no nodes
		{Shape: ball, SurfaceNodes: -1}, // negative count
		{Shape: ball, SurfaceNodes: 5, Radius: -1},
		{Shape: ball, SurfaceNodes: 5}, // radius 0 without target degree
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGenerateCountsAndGroundTruth(t *testing.T) {
	net := testNetwork(t, 1)
	if net.Len() != 1000 {
		t.Fatalf("Len = %d", net.Len())
	}
	surface := 0
	ball := shapes.NewBall(geom.Zero, 5)
	for _, n := range net.Nodes {
		if n.OnSurface {
			surface++
			if d := n.Pos.Dist(geom.Zero); math.Abs(d-5) > 1e-6 {
				t.Fatalf("surface node at radius %v", d)
			}
		}
		if !ball.Contains(n.Pos) {
			t.Fatalf("node %d outside shape", n.ID)
		}
	}
	if surface != 300 {
		t.Errorf("surface nodes = %d, want 300", surface)
	}
	mask := net.TrueBoundary()
	for i, n := range net.Nodes {
		if mask[i] != n.OnSurface {
			t.Fatal("TrueBoundary mask mismatch")
		}
	}
	if len(net.Positions()) != net.Len() {
		t.Error("Positions length mismatch")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := testNetwork(t, 42)
	b := testNetwork(t, 42)
	if a.Radius != b.Radius {
		t.Fatalf("radius differs: %v vs %v", a.Radius, b.Radius)
	}
	for i := range a.Nodes {
		if a.Nodes[i].Pos != b.Nodes[i].Pos {
			t.Fatalf("node %d position differs", i)
		}
	}
}

func TestConnectivityMatchesRadius(t *testing.T) {
	net := testNetwork(t, 2)
	pos := net.Positions()
	// Every listed edge must be within radius with the correct distance;
	// adjacency must be sorted and symmetric.
	for i, adj := range net.G.Adj {
		if !sort.IntsAreSorted(adj) {
			t.Fatalf("adjacency of %d not sorted", i)
		}
		for k, j := range adj {
			d := pos[i].Dist(pos[j])
			if d > net.Radius+1e-12 {
				t.Fatalf("edge (%d,%d) length %v exceeds radius %v", i, j, d, net.Radius)
			}
			if math.Abs(net.Dist[i][k]-d) > 1e-12 {
				t.Fatalf("Dist[%d][%d] = %v, want %v", i, k, net.Dist[i][k], d)
			}
			if _, ok := net.neighborIndex(j, i); !ok {
				t.Fatalf("edge (%d,%d) not symmetric", i, j)
			}
		}
	}
	// Spot-check completeness against brute force for a sample of nodes.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		i := rng.Intn(net.Len())
		count := 0
		for j := range pos {
			if j != i && pos[i].Dist(pos[j]) <= net.Radius {
				count++
			}
		}
		if count != len(net.G.Adj[i]) {
			t.Fatalf("node %d: %d neighbors listed, brute force %d", i, len(net.G.Adj[i]), count)
		}
	}
}

func TestRadiusTuningHitsTargetDegree(t *testing.T) {
	net := testNetwork(t, 3)
	avg := net.G.AvgDegree()
	if math.Abs(avg-16) > 1.0 {
		t.Errorf("avg degree = %v, want ≈ 16", avg)
	}
}

func TestFixedRadius(t *testing.T) {
	net, err := Generate(Config{
		Shape:         shapes.NewBall(geom.Zero, 5),
		SurfaceNodes:  100,
		InteriorNodes: 100,
		Radius:        2.5,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if net.Radius != 2.5 {
		t.Errorf("Radius = %v", net.Radius)
	}
}

func TestStats(t *testing.T) {
	net := testNetwork(t, 5)
	s := net.Stats()
	if s.Nodes != 1000 || s.SurfaceNodes != 300 {
		t.Errorf("counts: %+v", s)
	}
	if s.MinDegree > s.MaxDegree {
		t.Errorf("degree range inverted: %+v", s)
	}
	if math.Abs(s.AvgDegree-16) > 1.5 {
		t.Errorf("avg degree: %+v", s)
	}
	if s.Components < 1 || s.LargestComp == 0 {
		t.Errorf("components: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty Stats string")
	}
}

func TestMeasureExactMatchesTrue(t *testing.T) {
	net := testNetwork(t, 6)
	m := net.Measure(ranging.Exact{}, 99)
	for i := range net.G.Adj {
		for k := range net.G.Adj[i] {
			if m.Dist[i][k] != net.Dist[i][k] {
				t.Fatalf("exact measurement differs at (%d,%d)", i, k)
			}
		}
	}
}

func TestMeasureSymmetricAndBounded(t *testing.T) {
	net := testNetwork(t, 7)
	m := net.Measure(ranging.UniformAdditive{Fraction: 0.3}, 100)
	for i := range net.G.Adj {
		for k, j := range net.G.Adj[i] {
			dij := m.Dist[i][k]
			dji, ok := m.Lookup(j, i)
			if !ok || dij != dji {
				t.Fatalf("asymmetric measurement (%d,%d): %v vs %v", i, j, dij, dji)
			}
			if math.Abs(dij-net.Dist[i][k]) > 0.3*net.Radius+1e-12 {
				t.Fatalf("measurement error out of bounds at (%d,%d)", i, j)
			}
		}
	}
}

func TestMeasurementLookup(t *testing.T) {
	net := testNetwork(t, 8)
	m := net.Measure(ranging.Exact{}, 0)
	if d, ok := m.Lookup(0, 0); !ok || d != 0 {
		t.Error("self lookup should be 0")
	}
	// Find a non-adjacent pair.
	adj := map[int]bool{}
	for _, j := range net.G.Adj[0] {
		adj[j] = true
	}
	for j := 1; j < net.Len(); j++ {
		if !adj[j] {
			if _, ok := m.Lookup(0, j); ok {
				t.Error("lookup of non-neighbor succeeded")
			}
			break
		}
	}
}

func TestMeasureDeterministicPerSeed(t *testing.T) {
	net := testNetwork(t, 10)
	m1 := net.Measure(ranging.UniformAdditive{Fraction: 0.5}, 7)
	m2 := net.Measure(ranging.UniformAdditive{Fraction: 0.5}, 7)
	m3 := net.Measure(ranging.UniformAdditive{Fraction: 0.5}, 8)
	same, diff := true, false
	for i := range m1.Dist {
		for k := range m1.Dist[i] {
			if m1.Dist[i][k] != m2.Dist[i][k] {
				same = false
			}
			if m1.Dist[i][k] != m3.Dist[i][k] {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different measurements")
	}
	if !diff {
		t.Error("different seeds produced identical measurements")
	}
}

func TestSpatialGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]geom.Vec3, 400)
	for i := range pts {
		pts[i] = geom.RandomInBox(rng, geom.NewAABB(geom.Zero, geom.V(4, 4, 4)))
	}
	const radius = 0.7
	grid := newSpatialGrid(pts, radius)
	for i := range pts {
		got := grid.neighborsWithin(nil, i, radius)
		sort.Ints(got)
		var want []int
		for j := range pts {
			if j != i && pts[i].Dist(pts[j]) <= radius {
				want = append(want, j)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: grid %d vs brute %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("node %d neighbor mismatch", i)
			}
		}
	}
	// Edge count must agree with the pairwise sum.
	total := 0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= radius {
				total++
			}
		}
	}
	if got := grid.countEdges(radius); got != total {
		t.Fatalf("countEdges = %d, want %d", got, total)
	}
}

func TestTuneRadiusErrors(t *testing.T) {
	if _, err := tuneRadius([]geom.Vec3{{}}, 5, geom.NewAABB(geom.Zero, geom.V(1, 1, 1))); err == nil {
		t.Error("single node should fail")
	}
	pts := []geom.Vec3{{}, {X: 1}, {X: 2}}
	if _, err := tuneRadius(pts, 10, geom.NewAABB(geom.Zero, geom.V(2, 0, 0))); err == nil {
		t.Error("unreachable degree should fail")
	}
	same := []geom.Vec3{{}, {}}
	if _, err := tuneRadius(same, 1, geom.BoundingBox(same)); err == nil {
		t.Error("degenerate bounds should fail")
	}
}
