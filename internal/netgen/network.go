// Package netgen deploys simulated 3D wireless networks: nodes sampled on a
// shape's boundary surfaces (the ground truth for boundary detection) and in
// its interior, connected under the unit-ball radio model, with true and
// noisy pairwise distance measurements. This reproduces the simulation setup
// of Sec. IV-A of the paper.
package netgen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/ranging"
)

// Node is one deployed wireless node.
type Node struct {
	ID int
	// Pos is the true physical position (used for ground truth and for
	// the zero-error coordinate oracle; the detection algorithms see
	// only measured distances unless configured otherwise).
	Pos geom.Vec3
	// OnSurface marks ground-truth boundary nodes: nodes sampled on the
	// deployment shape's boundary surfaces.
	OnSurface bool
}

// Network is a deployed network: nodes, radio range, connectivity, and true
// inter-neighbor distances.
type Network struct {
	Nodes  []Node
	Radius float64 // radio transmission range
	G      *graph.Graph
	// Dist parallels G.Adj: Dist[i][k] is the true distance from node i
	// to its k-th neighbor G.Adj[i][k]. Adjacency lists are sorted by
	// neighbor ID.
	Dist [][]float64
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.Nodes) }

// TrueBoundary returns the ground-truth boundary membership mask.
func (n *Network) TrueBoundary() []bool {
	mask := make([]bool, len(n.Nodes))
	for i, node := range n.Nodes {
		mask[i] = node.OnSurface
	}
	return mask
}

// Positions returns every node's true position.
func (n *Network) Positions() []geom.Vec3 {
	pos := make([]geom.Vec3, len(n.Nodes))
	for i, node := range n.Nodes {
		pos[i] = node.Pos
	}
	return pos
}

// neighborIndex returns the index k with G.Adj[i][k] == j, relying on the
// sorted adjacency lists.
func (n *Network) neighborIndex(i, j int) (int, bool) {
	adj := n.G.Adj[i]
	k := sort.SearchInts(adj, j)
	if k < len(adj) && adj[k] == j {
		return k, true
	}
	return 0, false
}

// Measurement holds one noisy measurement of every link's distance.
// Measurements are symmetric: both endpoints of a link observe the same
// value, as produced by a single ranging exchange.
type Measurement struct {
	net *Network
	// Dist parallels the network's adjacency lists.
	Dist [][]float64
	// Model records the noise model used.
	Model ranging.Model
}

// Measure performs one ranging pass over every link with the given noise
// model. The seed makes the pass reproducible independently of other random
// draws.
func (n *Network) Measure(model ranging.Model, seed int64) *Measurement {
	rng := rand.New(rand.NewSource(seed))
	m := &Measurement{net: n, Model: model, Dist: make([][]float64, len(n.Nodes))}
	for i := range n.G.Adj {
		m.Dist[i] = make([]float64, len(n.G.Adj[i]))
	}
	for i := range n.G.Adj {
		for k, j := range n.G.Adj[i] {
			if j <= i {
				continue // measured once per link, below the diagonal
			}
			d := model.Measure(rng, n.Dist[i][k], n.Radius)
			m.Dist[i][k] = d
			if rk, ok := n.neighborIndex(j, i); ok {
				m.Dist[j][rk] = d
			}
		}
	}
	return m
}

// Lookup returns the measured distance between nodes i and j, which must be
// radio neighbors; ok is false otherwise.
func (m *Measurement) Lookup(i, j int) (float64, bool) {
	if i == j {
		return 0, true
	}
	if k, ok := m.net.neighborIndex(i, j); ok {
		return m.Dist[i][k], true
	}
	return 0, false
}

// Stats summarizes a network's connectivity.
type Stats struct {
	Nodes         int
	SurfaceNodes  int
	Edges         int
	MinDegree     int
	MaxDegree     int
	AvgDegree     float64
	Components    int
	LargestComp   int
	IsolatedNodes int
}

// Stats computes connectivity statistics.
func (n *Network) Stats() Stats {
	s := Stats{Nodes: len(n.Nodes), Edges: n.G.NumEdges(), AvgDegree: n.G.AvgDegree()}
	if len(n.Nodes) == 0 {
		return s
	}
	s.MinDegree = n.G.Degree(0)
	for i := range n.Nodes {
		d := n.G.Degree(i)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.IsolatedNodes++
		}
		if n.Nodes[i].OnSurface {
			s.SurfaceNodes++
		}
	}
	comps := n.G.ConnectedComponents(graph.All)
	s.Components = len(comps)
	for _, c := range comps {
		if len(c) > s.LargestComp {
			s.LargestComp = len(c)
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf(
		"nodes=%d (surface=%d) edges=%d degree[min=%d avg=%.1f max=%d] components=%d largest=%d isolated=%d",
		s.Nodes, s.SurfaceNodes, s.Edges, s.MinDegree, s.AvgDegree, s.MaxDegree,
		s.Components, s.LargestComp, s.IsolatedNodes)
}
