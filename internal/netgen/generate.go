package netgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/shapes"
)

// Config parameterizes network generation.
type Config struct {
	// Shape is the deployment solid. Required.
	Shape shapes.Shape
	// SurfaceNodes is the number of nodes sampled on the boundary
	// surfaces (ground-truth boundary nodes).
	SurfaceNodes int
	// InteriorNodes is the number of nodes sampled in the interior.
	InteriorNodes int
	// Radius is the radio transmission range. When zero, it is
	// auto-tuned so the average nodal degree matches TargetAvgDegree.
	Radius float64
	// TargetAvgDegree is the desired average degree when Radius is
	// auto-tuned. The paper's networks average 18.5.
	TargetAvgDegree float64
	// Seed makes generation reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Shape == nil {
		return errors.New("netgen: Shape is required")
	}
	if c.SurfaceNodes < 0 || c.InteriorNodes < 0 {
		return errors.New("netgen: node counts must be non-negative")
	}
	if c.SurfaceNodes+c.InteriorNodes == 0 {
		return errors.New("netgen: at least one node required")
	}
	if c.Radius < 0 {
		return errors.New("netgen: Radius must be non-negative")
	}
	if c.Radius == 0 && c.TargetAvgDegree <= 0 {
		return errors.New("netgen: TargetAvgDegree required when Radius is auto-tuned")
	}
	return nil
}

// Generate deploys a network per the configuration: SurfaceNodes points on
// the shape's boundary surfaces, InteriorNodes points in its interior,
// connected by the unit-ball radio model.
func Generate(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	nodes := make([]Node, 0, cfg.SurfaceNodes+cfg.InteriorNodes)
	for i := 0; i < cfg.SurfaceNodes; i++ {
		nodes = append(nodes, Node{ID: len(nodes), Pos: cfg.Shape.SampleSurface(rng), OnSurface: true})
	}
	interior, err := shapes.SampleInteriorN(rng, cfg.Shape, cfg.InteriorNodes)
	if err != nil {
		return nil, fmt.Errorf("interior sampling: %w", err)
	}
	for _, p := range interior {
		nodes = append(nodes, Node{ID: len(nodes), Pos: p})
	}

	positions := make([]geom.Vec3, len(nodes))
	for i, n := range nodes {
		positions[i] = n.Pos
	}

	radius := cfg.Radius
	if radius == 0 {
		radius, err = tuneRadius(positions, cfg.TargetAvgDegree, cfg.Shape.Bounds())
		if err != nil {
			return nil, err
		}
	}

	net := &Network{Nodes: nodes, Radius: radius}
	net.G, net.Dist = buildConnectivity(positions, radius)
	return net, nil
}

// buildConnectivity links every pair of nodes within radius and records the
// true link distances, with adjacency lists sorted by neighbor ID.
func buildConnectivity(positions []geom.Vec3, radius float64) (*graph.Graph, [][]float64) {
	g := graph.New(len(positions))
	grid := newSpatialGrid(positions, radius)
	scratch := make([]int, 0, 64)
	for i := range positions {
		scratch = grid.neighborsWithin(scratch[:0], i, radius)
		sort.Ints(scratch)
		g.Adj[i] = append([]int(nil), scratch...)
	}
	dist := make([][]float64, len(positions))
	for i := range positions {
		dist[i] = make([]float64, len(g.Adj[i]))
		for k, j := range g.Adj[i] {
			dist[i][k] = positions[i].Dist(positions[j])
		}
	}
	return g, dist
}

// tuneRadius binary-searches the radio range that achieves the target
// average degree. Average degree grows monotonically with the radius, so
// bisection converges; ~40 iterations give far better than floating-point
// placement accuracy.
func tuneRadius(positions []geom.Vec3, targetDegree float64, bounds geom.AABB) (float64, error) {
	n := len(positions)
	if n < 2 {
		return 0, errors.New("netgen: radius tuning needs at least two nodes")
	}
	if targetDegree >= float64(n-1) {
		return 0, fmt.Errorf("netgen: target degree %.1f unreachable with %d nodes", targetDegree, n)
	}
	lo := 0.0
	hi := bounds.Size().Norm() // the bounding-box diagonal connects everything
	if hi == 0 {
		return 0, errors.New("netgen: degenerate deployment bounds")
	}
	avgDegree := func(r float64) float64 {
		if r <= 0 {
			return 0
		}
		grid := newSpatialGrid(positions, r)
		return 2 * float64(grid.countEdges(r)) / float64(n)
	}
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		if avgDegree(mid) < targetDegree {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Assemble builds a Network from explicit node positions and a radio range,
// reconstructing connectivity and link distances. Node IDs are rewritten to
// their slice index. Deserializers and tests use this to reconstitute a
// network from stored positions.
func Assemble(nodes []Node, radius float64) (*Network, error) {
	if len(nodes) == 0 {
		return nil, errors.New("netgen: at least one node required")
	}
	if radius <= 0 {
		return nil, errors.New("netgen: radius must be positive")
	}
	owned := append([]Node(nil), nodes...)
	positions := make([]geom.Vec3, len(owned))
	for i := range owned {
		owned[i].ID = i
		positions[i] = owned[i].Pos
	}
	net := &Network{Nodes: owned, Radius: radius}
	net.G, net.Dist = buildConnectivity(positions, radius)
	return net, nil
}
