package netgen

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/ranging"
	"repro/internal/shapes"
)

// Property: connectivity is monotone in the radio range — every edge at a
// smaller radius exists at a larger one.
func TestConnectivityMonotoneInRadius(t *testing.T) {
	base, err := Generate(Config{
		Shape:         shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:  80,
		InteriorNodes: 220,
		Radius:        0.8,
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	bigger, err := Generate(Config{
		Shape:         shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:  80,
		InteriorNodes: 220,
		Radius:        1.1,
		Seed:          13, // same deployment
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.G.Adj {
		present := make(map[int]bool, len(bigger.G.Adj[i]))
		for _, j := range bigger.G.Adj[i] {
			present[j] = true
		}
		for _, j := range base.G.Adj[i] {
			if !present[j] {
				t.Fatalf("edge (%d,%d) lost when radius grew", i, j)
			}
		}
	}
	if bigger.G.AvgDegree() <= base.G.AvgDegree() {
		t.Errorf("degree did not grow: %.2f -> %.2f", base.G.AvgDegree(), bigger.G.AvgDegree())
	}
}

// Property: Assemble on a generated network's nodes reproduces it exactly.
func TestAssembleRoundTrip(t *testing.T) {
	net, err := Generate(Config{
		Shape:         shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:  60,
		InteriorNodes: 140,
		Radius:        1.0,
		Seed:          14,
	})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := Assemble(net.Nodes, net.Radius)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Len() != net.Len() || rebuilt.Radius != net.Radius {
		t.Fatal("basic fields differ")
	}
	for i := range net.G.Adj {
		if len(rebuilt.G.Adj[i]) != len(net.G.Adj[i]) {
			t.Fatalf("adjacency of %d differs", i)
		}
		for k := range net.G.Adj[i] {
			if rebuilt.G.Adj[i][k] != net.G.Adj[i][k] {
				t.Fatalf("neighbor %d of %d differs", k, i)
			}
			if rebuilt.Dist[i][k] != net.Dist[i][k] {
				t.Fatalf("distance %d of %d differs", k, i)
			}
		}
	}
}

func TestAssembleValidation(t *testing.T) {
	if _, err := Assemble(nil, 1); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := Assemble([]Node{{}}, 0); err == nil {
		t.Error("zero radius accepted")
	}
	// IDs are rewritten to the slice index.
	net, err := Assemble([]Node{{ID: 99}, {ID: 7, Pos: geom.V(0.5, 0, 0)}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range net.Nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
}

// Property: radius auto-tuning lands near the target over random targets.
func TestTuneRadiusAccuracyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 5; trial++ {
		target := 8 + rng.Float64()*20
		net, err := Generate(Config{
			Shape:           shapes.NewBall(geom.Zero, 4),
			SurfaceNodes:    150,
			InteriorNodes:   450,
			TargetAvgDegree: target,
			Seed:            int64(100 + trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		got := net.G.AvgDegree()
		// Degree is a step function of the radius (one link at a time),
		// so allow a small absolute band.
		if got < target-1.2 || got > target+1.2 {
			t.Errorf("trial %d: target %.1f, got %.2f", trial, target, got)
		}
	}
}

// Property: measured distances never stray beyond the model's bound, for
// every model.
func TestMeasurementBoundsAcrossModels(t *testing.T) {
	net, err := Generate(Config{
		Shape:         shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:  60,
		InteriorNodes: 140,
		Radius:        1.0,
		Seed:          16,
	})
	if err != nil {
		t.Fatal(err)
	}
	models := []ranging.Model{
		ranging.Exact{},
		ranging.UniformAdditive{Fraction: 0.25},
		ranging.UniformMultiplicative{Fraction: 0.25},
	}
	for mi, model := range models {
		m := net.Measure(model, int64(mi))
		for i := range net.G.Adj {
			for k := range net.G.Adj[i] {
				trueD := net.Dist[i][k]
				got := m.Dist[i][k]
				if got < 0 {
					t.Fatalf("model %d: negative measurement", mi)
				}
				switch model.(type) {
				case ranging.Exact:
					if got != trueD {
						t.Fatalf("exact model changed a distance")
					}
				case ranging.UniformAdditive:
					if diff := got - trueD; diff > 0.25*net.Radius+1e-12 || diff < -0.25*net.Radius-1e-12 {
						t.Fatalf("additive bound violated: %v", diff)
					}
				case ranging.UniformMultiplicative:
					if got > 1.25*trueD+1e-12 || got < 0.75*trueD-1e-12 {
						t.Fatalf("multiplicative bound violated: %v vs %v", got, trueD)
					}
				}
			}
		}
	}
}
