package geom

import (
	"fmt"
	"math"
)

// Sphere is a ball in 3D space described by its center and radius.
type Sphere struct {
	Center Vec3
	Radius float64
}

// Contains reports whether p lies inside or on the sphere.
func (s Sphere) Contains(p Vec3) bool {
	return s.Center.Dist2(p) <= s.Radius*s.Radius
}

// ContainsStrict reports whether p lies strictly inside the sphere shrunk by
// tol: dist(center, p) < radius - tol. Per Definition 6 of the paper, a node
// that merely touches the ball surface does not make the ball non-empty;
// the tolerance absorbs floating-point jitter for the three nodes the ball
// was constructed through.
func (s Sphere) ContainsStrict(p Vec3, tol float64) bool {
	r := s.Radius - tol
	if r <= 0 {
		return false
	}
	return s.Center.Dist2(p) < r*r
}

// SurfaceDistance returns the signed distance from p to the sphere surface
// (negative inside).
func (s Sphere) SurfaceDistance(p Vec3) float64 {
	return s.Center.Dist(p) - s.Radius
}

// String implements fmt.Stringer.
func (s Sphere) String() string {
	return fmt.Sprintf("sphere{c=%v r=%.6g}", s.Center, s.Radius)
}

// Circumcenter3 returns the circumcenter of the (possibly degenerate)
// triangle a, b, c — the unique point in the triangle's plane equidistant
// from all three vertices — together with the circumradius. ok is false when
// the three points are (near-)collinear, in which case no finite
// circumcenter exists.
func Circumcenter3(a, b, c Vec3) (center Vec3, radius float64, ok bool) {
	// Standard formulation: with u = b-a, v = c-a and n = u×v,
	//   center = a + ( |u|²(v×n) + |v|²(n×u) ) / (2|n|²).
	u := b.Sub(a)
	v := c.Sub(a)
	n := u.Cross(v)
	n2 := n.Norm2()
	// Collinearity guard: |n|² scales with the square of the triangle
	// area; compare against the lengths involved to stay scale-aware.
	// The 1e-20 threshold rejects triangles so close to collinear that
	// the circumcenter formula loses several digits (fuzzing found
	// ~1e-5 relative errors just past it); geometrically meaningful
	// triangles sit many orders of magnitude above.
	scale := u.Norm2() * v.Norm2()
	if n2 <= 1e-20*scale || scale == 0 {
		return Zero, 0, false
	}
	off := v.Cross(n).Scale(u.Norm2()).Add(n.Cross(u).Scale(v.Norm2())).Scale(1 / (2 * n2))
	center = a.Add(off)
	radius = center.Dist(a)
	return center, radius, true
}

// SpheresThrough3 returns the spheres of the given fixed radius whose
// surfaces pass through the three points a, b, c. This solves Eq. (1) of the
// paper. There are zero, one, or two solutions:
//
//   - zero when the points are (near-)collinear or their circumradius
//     exceeds radius (the three points are too spread out for a ball of
//     that size);
//   - one when the circumradius equals radius exactly (the ball's center
//     lies in the plane of the triangle) — numerically this appears as two
//     coincident solutions, which we collapse;
//   - two otherwise, mirrored across the triangle's plane.
func SpheresThrough3(a, b, c Vec3, radius float64) []Sphere {
	return SpheresThrough3Into(nil, a, b, c, radius)
}

// SpheresThrough3Into is an allocation-free variant of SpheresThrough3 that
// appends into dst and returns the extended slice.
func SpheresThrough3Into(dst []Sphere, a, b, c Vec3, radius float64) []Sphere {
	u := b.Sub(a)
	v := c.Sub(a)
	c1, c2, count := SpheresThrough3Centers(u, v, u.Norm2(), v.Norm2(), radius)
	switch count {
	case 1:
		return append(dst, Sphere{Center: a.Add(c1), Radius: radius})
	case 2:
		return append(dst,
			Sphere{Center: a.Add(c1), Radius: radius},
			Sphere{Center: a.Add(c2), Radius: radius})
	}
	return dst
}

// SpheresThrough3Centers is the fused kernel behind SpheresThrough3: it
// takes u = b-a and v = c-a with their squared norms uu, vv already
// computed — a pair loop over neighbors of a fixed node hoists those out —
// and returns the sphere centers relative to a, so the caller can stay in
// a translated frame entirely. count is 0 (collinear points, or circumradius
// beyond radius), 1 (the mirrored pair collapsed; c1 only), or 2.
//
// The math is restructured against the textbook circumcenter formula: any
// equidistant center w = αu + βv + t·(u×v) must satisfy 2w·u = |u|² and
// 2w·v = |v|², a 2×2 system in (α, β) whose determinant is |u×v|² — so the
// in-plane offset costs one dot and one cross product instead of three
// crosses, and the plane-normal normalization and the out-of-plane lift
// height fold into a single sqrt.
func SpheresThrough3Centers(u, v Vec3, uu, vv, radius float64) (c1, c2 Vec3, count int) {
	if radius <= 0 {
		return c1, c2, 0
	}
	// |u×v|² equals uu·vv - (u·v)² (Lagrange), but that difference cancels
	// catastrophically near collinearity — exactly where the guard below
	// must be trustworthy — so the cross is computed explicitly.
	n := u.Cross(v)
	n2 := n.Norm2()
	// Same collinearity guard as Circumcenter3 (see the comment there).
	scale := uu * vv
	if n2 <= 1e-20*scale || scale == 0 {
		return c1, c2, 0
	}
	inv := 1 / n2 // the loop's only division; shared by the solve and the lift
	// The Cramer numerators are vv·(uu - u·v) and uu·(vv - u·v); forming
	// them literally cancels catastrophically when u ≈ v (b and c nearly
	// coincident: both differences drop to ulp noise while the true values
	// are ~|u||d|). Rewriting through d = v - u (= c - b) keeps them exact:
	// uu - u·v = -u·d and vv - u·v = v·d.
	d := v.Sub(u)
	alpha := -vv * u.Dot(d) * 0.5 * inv
	beta := uu * v.Dot(d) * 0.5 * inv
	off := u.Scale(alpha).Add(v.Scale(beta)) // circumcenter - a, in-plane
	h2 := radius*radius - off.Norm2()        // cr² = |off|², no sqrt needed
	if h2 < 0 {
		return c1, c2, 0
	}
	// Collapse the two mirrored centers when they are numerically
	// indistinguishable (circumradius ≈ radius). r² - |off|² carries a few
	// ulps of r² of rounding (~2e-16·r²), so anything below 1e-14·r² is
	// noise around an exact tangency, not a real pair of centers.
	if h2 <= 1e-14*radius*radius {
		return off, off, 1
	}
	// The mirrored centers sit at off ± n·(h/|n|); fold the normalization
	// and the height into one sqrt.
	lift := n.Scale(math.Sqrt(h2 * inv))
	return off.Add(lift), off.Sub(lift), 2
}
