package geom

import (
	"fmt"
	"math"
)

// Sphere is a ball in 3D space described by its center and radius.
type Sphere struct {
	Center Vec3
	Radius float64
}

// Contains reports whether p lies inside or on the sphere.
func (s Sphere) Contains(p Vec3) bool {
	return s.Center.Dist2(p) <= s.Radius*s.Radius
}

// ContainsStrict reports whether p lies strictly inside the sphere shrunk by
// tol: dist(center, p) < radius - tol. Per Definition 6 of the paper, a node
// that merely touches the ball surface does not make the ball non-empty;
// the tolerance absorbs floating-point jitter for the three nodes the ball
// was constructed through.
func (s Sphere) ContainsStrict(p Vec3, tol float64) bool {
	r := s.Radius - tol
	if r <= 0 {
		return false
	}
	return s.Center.Dist2(p) < r*r
}

// SurfaceDistance returns the signed distance from p to the sphere surface
// (negative inside).
func (s Sphere) SurfaceDistance(p Vec3) float64 {
	return s.Center.Dist(p) - s.Radius
}

// String implements fmt.Stringer.
func (s Sphere) String() string {
	return fmt.Sprintf("sphere{c=%v r=%.6g}", s.Center, s.Radius)
}

// Circumcenter3 returns the circumcenter of the (possibly degenerate)
// triangle a, b, c — the unique point in the triangle's plane equidistant
// from all three vertices — together with the circumradius. ok is false when
// the three points are (near-)collinear, in which case no finite
// circumcenter exists.
func Circumcenter3(a, b, c Vec3) (center Vec3, radius float64, ok bool) {
	// Standard formulation: with u = b-a, v = c-a and n = u×v,
	//   center = a + ( |u|²(v×n) + |v|²(n×u) ) / (2|n|²).
	u := b.Sub(a)
	v := c.Sub(a)
	n := u.Cross(v)
	n2 := n.Norm2()
	// Collinearity guard: |n|² scales with the square of the triangle
	// area; compare against the lengths involved to stay scale-aware.
	// The 1e-20 threshold rejects triangles so close to collinear that
	// the circumcenter formula loses several digits (fuzzing found
	// ~1e-5 relative errors just past it); geometrically meaningful
	// triangles sit many orders of magnitude above.
	scale := u.Norm2() * v.Norm2()
	if n2 <= 1e-20*scale || scale == 0 {
		return Zero, 0, false
	}
	off := v.Cross(n).Scale(u.Norm2()).Add(n.Cross(u).Scale(v.Norm2())).Scale(1 / (2 * n2))
	center = a.Add(off)
	radius = center.Dist(a)
	return center, radius, true
}

// SpheresThrough3 returns the spheres of the given fixed radius whose
// surfaces pass through the three points a, b, c. This solves Eq. (1) of the
// paper. There are zero, one, or two solutions:
//
//   - zero when the points are (near-)collinear or their circumradius
//     exceeds radius (the three points are too spread out for a ball of
//     that size);
//   - one when the circumradius equals radius exactly (the ball's center
//     lies in the plane of the triangle) — numerically this appears as two
//     coincident solutions, which we collapse;
//   - two otherwise, mirrored across the triangle's plane.
func SpheresThrough3(a, b, c Vec3, radius float64) []Sphere {
	cc, cr, ok := Circumcenter3(a, b, c)
	if !ok || radius <= 0 {
		return nil
	}
	h2 := radius*radius - cr*cr
	if h2 < 0 {
		return nil
	}
	normal, ok := b.Sub(a).Cross(c.Sub(a)).Normalize()
	if !ok {
		return nil
	}
	h := math.Sqrt(h2)
	// Collapse the two mirrored centers when they are numerically
	// indistinguishable (circumradius ≈ radius).
	if h <= 1e-12*radius {
		return []Sphere{{Center: cc, Radius: radius}}
	}
	off := normal.Scale(h)
	return []Sphere{
		{Center: cc.Add(off), Radius: radius},
		{Center: cc.Sub(off), Radius: radius},
	}
}

// SpheresThrough3Into is an allocation-free variant of SpheresThrough3 that
// appends into dst and returns the extended slice. The hot loop of UBF calls
// this once per neighbor pair.
func SpheresThrough3Into(dst []Sphere, a, b, c Vec3, radius float64) []Sphere {
	cc, cr, ok := Circumcenter3(a, b, c)
	if !ok || radius <= 0 {
		return dst
	}
	h2 := radius*radius - cr*cr
	if h2 < 0 {
		return dst
	}
	normal, ok := b.Sub(a).Cross(c.Sub(a)).Normalize()
	if !ok {
		return dst
	}
	h := math.Sqrt(h2)
	if h <= 1e-12*radius {
		return append(dst, Sphere{Center: cc, Radius: radius})
	}
	off := normal.Scale(h)
	return append(dst,
		Sphere{Center: cc.Add(off), Radius: radius},
		Sphere{Center: cc.Sub(off), Radius: radius},
	)
}
