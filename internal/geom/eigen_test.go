package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := [][]float64{
		{3, 0, 0},
		{0, 1, 0},
		{0, 0, 2},
	}
	vals, vecs, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !almostEqual(vals[i], w, 1e-10) {
			t.Errorf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
	// Eigenvector for eigenvalue 3 must be ±e0.
	if !almostEqual(math.Abs(vecs[0][0]), 1, 1e-10) {
		t.Errorf("vec for λ=3 is %v", vecs[0])
	}
}

func TestSymmetricEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := SymmetricEigen([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 3, 1e-12) || !almostEqual(vals[1], 1, 1e-12) {
		t.Errorf("eigenvalues = %v", vals)
	}
	// λ=3 eigenvector is ±(1,1)/√2.
	if !almostEqual(math.Abs(vecs[0][0]), 1/math.Sqrt2, 1e-9) {
		t.Errorf("eigenvector = %v", vecs[0])
	}
}

func TestSymmetricEigenRejectsBadInput(t *testing.T) {
	if _, _, err := SymmetricEigen([][]float64{{1, 2}}); err != ErrNotSymmetric {
		t.Errorf("ragged input: err = %v", err)
	}
	if _, _, err := SymmetricEigen([][]float64{{1, 2}, {3, 4}}); err != ErrNotSymmetric {
		t.Errorf("asymmetric input: err = %v", err)
	}
}

func TestSymmetricEigenEmpty(t *testing.T) {
	vals, vecs, err := SymmetricEigen(nil)
	if err != nil || vals != nil || vecs != nil {
		t.Errorf("empty input: %v %v %v", vals, vecs, err)
	}
}

// randomSymmetric builds a random symmetric matrix with a known spectrum by
// conjugating a diagonal matrix with random rotations.
func randomSymmetric(rng *rand.Rand, n int) ([][]float64, []float64) {
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = rng.NormFloat64() * 10
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = diag[i]
	}
	// Apply random Givens rotations G^T M G to scramble while preserving
	// the spectrum and symmetry.
	for k := 0; k < 3*n; k++ {
		p := rng.Intn(n)
		q := rng.Intn(n)
		if p == q {
			continue
		}
		theta := rng.Float64() * math.Pi
		c, s := math.Cos(theta), math.Sin(theta)
		for i := 0; i < n; i++ {
			mp, mq := m[i][p], m[i][q]
			m[i][p] = c*mp - s*mq
			m[i][q] = s*mp + c*mq
		}
		for i := 0; i < n; i++ {
			mp, mq := m[p][i], m[q][i]
			m[p][i] = c*mp - s*mq
			m[q][i] = s*mp + c*mq
		}
	}
	return m, diag
}

func TestSymmetricEigenRandomSpectrumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(14)
		m, diag := randomSymmetric(rng, n)
		vals, vecs, err := SymmetricEigen(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Spectrum must match the planted diagonal (sorted descending).
		want := append([]float64(nil), diag...)
		for i := 0; i < len(want); i++ {
			for j := i + 1; j < len(want); j++ {
				if want[j] > want[i] {
					want[i], want[j] = want[j], want[i]
				}
			}
		}
		for i := range want {
			if !almostEqual(vals[i], want[i], 1e-6*(1+math.Abs(want[i]))) {
				t.Fatalf("trial %d: eigenvalue %d = %v, want %v", trial, i, vals[i], want[i])
			}
		}
		// Each (λ, v) pair must satisfy A·v = λ·v.
		for k := range vals {
			for i := 0; i < n; i++ {
				var av float64
				for j := 0; j < n; j++ {
					av += m[i][j] * vecs[k][j]
				}
				if !almostEqual(av, vals[k]*vecs[k][i], 1e-6*(1+math.Abs(vals[k]))) {
					t.Fatalf("trial %d: A·v != λ·v at k=%d i=%d (%v vs %v)",
						trial, k, i, av, vals[k]*vecs[k][i])
				}
			}
		}
		// Eigenvectors must be orthonormal.
		for a := range vecs {
			for b := a; b < len(vecs); b++ {
				var dot float64
				for j := 0; j < n; j++ {
					dot += vecs[a][j] * vecs[b][j]
				}
				want := 0.0
				if a == b {
					want = 1.0
				}
				if !almostEqual(dot, want, 1e-8) {
					t.Fatalf("trial %d: vectors %d,%d dot = %v, want %v", trial, a, b, dot, want)
				}
			}
		}
	}
}

// TestSymmetricEigenMatchesJacobiOracle cross-checks the tred2/tql2 engine
// against the retained cyclic-Jacobi implementation — two iterations with
// no shared code path. Eigenvalues must agree to machine precision;
// eigenvectors up to sign (both engines emit arbitrary signs).
func TestSymmetricEigenMatchesJacobiOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(20)
		m, _ := randomSymmetric(rng, n)
		vals, vecs, err := SymmetricEigen(m)
		if err != nil {
			t.Fatalf("trial %d: ql: %v", trial, err)
		}
		jvals, jvecs, err := symmetricEigenJacobi(m)
		if err != nil {
			t.Fatalf("trial %d: jacobi: %v", trial, err)
		}
		var scale float64
		for _, v := range jvals {
			scale = math.Max(scale, math.Abs(v))
		}
		for k := range vals {
			if !almostEqual(vals[k], jvals[k], 1e-9*(1+scale)) {
				t.Fatalf("trial %d: eigenvalue %d: ql %v, jacobi %v", trial, k, vals[k], jvals[k])
			}
		}
		for k := range vecs {
			// Skip (near-)degenerate eigenvalues, where individual
			// eigenvectors are not unique — only the spanned subspace is.
			degenerate := (k > 0 && math.Abs(jvals[k]-jvals[k-1]) < 1e-6*(1+scale)) ||
				(k+1 < n && math.Abs(jvals[k+1]-jvals[k]) < 1e-6*(1+scale))
			if degenerate {
				continue
			}
			var dot float64
			for i := 0; i < n; i++ {
				dot += vecs[k][i] * jvecs[k][i]
			}
			if !almostEqual(math.Abs(dot), 1, 1e-7) {
				t.Fatalf("trial %d: eigenvector %d disagrees: |dot| = %v", trial, k, math.Abs(dot))
			}
		}
	}
}

// TestSymmetricEigenTop4MatchesGeneral: the stack-allocated 4×4 fast path
// must return bit-for-bit the same leading eigenvector as the general
// engine — same recurrences, same storage order, same tie-break.
func TestSymmetricEigenTop4MatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		m, _ := randomSymmetric(rng, 4)
		var a [4][4]float64
		for i := 0; i < 4; i++ {
			copy(a[i][:], m[i])
		}
		vec, ok := symmetricEigenTop4(&a)
		if !ok {
			t.Fatalf("trial %d: QL failed to converge", trial)
		}
		_, vecs, err := SymmetricEigen(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 4; i++ {
			if vec[i] != vecs[0][i] {
				t.Fatalf("trial %d: component %d: fast %v, general %v",
					trial, i, vec[i], vecs[0][i])
			}
		}
	}
}

func TestSymmetricEigenTop4AllocsZero(t *testing.T) {
	a := [4][4]float64{
		{4, 1, 0, 0},
		{1, 3, 1, 0},
		{0, 1, 2, 1},
		{0, 0, 1, 1},
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := symmetricEigenTop4(&a); !ok {
			t.Fatal("did not converge")
		}
	})
	if allocs != 0 {
		t.Errorf("symmetricEigenTop4 allocates %v objects per call, want 0", allocs)
	}
}

func TestSymmetricEigenInputNotModified(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 2}}
	if _, _, err := SymmetricEigen(a); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[0][1] != 1 || a[1][0] != 1 || a[1][1] != 2 {
		t.Errorf("input modified: %v", a)
	}
}
