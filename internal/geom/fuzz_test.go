package geom

import (
	"math"
	"testing"
)

// FuzzSpheresThrough3 asserts the solver's core contract on arbitrary
// inputs: every returned sphere has the requested radius and passes
// through all three points; no solution is ever NaN/Inf. Run with
// `go test -fuzz=FuzzSpheresThrough3 ./internal/geom` to explore beyond
// the seed corpus; the seeds alone run as a regular test.
func FuzzSpheresThrough3(f *testing.F) {
	f.Add(0.1, 0.0, 0.0, -0.05, 0.0866, 0.0, -0.05, -0.0866, 0.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 1.0) // collinear
	f.Add(1e-9, 0.0, 0.0, 0.0, 1e-9, 0.0, 0.0, 0.0, 1e-9, 1.0)
	f.Add(2.0, 0.0, 0.0, -1.0, 1.8, 0.0, -1.0, -1.8, 0.0, 1.0) // too spread
	f.Fuzz(func(t *testing.T, ax, ay, az, bx, by, bz, cx, cy, cz, r float64) {
		for _, v := range []float64{ax, ay, az, bx, by, bz, cx, cy, cz, r} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		a, b, c := V(ax, ay, az), V(bx, by, bz), V(cx, cy, cz)
		for _, s := range SpheresThrough3(a, b, c, r) {
			if !s.Center.IsFinite() {
				t.Fatalf("non-finite center %v", s.Center)
			}
			if s.Radius != r {
				t.Fatalf("radius %v, want %v", s.Radius, r)
			}
			for _, p := range []Vec3{a, b, c} {
				if d := s.Center.Dist(p); math.Abs(d-r) > 1e-5*(1+r) {
					t.Fatalf("point %v at distance %v from center, want %v", p, d, r)
				}
			}
		}
	})
}

// FuzzCircumcenter3 asserts that any returned circumcenter is finite,
// equidistant from the three points, and in their plane.
func FuzzCircumcenter3(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0)
	f.Add(0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0)
	f.Fuzz(func(t *testing.T, ax, ay, az, bx, by, bz, cx, cy, cz float64) {
		for _, v := range []float64{ax, ay, az, bx, by, bz, cx, cy, cz} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		a, b, c := V(ax, ay, az), V(bx, by, bz), V(cx, cy, cz)
		center, radius, ok := Circumcenter3(a, b, c)
		if !ok {
			return
		}
		if !center.IsFinite() || math.IsNaN(radius) {
			t.Fatalf("non-finite circumcenter %v r=%v", center, radius)
		}
		for _, p := range []Vec3{a, b, c} {
			if d := center.Dist(p); math.Abs(d-radius) > 1e-5*(1+radius) {
				t.Fatalf("not equidistant: %v vs %v", d, radius)
			}
		}
	})
}
