package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// boundedVec produces a random vector with components in [-10, 10], keeping
// quick-generated inputs in a numerically sane range.
func boundedVec(rng *rand.Rand) Vec3 {
	return Vec3{
		X: rng.Float64()*20 - 10,
		Y: rng.Float64()*20 - 10,
		Z: rng.Float64()*20 - 10,
	}
}

func TestVecBasicOps(t *testing.T) {
	v := V(1, 2, 3)
	w := V(4, -5, 6)
	if got := v.Add(w); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Dot(w); got != 1*4+2*(-5)+3*6 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVecCross(t *testing.T) {
	x := V(1, 0, 0)
	y := V(0, 1, 0)
	z := V(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y cross z = %v, want x", got)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z cross x = %v, want y", got)
	}
}

func TestCrossPerpendicularProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := boundedVec(rng)
		w := boundedVec(rng)
		c := v.Cross(w)
		if !almostEqual(c.Dot(v), 0, 1e-9) || !almostEqual(c.Dot(w), 0, 1e-9) {
			t.Fatalf("cross product not perpendicular: v=%v w=%v c=%v", v, w, c)
		}
	}
}

func TestNormAndDist(t *testing.T) {
	if got := V(3, 4, 0).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := V(1, 1, 1).Dist(V(2, 2, 2)); !almostEqual(got, math.Sqrt(3), 1e-12) {
		t.Errorf("Dist = %v", got)
	}
	if got := V(1, 2, 3).Norm2(); got != 14 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	u, ok := V(0, 0, 9).Normalize()
	if !ok || u != V(0, 0, 1) {
		t.Errorf("Normalize = %v, %v", u, ok)
	}
	if _, ok := Zero.Normalize(); ok {
		t.Error("Normalize of zero vector should fail")
	}
	if Zero.Unit() != Zero {
		t.Error("Unit of zero vector should be zero")
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := Vec3{math.Mod(x, 100), math.Mod(y, 100), math.Mod(z, 100)}
		u, ok := v.Normalize()
		if !ok {
			return v.Norm() < 1e-150 // only degenerate inputs may fail
		}
		return almostEqual(u.Norm(), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLerpAndMid(t *testing.T) {
	a := V(0, 0, 0)
	b := V(2, 4, 6)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Mid(b); got != V(1, 2, 3) {
		t.Errorf("Mid = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec3{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec3{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestCentroid(t *testing.T) {
	pts := []Vec3{V(0, 0, 0), V(2, 0, 0), V(0, 2, 0), V(0, 0, 2)}
	want := V(0.5, 0.5, 0.5)
	if got := Centroid(pts); !got.ApproxEqual(want, 1e-12) {
		t.Errorf("Centroid = %v, want %v", got, want)
	}
	if got := Centroid(nil); got != Zero {
		t.Errorf("Centroid(nil) = %v, want zero", got)
	}
}

func TestAnyPerpendicular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []Vec3{V(1, 0, 0), V(0, 1, 0), V(0, 0, 1), V(1, 1, 1), V(-3, 2, 0.001)}
	for i := 0; i < 100; i++ {
		cases = append(cases, boundedVec(rng))
	}
	for _, v := range cases {
		if v.Norm() < 1e-9 {
			continue
		}
		p, ok := AnyPerpendicular(v)
		if !ok {
			t.Fatalf("AnyPerpendicular(%v) failed", v)
		}
		if !almostEqual(p.Norm(), 1, 1e-9) {
			t.Fatalf("AnyPerpendicular(%v) = %v not unit", v, p)
		}
		if !almostEqual(p.Dot(v), 0, 1e-9*v.Norm()) {
			t.Fatalf("AnyPerpendicular(%v) = %v not perpendicular", v, p)
		}
	}
	if _, ok := AnyPerpendicular(Zero); ok {
		t.Error("AnyPerpendicular(zero) should fail")
	}
}

func TestVecString(t *testing.T) {
	if got := V(1, 2, 3).String(); got != "(1, 2, 3)" {
		t.Errorf("String = %q", got)
	}
}
