package geom

import (
	"math/rand"
	"testing"
)

func TestNewAABBNormalizes(t *testing.T) {
	b := NewAABB(V(1, -2, 3), V(-1, 2, -3))
	if b.Min != V(-1, -2, -3) || b.Max != V(1, 2, 3) {
		t.Errorf("NewAABB = %v", b)
	}
}

func TestAABBContains(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	for _, p := range []Vec3{V(0, 0, 0), V(1, 1, 1), V(0.5, 0.5, 0.5)} {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	for _, p := range []Vec3{V(-0.01, 0.5, 0.5), V(0.5, 1.01, 0.5), V(0.5, 0.5, 2)} {
		if b.Contains(p) {
			t.Errorf("box should not contain %v", p)
		}
	}
}

func TestEmptyAABB(t *testing.T) {
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Error("EmptyAABB not empty")
	}
	if e.Contains(Zero) {
		t.Error("empty box contains a point")
	}
	if e.Volume() != 0 {
		t.Error("empty box has volume")
	}
	if e.Size() != Zero {
		t.Error("empty box has size")
	}
	b := NewAABB(V(0, 0, 0), V(1, 2, 3))
	if got := e.Union(b); got != b {
		t.Errorf("empty union = %v, want %v", got, b)
	}
	if got := b.Union(e); got != b {
		t.Errorf("union empty = %v, want %v", got, b)
	}
}

func TestAABBSizeCenterVolume(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(2, 3, 4))
	if b.Size() != V(2, 3, 4) {
		t.Errorf("Size = %v", b.Size())
	}
	if b.Center() != V(1, 1.5, 2) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Volume() != 24 {
		t.Errorf("Volume = %v", b.Volume())
	}
}

func TestAABBExpand(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1)).Expand(0.5)
	if b.Min != V(-0.5, -0.5, -0.5) || b.Max != V(1.5, 1.5, 1.5) {
		t.Errorf("Expand = %v", b)
	}
}

func TestAABBUnionAndAddPoint(t *testing.T) {
	a := NewAABB(V(0, 0, 0), V(1, 1, 1))
	b := NewAABB(V(2, -1, 0.5), V(3, 0.5, 2))
	u := a.Union(b)
	if u.Min != V(0, -1, 0) || u.Max != V(3, 1, 2) {
		t.Errorf("Union = %v", u)
	}
	p := a.AddPoint(V(5, 5, 5))
	if p.Max != V(5, 5, 5) || p.Min != V(0, 0, 0) {
		t.Errorf("AddPoint = %v", p)
	}
}

func TestBoundingBoxProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(50)
		pts := make([]Vec3, n)
		for i := range pts {
			pts[i] = boundedVec(rng)
		}
		box := BoundingBox(pts)
		for _, p := range pts {
			if !box.Contains(p) {
				t.Fatalf("bounding box %v misses point %v", box, p)
			}
		}
		// Minimality: each face must touch at least one point.
		touch := func(sel func(Vec3) float64, want float64) bool {
			for _, p := range pts {
				if almostEqual(sel(p), want, 1e-12) {
					return true
				}
			}
			return false
		}
		if !touch(func(p Vec3) float64 { return p.X }, box.Min.X) ||
			!touch(func(p Vec3) float64 { return p.X }, box.Max.X) ||
			!touch(func(p Vec3) float64 { return p.Y }, box.Min.Y) ||
			!touch(func(p Vec3) float64 { return p.Y }, box.Max.Y) ||
			!touch(func(p Vec3) float64 { return p.Z }, box.Min.Z) ||
			!touch(func(p Vec3) float64 { return p.Z }, box.Max.Z) {
			t.Fatal("bounding box not tight")
		}
	}
	if !BoundingBox(nil).IsEmpty() {
		t.Error("BoundingBox(nil) not empty")
	}
}

func TestAABBString(t *testing.T) {
	if NewAABB(Zero, V(1, 1, 1)).String() == "" {
		t.Error("empty String()")
	}
}
