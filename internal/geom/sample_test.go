package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestRandomUnitVectorIsUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var mean Vec3
	const n = 5000
	for i := 0; i < n; i++ {
		v := RandomUnitVector(rng)
		if !almostEqual(v.Norm(), 1, 1e-12) {
			t.Fatalf("non-unit sample %v", v)
		}
		mean = mean.Add(v)
	}
	// Directions should average out near zero for a uniform distribution.
	if mean.Scale(1.0/n).Norm() > 0.05 {
		t.Errorf("directional bias: mean = %v", mean.Scale(1.0/n))
	}
}

func TestRandomInBoxStaysInside(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	box := NewAABB(V(-1, 2, -3), V(4, 5, 6))
	var mean Vec3
	const n = 5000
	for i := 0; i < n; i++ {
		p := RandomInBox(rng, box)
		if !box.Contains(p) {
			t.Fatalf("sample %v outside box %v", p, box)
		}
		mean = mean.Add(p)
	}
	if !mean.Scale(1.0/n).ApproxEqual(box.Center(), 0.15) {
		t.Errorf("mean %v far from center %v", mean.Scale(1.0/n), box.Center())
	}
}

func TestRandomOnSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	s := Sphere{Center: V(1, 2, 3), Radius: 2.5}
	for i := 0; i < 2000; i++ {
		p := RandomOnSphere(rng, s)
		if !almostEqual(p.Dist(s.Center), s.Radius, 1e-9) {
			t.Fatalf("sample %v not on sphere", p)
		}
	}
}

func TestRandomInBall(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := Sphere{Center: V(-1, 0, 2), Radius: 3}
	insideHalf := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := RandomInBall(rng, s)
		if p.Dist(s.Center) > s.Radius+1e-12 {
			t.Fatalf("sample %v outside ball", p)
		}
		if p.Dist(s.Center) < s.Radius/2 {
			insideHalf++
		}
	}
	// Volume-uniform sampling puts 1/8 of points in the half-radius ball.
	frac := float64(insideHalf) / n
	if math.Abs(frac-0.125) > 0.02 {
		t.Errorf("half-radius fraction = %v, want ≈ 0.125 (volume uniform)", frac)
	}
}

func TestRandomInAnnulus(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	center := V(2, 2, 2)
	for i := 0; i < 5000; i++ {
		p := RandomInAnnulus(rng, center, 1, 2)
		d := p.Dist(center)
		if d < 1-1e-12 || d > 2+1e-12 {
			t.Fatalf("annulus sample at distance %v", d)
		}
	}
}

func TestRandomInDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	center := V(0, 0, 5)
	normal := V(0, 0, 1)
	for i := 0; i < 3000; i++ {
		p := RandomInDisk(rng, center, normal, 2)
		if !almostEqual(p.Z, 5, 1e-9) {
			t.Fatalf("disk sample off-plane: %v", p)
		}
		if p.Dist(center) > 2+1e-9 {
			t.Fatalf("disk sample outside radius: %v", p)
		}
	}
	// Degenerate normal falls back to the center.
	if got := RandomInDisk(rng, center, Zero, 2); got != center {
		t.Errorf("degenerate normal: got %v", got)
	}
}
