package geom

import (
	"math/rand"
	"testing"
)

func randPoints(rng *rand.Rand, n int, spread float64) []Vec3 {
	pts := make([]Vec3, n)
	for i := range pts {
		pts[i] = V(rng.Float64()*spread-spread/2,
			rng.Float64()*spread-spread/2,
			rng.Float64()*spread-spread/2)
	}
	return pts
}

// bruteWithin is the reference for AppendWithin.
func bruteWithin(pts []Vec3, center Vec3, r float64, exclude int) []int32 {
	var out []int32
	for i, p := range pts {
		if i != exclude && p.Dist2(center) <= r*r {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestPointGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		spread := 0.1 + rng.Float64()*20
		pts := randPoints(rng, n, spread)
		cell := 0.05 + rng.Float64()*spread
		var g PointGrid
		g.Build(pts, cell)
		if g.Len() != n {
			t.Fatalf("trial %d: indexed %d of %d points", trial, g.Len(), n)
		}
		for q := 0; q < 20; q++ {
			center := V(rng.Float64()*spread-spread/2, rng.Float64()*spread-spread/2,
				rng.Float64()*spread-spread/2)
			r := rng.Float64() * spread / 2
			exclude := rng.Intn(n+1) - 1
			got := g.AppendWithin(nil, center, r, exclude)
			want := bruteWithin(pts, center, r, exclude)
			if len(got) != len(want) {
				t.Fatalf("trial %d query %d: got %d points, want %d", trial, q, len(got), len(want))
			}
			seen := map[int32]bool{}
			for _, i := range got {
				seen[i] = true
			}
			for _, i := range want {
				if !seen[i] {
					t.Fatalf("trial %d query %d: missing index %d", trial, q, i)
				}
			}
		}
	}
}

func TestPointGridCellsPartitionThePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPoints(rng, 300, 5)
	var g PointGrid
	g.Build(pts, 0.7)
	lo, hi, ok := g.CellRange(BoundingBox(pts))
	if !ok {
		t.Fatal("bbox misses its own grid")
	}
	seen := make([]int, len(pts))
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for z := lo[2]; z <= hi[2]; z++ {
				box := AABB{
					Min: g.min.Add(V(float64(x)*g.cell, float64(y)*g.cell, float64(z)*g.cell)),
					Max: g.min.Add(V(float64(x+1)*g.cell, float64(y+1)*g.cell, float64(z+1)*g.cell)),
				}
				for _, n := range g.Cell(x, y, z) {
					seen[n]++
					if !box.Contains(pts[n]) {
						t.Fatalf("point %d bucketed outside its cell", n)
					}
					if d := g.CellMinDist2(x, y, z, pts[n]); d != 0 {
						t.Fatalf("member point %d at min-dist2 %g from its own cell", n, d)
					}
				}
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d appears in %d cells", i, c)
		}
	}
}

func TestPointGridEmptyAndDegenerate(t *testing.T) {
	var g PointGrid
	g.Build(nil, 1)
	if g.Len() != 0 {
		t.Error("empty build has items")
	}
	if got := g.AppendWithin(nil, Zero, 10, -1); len(got) != 0 {
		t.Errorf("query on empty grid returned %v", got)
	}
	// All points coincident: one cell, all indexed.
	pts := []Vec3{V(1, 1, 1), V(1, 1, 1), V(1, 1, 1)}
	g.Build(pts, 0.5)
	if got := g.AppendWithin(nil, V(1, 1, 1), 0, -1); len(got) != 3 {
		t.Errorf("coincident points: got %v", got)
	}
}

// The cell-size guard must keep memory bounded for spread-out inputs.
func TestPointGridCellBlowupGuard(t *testing.T) {
	pts := []Vec3{V(0, 0, 0), V(1e6, 1e6, 1e6)}
	var g PointGrid
	g.Build(pts, 1e-3) // naive grid would want 10^27 cells
	if cells := len(g.starts) - 1; cells > maxCellsFactor*len(pts)+64 {
		t.Fatalf("cell array not bounded: %d cells", cells)
	}
	if got := g.AppendWithin(nil, Zero, 1, -1); len(got) != 1 || got[0] != 0 {
		t.Errorf("query after coarsening: %v", got)
	}
}

// Rebuilding with same-magnitude input must not allocate (the UBF hot
// path rebuilds the grid once per node).
func TestPointGridRebuildDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randPoints(rng, 120, 4)
	var g PointGrid
	g.Build(pts, 0.5) // warm capacity
	allocs := testing.AllocsPerRun(100, func() {
		g.Build(pts, 0.5)
	})
	if allocs != 0 {
		t.Errorf("rebuild allocates %.1f times per run", allocs)
	}
}
