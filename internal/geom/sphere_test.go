package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSphereContains(t *testing.T) {
	s := Sphere{Center: V(1, 1, 1), Radius: 2}
	if !s.Contains(V(1, 1, 1)) {
		t.Error("center not contained")
	}
	if !s.Contains(V(3, 1, 1)) {
		t.Error("surface point not contained")
	}
	if s.Contains(V(3.001, 1, 1)) {
		t.Error("outside point contained")
	}
}

func TestSphereContainsStrict(t *testing.T) {
	s := Sphere{Center: Zero, Radius: 1}
	if !s.ContainsStrict(V(0.5, 0, 0), 1e-9) {
		t.Error("interior point not strictly contained")
	}
	// A point exactly on the surface must not count as inside
	// (Definition 6: touching nodes do not invalidate an empty ball).
	if s.ContainsStrict(V(1, 0, 0), 1e-9) {
		t.Error("surface point strictly contained")
	}
	// A point just inside the tolerance band is treated as touching.
	if s.ContainsStrict(V(1-1e-10, 0, 0), 1e-9) {
		t.Error("tolerance-band point strictly contained")
	}
	// Degenerate tolerance larger than radius: nothing is inside.
	if s.ContainsStrict(Zero, 2) {
		t.Error("tolerance exceeding radius should exclude everything")
	}
}

func TestSurfaceDistance(t *testing.T) {
	s := Sphere{Center: Zero, Radius: 2}
	if got := s.SurfaceDistance(V(3, 0, 0)); !almostEqual(got, 1, 1e-12) {
		t.Errorf("outside distance = %v, want 1", got)
	}
	if got := s.SurfaceDistance(V(1, 0, 0)); !almostEqual(got, -1, 1e-12) {
		t.Errorf("inside distance = %v, want -1", got)
	}
}

func TestCircumcenter3Equilateral(t *testing.T) {
	// Equilateral triangle in the z=5 plane, centered at origin offset.
	a := V(1, 0, 5)
	b := V(-0.5, math.Sqrt(3)/2, 5)
	c := V(-0.5, -math.Sqrt(3)/2, 5)
	center, radius, ok := Circumcenter3(a, b, c)
	if !ok {
		t.Fatal("Circumcenter3 failed on equilateral triangle")
	}
	if !center.ApproxEqual(V(0, 0, 5), 1e-9) {
		t.Errorf("center = %v, want (0,0,5)", center)
	}
	if !almostEqual(radius, 1, 1e-9) {
		t.Errorf("radius = %v, want 1", radius)
	}
}

func TestCircumcenter3Collinear(t *testing.T) {
	if _, _, ok := Circumcenter3(V(0, 0, 0), V(1, 1, 1), V(2, 2, 2)); ok {
		t.Error("collinear points should have no circumcenter")
	}
	if _, _, ok := Circumcenter3(V(0, 0, 0), V(0, 0, 0), V(1, 0, 0)); ok {
		t.Error("coincident points should have no circumcenter")
	}
}

func TestCircumcenter3EquidistantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b, c := boundedVec(rng), boundedVec(rng), boundedVec(rng)
		center, radius, ok := Circumcenter3(a, b, c)
		if !ok {
			continue
		}
		for _, p := range []Vec3{a, b, c} {
			if !almostEqual(center.Dist(p), radius, 1e-6*(1+radius)) {
				t.Fatalf("circumcenter not equidistant: a=%v b=%v c=%v center=%v r=%v dist=%v",
					a, b, c, center, radius, center.Dist(p))
			}
		}
		// The circumcenter must lie in the plane of the triangle.
		n := b.Sub(a).Cross(c.Sub(a)).Unit()
		if d := math.Abs(center.Sub(a).Dot(n)); d > 1e-6 {
			t.Fatalf("circumcenter off-plane by %v", d)
		}
	}
}

func TestSpheresThrough3TwoSolutions(t *testing.T) {
	// Small triangle, large radius: two mirrored solutions.
	a := V(0.1, 0, 0)
	b := V(-0.05, 0.0866, 0)
	c := V(-0.05, -0.0866, 0)
	spheres := SpheresThrough3(a, b, c, 1)
	if len(spheres) != 2 {
		t.Fatalf("got %d spheres, want 2", len(spheres))
	}
	// Mirrored across the z=0 plane.
	if !almostEqual(spheres[0].Center.Z, -spheres[1].Center.Z, 1e-9) {
		t.Errorf("centers not mirrored: %v vs %v", spheres[0].Center, spheres[1].Center)
	}
	for _, s := range spheres {
		for _, p := range []Vec3{a, b, c} {
			if !almostEqual(s.Center.Dist(p), 1, 1e-9) {
				t.Errorf("point %v not on sphere %v", p, s)
			}
		}
	}
}

func TestSpheresThrough3NoSolution(t *testing.T) {
	// Triangle with circumradius > 1 admits no unit sphere.
	a := V(2, 0, 0)
	b := V(-1, 1.8, 0)
	c := V(-1, -1.8, 0)
	if got := SpheresThrough3(a, b, c, 1); len(got) != 0 {
		t.Errorf("got %d spheres, want 0", len(got))
	}
	// Collinear points admit none either.
	if got := SpheresThrough3(V(0, 0, 0), V(0.1, 0, 0), V(0.2, 0, 0), 1); len(got) != 0 {
		t.Errorf("collinear: got %d spheres, want 0", len(got))
	}
	// Non-positive radius is rejected.
	if got := SpheresThrough3(a, b, c, 0); got != nil {
		t.Errorf("zero radius: got %v, want nil", got)
	}
}

func TestSpheresThrough3OneSolution(t *testing.T) {
	// Circumradius exactly equals the ball radius: single solution whose
	// center is the triangle circumcenter.
	a := V(1, 0, 0)
	b := V(-0.5, math.Sqrt(3)/2, 0)
	c := V(-0.5, -math.Sqrt(3)/2, 0)
	spheres := SpheresThrough3(a, b, c, 1)
	if len(spheres) != 1 {
		t.Fatalf("got %d spheres, want 1", len(spheres))
	}
	if !spheres[0].Center.ApproxEqual(Zero, 1e-9) {
		t.Errorf("center = %v, want origin", spheres[0].Center)
	}
}

func TestSpheresThrough3SurfaceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const radius = 1.0
	found := 0
	for i := 0; i < 2000; i++ {
		// Points drawn within a unit ball so solutions are common.
		a := RandomInBall(rng, Sphere{Radius: 0.9})
		b := RandomInBall(rng, Sphere{Radius: 0.9})
		c := RandomInBall(rng, Sphere{Radius: 0.9})
		for _, s := range SpheresThrough3(a, b, c, radius) {
			found++
			for _, p := range []Vec3{a, b, c} {
				if !almostEqual(s.Center.Dist(p), radius, 1e-7) {
					t.Fatalf("point %v not on sphere surface %v (dist %v)", p, s, s.Center.Dist(p))
				}
			}
			if !s.Center.IsFinite() {
				t.Fatalf("non-finite center %v", s.Center)
			}
		}
	}
	if found == 0 {
		t.Fatal("property test exercised no solutions")
	}
}

func TestSpheresThrough3IntoMatchesAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := make([]Sphere, 0, 2)
	for i := 0; i < 500; i++ {
		a := RandomInBall(rng, Sphere{Radius: 0.9})
		b := RandomInBall(rng, Sphere{Radius: 0.9})
		c := RandomInBall(rng, Sphere{Radius: 0.9})
		want := SpheresThrough3(a, b, c, 1)
		got := SpheresThrough3Into(buf[:0], a, b, c, 1)
		if len(got) != len(want) {
			t.Fatalf("count mismatch: %d vs %d", len(got), len(want))
		}
		for k := range got {
			if !got[k].Center.ApproxEqual(want[k].Center, 1e-12) {
				t.Fatalf("solution %d differs: %v vs %v", k, got[k], want[k])
			}
		}
	}
}

func TestSphereString(t *testing.T) {
	s := Sphere{Center: V(1, 2, 3), Radius: 4}
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}
