package geom

import (
	"math"
	"math/rand"
	"testing"
)

// rotateZ returns p rotated by angle about the z axis.
func rotateZ(p Vec3, angle float64) Vec3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Vec3{X: c*p.X - s*p.Y, Y: s*p.X + c*p.Y, Z: p.Z}
}

func randomCloud(rng *rand.Rand, n int) []Vec3 {
	pts := make([]Vec3, n)
	for i := range pts {
		pts[i] = boundedVec(rng)
	}
	return pts
}

func TestAlignRigidIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomCloud(rng, 10)
	tr, rmsd, err := AlignRigid(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if rmsd > 1e-9 {
		t.Errorf("identity alignment rmsd = %v", rmsd)
	}
	for _, p := range a {
		if !tr.Apply(p).ApproxEqual(p, 1e-9) {
			t.Errorf("identity transform moved %v to %v", p, tr.Apply(p))
		}
	}
}

func TestAlignRigidRotationTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		a := randomCloud(rng, 4+rng.Intn(20))
		angle := rng.Float64() * 2 * math.Pi
		shift := boundedVec(rng)
		b := make([]Vec3, len(a))
		for i, p := range a {
			b[i] = rotateZ(p, angle).Add(shift)
		}
		_, rmsd, err := AlignRigid(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if rmsd > 1e-8 {
			t.Fatalf("trial %d: rigid copy rmsd = %v", trial, rmsd)
		}
	}
}

func TestAlignRigidReflection(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		a := randomCloud(rng, 4+rng.Intn(20))
		b := make([]Vec3, len(a))
		for i, p := range a {
			// Mirror through the xy plane, then rotate and shift.
			m := Vec3{p.X, p.Y, -p.Z}
			b[i] = rotateZ(m, 1.1).Add(V(3, -2, 7))
		}
		tr, rmsd, err := AlignRigid(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if rmsd > 1e-8 {
			t.Fatalf("trial %d: reflected copy rmsd = %v", trial, rmsd)
		}
		if !tr.Reflected {
			t.Fatalf("trial %d: reflection not detected", trial)
		}
	}
}

func TestAlignRigidRejectsBadInput(t *testing.T) {
	a := []Vec3{V(0, 0, 0), V(1, 0, 0)}
	if _, _, err := AlignRigid(a, a); err != ErrAlignMismatch {
		t.Errorf("short input: err = %v", err)
	}
	b := []Vec3{V(0, 0, 0), V(1, 0, 0), V(0, 1, 0)}
	if _, _, err := AlignRigid(b, b[:2]); err != ErrAlignMismatch {
		t.Errorf("length mismatch: err = %v", err)
	}
}

func TestAlignRigidNoisyRMSDBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomCloud(rng, 30)
	const noise = 0.01
	b := make([]Vec3, len(a))
	for i, p := range a {
		jitter := RandomUnitVector(rng).Scale(noise * rng.Float64())
		b[i] = rotateZ(p, 0.7).Add(V(1, 2, 3)).Add(jitter)
	}
	_, rmsd, err := AlignRigid(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rmsd > noise {
		t.Errorf("rmsd = %v exceeds injected noise %v", rmsd, noise)
	}
	if rmsd == 0 {
		t.Error("rmsd exactly zero with noise injected")
	}
}

func TestRigidTransformApplyAll(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomCloud(rng, 8)
	b := make([]Vec3, len(a))
	for i, p := range a {
		b[i] = rotateZ(p, 0.5).Add(V(1, 1, 1))
	}
	tr, _, err := AlignRigid(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mapped := tr.ApplyAll(a)
	if len(mapped) != len(a) {
		t.Fatalf("ApplyAll length %d", len(mapped))
	}
	for i := range mapped {
		if !mapped[i].ApproxEqual(b[i], 1e-8) {
			t.Errorf("point %d mapped to %v, want %v", i, mapped[i], b[i])
		}
	}
}

// The rotation returned must be orthonormal (RᵀR = I).
func TestAlignRigidRotationOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomCloud(rng, 12)
	b := randomCloud(rng, 12) // unrelated clouds: still must give a valid rotation
	tr, _, err := AlignRigid(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var dot float64
			for k := 0; k < 3; k++ {
				dot += tr.R[k][i] * tr.R[k][j]
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if !almostEqual(dot, want, 1e-8) {
				t.Fatalf("RᵀR[%d][%d] = %v, want %v", i, j, dot, want)
			}
		}
	}
}

// AlignRigid sits on the two-hop stitching hot path (one call per
// registered frame pair); with the stack-allocated Horn eigensolver it must
// not allocate at all.
func TestAlignRigidAllocsZero(t *testing.T) {
	a := []Vec3{V(0, 0, 0), V(1, 0, 0), V(0, 1, 0), V(0, 0, 1), V(1, 1, 0)}
	b := []Vec3{V(1, 2, 3), V(1, 3, 3), V(0, 2, 3), V(1, 2, 4), V(0, 3, 3)}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := AlignRigid(a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AlignRigid allocates %v objects per call, want 0", allocs)
	}
}
