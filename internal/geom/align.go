package geom

import (
	"errors"
	"math"
)

// ErrAlignMismatch is returned by AlignRigid when the two point sets have
// different or insufficient sizes.
var ErrAlignMismatch = errors.New("geom: point sets must have equal length >= 3")

// RigidTransform maps points by p -> R·(p-centroidA) + centroidB, i.e. a
// rotation (possibly composed with a reflection) about the source centroid
// followed by a translation onto the target centroid.
type RigidTransform struct {
	R         [3][3]float64 // rotation (orthonormal) matrix, row-major
	CentroidA Vec3          // source centroid
	CentroidB Vec3          // target centroid
	Reflected bool          // true when R includes a reflection
}

// Apply maps a single point through the transform.
func (t RigidTransform) Apply(p Vec3) Vec3 {
	d := p.Sub(t.CentroidA)
	return Vec3{
		X: t.R[0][0]*d.X + t.R[0][1]*d.Y + t.R[0][2]*d.Z,
		Y: t.R[1][0]*d.X + t.R[1][1]*d.Y + t.R[1][2]*d.Z,
		Z: t.R[2][0]*d.X + t.R[2][1]*d.Y + t.R[2][2]*d.Z,
	}.Add(t.CentroidB)
}

// ApplyAll maps every point through the transform, returning a new slice.
func (t RigidTransform) ApplyAll(pts []Vec3) []Vec3 {
	out := make([]Vec3, len(pts))
	for i, p := range pts {
		out[i] = t.Apply(p)
	}
	return out
}

// AlignRigid computes the rigid transform (rotation + translation, with a
// reflection permitted) that best maps point set a onto point set b in the
// least-squares sense, using Horn's closed-form quaternion method. It
// returns the transform and the residual RMSD after alignment.
//
// Local MDS coordinates are only determined up to a rigid motion and
// reflection; this is the canonical way to compare them against ground
// truth.
func AlignRigid(a, b []Vec3) (RigidTransform, float64, error) {
	if len(a) != len(b) || len(a) < 3 {
		return RigidTransform{}, 0, ErrAlignMismatch
	}
	ca := Centroid(a)
	cb := Centroid(b)

	// Cross-covariance of the centered sets.
	var s [3][3]float64
	for i := range a {
		da := a[i].Sub(ca)
		db := b[i].Sub(cb)
		av := [3]float64{da.X, da.Y, da.Z}
		bv := [3]float64{db.X, db.Y, db.Z}
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				s[r][c] += av[r] * bv[c]
			}
		}
	}

	best, err := hornRotation(s)
	if err != nil {
		return RigidTransform{}, 0, err
	}

	// Try the reflected solution too and keep whichever fits better: MDS
	// output has an arbitrary handedness, so a pure rotation may be the
	// wrong mirror image.
	var sNeg [3][3]float64
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			sNeg[r][c] = -s[r][c]
		}
	}
	reflected, errR := hornRotation(sNeg)

	t := RigidTransform{R: best, CentroidA: ca, CentroidB: cb}
	rmsd := alignRMSD(t, a, b)
	if errR == nil {
		// Compose the mirror (negate source) with the reflected-fit
		// rotation: R' maps -x onto b, so R'' = R'·(-I).
		var rr [3][3]float64
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				rr[r][c] = -reflected[r][c]
			}
		}
		tr := RigidTransform{R: rr, CentroidA: ca, CentroidB: cb, Reflected: true}
		if r2 := alignRMSD(tr, a, b); r2 < rmsd {
			t, rmsd = tr, r2
		}
	}
	return t, rmsd, nil
}

func alignRMSD(t RigidTransform, a, b []Vec3) float64 {
	var sum float64
	for i := range a {
		sum += t.Apply(a[i]).Dist2(b[i])
	}
	return math.Sqrt(sum / float64(len(a)))
}

// hornRotation returns the rotation maximizing trace(R·S) via the largest
// eigenvector of Horn's symmetric 4x4 quaternion matrix.
func hornRotation(s [3][3]float64) ([3][3]float64, error) {
	n := [4][4]float64{
		{s[0][0] + s[1][1] + s[2][2], s[1][2] - s[2][1], s[2][0] - s[0][2], s[0][1] - s[1][0]},
		{s[1][2] - s[2][1], s[0][0] - s[1][1] - s[2][2], s[0][1] + s[1][0], s[2][0] + s[0][2]},
		{s[2][0] - s[0][2], s[0][1] + s[1][0], -s[0][0] + s[1][1] - s[2][2], s[1][2] + s[2][1]},
		{s[0][1] - s[1][0], s[2][0] + s[0][2], s[1][2] + s[2][1], -s[0][0] - s[1][1] + s[2][2]},
	}
	q, ok := symmetricEigenTop4(&n)
	if !ok {
		// QL failed to converge — route through the general engine, whose
		// Jacobi fallback covers this case.
		rows := [][]float64{n[0][:], n[1][:], n[2][:], n[3][:]}
		_, vecs, err := SymmetricEigen(rows)
		if err != nil {
			return [3][3]float64{}, err
		}
		copy(q[:], vecs[0])
	}
	// q is the quaternion (w, x, y, z) for the largest eigenvalue.
	w, x, y, z := q[0], q[1], q[2], q[3]
	return [3][3]float64{
		{w*w + x*x - y*y - z*z, 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), w*w - x*x + y*y - z*z, 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), w*w - x*x - y*y + z*z},
	}, nil
}
