package geom

import (
	"fmt"
	"math"
)

// AABB is an axis-aligned bounding box, inclusive of both corners.
type AABB struct {
	Min, Max Vec3
}

// NewAABB returns the smallest box containing both corner arguments,
// normalizing the component order.
func NewAABB(a, b Vec3) AABB {
	return AABB{
		Min: Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)},
		Max: Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)},
	}
}

// EmptyAABB returns the identity element for Union: a box containing nothing.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Contains reports whether p lies inside or on the box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Size returns the box's extent along each axis. Empty boxes report zero.
func (b AABB) Size() Vec3 {
	if b.IsEmpty() {
		return Zero
	}
	return b.Max.Sub(b.Min)
}

// Center returns the box's center point.
func (b AABB) Center() Vec3 { return b.Min.Mid(b.Max) }

// Volume returns the box's volume. Empty boxes report zero.
func (b AABB) Volume() float64 {
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Expand grows the box by d on every side. Negative d shrinks it.
func (b AABB) Expand(d float64) AABB {
	e := Vec3{d, d, d}
	return AABB{Min: b.Min.Sub(e), Max: b.Max.Add(e)}
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return AABB{
		Min: Vec3{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y), math.Min(b.Min.Z, o.Min.Z)},
		Max: Vec3{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y), math.Max(b.Max.Z, o.Max.Z)},
	}
}

// AddPoint returns the smallest box containing b and p.
func (b AABB) AddPoint(p Vec3) AABB {
	return b.Union(AABB{Min: p, Max: p})
}

// String implements fmt.Stringer.
func (b AABB) String() string {
	return fmt.Sprintf("aabb{%v .. %v}", b.Min, b.Max)
}

// BoundingBox returns the smallest box containing all points.
func BoundingBox(points []Vec3) AABB {
	box := EmptyAABB()
	for _, p := range points {
		box = box.AddPoint(p)
	}
	return box
}
