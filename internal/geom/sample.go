package geom

import (
	"math"
	"math/rand"
)

// RandomUnitVector returns a direction uniformly distributed on the unit
// sphere.
func RandomUnitVector(rng *rand.Rand) Vec3 {
	// Marsaglia (1972): z uniform in [-1,1], azimuth uniform.
	z := 2*rng.Float64() - 1
	theta := 2 * math.Pi * rng.Float64()
	s := math.Sqrt(1 - z*z)
	return Vec3{X: s * math.Cos(theta), Y: s * math.Sin(theta), Z: z}
}

// RandomInBox returns a point uniformly distributed in the box. The box must
// be non-empty.
func RandomInBox(rng *rand.Rand, box AABB) Vec3 {
	s := box.Size()
	return Vec3{
		X: box.Min.X + rng.Float64()*s.X,
		Y: box.Min.Y + rng.Float64()*s.Y,
		Z: box.Min.Z + rng.Float64()*s.Z,
	}
}

// RandomOnSphere returns a point uniformly distributed on the surface of s.
func RandomOnSphere(rng *rand.Rand, s Sphere) Vec3 {
	return s.Center.Add(RandomUnitVector(rng).Scale(s.Radius))
}

// RandomInBall returns a point uniformly distributed in the ball s.
func RandomInBall(rng *rand.Rand, s Sphere) Vec3 {
	// Radius follows r ∝ u^(1/3) for uniform volume density.
	r := s.Radius * math.Cbrt(rng.Float64())
	return s.Center.Add(RandomUnitVector(rng).Scale(r))
}

// RandomInAnnulus returns a point uniformly distributed in the spherical
// shell between rMin and rMax around center. Requires 0 <= rMin <= rMax.
func RandomInAnnulus(rng *rand.Rand, center Vec3, rMin, rMax float64) Vec3 {
	// Volume-uniform radius in the shell: r = (u·(R³-r³) + r³)^(1/3).
	r3 := rMin * rMin * rMin
	R3 := rMax * rMax * rMax
	r := math.Cbrt(rng.Float64()*(R3-r3) + r3)
	return center.Add(RandomUnitVector(rng).Scale(r))
}

// RandomInDisk returns a point uniformly distributed on the disk of the
// given radius centered at center, lying in the plane with the given unit
// normal.
func RandomInDisk(rng *rand.Rand, center Vec3, normal Vec3, radius float64) Vec3 {
	u, ok := AnyPerpendicular(normal)
	if !ok {
		return center
	}
	v := normal.Unit().Cross(u)
	r := radius * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return center.Add(u.Scale(r * math.Cos(theta))).Add(v.Scale(r * math.Sin(theta)))
}
