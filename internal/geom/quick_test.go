package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// qVec is a bounded Vec3 for testing/quick: components in [-8, 8], which
// keeps products and cross terms well inside float64's exact range.
type qVec struct{ V Vec3 }

// Generate implements quick.Generator.
func (qVec) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(qVec{V: Vec3{
		X: r.Float64()*16 - 8,
		Y: r.Float64()*16 - 8,
		Z: r.Float64()*16 - 8,
	}})
}

var quickCfg = &quick.Config{MaxCount: 500}

func TestQuickDotSymmetry(t *testing.T) {
	f := func(a, b qVec) bool {
		return math.Abs(a.V.Dot(b.V)-b.V.Dot(a.V)) < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossAnticommutes(t *testing.T) {
	f := func(a, b qVec) bool {
		return a.V.Cross(b.V).ApproxEqual(b.V.Cross(a.V).Neg(), 1e-9)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(a, b, c qVec) bool {
		return a.V.Dist(c.V) <= a.V.Dist(b.V)+b.V.Dist(c.V)+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickLagrangeIdentity(t *testing.T) {
	// |a×b|² = |a|²|b|² − (a·b)².
	f := func(a, b qVec) bool {
		lhs := a.V.Cross(b.V).Norm2()
		rhs := a.V.Norm2()*b.V.Norm2() - a.V.Dot(b.V)*a.V.Dot(b.V)
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickLerpEndpoints(t *testing.T) {
	f := func(a, b qVec) bool {
		return a.V.Lerp(b.V, 0).ApproxEqual(a.V, 1e-12) &&
			a.V.Lerp(b.V, 1).ApproxEqual(b.V, 1e-12) &&
			a.V.Mid(b.V).ApproxEqual(b.V.Mid(a.V), 1e-12)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAABBUnionMonotone(t *testing.T) {
	f := func(a, b, p qVec) bool {
		box := NewAABB(a.V, b.V)
		grown := box.AddPoint(p.V)
		// Union result contains both inputs.
		return grown.Contains(p.V) && grown.Contains(box.Min) && grown.Contains(box.Max)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSpheresThroughRigidInvariance checks that the number of
// fixed-radius spheres through three points is invariant under rigid
// motion — the property that makes UBF verdicts frame-independent.
func TestQuickSpheresThroughRigidInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	f := func(a, b, c qVec, angleRaw float64) bool {
		angle := math.Mod(angleRaw, math.Pi)
		shift := RandomUnitVector(rng).Scale(3)
		rot := func(p Vec3) Vec3 {
			cos, sin := math.Cos(angle), math.Sin(angle)
			return Vec3{cos*p.X - sin*p.Y, sin*p.X + cos*p.Y, p.Z}.Add(shift)
		}
		orig := SpheresThrough3(a.V, b.V, c.V, 4)
		moved := SpheresThrough3(rot(a.V), rot(b.V), rot(c.V), 4)
		if len(orig) != len(moved) {
			// Borderline configurations (circumradius ≈ radius) may
			// legitimately flip between 1 and 2 solutions under
			// floating-point motion; reject only a 0↔2 flip.
			return len(orig)+len(moved) == 3
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCircumcenterScaleInvariance: scaling the triangle scales the
// circumradius linearly.
func TestQuickCircumcenterScaleInvariance(t *testing.T) {
	f := func(a, b, c qVec) bool {
		_, r1, ok1 := Circumcenter3(a.V, b.V, c.V)
		_, r2, ok2 := Circumcenter3(a.V.Scale(2), b.V.Scale(2), c.V.Scale(2))
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return math.Abs(r2-2*r1) <= 1e-6*(1+r2)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
