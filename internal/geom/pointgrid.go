package geom

import "math"

// PointGrid is a reusable uniform bucket grid over a point set, the
// spatial index behind the pruned emptiness test of Unit Ball Fitting
// (and usable anywhere a fixed point set is queried by region). Cells are
// cubes of a caller-chosen size; each point lands in exactly one cell.
//
// The grid stores bucket membership in a compact CSR layout (one item
// array plus per-cell offsets) instead of per-cell slices, so a Build
// over inputs of similar size reuses the previous allocation. A zero
// PointGrid is ready to Build.
type PointGrid struct {
	points     []Vec3 // aliased, not copied
	cell       float64
	inv        float64 // 1/cell
	min        Vec3    // grid origin (bbox minimum)
	nx, ny, nz int

	// CSR buckets: cell (x,y,z) holds items[starts[c]:starts[c+1]] with
	// c = (x*ny+y)*nz+z; item values are indices into points, ascending
	// within each cell.
	starts []int32
	items  []int32
}

// maxCellsFactor bounds the cell-array size relative to the point count:
// pathologically spread-out inputs get their cell size grown instead of
// an unbounded cell array.
const maxCellsFactor = 8

// Build indexes points with the given cell size (> 0), replacing any
// previous contents. The points slice is aliased; callers must not move
// the points while querying. Building an empty set yields a grid whose
// queries return nothing.
func (g *PointGrid) Build(points []Vec3, cell float64) {
	g.points = points
	g.cell = cell
	if len(points) == 0 {
		g.nx, g.ny, g.nz = 0, 0, 0
		g.items = g.items[:0]
		return
	}
	box := BoundingBox(points)
	size := box.Size()

	// Grow the cell until the cell array stays proportional to the point
	// count. Deterministic in the inputs, so queries (and the work
	// counters of callers) are reproducible.
	// The count check runs in floating point: for extreme spreads the
	// integer per-axis product overflows before the first doubling.
	limit := float64(maxCellsFactor*len(points) + 64)
	for {
		fx := math.Floor(size.X/cell) + 1
		fy := math.Floor(size.Y/cell) + 1
		fz := math.Floor(size.Z/cell) + 1
		if fx*fy*fz <= limit {
			g.nx, g.ny, g.nz = int(fx), int(fy), int(fz)
			break
		}
		cell *= 2
	}
	g.cell = cell
	g.inv = 1 / cell
	g.min = box.Min

	ncells := g.nx * g.ny * g.nz
	if cap(g.starts) < ncells+1 {
		g.starts = make([]int32, ncells+1)
	} else {
		g.starts = g.starts[:ncells+1]
		for i := range g.starts {
			g.starts[i] = 0
		}
	}
	if cap(g.items) < len(points) {
		g.items = make([]int32, len(points))
	} else {
		g.items = g.items[:len(points)]
	}

	// Counting sort: bucket sizes, prefix offsets, then a stable fill in
	// ascending point order.
	for i := range points {
		g.starts[g.cellOf(points[i])+1]++
	}
	for c := 0; c < ncells; c++ {
		g.starts[c+1] += g.starts[c]
	}
	// starts now holds final offsets; use a second pass with a moving
	// cursor per cell. Reuse starts as the cursor array and rebuild it
	// afterwards by shifting.
	for i := range points {
		c := g.cellOf(points[i])
		g.items[g.starts[c]] = int32(i)
		g.starts[c]++
	}
	// Shift cursors back down to starts: after the fill, starts[c] is the
	// end of cell c, i.e. the start of cell c+1.
	for c := ncells; c > 0; c-- {
		g.starts[c] = g.starts[c-1]
	}
	g.starts[0] = 0
}

// cellOf returns the flat cell index of p (which must be inside the
// indexed bounding box).
func (g *PointGrid) cellOf(p Vec3) int {
	x := int((p.X - g.min.X) * g.inv)
	y := int((p.Y - g.min.Y) * g.inv)
	z := int((p.Z - g.min.Z) * g.inv)
	// Points on the bbox max face land one past the last cell; clamp.
	if x >= g.nx {
		x = g.nx - 1
	}
	if y >= g.ny {
		y = g.ny - 1
	}
	if z >= g.nz {
		z = g.nz - 1
	}
	return (x*g.ny+y)*g.nz + z
}

// Len returns the number of indexed points.
func (g *PointGrid) Len() int { return len(g.items) }

// CellSize returns the effective cell size (it may exceed the size passed
// to Build when the spread of the points forced coarser cells).
func (g *PointGrid) CellSize() float64 { return g.cell }

// CellRange returns the inclusive cell-coordinate bounds of the cells
// intersecting box, clamped to the grid. ok is false when box misses the
// grid entirely (or the grid is empty).
func (g *PointGrid) CellRange(box AABB) (lo, hi [3]int, ok bool) {
	if g.nx == 0 || box.IsEmpty() {
		return lo, hi, false
	}
	dims := [3]int{g.nx, g.ny, g.nz}
	min := [3]float64{box.Min.X - g.min.X, box.Min.Y - g.min.Y, box.Min.Z - g.min.Z}
	max := [3]float64{box.Max.X - g.min.X, box.Max.Y - g.min.Y, box.Max.Z - g.min.Z}
	for a := 0; a < 3; a++ {
		l := int(math.Floor(min[a] * g.inv))
		h := int(math.Floor(max[a] * g.inv))
		if h < 0 || l >= dims[a] {
			return lo, hi, false
		}
		if l < 0 {
			l = 0
		}
		if h >= dims[a] {
			h = dims[a] - 1
		}
		lo[a], hi[a] = l, h
	}
	return lo, hi, true
}

// Cell returns the indices (into the Build points) bucketed in cell
// (x, y, z), ascending. The coordinates must lie inside the ranges
// reported by CellRange.
func (g *PointGrid) Cell(x, y, z int) []int32 {
	c := (x*g.ny+y)*g.nz + z
	return g.items[g.starts[c]:g.starts[c+1]]
}

// WalkCells calls fn for every grid cell in flat index order (x-major,
// then y, then z — so consecutive calls are pencils of spatially adjacent
// cells) with the cell's bucketed point indices, ascending. Empty cells
// are visited too; the order and contents depend only on the Build inputs.
func (g *PointGrid) WalkCells(fn func(members []int32)) {
	ncells := g.nx * g.ny * g.nz
	for c := 0; c < ncells; c++ {
		fn(g.items[g.starts[c]:g.starts[c+1]])
	}
}

// CellMinDist2 returns the squared distance from p to the closest point
// of cell (x, y, z)'s cube, zero when p is inside it. Callers use it to
// cull cells that cannot intersect a query ball.
func (g *PointGrid) CellMinDist2(x, y, z int, p Vec3) float64 {
	var d2 float64
	lo := g.min.X + float64(x)*g.cell
	if d := lo - p.X; d > 0 {
		d2 += d * d
	} else if d := p.X - (lo + g.cell); d > 0 {
		d2 += d * d
	}
	lo = g.min.Y + float64(y)*g.cell
	if d := lo - p.Y; d > 0 {
		d2 += d * d
	} else if d := p.Y - (lo + g.cell); d > 0 {
		d2 += d * d
	}
	lo = g.min.Z + float64(z)*g.cell
	if d := lo - p.Z; d > 0 {
		d2 += d * d
	} else if d := p.Z - (lo + g.cell); d > 0 {
		d2 += d * d
	}
	return d2
}

// AppendWithin appends to dst the indices of all points with
// dist(points[i], center) <= r, excluding exclude (pass a negative value
// to exclude nothing), and returns the extended slice. Results are ordered
// by cell block and ascending index within each cell — a deterministic
// order independent of query history.
func (g *PointGrid) AppendWithin(dst []int32, center Vec3, r float64, exclude int) []int32 {
	if r < 0 {
		return dst
	}
	e := Vec3{r, r, r}
	lo, hi, ok := g.CellRange(AABB{Min: center.Sub(e), Max: center.Add(e)})
	if !ok {
		return dst
	}
	r2 := r * r
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for z := lo[2]; z <= hi[2]; z++ {
				if g.CellMinDist2(x, y, z, center) > r2 {
					continue
				}
				for _, n := range g.Cell(x, y, z) {
					if int(n) != exclude && g.points[n].Dist2(center) <= r2 {
						dst = append(dst, n)
					}
				}
			}
		}
	}
	return dst
}
