// Package geom provides the 3D geometric primitives used throughout the
// boundary-detection library: vectors, spheres, axis-aligned boxes, and the
// fixed-radius trisection-sphere solver at the heart of Unit Ball Fitting
// (Eq. 1 of the paper).
//
// All computations use float64. The package favors clarity and numeric
// defensiveness over exact arithmetic; callers that need tie-breaking around
// sphere surfaces pass an explicit tolerance (see Sphere.ContainsStrict).
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3D Euclidean space.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Zero is the origin.
var Zero = Vec3{}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Normalize returns v scaled to unit length. It returns (Zero, false) when v
// is too short to normalize reliably.
func (v Vec3) Normalize() (Vec3, bool) {
	n := v.Norm()
	if n < 1e-300 {
		return Zero, false
	}
	return v.Scale(1 / n), true
}

// Unit returns v normalized, or Zero when v has (near-)zero length. Use
// Normalize when the caller must distinguish the degenerate case.
func (v Vec3) Unit() Vec3 {
	u, _ := v.Normalize()
	return u
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		X: v.X + (w.X-v.X)*t,
		Y: v.Y + (w.Y-v.Y)*t,
		Z: v.Z + (w.Z-v.Z)*t,
	}
}

// Mid returns the midpoint of v and w.
func (v Vec3) Mid(w Vec3) Vec3 { return v.Lerp(w, 0.5) }

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// ApproxEqual reports whether v and w agree component-wise within tol.
func (v Vec3) ApproxEqual(w Vec3, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol &&
		math.Abs(v.Y-w.Y) <= tol &&
		math.Abs(v.Z-w.Z) <= tol
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.6g, %.6g, %.6g)", v.X, v.Y, v.Z)
}

// Centroid returns the arithmetic mean of the given points. It returns Zero
// for an empty input.
func Centroid(points []Vec3) Vec3 {
	if len(points) == 0 {
		return Zero
	}
	var sum Vec3
	for _, p := range points {
		sum = sum.Add(p)
	}
	return sum.Scale(1 / float64(len(points)))
}

// AnyPerpendicular returns a unit vector perpendicular to v. The result is
// arbitrary but deterministic. It returns (Zero, false) when v is degenerate.
func AnyPerpendicular(v Vec3) (Vec3, bool) {
	u, ok := v.Normalize()
	if !ok {
		return Zero, false
	}
	// Cross with the coordinate axis least aligned with v to avoid a
	// near-parallel cross product.
	axis := V(1, 0, 0)
	ax, ay, az := math.Abs(u.X), math.Abs(u.Y), math.Abs(u.Z)
	switch {
	case ay <= ax && ay <= az:
		axis = V(0, 1, 0)
	case az <= ax && az <= ay:
		axis = V(0, 0, 1)
	}
	return u.Cross(axis).Unit(), true
}
