package geom

import (
	"errors"
	"math"
	"sort"
)

// ErrNotSymmetric is returned by SymmetricEigen when the input matrix is not
// square and symmetric.
var ErrNotSymmetric = errors.New("geom: matrix is not square symmetric")

// ErrNoConvergence is returned by SymmetricEigen when the Jacobi sweeps do
// not reduce the off-diagonal mass to the tolerance within the iteration
// budget. For the small, well-conditioned matrices this library produces
// (local MDS Gram matrices, Horn quaternion matrices) this indicates a bug
// or pathological input rather than an expected condition.
var ErrNoConvergence = errors.New("geom: Jacobi eigendecomposition did not converge")

// SymmetricEigen computes the full eigendecomposition of a dense symmetric
// matrix a (given as rows) using the cyclic Jacobi method. It returns the
// eigenvalues in descending order and the matching eigenvectors as rows of
// vecs (vecs[k] is the unit eigenvector for values[k]).
//
// The input is not modified. Intended for the small matrices that arise in
// local-neighborhood MDS (tens of rows), not for large-scale linear algebra.
func SymmetricEigen(a [][]float64) (values []float64, vecs [][]float64, err error) {
	n := len(a)
	for _, row := range a {
		if len(row) != n {
			return nil, nil, ErrNotSymmetric
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i][j]-a[j][i]) > 1e-9*(1+math.Abs(a[i][j])) {
				return nil, nil, ErrNotSymmetric
			}
		}
	}
	if n == 0 {
		return nil, nil, nil
	}

	// Working copy m and accumulated rotations v (v starts as identity).
	m := make([][]float64, n)
	v := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = append([]float64(nil), a[i]...)
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += m[i][j] * m[i][j]
			}
		}
		return s
	}
	var frob float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			frob += m[i][j] * m[i][j]
		}
	}
	tol := 1e-22 * (frob + 1)

	const maxSweeps = 100
	converged := false
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol {
			converged = true
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p][q]
				if apq == 0 {
					continue
				}
				// Classic Jacobi rotation zeroing m[p][q].
				theta := (m[q][q] - m[p][p]) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	if !converged && offDiag() > tol {
		return nil, nil, ErrNoConvergence
	}

	// Extract eigenpairs and sort by descending eigenvalue.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: m[i][i], col: i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	values = make([]float64, n)
	vecs = make([][]float64, n)
	for k, p := range pairs {
		values[k] = p.val
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = v[i][p.col]
		}
		vecs[k] = vec
	}
	return values, vecs, nil
}
