package geom

import (
	"errors"
	"math"
	"sort"
)

// ErrNotSymmetric is returned by SymmetricEigen when the input matrix is not
// square and symmetric.
var ErrNotSymmetric = errors.New("geom: matrix is not square symmetric")

// ErrNoConvergence is returned by SymmetricEigen when the eigeniteration
// does not converge within its budget. For the small, well-conditioned
// matrices this library produces (local MDS Gram matrices, Horn quaternion
// matrices) this indicates a bug or pathological input rather than an
// expected condition.
var ErrNoConvergence = errors.New("geom: eigendecomposition did not converge")

// SymmetricEigen computes the full eigendecomposition of a dense symmetric
// matrix a (given as rows). It returns the eigenvalues in descending order
// and the matching eigenvectors as rows of vecs (vecs[k] is the unit
// eigenvector for values[k]). Eigenvector signs are arbitrary, as always:
// every caller in this repository is sign-invariant (MDS coordinates are
// defined up to reflection, Horn quaternions up to negation, pseudo-inverse
// outer products square the vectors).
//
// The engine is Householder tridiagonalization followed by implicit-shift
// QL (the EISPACK tred2/tql2 pair): O(n³) with a small constant and exact
// convergence behavior, several-fold fewer floating-point operations than
// the cyclic Jacobi method it replaced. Jacobi is retained as
// symmetricEigenJacobi — the fallback on the (never observed) chance QL
// fails to converge, and the independent oracle the cross-check tests
// compare against.
//
// The input is not modified. Intended for the small matrices that arise in
// local-neighborhood MDS (tens of rows), not for large-scale linear algebra.
func SymmetricEigen(a [][]float64) (values []float64, vecs [][]float64, err error) {
	n := len(a)
	if err := checkSymmetric(a); err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, nil, nil
	}

	// Row-major working matrix; tred2 accumulates the Householder
	// transformations in place and tql2 rotates them into eigenvectors
	// (stored as columns).
	z := make([]float64, n*n)
	for i, row := range a {
		copy(z[i*n:(i+1)*n], row)
	}
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e, n)
	if tql2(z, d, e, n) != nil {
		return symmetricEigenJacobi(a)
	}

	// Sort eigenpairs by descending eigenvalue. Column indices are carried
	// through the sort so each output vector is one gather from z.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return d[idx[i]] > d[idx[j]] })

	values = make([]float64, n)
	backing := make([]float64, n*n)
	vecs = make([][]float64, n)
	for k, col := range idx {
		values[k] = d[col]
		vec := backing[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			vec[i] = z[i*n+col]
		}
		vecs[k] = vec
	}
	return values, vecs, nil
}

// symmetricEigenTop4 returns the unit eigenvector for the largest eigenvalue
// of the symmetric 4×4 matrix a — the only output Horn quaternion alignment
// needs — running the same tred2/tql2 recurrences on fixed-size stack
// storage. AlignRigid calls this twice per registered frame pair, so the
// heap-allocating general path was the single largest allocation source in
// two-hop stitching. Results are bit-identical to SymmetricEigen's leading
// eigenvector: identical recurrences on identical storage order, and the
// max-scan below breaks ties toward the lowest column index exactly as the
// stable descending sort does. ok is false on the (never observed) QL
// convergence failure; callers fall back to the general path.
func symmetricEigenTop4(a *[4][4]float64) (vec [4]float64, ok bool) {
	var zb [16]float64
	var db, eb [4]float64
	z, d, e := zb[:], db[:], eb[:]
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			z[i*4+j] = a[i][j]
		}
	}
	tred2(z, d, e, 4)
	if tql2(z, d, e, 4) != nil {
		return vec, false
	}
	best := 0
	for i := 1; i < 4; i++ {
		if d[i] > d[best] {
			best = i
		}
	}
	for i := 0; i < 4; i++ {
		vec[i] = z[i*4+best]
	}
	return vec, true
}

func checkSymmetric(a [][]float64) error {
	n := len(a)
	for _, row := range a {
		if len(row) != n {
			return ErrNotSymmetric
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i][j]-a[j][i]) > 1e-9*(1+math.Abs(a[i][j])) {
				return ErrNotSymmetric
			}
		}
	}
	return nil
}

// tred2 reduces the symmetric matrix in z (row-major, n×n) to tridiagonal
// form by Householder similarity transformations, accumulating the
// transformations in z. On return d holds the diagonal and e[1..n-1] the
// subdiagonal (e[0] = 0). This is the standard EISPACK tred2 recurrence.
func tred2(z, d, e []float64, n int) {
	for j := 0; j < n; j++ {
		d[j] = z[(n-1)*n+j]
	}
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow, then build the Householder
		// vector for row i.
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = z[(i-1)*n+j]
				z[i*n+j] = 0
				z[j*n+i] = 0
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply the similarity transformation to the remaining
			// leading submatrix.
			for j := 0; j < i; j++ {
				f = d[j]
				z[j*n+i] = f
				g = e[j] + z[j*n+j]*f
				for k := j + 1; k <= i-1; k++ {
					g += z[k*n+j] * d[k]
					e[k] += z[k*n+j] * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					z[k*n+j] -= f*e[k] + g*d[k]
				}
				d[j] = z[(i-1)*n+j]
				z[i*n+j] = 0
			}
		}
		d[i] = h
	}
	// Accumulate the transformations.
	for i := 0; i < n-1; i++ {
		z[(n-1)*n+i] = z[i*n+i]
		z[i*n+i] = 1
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = z[k*n+i+1] / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += z[k*n+i+1] * z[k*n+j]
				}
				for k := 0; k <= i; k++ {
					z[k*n+j] -= g * d[k]
				}
			}
		}
		for k := 0; k <= i; k++ {
			z[k*n+i+1] = 0
		}
	}
	for j := 0; j < n; j++ {
		d[j] = z[(n-1)*n+j]
		z[(n-1)*n+j] = 0
	}
	z[(n-1)*n+n-1] = 1
	e[0] = 0
}

// tql2 diagonalizes the tridiagonal matrix (d, e) with the implicit-shift
// QL algorithm, rotating the accumulated transformations in z into the
// eigenvector columns. The EISPACK tql2 recurrence; returns
// ErrNoConvergence if any eigenvalue needs more than 50 QL sweeps (for
// tridiagonal symmetric matrices 4–5 is typical).
func tql2(z, d, e []float64, n int) error {
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	var f, tst1 float64
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= 50 {
					return ErrNoConvergence
				}
				// Implicit shift from the 2×2 leading block.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// QL sweep with plane rotations.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					for k := 0; k < n; k++ {
						h = z[k*n+i+1]
						z[k*n+i+1] = s*z[k*n+i] + c*h
						z[k*n+i] = c*z[k*n+i] - s*h
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}

// symmetricEigenJacobi is the cyclic Jacobi engine SymmetricEigen used
// before the tred2/tql2 rewrite, kept verbatim as the convergence fallback
// and as an independent oracle for the cross-check tests (Jacobi's
// all-pairs rotations share no code path with the QL iteration).
func symmetricEigenJacobi(a [][]float64) (values []float64, vecs [][]float64, err error) {
	n := len(a)
	if err := checkSymmetric(a); err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, nil, nil
	}

	// Working copy m and accumulated rotations v (v starts as identity).
	m := make([][]float64, n)
	v := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = append([]float64(nil), a[i]...)
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += m[i][j] * m[i][j]
			}
		}
		return s
	}
	var frob float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			frob += m[i][j] * m[i][j]
		}
	}
	tol := 1e-22 * (frob + 1)

	const maxSweeps = 100
	converged := false
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol {
			converged = true
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p][q]
				if apq == 0 {
					continue
				}
				// Classic Jacobi rotation zeroing m[p][q].
				theta := (m[q][q] - m[p][p]) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	if !converged && offDiag() > tol {
		return nil, nil, ErrNoConvergence
	}

	// Extract eigenpairs and sort by descending eigenvalue.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: m[i][i], col: i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	values = make([]float64, n)
	vecs = make([][]float64, n)
	for k, p := range pairs {
		values[k] = p.val
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = v[i][p.col]
		}
		vecs[k] = vec
	}
	return values, vecs, nil
}
