// Package shard is the deployment-volume side of partitioning: where the
// parent package's Patches splits a *reconstructed boundary* for routing
// and aggregation, a Sharding splits the *raw node set* spatially so the
// detection phase itself (UBF + IFF, Sec. II of the paper) can run
// shard-parallel. Because detection is localized — every verdict depends
// on a bounded-hop neighborhood only — a shard plus a bounded ghost halo
// sees everything its owned nodes need, and the sharded engine
// (internal/core) reproduces the unsharded result bit for bit.
//
// The package lives below internal/partition but imports only geom and
// graph: the detection engine must be able to depend on it, and partition
// proper depends on mesh, which sits above detection.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Sharding is a spatial partition of a node set into K shards. Shards are
// built from contiguous runs of spatial-grid cells, so each shard is a
// compact region of the deployment volume and its ghost halo stays small
// relative to its interior.
type Sharding struct {
	// K is the shard count. Shards may be empty when K exceeds the number
	// of populated grid cells.
	K int
	// Owner maps each node to its shard in [0, K).
	Owner []int32
	// Owned lists each shard's nodes in ascending ID order.
	Owned [][]int
}

// ErrBadShards is returned for a non-positive shard count.
var ErrBadShards = fmt.Errorf("partition: shard count must be >= 1")

// targetCellsPerShard sizes the spatial grid for shard assignment: enough
// cells per shard that the balanced prefix cut lands close to n/K nodes,
// few enough that cells stay well populated.
const targetCellsPerShard = 64

// Spatial partitions the given positions into k spatial shards. Cells of a
// uniform grid (geom.PointGrid) are walked in flat index order — contiguous
// pencils along the innermost axis, so consecutive cells are spatial
// neighbors — and cut into k runs of near-equal node count. The result is a
// pure function of the positions and k: independent of traversal order,
// worker count, and map iteration.
func Spatial(pos []geom.Vec3, k int) (*Sharding, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadShards, k)
	}
	s := &Sharding{K: k, Owner: make([]int32, len(pos)), Owned: make([][]int, k)}
	if len(pos) == 0 {
		return s, nil
	}
	if k == 1 {
		owned := make([]int, len(pos))
		for i := range owned {
			owned[i] = i
		}
		s.Owned[0] = owned
		return s, nil
	}

	// Grid resolution: ~targetCellsPerShard populated-volume cells per
	// shard. PointGrid grows the cell when the spread would explode the
	// cell array, so the choice here is a target, not a guarantee.
	box := geom.BoundingBox(pos)
	size := box.Size()
	longest := size.X
	if size.Y > longest {
		longest = size.Y
	}
	if size.Z > longest {
		longest = size.Z
	}
	perAxis := 1
	for perAxis*perAxis*perAxis < k*targetCellsPerShard {
		perAxis++
	}
	cell := longest / float64(perAxis)
	if cell <= 0 { // all positions coincide
		cell = 1
	}
	var grid geom.PointGrid
	grid.Build(pos, cell)

	// Walk the cells in flat index order and cut the node stream into k
	// balanced prefixes: cell c goes to shard s while the running count
	// stays below the s-th quantile of n.
	n := len(pos)
	assigned, shard := 0, 0
	grid.WalkCells(func(members []int32) {
		if len(members) == 0 {
			return
		}
		for shard < k-1 && assigned*k >= n*(shard+1) {
			shard++
		}
		for _, m := range members {
			s.Owner[m] = int32(shard)
		}
		assigned += len(members)
	})
	for i := 0; i < n; i++ {
		o := s.Owner[i]
		s.Owned[o] = append(s.Owned[o], i)
	}
	return s, nil
}

// OwnedCount returns the number of nodes shard owns.
func (s *Sharding) OwnedCount(shard int) int { return len(s.Owned[shard]) }

// ViewNodes returns one shard's view of the graph: its owned nodes plus
// the ghost halo out to the given hop depth over the subgraph induced by
// allowed (nil = every node), ascending by ID, together with each view
// node's hop distance from the owned set (0 = owned, 1..depth = ghost).
// sc supplies reusable BFS scratch; results are appended to fresh slices.
//
// Detection phases read only bounded-hop neighborhoods of owned nodes, so
// a view at the right depth contains everything a shard needs: depth 2
// covers two-hop Unit Ball Fitting knowledge (coordinates of the frames'
// frames), depth T covers the TTL-T flood of Isolated Fragment Filtering.
func (s *Sharding) ViewNodes(c *graph.CSR, shard, depth int, allowed *graph.NodeSet, sc *graph.Scratch) (nodes []int32, dist []int8) {
	c.BFSHops(sc, s.Owned[shard], allowed, depth)
	reached := sc.Reached()
	nodes = make([]int32, len(reached))
	copy(nodes, reached)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	dist = make([]int8, len(nodes))
	for i, v := range nodes {
		dist[i] = int8(sc.Dist(int(v)))
	}
	return nodes, dist
}

// Halo returns just the ghost portion of ViewNodes: the nodes within depth
// hops of the shard's owned set (over the allowed-induced subgraph) that
// the shard does not own, ascending. The property tests quick-check this
// set against the engine's locality requirements.
func (s *Sharding) Halo(c *graph.CSR, shard, depth int, allowed *graph.NodeSet, sc *graph.Scratch) []int {
	nodes, dist := s.ViewNodes(c, shard, depth, allowed, sc)
	ghosts := make([]int, 0, len(nodes))
	for i, v := range nodes {
		if dist[i] > 0 {
			ghosts = append(ghosts, int(v))
		}
	}
	return ghosts
}

// Balance reports the largest shard's owned count relative to the mean —
// the load-imbalance factor of the spatial cut (1.0 = perfect).
func (s *Sharding) Balance() float64 {
	if s.K == 0 || len(s.Owner) == 0 {
		return 0
	}
	max := 0
	for _, owned := range s.Owned {
		if len(owned) > max {
			max = len(owned)
		}
	}
	mean := float64(len(s.Owner)) / float64(s.K)
	return float64(max) / mean
}
