package shard

// Invariant, property, and differential tests for spatial sharding. The
// halo property test is the load-bearing one: the sharded detection
// engine's bit-identity argument (internal/core/shard.go) assumes that a
// view at depth d contains every node within d hops of the owned set and
// that owned nodes therefore see their complete bounded-hop neighborhood.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

// testNetwork builds one seeded deployment for the suite.
func testNetwork(t testing.TB, surf, in int, seed int64) *netgen.Network {
	t.Helper()
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 4),
		SurfaceNodes:    surf,
		InteriorNodes:   in,
		TargetAvgDegree: 14,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// checkShardingInvariants verifies the structural contract of a Sharding
// over n nodes: Owner in range, Owned ascending, and Owner/Owned mutually
// consistent (every node in exactly one shard).
func checkShardingInvariants(t testing.TB, s *Sharding, n, k int) {
	t.Helper()
	if s.K != k || len(s.Owner) != n || len(s.Owned) != k {
		t.Fatalf("shape: K=%d len(Owner)=%d len(Owned)=%d, want %d/%d/%d", s.K, len(s.Owner), len(s.Owned), k, n, k)
	}
	total := 0
	for sh, owned := range s.Owned {
		if s.OwnedCount(sh) != len(owned) {
			t.Fatalf("OwnedCount(%d) = %d, want %d", sh, s.OwnedCount(sh), len(owned))
		}
		for i, v := range owned {
			if v < 0 || v >= n {
				t.Fatalf("shard %d owns out-of-range node %d", sh, v)
			}
			if i > 0 && owned[i-1] >= v {
				t.Fatalf("shard %d owned list not ascending at %d", sh, i)
			}
			if int(s.Owner[v]) != sh {
				t.Fatalf("node %d in Owned[%d] but Owner says %d", v, sh, s.Owner[v])
			}
		}
		total += len(owned)
	}
	if total != n {
		t.Fatalf("shards own %d nodes, want %d", total, n)
	}
	for i, o := range s.Owner {
		if o < 0 || int(o) >= k {
			t.Fatalf("Owner[%d] = %d out of [0,%d)", i, o, k)
		}
	}
}

func TestSpatialInvariants(t *testing.T) {
	net := testNetwork(t, 250, 550, 17)
	pos := net.Positions()
	for _, k := range []int{1, 2, 3, 4, 7, 16, 50} {
		s, err := Spatial(pos, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		checkShardingInvariants(t, s, len(pos), k)
		// Determinism: a second build is identical.
		again, err := Spatial(pos, k)
		if err != nil {
			t.Fatalf("k=%d rebuild: %v", k, err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("k=%d: Spatial is not deterministic", k)
		}
	}
}

func TestSpatialEdgeCases(t *testing.T) {
	if _, err := Spatial(nil, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Spatial(nil, -3); err == nil {
		t.Fatal("k=-3 accepted")
	}
	// Empty position set: valid, all shards empty.
	s, err := Spatial(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkShardingInvariants(t, s, 0, 4)
	// More shards than nodes: every node still owned exactly once.
	few := []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 2, 0)}
	s, err = Spatial(few, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkShardingInvariants(t, s, len(few), 9)
	// All positions coincident: degenerate bounding box must not divide by
	// zero; one cell holds everything.
	same := []geom.Vec3{geom.V(1, 1, 1), geom.V(1, 1, 1), geom.V(1, 1, 1), geom.V(1, 1, 1)}
	s, err = Spatial(same, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkShardingInvariants(t, s, len(same), 3)
}

// TestSpatialBalance checks the load-imbalance factor of the cut on a
// uniform deployment: the balanced prefix rule should keep the largest
// shard within a small factor of the mean.
func TestSpatialBalance(t *testing.T) {
	net := testNetwork(t, 300, 900, 5)
	pos := net.Positions()
	for _, k := range []int{2, 4, 8} {
		s, err := Spatial(pos, k)
		if err != nil {
			t.Fatal(err)
		}
		if b := s.Balance(); b > 1.6 {
			t.Errorf("k=%d: imbalance factor %.2f > 1.6", k, b)
		}
	}
}

// bruteHops computes hop distances from a source set by an independent
// queue-based BFS over the allowed-induced subgraph — the reference for
// ViewNodes.
func bruteHops(c *graph.CSR, sources []int, allowed *graph.NodeSet, depth int) map[int32]int8 {
	dist := make(map[int32]int8)
	var q []int32
	for _, s := range sources {
		if allowed != nil && !allowed.Has(s) {
			continue
		}
		if _, ok := dist[int32(s)]; !ok {
			dist[int32(s)] = 0
			q = append(q, int32(s))
		}
	}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		if int(dist[u]) >= depth {
			continue
		}
		for _, v := range c.Neighbors(int(u)) {
			if allowed != nil && !allowed.Has(int(v)) {
				continue
			}
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
		}
	}
	return dist
}

func TestViewNodesMatchesBruteForce(t *testing.T) {
	net := testNetwork(t, 200, 400, 23)
	c := graph.NewCSR(net.G)
	pos := net.Positions()
	s, err := Spatial(pos, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sc graph.Scratch
	for _, depth := range []int{1, 2, 3} {
		for sh := 0; sh < s.K; sh++ {
			nodes, dist := s.ViewNodes(c, sh, depth, nil, &sc)
			want := bruteHops(c, s.Owned[sh], nil, depth)
			if len(nodes) != len(want) {
				t.Fatalf("shard %d depth %d: view has %d nodes, brute force %d", sh, depth, len(nodes), len(want))
			}
			for i, v := range nodes {
				if i > 0 && nodes[i-1] >= v {
					t.Fatalf("shard %d depth %d: view not ascending at %d", sh, depth, i)
				}
				wd, ok := want[v]
				if !ok {
					t.Fatalf("shard %d depth %d: view node %d not reached by brute force", sh, depth, v)
				}
				if dist[i] != wd {
					t.Fatalf("shard %d depth %d: node %d dist %d, want %d", sh, depth, v, dist[i], wd)
				}
			}
			// Halo = view minus owned.
			ghosts := s.Halo(c, sh, depth, nil, &sc)
			wantGhosts := 0
			for v, d := range want {
				if d > 0 {
					wantGhosts++
					_ = v
				}
			}
			if len(ghosts) != wantGhosts {
				t.Fatalf("shard %d depth %d: %d ghosts, want %d", sh, depth, len(ghosts), wantGhosts)
			}
			for _, g := range ghosts {
				if int(s.Owner[g]) == sh {
					t.Fatalf("shard %d: halo contains owned node %d", sh, g)
				}
			}
		}
	}
}

// TestHaloCoversNeighborhoods quick-checks the locality property the
// sharded engine depends on: in a depth-d view, every owned node's full
// d-hop neighborhood is present, so any computation reading at most d hops
// around an owned node sees exactly what the global run sees.
func TestHaloCoversNeighborhoods(t *testing.T) {
	for _, seed := range []int64{1, 9, 42} {
		net := testNetwork(t, 150, 350, seed)
		c := graph.NewCSR(net.G)
		s, err := Spatial(net.Positions(), 4)
		if err != nil {
			t.Fatal(err)
		}
		var sc graph.Scratch
		for _, depth := range []int{1, 2} {
			for sh := 0; sh < s.K; sh++ {
				nodes, _ := s.ViewNodes(c, sh, depth, nil, &sc)
				inView := make(map[int32]bool, len(nodes))
				for _, v := range nodes {
					inView[v] = true
				}
				for _, u := range s.Owned[sh] {
					for _, v := range c.Neighbors(u) {
						if !inView[v] {
							t.Fatalf("seed %d shard %d depth %d: neighbor %d of owned %d missing from view", seed, sh, depth, v, u)
						}
						if depth < 2 {
							continue
						}
						for _, w := range c.Neighbors(int(v)) {
							if !inView[w] {
								t.Fatalf("seed %d shard %d depth 2: two-hop %d of owned %d missing from view", seed, sh, w, u)
							}
						}
					}
				}
			}
		}
	}
}

// FuzzShardPartition throws arbitrary position clouds and shard counts at
// Spatial and checks the structural invariants plus determinism.
func FuzzShardPartition(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 200, 100, 50}, 3)
	f.Add([]byte{}, 1)
	f.Add([]byte{7, 7, 7, 7, 7, 7}, 5)
	rng := rand.New(rand.NewSource(11))
	blob := make([]byte, 300)
	rng.Read(blob)
	f.Add(blob, 8)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if k < 1 || k > 64 {
			t.Skip()
		}
		n := len(data) / 3
		if n > 2000 {
			t.Skip()
		}
		pos := make([]geom.Vec3, n)
		for i := range pos {
			pos[i] = geom.V(float64(data[3*i]), float64(data[3*i+1]), float64(data[3*i+2]))
		}
		s, err := Spatial(pos, k)
		if err != nil {
			t.Fatalf("Spatial(%d nodes, k=%d): %v", n, k, err)
		}
		checkShardingInvariants(t, s, n, k)
		again, err := Spatial(pos, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatal("Spatial is not deterministic")
		}
	})
}
