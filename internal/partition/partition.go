// Package partition demonstrates the "partition" application the paper
// motivates (Sec. I): dividing a reconstructed boundary surface into
// connected, balanced patches using connectivity only. The landmark
// Voronoi cells of the surface construction already tile the boundary;
// this package exposes that tiling with quality metrics and coarsens it
// into k-way partitions by farthest-first seeding and multi-source growth.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/mesh"
)

// Patches is a partition of one boundary group's nodes.
type Patches struct {
	// Parts maps each patch label to its member node IDs (ascending).
	Parts map[int][]int
	// Label holds each node's patch label; mesh.NoLandmark outside the
	// partitioned group.
	Label []int
}

// Sizes returns the patch sizes keyed by label.
func (p *Patches) Sizes() map[int]int {
	out := make(map[int]int, len(p.Parts))
	for l, members := range p.Parts {
		out[l] = len(members)
	}
	return out
}

// Balance is the ratio of the largest patch to the mean patch size
// (1.0 = perfectly balanced).
func (p *Patches) Balance() float64 {
	if len(p.Parts) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, members := range p.Parts {
		total += len(members)
		if len(members) > max {
			max = len(members)
		}
	}
	mean := float64(total) / float64(len(p.Parts))
	return float64(max) / mean
}

// EdgeCut counts the boundary-subgraph edges whose endpoints lie in
// different patches — the partition's communication cost.
func (p *Patches) EdgeCut(g *graph.Graph) int {
	cut := 0
	for u := range g.Adj {
		lu := p.Label[u]
		if lu == mesh.NoLandmark {
			continue
		}
		for _, v := range g.Adj[u] {
			if u < v && p.Label[v] != mesh.NoLandmark && p.Label[v] != lu {
				cut++
			}
		}
	}
	return cut
}

// Cells returns the surface's native patch structure: one patch per
// landmark, exactly the approximate Voronoi cells of Sec. III step (I).
func Cells(s *mesh.Surface) *Patches {
	p := &Patches{
		Parts: make(map[int][]int),
		Label: append([]int(nil), s.Landmarks.Assoc...),
	}
	for _, v := range s.Group {
		lm := s.Landmarks.Assoc[v]
		if lm == mesh.NoLandmark {
			continue
		}
		p.Parts[lm] = append(p.Parts[lm], v)
	}
	for _, members := range p.Parts {
		sort.Ints(members)
	}
	return p
}

// ErrBadK is returned when k is out of range for the surface.
var ErrBadK = errors.New("partition: k must be between 1 and the landmark count")

// KWay coarsens the surface into k connected patches: seeds are picked by
// farthest-first traversal over the boundary subgraph (maximizing mutual
// hop distance), then all seeds grow simultaneously by multi-source BFS,
// each node joining its closest seed (smallest seed ID on ties). The
// result is deterministic.
func KWay(g *graph.Graph, s *mesh.Surface, k int) (*Patches, error) {
	if k < 1 || k > len(s.Landmarks.IDs) {
		return nil, fmt.Errorf("%w: k=%d with %d landmarks", ErrBadK, k, len(s.Landmarks.IDs))
	}
	inGroup := make([]bool, g.Len())
	for _, v := range s.Group {
		inGroup[v] = true
	}
	member := graph.InSet(inGroup)

	// Farthest-first seeding over the landmark set, starting from the
	// smallest landmark ID.
	seeds := []int{s.Landmarks.IDs[0]}
	minDist := g.BFSHops(seeds, member, -1)
	for len(seeds) < k {
		best, bestDist := -1, -1
		for _, lm := range s.Landmarks.IDs {
			if d := minDist[lm]; d > bestDist {
				best, bestDist = lm, d
			}
		}
		if best == -1 || bestDist <= 0 {
			break // no further separated seed exists
		}
		seeds = append(seeds, best)
		next := g.BFSHops([]int{best}, member, -1)
		for i, d := range next {
			if d != graph.Unreachable && (minDist[i] == graph.Unreachable || d < minDist[i]) {
				minDist[i] = d
			}
		}
	}

	// Multi-source growth: closest seed wins, ties to the smaller seed ID.
	label := make([]int, g.Len())
	hops := make([]int, g.Len())
	for i := range label {
		label[i] = mesh.NoLandmark
		hops[i] = graph.Unreachable
	}
	sortedSeeds := append([]int(nil), seeds...)
	sort.Ints(sortedSeeds)
	for _, seed := range sortedSeeds {
		dist := g.BFSHops([]int{seed}, member, -1)
		for v, d := range dist {
			if d == graph.Unreachable {
				continue
			}
			if hops[v] == graph.Unreachable || d < hops[v] {
				hops[v] = d
				label[v] = seed
			}
		}
	}

	p := &Patches{Parts: make(map[int][]int, len(sortedSeeds)), Label: label}
	for _, v := range s.Group {
		if l := label[v]; l != mesh.NoLandmark {
			p.Parts[l] = append(p.Parts[l], v)
		}
	}
	for _, members := range p.Parts {
		sort.Ints(members)
	}
	return p, nil
}

// Connected verifies that every patch induces a connected subgraph of the
// boundary — the property that makes patches usable as routing or
// aggregation zones.
func (p *Patches) Connected(g *graph.Graph) bool {
	for l, members := range p.Parts {
		if len(members) == 0 {
			continue
		}
		inPatch := func(i int) bool { return i >= 0 && i < len(p.Label) && p.Label[i] == l }
		dist := g.BFSHops(members[:1], inPatch, -1)
		for _, v := range members {
			if dist[v] == graph.Unreachable {
				return false
			}
		}
	}
	return true
}
