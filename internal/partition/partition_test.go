package partition

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

var (
	fixOnce sync.Once
	fixNet  *netgen.Network
	fixSurf *mesh.Surface
	fixErr  error
)

func sphereSurface(t *testing.T) (*netgen.Network, *mesh.Surface) {
	t.Helper()
	fixOnce.Do(func() {
		fixNet, fixErr = netgen.Generate(netgen.Config{
			Shape:           shapes.NewBall(geom.Zero, 4),
			SurfaceNodes:    500,
			InteriorNodes:   1500,
			TargetAvgDegree: 18,
			Seed:            60,
		})
		if fixErr != nil {
			return
		}
		var det *core.Result
		det, fixErr = core.Detect(fixNet, nil, core.Config{})
		if fixErr != nil {
			return
		}
		fixSurf, fixErr = mesh.Build(fixNet.G, det.Groups[0], mesh.Config{K: 3})
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixNet, fixSurf
}

func TestCells(t *testing.T) {
	net, s := sphereSurface(t)
	p := Cells(s)
	if len(p.Parts) != len(s.Landmarks.IDs) {
		t.Fatalf("%d patches, %d landmarks", len(p.Parts), len(s.Landmarks.IDs))
	}
	// Every group node is in exactly one patch and labels agree.
	total := 0
	for lm, members := range p.Parts {
		total += len(members)
		for _, v := range members {
			if p.Label[v] != lm {
				t.Fatalf("node %d labeled %d, listed under %d", v, p.Label[v], lm)
			}
		}
	}
	if total != len(s.Group) {
		t.Errorf("patches cover %d nodes, group has %d", total, len(s.Group))
	}
	if !p.Connected(net.G) {
		t.Error("a Voronoi cell is disconnected")
	}
	if b := p.Balance(); b < 1 {
		t.Errorf("balance = %v < 1", b)
	}
	if cut := p.EdgeCut(net.G); cut <= 0 {
		t.Errorf("edge cut = %d", cut)
	}
}

func TestKWay(t *testing.T) {
	net, s := sphereSurface(t)
	for _, k := range []int{1, 2, 4, 8} {
		p, err := KWay(net.G, s, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Parts) != k {
			t.Fatalf("k=%d produced %d parts", k, len(p.Parts))
		}
		total := 0
		for _, members := range p.Parts {
			total += len(members)
		}
		if total != len(s.Group) {
			t.Errorf("k=%d covers %d of %d nodes", k, total, len(s.Group))
		}
		if !p.Connected(net.G) {
			t.Errorf("k=%d produced a disconnected part", k)
		}
		// Farthest-first seeding keeps parts reasonably balanced on a
		// sphere.
		if k > 1 {
			if b := p.Balance(); b > 2.5 {
				t.Errorf("k=%d balance = %.2f", k, b)
			}
		}
	}
}

func TestKWayEdgeCutShrinksWithFewerParts(t *testing.T) {
	net, s := sphereSurface(t)
	p2, err := KWay(net.G, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := KWay(net.G, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p2.EdgeCut(net.G) >= p8.EdgeCut(net.G) {
		t.Errorf("edge cut did not grow with k: k=2 %d vs k=8 %d",
			p2.EdgeCut(net.G), p8.EdgeCut(net.G))
	}
	// k=1: a single part with zero cut.
	p1, err := KWay(net.G, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.EdgeCut(net.G) != 0 {
		t.Errorf("k=1 cut = %d", p1.EdgeCut(net.G))
	}
}

func TestKWayValidation(t *testing.T) {
	net, s := sphereSurface(t)
	if _, err := KWay(net.G, s, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KWay(net.G, s, len(s.Landmarks.IDs)+1); err == nil {
		t.Error("k beyond landmark count accepted")
	}
}

func TestBalanceEmpty(t *testing.T) {
	p := &Patches{Parts: map[int][]int{}}
	if p.Balance() != 0 {
		t.Errorf("empty balance = %v", p.Balance())
	}
}

func TestConnectedDetectsSplit(t *testing.T) {
	// Hand-made: patch 0 = {0, 2} on a path 0-1-2 with node 1 in another
	// patch — disconnected.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	p := &Patches{
		Parts: map[int][]int{0: {0, 2}, 1: {1}},
		Label: []int{0, 1, 0},
	}
	if p.Connected(g) {
		t.Error("disconnected patch reported connected")
	}
}
