package mds

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// fullDist returns a DistFunc exposing all pairwise distances of pts.
func fullDist(pts []geom.Vec3) DistFunc {
	return func(a, b int) (float64, bool) { return pts[a].Dist(pts[b]), true }
}

// rangeDist exposes only pairs within radius — the unit-ball measurement
// model.
func rangeDist(pts []geom.Vec3, radius float64) DistFunc {
	return func(a, b int) (float64, bool) {
		d := pts[a].Dist(pts[b])
		return d, d <= radius
	}
}

// checkRecovers asserts that Localize reproduces pts up to rigid motion
// within rmsdTol.
func checkRecovers(t *testing.T, pts []geom.Vec3, dist DistFunc, opts Options, rmsdTol float64) {
	t.Helper()
	coords, err := Localize(len(pts), dist, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(coords) != len(pts) {
		t.Fatalf("got %d coords, want %d", len(coords), len(pts))
	}
	_, rmsd, err := geom.AlignRigid(coords, pts)
	if err != nil {
		t.Fatal(err)
	}
	if rmsd > rmsdTol {
		t.Fatalf("alignment rmsd = %v, want <= %v", rmsd, rmsdTol)
	}
}

func TestLocalizeTrivialSizes(t *testing.T) {
	coords, err := Localize(0, nil, Options{})
	if err != nil || coords != nil {
		t.Errorf("n=0: %v, %v", coords, err)
	}
	coords, err = Localize(1, nil, Options{})
	if err != nil || len(coords) != 1 || coords[0] != geom.Zero {
		t.Errorf("n=1: %v, %v", coords, err)
	}
}

func TestLocalizeTwoPoints(t *testing.T) {
	pts := []geom.Vec3{geom.Zero, geom.V(0.7, 0, 0)}
	coords, err := Localize(2, fullDist(pts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := coords[0].Dist(coords[1]); math.Abs(d-0.7) > 1e-9 {
		t.Errorf("recovered distance %v, want 0.7", d)
	}
}

func TestLocalizeExactCompleteMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(20)
		pts := make([]geom.Vec3, n)
		for i := range pts {
			pts[i] = geom.RandomInBall(rng, geom.Sphere{Radius: 1})
		}
		checkRecovers(t, pts, fullDist(pts), Options{}, 1e-6)
	}
}

func TestLocalizePartialMatrixNeighborhood(t *testing.T) {
	// A one-hop neighborhood: center at origin, members within radius 1
	// of the center; pairs farther than 1 apart are unmeasured and must
	// be completed via shortest paths, then polished by SMACOF.
	rng := rand.New(rand.NewSource(32))
	var sum, worst float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		pts := []geom.Vec3{geom.Zero}
		for len(pts) < 15 {
			pts = append(pts, geom.RandomInBall(rng, geom.Sphere{Radius: 1}))
		}
		coords, err := Localize(len(pts), rangeDist(pts, 1), Options{SmacofIterations: 100})
		if err != nil {
			t.Fatal(err)
		}
		_, rmsd, err := geom.AlignRigid(coords, pts)
		if err != nil {
			t.Fatal(err)
		}
		sum += rmsd
		worst = math.Max(worst, rmsd)
	}
	// Shortest-path completion distorts long pairs and SMACOF can settle
	// in local minima on sparse neighborhoods, so recovery is judged in
	// aggregate: small on average, bounded in the worst case (relative to
	// the unit measurement radius).
	if mean := sum / trials; mean > 0.12 {
		t.Errorf("mean rmsd = %v, want <= 0.12", mean)
	}
	if worst > 0.5 {
		t.Errorf("worst rmsd = %v, want <= 0.5", worst)
	}
}

func TestSmacofReducesStress(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := []geom.Vec3{geom.Zero}
	for len(pts) < 18 {
		pts = append(pts, geom.RandomInBall(rng, geom.Sphere{Radius: 1}))
	}
	dist := rangeDist(pts, 1)
	raw, err := Localize(len(pts), dist, Options{SmacofIterations: 0})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Localize(len(pts), dist, Options{SmacofIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	s0 := Stress(raw, dist)
	s1 := Stress(refined, dist)
	if s1 > s0+1e-12 {
		t.Errorf("SMACOF increased stress: %v -> %v", s0, s1)
	}
}

func TestLocalizeDisconnected(t *testing.T) {
	// Two clusters with no measured pair across.
	dist := func(a, b int) (float64, bool) {
		if (a < 2) == (b < 2) {
			return 0.5, true
		}
		return 0, false
	}
	if _, err := Localize(4, dist, Options{}); err != ErrDisconnected {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestLocalizeBadOptions(t *testing.T) {
	pts := []geom.Vec3{geom.Zero, geom.V(1, 0, 0), geom.V(0, 1, 0)}
	if _, err := Localize(3, fullDist(pts), Options{Dims: 5}); err != ErrBadOptions {
		t.Errorf("dims=5: err = %v", err)
	}
	if _, err := Localize(3, fullDist(pts), Options{SmacofIterations: -1}); err != ErrBadOptions {
		t.Errorf("negative iterations: err = %v", err)
	}
}

func TestLocalizeLowerDims(t *testing.T) {
	// Points on a plane embed exactly in 2 dimensions.
	pts := []geom.Vec3{
		geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0), geom.V(1, 1, 0), geom.V(0.3, 0.7, 0),
	}
	coords, err := Localize(len(pts), fullDist(pts), Options{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range coords {
		if c.Z != 0 {
			t.Errorf("coord %d has nonzero z: %v", i, c)
		}
	}
	_, rmsd, err := geom.AlignRigid(coords, pts)
	if err != nil {
		t.Fatal(err)
	}
	if rmsd > 1e-6 {
		t.Errorf("planar recovery rmsd = %v", rmsd)
	}
}

func TestLocalizeNoisyDistances(t *testing.T) {
	// With moderate noise, recovery should be approximate but sane.
	rng := rand.New(rand.NewSource(34))
	pts := []geom.Vec3{geom.Zero}
	for len(pts) < 16 {
		pts = append(pts, geom.RandomInBall(rng, geom.Sphere{Radius: 1}))
	}
	const noise = 0.1
	noisy := func(a, b int) (float64, bool) {
		d := pts[a].Dist(pts[b])
		if d > 1 {
			return 0, false
		}
		return math.Max(0, d+(2*rng.Float64()-1)*noise), true
	}
	coords, err := Localize(len(pts), noisy, Options{SmacofIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	_, rmsd, err := geom.AlignRigid(coords, pts)
	if err != nil {
		t.Fatal(err)
	}
	if rmsd > 0.25 {
		t.Errorf("noisy recovery rmsd = %v", rmsd)
	}
}

func TestStress(t *testing.T) {
	pts := []geom.Vec3{geom.Zero, geom.V(1, 0, 0), geom.V(0, 1, 0)}
	if s := Stress(pts, fullDist(pts)); s != 0 {
		t.Errorf("perfect embedding stress = %v", s)
	}
	// Doubling all coordinates against original distances yields stress 1
	// (each residual equals the original distance).
	doubled := make([]geom.Vec3, len(pts))
	for i, p := range pts {
		doubled[i] = p.Scale(2)
	}
	if s := Stress(doubled, fullDist(pts)); math.Abs(s-1) > 1e-12 {
		t.Errorf("doubled embedding stress = %v, want 1", s)
	}
	// No measured pairs: zero stress by convention.
	none := func(a, b int) (float64, bool) { return 0, false }
	if s := Stress(pts, none); s != 0 {
		t.Errorf("unmeasured stress = %v", s)
	}
}

func TestLocalizeCoincidentPoints(t *testing.T) {
	// Coincident points must not produce NaNs, with or without SMACOF.
	pts := []geom.Vec3{geom.Zero, geom.Zero, geom.V(1, 0, 0), geom.V(0, 1, 0)}
	coords, err := Localize(len(pts), fullDist(pts), Options{SmacofIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range coords {
		if !c.IsFinite() {
			t.Errorf("coord %d not finite: %v", i, c)
		}
	}
}
