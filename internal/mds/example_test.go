package mds_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/mds"
)

// Localize recovers a point configuration (up to rigid motion) from
// pairwise distances; unmeasured pairs are completed via shortest paths.
func ExampleLocalize() {
	pts := []geom.Vec3{
		geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0), geom.V(0, 0, 1),
	}
	dist := func(a, b int) (float64, bool) { return pts[a].Dist(pts[b]), true }
	coords, err := mds.Localize(len(pts), dist, mds.Options{SmacofIterations: 50})
	if err != nil {
		fmt.Println(err)
		return
	}
	// The embedding is in an arbitrary frame, but pairwise distances are
	// preserved.
	fmt.Printf("d01=%.2f d23=%.2f stress=%.3f\n",
		coords[0].Dist(coords[1]), coords[2].Dist(coords[3]), mds.Stress(coords, dist))
	// Output:
	// d01=1.00 d23=1.41 stress=0.000
}
