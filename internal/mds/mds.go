// Package mds implements multidimensional-scaling localization for one-hop
// neighborhoods, the local-coordinate substrate of Algorithm 1 step (I). The
// paper adopts the improved MDS-based localization of Shang & Ruml [31]; this
// package follows the same recipe: complete the partial (measured) distance
// matrix with local shortest paths, run classical MDS on the double-centered
// squared-distance matrix, and optionally refine with SMACOF stress
// majorization using only the actually measured pairs.
//
// Coordinates produced here are local: they are determined only up to a
// rigid motion and reflection, which is all Unit Ball Fitting needs (an
// empty ball is empty in any rigid frame).
package mds

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Options configures Localize.
type Options struct {
	// Dims is the embedding dimension. The zero value means 3.
	Dims int
	// SmacofIterations refines the classical-MDS solution with this many
	// stress-majorization sweeps over the measured pairs. Zero disables
	// refinement. Negative is invalid.
	SmacofIterations int
	// MinRho guards the SMACOF update against coincident points. The
	// zero value means 1e-9.
	MinRho float64
	// Restarts adds this many extra SMACOF runs from randomly perturbed
	// initial configurations (deterministic, seeded by RestartSeed),
	// keeping the lowest-stress result. Classical MDS on the
	// shortest-path-completed matrix is a biased initializer, and
	// SMACOF's majorization is prone to local minima on sparse
	// neighborhoods; a few restarts recover most of them. Zero disables
	// restarts.
	Restarts int
	// RestartSeed seeds the restart perturbations.
	RestartSeed int64
}

func (o Options) withDefaults() Options {
	if o.Dims == 0 {
		o.Dims = 3
	}
	if o.MinRho == 0 {
		o.MinRho = 1e-9
	}
	return o
}

// ErrBadOptions is returned for invalid option values.
var ErrBadOptions = errors.New("mds: invalid options")

// ErrDisconnected is returned when shortest-path completion cannot fill the
// distance matrix — the points do not form a connected measurement graph.
// For the closed one-hop neighborhoods this library localizes, the center
// node measures every member, so this indicates a caller bug.
var ErrDisconnected = errors.New("mds: measurement graph is disconnected")

// DistFunc reports the measured distance between members a and b of the
// point set being localized (indices in [0, n)), with ok=false when the
// pair was not measured. It must be symmetric; Localize queries each
// unordered pair once with a < b.
type DistFunc func(a, b int) (float64, bool)

// Localize embeds n points into Options.Dims-dimensional coordinates from
// partial pairwise distance measurements. The result coordinates are in an
// arbitrary rigid frame.
func Localize(n int, dist DistFunc, opts Options) ([]geom.Vec3, error) {
	opts = opts.withDefaults()
	if opts.Dims < 1 || opts.Dims > 3 || opts.SmacofIterations < 0 || opts.Restarts < 0 {
		return nil, ErrBadOptions
	}
	switch n {
	case 0:
		return nil, nil
	case 1:
		return []geom.Vec3{geom.Zero}, nil
	}

	d, observed := buildMatrix(n, dist)
	if err := completeShortestPaths(d); err != nil {
		return nil, err
	}
	coords, err := classical(d, opts.Dims)
	if err != nil {
		return nil, fmt.Errorf("classical MDS: %w", err)
	}
	if opts.SmacofIterations == 0 {
		return coords, nil
	}
	smacof(coords, d, observed, opts)
	if opts.Restarts == 0 {
		return coords, nil
	}

	// Restarted refinement: perturb the best-known configuration and
	// re-majorize, keeping whichever run fits the measured distances
	// best. The perturbation magnitude is a fraction of the
	// configuration's spread, enough to hop out of a reflection-trapped
	// local minimum.
	best := coords
	bestStress := stressAgainst(best, d, observed)
	rng := rand.New(rand.NewSource(opts.RestartSeed + int64(n)*1_000_003))
	spread := 0.0
	for _, c := range coords {
		spread = math.Max(spread, c.Norm())
	}
	if spread == 0 {
		spread = 1
	}
	for r := 0; r < opts.Restarts; r++ {
		trial := make([]geom.Vec3, n)
		for i := range trial {
			trial[i] = best[i].Add(geom.RandomUnitVector(rng).Scale(0.4 * spread * rng.Float64()))
		}
		smacof(trial, d, observed, opts)
		if s := stressAgainst(trial, d, observed); s < bestStress {
			best, bestStress = trial, s
		}
	}
	return best, nil
}

// stressAgainst is raw (unnormalized) stress over the observed pairs.
func stressAgainst(coords []geom.Vec3, d [][]float64, observed [][]bool) float64 {
	var sum float64
	for a := range coords {
		for b := a + 1; b < len(coords); b++ {
			if !observed[a][b] {
				continue
			}
			rho := coords[a].Dist(coords[b])
			sum += (rho - d[a][b]) * (rho - d[a][b])
		}
	}
	return sum
}

// matrix carves an n×n float matrix's rows out of one flat backing array —
// two allocations instead of n+1. Localization runs once per node with
// several matrices per run, so row-slice churn dominated the allocation
// profile of whole-network sweeps.
func matrix(n int) [][]float64 {
	backing := make([]float64, n*n)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = backing[i*n : (i+1)*n]
	}
	return rows
}

// boolMatrix is matrix for masks.
func boolMatrix(n int) [][]bool {
	backing := make([]bool, n*n)
	rows := make([][]bool, n)
	for i := range rows {
		rows[i] = backing[i*n : (i+1)*n]
	}
	return rows
}

// buildMatrix assembles the symmetric distance matrix with +Inf for
// unmeasured pairs, alongside an observation mask.
func buildMatrix(n int, dist DistFunc) ([][]float64, [][]bool) {
	d := matrix(n)
	observed := boolMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if v, ok := dist(a, b); ok {
				d[a][b], d[b][a] = v, v
				observed[a][b], observed[b][a] = true, true
			}
		}
	}
	return d, observed
}

// completeShortestPaths runs Floyd–Warshall in place, replacing +Inf
// entries with shortest measured-path sums. Neighborhood matrices are tiny
// (≈ degree+1 rows), so the cubic cost is negligible.
func completeShortestPaths(d [][]float64) error {
	n := len(d)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if via := dik + d[k][j]; via < d[i][j] {
					d[i][j], d[j][i] = via, via
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.IsInf(d[i][j], 1) {
				return ErrDisconnected
			}
		}
	}
	return nil
}

// classical performs classical (Torgerson) MDS: eigendecompose the
// double-centered squared-distance matrix and scale the top eigenvectors.
func classical(d [][]float64, dims int) ([]geom.Vec3, error) {
	n := len(d)
	// B = -1/2 · J·D²·J with J = I - 11ᵀ/n, computed via row/column/grand
	// means of the squared distances. b holds D² first, then is centered
	// in place.
	b := matrix(n)
	rowMean := make([]float64, n)
	var grand float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i][j] = d[i][j] * d[i][j]
			rowMean[i] += b[i][j]
		}
		rowMean[i] /= float64(n)
		grand += rowMean[i]
	}
	grand /= float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i][j] = -0.5 * (b[i][j] - rowMean[i] - rowMean[j] + grand)
		}
	}
	vals, vecs, err := geom.SymmetricEigen(b)
	if err != nil {
		return nil, err
	}
	coords := make([]geom.Vec3, n)
	for axis := 0; axis < dims && axis < n; axis++ {
		if vals[axis] <= 0 {
			break // remaining axes carry no positive variance
		}
		scale := math.Sqrt(vals[axis])
		for i := 0; i < n; i++ {
			v := scale * vecs[axis][i]
			switch axis {
			case 0:
				coords[i].X = v
			case 1:
				coords[i].Y = v
			default:
				coords[i].Z = v
			}
		}
	}
	return coords, nil
}

// smacof refines coordinates in place with the Guttman transform
// X⁺ = V⁺·B(X)·X, the exact stress-majorization step, restricted to the
// observed pairs (the actually measured one-hop distances), which are more
// trustworthy than the shortest-path-completed entries. V is the weight
// Laplacian; its pseudo-inverse is computed once per call. Stress decreases
// monotonically under this update.
func smacof(coords []geom.Vec3, d [][]float64, observed [][]bool, opts Options) {
	n := len(coords)
	// Collect the measured pairs once: B(X)'s off-diagonal support is
	// exactly these pairs, so each majorization sweep costs
	// O(pairs + n²) instead of three dense n² passes over mostly-zero
	// entries.
	var pairs []obsPair
	deg := make([]float64, n)
	for a := 0; a < n; a++ {
		for c := a + 1; c < n; c++ {
			if observed[a][c] {
				pairs = append(pairs, obsPair{a: a, c: c, d: d[a][c]})
				deg[a]++
				deg[c]++
			}
		}
	}
	if len(pairs) == 0 {
		return
	}
	vPinv, ok := laplacianPinv(deg, pairs, n)
	if !ok {
		// Disconnected observation graph: the Cholesky shortcut does not
		// apply; fall back to the eigendecomposition pseudo-inverse of
		// the explicit Laplacian.
		v := matrix(n)
		for _, p := range pairs {
			v[p.a][p.c], v[p.c][p.a] = -1, -1
		}
		for a := 0; a < n; a++ {
			v[a][a] = deg[a]
		}
		var err error
		vPinv, err = pseudoInverse(v)
		if err != nil {
			return // leave the classical-MDS solution in place
		}
	}

	y := make([]geom.Vec3, n)
	for iter := 0; iter < opts.SmacofIterations; iter++ {
		// Y = B(X)·X: pair (a,c) contributes s·(x_a − x_c) to row a and
		// its negation to row c, with s = d_ac / max(ρ_ac, MinRho) — the
		// pair-local form of the Guttman transform's B matrix.
		for a := range y {
			y[a] = geom.Vec3{}
		}
		for _, p := range pairs {
			rho := coords[p.a].Dist(coords[p.c])
			if rho < opts.MinRho {
				rho = opts.MinRho
			}
			t := coords[p.a].Sub(coords[p.c]).Scale(p.d / rho)
			y[p.a] = y[p.a].Add(t)
			y[p.c] = y[p.c].Sub(t)
		}
		// X⁺ = V⁺·Y.
		for a := 0; a < n; a++ {
			var acc geom.Vec3
			row := vPinv[a]
			for c := 0; c < n; c++ {
				acc = acc.Add(y[c].Scale(row[c]))
			}
			coords[a] = acc
		}
	}
}

// obsPair is one measured distance (a < c) — the sparse support SMACOF
// iterates over.
type obsPair struct {
	a, c int
	d    float64
}

// laplacianPinv computes the pseudo-inverse of the observation-weight
// Laplacian V through the identity (V + 11ᵀ/n)⁻¹ = V⁺ + 11ᵀ/n, valid when
// the observation graph is connected (null(V) = span(1)). The SMACOF
// update only ever applies the result to Y = B(X)·X, whose rows sum to
// zero (each pair contributes ±t), so the extra 11ᵀ/n term annihilates and
// (V + 11ᵀ/n)⁻¹ substitutes for V⁺ exactly. The shifted matrix is
// symmetric positive definite, so a Cholesky inversion does the job in a
// fraction of the eigendecomposition's operations. ok=false reports a
// failed pivot — a disconnected observation graph — and the caller falls
// back to the eigen route.
func laplacianPinv(deg []float64, pairs []obsPair, n int) ([][]float64, bool) {
	a := matrix(n)
	shift := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := a[i]
		for j := 0; j < n; j++ {
			row[j] = shift
		}
		row[i] += deg[i]
	}
	for _, p := range pairs {
		a[p.a][p.c]--
		a[p.c][p.a]--
	}
	// Cholesky A = L·Lᵀ, L accumulating in the lower triangle.
	for j := 0; j < n; j++ {
		sum := a[j][j]
		for k := 0; k < j; k++ {
			sum -= a[j][k] * a[j][k]
		}
		if sum <= 1e-9 {
			return nil, false
		}
		ljj := math.Sqrt(sum)
		a[j][j] = ljj
		for i := j + 1; i < n; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= a[i][k] * a[j][k]
			}
			a[i][j] = s / ljj
		}
	}
	// A⁻¹ column by column: forward-substitute L·w = eₑ, then
	// back-substitute Lᵀ·x = w.
	out := matrix(n)
	col := make([]float64, n)
	for e := 0; e < n; e++ {
		for i := 0; i < n; i++ {
			s := 0.0
			if i == e {
				s = 1
			}
			for k := 0; k < i; k++ {
				s -= a[i][k] * col[k]
			}
			col[i] = s / a[i][i]
		}
		for i := n - 1; i >= 0; i-- {
			s := col[i]
			for k := i + 1; k < n; k++ {
				s -= a[k][i] * col[k]
			}
			col[i] = s / a[i][i]
		}
		for i := 0; i < n; i++ {
			out[i][e] = col[i]
		}
	}
	return out, true
}

// pseudoInverse computes the Moore–Penrose pseudo-inverse of a symmetric
// matrix via its eigendecomposition, zeroing near-null directions (the
// weight Laplacian is singular along translations).
func pseudoInverse(m [][]float64) ([][]float64, error) {
	n := len(m)
	vals, vecs, err := geom.SymmetricEigen(m)
	if err != nil {
		return nil, err
	}
	var maxAbs float64
	for _, v := range vals {
		if math.Abs(v) > maxAbs {
			maxAbs = math.Abs(v)
		}
	}
	cutoff := 1e-10 * (maxAbs + 1)
	inv := matrix(n)
	for k, v := range vals {
		if math.Abs(v) <= cutoff {
			continue
		}
		w := 1 / v
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				inv[i][j] += w * vecs[k][i] * vecs[k][j]
			}
		}
	}
	return inv, nil
}

// Stress returns the normalized residual stress of an embedding against the
// measured distances: sqrt( Σ(ρ_ab - d_ab)² / Σ d_ab² ) over measured pairs.
// Zero means a perfect fit; it is the standard goodness-of-fit metric for
// MDS localization.
func Stress(coords []geom.Vec3, dist DistFunc) float64 {
	var num, den float64
	n := len(coords)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			d, ok := dist(a, b)
			if !ok {
				continue
			}
			rho := coords[a].Dist(coords[b])
			num += (rho - d) * (rho - d)
			den += d * d
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// ResidualRMS returns the root-mean-square absolute residual |ρ_ab - d_ab|
// over the measured pairs — the locally observable estimate of a frame's
// coordinate uncertainty (in distance units). Nodes use it to size the
// strict-interior tolerance of Unit Ball Fitting adaptively.
func ResidualRMS(coords []geom.Vec3, dist DistFunc) float64 {
	var num float64
	count := 0
	n := len(coords)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			d, ok := dist(a, b)
			if !ok {
				continue
			}
			rho := coords[a].Dist(coords[b])
			num += (rho - d) * (rho - d)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Sqrt(num / float64(count))
}
