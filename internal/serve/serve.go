// Package serve implements boundaryd's HTTP/JSON API: a session registry
// where clients POST a network once (the shared cli.Envelope framing or
// the legacy raw network JSON of internal/export), then stream
// join/leave/move/crash deltas and read back the updated boundary groups.
// Each session wraps one core.Incremental engine, so a delta recomputes
// only the dirty region around the change.
//
// Routes:
//
//	GET    /healthz                   liveness + session count
//	POST   /v1/sessions               create a session from a network
//	GET    /v1/sessions               list session summaries
//	GET    /v1/sessions/{id}          session detail (boundary + groups)
//	POST   /v1/sessions/{id}/deltas   apply an ordered batch of deltas
//	DELETE /v1/sessions/{id}          drop a session
//
// Session creation accepts per-session detection parameters as query
// parameters: workers, shards, theta (IFF threshold; -1 disables IFF) and
// ttl (IFF flood hop budget). Omitted parameters fall back to the server's
// defaults, then to the library's paper defaults.
//
// Concurrency: the registry is guarded by an RWMutex; each session has its
// own mutex serializing deltas against reads, so distinct sessions make
// progress in parallel. Every request runs under a StageServe span labeled
// with its route, and the registry maintains the sessions/deltas counters.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/obs"
)

// maxBodyBytes bounds request bodies; a million-node network JSON is
// ~60 MB, so this admits the scales the sharded engine targets without
// letting a client exhaust memory outright.
const maxBodyBytes = 256 << 20

// Options configures a Server.
type Options struct {
	// Obs receives request spans, session counters and the incremental
	// engines' dirty-region telemetry; nil disables observation.
	Obs obs.Observer
	// Workers and Shards are the per-session defaults when a create
	// request does not override them.
	Workers int
	Shards  int
	// MaxSessions caps concurrently held sessions; 0 means 64. Creation
	// beyond the cap fails with 429.
	MaxSessions int
}

// Server is the session registry behind the HTTP API.
type Server struct {
	opts Options

	mu       sync.RWMutex
	sessions map[string]*session
	nextID   int
}

// session is one loaded network and its incremental engine. mu serializes
// deltas against snapshot reads.
type session struct {
	mu     sync.Mutex
	id     string
	inc    *core.Incremental
	deltas int64
}

// New builds a Server; call Handler to mount it.
func New(opts Options) *Server {
	if opts.MaxSessions == 0 {
		opts.MaxSessions = 64
	}
	return &Server{opts: opts, sessions: make(map[string]*session)}
}

// Handler mounts the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.traced("GET /healthz", s.handleHealth))
	mux.HandleFunc("POST /v1/sessions", s.traced("POST /v1/sessions", s.handleCreate))
	mux.HandleFunc("GET /v1/sessions", s.traced("GET /v1/sessions", s.handleList))
	mux.HandleFunc("GET /v1/sessions/{id}", s.traced("GET /v1/sessions/{id}", s.handleGet))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.traced("DELETE /v1/sessions/{id}", s.handleDelete))
	mux.HandleFunc("POST /v1/sessions/{id}/deltas", s.traced("POST /v1/sessions/{id}/deltas", s.handleDeltas))
	return mux
}

// traced wraps a handler in a StageServe span labeled with the route.
func (s *Server) traced(route string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		span := obs.StartLabeled(s.opts.Obs, obs.StageServe, route)
		defer span.End()
		fn(w, r)
	}
}

// Summary is one session's wire summary.
type Summary struct {
	Session string `json:"session"`
	// Nodes is the stable ID space size (departed nodes included);
	// Active is the currently deployed count.
	Nodes         int   `json:"nodes"`
	Active        int   `json:"active"`
	BoundaryCount int   `json:"boundary_count"`
	GroupCount    int   `json:"group_count"`
	DeltasApplied int64 `json:"deltas_applied"`
}

// Detail is a session's full wire state: the summary plus the boundary
// node IDs and the per-group member lists (stable IDs, ascending).
type Detail struct {
	Summary
	Radius   float64 `json:"radius"`
	Boundary []int   `json:"boundary"`
	Groups   [][]int `json:"groups"`
}

// wireDelta is one delta on the wire.
type wireDelta struct {
	Op   string    `json:"op"`
	Node int       `json:"node"`
	Pos  *wireVec3 `json:"pos,omitempty"`
}

type wireVec3 struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// deltasRequest is the body of POST .../deltas: an ordered batch.
type deltasRequest struct {
	Deltas []wireDelta `json:"deltas"`
}

// deltasResponse reports a batch's outcome. Deltas apply in order;
// Applied counts the prefix that succeeded, and Joined lists the stable
// IDs assigned to join deltas in request order.
type deltasResponse struct {
	Applied int     `json:"applied"`
	Joined  []int   `json:"joined,omitempty"`
	Summary Summary `json:"summary"`
}

type errorResponse struct {
	Error   string `json:"error"`
	Applied int    `json:"applied,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.sessions)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "sessions": n})
}

// sessionConfig resolves a create request's detection parameters.
func (s *Server) sessionConfig(r *http.Request) (core.Config, error) {
	cfg := core.Config{Workers: s.opts.Workers, Shards: s.opts.Shards}
	q := r.URL.Query()
	intParam := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("parameter %s=%q is not an integer", name, v)
		}
		*dst = n
		return nil
	}
	for name, dst := range map[string]*int{
		"workers": &cfg.Workers,
		"shards":  &cfg.Shards,
		"theta":   &cfg.IFFThreshold,
		"ttl":     &cfg.IFFTTL,
	} {
		if err := intParam(name, dst); err != nil {
			return core.Config{}, err
		}
	}
	return cfg, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	payload := body
	if env, data, err := cli.ReadEnvelope(body); err == nil {
		if env.Tool != "netgen" {
			writeErr(w, http.StatusBadRequest, "envelope from %q, want a netgen network", env.Tool)
			return
		}
		payload = data
	} else if !errors.Is(err, cli.ErrNotEnvelope) {
		// Malformed envelope (trailing data, truncated JSON): refuse
		// rather than reinterpret as a legacy payload.
		writeErr(w, http.StatusBadRequest, "malformed envelope: %v", err)
		return
	}
	net, err := export.ReadNetworkJSON(bytes.NewReader(payload))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "network payload: %v", err)
		return
	}
	cfg, err := s.sessionConfig(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	inc, err := core.NewIncrementalContext(r.Context(), s.opts.Obs, net, cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "detection: %v", err)
		return
	}

	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests, "session limit %d reached", s.opts.MaxSessions)
		return
	}
	s.nextID++
	sess := &session{id: fmt.Sprintf("s%d", s.nextID), inc: inc}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	obs.Add(s.opts.Obs, obs.StageServe, obs.CtrSessions, 1)

	sess.mu.Lock()
	sum := sess.summaryLocked()
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, sum)
}

func (s *Server) lookup(id string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

// summaryLocked reads the session's summary; callers hold sess.mu.
func (sess *session) summaryLocked() Summary {
	return Summary{
		Session:       sess.id,
		Nodes:         sess.inc.Len(),
		Active:        sess.inc.ActiveCount(),
		BoundaryCount: sess.inc.BoundaryCount(),
		GroupCount:    len(sess.inc.Groups()),
		DeltasApplied: sess.deltas,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.RUnlock()
	out := make([]Summary, 0, len(all))
	for _, sess := range all {
		sess.mu.Lock()
		out = append(out, sess.summaryLocked())
		sess.mu.Unlock()
	}
	// Deterministic listing order: session IDs are "s<n>", so sort by
	// creation number.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && sessionNum(out[j-1].Session) > sessionNum(out[j].Session); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func sessionNum(id string) int {
	n, _ := strconv.Atoi(id[1:])
	return n
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	sess.mu.Lock()
	snap := sess.inc.Snapshot()
	det := Detail{
		Summary: sess.summaryLocked(),
		Radius:  sess.inc.Radius(),
		Groups:  snap.Groups,
	}
	sess.mu.Unlock()
	det.Boundary = make([]int, 0, 64)
	for i, b := range snap.Boundary {
		if b {
			det.Boundary = append(det.Boundary, i)
		}
	}
	det.GroupCount = len(det.Groups)
	writeJSON(w, http.StatusOK, det)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no session %q", id)
		return
	}
	obs.Add(s.opts.Obs, obs.StageServe, obs.CtrSessions, -1)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req deltasRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "deltas body: %v", err)
		return
	}
	if len(req.Deltas) == 0 {
		writeErr(w, http.StatusBadRequest, "empty delta batch")
		return
	}

	deltas := make([]core.Delta, len(req.Deltas))
	for i, wd := range req.Deltas {
		op, ok := core.DeltaOpFromString(wd.Op)
		if !ok {
			writeErr(w, http.StatusBadRequest, "delta %d: unknown op %q", i, wd.Op)
			return
		}
		d := core.Delta{Op: op, Node: wd.Node}
		if op == core.DeltaJoin || op == core.DeltaMove {
			if wd.Pos == nil {
				writeErr(w, http.StatusBadRequest, "delta %d: op %q needs a pos", i, wd.Op)
				return
			}
			d.Pos = geom.V(wd.Pos.X, wd.Pos.Y, wd.Pos.Z)
		}
		deltas[i] = d
	}

	sess.mu.Lock()
	resp := deltasResponse{}
	for i, d := range deltas {
		id, err := sess.inc.ApplyContext(r.Context(), s.opts.Obs, d)
		if err != nil {
			// Per-delta validation happens before mutation, so the prefix
			// [0, i) is applied and the session stays consistent.
			sess.deltas += int64(i)
			sess.mu.Unlock()
			obs.Add(s.opts.Obs, obs.StageServe, obs.CtrDeltas, int64(i))
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error:   fmt.Sprintf("delta %d (%s): %v", i, d.Op, err),
				Applied: i,
			})
			return
		}
		if d.Op == core.DeltaJoin {
			resp.Joined = append(resp.Joined, id)
		}
	}
	sess.deltas += int64(len(deltas))
	resp.Applied = len(deltas)
	resp.Summary = sess.summaryLocked()
	sess.mu.Unlock()
	obs.Add(s.opts.Obs, obs.StageServe, obs.CtrDeltas, int64(len(deltas)))
	writeJSON(w, http.StatusOK, resp)
}
