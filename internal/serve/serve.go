// Package serve implements boundaryd's HTTP/JSON API: a session registry
// where clients POST a network once (the shared cli.Envelope framing or
// the legacy raw network JSON of internal/export), then stream
// join/leave/move/crash deltas and read back the updated boundary groups.
// A session built on an incremental-capable detector (the paper pipeline)
// wraps one core.Incremental engine, so a delta recomputes only the dirty
// region around the change; sessions on other detectors fall back to a
// full recompute per delta over the mirrored active set.
//
// Routes (current API version is /v1; the unprefixed spellings are
// deprecated aliases that answer identically with a `Deprecation: true`
// header and a `Link: ...; rel="successor-version"` pointing at the /v1
// route):
//
//	GET    /healthz                   liveness + session count
//	POST   /v1/sessions               create a session from a network
//	GET    /v1/sessions               list session summaries
//	GET    /v1/sessions/{id}          session detail (boundary + groups)
//	GET    /v1/sessions/{id}/mesh     reconstructed boundary surfaces
//	POST   /v1/sessions/{id}/deltas   apply an ordered batch of deltas
//	DELETE /v1/sessions/{id}          drop a session
//
// The mesh route serves one triangular surface per boundary group
// (landmarks with smoothed positions, virtual edges, faces, manifold
// diagnostics). Incremental sessions keep a mesh.Incremental engine warm
// across deltas, so unchanged groups answer from cache; full-recompute
// sessions rebuild every surface per request. Topology-only detectors
// (no measurement capability) answer 501 — their groups carry no
// geometry a surface could be anchored to.
//
// Session creation accepts per-session detection parameters as query
// parameters: detector (a core registry name), workers, shards, theta
// (IFF threshold; -1 disables IFF) and ttl (IFF flood hop budget). A
// "detector" field in the posted envelope selects the detector too; the
// query parameter wins when both are present. Omitted parameters fall
// back to the server's defaults, then to the library's paper defaults.
//
// Concurrency: the registry is guarded by an RWMutex; each session has its
// own mutex serializing deltas against reads, so distinct sessions make
// progress in parallel. Every request runs under a StageServe span labeled
// with its route, and the registry maintains the sessions/deltas counters.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/obs"
)

// maxBodyBytes bounds request bodies; a million-node network JSON is
// ~60 MB, so this admits the scales the sharded engine targets without
// letting a client exhaust memory outright.
const maxBodyBytes = 256 << 20

// Options configures a Server.
type Options struct {
	// Obs receives request spans, session counters and the incremental
	// engines' dirty-region telemetry; nil disables observation.
	Obs obs.Observer
	// Workers and Shards are the per-session defaults when a create
	// request does not override them.
	Workers int
	Shards  int
	// Detector is the default detector registry name for new sessions
	// ("" = the paper pipeline).
	Detector string
	// MaxSessions caps concurrently held sessions; 0 means 64. Creation
	// beyond the cap fails with 429.
	MaxSessions int
}

// Server is the session registry behind the HTTP API.
type Server struct {
	opts Options
	// metrics is the server's always-on aggregation sink — request
	// spans, session/delta counters and engine telemetry land here
	// regardless of Options.Obs, so GET /v1/metrics always has data.
	metrics *obs.Metrics
	// obs is the effective observer every handler threads through:
	// Tee(Options.Obs, metrics).
	obs obs.Observer

	mu       sync.RWMutex
	sessions map[string]*session
	nextID   int
}

// Metrics exposes the server's always-on aggregation sink — what
// GET /v1/metrics renders as "global". boundaryd samples it into the
// FTDC ring.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// session is one loaded network and its detection engine. mu serializes
// deltas against snapshot reads. metrics aggregates only this session's
// engine activity (initial detection, per-delta repair latency, delta
// counts) for the per-session half of GET /v1/metrics.
type session struct {
	mu       sync.Mutex
	id       string
	detector string
	eng      engine
	deltas   int64
	metrics  *obs.Metrics
	// workers is the session's configured parallelism, reused by the mesh
	// handler's smoothing pass (bit-identical at every width).
	workers int
}

// engine is what a session needs from a detection backend: the state
// queries the wire types render, plus delta application. Boundary and
// group members are stable IDs — IDs survive departures, and joins extend
// the ID space — regardless of whether the backend repairs incrementally
// or recomputes from scratch.
type engine interface {
	Len() int
	ActiveCount() int
	BoundaryCount() int
	Groups() [][]int
	Radius() float64
	Snapshot() *core.Result
	Apply(ctx context.Context, o obs.Observer, d core.Delta) (int, error)
	// Mesh reconstructs one triangular surface per boundary group, in
	// stable IDs. PositionAt supplies node positions for the smoothing
	// pass the mesh handler runs per serve.
	Mesh(ctx context.Context, o obs.Observer) ([]*mesh.Surface, error)
	PositionAt(u int) geom.Vec3
}

// incEngine is the incremental backend: core.Incremental already speaks
// stable IDs and repairs only the dirty region, and the paired
// mesh.Incremental keeps surfaces cached across deltas — Apply feeds each
// delta's changed edges into its invalidation pass.
type incEngine struct {
	inc  *core.Incremental
	mesh *mesh.Incremental
}

func (e incEngine) Len() int               { return e.inc.Len() }
func (e incEngine) ActiveCount() int       { return e.inc.ActiveCount() }
func (e incEngine) BoundaryCount() int     { return e.inc.BoundaryCount() }
func (e incEngine) Groups() [][]int        { return e.inc.Groups() }
func (e incEngine) Radius() float64        { return e.inc.Radius() }
func (e incEngine) Snapshot() *core.Result { return e.inc.Snapshot() }
func (e incEngine) Apply(ctx context.Context, o obs.Observer, d core.Delta) (int, error) {
	id, err := e.inc.ApplyContext(ctx, o, d)
	if err == nil {
		node, peers := e.inc.LastTopology()
		e.mesh.Invalidate(o, node, peers)
	}
	return id, err
}
func (e incEngine) Mesh(ctx context.Context, o obs.Observer) ([]*mesh.Surface, error) {
	return e.mesh.Surfaces(ctx, o, e.inc, e.inc.GroupsView(), nil)
}
func (e incEngine) PositionAt(u int) geom.Vec3 { return e.inc.PositionAt(u) }

// fullEngine is the fallback backend for detectors without
// CapIncremental: it mirrors the session's stable-ID state (positions and
// liveness) and re-runs the detector from scratch over the active set
// after every delta, mapping the compact recompute result back to stable
// IDs. Correct for any detector; costs a full detection per delta.
type fullEngine struct {
	cfg    core.Config
	radius float64

	pos      []geom.Vec3
	active   []bool
	activeN  int
	boundary []bool  // stable-ID indexed
	groups   [][]int // stable IDs, ascending within each group
}

// newFullEngine seeds the mirror from the posted network and runs the
// initial detection.
func newFullEngine(ctx context.Context, o obs.Observer, net *netgen.Network, cfg core.Config) (*fullEngine, error) {
	e := &fullEngine{
		cfg:    cfg,
		radius: net.Radius,
		pos:    net.Positions(),
	}
	e.active = make([]bool, len(e.pos))
	for i := range e.active {
		e.active[i] = true
	}
	e.activeN = len(e.pos)
	if err := e.recompute(ctx, o); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *fullEngine) Len() int         { return len(e.pos) }
func (e *fullEngine) ActiveCount() int { return e.activeN }
func (e *fullEngine) Radius() float64  { return e.radius }
func (e *fullEngine) Groups() [][]int  { return e.groups }
func (e *fullEngine) BoundaryCount() int {
	n := 0
	for _, b := range e.boundary {
		if b {
			n++
		}
	}
	return n
}

func (e *fullEngine) Snapshot() *core.Result {
	res := &core.Result{
		Boundary: append([]bool(nil), e.boundary...),
		Groups:   make([][]int, len(e.groups)),
	}
	for g, members := range e.groups {
		res.Groups[g] = append([]int(nil), members...)
	}
	return res
}

// recompute assembles the active nodes into a compact network, runs the
// configured detector, and maps the verdicts back to stable IDs.
func (e *fullEngine) recompute(ctx context.Context, o obs.Observer) error {
	var nodes []netgen.Node
	var stable []int
	for i, a := range e.active {
		if a {
			stable = append(stable, i)
			nodes = append(nodes, netgen.Node{Pos: e.pos[i]})
		}
	}
	network, err := netgen.Assemble(nodes, e.radius)
	if err != nil {
		return err
	}
	res, err := core.DetectContext(ctx, o, network, nil, e.cfg)
	if err != nil {
		return err
	}
	boundary := make([]bool, len(e.pos))
	for k, b := range res.Boundary {
		if b {
			boundary[stable[k]] = true
		}
	}
	groups := make([][]int, len(res.Groups))
	for g, members := range res.Groups {
		groups[g] = make([]int, len(members))
		for k, m := range members {
			groups[g][k] = stable[m]
		}
	}
	e.boundary, e.groups = boundary, groups
	return nil
}

func (e *fullEngine) PositionAt(u int) geom.Vec3 { return e.pos[u] }

// stableTopo is a stable-ID adjacency snapshot satisfying mesh.Topology.
type stableTopo struct{ adj [][]int32 }

func (t stableTopo) Len() int                { return len(t.adj) }
func (t stableTopo) Neighbors(u int) []int32 { return t.adj[u] }

// Mesh is the full-recompute path: assemble the active set, lift the
// compact adjacency back to stable IDs (a monotone renaming, so rows stay
// ascending), and build every group surface from scratch.
func (e *fullEngine) Mesh(ctx context.Context, o obs.Observer) ([]*mesh.Surface, error) {
	var nodes []netgen.Node
	var stable []int
	for i, a := range e.active {
		if a {
			stable = append(stable, i)
			nodes = append(nodes, netgen.Node{Pos: e.pos[i]})
		}
	}
	network, err := netgen.Assemble(nodes, e.radius)
	if err != nil {
		return nil, err
	}
	adj := make([][]int32, len(e.pos))
	for k, row := range network.G.Adj {
		r := make([]int32, len(row))
		for i, v := range row {
			r[i] = int32(stable[v])
		}
		adj[stable[k]] = r
	}
	return mesh.BuildTopology(ctx, o, stableTopo{adj}, e.groups, mesh.Config{Workers: e.cfg.Workers})
}

// Apply validates the delta, mutates the mirror, and recomputes. A failed
// recompute rolls the mutation back, so the session state stays the last
// successfully detected one.
func (e *fullEngine) Apply(ctx context.Context, o obs.Observer, d core.Delta) (int, error) {
	id := d.Node
	switch d.Op {
	case core.DeltaJoin:
		if !d.Pos.IsFinite() {
			return 0, fmt.Errorf("serve: join position must be finite, got %v", d.Pos)
		}
		id = len(e.pos)
		e.pos = append(e.pos, d.Pos)
		e.active = append(e.active, true)
		e.activeN++
		if err := e.recompute(ctx, o); err != nil {
			e.pos = e.pos[:id]
			e.active = e.active[:id]
			e.activeN--
			return 0, err
		}
	case core.DeltaMove:
		if id < 0 || id >= len(e.pos) || !e.active[id] {
			return 0, fmt.Errorf("serve: move: no active node %d", id)
		}
		if !d.Pos.IsFinite() {
			return 0, fmt.Errorf("serve: move position must be finite, got %v", d.Pos)
		}
		old := e.pos[id]
		e.pos[id] = d.Pos
		if err := e.recompute(ctx, o); err != nil {
			e.pos[id] = old
			return 0, err
		}
	case core.DeltaLeave, core.DeltaCrash:
		if id < 0 || id >= len(e.pos) || !e.active[id] {
			return 0, fmt.Errorf("serve: %s: no active node %d", d.Op, id)
		}
		e.active[id] = false
		e.activeN--
		if err := e.recompute(ctx, o); err != nil {
			e.active[id] = true
			e.activeN++
			return 0, err
		}
	default:
		return 0, fmt.Errorf("serve: unknown delta op %v", d.Op)
	}
	return id, nil
}

// New builds a Server; call Handler to mount it.
func New(opts Options) *Server {
	if opts.MaxSessions == 0 {
		opts.MaxSessions = 64
	}
	m := &obs.Metrics{}
	return &Server{
		opts:     opts,
		metrics:  m,
		obs:      obs.Tee(opts.Obs, m),
		sessions: make(map[string]*session),
	}
}

// Handler mounts the API routes: the versioned /v1 family plus the
// pre-versioning unprefixed spellings as deprecated aliases.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.traced("GET /healthz", s.handleHealth))
	// /v1/metrics is new with the versioned API — no legacy alias.
	mux.HandleFunc("GET /v1/metrics", s.traced("GET /v1/metrics", s.handleMetrics))
	// The mesh route is likewise /v1-only.
	mux.HandleFunc("GET /v1/sessions/{id}/mesh", s.traced("GET /v1/sessions/{id}/mesh", s.handleMesh))
	routes := []struct {
		method, path string
		fn           http.HandlerFunc
	}{
		{"POST", "/sessions", s.handleCreate},
		{"GET", "/sessions", s.handleList},
		{"GET", "/sessions/{id}", s.handleGet},
		{"DELETE", "/sessions/{id}", s.handleDelete},
		{"POST", "/sessions/{id}/deltas", s.handleDeltas},
	}
	for _, rt := range routes {
		v1 := rt.method + " /v1" + rt.path
		mux.HandleFunc(v1, s.traced(v1, rt.fn))
		legacy := rt.method + " " + rt.path
		mux.HandleFunc(legacy, s.traced(legacy, deprecated(rt.fn)))
	}
	return mux
}

// deprecated marks a legacy unprefixed route per the IETF Deprecation
// header draft, pointing clients at the versioned successor, and then
// answers identically.
func deprecated(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+r.URL.Path+`>; rel="successor-version"`)
		fn(w, r)
	}
}

// traced wraps a handler in a StageServe span labeled with the route.
func (s *Server) traced(route string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		span := obs.StartLabeled(s.obs, obs.StageServe, route)
		defer span.End()
		fn(w, r)
	}
}

// Summary is one session's wire summary.
type Summary struct {
	Session string `json:"session"`
	// Detector is the core registry name of the session's detector.
	Detector string `json:"detector"`
	// Nodes is the stable ID space size (departed nodes included);
	// Active is the currently deployed count.
	Nodes         int   `json:"nodes"`
	Active        int   `json:"active"`
	BoundaryCount int   `json:"boundary_count"`
	GroupCount    int   `json:"group_count"`
	DeltasApplied int64 `json:"deltas_applied"`
}

// Detail is a session's full wire state: the summary plus the boundary
// node IDs and the per-group member lists (stable IDs, ascending).
type Detail struct {
	Summary
	Radius   float64 `json:"radius"`
	Boundary []int   `json:"boundary"`
	Groups   [][]int `json:"groups"`
}

// wireDelta is one delta on the wire.
type wireDelta struct {
	Op   string    `json:"op"`
	Node int       `json:"node"`
	Pos  *wireVec3 `json:"pos,omitempty"`
}

type wireVec3 struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// deltasRequest is the body of POST .../deltas: an ordered batch.
type deltasRequest struct {
	Deltas []wireDelta `json:"deltas"`
}

// deltasResponse reports a batch's outcome. Deltas apply in order;
// Applied counts the prefix that succeeded, and Joined lists the stable
// IDs assigned to join deltas in request order.
type deltasResponse struct {
	Applied int     `json:"applied"`
	Joined  []int   `json:"joined,omitempty"`
	Summary Summary `json:"summary"`
}

type errorResponse struct {
	Error   string `json:"error"`
	Applied int    `json:"applied,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// MetricsSnapshot is one sink's wire rendering: counter totals in the
// obs.Mem.Totals "stage/counter" key format plus per-stage latency
// quantile summaries.
type MetricsSnapshot struct {
	Counters  map[string]int64            `json:"counters,omitempty"`
	Latencies map[string]obs.LatencyStats `json:"latencies,omitempty"`
}

// MetricsResponse is the GET /v1/metrics body: the server-wide totals
// plus each live session's private view, keyed by session ID.
type MetricsResponse struct {
	Global   MetricsSnapshot            `json:"global"`
	Sessions map[string]MetricsSnapshot `json:"sessions,omitempty"`
}

func snapshotOf(m *obs.Metrics) MetricsSnapshot {
	return MetricsSnapshot{Counters: m.Totals(), Latencies: m.LatencySummaries()}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := MetricsResponse{Global: snapshotOf(s.metrics)}
	s.mu.RLock()
	if len(s.sessions) > 0 {
		resp.Sessions = make(map[string]MetricsSnapshot, len(s.sessions))
		for id, sess := range s.sessions {
			resp.Sessions[id] = snapshotOf(sess.metrics)
		}
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.sessions)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "sessions": n})
}

// sessionConfig resolves a create request's detection parameters:
// server defaults, then the envelope's detector field, then the query
// parameters — validated once through core.Config.Validate, the same
// choke point the CLIs use.
func (s *Server) sessionConfig(r *http.Request, envDetector string) (core.Config, error) {
	cfg := core.Config{Workers: s.opts.Workers, Shards: s.opts.Shards, Detector: s.opts.Detector}
	if envDetector != "" {
		cfg.Detector = envDetector
	}
	q := r.URL.Query()
	if v := q.Get("detector"); v != "" {
		cfg.Detector = v
	}
	intParam := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("parameter %s=%q is not an integer", name, v)
		}
		*dst = n
		return nil
	}
	for name, dst := range map[string]*int{
		"workers": &cfg.Workers,
		"shards":  &cfg.Shards,
		"theta":   &cfg.IFFThreshold,
		"ttl":     &cfg.IFFTTL,
	} {
		if err := intParam(name, dst); err != nil {
			return core.Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	payload := body
	envDetector := ""
	if env, data, err := cli.ReadEnvelope(body); err == nil {
		if env.Tool != "netgen" {
			writeErr(w, http.StatusBadRequest, "envelope from %q, want a netgen network", env.Tool)
			return
		}
		payload = data
		envDetector = env.Detector
	} else if !errors.Is(err, cli.ErrNotEnvelope) {
		// Malformed envelope (trailing data, truncated JSON): refuse
		// rather than reinterpret as a legacy payload.
		writeErr(w, http.StatusBadRequest, "malformed envelope: %v", err)
		return
	}
	net, err := export.ReadNetworkJSON(bytes.NewReader(payload))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "network payload: %v", err)
		return
	}
	cfg, err := s.sessionConfig(r, envDetector)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Incremental-capable detectors get dirty-region repair; the rest run
	// a full recompute per delta over the mirrored active set. The
	// session's private metrics sink sees everything its engine emits,
	// starting with the initial detection.
	det, _ := core.LookupDetector(cfg.Detector) // sessionConfig validated the name
	sessMetrics := &obs.Metrics{}
	engObs := obs.Tee(s.obs, sessMetrics)
	var eng engine
	if det.Caps().Has(core.CapIncremental) {
		inc, err := core.NewIncrementalContext(r.Context(), engObs, net, cfg)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "detection: %v", err)
			return
		}
		eng = incEngine{inc, mesh.NewIncremental(mesh.Config{Workers: cfg.Workers})}
	} else {
		full, err := newFullEngine(r.Context(), engObs, net, cfg)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "detection: %v", err)
			return
		}
		eng = full
	}

	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests, "session limit %d reached", s.opts.MaxSessions)
		return
	}
	s.nextID++
	sess := &session{id: fmt.Sprintf("s%d", s.nextID), detector: det.Name(), eng: eng, metrics: sessMetrics, workers: cfg.Workers}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	obs.Add(s.obs, obs.StageServe, obs.CtrSessions, 1)

	sess.mu.Lock()
	sum := sess.summaryLocked()
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, sum)
}

func (s *Server) lookup(id string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

// summaryLocked reads the session's summary; callers hold sess.mu.
func (sess *session) summaryLocked() Summary {
	return Summary{
		Session:       sess.id,
		Detector:      sess.detector,
		Nodes:         sess.eng.Len(),
		Active:        sess.eng.ActiveCount(),
		BoundaryCount: sess.eng.BoundaryCount(),
		GroupCount:    len(sess.eng.Groups()),
		DeltasApplied: sess.deltas,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.RUnlock()
	out := make([]Summary, 0, len(all))
	for _, sess := range all {
		sess.mu.Lock()
		out = append(out, sess.summaryLocked())
		sess.mu.Unlock()
	}
	// Deterministic listing order: session IDs are "s<n>", so sort by
	// creation number.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && sessionNum(out[j-1].Session) > sessionNum(out[j].Session); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func sessionNum(id string) int {
	n, _ := strconv.Atoi(id[1:])
	return n
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	sess.mu.Lock()
	snap := sess.eng.Snapshot()
	det := Detail{
		Summary: sess.summaryLocked(),
		Radius:  sess.eng.Radius(),
		Groups:  snap.Groups,
	}
	sess.mu.Unlock()
	det.Boundary = make([]int, 0, 64)
	for i, b := range snap.Boundary {
		if b {
			det.Boundary = append(det.Boundary, i)
		}
	}
	det.GroupCount = len(det.Groups)
	writeJSON(w, http.StatusOK, det)
}

// wireLandmark is one mesh vertex on the wire: a landmark node with its
// smoothed (cell-centroid refined) position.
type wireLandmark struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	Z  float64 `json:"z"`
}

// wireSurface is one boundary group's reconstructed surface on the wire.
// Edges and faces reference landmark IDs; Euler and Closed2Manifold are
// the step-V quality diagnostics.
type wireSurface struct {
	Group           int            `json:"group"`
	GroupSize       int            `json:"group_size"`
	Landmarks       []wireLandmark `json:"landmarks"`
	Edges           []mesh.Edge    `json:"edges"`
	Faces           []mesh.Face    `json:"faces"`
	Flips           int            `json:"flips"`
	Euler           int            `json:"euler"`
	Closed2Manifold bool           `json:"closed_2manifold"`
}

// meshResponse is the GET /v1/sessions/{id}/mesh body.
type meshResponse struct {
	Session  string        `json:"session"`
	Surfaces []wireSurface `json:"surfaces"`
}

func (s *Server) handleMesh(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	det, _ := core.LookupDetector(sess.detector)
	if !det.Caps().Has(core.CapMeasurement) {
		writeErr(w, http.StatusNotImplemented,
			"detector %q is topology-only (no measurement capability): its boundary groups carry no geometry to anchor a surface mesh", sess.detector)
		return
	}
	o := obs.Tee(s.obs, sess.metrics)
	sess.mu.Lock()
	surfs, err := sess.eng.Mesh(r.Context(), o)
	if err != nil {
		sess.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, "mesh: %v", err)
		return
	}
	resp := meshResponse{Session: sess.id, Surfaces: make([]wireSurface, len(surfs))}
	for i, surf := range surfs {
		refined := mesh.RefinedPositionsWorkers(surf, sess.eng.PositionAt, 0.7, sess.workers)
		ws := wireSurface{
			Group:           i,
			GroupSize:       len(surf.Group),
			Landmarks:       make([]wireLandmark, 0, len(surf.Landmarks.IDs)),
			Edges:           surf.Edges,
			Faces:           surf.Faces,
			Flips:           surf.Flips,
			Euler:           surf.Quality.Euler,
			Closed2Manifold: surf.Quality.Closed2Manifold,
		}
		for _, lm := range surf.Landmarks.IDs {
			p := refined[lm]
			ws.Landmarks = append(ws.Landmarks, wireLandmark{ID: lm, X: p.X, Y: p.Y, Z: p.Z})
		}
		resp.Surfaces[i] = ws
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no session %q", id)
		return
	}
	obs.Add(s.obs, obs.StageServe, obs.CtrSessions, -1)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req deltasRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "deltas body: %v", err)
		return
	}
	if len(req.Deltas) == 0 {
		writeErr(w, http.StatusBadRequest, "empty delta batch")
		return
	}

	deltas := make([]core.Delta, len(req.Deltas))
	for i, wd := range req.Deltas {
		op, ok := core.DeltaOpFromString(wd.Op)
		if !ok {
			writeErr(w, http.StatusBadRequest, "delta %d: unknown op %q", i, wd.Op)
			return
		}
		d := core.Delta{Op: op, Node: wd.Node}
		if op == core.DeltaJoin || op == core.DeltaMove {
			if wd.Pos == nil {
				writeErr(w, http.StatusBadRequest, "delta %d: op %q needs a pos", i, wd.Op)
				return
			}
			d.Pos = geom.V(wd.Pos.X, wd.Pos.Y, wd.Pos.Z)
		}
		deltas[i] = d
	}

	// Per-session metrics see the repair work and the delta counts too.
	o := obs.Tee(s.obs, sess.metrics)
	sess.mu.Lock()
	resp := deltasResponse{}
	for i, d := range deltas {
		id, err := sess.eng.Apply(r.Context(), o, d)
		if err != nil {
			// Per-delta validation happens before mutation, so the prefix
			// [0, i) is applied and the session stays consistent.
			sess.deltas += int64(i)
			sess.mu.Unlock()
			obs.Add(o, obs.StageServe, obs.CtrDeltas, int64(i))
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error:   fmt.Sprintf("delta %d (%s): %v", i, d.Op, err),
				Applied: i,
			})
			return
		}
		if d.Op == core.DeltaJoin {
			resp.Joined = append(resp.Joined, id)
		}
	}
	sess.deltas += int64(len(deltas))
	resp.Applied = len(deltas)
	resp.Summary = sess.summaryLocked()
	sess.mu.Unlock()
	obs.Add(o, obs.StageServe, obs.CtrDeltas, int64(len(deltas)))
	writeJSON(w, http.StatusOK, resp)
}
