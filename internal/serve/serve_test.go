package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/shapes"
)

// testNetwork builds a small seeded ball deployment once per binary.
var (
	testNetOnce sync.Once
	testNetVal  *netgen.Network
	testNetErr  error
)

func testNetwork(t *testing.T) *netgen.Network {
	t.Helper()
	testNetOnce.Do(func() {
		testNetVal, testNetErr = netgen.Generate(netgen.Config{
			Shape:           shapes.NewBall(geom.Zero, 4),
			SurfaceNodes:    90,
			InteriorNodes:   160,
			TargetAvgDegree: 15,
			Seed:            71,
		})
	})
	if testNetErr != nil {
		t.Fatal(testNetErr)
	}
	return testNetVal
}

// envelopeBody frames the network as netgen's -out envelope.
func envelopeBody(t *testing.T, net *netgen.Network) []byte {
	t.Helper()
	raw, err := cli.MarshalRaw(func(buf *bytes.Buffer) error {
		return export.WriteNetworkJSON(buf, net)
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(cli.Envelope{Tool: "netgen", Data: raw})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// legacyBody is the raw network JSON without the envelope framing.
func legacyBody(t *testing.T, net *netgen.Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := export.WriteNetworkJSON(&buf, net); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func doJSON(t *testing.T, method, url string, body []byte, wantStatus int, out any) string {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(res.Body)
	if res.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %s, want %d; body %s", method, url, res.Status, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode response: %v (%s)", method, url, err, buf.String())
		}
	}
	return buf.String()
}

// diffServed compares the session detail against a from-scratch detection
// of the mirrored active node set (stable-ID renaming applied).
func diffServed(t *testing.T, base, id string, pos []geom.Vec3, active []bool, radius float64, cfg core.Config) {
	t.Helper()
	var det Detail
	doJSON(t, http.MethodGet, base+"/v1/sessions/"+id, nil, http.StatusOK, &det)

	var nodes []netgen.Node
	var stable []int
	for i, a := range active {
		if a {
			stable = append(stable, i)
			nodes = append(nodes, netgen.Node{Pos: pos[i]})
		}
	}
	net, err := netgen.Assemble(nodes, radius)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Detect(net, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wantBoundary []int
	for k, b := range full.Boundary {
		if b {
			wantBoundary = append(wantBoundary, stable[k])
		}
	}
	if fmt.Sprint(det.Boundary) != fmt.Sprint(wantBoundary) {
		t.Fatalf("boundary diverged: served %v, full %v", det.Boundary, wantBoundary)
	}
	if len(det.Groups) != len(full.Groups) {
		t.Fatalf("group count diverged: served %d, full %d", len(det.Groups), len(full.Groups))
	}
	for g := range full.Groups {
		want := make([]int, len(full.Groups[g]))
		for k, m := range full.Groups[g] {
			want[k] = stable[m]
		}
		if fmt.Sprint(det.Groups[g]) != fmt.Sprint(want) {
			t.Fatalf("group %d diverged: served %v, full %v", g, det.Groups[g], want)
		}
	}
	if det.BoundaryCount != len(det.Boundary) || det.GroupCount != len(det.Groups) {
		t.Fatalf("summary counts inconsistent with detail: %+v", det.Summary)
	}
}

// diffMeshServed compares the served mesh against from-scratch surfaces
// built over the mirrored active set: landmark IDs, smoothed positions
// (exact — float64 survives a JSON round-trip), edges, faces, flip counts
// and quality diagnostics, all under the stable-ID renaming.
func diffMeshServed(t *testing.T, base, id string, pos []geom.Vec3, active []bool, radius float64, cfg core.Config) {
	t.Helper()
	var mr meshResponse
	doJSON(t, http.MethodGet, base+"/v1/sessions/"+id+"/mesh", nil, http.StatusOK, &mr)

	var nodes []netgen.Node
	var stable []int
	for i, a := range active {
		if a {
			stable = append(stable, i)
			nodes = append(nodes, netgen.Node{Pos: pos[i]})
		}
	}
	net, err := netgen.Assemble(nodes, radius)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Detect(net, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mesh.BuildAll(net.G, full.Groups, mesh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Surfaces) != len(want) {
		t.Fatalf("served %d surfaces, full build %d", len(mr.Surfaces), len(want))
	}
	for i, ws := range mr.Surfaces {
		ref := want[i]
		if ws.Group != i || ws.GroupSize != len(ref.Group) {
			t.Fatalf("surface %d: group %d size %d, want %d size %d", i, ws.Group, ws.GroupSize, i, len(ref.Group))
		}
		refined := mesh.RefinedPositions(ref, func(u int) geom.Vec3 { return nodes[u].Pos }, 0.7)
		if len(ws.Landmarks) != len(ref.Landmarks.IDs) {
			t.Fatalf("surface %d: %d landmarks, want %d", i, len(ws.Landmarks), len(ref.Landmarks.IDs))
		}
		for k, lm := range ref.Landmarks.IDs {
			wl := ws.Landmarks[k]
			if wl.ID != stable[lm] {
				t.Fatalf("surface %d landmark %d: id %d, want %d", i, k, wl.ID, stable[lm])
			}
			if p := refined[lm]; wl.X != p.X || wl.Y != p.Y || wl.Z != p.Z {
				t.Fatalf("surface %d landmark %d: pos (%v,%v,%v), want %v", i, k, wl.X, wl.Y, wl.Z, p)
			}
		}
		if len(ws.Edges) != len(ref.Edges) || len(ws.Faces) != len(ref.Faces) {
			t.Fatalf("surface %d: %d edges %d faces, want %d/%d", i, len(ws.Edges), len(ws.Faces), len(ref.Edges), len(ref.Faces))
		}
		for k, e := range ref.Edges {
			if ws.Edges[k] != (mesh.Edge{stable[e[0]], stable[e[1]]}) {
				t.Fatalf("surface %d edge %d: %v, want %v", i, k, ws.Edges[k], mesh.Edge{stable[e[0]], stable[e[1]]})
			}
		}
		for k, f := range ref.Faces {
			if ws.Faces[k] != (mesh.Face{stable[f[0]], stable[f[1]], stable[f[2]]}) {
				t.Fatalf("surface %d face %d: %v, want mapped %v", i, k, ws.Faces[k], f)
			}
		}
		if ws.Flips != ref.Flips || ws.Euler != ref.Quality.Euler || ws.Closed2Manifold != ref.Quality.Closed2Manifold {
			t.Fatalf("surface %d: flips/euler/closed %d/%d/%v, want %d/%d/%v",
				i, ws.Flips, ws.Euler, ws.Closed2Manifold, ref.Flips, ref.Quality.Euler, ref.Quality.Closed2Manifold)
		}
	}
}

// TestServeMeshEndpoint drives the incremental mesh service mid
// delta-stream: every served mesh must equal a from-scratch surface build
// over the current active set, whether it came from the cache or a
// dirty-region repair, and the cache telemetry must reach /v1/metrics.
func TestServeMeshEndpoint(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	var sum Summary
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", envelopeBody(t, net), http.StatusCreated, &sum)
	pos := net.Positions()
	active := make([]bool, len(pos))
	for i := range active {
		active[i] = true
	}
	cfg := core.Config{}
	diffMeshServed(t, ts.URL, sum.Session, pos, active, net.Radius, cfg)

	rng := rand.New(rand.NewSource(23))
	for batch := 0; batch < 3; batch++ {
		var wire []map[string]any
		for k := 0; k < 3; k++ {
			switch rng.Intn(3) {
			case 0:
				p := geom.V(rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*8-4)
				pos = append(pos, p)
				active = append(active, true)
				wire = append(wire, map[string]any{"op": "join", "pos": map[string]float64{"x": p.X, "y": p.Y, "z": p.Z}})
			case 1:
				id := rng.Intn(len(active))
				for !active[id] {
					id = rng.Intn(len(active))
				}
				p := pos[id].Add(geom.V(rng.Float64()-0.5, rng.Float64()-0.5, rng.Float64()-0.5))
				pos[id] = p
				wire = append(wire, map[string]any{"op": "move", "node": id, "pos": map[string]float64{"x": p.X, "y": p.Y, "z": p.Z}})
			default:
				id := rng.Intn(len(active))
				for !active[id] {
					id = rng.Intn(len(active))
				}
				active[id] = false
				wire = append(wire, map[string]any{"op": "leave", "node": id})
			}
		}
		body, _ := json.Marshal(map[string]any{"deltas": wire})
		doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+sum.Session+"/deltas", body, http.StatusOK, nil)
		diffMeshServed(t, ts.URL, sum.Session, pos, active, net.Radius, cfg)
	}

	// The engine's repair telemetry reached the metrics tiers.
	var mets MetricsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil, http.StatusOK, &mets)
	if got := mets.Global.Counters["mesh_incremental/mesh_repairs"]; got == 0 {
		t.Errorf("global mesh_repairs counter missing: %v", mets.Global.Counters)
	}
	sessView := mets.Sessions[sum.Session]
	if got := sessView.Counters["mesh_incremental/dirty_patch_nodes"]; got == 0 {
		t.Errorf("session dirty_patch_nodes counter missing: %v", sessView.Counters)
	}
	if _, ok := sessView.Latencies[obs.StageMeshInc.String()]; !ok {
		t.Errorf("session latencies missing %s: %v", obs.StageMeshInc, sessView.Latencies)
	}

	// Unknown session: 404.
	doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/nope/mesh", nil, http.StatusNotFound, nil)
}

// TestServeMeshFallbackAndCapability: a measurement-capable detector
// without incremental support serves meshes through the full-recompute
// path; a topology-only detector answers 501.
func TestServeMeshFallbackAndCapability(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	var sv Summary
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions?detector=sv-enclosure", envelopeBody(t, net), http.StatusCreated, &sv)
	pos := net.Positions()
	active := make([]bool, len(pos))
	for i := range active {
		active[i] = true
	}
	cfg := core.Config{Detector: "sv-enclosure"}
	diffMeshServed(t, ts.URL, sv.Session, pos, active, net.Radius, cfg)
	body, _ := json.Marshal(map[string]any{"deltas": []map[string]any{{"op": "leave", "node": 7}}})
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+sv.Session+"/deltas", body, http.StatusOK, nil)
	active[7] = false
	diffMeshServed(t, ts.URL, sv.Session, pos, active, net.Radius, cfg)

	var contour Summary
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions?detector=sv-contour", envelopeBody(t, net), http.StatusCreated, &contour)
	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+contour.Session+"/mesh", nil, http.StatusNotImplemented, nil)
	if !strings.Contains(resp, "topology-only") {
		t.Errorf("501 body %q does not explain the capability gap", resp)
	}
}

// TestServeSessionLifecycle drives the full API end to end: create from
// an envelope, stream delta batches, diff the served result against a
// full recompute after every batch, list, delete.
func TestServeSessionLifecycle(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	var sum Summary
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", envelopeBody(t, net), http.StatusCreated, &sum)
	if sum.Session == "" || sum.Nodes != net.Len() || sum.Active != net.Len() {
		t.Fatalf("create summary wrong: %+v", sum)
	}

	pos := net.Positions()
	active := make([]bool, len(pos))
	for i := range active {
		active[i] = true
	}
	cfg := core.Config{}
	diffServed(t, ts.URL, sum.Session, pos, active, net.Radius, cfg)

	rng := rand.New(rand.NewSource(9))
	applied := int64(0)
	for batch := 0; batch < 4; batch++ {
		var wire []map[string]any
		for k := 0; k < 4; k++ {
			switch rng.Intn(3) {
			case 0:
				p := geom.V(rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*8-4)
				pos = append(pos, p)
				active = append(active, true)
				wire = append(wire, map[string]any{"op": "join", "pos": map[string]float64{"x": p.X, "y": p.Y, "z": p.Z}})
			case 1:
				id := rng.Intn(len(active))
				for !active[id] {
					id = rng.Intn(len(active))
				}
				p := pos[id].Add(geom.V(rng.Float64()-0.5, rng.Float64()-0.5, rng.Float64()-0.5))
				pos[id] = p
				wire = append(wire, map[string]any{"op": "move", "node": id, "pos": map[string]float64{"x": p.X, "y": p.Y, "z": p.Z}})
			default:
				id := rng.Intn(len(active))
				for !active[id] {
					id = rng.Intn(len(active))
				}
				active[id] = false
				wire = append(wire, map[string]any{"op": "leave", "node": id})
			}
		}
		body, _ := json.Marshal(map[string]any{"deltas": wire})
		var resp deltasResponse
		doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+sum.Session+"/deltas", body, http.StatusOK, &resp)
		applied += int64(len(wire))
		if resp.Applied != len(wire) || resp.Summary.DeltasApplied != applied {
			t.Fatalf("batch %d: applied %d/%d, total %d want %d", batch, resp.Applied, len(wire), resp.Summary.DeltasApplied, applied)
		}
		diffServed(t, ts.URL, sum.Session, pos, active, net.Radius, cfg)
	}

	var list struct {
		Sessions []Summary `json:"sessions"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 1 || list.Sessions[0].Session != sum.Session {
		t.Fatalf("list wrong: %+v", list)
	}

	doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+sum.Session, nil, http.StatusOK, nil)
	doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+sum.Session, nil, http.StatusNotFound, nil)

	var health struct {
		OK       bool `json:"ok"`
		Sessions int  `json:"sessions"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, http.StatusOK, &health)
	if !health.OK || health.Sessions != 0 {
		t.Fatalf("health wrong: %+v", health)
	}
}

// TestServeLegacyPayload: creation accepts the raw network JSON the
// pre-envelope exports used.
func TestServeLegacyPayload(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	var sum Summary
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", legacyBody(t, net), http.StatusCreated, &sum)
	if sum.Nodes != net.Len() {
		t.Fatalf("legacy create summary wrong: %+v", sum)
	}
}

// TestServeCreateRejects covers the creation error seams, including the
// trailing-data envelope fix and the negative-parameter config fix — both
// surfaced as 400s at the API boundary instead of deep library behavior.
func TestServeCreateRejects(t *testing.T) {
	net := testNetwork(t)
	env := envelopeBody(t, net)
	wrongTool, _ := json.Marshal(cli.Envelope{Tool: "experiment", Data: json.RawMessage(`{}`)})
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name string
		url  string
		body []byte
		want string
	}{
		{"concatenated envelopes", "/v1/sessions", append(append([]byte{}, env...), env...), "malformed envelope"},
		{"trailing garbage", "/v1/sessions", append(append([]byte{}, env...), []byte("garbage")...), "malformed envelope"},
		{"wrong tool", "/v1/sessions", wrongTool, "envelope from"},
		{"not a network", "/v1/sessions", []byte(`{"tool": "netgen", "data": {"radius": 0}}`), "network payload"},
		{"negative workers", "/v1/sessions?workers=-1", env, "Workers"},
		{"negative shards", "/v1/sessions?shards=-2", env, "Shards"},
		{"non-integer theta", "/v1/sessions?theta=hot", env, "theta"},
	} {
		body := doJSON(t, http.MethodPost, ts.URL+tc.url, tc.body, http.StatusBadRequest, nil)
		if !strings.Contains(body, tc.want) {
			t.Errorf("%s: response %q does not mention %q", tc.name, body, tc.want)
		}
	}
}

// TestServeDeltaRejects covers the delta error seams: validation failures
// report the applied prefix and leave the session consistent.
func TestServeDeltaRejects(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	var sum Summary
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", envelopeBody(t, net), http.StatusCreated, &sum)
	deltasURL := ts.URL + "/v1/sessions/" + sum.Session + "/deltas"

	for _, tc := range []struct {
		name string
		body string
		want string
	}{
		{"empty batch", `{"deltas": []}`, "empty delta batch"},
		{"unknown field", `{"deltas": [], "flush": true}`, "flush"},
		{"unknown op", `{"deltas": [{"op": "explode", "node": 1}]}`, "unknown op"},
		{"join without pos", `{"deltas": [{"op": "join"}]}`, "needs a pos"},
		{"move without pos", `{"deltas": [{"op": "move", "node": 1}]}`, "needs a pos"},
		{"no such node", `{"deltas": [{"op": "leave", "node": 999999}]}`, "no active node"},
		{"non-finite pos", `{"deltas": [{"op": "join", "pos": {"x": 1e999, "y": 0, "z": 0}}]}`, ""},
		{"not json", `deltas!`, "deltas body"},
	} {
		body := doJSON(t, http.MethodPost, deltasURL, []byte(tc.body), http.StatusBadRequest, nil)
		if tc.want != "" && !strings.Contains(body, tc.want) {
			t.Errorf("%s: response %q does not mention %q", tc.name, body, tc.want)
		}
	}

	// Unknown session: both delta and detail routes 404.
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/nope/deltas", []byte(`{"deltas": [{"op": "leave", "node": 1}]}`), http.StatusNotFound, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/nope", nil, http.StatusNotFound, nil)

	// Mid-batch failure: the valid prefix applies, the response reports
	// it, and the session still matches a full recompute.
	var fail errorResponse
	doJSON(t, http.MethodPost, deltasURL,
		[]byte(`{"deltas": [{"op": "leave", "node": 3}, {"op": "leave", "node": 3}, {"op": "leave", "node": 4}]}`),
		http.StatusBadRequest, &fail)
	if fail.Applied != 1 || !strings.Contains(fail.Error, "delta 1") {
		t.Fatalf("partial batch: %+v", fail)
	}
	pos := net.Positions()
	active := make([]bool, len(pos))
	for i := range active {
		active[i] = true
	}
	active[3] = false // only the prefix landed
	diffServed(t, ts.URL, sum.Session, pos, active, net.Radius, core.Config{})
	var det Detail
	doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+sum.Session, nil, http.StatusOK, &det)
	if det.DeltasApplied != 1 {
		t.Fatalf("deltas_applied = %d, want the applied prefix 1", det.DeltasApplied)
	}
}

// TestServeSessionParams: per-session query parameters reach the engine
// (theta=-1 disables IFF, so the boundary grows to the raw UBF verdict).
func TestServeSessionParams(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	var plain, noIFF Summary
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", envelopeBody(t, net), http.StatusCreated, &plain)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions?theta=-1&workers=2", envelopeBody(t, net), http.StatusCreated, &noIFF)
	if noIFF.BoundaryCount < plain.BoundaryCount {
		t.Fatalf("IFF-disabled boundary %d smaller than filtered %d", noIFF.BoundaryCount, plain.BoundaryCount)
	}
	full, err := core.Detect(net, nil, core.Config{IFFThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, b := range full.Boundary {
		if b {
			want++
		}
	}
	if noIFF.BoundaryCount != want {
		t.Fatalf("theta=-1 boundary count %d, library %d", noIFF.BoundaryCount, want)
	}
}

// TestServeMaxSessions: the registry cap turns creation into 429 until a
// session is deleted.
func TestServeMaxSessions(t *testing.T) {
	net := testNetwork(t)
	ts := httptest.NewServer(New(Options{MaxSessions: 2}).Handler())
	defer ts.Close()
	var first Summary
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", envelopeBody(t, net), http.StatusCreated, &first)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", envelopeBody(t, net), http.StatusCreated, nil)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", envelopeBody(t, net), http.StatusTooManyRequests, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+first.Session, nil, http.StatusOK, nil)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", envelopeBody(t, net), http.StatusCreated, nil)
}

// TestServeConcurrentSessions hammers the registry and distinct sessions
// from parallel clients — the race-detector target for the concurrent
// session map (`make race-shard` runs this under -race).
func TestServeConcurrentSessions(t *testing.T) {
	net := testNetwork(t)
	o := &obs.Mem{}
	ts := httptest.NewServer(New(Options{Obs: o}).Handler())
	defer ts.Close()
	env := envelopeBody(t, net)

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("client %d: %s", c, fmt.Sprintf(format, args...))
			}
			res, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(env))
			if err != nil {
				fail("create: %v", err)
				return
			}
			var sum Summary
			err = json.NewDecoder(res.Body).Decode(&sum)
			res.Body.Close()
			if err != nil || res.StatusCode != http.StatusCreated {
				fail("create: status %d err %v", res.StatusCode, err)
				return
			}
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for step := 0; step < 6; step++ {
				p := geom.V(rng.Float64()*8-4, rng.Float64()*8-4, rng.Float64()*8-4)
				body, _ := json.Marshal(map[string]any{"deltas": []map[string]any{
					{"op": "join", "pos": map[string]float64{"x": p.X, "y": p.Y, "z": p.Z}},
				}})
				res, err := http.Post(ts.URL+"/v1/sessions/"+sum.Session+"/deltas", "application/json", bytes.NewReader(body))
				if err != nil {
					fail("deltas: %v", err)
					return
				}
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					fail("deltas: status %d", res.StatusCode)
					return
				}
				res, err = http.Get(ts.URL + "/v1/sessions")
				if err != nil {
					fail("list: %v", err)
					return
				}
				res.Body.Close()
			}
			res2, err := http.Get(ts.URL + "/v1/sessions/" + sum.Session)
			if err != nil {
				fail("get: %v", err)
				return
			}
			res2.Body.Close()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The session counter saw every creation; nothing was deleted.
	if got := o.Total(obs.StageServe, obs.CtrSessions); got != clients {
		t.Errorf("sessions counter = %d, want %d", got, clients)
	}
}

// TestServeMetricsEndpoint: GET /v1/metrics serves the always-on global
// sink (request spans, session counters) plus a private per-session view
// whose delta counts and repair latencies reflect only that session.
func TestServeMetricsEndpoint(t *testing.T) {
	t.Parallel()
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var mr MetricsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil, http.StatusOK, &mr)
	if len(mr.Sessions) != 0 {
		t.Fatalf("fresh server reports sessions: %+v", mr.Sessions)
	}

	var sum Summary
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", envelopeBody(t, testNetwork(t)), http.StatusCreated, &sum)
	body, _ := json.Marshal(map[string]any{"deltas": []map[string]any{
		{"op": "move", "node": 0, "pos": map[string]float64{"x": 0.5, "y": 0.5, "z": 0.5}},
		{"op": "leave", "node": 1},
	}})
	doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+sum.Session+"/deltas", body, http.StatusOK, nil)

	doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil, http.StatusOK, &mr)
	if got := mr.Global.Counters["serve/sessions"]; got != 1 {
		t.Fatalf("global serve/sessions = %d, want 1", got)
	}
	if got := mr.Global.Counters["serve/deltas_applied"]; got != 2 {
		t.Fatalf("global serve/deltas = %d, want 2", got)
	}
	if _, ok := mr.Global.Latencies[obs.StageServe.String()]; !ok {
		t.Fatalf("global latencies missing serve stage: %v", mr.Global.Latencies)
	}
	sessView, ok := mr.Sessions[sum.Session]
	if !ok {
		t.Fatalf("metrics missing session %s: %+v", sum.Session, mr.Sessions)
	}
	if got := sessView.Counters["serve/deltas_applied"]; got != 2 {
		t.Fatalf("session serve/deltas = %d, want 2", got)
	}
	// The incremental engine's repair spans land in the session view.
	if st, ok := sessView.Latencies[obs.StageIncremental.String()]; !ok || st.Count < 2 || st.P50NS <= 0 || st.P99NS < st.P50NS {
		t.Fatalf("session incremental latency summary wrong: %+v (ok=%v)", st, ok)
	}
	// The session's private view must not include request-routing spans.
	if got := sessView.Counters["serve/sessions"]; got != 0 {
		t.Fatalf("session view leaked global sessions counter: %d", got)
	}

	// Server-side accessor agrees with the wire rendering.
	if got := srv.Metrics().Total(obs.StageServe, obs.CtrDeltas); got != 2 {
		t.Fatalf("Metrics() deltas = %d, want 2", got)
	}

	// Deleting the session removes its per-session view. (Decode into a
	// fresh value: Unmarshal merges into an existing map.)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+sum.Session, nil, http.StatusOK, nil)
	mr = MetricsResponse{}
	doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil, http.StatusOK, &mr)
	if len(mr.Sessions) != 0 {
		t.Fatalf("deleted session still reported: %+v", mr.Sessions)
	}
	// No legacy alias: /metrics is 404, not a deprecated twin.
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics = %d, want 404 (no legacy alias)", res.StatusCode)
	}
}
