// Package ranging models the distance-measurement process between
// neighboring nodes. The paper assumes distances estimated by RSSI or TDOA
// and injects "random errors, from 0 to 100% of the radio transmission
// radius" (Sec. IV-A); the models here reproduce that noise process without
// simulating the physical layer itself.
package ranging

import (
	"fmt"
	"math/rand"
)

// Model perturbs a true distance into a measured one. The radio range is
// supplied so error magnitudes can be expressed as a fraction of it, the
// convention used throughout the paper's evaluation.
type Model interface {
	// Measure returns the measured distance for a true distance.
	// Implementations must return a non-negative value.
	Measure(rng *rand.Rand, trueDist, radioRange float64) float64
	// Name identifies the model in experiment tables.
	Name() string
}

// Exact returns true distances unchanged (the paper's 0 % error baseline).
type Exact struct{}

// Measure implements Model.
func (Exact) Measure(_ *rand.Rand, trueDist, _ float64) float64 { return trueDist }

// Name implements Model.
func (Exact) Name() string { return "exact" }

// UniformAdditive perturbs distances by an error drawn uniformly from
// [-Fraction·R, +Fraction·R], where R is the radio range — the paper's
// primary error model ("x% distance measurement error" means
// Fraction = x/100). Results are clamped at zero.
type UniformAdditive struct {
	// Fraction is the maximum error magnitude as a fraction of the
	// radio range, in [0, 1] for the paper's sweeps.
	Fraction float64
}

// Measure implements Model.
func (m UniformAdditive) Measure(rng *rand.Rand, trueDist, radioRange float64) float64 {
	err := (2*rng.Float64() - 1) * m.Fraction * radioRange
	d := trueDist + err
	if d < 0 {
		return 0
	}
	return d
}

// Name implements Model.
func (m UniformAdditive) Name() string {
	return fmt.Sprintf("uniform-additive(%.0f%%)", m.Fraction*100)
}

// UniformMultiplicative perturbs distances by a relative error drawn
// uniformly from [-Fraction, +Fraction] of the true distance — a common
// RSSI-style alternative where error grows with distance.
type UniformMultiplicative struct {
	Fraction float64
}

// Measure implements Model.
func (m UniformMultiplicative) Measure(rng *rand.Rand, trueDist, _ float64) float64 {
	d := trueDist * (1 + (2*rng.Float64()-1)*m.Fraction)
	if d < 0 {
		return 0
	}
	return d
}

// Name implements Model.
func (m UniformMultiplicative) Name() string {
	return fmt.Sprintf("uniform-multiplicative(%.0f%%)", m.Fraction*100)
}

// GaussianAdditive perturbs distances by zero-mean Gaussian noise with
// standard deviation Sigma·R. Offered for sensitivity studies beyond the
// paper's uniform model. Results are clamped at zero.
type GaussianAdditive struct {
	Sigma float64
}

// Measure implements Model.
func (m GaussianAdditive) Measure(rng *rand.Rand, trueDist, radioRange float64) float64 {
	d := trueDist + rng.NormFloat64()*m.Sigma*radioRange
	if d < 0 {
		return 0
	}
	return d
}

// Name implements Model.
func (m GaussianAdditive) Name() string {
	return fmt.Sprintf("gaussian-additive(σ=%.2f)", m.Sigma)
}

// ForFraction returns the paper's error model at the given error fraction:
// Exact at zero, UniformAdditive otherwise.
func ForFraction(fraction float64) Model {
	if fraction == 0 {
		return Exact{}
	}
	return UniformAdditive{Fraction: fraction}
}
