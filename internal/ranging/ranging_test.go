package ranging

import (
	"math"
	"math/rand"
	"testing"
)

func TestExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Exact{}
	for i := 0; i < 100; i++ {
		d := rng.Float64() * 10
		if got := m.Measure(rng, d, 1); got != d {
			t.Fatalf("Exact changed %v to %v", d, got)
		}
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestUniformAdditiveBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const radio = 2.0
	m := UniformAdditive{Fraction: 0.3}
	sawLow, sawHigh := false, false
	for i := 0; i < 20000; i++ {
		d := rng.Float64() * radio
		got := m.Measure(rng, d, radio)
		if got < 0 {
			t.Fatalf("negative measurement %v", got)
		}
		diff := got - d
		if diff > 0.3*radio+1e-12 {
			t.Fatalf("error %v exceeds bound", diff)
		}
		// The lower side can be clamped at zero, so only check when
		// no clamping applied.
		if got > 0 && diff < -0.3*radio-1e-12 {
			t.Fatalf("error %v below bound", diff)
		}
		if diff > 0.25*radio {
			sawHigh = true
		}
		if diff < -0.25*radio && got > 0 {
			sawLow = true
		}
	}
	if !sawLow || !sawHigh {
		t.Error("error distribution does not span its range")
	}
}

func TestUniformAdditiveClampsAtZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := UniformAdditive{Fraction: 1.0}
	for i := 0; i < 1000; i++ {
		if got := m.Measure(rng, 0.01, 1); got < 0 {
			t.Fatalf("negative measurement %v", got)
		}
	}
}

func TestUniformAdditiveMeanUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := UniformAdditive{Fraction: 0.2}
	const trueDist, radio = 0.7, 1.0
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += m.Measure(rng, trueDist, radio)
	}
	mean := sum / n
	if math.Abs(mean-trueDist) > 0.002 {
		t.Errorf("mean measurement %v, want ≈ %v", mean, trueDist)
	}
}

func TestUniformMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := UniformMultiplicative{Fraction: 0.5}
	for i := 0; i < 10000; i++ {
		d := 0.1 + rng.Float64()
		got := m.Measure(rng, d, 1)
		if got < 0.5*d-1e-12 || got > 1.5*d+1e-12 {
			t.Fatalf("measurement %v outside [%v, %v]", got, 0.5*d, 1.5*d)
		}
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestGaussianAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := GaussianAdditive{Sigma: 0.1}
	var sum, sum2 float64
	const trueDist, n = 5.0, 50000
	for i := 0; i < n; i++ {
		got := m.Measure(rng, trueDist, 1)
		if got < 0 {
			t.Fatalf("negative measurement %v", got)
		}
		sum += got
		sum2 += got * got
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-trueDist) > 0.01 {
		t.Errorf("mean = %v, want ≈ %v", mean, trueDist)
	}
	if math.Abs(std-0.1) > 0.01 {
		t.Errorf("std = %v, want ≈ 0.1", std)
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestForFraction(t *testing.T) {
	if _, ok := ForFraction(0).(Exact); !ok {
		t.Error("ForFraction(0) should be Exact")
	}
	m, ok := ForFraction(0.4).(UniformAdditive)
	if !ok || m.Fraction != 0.4 {
		t.Errorf("ForFraction(0.4) = %#v", m)
	}
}

func TestUniformAdditiveZeroFractionIsNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := UniformAdditive{Fraction: 0}
	for i := 0; i < 100; i++ {
		d := rng.Float64()
		if got := m.Measure(rng, d, 1); got != d {
			t.Fatalf("zero-fraction model changed %v to %v", d, got)
		}
	}
}
