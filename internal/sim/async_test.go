package sim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestAsyncKernelRequiresHandlers(t *testing.T) {
	k := AsyncKernel[int]{}
	if _, err := k.Run(); err == nil {
		t.Error("expected error for missing G/OnMessage")
	}
}

func TestAsyncKernelDeterministicPerSeed(t *testing.T) {
	g := pathGraph(6)
	trace := func(seed int64) []int {
		var order []int
		k := AsyncKernel[int]{
			G:    g,
			Seed: seed,
			Init: func(id int, out *Outbox[int]) {
				if id == 0 {
					out.Broadcast(0)
				}
			},
			OnMessage: func(id int, env Envelope[int], out *Outbox[int]) {
				order = append(order, id)
				if env.Msg < 4 { // bounded relay
					out.Broadcast(env.Msg + 1)
				}
			},
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestAsyncKernelEventBudget(t *testing.T) {
	g := ringGraph(4)
	k := AsyncKernel[int]{
		G:         g,
		MaxEvents: 50,
		Init: func(id int, out *Outbox[int]) {
			out.Broadcast(0)
		},
		OnMessage: func(id int, env Envelope[int], out *Outbox[int]) {
			out.Broadcast(0) // infinite ping-pong
		},
	}
	if _, err := k.Run(); !errors.Is(err, ErrEventBudget) {
		t.Errorf("err = %v, want ErrEventBudget", err)
	}
}

// The core asynchrony result: both flooding protocols converge to exactly
// the synchronous outcome under arbitrary delays.
func TestAsyncMatchesSyncOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 12; trial++ {
		n := 20 + rng.Intn(40)
		g := graph.New(n)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		for i := range g.Adj {
			sortInts(g.Adj[i])
		}
		member := make([]bool, n)
		for i := range member {
			member[i] = rng.Float64() < 0.7
		}
		ttl := 1 + rng.Intn(3)

		syncCounts, err := FloodCount(g, member, ttl)
		if err != nil {
			t.Fatal(err)
		}
		asyncCounts, _, err := AsyncFloodCount(g, member, ttl, int64(trial), Probe{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range syncCounts {
			if syncCounts[i] != asyncCounts[i] {
				t.Fatalf("trial %d: flood count differs at node %d: sync %d, async %d",
					trial, i, syncCounts[i], asyncCounts[i])
			}
		}

		syncLabels, err := LabelComponents(g, member)
		if err != nil {
			t.Fatal(err)
		}
		asyncLabels, _, err := AsyncLabelComponents(g, member, int64(trial)*31, Probe{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range syncLabels {
			if syncLabels[i] != asyncLabels[i] {
				t.Fatalf("trial %d: label differs at node %d: sync %d, async %d",
					trial, i, syncLabels[i], asyncLabels[i])
			}
		}
	}
}

func TestAsyncVirtualTimeAdvances(t *testing.T) {
	g := pathGraph(10)
	member := allTrue(10)
	_, res, err := AsyncFloodCount(g, member, 3, 1, Probe{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 || res.VirtualTime <= 0 {
		t.Errorf("async stats: %+v", res)
	}
	// Larger MaxDelay stretches virtual time (same message structure).
	k := AsyncKernel[int]{
		G:        g,
		Seed:     2,
		MaxDelay: 10,
		Init: func(id int, out *Outbox[int]) {
			if id == 0 {
				out.Broadcast(1)
			}
		},
		OnMessage: func(id int, env Envelope[int], out *Outbox[int]) {},
	}
	slow, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if slow.VirtualTime <= 0 {
		t.Errorf("virtual time = %v", slow.VirtualTime)
	}
}
