package sim

import (
	"sort"
	"testing"

	"repro/internal/graph"
)

// FuzzFaultedDelivery asserts the kernel's delivery invariants under
// arbitrary fault plans: a message is only ever handed to a node from a
// direct neighbor, never to a node that has crashed, never to a
// non-participant, and the flood still quiesces. Run with
// `go test -fuzz=FuzzFaultedDelivery ./internal/sim` to explore beyond
// the seed corpus; the seeds alone run as a regular test.
func FuzzFaultedDelivery(f *testing.F) {
	f.Add(int64(1), uint8(8), uint16(0xACE1), 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(int64(7), uint8(12), uint16(0xBEEF), 0.5, 0.3, 0.4, 0.2, 0.3)
	f.Add(int64(42), uint8(20), uint16(0x1234), 1.0, 0.0, 0.0, 1.0, 1.0)
	f.Add(int64(-3), uint8(5), uint16(0), 0.1, 0.9, 0.9, 0.05, 0.8)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, edgeBits uint16,
		drop, dup, delay, crash, part float64) {
		for _, r := range []float64{drop, dup, delay, crash, part} {
			if r < 0 || r > 1 {
				t.Skip()
			}
		}
		n := 4 + int(nRaw)%17 // 4..20 nodes
		g := graph.New(n)
		// Ring backbone keeps the graph connected; edgeBits adds chords.
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		bits := edgeBits
		for bits != 0 {
			u := int(bits) % n
			v := int(bits>>4) % n
			if u != v {
				g.AddEdge(u, v)
			}
			bits >>= 3
		}
		for i := range g.Adj {
			sort.Ints(g.Adj[i])
		}

		member := make([]bool, n)
		for i := range member {
			member[i] = (uint(seed)>>uint(i%32))&1 == 0 || i%3 == 0
		}
		plan := NewFaultPlan(FaultConfig{
			Seed:          seed,
			DropRate:      drop,
			DuplicateRate: dup * 0.5,
			DelayRate:     delay,
			MaxExtraDelay: 2,
			CrashRate:     crash * 0.5,
			CrashSpan:     4,
			PartitionFrac: part * 0.5,
			PartitionSpan: 4,
		}, n)

		isNeighbor := func(node, from int) bool {
			adj := g.Adj[node]
			j := sort.SearchInts(adj, from)
			return j < len(adj) && adj[j] == from
		}

		var k Kernel[floodMsg]
		k = Kernel[floodMsg]{
			G: g,
			// Extra delays stretch a TTL-2 flood well past the default
			// budget of n+1 rounds; give it ample room.
			MaxRounds:    64 + 8*n,
			Participates: func(i int) bool { return member[i] },
			Faults:       plan,
			Init: func(id int, out *Outbox[floodMsg]) {
				out.Broadcast(floodMsg{origin: id, ttl: 2})
			},
			OnReceive: func(id int, inbox []Envelope[floodMsg], out *Outbox[floodMsg]) {
				if !member[id] {
					t.Fatalf("non-participant %d received messages", id)
				}
				if plan.CrashedAt(id, k.Round()) {
					t.Fatalf("node %d received at round %d after crashing at step %d",
						id, k.Round(), plan.CrashStep(id))
				}
				for i, env := range inbox {
					if !isNeighbor(id, env.From) {
						t.Fatalf("node %d received from non-neighbor %d", id, env.From)
					}
					if !member[env.From] {
						t.Fatalf("non-participant %d sent a message", env.From)
					}
					if i > 0 {
						prev := inbox[i-1]
						if prev.From > env.From ||
							(prev.From == env.From && prev.SentStep() > env.SentStep()) ||
							(prev.From == env.From && prev.SentStep() == env.SentStep() && prev.Seq() >= env.Seq()) {
							t.Fatalf("inbox not totally ordered at %d: (%d,%d,%d) before (%d,%d,%d)",
								i, prev.From, prev.SentStep(), prev.Seq(), env.From, env.SentStep(), env.Seq())
						}
					}
					if env.Msg.ttl > 1 {
						out.Broadcast(floodMsg{origin: env.Msg.origin, ttl: env.Msg.ttl - 1})
					}
				}
			},
		}
		if _, err := k.Run(); err != nil {
			t.Fatalf("bounded flood must quiesce: %v", err)
		}

		// Same invariants on the event-driven kernel, with a fresh plan so
		// the budget state is independent of the sync run.
		plan2 := NewFaultPlan(plan.Config(), n)
		var ak AsyncKernel[floodMsg]
		ak = AsyncKernel[floodMsg]{
			G:            g,
			Seed:         seed,
			Participates: func(i int) bool { return member[i] },
			Faults:       plan2,
			Init: func(id int, out *Outbox[floodMsg]) {
				out.Broadcast(floodMsg{origin: id, ttl: 2})
			},
			OnMessage: func(id int, env Envelope[floodMsg], out *Outbox[floodMsg]) {
				if !member[id] {
					t.Fatalf("async: non-participant %d received", id)
				}
				if plan2.CrashedAt(id, ak.Step()) {
					t.Fatalf("async: node %d received at step %d after crash step %d",
						id, ak.Step(), plan2.CrashStep(id))
				}
				if !isNeighbor(id, env.From) {
					t.Fatalf("async: node %d received from non-neighbor %d", id, env.From)
				}
				if env.Msg.ttl > 1 {
					out.Broadcast(floodMsg{origin: env.Msg.origin, ttl: env.Msg.ttl - 1})
				}
			},
		}
		if _, err := ak.Run(); err != nil {
			t.Fatalf("async bounded flood must quiesce: %v", err)
		}
	})
}
