package sim

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// FaultConfig declaratively describes a fault environment for the
// message-passing kernels: random message loss, duplication, extra
// latency, node crashes, and a temporary network partition. The zero
// value injects nothing — a kernel given a zero-config plan (or no plan
// at all) behaves exactly like the perfect-delivery seed kernels.
//
// All faults are drawn deterministically from Seed, so a run under a
// given config is exactly reproducible (see FaultPlan).
type FaultConfig struct {
	// Seed drives every fault decision. Two plans with the same config
	// make identical decisions for identical delivery sequences.
	Seed int64

	// DropRate is the per-delivery probability that a message is lost.
	DropRate float64
	// MaxDropsPerLink caps how many messages each directed link may
	// lose in total; 0 means unbounded. With a cap K, any packet
	// retransmitted at least K times is guaranteed through — the bound
	// behind the hardened protocols' exactness guarantee (see
	// ReliableFloodCount).
	MaxDropsPerLink int

	// DuplicateRate is the per-delivery probability that one extra copy
	// of the message is injected (with its own latency draw).
	DuplicateRate float64

	// DelayRate is the per-delivery probability that the message is
	// held back by extra latency.
	DelayRate float64
	// MaxExtraDelay bounds the extra latency: uniformly 1..MaxExtraDelay
	// rounds under Kernel, 1..MaxExtraDelay delay units under
	// AsyncKernel. Zero means 1.
	MaxExtraDelay int

	// CrashRate is the per-node probability that the node crashes
	// mid-protocol: from its crash step on it processes nothing, sends
	// nothing, and deliveries to it are discarded.
	CrashRate float64
	// CrashSpan bounds when crashes occur: each crashing node stops at
	// a step drawn uniformly from 1..CrashSpan (rounds under Kernel,
	// delivered-message count under AsyncKernel). Zero means 8.
	CrashSpan int

	// PartitionFrac places that fraction of the nodes on the minority
	// side of a network split; while the partition window is open,
	// messages crossing the split are dropped. Zero disables.
	PartitionFrac float64
	// PartitionFrom and PartitionSpan delimit the window: steps in
	// [PartitionFrom, PartitionFrom+PartitionSpan). A zero span with a
	// nonzero PartitionFrac means 8.
	PartitionFrom, PartitionSpan int
}

// Enabled reports whether the config injects any fault at all.
func (c FaultConfig) Enabled() bool {
	return c.DropRate > 0 || c.DuplicateRate > 0 || c.DelayRate > 0 ||
		c.CrashRate > 0 || c.PartitionFrac > 0
}

// withDefaults normalizes the zero-means-default fields.
func (c FaultConfig) withDefaults() FaultConfig {
	if c.MaxExtraDelay == 0 {
		c.MaxExtraDelay = 1
	}
	if c.CrashSpan == 0 {
		c.CrashSpan = 8
	}
	if c.PartitionSpan == 0 {
		c.PartitionSpan = 8
	}
	return c
}

// FaultStats counts what a fault plan (and the hardened protocols running
// over it) did during one execution.
type FaultStats struct {
	// Attempts is the number of sends presented to the fault layer.
	Attempts int
	// Delivered counts envelopes actually handed to protocol handlers.
	Delivered int
	// Dropped counts deliveries lost to random loss.
	Dropped int
	// CrashDrops counts deliveries discarded because the receiver had
	// crashed by delivery time.
	CrashDrops int
	// PartitionDrops counts deliveries lost crossing an open partition.
	PartitionDrops int
	// Duplicated counts extra copies the fault layer injected.
	Duplicated int
	// Delayed counts deliveries given extra latency.
	Delayed int
	// Crashed is the number of nodes the plan crashes.
	Crashed int

	// Retransmits, Acks, and Abandoned are protocol-level counters
	// filled by the hardened variants (ReliableFloodCount and friends):
	// packets re-sent after an acknowledgment timeout, acknowledgments
	// processed, and packets given up on after the retransmit budget.
	Retransmits int
	Acks        int
	Abandoned   int
}

// Add accumulates another run's counters into s.
func (s *FaultStats) Add(o FaultStats) {
	s.Attempts += o.Attempts
	s.Delivered += o.Delivered
	s.Dropped += o.Dropped
	s.CrashDrops += o.CrashDrops
	s.PartitionDrops += o.PartitionDrops
	s.Duplicated += o.Duplicated
	s.Delayed += o.Delayed
	s.Crashed += o.Crashed
	s.Retransmits += o.Retransmits
	s.Acks += o.Acks
	s.Abandoned += o.Abandoned
}

// TotalDropped sums every kind of lost delivery.
func (s FaultStats) TotalDropped() int {
	return s.Dropped + s.CrashDrops + s.PartitionDrops
}

// EmitObs mirrors the stats onto an observer as message-accounting
// counters under the given stage — the one source of truth both the
// kernels and core.DetectContext use. Nil-safe; zero counters stay silent.
func (s FaultStats) EmitObs(o obs.Observer, stage obs.Stage) {
	if o == nil {
		return
	}
	obs.Add(o, stage, obs.CtrMsgsSent, int64(s.Attempts))
	obs.Add(o, stage, obs.CtrMsgsDelivered, int64(s.Delivered))
	obs.Add(o, stage, obs.CtrMsgsDropped, int64(s.TotalDropped()))
	obs.Add(o, stage, obs.CtrMsgsDuplicated, int64(s.Duplicated))
	obs.Add(o, stage, obs.CtrMsgsRetransmitted, int64(s.Retransmits))
	obs.Add(o, stage, obs.CtrMsgsAcked, int64(s.Acks))
	obs.Add(o, stage, obs.CtrMsgsAbandoned, int64(s.Abandoned))
}

// Starved reports whether fault losses may have kept the protocol from
// the lossless outcome: either a hardened protocol exhausted a packet's
// retransmit budget (Abandoned), or deliveries were lost with no
// retransmission layer present to recover them. A run that quiesced
// with Starved() == false and no crashes reached the same state a
// lossless execution would.
func (s FaultStats) Starved() bool {
	if s.Abandoned > 0 {
		return true
	}
	return s.TotalDropped() > 0 && s.Retransmits == 0 && s.Acks == 0
}

// Fate is the fault layer's verdict on one send.
type Fate struct {
	// Drop loses the delivery entirely.
	Drop bool
	// Duplicate injects one extra copy of the message.
	Duplicate bool
	// ExtraDelay holds the original copy back by that many extra steps.
	ExtraDelay int
	// DupExtraDelay holds the duplicate copy back independently.
	DupExtraDelay int
}

// FaultPlan is a seeded, deterministic realization of a FaultConfig that
// the kernels consult per delivery. Every decision is a pure function of
// (seed, sender, receiver, sequence number) — plus a per-link drop
// budget when MaxDropsPerLink is set — so replaying the same protocol
// under the same plan yields an identical delivery trace. A nil plan
// (or a plan of a zero config) is perfect delivery.
//
// A plan carries run counters; use one plan per kernel execution.
type FaultPlan struct {
	cfg       FaultConfig
	enabled   bool
	crashStep []int  // per node; -1 = never
	minority  []bool // partition side assignment
	dropsLeft map[[2]int]int
	stats     FaultStats
}

// hash salts keeping the independent decision streams uncorrelated.
const (
	saltDrop uint64 = iota + 1
	saltDup
	saltDelay
	saltDelayAmt
	saltDupDelay
	saltCrash
	saltCrashStep
	saltSide
)

// NewFaultPlan realizes a config over an n-node network, fixing each
// node's crash step and partition side up front.
func NewFaultPlan(cfg FaultConfig, n int) *FaultPlan {
	cfg = cfg.withDefaults()
	p := &FaultPlan{
		cfg:       cfg,
		enabled:   cfg.Enabled(),
		crashStep: make([]int, n),
		minority:  make([]bool, n),
	}
	if cfg.MaxDropsPerLink > 0 {
		p.dropsLeft = make(map[[2]int]int)
	}
	for i := 0; i < n; i++ {
		p.crashStep[i] = -1
		if cfg.CrashRate > 0 && p.u01(saltCrash, uint64(i), 0, 0) < cfg.CrashRate {
			p.crashStep[i] = 1 + int(p.u01(saltCrashStep, uint64(i), 0, 0)*float64(cfg.CrashSpan))
			p.stats.Crashed++
		}
		if cfg.PartitionFrac > 0 {
			p.minority[i] = p.u01(saltSide, uint64(i), 0, 0) < cfg.PartitionFrac
		}
	}
	return p
}

// Config returns the normalized config the plan realizes.
func (p *FaultPlan) Config() FaultConfig {
	if p == nil {
		return FaultConfig{}
	}
	return p.cfg
}

// splitmix64 is the SplitMix64 finalizer — a fast, well-mixed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 derives a uniform [0,1) draw from the seed and the given parts.
func (p *FaultPlan) u01(salt, a, b, c uint64) float64 {
	h := splitmix64(uint64(p.cfg.Seed) ^ salt<<56)
	h = splitmix64(h ^ a)
	h = splitmix64(h ^ b<<1)
	h = splitmix64(h ^ c<<2)
	return float64(h>>11) / (1 << 53)
}

// CrashStep returns the step at which the plan crashes the node, or -1
// if it never does.
func (p *FaultPlan) CrashStep(node int) int {
	if p == nil || node >= len(p.crashStep) {
		return -1
	}
	return p.crashStep[node]
}

// CrashedAt reports whether the node has crashed by the given step.
func (p *FaultPlan) CrashedAt(node, step int) bool {
	s := p.CrashStep(node)
	return s >= 0 && step >= s
}

// partitioned reports whether the link from→to is severed at the step.
func (p *FaultPlan) partitioned(from, to, step int) bool {
	if p.cfg.PartitionFrac <= 0 {
		return false
	}
	if step < p.cfg.PartitionFrom || step >= p.cfg.PartitionFrom+p.cfg.PartitionSpan {
		return false
	}
	return p.minority[from] != p.minority[to]
}

// consumeDrop spends one unit of the link's drop budget, reporting
// whether the drop may happen.
func (p *FaultPlan) consumeDrop(from, to int) bool {
	if p.cfg.MaxDropsPerLink <= 0 {
		return true
	}
	key := [2]int{from, to}
	left, seen := p.dropsLeft[key]
	if !seen {
		left = p.cfg.MaxDropsPerLink
	}
	if left <= 0 {
		return false
	}
	p.dropsLeft[key] = left - 1
	return true
}

// Deliver decides the fate of one send attempt. seq is the kernel-wide
// send sequence number and step the sender's current step (round under
// Kernel, delivered-message count under AsyncKernel). Nil-safe: a nil
// plan delivers everything untouched.
func (p *FaultPlan) Deliver(from, to, seq, step int) Fate {
	if p == nil {
		return Fate{}
	}
	p.stats.Attempts++
	if !p.enabled {
		return Fate{}
	}
	if step < 0 {
		step = 0
	}
	if p.partitioned(from, to, step) {
		p.stats.PartitionDrops++
		return Fate{Drop: true}
	}
	f, t, q := uint64(from), uint64(to), uint64(seq)
	if p.cfg.DropRate > 0 && p.u01(saltDrop, f, t, q) < p.cfg.DropRate && p.consumeDrop(from, to) {
		p.stats.Dropped++
		return Fate{Drop: true}
	}
	var fate Fate
	if p.cfg.DuplicateRate > 0 && p.u01(saltDup, f, t, q) < p.cfg.DuplicateRate {
		fate.Duplicate = true
		p.stats.Duplicated++
	}
	if p.cfg.DelayRate > 0 {
		if p.u01(saltDelay, f, t, q) < p.cfg.DelayRate {
			fate.ExtraDelay = 1 + int(p.u01(saltDelayAmt, f, t, q)*float64(p.cfg.MaxExtraDelay))
			if fate.ExtraDelay > p.cfg.MaxExtraDelay {
				fate.ExtraDelay = p.cfg.MaxExtraDelay
			}
			p.stats.Delayed++
		}
		if fate.Duplicate && p.u01(saltDupDelay, f, t, q) < p.cfg.DelayRate {
			fate.DupExtraDelay = 1 + int(p.u01(saltDupDelay, q, f, t)*float64(p.cfg.MaxExtraDelay))
			if fate.DupExtraDelay > p.cfg.MaxExtraDelay {
				fate.DupExtraDelay = p.cfg.MaxExtraDelay
			}
		}
	}
	return fate
}

// Stats snapshots the plan's counters; zero for a nil plan.
func (p *FaultPlan) Stats() FaultStats {
	if p == nil {
		return FaultStats{}
	}
	return p.stats
}

func (p *FaultPlan) noteDelivered(n int) {
	if p != nil {
		p.stats.Delivered += n
	}
}

func (p *FaultPlan) noteCrashDrop() {
	if p != nil {
		p.stats.CrashDrops++
	}
}

func (p *FaultPlan) noteRetransmit() {
	if p != nil {
		p.stats.Retransmits++
	}
}

func (p *FaultPlan) noteAck() {
	if p != nil {
		p.stats.Acks++
	}
}

func (p *FaultPlan) noteAbandoned() {
	if p != nil {
		p.stats.Abandoned++
	}
}

// QuiescenceError is returned when a kernel exhausts its round or event
// budget with work still pending. It wraps the matching sentinel
// (ErrNoQuiescence for Kernel, ErrEventBudget for AsyncKernel), so
// errors.Is against those still works, and carries the diagnostics that
// distinguish a protocol that genuinely diverges from one starved by
// injected faults.
type QuiescenceError struct {
	// Base is the sentinel this error wraps.
	Base error
	// Steps is the budget spent: rounds under Kernel, events under
	// AsyncKernel.
	Steps int
	// InFlight counts deliveries still queued when the budget ran out.
	InFlight int
	// PendingTimers counts timers still armed.
	PendingTimers int
	// Faults snapshots the fault layer's counters (zero without a plan).
	Faults FaultStats
}

// Error implements error.
func (e *QuiescenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v (steps=%d in-flight=%d timers=%d", e.Base, e.Steps, e.InFlight, e.PendingTimers)
	if d := e.Faults.TotalDropped(); d > 0 {
		fmt.Fprintf(&b, "; starved by faults: dropped=%d crash-dropped=%d partition-dropped=%d abandoned=%d",
			e.Faults.Dropped, e.Faults.CrashDrops, e.Faults.PartitionDrops, e.Faults.Abandoned)
	} else {
		b.WriteString("; no fault losses — the protocol itself does not converge")
	}
	b.WriteString(")")
	return b.String()
}

// Unwrap exposes the wrapped sentinel to errors.Is.
func (e *QuiescenceError) Unwrap() error { return e.Base }

// StarvedByFaults reports whether fault losses are a plausible cause of
// the missed quiescence.
func (e *QuiescenceError) StarvedByFaults() bool { return e.Faults.TotalDropped() > 0 }
