package sim

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// TestZeroFaultPlanMatchesSeedBehavior: a plan realizing the zero config
// must leave both kernels' results byte-identical to running without one.
func TestZeroFaultPlanMatchesSeedBehavior(t *testing.T) {
	g := pathGraph(9)
	member := allTrue(9)

	plain, plainRes, err := FloodCountStats(g, member, 3, Probe{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]map[int]bool, 9)
	k := Kernel[floodMsg]{
		G:      g,
		Faults: NewFaultPlan(FaultConfig{}, 9),
		Init: func(id int, out *Outbox[floodMsg]) {
			seen[id] = map[int]bool{id: true}
			out.Broadcast(floodMsg{origin: id, ttl: 2})
		},
		OnReceive: func(id int, inbox []Envelope[floodMsg], out *Outbox[floodMsg]) {
			for _, env := range inbox {
				if seen[id][env.Msg.origin] {
					continue
				}
				seen[id][env.Msg.origin] = true
				if env.Msg.ttl > 0 {
					out.Broadcast(floodMsg{origin: env.Msg.origin, ttl: env.Msg.ttl - 1})
				}
			}
		},
		MaxRounds: 4,
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != plainRes.Rounds || res.Messages != plainRes.Messages {
		t.Errorf("zero plan changed execution: %+v vs %+v", res, plainRes)
	}
	for i := range plain {
		if len(seen[i]) != plain[i] {
			t.Errorf("node %d: %d origins, want %d", i, len(seen[i]), plain[i])
		}
	}
	if res.Faults.Delivered != res.Messages || res.Faults.TotalDropped() != 0 {
		t.Errorf("zero plan counted faults: %+v", res.Faults)
	}

	// Async: a zero plan must not perturb the delay stream either.
	base, baseRes, err := AsyncFloodCount(g, member, 3, 11, Probe{})
	if err != nil {
		t.Fatal(err)
	}
	counts, withRes, err := asyncFloodCountFaulted(g, member, 3, 11, NewFaultPlan(FaultConfig{}, 9))
	if err != nil {
		t.Fatal(err)
	}
	if withRes.Messages != baseRes.Messages || withRes.VirtualTime != baseRes.VirtualTime {
		t.Errorf("zero plan changed async trace: %+v vs %+v", withRes, baseRes)
	}
	for i := range base {
		if counts[i] != base[i] {
			t.Errorf("async counts differ at %d: %d vs %d", i, counts[i], base[i])
		}
	}
}

// asyncFloodCountFaulted is AsyncFloodCount with a fault plan attached —
// the unreliable protocol under faults, used by tests.
func asyncFloodCountFaulted(g *graph.Graph, member []bool, ttl int, seed int64, plan *FaultPlan) ([]int, AsyncResult, error) {
	n := g.Len()
	bestTTL := make([]map[int]int, n)
	k := AsyncKernel[floodMsg]{
		G:            g,
		Participates: graph.InSet(member),
		Seed:         seed,
		Faults:       plan,
		Init: func(id int, out *Outbox[floodMsg]) {
			bestTTL[id] = map[int]int{id: ttl}
			if ttl > 0 {
				out.Broadcast(floodMsg{origin: id, ttl: ttl - 1})
			}
		},
		OnMessage: func(id int, env Envelope[floodMsg], out *Outbox[floodMsg]) {
			prev, seen := bestTTL[id][env.Msg.origin]
			if seen && prev >= env.Msg.ttl {
				return
			}
			bestTTL[id][env.Msg.origin] = env.Msg.ttl
			if env.Msg.ttl > 0 {
				out.Broadcast(floodMsg{origin: env.Msg.origin, ttl: env.Msg.ttl - 1})
			}
		},
	}
	res, err := k.Run()
	if err != nil {
		return nil, res, err
	}
	counts := make([]int, n)
	for i, m := range bestTTL {
		counts[i] = len(m)
	}
	return counts, res, nil
}

// TestDropAllStarvesFlood: with every delivery lost, a flood hears only
// itself, and the counters say why.
func TestDropAllStarvesFlood(t *testing.T) {
	g := pathGraph(6)
	plan := NewFaultPlan(FaultConfig{Seed: 1, DropRate: 1}, 6)
	seen := make([]int, 6)
	k := Kernel[floodMsg]{
		G:      g,
		Faults: plan,
		Init: func(id int, out *Outbox[floodMsg]) {
			seen[id] = 1
			out.Broadcast(floodMsg{origin: id, ttl: 2})
		},
		OnReceive: func(id int, inbox []Envelope[floodMsg], out *Outbox[floodMsg]) {
			seen[id] += len(inbox)
		},
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if s != 1 {
			t.Errorf("node %d heard %d, want 1 (self only)", i, s)
		}
	}
	if res.Messages != 0 {
		t.Errorf("messages = %d, want 0", res.Messages)
	}
	if res.Faults.Dropped == 0 || res.Faults.Delivered != 0 {
		t.Errorf("counters: %+v", res.Faults)
	}
	if !res.Faults.Starved() {
		t.Error("total loss not reported as starvation")
	}
}

// TestDuplicatesAreTotallyOrdered is the regression test for the inbox
// tie-break: duplicated messages from the same sender used to have
// unspecified relative order; the order is now total over
// (sender, send round, sequence) — so two distinct messages sent
// back-to-back arrive, with their duplicates, in send order.
func TestDuplicatesAreTotallyOrdered(t *testing.T) {
	g := pathGraph(2)
	run := func() []int {
		plan := NewFaultPlan(FaultConfig{Seed: 3, DuplicateRate: 1}, 2)
		var got []int
		var seqs []int
		k := Kernel[int]{
			G:      g,
			Faults: plan,
			Init: func(id int, out *Outbox[int]) {
				if id == 0 {
					out.Send(1, 10)
					out.Send(1, 20)
				}
			},
			OnReceive: func(id int, inbox []Envelope[int], out *Outbox[int]) {
				for _, env := range inbox {
					got = append(got, env.Msg)
					seqs = append(seqs, env.Seq())
				}
			},
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("inbox sequence not increasing: %v", seqs)
			}
		}
		return got
	}
	first := run()
	want := []int{10, 10, 20, 20}
	if len(first) != len(want) {
		t.Fatalf("delivered %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("delivered %v, want %v (duplicates must sort by send sequence)", first, want)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged: %v vs %v", first, second)
		}
	}
}

// TestDelayedDeliveryMetadata: fault-delayed messages arrive late but
// keep their send-step metadata, and the delay counter tracks them.
func TestDelayedDeliveryMetadata(t *testing.T) {
	g := pathGraph(2)
	// DelayRate 1 with MaxExtraDelay 1 delays every delivery by exactly
	// one extra round; messages still arrive in send order.
	plan := NewFaultPlan(FaultConfig{Seed: 5, DelayRate: 1, MaxExtraDelay: 1}, 2)
	var rounds []int
	k := Kernel[int]{
		G:      g,
		Faults: plan,
		Init: func(id int, out *Outbox[int]) {
			if id == 0 {
				out.Send(1, 0)
				out.SetTimer(1)
			}
		},
		OnTimer: func(id int, out *Outbox[int]) {
			if id == 0 {
				out.Send(1, 1)
			}
		},
		OnReceive: func(id int, inbox []Envelope[int], out *Outbox[int]) {
			for _, env := range inbox {
				rounds = append(rounds, env.SentStep())
			}
		},
		MaxRounds: 10,
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 2 {
		t.Fatalf("deliveries = %v", rounds)
	}
	if rounds[0] != -1 || rounds[1] != 0 {
		t.Errorf("send steps %v, want [-1 0] (init send, then timer send)", rounds)
	}
	if res.Faults.Delayed != 2 {
		t.Errorf("delayed = %d, want 2", res.Faults.Delayed)
	}
}

// TestCrashSilencesNode: a crashed node neither processes nor relays, and
// deliveries into it are counted as crash drops.
func TestCrashSilencesNode(t *testing.T) {
	g := pathGraph(5)
	plan := NewFaultPlan(FaultConfig{Seed: 1, CrashRate: 1, CrashSpan: 1}, 5)
	for i := 0; i < 5; i++ {
		if plan.CrashStep(i) != 1 {
			t.Fatalf("node %d crash step %d, want 1", i, plan.CrashStep(i))
		}
	}
	received := make([]int, 5)
	k := Kernel[int]{
		G:      g,
		Faults: plan,
		Init: func(id int, out *Outbox[int]) {
			if id == 0 {
				out.Broadcast(1)
			}
		},
		OnReceive: func(id int, inbox []Envelope[int], out *Outbox[int]) {
			received[id] += len(inbox)
			out.Broadcast(received[id])
		},
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 receives the init message at round 0 (before any crash) and
	// relays; from round 1 on everyone is crashed, so nothing else lands.
	if received[1] != 1 {
		t.Errorf("node 1 received %d, want 1", received[1])
	}
	for i, r := range received {
		if i != 1 && r != 0 {
			t.Errorf("node %d received %d, want 0", i, r)
		}
	}
	if res.Faults.CrashDrops == 0 {
		t.Errorf("no crash drops counted: %+v", res.Faults)
	}
	if res.Faults.Crashed != 5 {
		t.Errorf("crashed = %d, want 5", res.Faults.Crashed)
	}
}

// TestPartitionWindowSeversCrossTraffic: during the window, messages
// crossing the split are dropped; traffic within a side flows.
func TestPartitionWindowSeversCrossTraffic(t *testing.T) {
	g := pathGraph(4)
	cfg := FaultConfig{Seed: 9, PartitionFrac: 0.5, PartitionFrom: 0, PartitionSpan: 1000}
	plan := NewFaultPlan(cfg, 4)
	var split bool
	for i := 1; i < 4; i++ {
		if plan.minority[i] != plan.minority[0] {
			split = true
		}
	}
	if !split {
		t.Skip("seed placed all nodes on one side") // deterministic: never happens with this seed
	}
	received := make([]bool, 4)
	k := Kernel[int]{
		G:      g,
		Faults: plan,
		Init: func(id int, out *Outbox[int]) {
			received[0] = true
			if id == 0 {
				out.Broadcast(1)
			}
		},
		OnReceive: func(id int, inbox []Envelope[int], out *Outbox[int]) {
			if !received[id] {
				received[id] = true
				out.Broadcast(1)
			}
		},
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		sameSideChain := true
		for j := 1; j <= i; j++ {
			if plan.minority[j] != plan.minority[0] {
				sameSideChain = false
			}
		}
		if received[i] != sameSideChain {
			t.Errorf("node %d received=%v, same-side chain=%v", i, received[i], sameSideChain)
		}
	}
	if res.Faults.PartitionDrops == 0 {
		t.Errorf("no partition drops counted: %+v", res.Faults)
	}
}

// TestQuiescenceErrorStarvationDiagnostics: the budget error reports
// fault losses when a plan consumed deliveries.
func TestQuiescenceErrorStarvationDiagnostics(t *testing.T) {
	g := ringGraph(4)
	plan := NewFaultPlan(FaultConfig{Seed: 2, DropRate: 0.3}, 4)
	k := Kernel[int]{
		G:         g,
		Faults:    plan,
		MaxRounds: 10,
		Init: func(id int, out *Outbox[int]) {
			out.Broadcast(0)
		},
		OnReceive: func(id int, inbox []Envelope[int], out *Outbox[int]) {
			out.Broadcast(0) // ping-pong forever
		},
	}
	_, err := k.Run()
	var qe *QuiescenceError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuiescenceError", err)
	}
	if !errors.Is(err, ErrNoQuiescence) {
		t.Error("wrapped sentinel lost")
	}
	if !qe.StarvedByFaults() {
		t.Errorf("drops occurred but not reported: %+v", qe.Faults)
	}
	if qe.Error() == "" || qe.Steps != 10 {
		t.Errorf("diagnostics: %v", qe)
	}
}

// TestMaxDropsPerLinkCapsLoss: a link may not lose more than the cap.
func TestMaxDropsPerLinkCapsLoss(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{Seed: 4, DropRate: 1, MaxDropsPerLink: 3}, 2)
	drops := 0
	for s := 1; s <= 10; s++ {
		if plan.Deliver(0, 1, s, 0).Drop {
			drops++
		}
	}
	if drops != 3 {
		t.Errorf("drops = %d, want exactly the cap 3", drops)
	}
	// The reverse link has its own budget.
	if !plan.Deliver(1, 0, 11, 0).Drop {
		t.Error("reverse link budget should be untouched")
	}
}
