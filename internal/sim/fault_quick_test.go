package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// qFaultCfg is a bounded FaultConfig for testing/quick: every rate stays
// in a range where runs terminate quickly, and structural parameters stay
// small enough that the kernels exercise all fault paths.
type qFaultCfg struct{ C FaultConfig }

// Generate implements quick.Generator.
func (qFaultCfg) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(qFaultCfg{C: FaultConfig{
		Seed:            r.Int63(),
		DropRate:        r.Float64() * 0.5,
		MaxDropsPerLink: r.Intn(4),
		DuplicateRate:   r.Float64() * 0.5,
		DelayRate:       r.Float64() * 0.5,
		MaxExtraDelay:   1 + r.Intn(3),
		CrashRate:       r.Float64() * 0.3,
		CrashSpan:       1 + r.Intn(6),
		PartitionFrac:   r.Float64() * 0.5,
		PartitionFrom:   r.Intn(4),
		PartitionSpan:   1 + r.Intn(5),
	}})
}

var faultQuickCfg = &quick.Config{MaxCount: 60}

// deliveryRec is one observed delivery, enough to distinguish any two
// executions of the flood protocol.
type deliveryRec struct {
	to, from, msg, step int
}

// syncTrace runs a TTL-flood under a fresh plan built from cfg and
// records every delivery in order.
func syncTrace(t *testing.T, cfg FaultConfig) ([]deliveryRec, FaultStats) {
	t.Helper()
	g := ringGraph(9)
	plan := NewFaultPlan(cfg, 9)
	var trace []deliveryRec
	k := Kernel[floodMsg]{
		G:      g,
		Faults: plan,
		Init: func(id int, out *Outbox[floodMsg]) {
			out.Broadcast(floodMsg{origin: id, ttl: 2})
		},
		OnReceive: func(id int, inbox []Envelope[floodMsg], out *Outbox[floodMsg]) {
			for _, env := range inbox {
				trace = append(trace, deliveryRec{id, env.From, env.Msg.origin, env.SentStep()})
				if env.Msg.ttl > 1 {
					out.Broadcast(floodMsg{origin: env.Msg.origin, ttl: env.Msg.ttl - 1})
				}
			}
		},
	}
	if _, err := k.Run(); err != nil {
		t.Fatalf("cfg %+v: %v", cfg, err)
	}
	return trace, plan.Stats()
}

// asyncTrace is syncTrace on the event-driven kernel.
func asyncTrace(t *testing.T, cfg FaultConfig) ([]deliveryRec, FaultStats) {
	t.Helper()
	g := ringGraph(9)
	plan := NewFaultPlan(cfg, 9)
	var trace []deliveryRec
	k := AsyncKernel[floodMsg]{
		G:      g,
		Seed:   cfg.Seed ^ 0x5ca1ab1e,
		Faults: plan,
		Init: func(id int, out *Outbox[floodMsg]) {
			out.Broadcast(floodMsg{origin: id, ttl: 2})
		},
		OnMessage: func(id int, env Envelope[floodMsg], out *Outbox[floodMsg]) {
			trace = append(trace, deliveryRec{id, env.From, env.Msg.origin, env.SentStep()})
			if env.Msg.ttl > 1 {
				out.Broadcast(floodMsg{origin: env.Msg.origin, ttl: env.Msg.ttl - 1})
			}
		},
	}
	if _, err := k.Run(); err != nil {
		t.Fatalf("cfg %+v: %v", cfg, err)
	}
	return trace, plan.Stats()
}

// TestQuickFaultPlanReplayIsDeterministic: any seeded FaultPlan replayed
// against the same protocol yields byte-identical delivery traces and
// fault statistics. This is the contract that makes faulty runs
// debuggable — a failure reproduces from (config, seed) alone.
func TestQuickFaultPlanReplayIsDeterministic(t *testing.T) {
	f := func(q qFaultCfg) bool {
		a, sa := syncTrace(t, q.C)
		b, sb := syncTrace(t, q.C)
		if !reflect.DeepEqual(a, b) || sa != sb {
			t.Logf("sync replay diverged under %+v", q.C)
			return false
		}
		c, sc := asyncTrace(t, q.C)
		d, sd := asyncTrace(t, q.C)
		if !reflect.DeepEqual(c, d) || sc != sd {
			t.Logf("async replay diverged under %+v", q.C)
			return false
		}
		return true
	}
	if err := quick.Check(f, faultQuickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickFaultStatsConserve: every copy the fault layer lets through —
// original attempts plus injected duplicates — ends up exactly once as a
// delivery, a random drop, a crash drop, or a partition drop.
func TestQuickFaultStatsConserve(t *testing.T) {
	f := func(q qFaultCfg) bool {
		_, s := syncTrace(t, q.C)
		if s.Attempts+s.Duplicated != s.Delivered+s.Dropped+s.CrashDrops+s.PartitionDrops {
			t.Logf("attempts %d + dups %d != delivered %d + drops %d/%d/%d",
				s.Attempts, s.Duplicated, s.Delivered, s.Dropped, s.CrashDrops, s.PartitionDrops)
			return false
		}
		return s.Duplicated <= s.Attempts && s.Delayed <= s.Attempts
	}
	if err := quick.Check(f, faultQuickCfg); err != nil {
		t.Error(err)
	}
}
