package sim_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// FloodCount is the Isolated Fragment Filtering primitive: every member
// floods its ID for TTL hops and counts distinct members heard.
func ExampleFloodCount() {
	// A path 0-1-2-3-4 where every node participates.
	g := graph.New(5)
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(i, i+1)
	}
	member := []bool{true, true, true, true, true}
	counts, _ := sim.FloodCount(g, member, 2)
	fmt.Println(counts)
	// Output:
	// [3 4 5 4 3]
}

// LabelComponents groups members into connected components by min-label
// propagation — the paper's boundary grouping.
func ExampleLabelComponents() {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	member := []bool{true, true, false, true, true}
	label, _ := sim.LabelComponents(g, member)
	fmt.Println(label, sim.Groups(label))
	// Output:
	// [0 0 -1 3 3] [[0 1] [3 4]]
}
