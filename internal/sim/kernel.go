// Package sim provides a synchronous, round-based message-passing kernel
// for executing distributed algorithms over a network graph, plus the
// canonical localized primitives the paper's algorithms are built from:
// TTL-bounded flood counting (Isolated Fragment Filtering) and label
// propagation (boundary grouping).
//
// The kernel is deterministic: nodes are stepped in ascending ID order and
// inboxes are sorted by sender, so repeated runs produce identical traces.
package sim

import (
	"errors"
	"sort"

	"repro/internal/graph"
)

// ErrNoQuiescence is returned when a protocol is still exchanging messages
// after the round budget.
var ErrNoQuiescence = errors.New("sim: protocol did not quiesce within the round budget")

// Envelope is a delivered message.
type Envelope[M any] struct {
	From int
	Msg  M
}

// Outbox collects the messages a node sends during one step; the executing
// kernel decides when they are delivered (next round for Kernel, after a
// random delay for AsyncKernel).
type Outbox[M any] struct {
	from         int
	neighbors    []int
	isNeighbor   func(from, to int) bool
	participates func(int) bool
	pending      []delivery[M]
}

type delivery[M any] struct {
	to  int
	env Envelope[M]
}

// Send enqueues a message to a neighbor. Sends to non-neighbors or to
// non-participating nodes are dropped, mirroring radio reality: a packet
// addressed outside the one-hop neighborhood never arrives.
func (o *Outbox[M]) Send(to int, msg M) {
	if !o.isNeighbor(o.from, to) || !o.participates(to) {
		return
	}
	o.pending = append(o.pending, delivery[M]{to: to, env: Envelope[M]{From: o.from, Msg: msg}})
}

// Broadcast enqueues a message to every participating neighbor.
func (o *Outbox[M]) Broadcast(msg M) {
	for _, j := range o.neighbors {
		if o.participates(j) {
			o.pending = append(o.pending, delivery[M]{to: j, env: Envelope[M]{From: o.from, Msg: msg}})
		}
	}
}

// Kernel executes one protocol over a graph. M is the message type.
type Kernel[M any] struct {
	// G is the communication graph. Required.
	G *graph.Graph
	// Participates restricts the protocol to a node subset (e.g. the
	// boundary nodes). Nil means every node participates.
	Participates func(int) bool
	// Init lets each participating node send its opening messages.
	// Optional.
	Init func(id int, out *Outbox[M])
	// OnReceive handles one round's inbox for a node. Required.
	OnReceive func(id int, inbox []Envelope[M], out *Outbox[M])
	// MaxRounds bounds the execution. The zero value means 1 + the
	// number of nodes (any simple flood quiesces by then).
	MaxRounds int

	g *graph.Graph
}

// Result reports execution statistics.
type Result struct {
	Rounds   int
	Messages int
}

func (k *Kernel[M]) participates(i int) bool {
	return k.Participates == nil || k.Participates(i)
}

func (k *Kernel[M]) isNeighbor(from, to int) bool {
	adj := k.g.Adj[from]
	idx := sort.SearchInts(adj, to)
	return idx < len(adj) && adj[idx] == to
}

// Run executes the protocol until no messages are in flight, returning
// round and message counts.
func (k *Kernel[M]) Run() (Result, error) {
	if k.G == nil || k.OnReceive == nil {
		return Result{}, errors.New("sim: kernel requires G and OnReceive")
	}
	k.g = k.G
	maxRounds := k.MaxRounds
	if maxRounds == 0 {
		maxRounds = k.g.Len() + 1
	}

	n := k.g.Len()
	inboxes := make([][]Envelope[M], n)
	var res Result

	outboxFor := func(i int) Outbox[M] {
		return Outbox[M]{
			from:         i,
			neighbors:    k.g.Adj[i],
			isNeighbor:   k.isNeighbor,
			participates: k.participates,
		}
	}
	collect := func(out *Outbox[M]) {
		for _, d := range out.pending {
			inboxes[d.to] = append(inboxes[d.to], d.env)
			res.Messages++
		}
	}

	if k.Init != nil {
		for i := 0; i < n; i++ {
			if !k.participates(i) {
				continue
			}
			out := outboxFor(i)
			k.Init(i, &out)
			collect(&out)
		}
	}

	for round := 0; ; round++ {
		anyPending := false
		for i := 0; i < n; i++ {
			if len(inboxes[i]) > 0 {
				anyPending = true
				break
			}
		}
		if !anyPending {
			res.Rounds = round
			return res, nil
		}
		if round >= maxRounds {
			res.Rounds = round
			return res, ErrNoQuiescence
		}
		next := make([][]Envelope[M], n)
		for i := 0; i < n; i++ {
			inbox := inboxes[i]
			if len(inbox) == 0 {
				continue
			}
			sort.SliceStable(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
			out := outboxFor(i)
			k.OnReceive(i, inbox, &out)
			for _, d := range out.pending {
				next[d.to] = append(next[d.to], d.env)
				res.Messages++
			}
		}
		inboxes = next
	}
}
