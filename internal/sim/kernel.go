// Package sim provides a synchronous, round-based message-passing kernel
// for executing distributed algorithms over a network graph, plus the
// canonical localized primitives the paper's algorithms are built from:
// TTL-bounded flood counting (Isolated Fragment Filtering) and label
// propagation (boundary grouping), and hardened (acknowledged,
// retransmitting) variants of both that survive injected faults.
//
// The kernel is deterministic: nodes are stepped in ascending ID order and
// inboxes are totally ordered by (sender, send round, send sequence), so
// repeated runs produce identical traces. An optional FaultPlan injects
// seeded, reproducible message loss, duplication, delay, node crashes and
// partitions; a nil plan is perfect delivery.
package sim

import (
	"errors"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
)

// ErrNoQuiescence is returned (wrapped in a QuiescenceError carrying
// diagnostics) when a protocol is still exchanging messages after the
// round budget.
var ErrNoQuiescence = errors.New("sim: protocol did not quiesce within the round budget")

// Envelope is a delivered message.
type Envelope[M any] struct {
	From int
	Msg  M

	sentAt int // sending step: round (Kernel) or event index (AsyncKernel)
	seq    int // kernel-wide send sequence, the final inbox tie-break
}

// SentStep reports when the message was sent: the sending round under
// Kernel (-1 for Init-time sends), the sender's delivered-event index
// under AsyncKernel.
func (e Envelope[M]) SentStep() int { return e.sentAt }

// Seq is the kernel-wide send sequence number; together with the sender
// and send step it totally orders duplicated messages in an inbox.
func (e Envelope[M]) Seq() int { return e.seq }

// Outbox collects the messages a node sends during one step; the executing
// kernel decides when they are delivered (next round for Kernel, after a
// random delay for AsyncKernel).
type Outbox[M any] struct {
	from         int
	neighbors    []int
	isNeighbor   func(from, to int) bool
	participates func(int) bool
	pending      []delivery[M]
	timers       []int
}

type delivery[M any] struct {
	to  int
	env Envelope[M]
}

// Send enqueues a message to a neighbor. Sends to non-neighbors or to
// non-participating nodes are dropped, mirroring radio reality: a packet
// addressed outside the one-hop neighborhood never arrives.
func (o *Outbox[M]) Send(to int, msg M) {
	if !o.isNeighbor(o.from, to) || !o.participates(to) {
		return
	}
	o.pending = append(o.pending, delivery[M]{to: to, env: Envelope[M]{From: o.from, Msg: msg}})
}

// Broadcast enqueues a message to every participating neighbor.
func (o *Outbox[M]) Broadcast(msg M) {
	for _, j := range o.neighbors {
		if o.participates(j) {
			o.pending = append(o.pending, delivery[M]{to: j, env: Envelope[M]{From: o.from, Msg: msg}})
		}
	}
}

// SetTimer asks the kernel to invoke OnTimer for this node after delay
// steps: rounds under Kernel, delay units (multiples of MaxDelay) under
// AsyncKernel. Delays below 1 are clamped to 1. Timers let protocols act
// on the absence of messages — the acknowledgment timeouts of the
// hardened primitives.
func (o *Outbox[M]) SetTimer(delay int) {
	if delay < 1 {
		delay = 1
	}
	o.timers = append(o.timers, delay)
}

// Kernel executes one protocol over a graph. M is the message type.
type Kernel[M any] struct {
	// G is the communication graph. Required.
	G *graph.Graph
	// Participates restricts the protocol to a node subset (e.g. the
	// boundary nodes). Nil means every node participates.
	Participates func(int) bool
	// Init lets each participating node send its opening messages.
	// Optional.
	Init func(id int, out *Outbox[M])
	// OnReceive handles one round's inbox for a node. Required.
	OnReceive func(id int, inbox []Envelope[M], out *Outbox[M])
	// OnTimer handles a timer set via Outbox.SetTimer. Optional; timers
	// fire after the same round's OnReceive.
	OnTimer func(id int, out *Outbox[M])
	// MaxRounds bounds the execution. The zero value means 1 + the
	// number of nodes (any simple flood quiesces by then).
	MaxRounds int
	// Faults injects message loss, duplication, delay, crashes and
	// partitions per delivery. Nil means perfect delivery.
	Faults *FaultPlan
	// Obs, when non-nil, receives the run's message accounting when Run
	// returns (including on a quiescence error): flood rounds, messages
	// delivered, and — with a fault plan — the full fault-layer counters.
	// ObsStage labels those events (e.g. obs.StageIFF).
	Obs      obs.Observer
	ObsStage obs.Stage

	g     *graph.Graph
	round int
}

// Probe routes one protocol run's flight-recorder events — per-round
// message accounting and node transitions — to an observer under a stage
// label. The zero value records nothing, so unobserved callers pass
// Probe{} and keep the nil-observer fast path.
type Probe struct {
	Obs   obs.Observer
	Stage obs.Stage
}

// Result reports execution statistics.
type Result struct {
	Rounds   int
	Messages int
	// Faults snapshots the fault layer's counters; zero without a plan.
	// A run that quiesced with Faults.Starved() true may have converged
	// to a different state than a lossless execution would.
	Faults FaultStats
}

// Round is the round currently being executed, valid inside OnReceive,
// OnTimer, and Init callbacks.
func (k *Kernel[M]) Round() int { return k.round }

// emitObs mirrors the finished run's accounting onto the kernel's
// observer; a nil Obs is free.
func (k *Kernel[M]) emitObs(res Result) {
	if k.Obs == nil {
		return
	}
	obs.Add(k.Obs, k.ObsStage, obs.CtrFloodRounds, int64(res.Rounds))
	if k.Faults == nil {
		// Perfect delivery: every send is a delivery.
		obs.Add(k.Obs, k.ObsStage, obs.CtrMsgsSent, int64(res.Messages))
		obs.Add(k.Obs, k.ObsStage, obs.CtrMsgsDelivered, int64(res.Messages))
		return
	}
	res.Faults.EmitObs(k.Obs, k.ObsStage)
}

func (k *Kernel[M]) participates(i int) bool {
	return k.Participates == nil || k.Participates(i)
}

func (k *Kernel[M]) isNeighbor(from, to int) bool {
	adj := k.g.Adj[from]
	idx := sort.SearchInts(adj, to)
	return idx < len(adj) && adj[idx] == to
}

// Run executes the protocol until no messages or timers are pending,
// returning round and message counts. On budget exhaustion the error is
// a *QuiescenceError wrapping ErrNoQuiescence.
func (k *Kernel[M]) Run() (Result, error) {
	if k.G == nil || k.OnReceive == nil {
		return Result{}, errors.New("sim: kernel requires G and OnReceive")
	}
	k.g = k.G
	maxRounds := k.MaxRounds
	if maxRounds == 0 {
		maxRounds = k.g.Len() + 1
	}

	n := k.g.Len()
	var res Result
	futures := make(map[int][]delivery[M]) // arrival round -> deliveries
	timerAt := make(map[int][]int)         // fire round -> node IDs
	seq := 0

	// Flight recorder: when observed, every executed round is bracketed by
	// RoundBegin/RoundEnd carrying cur's accounting. Sends land in the
	// round that issued them, deliveries in the round that handled them,
	// so summed rounds conserve: sent+duplicated = delivered+dropped once
	// the protocol quiesces. recObs false costs one bool test per site.
	recObs := k.Obs != nil
	var cur obs.RoundStats

	outboxFor := func(i int) Outbox[M] {
		return Outbox[M]{
			from:         i,
			neighbors:    k.g.Adj[i],
			isNeighbor:   k.isNeighbor,
			participates: k.participates,
		}
	}
	// collect routes a node's sends and timers through the fault layer.
	// sendRound is the sending round (-1 for Init).
	collect := func(i, sendRound int, out *Outbox[M]) {
		for _, d := range out.pending {
			seq++
			fate := k.Faults.Deliver(d.env.From, d.to, seq, sendRound)
			if recObs {
				cur.Sent++
				switch {
				case fate.Drop:
					cur.Dropped++
				default:
					if fate.ExtraDelay > 0 {
						cur.Delayed++
					}
					if fate.Duplicate {
						cur.Duplicated++
						if fate.DupExtraDelay > 0 {
							cur.Delayed++
						}
					}
				}
			}
			if fate.Drop {
				continue
			}
			env := d.env
			env.sentAt = sendRound
			env.seq = seq
			at := sendRound + 1 + fate.ExtraDelay
			futures[at] = append(futures[at], delivery[M]{to: d.to, env: env})
			if fate.Duplicate {
				seq++
				dup := env
				dup.seq = seq
				at := sendRound + 1 + fate.DupExtraDelay
				futures[at] = append(futures[at], delivery[M]{to: d.to, env: dup})
			}
		}
		for _, dt := range out.timers {
			timerAt[sendRound+dt] = append(timerAt[sendRound+dt], i)
		}
	}

	if k.Init != nil {
		if recObs {
			k.Obs.RoundBegin(k.ObsStage, obs.InitRound)
		}
		for i := 0; i < n; i++ {
			if !k.participates(i) {
				continue
			}
			if recObs {
				cur.Active++
			}
			out := outboxFor(i)
			k.Init(i, &out)
			collect(i, -1, &out)
		}
		if recObs {
			k.Obs.RoundEnd(k.ObsStage, obs.InitRound, cur)
			cur = obs.RoundStats{}
		}
	}

	for round := 0; ; round++ {
		k.round = round
		if len(futures) == 0 && len(timerAt) == 0 {
			res.Rounds = round
			res.Faults = k.Faults.Stats()
			k.emitObs(res)
			return res, nil
		}
		if round >= maxRounds {
			res.Rounds = round
			res.Faults = k.Faults.Stats()
			k.emitObs(res)
			inFlight := 0
			for _, ds := range futures {
				inFlight += len(ds)
			}
			pendingTimers := 0
			for _, ts := range timerAt {
				pendingTimers += len(ts)
			}
			return res, &QuiescenceError{
				Base: ErrNoQuiescence, Steps: round,
				InFlight: inFlight, PendingTimers: pendingTimers,
				Faults: res.Faults,
			}
		}

		if recObs {
			k.Obs.RoundBegin(k.ObsStage, round)
		}
		inboxes := make(map[int][]Envelope[M])
		for _, d := range futures[round] {
			if k.Faults.CrashedAt(d.to, round) {
				k.Faults.noteCrashDrop()
				if recObs {
					cur.Dropped++
				}
				continue
			}
			inboxes[d.to] = append(inboxes[d.to], d.env)
		}
		delete(futures, round)
		timerDue := make(map[int]bool)
		for _, id := range timerAt[round] {
			if !k.Faults.CrashedAt(id, round) {
				timerDue[id] = true
			}
		}
		delete(timerAt, round)

		active := make([]int, 0, len(inboxes)+len(timerDue))
		for id := range inboxes {
			active = append(active, id)
		}
		for id := range timerDue {
			if _, hasInbox := inboxes[id]; !hasInbox {
				active = append(active, id)
			}
		}
		sort.Ints(active)

		for _, i := range active {
			inbox := inboxes[i]
			// Total order: (sender, send round, send sequence). The
			// sequence makes the relative order of duplicated messages
			// from the same sender fully specified.
			sort.Slice(inbox, func(a, b int) bool {
				if inbox[a].From != inbox[b].From {
					return inbox[a].From < inbox[b].From
				}
				if inbox[a].sentAt != inbox[b].sentAt {
					return inbox[a].sentAt < inbox[b].sentAt
				}
				return inbox[a].seq < inbox[b].seq
			})
			out := outboxFor(i)
			if len(inbox) > 0 {
				res.Messages += len(inbox)
				k.Faults.noteDelivered(len(inbox))
				if recObs {
					cur.Delivered += int64(len(inbox))
				}
				k.OnReceive(i, inbox, &out)
			}
			if timerDue[i] && k.OnTimer != nil {
				k.OnTimer(i, &out)
			}
			collect(i, round, &out)
		}
		if recObs {
			cur.Active = int64(len(active))
			k.Obs.RoundEnd(k.ObsStage, round, cur)
			cur = obs.RoundStats{}
		}
	}
}
