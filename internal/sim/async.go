package sim

import (
	"container/heap"
	"errors"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
)

// AsyncKernel executes a protocol with per-message random delivery delays
// instead of synchronized rounds: each sent message is scheduled at
// now + U(0, MaxDelay] on a deterministic event queue and handled
// individually. It models the asynchrony of a real radio network while
// staying reproducible (fixed Seed ⇒ identical trace), and is used to
// verify that the paper's flooding protocols converge to the same result
// they produce under round synchrony. An optional FaultPlan additionally
// injects loss, duplication, delay, crashes and partitions.
type AsyncKernel[M any] struct {
	// G is the communication graph. Required.
	G *graph.Graph
	// Participates restricts the protocol to a node subset. Nil means
	// every node participates.
	Participates func(int) bool
	// Init lets each participating node send its opening messages.
	Init func(id int, out *Outbox[M])
	// OnMessage handles a single delivered message. Required.
	OnMessage func(id int, env Envelope[M], out *Outbox[M])
	// OnTimer handles a timer set via Outbox.SetTimer, which fires
	// delay×MaxDelay virtual time units after it was set. Optional.
	OnTimer func(id int, out *Outbox[M])
	// Seed drives the delay draws.
	Seed int64
	// MaxDelay is the delivery-delay upper bound in virtual time units.
	// Zero means 1.
	MaxDelay float64
	// MaxEvents bounds the execution (message deliveries plus timer
	// firings). Zero means 1000 × the node count.
	MaxEvents int
	// Faults injects per-delivery faults; nil means perfect delivery.
	// The plan's "step" is the count of messages delivered so far.
	Faults *FaultPlan
	// Obs, when non-nil, receives the run's message accounting when Run
	// returns (including on a budget error): messages delivered and —
	// with a fault plan — the full fault-layer counters. ObsStage labels
	// those events (e.g. obs.StageIFF).
	Obs      obs.Observer
	ObsStage obs.Stage

	now  float64
	step int
}

// AsyncResult reports an asynchronous execution.
type AsyncResult struct {
	// Messages is the number of deliveries processed.
	Messages int
	// VirtualTime is the delivery time of the last message.
	VirtualTime float64
	// Faults snapshots the fault layer's counters; zero without a plan.
	Faults FaultStats
}

// ErrEventBudget is returned (wrapped in a QuiescenceError carrying
// diagnostics) when the protocol is still sending after MaxEvents
// deliveries.
var ErrEventBudget = errors.New("sim: async protocol exceeded its event budget")

// Now is the current virtual time, valid inside callbacks.
func (k *AsyncKernel[M]) Now() float64 { return k.now }

// Step is the number of messages delivered before the event being
// handled — the async notion of a fault-plan step, and the exact value
// the fault layer's crash gate evaluated for this delivery. Valid inside
// callbacks.
func (k *AsyncKernel[M]) Step() int { return k.step }

// event is one scheduled delivery or timer firing.
type event[M any] struct {
	at    float64
	seq   int // FIFO tiebreak keeps the trace deterministic
	to    int
	env   Envelope[M]
	timer bool
}

type eventQueue[M any] []event[M]

func (q eventQueue[M]) Len() int { return len(q) }
func (q eventQueue[M]) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue[M]) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue[M]) Push(x any)   { *q = append(*q, x.(event[M])) }
func (q *eventQueue[M]) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Run executes the protocol until no messages or timers are in flight.
// On budget exhaustion the error is a *QuiescenceError wrapping
// ErrEventBudget.
func (k *AsyncKernel[M]) Run() (AsyncResult, error) {
	if k.G == nil || k.OnMessage == nil {
		return AsyncResult{}, errors.New("sim: async kernel requires G and OnMessage")
	}
	participates := func(i int) bool { return k.Participates == nil || k.Participates(i) }
	isNeighbor := func(from, to int) bool {
		adj := k.G.Adj[from]
		idx := sort.SearchInts(adj, to)
		return idx < len(adj) && adj[idx] == to
	}
	maxDelay := k.MaxDelay
	if maxDelay == 0 {
		maxDelay = 1
	}
	maxEvents := k.MaxEvents
	if maxEvents == 0 {
		maxEvents = 1000 * k.G.Len()
	}

	rng := rand.New(rand.NewSource(k.Seed))
	var queue eventQueue[M]
	seq := 0
	events := 0
	var res AsyncResult

	// Flight recorder: the async notion of a round is one MaxDelay window
	// of virtual time, int(at/MaxDelay) — every in-order delivery of a
	// round-r send lands in window r+0..1, so the curves line up with the
	// synchronous kernel's. Windows open lazily on their first event and
	// Active counts distinct nodes per window via the seenRound stamp.
	recObs := k.Obs != nil
	var cur obs.RoundStats
	curRound := obs.InitRound
	roundOpen := false
	var seenRound []int
	if recObs {
		seenRound = make([]int, k.G.Len())
		for i := range seenRound {
			seenRound[i] = obs.InitRound - 1
		}
	}
	closeRound := func() {
		if recObs && roundOpen {
			k.Obs.RoundEnd(k.ObsStage, curRound, cur)
			cur = obs.RoundStats{}
			roundOpen = false
		}
	}

	outboxFor := func(i int) Outbox[M] {
		return Outbox[M]{
			from:         i,
			neighbors:    k.G.Adj[i],
			isNeighbor:   isNeighbor,
			participates: participates,
		}
	}
	schedule := func(now float64, step int, out *Outbox[M]) {
		for _, d := range out.pending {
			seq++
			fate := k.Faults.Deliver(d.env.From, d.to, seq, step)
			if recObs {
				cur.Sent++
				switch {
				case fate.Drop:
					cur.Dropped++
				default:
					if fate.ExtraDelay > 0 {
						cur.Delayed++
					}
					if fate.Duplicate {
						cur.Duplicated++
						if fate.DupExtraDelay > 0 {
							cur.Delayed++
						}
					}
				}
			}
			if fate.Drop {
				continue
			}
			env := d.env
			env.sentAt = step
			env.seq = seq
			heap.Push(&queue, event[M]{
				at:  now + rng.Float64()*maxDelay + float64(fate.ExtraDelay)*maxDelay,
				seq: seq,
				to:  d.to,
				env: env,
			})
			if fate.Duplicate {
				seq++
				dup := env
				dup.seq = seq
				heap.Push(&queue, event[M]{
					at:  now + rng.Float64()*maxDelay + float64(fate.DupExtraDelay)*maxDelay,
					seq: seq,
					to:  d.to,
					env: dup,
				})
			}
		}
		for _, dt := range out.timers {
			seq++
			heap.Push(&queue, event[M]{
				at:    now + float64(dt)*maxDelay,
				seq:   seq,
				to:    out.from,
				timer: true,
			})
		}
	}

	if k.Init != nil {
		if recObs {
			k.Obs.RoundBegin(k.ObsStage, obs.InitRound)
			roundOpen = true
		}
		for i := 0; i < k.G.Len(); i++ {
			if !participates(i) {
				continue
			}
			if recObs {
				cur.Active++
			}
			out := outboxFor(i)
			k.Init(i, &out)
			schedule(0, 0, &out)
		}
	}
	heap.Init(&queue)

	for queue.Len() > 0 {
		if events >= maxEvents {
			closeRound()
			res.Faults = k.Faults.Stats()
			k.emitObs(res)
			return res, &QuiescenceError{
				Base: ErrEventBudget, Steps: events,
				InFlight: queue.Len(), Faults: res.Faults,
			}
		}
		ev := heap.Pop(&queue).(event[M])
		if recObs {
			if w := int(ev.at / maxDelay); !roundOpen || w != curRound {
				closeRound()
				k.Obs.RoundBegin(k.ObsStage, w)
				curRound, roundOpen = w, true
			}
		}
		if k.Faults.CrashedAt(ev.to, res.Messages) {
			if !ev.timer {
				k.Faults.noteCrashDrop()
				if recObs {
					cur.Dropped++
				}
			}
			continue
		}
		events++
		k.now = ev.at
		k.step = res.Messages
		if recObs && seenRound[ev.to] != curRound {
			seenRound[ev.to] = curRound
			cur.Active++
		}
		if ev.timer {
			if k.OnTimer == nil {
				continue
			}
			out := outboxFor(ev.to)
			k.OnTimer(ev.to, &out)
			schedule(ev.at, res.Messages, &out)
			continue
		}
		res.Messages++
		res.VirtualTime = ev.at
		k.Faults.noteDelivered(1)
		if recObs {
			cur.Delivered++
		}
		out := outboxFor(ev.to)
		k.OnMessage(ev.to, ev.env, &out)
		schedule(ev.at, res.Messages, &out)
	}
	closeRound()
	res.Faults = k.Faults.Stats()
	k.emitObs(res)
	return res, nil
}

// emitObs mirrors the finished run's accounting onto the kernel's
// observer; a nil Obs is free.
func (k *AsyncKernel[M]) emitObs(res AsyncResult) {
	if k.Obs == nil {
		return
	}
	if k.Faults == nil {
		// Perfect delivery: every send is a delivery.
		obs.Add(k.Obs, k.ObsStage, obs.CtrMsgsSent, int64(res.Messages))
		obs.Add(k.Obs, k.ObsStage, obs.CtrMsgsDelivered, int64(res.Messages))
		return
	}
	res.Faults.EmitObs(k.Obs, k.ObsStage)
}

// AsyncFloodCount is FloodCount executed under asynchrony. The forwarding
// rule is strengthened for out-of-order delivery: a node re-forwards an
// origin when a copy arrives with a larger remaining TTL than any it has
// forwarded before (under rounds the first copy always carries the maximal
// TTL, so the rules coincide). With that rule the counts are
// delay-independent and equal the synchronous ones.
func AsyncFloodCount(g *graph.Graph, member []bool, ttl int, seed int64, pr Probe) ([]int, AsyncResult, error) {
	n := g.Len()
	// bestTTL[node][origin] = largest remaining TTL forwarded so far.
	bestTTL := make([]map[int]int, n)
	participates := graph.InSet(member)

	k := AsyncKernel[floodMsg]{
		G:            g,
		Participates: participates,
		Seed:         seed,
		Obs:          pr.Obs,
		ObsStage:     pr.Stage,
		Init: func(id int, out *Outbox[floodMsg]) {
			bestTTL[id] = map[int]int{id: ttl}
			if ttl > 0 {
				out.Broadcast(floodMsg{origin: id, ttl: ttl - 1})
			}
		},
		OnMessage: func(id int, env Envelope[floodMsg], out *Outbox[floodMsg]) {
			prev, seen := bestTTL[id][env.Msg.origin]
			if seen && prev >= env.Msg.ttl {
				return
			}
			bestTTL[id][env.Msg.origin] = env.Msg.ttl
			if env.Msg.ttl > 0 {
				out.Broadcast(floodMsg{origin: env.Msg.origin, ttl: env.Msg.ttl - 1})
			}
		},
	}
	res, err := k.Run()
	if err != nil {
		return nil, AsyncResult{}, err
	}
	counts := make([]int, n)
	for i, m := range bestTTL {
		counts[i] = len(m)
	}
	return counts, res, nil
}

// AsyncLabelComponents is LabelComponents executed under asynchrony.
// Min-label propagation is monotone, so it converges to the same labels
// regardless of delivery order.
func AsyncLabelComponents(g *graph.Graph, member []bool, seed int64, pr Probe) ([]int, AsyncResult, error) {
	n := g.Len()
	label := make([]int, n)
	for i := range label {
		label[i] = NoGroup
	}
	k := AsyncKernel[int]{
		G:            g,
		Participates: graph.InSet(member),
		Seed:         seed,
		Obs:          pr.Obs,
		ObsStage:     pr.Stage,
		Init: func(id int, out *Outbox[int]) {
			label[id] = id
			out.Broadcast(id)
		},
		OnMessage: func(id int, env Envelope[int], out *Outbox[int]) {
			if env.Msg < label[id] {
				label[id] = env.Msg
				obs.NodeTransition(pr.Obs, pr.Stage, obs.TransLabelAdopt, id, int64(env.Msg))
				out.Broadcast(env.Msg)
			}
		},
	}
	res, err := k.Run()
	if err != nil {
		return nil, AsyncResult{}, err
	}
	return label, res, nil
}
