package sim

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// lossyPlan builds the canonical "recoverable faults" plan used by the
// hardened-protocol tests: real loss, duplication and reordering, but
// per-link drops capped below the retransmit budget so delivery of every
// committed packet is guaranteed.
func lossyPlan(seed int64, n int) *FaultPlan {
	return NewFaultPlan(FaultConfig{
		Seed:            seed,
		DropRate:        0.3,
		MaxDropsPerLink: 2,
		DuplicateRate:   0.2,
		DelayRate:       0.3,
		MaxExtraDelay:   2,
	}, n)
}

func randomGraph(t *testing.T, rng *rand.Rand, n, edges int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	for i := range g.Adj {
		sortInts(g.Adj[i])
	}
	return g
}

// TestReliableFloodLosslessMatchesPlain: with no fault plan the hardened
// flood produces exactly the plain counts.
func TestReliableFloodLosslessMatchesPlain(t *testing.T) {
	g := pathGraph(7)
	member := allTrue(7)
	want, err := FloodCount(g, member, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := ReliableFloodCount(g, member, 2, nil, ReliableOptions{}, Probe{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if res.Faults.Retransmits != 0 {
		t.Errorf("lossless run retransmitted: %+v", res.Faults)
	}
}

// TestReliableFloodSurvivesBoundedLoss: under capped loss with a budget
// at least the cap, the hardened flood equals the lossless flood — on
// both kernels — and the counters show the recovery work.
func TestReliableFloodSurvivesBoundedLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 8; trial++ {
		n := 15 + rng.Intn(25)
		g := randomGraph(t, rng, n, 3*n)
		member := make([]bool, n)
		for i := range member {
			member[i] = rng.Float64() < 0.7
		}
		ttl := 1 + rng.Intn(3)
		want, err := FloodCount(g, member, ttl)
		if err != nil {
			t.Fatal(err)
		}

		opt := ReliableOptions{Budget: 4}
		syncPlan := lossyPlan(int64(trial)*17+1, n)
		got, res, err := ReliableFloodCount(g, member, ttl, syncPlan, opt, Probe{})
		if err != nil {
			t.Fatalf("trial %d sync: %v", trial, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d sync: counts[%d] = %d, want %d (faults %+v)",
					trial, i, got[i], want[i], res.Faults)
			}
		}
		if res.Faults.Dropped > 0 && res.Faults.Retransmits == 0 {
			t.Fatalf("trial %d: %d drops but no retransmissions", trial, res.Faults.Dropped)
		}

		asyncPlan := lossyPlan(int64(trial)*17+1, n)
		agot, ares, err := AsyncReliableFloodCount(g, member, ttl, int64(trial), asyncPlan, opt, Probe{})
		if err != nil {
			t.Fatalf("trial %d async: %v", trial, err)
		}
		for i := range want {
			if agot[i] != want[i] {
				t.Fatalf("trial %d async: counts[%d] = %d, want %d (faults %+v)",
					trial, i, agot[i], want[i], ares.Faults)
			}
		}
	}
}

// TestReliableLabelsSurviveBoundedLoss: hardened grouping equals plain
// connected-component labels under recoverable faults, on both kernels.
func TestReliableLabelsSurviveBoundedLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		n := 15 + rng.Intn(30)
		g := randomGraph(t, rng, n, 2*n)
		member := make([]bool, n)
		for i := range member {
			member[i] = rng.Float64() < 0.6
		}
		want, err := LabelComponents(g, member)
		if err != nil {
			t.Fatal(err)
		}

		opt := ReliableOptions{Budget: 4}
		got, _, err := ReliableLabelComponents(g, member, lossyPlan(int64(trial)*13+5, n), opt, Probe{})
		if err != nil {
			t.Fatalf("trial %d sync: %v", trial, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d sync: label[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}

		agot, _, err := AsyncReliableLabelComponents(g, member, int64(trial)*3, lossyPlan(int64(trial)*13+5, n), opt, Probe{})
		if err != nil {
			t.Fatalf("trial %d async: %v", trial, err)
		}
		for i := range want {
			if agot[i] != want[i] {
				t.Fatalf("trial %d async: label[%d] = %d, want %d", trial, i, agot[i], want[i])
			}
		}
	}
}

// TestReliableFloodAbandonsUnderUnboundedLoss: with uncapped heavy loss
// and a tiny budget, the protocol gives up cleanly: it still quiesces,
// and the Abandoned counter plus Starved() report the degradation.
func TestReliableFloodAbandonsUnderUnboundedLoss(t *testing.T) {
	g := pathGraph(10)
	member := allTrue(10)
	plan := NewFaultPlan(FaultConfig{Seed: 8, DropRate: 0.9}, 10)
	counts, res, err := ReliableFloodCount(g, member, 3, plan, ReliableOptions{Budget: 1}, Probe{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Abandoned == 0 {
		t.Errorf("90%% loss with budget 1 should abandon packets: %+v", res.Faults)
	}
	if !res.Faults.Starved() {
		t.Error("abandonment must surface as starvation")
	}
	// Self-counts always survive.
	for i, c := range counts {
		if c < 1 {
			t.Errorf("counts[%d] = %d, want >= 1", i, c)
		}
	}
}

// TestReliableFloodSurvivesCrashesGracefully: crashed nodes drop out
// without wedging the survivors — the protocol quiesces (retransmission
// budgets bound the wasted effort) and live nodes still count each other
// where a live path exists.
func TestReliableFloodSurvivesCrashesGracefully(t *testing.T) {
	g := pathGraph(12)
	member := allTrue(12)
	plan := NewFaultPlan(FaultConfig{Seed: 5, CrashRate: 0.25, CrashSpan: 4}, 12)
	counts, res, err := ReliableFloodCount(g, member, 2, plan, ReliableOptions{Budget: 2}, Probe{})
	if err != nil {
		t.Fatalf("crashes must not prevent quiescence: %v", err)
	}
	if res.Faults.Crashed == 0 {
		t.Fatal("seed 5 is known to crash one node; plan changed?")
	}
	for i, c := range counts {
		if plan.CrashStep(i) >= 0 {
			continue
		}
		if c < 1 {
			t.Errorf("live node %d count %d, want >= 1", i, c)
		}
	}
	if res.Faults.CrashDrops == 0 {
		t.Errorf("messages to crashed nodes should be counted: %+v", res.Faults)
	}
}
