package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// renderEvents flattens a Mem recording into a deterministic textual
// stream — everything the flight recorder captures except wall time,
// which is the only nondeterministic field.
func renderEvents(events []obs.Event) []string {
	var out []string
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindBegin:
			out = append(out, fmt.Sprintf("begin %s %s", ev.Stage, ev.Label))
		case obs.KindEnd:
			out = append(out, fmt.Sprintf("end %s %s", ev.Stage, ev.Label))
		case obs.KindCount:
			out = append(out, fmt.Sprintf("count %s %s %d", ev.Stage, ev.Counter, ev.Value))
		case obs.KindRoundBegin:
			out = append(out, fmt.Sprintf("round_begin %s r=%d", ev.Stage, ev.Round))
		case obs.KindRoundEnd:
			s := ev.Stats
			out = append(out, fmt.Sprintf("round_end %s r=%d sent=%d delivered=%d dropped=%d dup=%d delayed=%d active=%d",
				ev.Stage, ev.Round, s.Sent, s.Delivered, s.Dropped, s.Duplicated, s.Delayed, s.Active))
		case obs.KindTransition:
			out = append(out, fmt.Sprintf("trans %s %s node=%d value=%d", ev.Stage, ev.Trans, ev.Node, ev.Value))
		}
	}
	return out
}

// TestFlightRecorderGoldenSyncTrace pins the synchronous kernel's exact
// event stream for label propagation on a 4-node path: the minimum label
// cascades one hop per round, every adoption is a recorded transition,
// and the per-round accounting conserves (15 sent, 15 delivered). Any
// change to round bracketing, attribution, or transition emission shows
// up here as a diff against the golden literal.
func TestFlightRecorderGoldenSyncTrace(t *testing.T) {
	golden := []string{
		"round_begin grouping r=-1",
		"round_end grouping r=-1 sent=6 delivered=0 dropped=0 dup=0 delayed=0 active=4",
		"round_begin grouping r=0",
		"trans grouping label_adopt node=1 value=0",
		"trans grouping label_adopt node=2 value=1",
		"trans grouping label_adopt node=3 value=2",
		"round_end grouping r=0 sent=5 delivered=6 dropped=0 dup=0 delayed=0 active=4",
		"round_begin grouping r=1",
		"trans grouping label_adopt node=2 value=0",
		"trans grouping label_adopt node=3 value=1",
		"round_end grouping r=1 sent=3 delivered=5 dropped=0 dup=0 delayed=0 active=4",
		"round_begin grouping r=2",
		"trans grouping label_adopt node=3 value=0",
		"round_end grouping r=2 sent=1 delivered=3 dropped=0 dup=0 delayed=0 active=3",
		"round_begin grouping r=3",
		"round_end grouping r=3 sent=0 delivered=1 dropped=0 dup=0 delayed=0 active=1",
		"count grouping flood_rounds 4",
		"count grouping msgs_sent 15",
		"count grouping msgs_delivered 15",
	}
	run := func() []string {
		m := &obs.Mem{}
		label, _, err := LabelComponentsStats(pathGraph(4), allTrue(4), Probe{Obs: m, Stage: obs.StageGrouping})
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range label {
			if l != 0 {
				t.Fatalf("label[%d] = %d, want 0", i, l)
			}
		}
		return renderEvents(m.Events())
	}
	got := run()
	if !reflect.DeepEqual(got, golden) {
		t.Errorf("event stream diverged from golden:\ngot:\n%s\nwant:\n%s",
			joinLines(got), joinLines(golden))
	}
	if again := run(); !reflect.DeepEqual(got, again) {
		t.Error("two identical runs produced different event streams")
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += "  " + l + "\n"
	}
	return out
}

// TestFlightRecorderDeterministicUnderFaults: with a seeded fault plan the
// recorded stream — drops, duplicates, delays, retransmissions and all —
// must still be identical run to run, on both kernels.
func TestFlightRecorderDeterministicUnderFaults(t *testing.T) {
	const n = 12
	g := ringGraph(n)
	member := allTrue(n)
	record := func(async bool) []string {
		m := &obs.Mem{}
		pr := Probe{Obs: m, Stage: obs.StageIFF}
		var err error
		if async {
			_, _, err = AsyncReliableFloodCount(g, member, 2, 9, lossyPlan(17, n), ReliableOptions{}, pr)
		} else {
			_, _, err = ReliableFloodCount(g, member, 2, lossyPlan(17, n), ReliableOptions{}, pr)
		}
		if err != nil {
			t.Fatal(err)
		}
		return renderEvents(m.Events())
	}
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			a, b := record(async), record(async)
			if len(a) == 0 {
				t.Fatal("no events recorded")
			}
			if !reflect.DeepEqual(a, b) {
				t.Error("same seed produced different event streams")
			}
		})
	}
}

// TestFlightRecorderConservation: summed over a quiesced run's rounds,
// every copy presented to the network was delivered or dropped —
// sent + duplicated = delivered + dropped — under perfect delivery and
// under faults, on both kernels.
func TestFlightRecorderConservation(t *testing.T) {
	const n = 14
	g := ringGraph(n)
	member := allTrue(n)
	cases := map[string]func(pr Probe) error{
		"sync-perfect": func(pr Probe) error {
			_, _, err := FloodCountStats(g, member, 3, pr)
			return err
		},
		"sync-faulty": func(pr Probe) error {
			_, _, err := ReliableFloodCount(g, member, 2, lossyPlan(5, n), ReliableOptions{}, pr)
			return err
		},
		"async-perfect": func(pr Probe) error {
			_, _, err := AsyncLabelComponents(g, member, 11, pr)
			return err
		},
		"async-faulty": func(pr Probe) error {
			_, _, err := AsyncReliableLabelComponents(g, member, 11, lossyPlan(5, n), ReliableOptions{}, pr)
			return err
		},
	}
	for name, run := range cases {
		t.Run(name, func(t *testing.T) {
			m := &obs.Mem{}
			if err := run(Probe{Obs: m, Stage: obs.StageIFF}); err != nil {
				t.Fatal(err)
			}
			var total obs.RoundStats
			rounds := 0
			for _, ev := range m.Events() {
				if ev.Kind == obs.KindRoundEnd {
					total.Add(ev.Stats)
					rounds++
				}
			}
			if rounds == 0 {
				t.Fatal("no rounds recorded")
			}
			if left := total.Sent + total.Duplicated - total.Delivered - total.Dropped; left != 0 {
				t.Errorf("conservation violated: %d message(s) unaccounted (sent %d, dup %d, delivered %d, dropped %d)",
					left, total.Sent, total.Duplicated, total.Delivered, total.Dropped)
			}
			if m.Rounds(obs.StageIFF) != rounds {
				t.Errorf("Mem.Rounds = %d, want %d", m.Rounds(obs.StageIFF), rounds)
			}
		})
	}
}

// TestFlightRecorderOnOffIdentity: recording must never change what a
// protocol computes. Every primitive's outputs and statistics are
// reflect.DeepEqual between an unobserved run and a recorded one.
func TestFlightRecorderOnOffIdentity(t *testing.T) {
	const n = 12
	g := ringGraph(n)
	member := allTrue(n)
	member[3] = false
	type outcome struct {
		Vals []int
		Res  any
		Err  error
	}
	cases := map[string]func(pr Probe) outcome{
		"flood": func(pr Probe) outcome {
			v, r, err := FloodCountStats(g, member, 2, pr)
			return outcome{v, r, err}
		},
		"label": func(pr Probe) outcome {
			v, r, err := LabelComponentsStats(g, member, pr)
			return outcome{v, r, err}
		},
		"async-flood": func(pr Probe) outcome {
			v, r, err := AsyncFloodCount(g, member, 2, 7, pr)
			return outcome{v, r, err}
		},
		"async-label": func(pr Probe) outcome {
			v, r, err := AsyncLabelComponents(g, member, 7, pr)
			return outcome{v, r, err}
		},
		"rel-flood": func(pr Probe) outcome {
			v, r, err := ReliableFloodCount(g, member, 2, lossyPlan(3, n), ReliableOptions{}, pr)
			return outcome{v, r, err}
		},
		"rel-label": func(pr Probe) outcome {
			v, r, err := ReliableLabelComponents(g, member, lossyPlan(3, n), ReliableOptions{}, pr)
			return outcome{v, r, err}
		},
		"async-rel-flood": func(pr Probe) outcome {
			v, r, err := AsyncReliableFloodCount(g, member, 2, 7, lossyPlan(3, n), ReliableOptions{}, pr)
			return outcome{v, r, err}
		},
		"async-rel-label": func(pr Probe) outcome {
			v, r, err := AsyncReliableLabelComponents(g, member, 7, lossyPlan(3, n), ReliableOptions{}, pr)
			return outcome{v, r, err}
		},
	}
	for name, run := range cases {
		t.Run(name, func(t *testing.T) {
			plain := run(Probe{})
			m := &obs.Mem{}
			recorded := run(Probe{Obs: m, Stage: obs.StageIFF})
			if !reflect.DeepEqual(plain, recorded) {
				t.Errorf("recorded run diverged from unobserved run:\nplain:    %+v\nrecorded: %+v", plain, recorded)
			}
			if len(m.Events()) == 0 {
				t.Error("recorder captured nothing — identity check is vacuous")
			}
		})
	}
}

// noopObs is an observer that records nothing: with it installed the
// kernel takes the full recording branch (recObs true) while the sink
// itself costs nothing, isolating the recorder's own overhead.
type noopObs struct{}

func (noopObs) StageBegin(obs.Stage, string)                         {}
func (noopObs) StageEnd(obs.Stage, string, int64)                    {}
func (noopObs) Count(obs.Stage, obs.Counter, int64)                  {}
func (noopObs) RoundBegin(obs.Stage, int)                            {}
func (noopObs) RoundEnd(obs.Stage, int, obs.RoundStats)              {}
func (noopObs) NodeTransition(obs.Stage, obs.Transition, int, int64) {}

// TestFlightRecorderRoundLoopZeroAlloc: the round loop's recorder path
// must not allocate. The unobserved run is the baseline (kernel-internal
// maps and inboxes); the recorded run — per-round stats, round
// bracketing, stamp bookkeeping — must allocate exactly as much.
func TestFlightRecorderRoundLoopZeroAlloc(t *testing.T) {
	const n = 8
	g := pathGraph(n)
	member := allTrue(n)
	run := func(pr Probe) {
		if _, _, err := FloodCountStats(g, member, 2, pr); err != nil {
			t.Fatal(err)
		}
	}
	base := testing.AllocsPerRun(50, func() { run(Probe{}) })
	rec := testing.AllocsPerRun(50, func() { run(Probe{Obs: noopObs{}, Stage: obs.StageIFF}) })
	if extra := rec - base; extra != 0 {
		t.Errorf("recorder path allocates %.1f extra times per run (baseline %.1f, recorded %.1f)",
			extra, base, rec)
	}
}
