// Hardened (acknowledged, retransmitting) variants of the paper's two
// flooding primitives. The plain primitives assume lossless delivery;
// these survive a FaultPlan: every data packet is acknowledged by its
// receiver, and the sender retransmits unacknowledged packets on an
// acknowledgment-timeout timer, up to a bounded budget. Both protocols
// process data idempotently (max-TTL for the flood, min for the labels),
// so the duplicates that retransmission and the fault layer introduce
// are harmless.
//
// Exactness guarantee: under a plan whose MaxDropsPerLink is K and a
// Budget ≥ K, every committed packet is delivered at least once (K+1
// transmissions cannot all be dropped on a link that loses at most K
// messages), so the hardened flood counts and labels equal the lossless
// synchronous ones — the paper's delay-independence claim extended to
// bounded loss. Without the per-link cap the guarantee is probabilistic
// and the Abandoned counter reports packets whose budget ran out.
package sim

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
)

// ReliableOptions tunes the hardened protocol variants.
type ReliableOptions struct {
	// Budget is the number of retransmissions allowed per packet after
	// the initial send. Zero means 3; negative means none.
	Budget int
	// ResendAfter is how long (in steps: rounds under the synchronous
	// kernel, MaxDelay units under the asynchronous one) a sender waits
	// for an acknowledgment before retransmitting. Zero means an
	// automatic bound derived from the plan's delay model.
	ResendAfter int
	// MaxSteps overrides the kernel budget (MaxRounds / MaxEvents).
	// Zero means a generous protocol-specific default.
	MaxSteps int
}

func (o ReliableOptions) withDefaults(plan *FaultPlan) ReliableOptions {
	if o.Budget == 0 {
		o.Budget = 3
	}
	if o.Budget < 0 {
		o.Budget = 0
	}
	if o.ResendAfter == 0 {
		// A data/ack round trip takes 2 steps plus twice the fault
		// layer's extra delay bound.
		extra := 0
		if plan != nil && plan.Config().DelayRate > 0 {
			extra = plan.Config().MaxExtraDelay
		}
		o.ResendAfter = 3 + 2*extra
	}
	return o
}

// retxEntry is one unacknowledged packet a sender is responsible for.
type retxEntry struct {
	val      int // remaining TTL (flood) or label value (grouping)
	attempts int
	deadline float64
}

// retxKey identifies an outstanding packet: the destination plus the
// flood origin (0 for the label protocol, which has one stream per link).
type retxKey struct{ to, origin int }

// retxState is the per-node retransmission bookkeeping shared by both
// hardened protocols.
type retxState struct {
	opt     ReliableOptions
	plan    *FaultPlan
	pr      Probe          // flight-recorder probe for node transitions
	now     func() float64 // current step in timer units
	pending []map[retxKey]*retxEntry
	armed   []bool
}

func newRetxState(n int, plan *FaultPlan, opt ReliableOptions) *retxState {
	return &retxState{
		opt:     opt,
		plan:    plan,
		pending: make([]map[retxKey]*retxEntry, n),
		armed:   make([]bool, n),
	}
}

// commit registers (or upgrades) an outstanding packet and performs its
// initial transmission. better reports whether a new value supersedes an
// already-pending one.
func (s *retxState) commit(id int, key retxKey, val int, better func(new, old int) bool, send func()) {
	if s.pending[id] == nil {
		s.pending[id] = make(map[retxKey]*retxEntry)
	}
	if e, ok := s.pending[id][key]; ok && !better(val, e.val) {
		return // an at-least-as-strong packet is already in flight
	}
	s.pending[id][key] = &retxEntry{val: val, deadline: s.now() + float64(s.opt.ResendAfter)}
	send()
}

// settle clears an outstanding packet once an acknowledgment certifies
// the receiver holds a value at least as strong.
func (s *retxState) settle(id int, key retxKey, ackVal int, satisfies func(ack, pending int) bool) {
	if e, ok := s.pending[id][key]; ok && satisfies(ackVal, e.val) {
		delete(s.pending[id], key)
	}
}

// arm schedules the node's retransmission timer if it is not already
// running.
func (s *retxState) arm(id int, out interface{ SetTimer(int) }) {
	if !s.armed[id] && len(s.pending[id]) > 0 {
		s.armed[id] = true
		out.SetTimer(s.opt.ResendAfter)
	}
}

// onTimer retransmits every due packet (dropping those whose budget is
// exhausted) and re-arms the timer while packets remain. resend performs
// the actual transmission for one packet.
func (s *retxState) onTimer(id int, out interface{ SetTimer(int) }, resend func(key retxKey, val int)) {
	s.armed[id] = false
	if len(s.pending[id]) == 0 {
		return
	}
	now := s.now()
	keys := make([]retxKey, 0, len(s.pending[id]))
	for k := range s.pending[id] {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].to != keys[b].to {
			return keys[a].to < keys[b].to
		}
		return keys[a].origin < keys[b].origin
	})
	next := math.MaxFloat64
	for _, key := range keys {
		e := s.pending[id][key]
		if e.deadline > now+1e-9 {
			if e.deadline < next {
				next = e.deadline
			}
			continue
		}
		if e.attempts >= s.opt.Budget {
			delete(s.pending[id], key)
			s.plan.noteAbandoned()
			continue
		}
		e.attempts++
		e.deadline = now + float64(s.opt.ResendAfter)
		s.plan.noteRetransmit()
		resend(key, e.val)
		if e.deadline < next {
			next = e.deadline
		}
	}
	if len(s.pending[id]) > 0 {
		d := int(math.Ceil(next - now - 1e-9))
		if d < 1 {
			d = 1
		}
		s.armed[id] = true
		out.SetTimer(d)
	}
}

// ---------------------------------------------------------------------
// Reliable flood counting (hardened IFF).

// relFloodMsg is the wire format: data carries (origin, remaining TTL);
// an ack certifies "I know origin with remaining TTL ≥ ttl".
type relFloodMsg struct {
	ack    bool
	origin int
	ttl    int
}

type relFlood struct {
	*retxState
	ttl0 int
	best []map[int]int // best[node][origin] = largest TTL adopted
}

func newRelFlood(n, ttl int, plan *FaultPlan, opt ReliableOptions) *relFlood {
	return &relFlood{retxState: newRetxState(n, plan, opt), ttl0: ttl, best: make([]map[int]int, n)}
}

func (s *relFlood) offer(id, to, origin, ttl int, out *Outbox[relFloodMsg]) {
	s.commit(id, retxKey{to: to, origin: origin}, ttl,
		func(new, old int) bool { return new > old },
		func() { out.Send(to, relFloodMsg{origin: origin, ttl: ttl}) })
	s.arm(id, out)
}

func (s *relFlood) forward(id, origin, ttl int, out *Outbox[relFloodMsg]) {
	if ttl <= 0 {
		return
	}
	for _, j := range out.neighbors {
		if out.participates(j) {
			s.offer(id, j, origin, ttl-1, out)
		}
	}
}

func (s *relFlood) init(id int, out *Outbox[relFloodMsg]) {
	s.best[id] = map[int]int{id: s.ttl0}
	s.forward(id, id, s.ttl0, out)
}

func (s *relFlood) onMsg(id int, env Envelope[relFloodMsg], out *Outbox[relFloodMsg]) {
	m := env.Msg
	if m.ack {
		s.plan.noteAck()
		s.settle(id, retxKey{to: env.From, origin: m.origin}, m.ttl,
			func(ack, pending int) bool { return ack >= pending })
		return
	}
	prev, seen := s.best[id][m.origin]
	if !seen || m.ttl > prev {
		s.best[id][m.origin] = m.ttl
		s.forward(id, m.origin, m.ttl, out)
	}
	// Acknowledge with the strongest TTL known so the sender's pending
	// entry clears even when a fresher copy arrived first.
	out.Send(env.From, relFloodMsg{ack: true, origin: m.origin, ttl: s.best[id][m.origin]})
}

func (s *relFlood) timer(id int, out *Outbox[relFloodMsg]) {
	s.retxState.onTimer(id, out, func(key retxKey, val int) {
		out.Send(key.to, relFloodMsg{origin: key.origin, ttl: val})
	})
}

func (s *relFlood) counts(member []bool) []int {
	counts := make([]int, len(s.best))
	for i, m := range s.best {
		if member[i] {
			counts[i] = len(m)
		}
	}
	return counts
}

// relFloodMaxRounds bounds a hardened flood generously: ttl hops, each
// taking at most a full retransmission schedule.
func relFloodMaxRounds(n, ttl int, opt ReliableOptions) int {
	return (ttl+2)*(opt.Budget+2)*(opt.ResendAfter+2) + n + 4
}

// ReliableFloodCount is FloodCount hardened against a fault plan: the
// TTL-bounded IFF flood with per-packet acknowledgment and bounded
// retransmission, run on the synchronous kernel. A nil plan degrades to
// an acknowledged (but lossless) flood with the same counts as
// FloodCount. Retransmit/ack/abandon counters accumulate into the plan
// and are reported in Result.Faults.
func ReliableFloodCount(g *graph.Graph, member []bool, ttl int, plan *FaultPlan, opt ReliableOptions, pr Probe) ([]int, Result, error) {
	opt = opt.withDefaults(plan)
	s := newRelFlood(g.Len(), ttl, plan, opt)
	s.pr = pr
	maxRounds := opt.MaxSteps
	if maxRounds == 0 {
		maxRounds = relFloodMaxRounds(g.Len(), ttl, opt)
	}
	k := &Kernel[relFloodMsg]{
		G:            g,
		Participates: graph.InSet(member),
		Faults:       plan,
		MaxRounds:    maxRounds,
		Obs:          pr.Obs,
		ObsStage:     pr.Stage,
		Init:         s.init,
		OnReceive: func(id int, inbox []Envelope[relFloodMsg], out *Outbox[relFloodMsg]) {
			for _, env := range inbox {
				s.onMsg(id, env, out)
			}
		},
		OnTimer: s.timer,
	}
	s.now = func() float64 { return float64(k.Round()) }
	res, err := k.Run()
	if err != nil {
		return nil, res, err
	}
	return s.counts(member), res, nil
}

// AsyncReliableFloodCount is ReliableFloodCount on the asynchronous
// kernel (per-message random delays seeded by seed).
func AsyncReliableFloodCount(g *graph.Graph, member []bool, ttl int, seed int64, plan *FaultPlan, opt ReliableOptions, pr Probe) ([]int, AsyncResult, error) {
	opt = opt.withDefaults(plan)
	s := newRelFlood(g.Len(), ttl, plan, opt)
	s.pr = pr
	maxEvents := opt.MaxSteps
	if maxEvents == 0 {
		maxEvents = 4000 * g.Len() * (opt.Budget + 2)
	}
	k := &AsyncKernel[relFloodMsg]{
		G:            g,
		Participates: graph.InSet(member),
		Seed:         seed,
		Faults:       plan,
		MaxEvents:    maxEvents,
		Obs:          pr.Obs,
		ObsStage:     pr.Stage,
		Init:         s.init,
		OnMessage:    s.onMsg,
		OnTimer:      s.timer,
	}
	// MaxDelay is 1, so virtual time and timer units coincide.
	s.now = func() float64 { return k.Now() }
	res, err := k.Run()
	if err != nil {
		return nil, res, err
	}
	return s.counts(member), res, nil
}

// ---------------------------------------------------------------------
// Reliable label propagation (hardened grouping).

// relLabelMsg is the wire format: data offers a label; an ack certifies
// "my label is ≤ label".
type relLabelMsg struct {
	ack   bool
	label int
}

type relLabel struct {
	*retxState
	label []int
}

func newRelLabel(n int, plan *FaultPlan, opt ReliableOptions) *relLabel {
	s := &relLabel{retxState: newRetxState(n, plan, opt), label: make([]int, n)}
	for i := range s.label {
		s.label[i] = NoGroup
	}
	return s
}

func (s *relLabel) offer(id, to, label int, out *Outbox[relLabelMsg]) {
	s.commit(id, retxKey{to: to}, label,
		func(new, old int) bool { return new < old },
		func() { out.Send(to, relLabelMsg{label: label}) })
	s.arm(id, out)
}

func (s *relLabel) spread(id int, out *Outbox[relLabelMsg]) {
	for _, j := range out.neighbors {
		if out.participates(j) {
			s.offer(id, j, s.label[id], out)
		}
	}
}

func (s *relLabel) init(id int, out *Outbox[relLabelMsg]) {
	s.label[id] = id
	s.spread(id, out)
}

func (s *relLabel) onMsg(id int, env Envelope[relLabelMsg], out *Outbox[relLabelMsg]) {
	m := env.Msg
	if m.ack {
		s.plan.noteAck()
		s.settle(id, retxKey{to: env.From}, m.label,
			func(ack, pending int) bool { return ack <= pending })
		return
	}
	if m.label < s.label[id] {
		s.label[id] = m.label
		obs.NodeTransition(s.pr.Obs, s.pr.Stage, obs.TransLabelAdopt, id, int64(m.label))
		s.spread(id, out)
	}
	out.Send(env.From, relLabelMsg{ack: true, label: s.label[id]})
}

func (s *relLabel) timer(id int, out *Outbox[relLabelMsg]) {
	s.retxState.onTimer(id, out, func(key retxKey, val int) {
		out.Send(key.to, relLabelMsg{label: val})
	})
}

// ReliableLabelComponents is LabelComponents hardened against a fault
// plan: min-label propagation with per-packet acknowledgment and bounded
// retransmission on the synchronous kernel. Idempotent by construction —
// duplicated or stale offers never move a label upward.
func ReliableLabelComponents(g *graph.Graph, member []bool, plan *FaultPlan, opt ReliableOptions, pr Probe) ([]int, Result, error) {
	opt = opt.withDefaults(plan)
	n := g.Len()
	s := newRelLabel(n, plan, opt)
	s.pr = pr
	maxRounds := opt.MaxSteps
	if maxRounds == 0 {
		maxRounds = (n + 4) * (opt.Budget + 2) * (opt.ResendAfter + 2)
	}
	k := &Kernel[relLabelMsg]{
		G:            g,
		Participates: graph.InSet(member),
		Faults:       plan,
		MaxRounds:    maxRounds,
		Obs:          pr.Obs,
		ObsStage:     pr.Stage,
		Init:         s.init,
		OnReceive: func(id int, inbox []Envelope[relLabelMsg], out *Outbox[relLabelMsg]) {
			for _, env := range inbox {
				s.onMsg(id, env, out)
			}
		},
		OnTimer: s.timer,
	}
	s.now = func() float64 { return float64(k.Round()) }
	res, err := k.Run()
	if err != nil {
		return nil, res, err
	}
	return s.label, res, nil
}

// AsyncReliableLabelComponents is ReliableLabelComponents on the
// asynchronous kernel.
func AsyncReliableLabelComponents(g *graph.Graph, member []bool, seed int64, plan *FaultPlan, opt ReliableOptions, pr Probe) ([]int, AsyncResult, error) {
	opt = opt.withDefaults(plan)
	s := newRelLabel(g.Len(), plan, opt)
	s.pr = pr
	maxEvents := opt.MaxSteps
	if maxEvents == 0 {
		maxEvents = 4000 * g.Len() * (opt.Budget + 2)
	}
	k := &AsyncKernel[relLabelMsg]{
		G:            g,
		Participates: graph.InSet(member),
		Seed:         seed,
		Faults:       plan,
		MaxEvents:    maxEvents,
		Obs:          pr.Obs,
		ObsStage:     pr.Stage,
		Init:         s.init,
		OnMessage:    s.onMsg,
		OnTimer:      s.timer,
	}
	s.now = func() float64 { return k.Now() }
	res, err := k.Run()
	if err != nil {
		return nil, res, err
	}
	return s.label, res, nil
}
