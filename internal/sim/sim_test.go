package sim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	// Keep adjacency sorted for the kernel's neighbor checks.
	return g
}

func ringGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	for i := range g.Adj {
		sortInts(g.Adj[i])
	}
	return g
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func allTrue(n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}

func TestKernelRequiresHandlers(t *testing.T) {
	k := Kernel[int]{}
	if _, err := k.Run(); err == nil {
		t.Error("expected error for missing G/OnReceive")
	}
}

func TestKernelSimpleFlood(t *testing.T) {
	g := pathGraph(5)
	received := make([]bool, 5)
	k := Kernel[int]{
		G: g,
		Init: func(id int, out *Outbox[int]) {
			if id == 0 {
				received[0] = true
				out.Broadcast(1)
			}
		},
		OnReceive: func(id int, inbox []Envelope[int], out *Outbox[int]) {
			if !received[id] {
				received[id] = true
				out.Broadcast(1)
			}
		},
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range received {
		if !r {
			t.Errorf("node %d never received", i)
		}
	}
	// Flood on a path takes one round per hop (plus the final echo).
	if res.Rounds < 4 {
		t.Errorf("rounds = %d, want >= 4", res.Rounds)
	}
	if res.Messages == 0 {
		t.Error("no messages counted")
	}
}

func TestKernelSendValidation(t *testing.T) {
	g := pathGraph(3)
	delivered := 0
	k := Kernel[string]{
		G:            g,
		Participates: func(i int) bool { return i != 2 },
		Init: func(id int, out *Outbox[string]) {
			if id == 0 {
				out.Send(2, "skip-hop") // not a neighbor: dropped
				out.Send(1, "ok")
			}
			if id == 1 {
				out.Send(2, "to-nonparticipant") // participant filter: dropped
			}
		},
		OnReceive: func(id int, inbox []Envelope[string], out *Outbox[string]) {
			delivered += len(inbox)
		},
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
}

func TestKernelNoQuiescence(t *testing.T) {
	g := ringGraph(4)
	k := Kernel[int]{
		G:         g,
		MaxRounds: 10,
		Init: func(id int, out *Outbox[int]) {
			if id == 0 {
				out.Broadcast(0)
			}
		},
		OnReceive: func(id int, inbox []Envelope[int], out *Outbox[int]) {
			out.Broadcast(0) // ping-pong forever
		},
	}
	_, err := k.Run()
	if !errors.Is(err, ErrNoQuiescence) {
		t.Errorf("err = %v, want ErrNoQuiescence", err)
	}
	var qe *QuiescenceError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %T, want *QuiescenceError", err)
	}
	if qe.InFlight == 0 {
		t.Error("diagnostics report no in-flight messages for a diverging protocol")
	}
	if qe.StarvedByFaults() {
		t.Error("no fault plan, yet diagnostics blame faults")
	}
}

func TestKernelInboxOrdering(t *testing.T) {
	// Node 1 receives from 0 and 2 simultaneously; inbox must be sorted
	// by sender ID.
	g := pathGraph(3)
	var froms []int
	k := Kernel[int]{
		G: g,
		Init: func(id int, out *Outbox[int]) {
			if id == 0 || id == 2 {
				out.Send(1, id)
			}
		},
		OnReceive: func(id int, inbox []Envelope[int], out *Outbox[int]) {
			if id == 1 {
				for _, env := range inbox {
					froms = append(froms, env.From)
				}
			}
		},
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(froms) != 2 || froms[0] != 0 || froms[1] != 2 {
		t.Errorf("inbox order = %v, want [0 2]", froms)
	}
}

func TestFloodCountPath(t *testing.T) {
	g := pathGraph(7)
	counts, err := FloodCount(g, allTrue(7), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 hears itself, 1, 2 → 3; node 3 hears 1..5 → 5.
	want := []int{3, 4, 5, 5, 5, 4, 3}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestFloodCountTTLZero(t *testing.T) {
	g := pathGraph(4)
	counts, err := FloodCount(g, allTrue(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("counts[%d] = %d, want 1 (self only)", i, c)
		}
	}
}

func TestFloodCountRespectsMembership(t *testing.T) {
	g := pathGraph(5)
	member := []bool{true, true, false, true, true}
	counts, err := FloodCount(g, member, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 breaks the path: {0,1} and {3,4} cannot hear each other.
	want := []int{2, 2, 0, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestFloodCountMatchesBFSTruth(t *testing.T) {
	// Property: flood count equals the number of members within ttl hops
	// through the member subgraph, computed independently with BFS.
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(30)
		g := graph.New(n)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		for i := range g.Adj {
			sortInts(g.Adj[i])
		}
		member := make([]bool, n)
		for i := range member {
			member[i] = rng.Float64() < 0.7
		}
		ttl := rng.Intn(4)
		counts, err := FloodCount(g, member, ttl)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if !member[i] {
				if counts[i] != 0 {
					t.Fatalf("non-member %d count = %d", i, counts[i])
				}
				continue
			}
			dist := g.BFSHops([]int{i}, graph.InSet(member), ttl)
			want := 0
			for j, d := range dist {
				if d != graph.Unreachable && member[j] {
					want++
				}
			}
			if counts[i] != want {
				t.Fatalf("trial %d node %d: flood count %d, BFS truth %d", trial, i, counts[i], want)
			}
		}
	}
}

func TestLabelComponents(t *testing.T) {
	g := pathGraph(6)
	member := []bool{true, true, true, false, true, true}
	label, err := LabelComponents(g, member)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, NoGroup, 4, 4}
	for i := range want {
		if label[i] != want[i] {
			t.Errorf("label[%d] = %d, want %d", i, label[i], want[i])
		}
	}
	groups := Groups(label)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 || len(groups[1]) != 2 {
		t.Errorf("group sizes: %v", groups)
	}
}

func TestLabelComponentsMatchesGraphComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(40)
		g := graph.New(n)
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		for i := range g.Adj {
			sortInts(g.Adj[i])
		}
		member := make([]bool, n)
		for i := range member {
			member[i] = rng.Float64() < 0.6
		}
		label, err := LabelComponents(g, member)
		if err != nil {
			t.Fatal(err)
		}
		comps := g.ConnectedComponents(graph.InSet(member))
		// Every component must share a single label, distinct across
		// components, equal to the minimum member ID.
		seen := map[int]bool{}
		for _, comp := range comps {
			min := comp[0]
			for _, v := range comp {
				if v < min {
					min = v
				}
			}
			for _, v := range comp {
				if label[v] != min {
					t.Fatalf("node %d label %d, want %d", v, label[v], min)
				}
			}
			if seen[min] {
				t.Fatalf("duplicate label %d", min)
			}
			seen[min] = true
		}
		for i := 0; i < n; i++ {
			if !member[i] && label[i] != NoGroup {
				t.Fatalf("non-member %d labeled %d", i, label[i])
			}
		}
	}
}

func TestGroupsEmpty(t *testing.T) {
	if g := Groups([]int{NoGroup, NoGroup}); len(g) != 0 {
		t.Errorf("Groups = %v", g)
	}
}
