package sim

import (
	"repro/internal/graph"
	"repro/internal/obs"
)

// floodMsg carries one origin's flood with its remaining hop budget.
type floodMsg struct {
	origin int
	ttl    int
}

// FloodCount runs the TTL-bounded local flooding of Isolated Fragment
// Filtering: every member node floods its ID through member nodes only,
// with packets traveling at most ttl hops. It returns, for each node, the
// number of distinct members heard from within ttl hops, counting the node
// itself; non-members report zero.
//
// This is exactly the "local flooding packet with a TTL of T, forwarded by
// other boundary nodes but not non-boundary nodes" of Sec. II-B.
func FloodCount(g *graph.Graph, member []bool, ttl int) ([]int, error) {
	counts, _, err := FloodCountStats(g, member, ttl, Probe{})
	return counts, err
}

// FloodCountStats is FloodCount with the kernel's execution statistics
// (rounds, total messages) — the communication cost of one IFF pass — and
// a flight-recorder probe for round-resolved accounting.
func FloodCountStats(g *graph.Graph, member []bool, ttl int, pr Probe) ([]int, Result, error) {
	n := g.Len()
	// Compact member indexing: origins and receivers are both members, so
	// the seen sets form an m×m bit matrix stored flat — two allocations
	// total, where the per-node map[int]bool version allocated a growing
	// hash table per member node.
	idx := make([]int32, n)
	m := 0
	for i := range idx {
		if i < len(member) && member[i] {
			idx[i] = int32(m)
			m++
		} else {
			idx[i] = -1
		}
	}
	stride := (m + 63) / 64
	bits := make([]uint64, m*stride)
	counts := make([]int, n)
	// seenMark records origin at node and reports whether it was new,
	// maintaining counts incrementally.
	seenMark := func(node, origin int) bool {
		row, col := idx[node], idx[origin]
		if row < 0 || col < 0 {
			return false
		}
		w := int(row)*stride + int(col>>6)
		bit := uint64(1) << (uint(col) & 63)
		if bits[w]&bit != 0 {
			return false
		}
		bits[w] |= bit
		counts[node]++
		return true
	}

	k := Kernel[floodMsg]{
		G:            g,
		Participates: graph.InSet(member),
		MaxRounds:    ttl + 1,
		Obs:          pr.Obs,
		ObsStage:     pr.Stage,
		Init: func(id int, out *Outbox[floodMsg]) {
			seenMark(id, id)
			if ttl > 0 {
				out.Broadcast(floodMsg{origin: id, ttl: ttl - 1})
			}
		},
		OnReceive: func(id int, inbox []Envelope[floodMsg], out *Outbox[floodMsg]) {
			for _, env := range inbox {
				if !seenMark(id, env.Msg.origin) {
					continue
				}
				if env.Msg.ttl > 0 {
					out.Broadcast(floodMsg{origin: env.Msg.origin, ttl: env.Msg.ttl - 1})
				}
			}
		},
	}
	res, err := k.Run()
	if err != nil {
		return nil, Result{}, err
	}
	return counts, res, nil
}

// NoGroup marks nodes that belong to no group.
const NoGroup = -1

// LabelComponents runs min-ID label propagation over the subgraph induced
// by member, the distributed grouping scheme of Sec. II-B: nodes on the
// same boundary converge to the same label (the smallest member ID of
// their component) because boundary nodes are connected through boundary
// nodes only. It returns each node's group label, NoGroup for non-members.
func LabelComponents(g *graph.Graph, member []bool) ([]int, error) {
	label, _, err := LabelComponentsStats(g, member, Probe{})
	return label, err
}

// LabelComponentsStats is LabelComponents with the kernel's execution
// statistics — the communication cost of one grouping pass — and a
// flight-recorder probe; every label adoption is reported as a
// TransLabelAdopt transition.
func LabelComponentsStats(g *graph.Graph, member []bool, pr Probe) ([]int, Result, error) {
	n := g.Len()
	label := make([]int, n)
	for i := range label {
		label[i] = NoGroup
	}

	k := Kernel[int]{
		G:            g,
		Participates: graph.InSet(member),
		Obs:          pr.Obs,
		ObsStage:     pr.Stage,
		Init: func(id int, out *Outbox[int]) {
			label[id] = id
			out.Broadcast(id)
		},
		OnReceive: func(id int, inbox []Envelope[int], out *Outbox[int]) {
			best := label[id]
			for _, env := range inbox {
				if env.Msg < best {
					best = env.Msg
				}
			}
			if best < label[id] {
				label[id] = best
				obs.NodeTransition(pr.Obs, pr.Stage, obs.TransLabelAdopt, id, int64(best))
				out.Broadcast(best)
			}
		},
	}
	res, err := k.Run()
	if err != nil {
		return nil, Result{}, err
	}
	return label, res, nil
}

// Groups collects the labels produced by LabelComponents into explicit
// groups, ordered by label; each group lists its member IDs ascending.
func Groups(label []int) [][]int {
	byLabel := make(map[int][]int)
	var order []int
	for i, l := range label {
		if l == NoGroup {
			continue
		}
		if _, ok := byLabel[l]; !ok {
			order = append(order, l)
		}
		byLabel[l] = append(byLabel[l], i)
	}
	// Labels are minima of their groups; iterating ascending gives a
	// deterministic order.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	groups := make([][]int, 0, len(order))
	for _, l := range order {
		groups = append(groups, byLabel[l])
	}
	return groups
}
