package export

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/ranging"
	"repro/internal/shapes"
)

func TestWriteOFF(t *testing.T) {
	var buf bytes.Buffer
	verts := []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)}
	faces := [][3]int{{0, 1, 2}}
	if err := WriteOFF(&buf, verts, faces); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "OFF\n3 1 0\n") {
		t.Errorf("OFF header wrong:\n%s", out)
	}
	if !strings.Contains(out, "3 0 1 2") {
		t.Errorf("face line missing:\n%s", out)
	}
}

func TestWriteOFFBadFace(t *testing.T) {
	var buf bytes.Buffer
	verts := []geom.Vec3{geom.V(0, 0, 0)}
	if err := WriteOFF(&buf, verts, [][3]int{{0, 1, 2}}); err == nil {
		t.Error("out-of-range face accepted")
	}
}

func TestWriteOBJ(t *testing.T) {
	var buf bytes.Buffer
	verts := []geom.Vec3{geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(0, 1, 0)}
	edges := [][2]int{{0, 1}}
	faces := [][3]int{{0, 1, 2}}
	if err := WriteOBJ(&buf, verts, edges, faces); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "v 0 0 0\n") {
		t.Errorf("vertex line missing:\n%s", out)
	}
	if !strings.Contains(out, "l 1 2\n") {
		t.Errorf("line element missing (1-based):\n%s", out)
	}
	if !strings.Contains(out, "f 1 2 3\n") {
		t.Errorf("face element missing (1-based):\n%s", out)
	}
	if err := WriteOBJ(&buf, verts, [][2]int{{0, 9}}, nil); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := WriteOBJ(&buf, verts, nil, [][3]int{{-1, 0, 1}}); err == nil {
		t.Error("out-of-range face accepted")
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	net, err := netgen.Generate(netgen.Config{
		Shape:         shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:  50,
		InteriorNodes: 100,
		Radius:        1.2,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetworkJSON(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetworkJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Radius != net.Radius || got.Len() != net.Len() {
		t.Fatalf("round trip basics: radius %v->%v len %d->%d",
			net.Radius, got.Radius, net.Len(), got.Len())
	}
	for i := range net.Nodes {
		if got.Nodes[i].Pos != net.Nodes[i].Pos || got.Nodes[i].OnSurface != net.Nodes[i].OnSurface {
			t.Fatalf("node %d differs", i)
		}
	}
	// Connectivity is rebuilt identically (same positions, same radius).
	for i := range net.G.Adj {
		if len(got.G.Adj[i]) != len(net.G.Adj[i]) {
			t.Fatalf("adjacency of %d differs", i)
		}
		for k := range net.G.Adj[i] {
			if got.G.Adj[i][k] != net.G.Adj[i][k] {
				t.Fatalf("adjacency of %d differs at %d", i, k)
			}
		}
	}
	// A measurement on the round-tripped network works.
	if m := got.Measure(ranging.Exact{}, 0); m == nil {
		t.Fatal("measurement on round-tripped network failed")
	}
}

func TestWriteNetworkJSONNil(t *testing.T) {
	if err := WriteNetworkJSON(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil network accepted")
	}
}

func TestReadNetworkJSONBad(t *testing.T) {
	if _, err := ReadNetworkJSON(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ReadNetworkJSON(strings.NewReader(`{"radius":0,"nodes":[{"x":1}]}`)); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestWriteDetectionJSON(t *testing.T) {
	var buf bytes.Buffer
	boundary := []bool{true, false, true}
	groups := [][]int{{0}, {2}}
	if err := WriteDetectionJSON(&buf, boundary, groups); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"boundary":[0,2]`) {
		t.Errorf("boundary ids missing:\n%s", out)
	}
	if !strings.Contains(out, `"groups":[[0],[2]]`) {
		t.Errorf("groups missing:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
	if err := WriteCSV(&buf, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestSurfaceGeometry(t *testing.T) {
	net, err := netgen.Generate(netgen.Config{
		Shape:         shapes.NewBall(geom.Zero, 3),
		SurfaceNodes:  4,
		InteriorNodes: 0,
		Radius:        10, // fully connected
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &mesh.Surface{
		Landmarks: &mesh.Landmarks{IDs: []int{1, 3}},
		Edges:     []mesh.Edge{{1, 3}},
	}
	verts, edges, faces := SurfaceGeometry(net, s)
	if len(verts) != 2 || len(edges) != 1 || len(faces) != 0 {
		t.Fatalf("geometry sizes: %d %d %d", len(verts), len(edges), len(faces))
	}
	if verts[0] != net.Nodes[1].Pos || verts[1] != net.Nodes[3].Pos {
		t.Error("vertex positions wrong")
	}
	if edges[0] != [2]int{0, 1} {
		t.Errorf("edge remap wrong: %v", edges[0])
	}
}
