// Package export serializes networks, detection results, and boundary
// meshes: OFF and OBJ for 3D viewers (the reproduction's analogue of the
// paper's rendered figures), JSON for round-tripping networks between
// tools, and CSV for experiment tables.
package export

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/netgen"
)

// WriteOFF writes vertices and triangular faces in the OFF mesh format.
func WriteOFF(w io.Writer, verts []geom.Vec3, faces [][3]int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "OFF\n%d %d 0\n", len(verts), len(faces))
	for _, v := range verts {
		fmt.Fprintf(bw, "%g %g %g\n", v.X, v.Y, v.Z)
	}
	for _, f := range faces {
		if err := checkFace(f, len(verts)); err != nil {
			return err
		}
		fmt.Fprintf(bw, "3 %d %d %d\n", f[0], f[1], f[2])
	}
	return bw.Flush()
}

// WriteOBJ writes vertices, line segments, and triangular faces in the
// Wavefront OBJ format (1-based indices).
func WriteOBJ(w io.Writer, verts []geom.Vec3, edges [][2]int, faces [][3]int) error {
	bw := bufio.NewWriter(w)
	for _, v := range verts {
		fmt.Fprintf(bw, "v %g %g %g\n", v.X, v.Y, v.Z)
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= len(verts) || e[1] < 0 || e[1] >= len(verts) {
			return fmt.Errorf("export: edge %v out of range", e)
		}
		fmt.Fprintf(bw, "l %d %d\n", e[0]+1, e[1]+1)
	}
	for _, f := range faces {
		if err := checkFace(f, len(verts)); err != nil {
			return err
		}
		fmt.Fprintf(bw, "f %d %d %d\n", f[0]+1, f[1]+1, f[2]+1)
	}
	return bw.Flush()
}

func checkFace(f [3]int, n int) error {
	for _, v := range f {
		if v < 0 || v >= n {
			return fmt.Errorf("export: face %v out of range", f)
		}
	}
	return nil
}

// SurfaceGeometry converts a boundary surface's landmark overlay into
// renderable geometry: landmark positions as vertices (re-indexed densely)
// with the mesh edges and faces.
func SurfaceGeometry(net *netgen.Network, s *mesh.Surface) (verts []geom.Vec3, edges [][2]int, faces [][3]int) {
	return SurfaceGeometryWith(s, func(n int) geom.Vec3 { return net.Nodes[n].Pos })
}

// SurfaceGeometryWith is SurfaceGeometry with caller-supplied vertex
// positions (e.g. mesh.RefinedPositions output or virtual coordinates from
// an embedding).
func SurfaceGeometryWith(s *mesh.Surface, position func(node int) geom.Vec3) (verts []geom.Vec3, edges [][2]int, faces [][3]int) {
	index := make(map[int]int, len(s.Landmarks.IDs))
	for _, lm := range s.Landmarks.IDs {
		index[lm] = len(verts)
		verts = append(verts, position(lm))
	}
	for _, e := range s.Edges {
		edges = append(edges, [2]int{index[e[0]], index[e[1]]})
	}
	for _, f := range s.Faces {
		faces = append(faces, [3]int{index[f[0]], index[f[1]], index[f[2]]})
	}
	return verts, edges, faces
}

// nodeJSON is the serialized form of one node.
type nodeJSON struct {
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Z       float64 `json:"z"`
	Surface bool    `json:"surface,omitempty"`
}

// networkJSON is the serialized form of a network. Connectivity is not
// stored: it is a pure function of positions and radius, rebuilt on load.
type networkJSON struct {
	Radius float64    `json:"radius"`
	Nodes  []nodeJSON `json:"nodes"`
}

// WriteNetworkJSON serializes a network (positions, ground truth, radius).
func WriteNetworkJSON(w io.Writer, net *netgen.Network) error {
	if net == nil {
		return errors.New("export: nil network")
	}
	out := networkJSON{Radius: net.Radius, Nodes: make([]nodeJSON, len(net.Nodes))}
	for i, n := range net.Nodes {
		out.Nodes[i] = nodeJSON{X: n.Pos.X, Y: n.Pos.Y, Z: n.Pos.Z, Surface: n.OnSurface}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadNetworkJSON reconstitutes a network written by WriteNetworkJSON,
// rebuilding connectivity from positions and radius.
func ReadNetworkJSON(r io.Reader) (*netgen.Network, error) {
	var in networkJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("export: decode network: %w", err)
	}
	nodes := make([]netgen.Node, len(in.Nodes))
	for i, n := range in.Nodes {
		nodes[i] = netgen.Node{Pos: geom.V(n.X, n.Y, n.Z), OnSurface: n.Surface}
	}
	return netgen.Assemble(nodes, in.Radius)
}

// detectionJSON is the serialized form of a detection result.
type detectionJSON struct {
	Boundary []int   `json:"boundary"`
	Groups   [][]int `json:"groups,omitempty"`
}

// WriteDetectionJSON serializes a boundary mask and its grouping as node ID
// lists.
func WriteDetectionJSON(w io.Writer, boundary []bool, groups [][]int) error {
	out := detectionJSON{Groups: groups}
	for i, b := range boundary {
		if b {
			out.Boundary = append(out.Boundary, i)
		}
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteCSV writes one experiment table.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("export: row has %d fields, header has %d", len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
