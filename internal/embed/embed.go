// Package embed demonstrates the first "graph theory tools on 3D surfaces"
// application the paper motivates (Sec. I): embedding — assigning global
// virtual coordinates to a reconstructed boundary surface from
// connectivity alone. Landmarks are embedded by classical MDS over their
// pairwise hop distances through the boundary subgraph; every other
// boundary node is then placed by interpolation over its nearby landmarks.
// The result is a connectivity-only localization of the boundary, the
// quality of which is measured against true positions by rigid alignment.
package embed

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mds"
	"repro/internal/mesh"
)

// ErrTooFewLandmarks is returned when the surface has fewer than four
// landmarks, too few to span a 3D embedding.
var ErrTooFewLandmarks = errors.New("embed: surface needs at least 4 landmarks")

// ErrDisconnected is returned when some landmark pair is not connected
// through the boundary subgraph.
var ErrDisconnected = errors.New("embed: landmarks not mutually reachable through the boundary")

// Options configures Surface.
type Options struct {
	// Anchors is the number of nearest landmarks each non-landmark node
	// interpolates over. Zero means 4.
	Anchors int
	// HopScale converts hop counts to distance units. Zero means
	// "estimate from the mesh": the mean Euclidean... no true positions
	// are available to a connectivity-only embedding, so the scale is
	// left at 1 hop = 1 unit; callers comparing against ground truth
	// should align with scale (see Distortion).
	HopScale float64
}

func (o Options) withDefaults() Options {
	if o.Anchors == 0 {
		o.Anchors = 4
	}
	if o.HopScale == 0 {
		o.HopScale = 1
	}
	return o
}

// Embedding is a virtual coordinate assignment for one boundary surface.
type Embedding struct {
	// Nodes lists the embedded boundary node IDs (the surface group).
	Nodes []int
	// Coords holds each node's virtual position, parallel to Nodes.
	Coords []geom.Vec3
	// Landmarks lists the landmark IDs used as the MDS skeleton.
	Landmarks []int

	index map[int]int
}

// Position returns a node's virtual coordinate.
func (e *Embedding) Position(node int) (geom.Vec3, bool) {
	idx, ok := e.index[node]
	if !ok {
		return geom.Zero, false
	}
	return e.Coords[idx], true
}

// Surface embeds a reconstructed boundary surface into 3D virtual
// coordinates using hop distances only.
func Surface(g *graph.Graph, s *mesh.Surface, opts Options) (*Embedding, error) {
	opts = opts.withDefaults()
	lms := s.Landmarks.IDs
	if len(lms) < 4 {
		return nil, ErrTooFewLandmarks
	}
	inGroup := make([]bool, g.Len())
	for _, v := range s.Group {
		inGroup[v] = true
	}
	member := graph.InSet(inGroup)

	// Hop-distance fields from every landmark (reused for interpolation).
	fields := make([][]int, len(lms))
	for i, lm := range lms {
		fields[i] = g.BFSHops([]int{lm}, member, -1)
	}
	// Landmark skeleton via classical MDS on the complete hop matrix.
	dist := func(a, b int) (float64, bool) {
		d := fields[a][lms[b]]
		if d == graph.Unreachable {
			return 0, false
		}
		return opts.HopScale * float64(d), true
	}
	lmCoords, err := mds.Localize(len(lms), dist, mds.Options{SmacofIterations: 60})
	if err != nil {
		if errors.Is(err, mds.ErrDisconnected) {
			return nil, ErrDisconnected
		}
		return nil, fmt.Errorf("landmark MDS: %w", err)
	}

	emb := &Embedding{
		Nodes:     append([]int(nil), s.Group...),
		Coords:    make([]geom.Vec3, len(s.Group)),
		Landmarks: append([]int(nil), lms...),
		index:     make(map[int]int, len(s.Group)),
	}
	sort.Ints(emb.Nodes)
	for k, v := range emb.Nodes {
		emb.index[v] = k
	}
	lmIndex := make(map[int]int, len(lms))
	for i, lm := range lms {
		lmIndex[lm] = i
	}

	type anchor struct {
		lm   int // index into lms
		hops int
	}
	for k, v := range emb.Nodes {
		if li, isLM := lmIndex[v]; isLM {
			emb.Coords[k] = lmCoords[li]
			continue
		}
		// Collect the nearest landmarks by hop distance.
		anchors := make([]anchor, 0, len(lms))
		for i := range lms {
			if d := fields[i][v]; d != graph.Unreachable {
				anchors = append(anchors, anchor{lm: i, hops: d})
			}
		}
		if len(anchors) == 0 {
			// Isolated from every landmark (cannot happen for a
			// connected group, kept defensive): park at origin.
			continue
		}
		sort.Slice(anchors, func(a, b int) bool {
			if anchors[a].hops != anchors[b].hops {
				return anchors[a].hops < anchors[b].hops
			}
			return anchors[a].lm < anchors[b].lm
		})
		if len(anchors) > opts.Anchors {
			anchors = anchors[:opts.Anchors]
		}
		// Inverse-hop-weighted interpolation over the anchors.
		var sum geom.Vec3
		var wsum float64
		for _, a := range anchors {
			w := 1.0 / float64(1+a.hops)
			sum = sum.Add(lmCoords[a.lm].Scale(w))
			wsum += w
		}
		emb.Coords[k] = sum.Scale(1 / wsum)
	}
	return emb, nil
}

// Distortion measures an embedding against true positions: it rigidly
// aligns (with uniform scale chosen by least squares first, since hop
// units are arbitrary) and returns the residual RMSD in true-position
// units, plus the scale applied. Lower is better; the network radius is
// the natural yardstick.
func (e *Embedding) Distortion(truth func(node int) geom.Vec3) (rmsd, scale float64, err error) {
	if len(e.Nodes) < 3 {
		return 0, 0, errors.New("embed: too few nodes for distortion")
	}
	target := make([]geom.Vec3, len(e.Nodes))
	for k, v := range e.Nodes {
		target[k] = truth(v)
	}
	// Least-squares uniform scale between centered configurations.
	cv := geom.Centroid(e.Coords)
	ct := geom.Centroid(target)
	var num, den float64
	for k := range e.Coords {
		num += target[k].Sub(ct).Norm() * e.Coords[k].Sub(cv).Norm()
		den += e.Coords[k].Sub(cv).Norm2()
	}
	if den == 0 {
		return 0, 0, errors.New("embed: degenerate embedding")
	}
	scale = num / den
	scaled := make([]geom.Vec3, len(e.Coords))
	for k, c := range e.Coords {
		scaled[k] = cv.Add(c.Sub(cv).Scale(scale))
	}
	_, rmsd, aerr := geom.AlignRigid(scaled, target)
	if aerr != nil {
		return 0, 0, aerr
	}
	return rmsd, scale, nil
}
