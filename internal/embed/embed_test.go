package embed

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mesh"
	"repro/internal/netgen"
	"repro/internal/shapes"
)

func sphereSurface(t *testing.T) (*netgen.Network, *mesh.Surface) {
	t.Helper()
	net, err := netgen.Generate(netgen.Config{
		Shape:           shapes.NewBall(geom.Zero, 4),
		SurfaceNodes:    500,
		InteriorNodes:   1500,
		TargetAvgDegree: 18,
		Seed:            60,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Detect(net, nil, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := mesh.Build(net.G, res.Groups[0], mesh.Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	return net, s
}

func TestSurfaceEmbeddingSphere(t *testing.T) {
	net, s := sphereSurface(t)
	emb, err := Surface(net.G, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb.Nodes) != len(s.Group) {
		t.Fatalf("embedded %d nodes, group has %d", len(emb.Nodes), len(s.Group))
	}
	for _, v := range emb.Nodes {
		p, ok := emb.Position(v)
		if !ok {
			t.Fatalf("node %d has no position", v)
		}
		if !p.IsFinite() {
			t.Fatalf("node %d has non-finite position %v", v, p)
		}
	}
	if _, ok := emb.Position(-1); ok {
		t.Error("position for a non-member")
	}

	// Connectivity-only embedding of a sphere boundary should land
	// within a couple of radio ranges RMSD of truth after scaled rigid
	// alignment — hop quantization bounds how well it can do.
	rmsd, scale, err := emb.Distortion(func(n int) geom.Vec3 { return net.Nodes[n].Pos })
	if err != nil {
		t.Fatal(err)
	}
	if scale <= 0 {
		t.Errorf("scale = %v", scale)
	}
	if rmsd > 2.5*net.Radius {
		t.Errorf("distortion rmsd = %.2f (%.2f radio ranges), too high", rmsd, rmsd/net.Radius)
	}
}

func TestSurfaceEmbeddingValidation(t *testing.T) {
	net, s := sphereSurface(t)
	// Too few landmarks.
	small := &mesh.Surface{
		Group:     s.Group,
		Landmarks: &mesh.Landmarks{IDs: s.Landmarks.IDs[:3]},
	}
	if _, err := Surface(net.G, small, Options{}); err != ErrTooFewLandmarks {
		t.Errorf("err = %v, want ErrTooFewLandmarks", err)
	}
}

func TestSurfaceEmbeddingDisconnected(t *testing.T) {
	// Two disjoint triangles pretending to be one group: landmark pairs
	// across the split are unreachable.
	g := graph.New(8)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(6, 4)
	s := &mesh.Surface{
		Group:     []int{0, 1, 2, 4, 5, 6},
		Landmarks: &mesh.Landmarks{IDs: []int{0, 1, 4, 5}},
	}
	if _, err := Surface(g, s, Options{}); err != ErrDisconnected {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestDistortionDegenerate(t *testing.T) {
	e := &Embedding{Nodes: []int{0, 1}, Coords: make([]geom.Vec3, 2)}
	if _, _, err := e.Distortion(func(int) geom.Vec3 { return geom.Zero }); err == nil {
		t.Error("too-few-nodes distortion accepted")
	}
	e3 := &Embedding{
		Nodes:  []int{0, 1, 2},
		Coords: make([]geom.Vec3, 3), // all at the origin: degenerate
	}
	if _, _, err := e3.Distortion(func(int) geom.Vec3 { return geom.Zero }); err == nil {
		t.Error("degenerate embedding accepted")
	}
}
