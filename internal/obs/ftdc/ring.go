package ftdc

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// segPrefix/segSuffix frame segment file names: ftdc.<seq>.seg, with a
// fixed-width sequence number so lexical order is write order.
const (
	segPrefix = "ftdc."
	segSuffix = ".seg"
)

func segName(seq int) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// segSeq parses a segment file name; ok is false for foreign files.
func segSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(mid) != 8 {
		return 0, false
	}
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// RingOptions bounds the on-disk ring.
type RingOptions struct {
	// MaxSegmentBytes rotates to a new segment once the current one
	// grows past this size (checked between samples, so a segment can
	// exceed it by at most one record). 0 means 1 MiB.
	MaxSegmentBytes int64
	// MaxSegments caps the segment count; the oldest segment is evicted
	// when a rotation would exceed it. 0 means 8.
	MaxSegments int
}

func (o RingOptions) withDefaults() RingOptions {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 1 << 20
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 8
	}
	return o
}

// RingStats summarizes a ring's lifetime activity.
type RingStats struct {
	// Samples and SchemaWrites total over every segment this ring wrote.
	Samples      int
	SchemaWrites int
	// Segments counts segments created; Evicted counts segments deleted
	// to honor MaxSegments.
	Segments int
	Evicted  int
}

// Ring writes samples into a directory of rotated, evicted segment
// files. Safe for concurrent use (one mutex; the sampler and an
// explicit final flush may race on Close).
type Ring struct {
	dir  string
	opts RingOptions

	mu         sync.Mutex
	f          *os.File
	w          *Writer
	size       int64
	seq        int
	stats      RingStats
	samples    int // samples in the current segment
	schemaBase int // schema writes in already-closed segments
	closed     bool
}

// OpenRing creates (or reuses) dir and starts a fresh segment after any
// segments already present; existing segments count toward the
// MaxSegments bound, so reopening a live capture directory keeps its
// size bounded rather than doubling it.
func OpenRing(dir string, opts RingOptions) (*Ring, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ftdc: ring dir: %w", err)
	}
	r := &Ring{dir: dir, opts: opts.withDefaults()}
	existing, err := r.segments()
	if err != nil {
		return nil, err
	}
	if len(existing) > 0 {
		last, _ := segSeq(filepath.Base(existing[len(existing)-1]))
		r.seq = last + 1
	}
	return r, nil
}

// segments lists the ring's segment paths in sequence order.
func (r *Ring) segments() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("ftdc: ring dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := segSeq(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // fixed-width sequence numbers: lexical = numeric
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(r.dir, n)
	}
	return paths, nil
}

// rotateLocked closes the current segment (if any) and evicts the oldest
// segments beyond the cap before the next one opens.
func (r *Ring) rotateLocked() error {
	if r.f != nil {
		if err := r.f.Close(); err != nil {
			return err
		}
		r.schemaBase += r.w.SchemaWrites
		r.f, r.w, r.size, r.samples = nil, nil, 0, 0
	}
	segs, err := r.segments()
	if err != nil {
		return err
	}
	// Evict down to MaxSegments-1 so the about-to-open segment fits.
	for len(segs) > r.opts.MaxSegments-1 {
		if err := os.Remove(segs[0]); err != nil {
			return fmt.Errorf("ftdc: evicting %s: %w", segs[0], err)
		}
		r.stats.Evicted++
		segs = segs[1:]
	}
	return nil
}

// openLocked starts the next segment.
func (r *Ring) openLocked() error {
	f, err := os.OpenFile(filepath.Join(r.dir, segName(r.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ftdc: new segment: %w", err)
	}
	r.seq++
	r.f = f
	r.w = NewWriter(&countingWriter{f: f, n: &r.size})
	r.stats.Segments++
	return nil
}

// countingWriter tracks bytes written into the current segment.
type countingWriter struct {
	f *os.File
	n *int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	*c.n += int64(n)
	return n, err
}

// WriteSample appends one document, rotating and evicting as needed.
func (r *Ring) WriteSample(doc []obs.Metric) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("ftdc: ring closed")
	}
	if r.f != nil && r.size >= r.opts.MaxSegmentBytes {
		if err := r.rotateLocked(); err != nil {
			return err
		}
	}
	if r.f == nil {
		if err := r.rotateLocked(); err != nil { // evict before opening
			return err
		}
		if err := r.openLocked(); err != nil {
			return err
		}
	}
	if err := r.w.WriteSample(doc); err != nil {
		return err
	}
	r.samples++
	r.stats.Samples++
	// Schema writes are tracked per segment writer; fold the latest in.
	r.stats.SchemaWrites = r.schemaBase + r.w.SchemaWrites
	return nil
}

// Close finishes the current segment.
func (r *Ring) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.f != nil {
		err := r.f.Close()
		r.f, r.w = nil, nil
		return err
	}
	return nil
}

// Stats returns the ring's lifetime activity.
func (r *Ring) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
