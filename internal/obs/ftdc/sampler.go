package ftdc

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Sampler snapshots an *obs.Metrics into a Ring at a fixed interval: one
// sample immediately on start (so even sub-interval runs leave a
// record), one per tick, and one final exact sample on Stop after all
// emitters have quiesced. The capture path never touches the pipeline —
// the Metrics sink is the only shared state, and its record side is
// lock- and allocation-free — so sampling on cannot change verdicts.
type Sampler struct {
	m        *obs.Metrics
	ring     *Ring
	interval time.Duration

	mu   sync.Mutex
	buf  []obs.Metric
	err  error
	done chan struct{}
	wg   sync.WaitGroup
}

// StartSampler begins capturing m into ring every interval (minimum
// 10ms; 0 means 1s). The sampler owns the ring from here: Stop closes
// it.
func StartSampler(m *obs.Metrics, ring *Ring, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s := &Sampler{m: m, ring: ring, interval: interval, done: make(chan struct{})}
	s.sample()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.sample()
			case <-s.done:
				return
			}
		}
	}()
	return s
}

// sample writes one snapshot; write errors are sticky — the capture
// layer must never take down the process it observes, so failures
// surface once, at Stop.
func (s *Sampler) sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.buf = s.m.Snapshot(s.buf[:0])
	// The timestamp key sorts after every metric family ("trans/" <
	// "ts/"), so appending keeps the document key-sorted.
	s.buf = append(s.buf, obs.Metric{Key: "ts/unix_ns", Value: time.Now().UnixNano()})
	s.err = s.ring.WriteSample(s.buf)
}

// Stop writes the final sample, closes the ring, and returns the first
// capture error. The final sample is exact when every emitter has
// stopped before Stop is called.
func (s *Sampler) Stop() error {
	close(s.done)
	s.wg.Wait()
	s.sample()
	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	if cerr := s.ring.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats exposes the ring's activity (for logs and gates).
func (s *Sampler) Stats() RingStats { return s.ring.Stats() }

// DirStats aggregates a decoded capture directory.
type DirStats struct {
	// Segments decoded, samples recovered, and schema records seen
	// across every segment.
	Segments      int `json:"segments"`
	Samples       int `json:"samples"`
	SchemaChanges int `json:"schema_changes"`
}

// ReadDir decodes every segment of a capture directory in write order,
// returning all samples plus the aggregate stats. Any undecodable
// segment fails the whole read — a production gate must notice
// corruption, not skip it.
func ReadDir(dir string) ([]Sample, DirStats, error) {
	r := &Ring{dir: dir}
	segs, err := r.segments()
	if err != nil {
		return nil, DirStats{}, err
	}
	if len(segs) == 0 {
		return nil, DirStats{}, fmt.Errorf("ftdc: no segments in %s", dir)
	}
	var out []Sample
	var stats DirStats
	for _, path := range segs {
		f, err := os.Open(path)
		if err != nil {
			return out, stats, err
		}
		rd := NewReader(f)
		for {
			smp, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return out, stats, fmt.Errorf("%s: %w", path, err)
			}
			out = append(out, smp)
			stats.Samples++
		}
		stats.SchemaChanges += rd.SchemaReads
		stats.Segments++
		f.Close()
	}
	return out, stats, nil
}

// CounterTotals projects a sample's "ctr/<stage>/<counter>" metrics into
// the "stage/counter" map format of obs.Mem.Totals and
// obs.Metrics.Totals, so a decoded ring diffs key for key against an
// in-memory sink.
func CounterTotals(s Sample) map[string]int64 {
	out := make(map[string]int64)
	for _, m := range s.Metrics {
		if rest, ok := strings.CutPrefix(m.Key, "ctr/"); ok && m.Value != 0 {
			out[rest] = m.Value
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Summary projects a sample onto an obs.TraceSummary — counter totals,
// spans, rounds, transitions and per-stage wall time — so a decoded ring
// flows into the same diff machinery (analyze.DiffTraces) as a JSONL
// trace. Keys naming unknown enum spellings are skipped.
func Summary(s Sample) obs.TraceSummary {
	sum := obs.TraceSummary{
		Spans:       map[obs.Stage]int{},
		Counters:    map[obs.Stage]map[obs.Counter]int64{},
		Rounds:      map[obs.Stage]int{},
		Transitions: map[obs.Transition]int{},
		Wall:        map[obs.Stage]int64{},
	}
	for _, m := range s.Metrics {
		switch {
		case strings.HasPrefix(m.Key, "ctr/"):
			rest := m.Key[len("ctr/"):]
			i := strings.IndexByte(rest, '/')
			if i < 0 {
				continue
			}
			st, ok1 := obs.StageFromString(rest[:i])
			ctr, ok2 := obs.CounterFromString(rest[i+1:])
			if !ok1 || !ok2 {
				continue
			}
			if sum.Counters[st] == nil {
				sum.Counters[st] = map[obs.Counter]int64{}
			}
			sum.Counters[st][ctr] += m.Value
		case strings.HasPrefix(m.Key, "spans/"):
			if st, ok := obs.StageFromString(m.Key[len("spans/"):]); ok {
				sum.Spans[st] = int(m.Value)
			}
		case strings.HasPrefix(m.Key, "rounds/"):
			if st, ok := obs.StageFromString(m.Key[len("rounds/"):]); ok {
				sum.Rounds[st] = int(m.Value)
			}
		case strings.HasPrefix(m.Key, "trans/"):
			if tr, ok := obs.TransitionFromString(m.Key[len("trans/"):]); ok {
				sum.Transitions[tr] = int(m.Value)
			}
		case strings.HasPrefix(m.Key, "lat/") && strings.HasSuffix(m.Key, "/sum"):
			name := strings.TrimSuffix(m.Key[len("lat/"):], "/sum")
			if st, ok := obs.StageFromString(name); ok {
				sum.Wall[st] = m.Value
			}
		}
	}
	return sum
}

// Latency reconstructs one stage's histogram snapshot from a sample's
// "lat/<stage>/..." metrics; empty when the stage never completed a
// span.
func Latency(s Sample, stage string) obs.HistSnapshot {
	prefix := "lat/" + stage + "/"
	var snap obs.HistSnapshot
	for _, m := range s.Metrics {
		rest, ok := strings.CutPrefix(m.Key, prefix)
		if !ok {
			continue
		}
		if rest == "sum" {
			snap.SumNS = m.Value
			continue
		}
		idxs, ok := strings.CutPrefix(rest, "b")
		if !ok {
			continue
		}
		idx, err := strconv.Atoi(idxs)
		if err != nil || idx < 0 || idx >= obs.HistBuckets {
			continue
		}
		if snap.Counts == nil {
			snap.Counts = make([]int64, obs.HistBuckets)
		}
		snap.Counts[idx] = m.Value
	}
	return snap
}

// LatencyStages lists the stage names with latency data in the sample,
// sorted.
func LatencyStages(s Sample) []string {
	seen := map[string]bool{}
	for _, m := range s.Metrics {
		if rest, ok := strings.CutPrefix(m.Key, "lat/"); ok {
			if i := strings.IndexByte(rest, '/'); i > 0 {
				seen[rest[:i]] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
