// Package ftdc is the always-on telemetry capture: an FTDC-style
// (MongoDB "full-time diagnostic data capture") binary, schema-stamped,
// delta-encoded periodic recording of the obs counter and latency-
// histogram set, written into a size-bounded on-disk ring of segment
// files cheap enough to leave running under a production boundaryd.
//
// The pipeline is: a fixed-interval Sampler snapshots an *obs.Metrics
// into a key-sorted document ([]obs.Metric); a Writer encodes the
// document stream — a schema record whenever the key set changes, then
// varint zig-zag deltas of each sample against the previous one — and a
// Ring rotates Writers across numbered segment files, evicting the
// oldest segment once the ring is full. Every segment is self-contained
// (fresh header, schema, and absolute first sample), so eviction never
// strands a reader mid-delta-chain.
//
// Wire format (all integers are unsigned or zig-zag varints, DESIGN.md
// §14 has the worked example):
//
//	segment  = magic "FTDC3DWB" version(1) record*
//	record   = kind(1) uvarint(len) payload crc32le(payload)
//	schema   = 'S' record: uvarint(n) then n × (uvarint(len) key-bytes),
//	           keys strictly increasing; resets the delta base to zeros
//	sample   = 'D' record: uvarint(n) — must equal the schema width —
//	           then n zig-zag varints, each the delta of one metric
//	           against the previous sample (absolute after a schema)
//
// The Reader is strict and total: any truncation, CRC mismatch, varint
// overflow, schema violation, or width mismatch is a diagnosed error,
// never a panic (FuzzFTDCReader pins that), and a clean decode
// reproduces every written sample exactly (TestFTDCRoundTrip pins that).
package ftdc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/obs"
)

// magic opens every segment file.
var magic = [8]byte{'F', 'T', 'D', 'C', '3', 'D', 'W', 'B'}

// version is the format version stamped after the magic.
const version = 1

// Record kinds.
const (
	recSchema byte = 'S'
	recSample byte = 'D'
)

// maxRecordBytes bounds one record's payload; a full obs vocabulary
// snapshot is a few KB, so this is generous while keeping a corrupt
// length prefix from provoking a huge allocation.
const maxRecordBytes = 1 << 24

// maxKeyBytes bounds one schema key.
const maxKeyBytes = 4096

// Writer encodes a stream of key-sorted sample documents onto one
// io.Writer. Not safe for concurrent use; the Ring and Sampler serialize
// access.
type Writer struct {
	w       io.Writer
	schema  []string
	prev    []int64
	buf     []byte
	started bool

	// Samples and SchemaWrites count what this writer emitted.
	Samples      int
	SchemaWrites int
}

// NewWriter wraps w; the segment header is written with the first
// sample.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// sameSchema reports whether the document's key set matches the current
// schema exactly (same keys, same order).
func (w *Writer) sameSchema(doc []obs.Metric) bool {
	if len(doc) != len(w.schema) {
		return false
	}
	for i, m := range doc {
		if m.Key != w.schema[i] {
			return false
		}
	}
	return true
}

// writeRecord frames one payload: kind, length, payload, CRC32.
func (w *Writer) writeRecord(kind byte, payload []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = kind
	n := 1 + binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.w.Write(crc[:])
	return err
}

// WriteSample appends one document. Keys must be sorted strictly
// ascending (obs.Metrics.Snapshot's order); a key-set change emits a
// schema record first and restarts the delta chain from zero.
func (w *Writer) WriteSample(doc []obs.Metric) error {
	for i, m := range doc {
		if len(m.Key) == 0 || len(m.Key) > maxKeyBytes {
			return fmt.Errorf("ftdc: sample key length %d out of range", len(m.Key))
		}
		if i > 0 && doc[i-1].Key >= m.Key {
			return fmt.Errorf("ftdc: sample keys not strictly ascending at %q >= %q", doc[i-1].Key, m.Key)
		}
	}
	if !w.started {
		if _, err := w.w.Write(magic[:]); err != nil {
			return err
		}
		if _, err := w.w.Write([]byte{version}); err != nil {
			return err
		}
		w.started = true
	}
	if w.SchemaWrites == 0 || !w.sameSchema(doc) {
		w.buf = w.buf[:0]
		w.buf = binary.AppendUvarint(w.buf, uint64(len(doc)))
		w.schema = w.schema[:0]
		for _, m := range doc {
			w.buf = binary.AppendUvarint(w.buf, uint64(len(m.Key)))
			w.buf = append(w.buf, m.Key...)
			w.schema = append(w.schema, m.Key)
		}
		if err := w.writeRecord(recSchema, w.buf); err != nil {
			return err
		}
		w.SchemaWrites++
		w.prev = w.prev[:0]
		for range doc {
			w.prev = append(w.prev, 0)
		}
	}
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(len(doc)))
	for i, m := range doc {
		w.buf = binary.AppendUvarint(w.buf, zigzag(m.Value-w.prev[i]))
		w.prev[i] = m.Value
	}
	if err := w.writeRecord(recSample, w.buf); err != nil {
		return err
	}
	w.Samples++
	return nil
}

// Sample is one decoded document: the metrics in schema (key-sorted)
// order.
type Sample struct {
	Metrics []obs.Metric
}

// Value returns one metric by key; zero and false when absent.
func (s Sample) Value(key string) (int64, bool) {
	for _, m := range s.Metrics {
		if m.Key == key {
			return m.Value, true
		}
	}
	return 0, false
}

// Reader decodes one segment stream. Use Next until io.EOF.
type Reader struct {
	r      io.Reader
	schema []string
	prev   []int64
	header bool

	// SchemaReads counts schema records seen.
	SchemaReads int
}

// NewReader wraps one segment's byte stream.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// readFull reads exactly len(p) bytes, diagnosing truncation.
func (r *Reader) readFull(p []byte, what string) error {
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("ftdc: truncated %s", what)
		}
		return err
	}
	return nil
}

// readByte reads one byte; io.EOF maps to sentinel eof for record
// boundaries only.
func (r *Reader) readByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(r.r, b[:])
	return b[0], err
}

// uvarint decodes an unsigned varint from a payload slice.
func uvarint(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("ftdc: bad varint in %s", what)
	}
	return v, p[n:], nil
}

// Next decodes the next sample, reading through any schema record in the
// way. Returns io.EOF exactly at a clean segment end.
func (r *Reader) Next() (Sample, error) {
	if !r.header {
		var hdr [9]byte
		if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
			if err == io.EOF {
				return Sample{}, fmt.Errorf("ftdc: empty segment")
			}
			return Sample{}, fmt.Errorf("ftdc: truncated header")
		}
		if [8]byte(hdr[:8]) != magic {
			return Sample{}, fmt.Errorf("ftdc: bad magic %q", hdr[:8])
		}
		if hdr[8] != version {
			return Sample{}, fmt.Errorf("ftdc: unsupported version %d", hdr[8])
		}
		r.header = true
	}
	for {
		kind, err := r.readByte()
		if err == io.EOF {
			return Sample{}, io.EOF
		}
		if err != nil {
			return Sample{}, fmt.Errorf("ftdc: reading record kind: %w", err)
		}
		payload, err := r.readPayload()
		if err != nil {
			return Sample{}, err
		}
		switch kind {
		case recSchema:
			if err := r.decodeSchema(payload); err != nil {
				return Sample{}, err
			}
		case recSample:
			return r.decodeSample(payload)
		default:
			return Sample{}, fmt.Errorf("ftdc: unknown record kind %q", kind)
		}
	}
}

// readPayload reads one record's length-prefixed, CRC-guarded payload.
func (r *Reader) readPayload() ([]byte, error) {
	// The length prefix is a varint read byte by byte (it precedes the
	// payload, so it cannot be sliced out of one).
	var length uint64
	for shift := 0; ; shift += 7 {
		if shift >= 64 {
			return nil, fmt.Errorf("ftdc: record length varint overflow")
		}
		b, err := r.readByte()
		if err != nil {
			return nil, fmt.Errorf("ftdc: truncated record length")
		}
		length |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			break
		}
	}
	if length > maxRecordBytes {
		return nil, fmt.Errorf("ftdc: record length %d exceeds limit %d", length, maxRecordBytes)
	}
	payload := make([]byte, length)
	if err := r.readFull(payload, "record payload"); err != nil {
		return nil, err
	}
	var crc [4]byte
	if err := r.readFull(crc[:], "record checksum"); err != nil {
		return nil, err
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("ftdc: record checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, nil
}

func (r *Reader) decodeSchema(payload []byte) error {
	n, rest, err := uvarint(payload, "schema width")
	if err != nil {
		return err
	}
	if n > maxRecordBytes {
		return fmt.Errorf("ftdc: schema width %d out of range", n)
	}
	schema := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var klen uint64
		klen, rest, err = uvarint(rest, "schema key length")
		if err != nil {
			return err
		}
		if klen == 0 || klen > maxKeyBytes {
			return fmt.Errorf("ftdc: schema key length %d out of range", klen)
		}
		if uint64(len(rest)) < klen {
			return fmt.Errorf("ftdc: truncated schema key")
		}
		key := string(rest[:klen])
		rest = rest[klen:]
		if len(schema) > 0 && schema[len(schema)-1] >= key {
			return fmt.Errorf("ftdc: schema keys not strictly ascending at %q", key)
		}
		schema = append(schema, key)
	}
	if len(rest) != 0 {
		return fmt.Errorf("ftdc: %d trailing bytes after schema", len(rest))
	}
	r.schema = schema
	r.prev = make([]int64, len(schema))
	r.SchemaReads++
	return nil
}

func (r *Reader) decodeSample(payload []byte) (Sample, error) {
	if r.schema == nil {
		return Sample{}, fmt.Errorf("ftdc: sample record before any schema")
	}
	n, rest, err := uvarint(payload, "sample width")
	if err != nil {
		return Sample{}, err
	}
	if n != uint64(len(r.schema)) {
		return Sample{}, fmt.Errorf("ftdc: sample width %d, schema has %d keys", n, len(r.schema))
	}
	out := make([]obs.Metric, len(r.schema))
	for i := range r.schema {
		var u uint64
		u, rest, err = uvarint(rest, "sample delta")
		if err != nil {
			return Sample{}, err
		}
		d := unzigzag(u)
		// Guard against overflow wrapping the running value; deltas come
		// from int64 subtraction so any wrap means corruption.
		v := r.prev[i] + d
		if (d > 0 && v < r.prev[i]) || (d < 0 && v > r.prev[i]) {
			return Sample{}, fmt.Errorf("ftdc: sample value overflow at key %q", r.schema[i])
		}
		r.prev[i] = v
		out[i] = obs.Metric{Key: r.schema[i], Value: v}
	}
	if len(rest) != 0 {
		return Sample{}, fmt.Errorf("ftdc: %d trailing bytes after sample", len(rest))
	}
	return Sample{Metrics: out}, nil
}

// ReadAll decodes one whole segment stream.
func ReadAll(r io.Reader) ([]Sample, error) {
	rd := NewReader(r)
	var out []Sample
	for {
		s, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if len(out) == math.MaxInt32 {
			return out, fmt.Errorf("ftdc: too many samples")
		}
		out = append(out, s)
	}
}
