package ftdc

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// doc builds a key-sorted document from pairs.
func doc(kv ...any) []obs.Metric {
	var out []obs.Metric
	for i := 0; i < len(kv); i += 2 {
		out = append(out, obs.Metric{Key: kv[i].(string), Value: int64(kv[i+1].(int))})
	}
	return out
}

// TestFTDCRoundTrip: every written sample decodes back exactly —
// including schema changes mid-stream, negative values, and extreme
// deltas.
func TestFTDCRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	samples := [][]obs.Metric{
		doc("a", 1, "b", 100),
		doc("a", 2, "b", 90),                       // plain delta
		doc("a", 2, "b", 90, "c", 1),               // key appears: schema change
		doc("a", -50, "b", 90, "c", 1000000),       // negative + big jump
		doc("b", 91, "c", 1000001),                 // key disappears: schema change
		doc("b", 91, "c", 1000001),                 // zero delta
	}
	for _, s := range samples {
		if err := w.WriteSample(s); err != nil {
			t.Fatal(err)
		}
	}
	if w.Samples != len(samples) {
		t.Fatalf("writer counted %d samples, want %d", w.Samples, len(samples))
	}
	if w.SchemaWrites != 3 {
		t.Fatalf("writer counted %d schema writes, want 3", w.SchemaWrites)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(samples))
	}
	for i, s := range samples {
		if !reflect.DeepEqual(got[i].Metrics, s) {
			t.Fatalf("sample %d: got %v, want %v", i, got[i].Metrics, s)
		}
	}
}

// TestFTDCRoundTripRandom drives the codec over randomized growing key
// sets and walks — the property the fuzz target can only probe.
func TestFTDCRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		vals := map[string]int64{}
		var want [][]obs.Metric
		for s := 0; s < 50; s++ {
			if rng.Intn(4) == 0 || len(vals) == 0 {
				vals[fmt.Sprintf("k%03d", len(vals))] = 0
			}
			var d []obs.Metric
			for k := range vals {
				vals[k] += rng.Int63n(2001) - 1000
				d = append(d, obs.Metric{Key: k, Value: vals[k]})
			}
			sortMetrics(d)
			if err := w.WriteSample(d); err != nil {
				t.Fatal(err)
			}
			want = append(want, append([]obs.Metric(nil), d...))
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d samples, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i].Metrics, want[i]) {
				t.Fatalf("trial %d sample %d diverged", trial, i)
			}
		}
	}
}

func sortMetrics(d []obs.Metric) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j-1].Key > d[j].Key; j-- {
			d[j-1], d[j] = d[j], d[j-1]
		}
	}
}

// TestFTDCWriterRejectsUnsorted: the canonical-order contract is
// enforced, not assumed.
func TestFTDCWriterRejectsUnsorted(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.WriteSample(doc("b", 1, "a", 2)); err == nil {
		t.Fatal("unsorted document accepted")
	}
	if err := w.WriteSample(doc("a", 1, "a", 2)); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

// TestFTDCReaderDiagnoses: truncation, corruption, and protocol
// violations all surface as errors, never panics or silent success.
func TestFTDCReaderDiagnoses(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.WriteSample(doc("x", 10*i, "y", i)); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(full); cut++ {
			if _, err := ReadAll(bytes.NewReader(full[:len(full)-cut])); err == nil && cut > 0 {
				// A cut landing exactly on a record boundary decodes the
				// prefix cleanly — that is legitimate (the last record is
				// whole). Verify it decoded fewer samples in that case.
				got, _ := ReadAll(bytes.NewReader(full[:len(full)-cut]))
				if len(got) >= 3 {
					t.Fatalf("cut %d: decoded %d samples from a truncated stream", cut, len(got))
				}
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for i := 9; i < len(full); i += 3 { // skip header; flip every 3rd byte
			mut := append([]byte(nil), full...)
			mut[i] ^= 0x40
			got, err := ReadAll(bytes.NewReader(mut))
			if err == nil && len(got) == 3 {
				// The flip must not produce a clean full-length decode
				// with altered content equal in length; compare values.
				orig, _ := ReadAll(bytes.NewReader(full))
				if reflect.DeepEqual(got, orig) {
					continue // flip in dead space is impossible here, but be safe
				}
				t.Fatalf("byte %d flip: corrupt stream decoded cleanly", i)
			}
		}
	})
	t.Run("badmagic", func(t *testing.T) {
		mut := append([]byte(nil), full...)
		mut[0] = 'X'
		if _, err := ReadAll(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("bad magic: %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
			t.Fatal("empty stream accepted")
		}
	})
}

// TestRingRotationEviction: segments rotate at the size bound, the
// oldest is evicted at the count bound, and the surviving ring decodes
// cleanly with every segment self-contained.
func TestRingRotationEviction(t *testing.T) {
	dir := t.TempDir()
	ring, err := OpenRing(dir, RingOptions{MaxSegmentBytes: 256, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Metrics
	for i := 0; i < 200; i++ {
		m.Count(obs.StageUBF, obs.CtrBallsTested, 13)
		m.StageEnd(obs.StageUBF, "", int64(1000+i))
		if err := ring.WriteSample(m.Snapshot(nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}
	st := ring.Stats()
	if st.Samples != 200 || st.Segments < 4 || st.Evicted == 0 {
		t.Fatalf("ring stats %+v: want 200 samples, >3 segments, evictions", st)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "ftdc.*.seg"))
	if err != nil || len(segs) > 3 || len(segs) == 0 {
		t.Fatalf("segment files on disk: %v (err %v), want 1..3", segs, err)
	}
	samples, dst, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Segments != len(segs) || dst.Samples != len(samples) || len(samples) == 0 {
		t.Fatalf("decode stats %+v over %d files", dst, len(segs))
	}
	// The final sample carries the full totals even though early
	// segments were evicted: the counter is cumulative.
	last := samples[len(samples)-1]
	if v, ok := last.Value("ctr/ubf/balls_tested"); !ok || v != 200*13 {
		t.Fatalf("final balls_tested = %d (ok=%v), want %d", v, ok, 200*13)
	}
	// Reopening the directory continues the sequence without clobbering.
	ring2, err := OpenRing(dir, RingOptions{MaxSegmentBytes: 256, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ring2.WriteSample(doc("z", 1)); err != nil {
		t.Fatal(err)
	}
	if err := ring2.Close(); err != nil {
		t.Fatal(err)
	}
	segs2, _ := filepath.Glob(filepath.Join(dir, "ftdc.*.seg"))
	if len(segs2) > 3 {
		t.Fatalf("reopened ring exceeded the segment cap: %v", segs2)
	}
}

// TestSamplerExactFinalSample: a sampler capturing a Metrics teed with
// an in-memory sink produces a ring whose decoded final sample matches
// the Mem totals exactly — the acceptance gate of the capture layer.
func TestSamplerExactFinalSample(t *testing.T) {
	dir := t.TempDir()
	ring, err := OpenRing(dir, RingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Metrics
	mem := &obs.Mem{}
	o := obs.Tee(&m, mem)
	s := StartSampler(&m, ring, 20*time.Millisecond)

	rng := rand.New(rand.NewSource(3))
	deadline := time.Now().Add(120 * time.Millisecond)
	for time.Now().Before(deadline) {
		obs.Add(o, obs.StageIFF, obs.CtrMsgsSent, rng.Int63n(50))
		obs.Add(o, obs.StageServe, obs.CtrDeltas, 1)
		sp := obs.Start(o, obs.StageIncremental)
		sp.End()
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Samples < 2 {
		t.Fatalf("sampler wrote %d samples, want >= 2 (initial + final)", st.Samples)
	}

	samples, _, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	final := samples[len(samples)-1]
	got := CounterTotals(final)
	want := mem.Totals()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded final counters %v\n  != in-memory sink %v", got, want)
	}
	// Latency histogram: count equals completed incremental spans, and
	// the quantile summary is populated.
	lat := Latency(final, obs.StageIncremental.String())
	if int(lat.Count()) != mem.Spans(obs.StageIncremental) {
		t.Fatalf("decoded %d incremental spans, mem has %d", lat.Count(), mem.Spans(obs.StageIncremental))
	}
	if st := lat.Stats(); st.P50NS < 0 || st.P99NS < st.P50NS || st.Count == 0 {
		t.Fatalf("bad decoded latency stats %+v", st)
	}
	if stages := LatencyStages(final); len(stages) == 0 {
		t.Fatal("no latency stages decoded")
	}
	// Monotonicity: cumulative counters never decrease across samples.
	var prev int64 = math.MinInt64
	for _, smp := range samples {
		v, _ := smp.Value("ctr/serve/deltas_applied")
		if v < prev {
			t.Fatalf("deltas_applied went backwards: %d after %d", v, prev)
		}
		prev = v
	}
}

// TestRingClosedWrite: writes after Close fail loudly.
func TestRingClosedWrite(t *testing.T) {
	ring, err := OpenRing(t.TempDir(), RingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ring.WriteSample(doc("a", 1)); err == nil {
		t.Fatal("write after close succeeded")
	}
	if err := ring.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestReadDirEmpty: a directory with no segments is an error, not an
// empty success — a smoke gate must distinguish "no capture" from
// "clean capture".
func TestReadDirEmpty(t *testing.T) {
	if _, _, err := ReadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, _, err := ReadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
	// Foreign files are ignored, not decoded.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDir(dir); err == nil {
		t.Fatal("dir with only foreign files accepted")
	}
}
