package ftdc

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// FuzzFTDCReader: the decoder is total — arbitrary bytes (including
// truncated and bit-flipped valid streams) must produce a diagnosed
// error or a clean decode, never a panic, unbounded allocation, or hang.
// Decodable prefixes of writer output must round-trip losslessly.
func FuzzFTDCReader(f *testing.F) {
	// Seed with real writer output at a few schema shapes.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteSample([]obs.Metric{{Key: "ctr/ubf/balls_tested", Value: 42}})
	w.WriteSample([]obs.Metric{{Key: "ctr/ubf/balls_tested", Value: 99}})
	w.WriteSample([]obs.Metric{
		{Key: "ctr/ubf/balls_tested", Value: 100},
		{Key: "lat/serve/b17", Value: 3},
		{Key: "lat/serve/sum", Value: 12345},
	})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("FTDC3DWB"))
	f.Add(append(append([]byte{}, magic[:]...), version))
	f.Add(append(append(append([]byte{}, magic[:]...), version), 'S', 0x01, 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A clean decode must re-encode to a stream that decodes to the
		// same samples — the writer and reader agree on the format.
		var re bytes.Buffer
		w := NewWriter(&re)
		for _, s := range samples {
			if werr := w.WriteSample(s.Metrics); werr != nil {
				t.Fatalf("decoded sample rejected by writer: %v", werr)
			}
		}
		if len(samples) == 0 {
			return
		}
		back, rerr := ReadAll(bytes.NewReader(re.Bytes()))
		if rerr != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", rerr)
		}
		if len(back) != len(samples) {
			t.Fatalf("re-encode changed sample count: %d -> %d", len(samples), len(back))
		}
		for i := range samples {
			if len(back[i].Metrics) != len(samples[i].Metrics) {
				t.Fatalf("sample %d changed width", i)
			}
			for j := range samples[i].Metrics {
				if back[i].Metrics[j] != samples[i].Metrics[j] {
					t.Fatalf("sample %d metric %d changed: %v -> %v",
						i, j, samples[i].Metrics[j], back[i].Metrics[j])
				}
			}
		}
	})
}
