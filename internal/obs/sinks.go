package obs

import "sync"

// EventKind distinguishes the event types a sink records.
type EventKind uint8

const (
	// KindBegin opens a span.
	KindBegin EventKind = iota + 1
	// KindEnd closes a span, carrying wall time.
	KindEnd
	// KindCount carries one counter increment.
	KindCount
	// KindRoundBegin opens one protocol round of the flight recorder.
	KindRoundBegin
	// KindRoundEnd closes a round, carrying its RoundStats.
	KindRoundEnd
	// KindTransition records one node state change.
	KindTransition
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindEnd:
		return "end"
	case KindCount:
		return "count"
	case KindRoundBegin:
		return "round_begin"
	case KindRoundEnd:
		return "round_end"
	case KindTransition:
		return "trans"
	}
	return "kind?"
}

// Event is one recorded observation, the common currency of the sinks and
// the JSONL trace schema.
type Event struct {
	Kind    EventKind
	Stage   Stage
	Label   string     // "" except for labeled (cell) spans
	Counter Counter    // KindCount only
	Value   int64      // counter delta (KindCount); transition payload (KindTransition)
	WallNS  int64      // span wall time (KindEnd only)
	Round   int        // KindRoundBegin/KindRoundEnd only
	Stats   RoundStats // KindRoundEnd only
	Trans   Transition // KindTransition only
	Node    int        // KindTransition only
}

// Mem is an in-memory sink for tests: it records every event in arrival
// order and aggregates counters. Safe for concurrent use. The zero value
// is ready.
type Mem struct {
	mu     sync.Mutex
	events []Event
	totals map[[2]uint8]int64 // (stage, counter) -> sum
	spans  map[Stage]int      // completed spans per stage
	open   map[Stage]int      // begun-but-unended spans per stage
	rounds map[Stage]int      // completed rounds per stage
	trans  map[Transition]int // node transitions per kind
}

// StageBegin implements Observer.
func (m *Mem) StageBegin(s Stage, label string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, Event{Kind: KindBegin, Stage: s, Label: label})
	if m.open == nil {
		m.open = make(map[Stage]int)
	}
	m.open[s]++
}

// StageEnd implements Observer.
func (m *Mem) StageEnd(s Stage, label string, wallNS int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, Event{Kind: KindEnd, Stage: s, Label: label, WallNS: wallNS})
	if m.spans == nil {
		m.spans = make(map[Stage]int)
	}
	m.spans[s]++
	if m.open != nil {
		m.open[s]--
	}
}

// Count implements Observer.
func (m *Mem) Count(s Stage, c Counter, delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, Event{Kind: KindCount, Stage: s, Counter: c, Value: delta})
	if m.totals == nil {
		m.totals = make(map[[2]uint8]int64)
	}
	m.totals[[2]uint8{uint8(s), uint8(c)}] += delta
}

// RoundBegin implements Observer.
func (m *Mem) RoundBegin(s Stage, round int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, Event{Kind: KindRoundBegin, Stage: s, Round: round})
}

// RoundEnd implements Observer.
func (m *Mem) RoundEnd(s Stage, round int, rs RoundStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, Event{Kind: KindRoundEnd, Stage: s, Round: round, Stats: rs})
	if m.rounds == nil {
		m.rounds = make(map[Stage]int)
	}
	m.rounds[s]++
}

// NodeTransition implements Observer.
func (m *Mem) NodeTransition(s Stage, t Transition, node int, value int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, Event{Kind: KindTransition, Stage: s, Trans: t, Node: node, Value: value})
	if m.trans == nil {
		m.trans = make(map[Transition]int)
	}
	m.trans[t]++
}

// Rounds returns how many completed rounds the stage recorded.
func (m *Mem) Rounds(s Stage) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rounds[s]
}

// Transitions returns how many state changes of the kind were recorded.
func (m *Mem) Transitions(t Transition) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trans[t]
}

// Events returns a copy of everything recorded, in arrival order.
func (m *Mem) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Total returns the accumulated value of one stage's counter.
func (m *Mem) Total(s Stage, c Counter) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totals[[2]uint8{uint8(s), uint8(c)}]
}

// CounterTotal sums one counter across every stage.
func (m *Mem) CounterTotal(c Counter) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for k, v := range m.totals {
		if k[1] == uint8(c) {
			t += v
		}
	}
	return t
}

// Spans returns how many completed (ended) spans the stage recorded.
func (m *Mem) Spans(s Stage) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spans[s]
}

// Unbalanced reports stages with begun-but-never-ended spans — an
// instrumentation bug the tests assert against.
func (m *Mem) Unbalanced() []Stage {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Stage
	for s := Stage(1); s < stageEnd; s++ {
		if m.open[s] != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Totals flattens the aggregated counters into a "stage/counter" -> value
// map — the per-cell roll-up format eval.Engine attaches to sweep points.
func (m *Mem) Totals() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.totals) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m.totals))
	for k, v := range m.totals {
		out[Stage(k[0]).String()+"/"+Counter(k[1]).String()] = v
	}
	return out
}

// Reset drops everything recorded.
func (m *Mem) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events, m.totals, m.spans, m.open = nil, nil, nil, nil
	m.rounds, m.trans = nil, nil
}

// tee fans every event out to two observers.
type tee struct{ a, b Observer }

// Tee returns an observer forwarding to both arguments; either may be
// nil, in which case the other is returned directly.
func Tee(a, b Observer) Observer {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return tee{a, b}
}

func (t tee) StageBegin(s Stage, label string) {
	t.a.StageBegin(s, label)
	t.b.StageBegin(s, label)
}

func (t tee) StageEnd(s Stage, label string, wallNS int64) {
	t.a.StageEnd(s, label, wallNS)
	t.b.StageEnd(s, label, wallNS)
}

func (t tee) Count(s Stage, c Counter, delta int64) {
	t.a.Count(s, c, delta)
	t.b.Count(s, c, delta)
}

func (t tee) RoundBegin(s Stage, round int) {
	t.a.RoundBegin(s, round)
	t.b.RoundBegin(s, round)
}

func (t tee) RoundEnd(s Stage, round int, rs RoundStats) {
	t.a.RoundEnd(s, round, rs)
	t.b.RoundEnd(s, round, rs)
}

func (t tee) NodeTransition(s Stage, tr Transition, node int, value int64) {
	t.a.NodeTransition(s, tr, node, value)
	t.b.NodeTransition(s, tr, node, value)
}
