package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler captures optional CPU and heap profiles around a run — the
// third leg of the observability layer next to spans and counters. Start
// it before the work, Stop after; either path may be empty to skip that
// profile. Paths get the conventional suffixes when the caller passes a
// bare prefix via StartProfilePrefix.
type Profiler struct {
	cpuFile  *os.File
	heapPath string
}

// StartProfile begins CPU profiling to cpuPath (when non-empty) and
// remembers heapPath for a heap snapshot at Stop (when non-empty).
func StartProfile(cpuPath, heapPath string) (*Profiler, error) {
	p := &Profiler{heapPath: heapPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// StartProfilePrefix is StartProfile with conventional file names derived
// from one prefix: <prefix>.cpu.pprof and <prefix>.heap.pprof.
func StartProfilePrefix(prefix string) (*Profiler, error) {
	if prefix == "" {
		return &Profiler{}, nil
	}
	return StartProfile(prefix+".cpu.pprof", prefix+".heap.pprof")
}

// Stop ends CPU profiling and writes the heap snapshot. Safe to call on
// a zero-configured profiler; not idempotent beyond that.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	var firstErr error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			firstErr = err
		}
		p.cpuFile = nil
	}
	if p.heapPath != "" {
		f, err := os.Create(p.heapPath)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			runtime.GC() // settle the heap so the snapshot reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		p.heapPath = ""
	}
	return firstErr
}
