package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestStageCounterStringRoundTrip: every stage and counter survives the
// String/FromString round trip, and unknown names are rejected.
func TestStageCounterStringRoundTrip(t *testing.T) {
	for s := Stage(1); s < stageEnd; s++ {
		name := s.String()
		if name == "stage?" {
			t.Fatalf("stage %d has no name", s)
		}
		back, ok := StageFromString(name)
		if !ok || back != s {
			t.Errorf("stage %d -> %q -> (%d, %v)", s, name, back, ok)
		}
	}
	for c := Counter(1); c < counterEnd; c++ {
		name := c.String()
		if name == "counter?" {
			t.Fatalf("counter %d has no name", c)
		}
		back, ok := CounterFromString(name)
		if !ok || back != c {
			t.Errorf("counter %d -> %q -> (%d, %v)", c, name, back, ok)
		}
	}
	if _, ok := StageFromString("bogus"); ok {
		t.Error("bogus stage accepted")
	}
	if _, ok := CounterFromString("bogus"); ok {
		t.Error("bogus counter accepted")
	}
	if Stage(200).String() != "stage?" || Counter(200).String() != "counter?" {
		t.Error("unknown enum values must print as placeholders")
	}
}

// TestNilObserverZeroAllocs: the no-op path — the one every unobserved
// pipeline run takes — must not allocate.
func TestNilObserverZeroAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		span := Start(nil, StageUBF)
		Add(nil, StageUBF, CtrBallsTested, 7)
		Add(nil, StageUBF, CtrNodesChecked, 0)
		RoundBegin(nil, StageIFF, 0)
		RoundEnd(nil, StageIFF, 0, RoundStats{Sent: 1})
		NodeTransition(nil, StageIFF, TransIFFRescind, 3, 1)
		inner := StartLabeled(nil, StageCell, "cell-label")
		inner.End()
		span.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-observer path allocates %.1f times per run, want 0", allocs)
	}
}

// TestMemSink: the in-memory sink aggregates counters, counts spans, and
// keeps arrival order.
func TestMemSink(t *testing.T) {
	m := &Mem{}
	span := Start(m, StageUBF)
	Add(m, StageUBF, CtrBallsTested, 5)
	Add(m, StageUBF, CtrBallsTested, 3)
	Add(m, StageIFF, CtrMsgsSent, 10)
	Add(m, StageUBF, CtrNodesChecked, 0) // silent: zero deltas never emit
	span.End()

	if got := m.Total(StageUBF, CtrBallsTested); got != 8 {
		t.Errorf("Total(ubf, balls) = %d, want 8", got)
	}
	if got := m.Total(StageIFF, CtrBallsTested); got != 0 {
		t.Errorf("Total(iff, balls) = %d, want 0", got)
	}
	if got := m.CounterTotal(CtrBallsTested); got != 8 {
		t.Errorf("CounterTotal(balls) = %d, want 8", got)
	}
	if got := m.Spans(StageUBF); got != 1 {
		t.Errorf("Spans(ubf) = %d, want 1", got)
	}
	if un := m.Unbalanced(); len(un) != 0 {
		t.Errorf("unexpected unbalanced stages: %v", un)
	}

	events := m.Events()
	if len(events) != 5 { // begin + 3 counts + end; the zero delta is silent
		t.Fatalf("got %d events, want 5: %+v", len(events), events)
	}
	if events[0].Kind != KindBegin || events[len(events)-1].Kind != KindEnd {
		t.Errorf("events not in arrival order: %+v", events)
	}
	if events[len(events)-1].WallNS < 0 {
		t.Errorf("end event has negative wall time: %+v", events[len(events)-1])
	}

	totals := m.Totals()
	if totals["ubf/balls_tested"] != 8 || totals["iff/msgs_sent"] != 10 {
		t.Errorf("Totals() roll-up wrong: %v", totals)
	}

	// An unended span shows up as unbalanced.
	m.Reset()
	if len(m.Events()) != 0 || m.Totals() != nil {
		t.Error("Reset did not clear the sink")
	}
	m.StageBegin(StageCDM, "")
	if un := m.Unbalanced(); len(un) != 1 || un[0] != StageCDM {
		t.Errorf("Unbalanced() = %v, want [cdm]", un)
	}
}

// TestMemSinkConcurrent: Mem must be safe under concurrent emitters (the
// eval.Engine pool writes from many workers). Run with -race.
func TestMemSinkConcurrent(t *testing.T) {
	m := &Mem{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				span := StartLabeled(m, StageCell, "w")
				Add(m, StageUBF, CtrBallsTested, 1)
				span.End()
			}
		}()
	}
	wg.Wait()
	if got := m.Total(StageUBF, CtrBallsTested); got != 800 {
		t.Errorf("concurrent total = %d, want 800", got)
	}
	if got := m.Spans(StageCell); got != 800 {
		t.Errorf("concurrent spans = %d, want 800", got)
	}
}

// TestTee: events fan out to both sinks; nil arguments collapse to the
// other observer without a wrapper.
func TestTee(t *testing.T) {
	a, b := &Mem{}, &Mem{}
	o := Tee(a, b)
	span := Start(o, StageSurface)
	Add(o, StageSurface, CtrLandmarks, 4)
	span.End()
	for i, m := range []*Mem{a, b} {
		if m.Total(StageSurface, CtrLandmarks) != 4 || m.Spans(StageSurface) != 1 {
			t.Errorf("sink %d missed events", i)
		}
	}
	if got := Tee(a, nil); got != Observer(a) {
		t.Error("Tee(a, nil) should return a directly")
	}
	if got := Tee(nil, b); got != Observer(b) {
		t.Error("Tee(nil, b) should return b directly")
	}
	if got := Tee(nil, nil); got != nil {
		t.Error("Tee(nil, nil) should be nil")
	}
}

// TestJSONLValidateRoundTrip: events written by the JSONL sink read back
// as a schema-valid trace with matching aggregates.
func TestJSONLValidateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	det := Start(j, StageDetect)
	ubf := Start(j, StageUBF)
	Add(j, StageUBF, CtrBallsTested, 42)
	ubf.End()
	Add(j, StageIFF, CtrMsgsSent, 100)
	Add(j, StageIFF, CtrMsgsDelivered, 95)
	cell := StartLabeled(j, StageCell, "fig1/err=0.1")
	cell.End()
	det.End()
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	sum, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip trace invalid: %v\n%s", err, buf.String())
	}
	if sum.Events != 9 { // 3 begin/end pairs + 3 counts
		t.Errorf("Events = %d, want 9", sum.Events)
	}
	if sum.Spans[StageDetect] != 1 || sum.Spans[StageUBF] != 1 || sum.Spans[StageCell] != 1 {
		t.Errorf("span counts wrong: %v", sum.Spans)
	}
	if sum.Total(StageUBF, CtrBallsTested) != 42 {
		t.Errorf("balls total = %d, want 42", sum.Total(StageUBF, CtrBallsTested))
	}
	if sum.CounterTotal(CtrMsgsSent) != 100 {
		t.Errorf("msgs_sent total = %d, want 100", sum.CounterTotal(CtrMsgsSent))
	}
	if !strings.Contains(buf.String(), `"label":"fig1/err=0.1"`) {
		t.Errorf("labeled span not on the wire:\n%s", buf.String())
	}
}

// TestValidateTraceRejects: the validator catches malformed lines,
// unknown vocabulary, and unbalanced spans.
func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"unknown stage":   `{"ev":"begin","stage":"warp","seq":0,"ts_ns":1}`,
		"unknown ev":      `{"ev":"poke","stage":"ubf","seq":0,"ts_ns":1}`,
		"unknown counter": `{"ev":"count","stage":"ubf","counter":"wat","value":1,"seq":0,"ts_ns":1}`,
		"missing value":   `{"ev":"count","stage":"ubf","counter":"balls_tested","seq":0,"ts_ns":1}`,
		"missing wall_ns": `{"ev":"end","stage":"ubf","seq":0,"ts_ns":1}`,
		"unknown field":   `{"ev":"begin","stage":"ubf","seq":0,"ts_ns":1,"extra":true}`,
		"not json":        `begin ubf`,
		"unbalanced span": `{"ev":"begin","stage":"ubf","seq":0,"ts_ns":1}` + "\n",
		"missing seq":     `{"ev":"begin","stage":"ubf","ts_ns":1}`,
		"seq gap": `{"ev":"begin","stage":"ubf","seq":0,"ts_ns":1}` + "\n" +
			`{"ev":"end","stage":"ubf","wall_ns":5,"seq":2,"ts_ns":2}`,
		"seq not from zero": `{"ev":"begin","stage":"ubf","seq":1,"ts_ns":1}`,
		"ts regression": `{"ev":"begin","stage":"ubf","seq":0,"ts_ns":9}` + "\n" +
			`{"ev":"end","stage":"ubf","wall_ns":5,"seq":1,"ts_ns":3}`,
		"label mismatch": `{"ev":"begin","stage":"cell","label":"a","seq":0,"ts_ns":1}` + "\n" +
			`{"ev":"end","stage":"cell","label":"b","wall_ns":5,"seq":1,"ts_ns":2}`,
		"unbalanced round":   `{"ev":"round_begin","stage":"iff","round":0,"seq":0,"ts_ns":1}`,
		"round_end no stats": `{"ev":"round_end","stage":"iff","round":0,"seq":0,"ts_ns":1}`,
		"round below init": `{"ev":"round_begin","stage":"iff","round":-2,"seq":0,"ts_ns":1}`,
		"negative round stats": `{"ev":"round_begin","stage":"iff","round":0,"seq":0,"ts_ns":1}` + "\n" +
			`{"ev":"round_end","stage":"iff","round":0,"stats":{"sent":-1,"delivered":0,"dropped":0,"duplicated":0,"delayed":0,"active":0},"seq":1,"ts_ns":2}`,
		"unknown trans": `{"ev":"trans","stage":"iff","trans":"warp","node":1,"value":0,"seq":0,"ts_ns":1}`,
		"trans no node": `{"ev":"trans","stage":"iff","trans":"iff_rescind","value":0,"seq":0,"ts_ns":1}`,
	}
	for name, trace := range cases {
		if _, err := ValidateTrace(strings.NewReader(trace)); err == nil {
			t.Errorf("%s accepted: %q", name, trace)
		}
	}
	// Balanced input with blank lines is fine.
	ok := "{\"ev\":\"begin\",\"stage\":\"ubf\",\"seq\":0,\"ts_ns\":1}\n\n{\"ev\":\"end\",\"stage\":\"ubf\",\"wall_ns\":5,\"seq\":1,\"ts_ns\":9}\n"
	if _, err := ValidateTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

// TestReadTraceRoundTrip: flight-recorder events written by JSONL parse
// back as the same events with consecutive seq and aggregate rounds,
// transitions, and wall times.
func TestReadTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	span := Start(j, StageIFF)
	RoundBegin(j, StageIFF, InitRound)
	RoundEnd(j, StageIFF, InitRound, RoundStats{Sent: 4, Active: 4})
	RoundBegin(j, StageIFF, 0)
	NodeTransition(j, StageIFF, TransIFFRescind, 7, 2)
	RoundEnd(j, StageIFF, 0, RoundStats{Sent: 10, Delivered: 4, Dropped: 6, Active: 4})
	span.End()
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	events, sum, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip trace invalid: %v\n%s", err, buf.String())
	}
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7", len(events))
	}
	for i, ev := range events {
		if ev.Seq != int64(i) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	if sum.Rounds[StageIFF] != 2 {
		t.Errorf("Rounds[iff] = %d, want 2", sum.Rounds[StageIFF])
	}
	if sum.Transitions[TransIFFRescind] != 1 {
		t.Errorf("Transitions[iff_rescind] = %v, want 1", sum.Transitions)
	}
	if sum.Wall[StageIFF] <= 0 {
		t.Errorf("Wall[iff] = %d, want > 0", sum.Wall[StageIFF])
	}
	last := events[5]
	if last.Kind != KindRoundEnd || last.Round != 0 || last.Stats.Dropped != 6 {
		t.Errorf("round_end event mangled: %+v", last)
	}
	tr := events[4]
	if tr.Kind != KindTransition || tr.Trans != TransIFFRescind || tr.Node != 7 || tr.Value != 2 {
		t.Errorf("trans event mangled: %+v", tr)
	}
}

// TestTransitionStringRoundTrip: the transition vocabulary survives the
// String/FromString round trip.
func TestTransitionStringRoundTrip(t *testing.T) {
	for tr := Transition(1); tr < transitionEnd; tr++ {
		name := tr.String()
		if name == "trans?" {
			t.Fatalf("transition %d has no name", tr)
		}
		back, ok := TransitionFromString(name)
		if !ok || back != tr {
			t.Errorf("transition %d -> %q -> (%d, %v)", tr, name, back, ok)
		}
	}
	if _, ok := TransitionFromString("bogus"); ok {
		t.Error("bogus transition accepted")
	}
	if Transition(200).String() != "trans?" {
		t.Error("unknown transition must print as placeholder")
	}
}

// TestProfilerSmoke: the pprof leg writes both profile files.
func TestProfilerSmoke(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "prof")
	p, err := StartProfilePrefix(prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		info, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Errorf("profile %s missing: %v", suffix, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("profile %s empty", suffix)
		}
	}
	// Zero-configured profilers are inert.
	empty, err := StartProfilePrefix("")
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Stop(); err != nil {
		t.Fatal(err)
	}
	var nilProf *Profiler
	if err := nilProf.Stop(); err != nil {
		t.Fatal(err)
	}
}
